# Empty compiler generated dependencies file for truediff_property_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/truediff_property_test.dir/truediff_property_test.cpp.o"
  "CMakeFiles/truediff_property_test.dir/truediff_property_test.cpp.o.d"
  "truediff_property_test"
  "truediff_property_test.pdb"
  "truediff_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

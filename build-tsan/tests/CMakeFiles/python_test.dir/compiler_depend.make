# Empty compiler generated dependencies file for python_test.
# This may be replaced when dependencies are built.

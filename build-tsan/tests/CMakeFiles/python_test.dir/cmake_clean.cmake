file(REMOVE_RECURSE
  "CMakeFiles/python_test.dir/python_test.cpp.o"
  "CMakeFiles/python_test.dir/python_test.cpp.o.d"
  "python_test"
  "python_test.pdb"
  "python_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/python_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lcsdiff_test.dir/lcsdiff_test.cpp.o"
  "CMakeFiles/lcsdiff_test.dir/lcsdiff_test.cpp.o.d"
  "lcsdiff_test"
  "lcsdiff_test.pdb"
  "lcsdiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcsdiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lcsdiff_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for hdiff_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hdiff_test.dir/hdiff_test.cpp.o"
  "CMakeFiles/hdiff_test.dir/hdiff_test.cpp.o.d"
  "hdiff_test"
  "hdiff_test.pdb"
  "hdiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for truechange_extra_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/truechange_extra_test.dir/truechange_extra_test.cpp.o"
  "CMakeFiles/truechange_extra_test.dir/truechange_extra_test.cpp.o.d"
  "truechange_extra_test"
  "truechange_extra_test.pdb"
  "truechange_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truechange_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/truediff_test.dir/truediff_test.cpp.o"
  "CMakeFiles/truediff_test.dir/truediff_test.cpp.o.d"
  "truediff_test"
  "truediff_test.pdb"
  "truediff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for truediff_test.
# This may be replaced when dependencies are built.

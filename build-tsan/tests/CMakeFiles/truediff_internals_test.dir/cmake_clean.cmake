file(REMOVE_RECURSE
  "CMakeFiles/truediff_internals_test.dir/truediff_internals_test.cpp.o"
  "CMakeFiles/truediff_internals_test.dir/truediff_internals_test.cpp.o.d"
  "truediff_internals_test"
  "truediff_internals_test.pdb"
  "truediff_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

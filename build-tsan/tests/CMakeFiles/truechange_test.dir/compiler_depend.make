# Empty compiler generated dependencies file for truechange_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/truechange_test.dir/truechange_test.cpp.o"
  "CMakeFiles/truechange_test.dir/truechange_test.cpp.o.d"
  "truechange_test"
  "truechange_test.pdb"
  "truechange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truechange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for list_edits_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/list_edits_test.dir/list_edits_test.cpp.o"
  "CMakeFiles/list_edits_test.dir/list_edits_test.cpp.o.d"
  "list_edits_test"
  "list_edits_test.pdb"
  "list_edits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_edits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/support_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/tree_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/truechange_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/truediff_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/truediff_property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/gumtree_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/hdiff_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/lcsdiff_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/python_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/corpus_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/incremental_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/truechange_extra_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/json_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/truediff_internals_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/list_edits_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/service_test[1]_include.cmake")

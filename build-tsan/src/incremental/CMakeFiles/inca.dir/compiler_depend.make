# Empty compiler generated dependencies file for inca.
# This may be replaced when dependencies are built.

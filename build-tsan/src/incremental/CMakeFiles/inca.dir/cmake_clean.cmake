file(REMOVE_RECURSE
  "CMakeFiles/inca.dir/Analysis.cpp.o"
  "CMakeFiles/inca.dir/Analysis.cpp.o.d"
  "CMakeFiles/inca.dir/Pipeline.cpp.o"
  "CMakeFiles/inca.dir/Pipeline.cpp.o.d"
  "CMakeFiles/inca.dir/TreeDatabase.cpp.o"
  "CMakeFiles/inca.dir/TreeDatabase.cpp.o.d"
  "libinca.a"
  "libinca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libinca.a"
)

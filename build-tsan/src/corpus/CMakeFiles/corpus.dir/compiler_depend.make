# Empty compiler generated dependencies file for corpus.
# This may be replaced when dependencies are built.

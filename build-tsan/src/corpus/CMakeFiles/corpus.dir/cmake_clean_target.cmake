file(REMOVE_RECURSE
  "libcorpus.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/corpus.dir/Corpus.cpp.o.d"
  "/root/repo/src/corpus/JsonGen.cpp" "src/corpus/CMakeFiles/corpus.dir/JsonGen.cpp.o" "gcc" "src/corpus/CMakeFiles/corpus.dir/JsonGen.cpp.o.d"
  "/root/repo/src/corpus/Mutator.cpp" "src/corpus/CMakeFiles/corpus.dir/Mutator.cpp.o" "gcc" "src/corpus/CMakeFiles/corpus.dir/Mutator.cpp.o.d"
  "/root/repo/src/corpus/PyGen.cpp" "src/corpus/CMakeFiles/corpus.dir/PyGen.cpp.o" "gcc" "src/corpus/CMakeFiles/corpus.dir/PyGen.cpp.o.d"
  "/root/repo/src/corpus/Sketch.cpp" "src/corpus/CMakeFiles/corpus.dir/Sketch.cpp.o" "gcc" "src/corpus/CMakeFiles/corpus.dir/Sketch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/python/CMakeFiles/pyparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/jsontree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tree/CMakeFiles/truediff_tree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/truediff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/corpus.dir/Corpus.cpp.o"
  "CMakeFiles/corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/corpus.dir/JsonGen.cpp.o"
  "CMakeFiles/corpus.dir/JsonGen.cpp.o.d"
  "CMakeFiles/corpus.dir/Mutator.cpp.o"
  "CMakeFiles/corpus.dir/Mutator.cpp.o.d"
  "CMakeFiles/corpus.dir/PyGen.cpp.o"
  "CMakeFiles/corpus.dir/PyGen.cpp.o.d"
  "CMakeFiles/corpus.dir/Sketch.cpp.o"
  "CMakeFiles/corpus.dir/Sketch.cpp.o.d"
  "libcorpus.a"
  "libcorpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lcsdiff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lcsdiff.dir/LcsDiff.cpp.o"
  "CMakeFiles/lcsdiff.dir/LcsDiff.cpp.o.d"
  "liblcsdiff.a"
  "liblcsdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcsdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblcsdiff.a"
)

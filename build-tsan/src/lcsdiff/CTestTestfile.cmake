# CMake generated Testfile for 
# Source directory: /root/repo/src/lcsdiff
# Build directory: /root/repo/build-tsan/src/lcsdiff
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

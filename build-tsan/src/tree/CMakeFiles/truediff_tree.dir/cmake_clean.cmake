file(REMOVE_RECURSE
  "CMakeFiles/truediff_tree.dir/SExpr.cpp.o"
  "CMakeFiles/truediff_tree.dir/SExpr.cpp.o.d"
  "CMakeFiles/truediff_tree.dir/Signature.cpp.o"
  "CMakeFiles/truediff_tree.dir/Signature.cpp.o.d"
  "CMakeFiles/truediff_tree.dir/Tree.cpp.o"
  "CMakeFiles/truediff_tree.dir/Tree.cpp.o.d"
  "libtruediff_tree.a"
  "libtruediff_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

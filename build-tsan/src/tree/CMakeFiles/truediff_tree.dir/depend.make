# Empty dependencies file for truediff_tree.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/SExpr.cpp" "src/tree/CMakeFiles/truediff_tree.dir/SExpr.cpp.o" "gcc" "src/tree/CMakeFiles/truediff_tree.dir/SExpr.cpp.o.d"
  "/root/repo/src/tree/Signature.cpp" "src/tree/CMakeFiles/truediff_tree.dir/Signature.cpp.o" "gcc" "src/tree/CMakeFiles/truediff_tree.dir/Signature.cpp.o.d"
  "/root/repo/src/tree/Tree.cpp" "src/tree/CMakeFiles/truediff_tree.dir/Tree.cpp.o" "gcc" "src/tree/CMakeFiles/truediff_tree.dir/Tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/truediff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

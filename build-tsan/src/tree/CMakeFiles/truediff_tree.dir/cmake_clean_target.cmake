file(REMOVE_RECURSE
  "libtruediff_tree.a"
)

# Empty compiler generated dependencies file for jsontree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/jsontree.dir/Json.cpp.o"
  "CMakeFiles/jsontree.dir/Json.cpp.o.d"
  "libjsontree.a"
  "libjsontree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsontree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libjsontree.a"
)

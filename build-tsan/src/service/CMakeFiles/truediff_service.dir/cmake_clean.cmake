file(REMOVE_RECURSE
  "CMakeFiles/truediff_service.dir/DiffService.cpp.o"
  "CMakeFiles/truediff_service.dir/DiffService.cpp.o.d"
  "CMakeFiles/truediff_service.dir/DocumentStore.cpp.o"
  "CMakeFiles/truediff_service.dir/DocumentStore.cpp.o.d"
  "CMakeFiles/truediff_service.dir/Metrics.cpp.o"
  "CMakeFiles/truediff_service.dir/Metrics.cpp.o.d"
  "CMakeFiles/truediff_service.dir/Mirror.cpp.o"
  "CMakeFiles/truediff_service.dir/Mirror.cpp.o.d"
  "CMakeFiles/truediff_service.dir/Wire.cpp.o"
  "CMakeFiles/truediff_service.dir/Wire.cpp.o.d"
  "libtruediff_service.a"
  "libtruediff_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/DiffService.cpp" "src/service/CMakeFiles/truediff_service.dir/DiffService.cpp.o" "gcc" "src/service/CMakeFiles/truediff_service.dir/DiffService.cpp.o.d"
  "/root/repo/src/service/DocumentStore.cpp" "src/service/CMakeFiles/truediff_service.dir/DocumentStore.cpp.o" "gcc" "src/service/CMakeFiles/truediff_service.dir/DocumentStore.cpp.o.d"
  "/root/repo/src/service/Metrics.cpp" "src/service/CMakeFiles/truediff_service.dir/Metrics.cpp.o" "gcc" "src/service/CMakeFiles/truediff_service.dir/Metrics.cpp.o.d"
  "/root/repo/src/service/Mirror.cpp" "src/service/CMakeFiles/truediff_service.dir/Mirror.cpp.o" "gcc" "src/service/CMakeFiles/truediff_service.dir/Mirror.cpp.o.d"
  "/root/repo/src/service/Wire.cpp" "src/service/CMakeFiles/truediff_service.dir/Wire.cpp.o" "gcc" "src/service/CMakeFiles/truediff_service.dir/Wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/truediff/CMakeFiles/truediff_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/truechange/CMakeFiles/truechange.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/incremental/CMakeFiles/inca.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/python/CMakeFiles/pyparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tree/CMakeFiles/truediff_tree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/truediff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

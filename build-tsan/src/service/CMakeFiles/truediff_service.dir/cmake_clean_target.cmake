file(REMOVE_RECURSE
  "libtruediff_service.a"
)

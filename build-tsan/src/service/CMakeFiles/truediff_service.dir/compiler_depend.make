# Empty compiler generated dependencies file for truediff_service.
# This may be replaced when dependencies are built.

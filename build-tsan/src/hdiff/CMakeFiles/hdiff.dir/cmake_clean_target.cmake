file(REMOVE_RECURSE
  "libhdiff.a"
)

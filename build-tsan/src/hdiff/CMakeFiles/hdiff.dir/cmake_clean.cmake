file(REMOVE_RECURSE
  "CMakeFiles/hdiff.dir/HDiff.cpp.o"
  "CMakeFiles/hdiff.dir/HDiff.cpp.o.d"
  "libhdiff.a"
  "libhdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hdiff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtruechange.a"
)

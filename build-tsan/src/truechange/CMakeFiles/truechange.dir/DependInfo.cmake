
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/truechange/Edit.cpp" "src/truechange/CMakeFiles/truechange.dir/Edit.cpp.o" "gcc" "src/truechange/CMakeFiles/truechange.dir/Edit.cpp.o.d"
  "/root/repo/src/truechange/InitScript.cpp" "src/truechange/CMakeFiles/truechange.dir/InitScript.cpp.o" "gcc" "src/truechange/CMakeFiles/truechange.dir/InitScript.cpp.o.d"
  "/root/repo/src/truechange/Inverse.cpp" "src/truechange/CMakeFiles/truechange.dir/Inverse.cpp.o" "gcc" "src/truechange/CMakeFiles/truechange.dir/Inverse.cpp.o.d"
  "/root/repo/src/truechange/MTree.cpp" "src/truechange/CMakeFiles/truechange.dir/MTree.cpp.o" "gcc" "src/truechange/CMakeFiles/truechange.dir/MTree.cpp.o.d"
  "/root/repo/src/truechange/Serialize.cpp" "src/truechange/CMakeFiles/truechange.dir/Serialize.cpp.o" "gcc" "src/truechange/CMakeFiles/truechange.dir/Serialize.cpp.o.d"
  "/root/repo/src/truechange/TypeChecker.cpp" "src/truechange/CMakeFiles/truechange.dir/TypeChecker.cpp.o" "gcc" "src/truechange/CMakeFiles/truechange.dir/TypeChecker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tree/CMakeFiles/truediff_tree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/truediff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

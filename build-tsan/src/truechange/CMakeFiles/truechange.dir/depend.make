# Empty dependencies file for truechange.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/truechange.dir/Edit.cpp.o"
  "CMakeFiles/truechange.dir/Edit.cpp.o.d"
  "CMakeFiles/truechange.dir/InitScript.cpp.o"
  "CMakeFiles/truechange.dir/InitScript.cpp.o.d"
  "CMakeFiles/truechange.dir/Inverse.cpp.o"
  "CMakeFiles/truechange.dir/Inverse.cpp.o.d"
  "CMakeFiles/truechange.dir/MTree.cpp.o"
  "CMakeFiles/truechange.dir/MTree.cpp.o.d"
  "CMakeFiles/truechange.dir/Serialize.cpp.o"
  "CMakeFiles/truechange.dir/Serialize.cpp.o.d"
  "CMakeFiles/truechange.dir/TypeChecker.cpp.o"
  "CMakeFiles/truechange.dir/TypeChecker.cpp.o.d"
  "libtruechange.a"
  "libtruechange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truechange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src/truechange
# Build directory: /root/repo/build-tsan/src/truechange
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

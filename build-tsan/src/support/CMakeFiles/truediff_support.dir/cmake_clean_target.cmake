file(REMOVE_RECURSE
  "libtruediff_support.a"
)

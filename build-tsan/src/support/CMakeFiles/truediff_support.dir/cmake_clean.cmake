file(REMOVE_RECURSE
  "CMakeFiles/truediff_support.dir/Digest.cpp.o"
  "CMakeFiles/truediff_support.dir/Digest.cpp.o.d"
  "CMakeFiles/truediff_support.dir/Literal.cpp.o"
  "CMakeFiles/truediff_support.dir/Literal.cpp.o.d"
  "CMakeFiles/truediff_support.dir/Sha256.cpp.o"
  "CMakeFiles/truediff_support.dir/Sha256.cpp.o.d"
  "CMakeFiles/truediff_support.dir/Sha256Ni.cpp.o"
  "CMakeFiles/truediff_support.dir/Sha256Ni.cpp.o.d"
  "CMakeFiles/truediff_support.dir/Stats.cpp.o"
  "CMakeFiles/truediff_support.dir/Stats.cpp.o.d"
  "libtruediff_support.a"
  "libtruediff_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

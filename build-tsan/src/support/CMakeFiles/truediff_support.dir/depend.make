# Empty dependencies file for truediff_support.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Digest.cpp" "src/support/CMakeFiles/truediff_support.dir/Digest.cpp.o" "gcc" "src/support/CMakeFiles/truediff_support.dir/Digest.cpp.o.d"
  "/root/repo/src/support/Literal.cpp" "src/support/CMakeFiles/truediff_support.dir/Literal.cpp.o" "gcc" "src/support/CMakeFiles/truediff_support.dir/Literal.cpp.o.d"
  "/root/repo/src/support/Sha256.cpp" "src/support/CMakeFiles/truediff_support.dir/Sha256.cpp.o" "gcc" "src/support/CMakeFiles/truediff_support.dir/Sha256.cpp.o.d"
  "/root/repo/src/support/Sha256Ni.cpp" "src/support/CMakeFiles/truediff_support.dir/Sha256Ni.cpp.o" "gcc" "src/support/CMakeFiles/truediff_support.dir/Sha256Ni.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/support/CMakeFiles/truediff_support.dir/Stats.cpp.o" "gcc" "src/support/CMakeFiles/truediff_support.dir/Stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

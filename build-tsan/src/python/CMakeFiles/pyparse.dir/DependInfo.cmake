
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/python/Lexer.cpp" "src/python/CMakeFiles/pyparse.dir/Lexer.cpp.o" "gcc" "src/python/CMakeFiles/pyparse.dir/Lexer.cpp.o.d"
  "/root/repo/src/python/Parser.cpp" "src/python/CMakeFiles/pyparse.dir/Parser.cpp.o" "gcc" "src/python/CMakeFiles/pyparse.dir/Parser.cpp.o.d"
  "/root/repo/src/python/PySig.cpp" "src/python/CMakeFiles/pyparse.dir/PySig.cpp.o" "gcc" "src/python/CMakeFiles/pyparse.dir/PySig.cpp.o.d"
  "/root/repo/src/python/Unparser.cpp" "src/python/CMakeFiles/pyparse.dir/Unparser.cpp.o" "gcc" "src/python/CMakeFiles/pyparse.dir/Unparser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tree/CMakeFiles/truediff_tree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/truediff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for pyparse.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pyparse.dir/Lexer.cpp.o"
  "CMakeFiles/pyparse.dir/Lexer.cpp.o.d"
  "CMakeFiles/pyparse.dir/Parser.cpp.o"
  "CMakeFiles/pyparse.dir/Parser.cpp.o.d"
  "CMakeFiles/pyparse.dir/PySig.cpp.o"
  "CMakeFiles/pyparse.dir/PySig.cpp.o.d"
  "CMakeFiles/pyparse.dir/Unparser.cpp.o"
  "CMakeFiles/pyparse.dir/Unparser.cpp.o.d"
  "libpyparse.a"
  "libpyparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

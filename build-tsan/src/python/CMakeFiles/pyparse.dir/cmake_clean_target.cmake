file(REMOVE_RECURSE
  "libpyparse.a"
)

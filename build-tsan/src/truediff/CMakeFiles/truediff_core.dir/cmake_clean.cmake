file(REMOVE_RECURSE
  "CMakeFiles/truediff_core.dir/EditBuffer.cpp.o"
  "CMakeFiles/truediff_core.dir/EditBuffer.cpp.o.d"
  "CMakeFiles/truediff_core.dir/SubtreeShare.cpp.o"
  "CMakeFiles/truediff_core.dir/SubtreeShare.cpp.o.d"
  "CMakeFiles/truediff_core.dir/TrueDiff.cpp.o"
  "CMakeFiles/truediff_core.dir/TrueDiff.cpp.o.d"
  "libtruediff_core.a"
  "libtruediff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtruediff_core.a"
)

# Empty compiler generated dependencies file for truediff_core.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/truediff
# Build directory: /root/repo/build-tsan/src/truediff
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "CMakeFiles/gumtree.dir/Actions.cpp.o"
  "CMakeFiles/gumtree.dir/Actions.cpp.o.d"
  "CMakeFiles/gumtree.dir/Matcher.cpp.o"
  "CMakeFiles/gumtree.dir/Matcher.cpp.o.d"
  "CMakeFiles/gumtree.dir/RoseTree.cpp.o"
  "CMakeFiles/gumtree.dir/RoseTree.cpp.o.d"
  "libgumtree.a"
  "libgumtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gumtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

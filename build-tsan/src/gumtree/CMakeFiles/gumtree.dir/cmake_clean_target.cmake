file(REMOVE_RECURSE
  "libgumtree.a"
)

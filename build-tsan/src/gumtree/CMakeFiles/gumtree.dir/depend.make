# Empty dependencies file for gumtree.
# This may be replaced when dependencies are built.

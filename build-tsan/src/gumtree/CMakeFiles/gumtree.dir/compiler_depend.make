# Empty compiler generated dependencies file for gumtree.
# This may be replaced when dependencies are built.

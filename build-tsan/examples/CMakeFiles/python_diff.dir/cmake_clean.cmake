file(REMOVE_RECURSE
  "CMakeFiles/python_diff.dir/python_diff.cpp.o"
  "CMakeFiles/python_diff.dir/python_diff.cpp.o.d"
  "python_diff"
  "python_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/python_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

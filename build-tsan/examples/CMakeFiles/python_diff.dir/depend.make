# Empty dependencies file for python_diff.
# This may be replaced when dependencies are built.

# Empty dependencies file for diff_server.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/diff_server.dir/diff_server.cpp.o"
  "CMakeFiles/diff_server.dir/diff_server.cpp.o.d"
  "diff_server"
  "diff_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

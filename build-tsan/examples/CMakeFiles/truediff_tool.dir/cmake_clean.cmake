file(REMOVE_RECURSE
  "CMakeFiles/truediff_tool.dir/truediff_tool.cpp.o"
  "CMakeFiles/truediff_tool.dir/truediff_tool.cpp.o.d"
  "truediff_tool"
  "truediff_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truediff_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

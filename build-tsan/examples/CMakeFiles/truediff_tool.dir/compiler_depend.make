# Empty compiler generated dependencies file for truediff_tool.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for version_history.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/version_history.dir/version_history.cpp.o"
  "CMakeFiles/version_history.dir/version_history.cpp.o.d"
  "version_history"
  "version_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/incremental_inca"
  "../bench/incremental_inca.pdb"
  "CMakeFiles/incremental_inca.dir/incremental_inca.cpp.o"
  "CMakeFiles/incremental_inca.dir/incremental_inca.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_inca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for incremental_inca.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/scaling_linear"
  "../bench/scaling_linear.pdb"
  "CMakeFiles/scaling_linear.dir/scaling_linear.cpp.o"
  "CMakeFiles/scaling_linear.dir/scaling_linear.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

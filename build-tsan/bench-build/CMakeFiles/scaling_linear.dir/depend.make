# Empty dependencies file for scaling_linear.
# This may be replaced when dependencies are built.

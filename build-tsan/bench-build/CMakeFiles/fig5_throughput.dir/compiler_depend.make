# Empty compiler generated dependencies file for fig5_throughput.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig5_throughput"
  "../bench/fig5_throughput.pdb"
  "CMakeFiles/fig5_throughput.dir/fig5_throughput.cpp.o"
  "CMakeFiles/fig5_throughput.dir/fig5_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/json_documents"
  "../bench/json_documents.pdb"
  "CMakeFiles/json_documents.dir/json_documents.cpp.o"
  "CMakeFiles/json_documents.dir/json_documents.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for json_documents.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/patch_apply"
  "../bench/patch_apply.pdb"
  "CMakeFiles/patch_apply.dir/patch_apply.cpp.o"
  "CMakeFiles/patch_apply.dir/patch_apply.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

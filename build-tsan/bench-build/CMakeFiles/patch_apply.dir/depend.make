# Empty dependencies file for patch_apply.
# This may be replaced when dependencies are built.

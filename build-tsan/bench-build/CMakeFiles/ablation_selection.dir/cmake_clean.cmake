file(REMOVE_RECURSE
  "../bench/ablation_selection"
  "../bench/ablation_selection.pdb"
  "CMakeFiles/ablation_selection.dir/ablation_selection.cpp.o"
  "CMakeFiles/ablation_selection.dir/ablation_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

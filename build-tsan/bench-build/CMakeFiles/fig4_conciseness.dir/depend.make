# Empty dependencies file for fig4_conciseness.
# This may be replaced when dependencies are built.

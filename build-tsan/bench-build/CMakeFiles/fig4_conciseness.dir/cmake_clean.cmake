file(REMOVE_RECURSE
  "../bench/fig4_conciseness"
  "../bench/fig4_conciseness.pdb"
  "CMakeFiles/fig4_conciseness.dir/fig4_conciseness.cpp.o"
  "CMakeFiles/fig4_conciseness.dir/fig4_conciseness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_conciseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

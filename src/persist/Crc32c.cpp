//===- persist/Crc32c.cpp - CRC-32C (Castagnoli) checksums -----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Crc32c.h"

#include <array>
#include <bit>
#include <cstring>

static_assert(std::endian::native == std::endian::little,
              "the slice-by-8 word fold assumes a little-endian host");

using namespace truediff;

namespace {

/// Eight 256-entry tables for slice-by-8: table K holds the CRC of a byte
/// followed by K zero bytes, so eight input bytes fold in parallel.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> T;

  Tables() {
    constexpr uint32_t Poly = 0x82f63b78u; // reflected 0x1EDC6F41
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t Crc = I;
      for (int Bit = 0; Bit != 8; ++Bit)
        Crc = (Crc >> 1) ^ ((Crc & 1) ? Poly : 0);
      T[0][I] = Crc;
    }
    for (uint32_t I = 0; I != 256; ++I)
      for (size_t K = 1; K != 8; ++K)
        T[K][I] = (T[K - 1][I] >> 8) ^ T[0][T[K - 1][I] & 0xff];
  }
};

const Tables &tables() {
  static const Tables Tab;
  return Tab;
}

} // namespace

uint32_t persist::crc32c(uint32_t Crc, const void *Data, size_t Size) {
  const Tables &Tab = tables();
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Crc = ~Crc;
  while (Size != 0 && (reinterpret_cast<uintptr_t>(P) & 7) != 0) {
    Crc = (Crc >> 8) ^ Tab.T[0][(Crc ^ *P++) & 0xff];
    --Size;
  }
  while (Size >= 8) {
    uint64_t Word;
    std::memcpy(&Word, P, 8);
    // Little-endian fold: low word mixes with the running CRC, high word
    // enters through the zero-extended tables.
    Crc ^= static_cast<uint32_t>(Word);
    uint32_t Hi = static_cast<uint32_t>(Word >> 32);
    Crc = Tab.T[7][Crc & 0xff] ^ Tab.T[6][(Crc >> 8) & 0xff] ^
          Tab.T[5][(Crc >> 16) & 0xff] ^ Tab.T[4][Crc >> 24] ^
          Tab.T[3][Hi & 0xff] ^ Tab.T[2][(Hi >> 8) & 0xff] ^
          Tab.T[1][(Hi >> 16) & 0xff] ^ Tab.T[0][Hi >> 24];
    P += 8;
    Size -= 8;
  }
  while (Size != 0) {
    Crc = (Crc >> 8) ^ Tab.T[0][(Crc ^ *P++) & 0xff];
    --Size;
  }
  return ~Crc;
}

//===- persist/BinaryCodec.h - Binary trees and edit scripts ----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact binary encoding of typed trees and truechange edit scripts,
/// the payload format of the write-ahead log and snapshot files. The
/// textual forms (truechange/Serialize, tree/SExpr) stay the wire format
/// for humans and clients; the binary form exists because durability
/// writes sit on the submit path, where re-rendering and re-parsing text
/// would dominate the cost of small scripts.
///
/// Layout decisions:
///   - All integers are LEB128 varints; signed values are zigzag-coded.
///   - Every blob opens with a local symbol table (the tag and link names
///     it uses), and the body refers to symbols by local index. Blobs are
///     therefore self-contained: they do not depend on the order in which
///     a SignatureTable interned its symbols, only on the names -- the
///     same stability contract the textual formats have.
///   - Trees are encoded pre-order with explicit kid and literal counts,
///     and carry their URIs, so a decoded snapshot can adopt the exact
///     URIs the logged edit scripts refer to.
///
/// Decoders are total: corrupt or truncated input yields an error result,
/// never undefined behaviour, even though the CRC framing upstream makes
/// such input unlikely.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_BINARYCODEC_H
#define TRUEDIFF_PERSIST_BINARYCODEC_H

#include "tree/Tree.h"
#include "truechange/Edit.h"

#include <string>
#include <string_view>

namespace truediff {
namespace persist {

/// Serializes \p Script into a self-contained binary blob.
std::string encodeEditScript(const SignatureTable &Sig,
                             const EditScript &Script);

/// Result of decoding an edit script blob.
struct DecodeScriptResult {
  bool Ok = false;
  EditScript Script;
  std::string Error;
};

/// Decodes a blob produced by encodeEditScript. Tag and link names must
/// exist in \p Sig (scripts only make sense against the signature they
/// were produced for).
DecodeScriptResult decodeEditScript(const SignatureTable &Sig,
                                    std::string_view Blob);

/// Serializes \p T (with its URIs) into a self-contained binary blob.
std::string encodeTree(const SignatureTable &Sig, const Tree *T);

/// Result of decoding a tree blob.
struct DecodeTreeResult {
  Tree *Root = nullptr;
  std::string Error;
  bool ok() const { return Root != nullptr; }
};

/// Decodes a blob produced by encodeTree into \p Ctx, preserving the
/// encoded URIs via TreeContext::adoptWithUri. \p Ctx must not hold live
/// nodes with any of those URIs (pass a fresh context, as with
/// MTree::toTreePreservingUris).
DecodeTreeResult decodeTree(const SignatureTable &Sig, TreeContext &Ctx,
                            std::string_view Blob);

/// As above with \p PreserveUris false: the encoded URIs are validated
/// but discarded and every node is allocated with a fresh URI via
/// TreeContext::make, so the blob can be decoded into a context that
/// already holds live nodes. This is the mode for client-supplied trees
/// on the binary wire protocol, where the client's URIs must not collide
/// with a document's live URI space.
DecodeTreeResult decodeTree(const SignatureTable &Sig, TreeContext &Ctx,
                            std::string_view Blob, bool PreserveUris);

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_BINARYCODEC_H

//===- persist/BinaryCodec.cpp - Binary trees and edit scripts -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/BinaryCodec.h"

#include "persist/Varint.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace truediff;
using namespace truediff::persist;

namespace {

//===----------------------------------------------------------------------===//
// Primitive writers and readers
//===----------------------------------------------------------------------===//

/// Bounds-checked reader; after any failure every further read returns
/// zero values and Ok stays false, so decoders can check once at the end
/// of a production instead of after every byte.
class BinReader {
public:
  explicit BinReader(std::string_view Bytes) : Bytes(Bytes) {}

  bool ok() const { return Failed == nullptr; }
  const char *error() const { return Failed; }
  bool atEnd() const { return Pos == Bytes.size(); }

  uint64_t getVarint() {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Bytes.size()) {
        fail("truncated varint");
        return 0;
      }
      uint8_t B = static_cast<uint8_t>(Bytes[Pos++]);
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if ((B & 0x80) == 0)
        return V;
    }
    fail("overlong varint");
    return 0;
  }

  uint8_t getByte() {
    if (Pos >= Bytes.size()) {
      fail("truncated byte");
      return 0;
    }
    return static_cast<uint8_t>(Bytes[Pos++]);
  }

  std::string_view getBytes(size_t N) {
    if (N > Bytes.size() - Pos) {
      fail("truncated byte string");
      return {};
    }
    std::string_view V = Bytes.substr(Pos, N);
    Pos += N;
    return V;
  }

  void fail(const char *Why) {
    if (Failed == nullptr)
      Failed = Why;
    Pos = Bytes.size();
  }

private:
  std::string_view Bytes;
  size_t Pos = 0;
  const char *Failed = nullptr;
};

//===----------------------------------------------------------------------===//
// Local symbol tables
//===----------------------------------------------------------------------===//

/// Collects the symbols a blob mentions and assigns dense local indices;
/// the body is built against the local indices while the table grows.
class SymbolSink {
public:
  explicit SymbolSink(const SignatureTable &Sig) : Sig(Sig) {}

  uint64_t localIndex(Symbol S) {
    auto [It, Inserted] = Local.emplace(S, Order.size());
    if (Inserted)
      Order.push_back(S);
    return It->second;
  }

  /// Renders the table: count, then each name length-prefixed.
  std::string render() const {
    std::string Out;
    putVarint(Out, Order.size());
    for (Symbol S : Order) {
      const std::string &Name = Sig.name(S);
      putVarint(Out, Name.size());
      Out += Name;
    }
    return Out;
  }

private:
  const SignatureTable &Sig;
  std::unordered_map<Symbol, uint64_t> Local;
  std::vector<Symbol> Order;
};

/// Upper bound on symbol-table entries and name lengths; corrupt counts
/// must not translate into unbounded allocations.
constexpr uint64_t MaxSymbols = 1 << 20;
constexpr uint64_t MaxNameBytes = 1 << 16;

/// Reads the local symbol table back and resolves every name in \p Sig.
/// Unknown names fail the decode: a blob only makes sense against the
/// signature it was produced for.
bool readSymbolTable(BinReader &R, const SignatureTable &Sig,
                     std::vector<Symbol> &Out, std::string &Error) {
  uint64_t Count = R.getVarint();
  if (!R.ok() || Count > MaxSymbols) {
    Error = R.ok() ? "symbol table too large" : R.error();
    return false;
  }
  Out.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    uint64_t Len = R.getVarint();
    if (R.ok() && Len > MaxNameBytes)
      R.fail("symbol name too long");
    std::string_view Name = R.getBytes(Len);
    if (!R.ok()) {
      Error = R.error();
      return false;
    }
    Symbol S = Sig.lookup(Name);
    if (S == InvalidSymbol) {
      Error = "unknown symbol '" + std::string(Name) + "'";
      return false;
    }
    Out.push_back(S);
  }
  return true;
}

/// Resolves a body reference into the local table.
Symbol localSymbol(BinReader &R, const std::vector<Symbol> &Table) {
  uint64_t Index = R.getVarint();
  if (!R.ok())
    return InvalidSymbol;
  if (Index >= Table.size()) {
    R.fail("symbol index out of range");
    return InvalidSymbol;
  }
  return Table[Index];
}

//===----------------------------------------------------------------------===//
// Literals
//===----------------------------------------------------------------------===//

void putLiteral(std::string &Out, const Literal &L) {
  Out.push_back(static_cast<char>(L.kind()));
  switch (L.kind()) {
  case LitKind::Int:
    putVarint(Out, zigzag(L.asInt()));
    break;
  case LitKind::Float: {
    uint64_t Bits;
    double V = L.asFloat();
    std::memcpy(&Bits, &V, sizeof(Bits));
    // Fixed eight bytes: float bit patterns have no small-value bias for
    // a varint to exploit.
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>(Bits >> (8 * I)));
    break;
  }
  case LitKind::Bool:
    Out.push_back(L.asBool() ? 1 : 0);
    break;
  case LitKind::String:
    putVarint(Out, L.asString().size());
    Out += L.asString();
    break;
  }
}

Literal getLiteral(BinReader &R) {
  uint8_t Kind = R.getByte();
  switch (static_cast<LitKind>(Kind)) {
  case LitKind::Int:
    return Literal(unzigzag(R.getVarint()));
  case LitKind::Float: {
    uint64_t Bits = 0;
    for (int I = 0; I != 8; ++I)
      Bits |= static_cast<uint64_t>(R.getByte()) << (8 * I);
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return Literal(V);
  }
  case LitKind::Bool:
    return Literal(R.getByte() != 0);
  case LitKind::String: {
    uint64_t Len = R.getVarint();
    return Literal(std::string(R.getBytes(Len)));
  }
  }
  R.fail("invalid literal kind");
  return Literal();
}

//===----------------------------------------------------------------------===//
// Edit scripts
//===----------------------------------------------------------------------===//

void putNode(std::string &Body, SymbolSink &Syms, const NodeRef &N) {
  putVarint(Body, Syms.localIndex(N.Tag));
  putVarint(Body, N.Uri);
}

NodeRef getNode(BinReader &R, const SignatureTable &Sig,
                const std::vector<Symbol> &Table) {
  NodeRef N;
  N.Tag = localSymbol(R, Table);
  N.Uri = R.getVarint();
  if (R.ok() && !Sig.hasTag(N.Tag))
    R.fail("node symbol is not a constructor tag");
  return N;
}

void putLitRefs(std::string &Body, SymbolSink &Syms,
                const std::vector<LitRef> &Lits) {
  putVarint(Body, Lits.size());
  for (const LitRef &L : Lits) {
    putVarint(Body, Syms.localIndex(L.Link));
    putLiteral(Body, L.Value);
  }
}

/// Caps on list lengths read back from a blob (see MaxSymbols).
constexpr uint64_t MaxListEntries = 1 << 24;

std::vector<LitRef> getLitRefs(BinReader &R,
                               const std::vector<Symbol> &Table) {
  std::vector<LitRef> Out;
  uint64_t Count = R.getVarint();
  if (R.ok() && Count > MaxListEntries)
    R.fail("literal list too long");
  if (!R.ok())
    return Out;
  Out.reserve(Count);
  for (uint64_t I = 0; I != Count && R.ok(); ++I) {
    LinkId Link = localSymbol(R, Table);
    Literal Value = getLiteral(R);
    Out.push_back(LitRef{Link, std::move(Value)});
  }
  return Out;
}

} // namespace

std::string persist::encodeEditScript(const SignatureTable &Sig,
                                      const EditScript &Script) {
  SymbolSink Syms(Sig);
  std::string Body;
  putVarint(Body, Script.size());
  for (const Edit &E : Script.edits()) {
    Body.push_back(static_cast<char>(E.Kind));
    putNode(Body, Syms, E.Node);
    switch (E.Kind) {
    case EditKind::Detach:
    case EditKind::Attach:
      putVarint(Body, Syms.localIndex(E.Link));
      putNode(Body, Syms, E.Parent);
      break;
    case EditKind::Load:
    case EditKind::Unload:
      putVarint(Body, E.Kids.size());
      for (const KidRef &K : E.Kids) {
        putVarint(Body, Syms.localIndex(K.Link));
        putVarint(Body, K.Uri);
      }
      putLitRefs(Body, Syms, E.Lits);
      break;
    case EditKind::Update:
      putLitRefs(Body, Syms, E.OldLits);
      putLitRefs(Body, Syms, E.Lits);
      break;
    }
  }
  return Syms.render() + Body;
}

DecodeScriptResult persist::decodeEditScript(const SignatureTable &Sig,
                                             std::string_view Blob) {
  DecodeScriptResult Result;
  BinReader R(Blob);
  std::vector<Symbol> Table;
  if (!readSymbolTable(R, Sig, Table, Result.Error))
    return Result;

  uint64_t Count = R.getVarint();
  if (R.ok() && Count > MaxListEntries)
    R.fail("edit script too long");
  std::vector<Edit> Edits;
  Edits.reserve(R.ok() ? Count : 0);
  for (uint64_t I = 0; I != Count && R.ok(); ++I) {
    uint8_t KindByte = R.getByte();
    if (KindByte > static_cast<uint8_t>(EditKind::Update)) {
      R.fail("invalid edit kind");
      break;
    }
    EditKind Kind = static_cast<EditKind>(KindByte);
    NodeRef Node = getNode(R, Sig, Table);
    switch (Kind) {
    case EditKind::Detach:
    case EditKind::Attach: {
      LinkId Link = localSymbol(R, Table);
      NodeRef Parent = getNode(R, Sig, Table);
      Edits.push_back(Kind == EditKind::Detach
                          ? Edit::detach(Node, Link, Parent)
                          : Edit::attach(Node, Link, Parent));
      break;
    }
    case EditKind::Load:
    case EditKind::Unload: {
      uint64_t NumKids = R.getVarint();
      if (R.ok() && NumKids > MaxListEntries)
        R.fail("kid list too long");
      std::vector<KidRef> Kids;
      Kids.reserve(R.ok() ? NumKids : 0);
      for (uint64_t K = 0; K != NumKids && R.ok(); ++K) {
        LinkId Link = localSymbol(R, Table);
        URI Uri = R.getVarint();
        Kids.push_back(KidRef{Link, Uri});
      }
      std::vector<LitRef> Lits = getLitRefs(R, Table);
      Edits.push_back(Kind == EditKind::Load
                          ? Edit::load(Node, std::move(Kids), std::move(Lits))
                          : Edit::unload(Node, std::move(Kids),
                                         std::move(Lits)));
      break;
    }
    case EditKind::Update: {
      std::vector<LitRef> Old = getLitRefs(R, Table);
      std::vector<LitRef> Now = getLitRefs(R, Table);
      Edits.push_back(Edit::update(Node, std::move(Old), std::move(Now)));
      break;
    }
    }
  }
  if (!R.ok()) {
    Result.Error = R.error();
    return Result;
  }
  if (!R.atEnd()) {
    Result.Error = "trailing bytes after edit script";
    return Result;
  }
  Result.Ok = true;
  Result.Script = EditScript(std::move(Edits));
  return Result;
}

namespace {

void encodeTreeNode(std::string &Body, SymbolSink &Syms, const Tree *T) {
  putVarint(Body, Syms.localIndex(T->tag()));
  putVarint(Body, T->uri());
  putVarint(Body, T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    encodeTreeNode(Body, Syms, T->kid(I));
  putVarint(Body, T->numLits());
  for (size_t I = 0, E = T->numLits(); I != E; ++I)
    putLiteral(Body, T->lit(I));
}

/// Recursion guard: a hostile blob can claim arbitrarily deep nesting at
/// ~4 bytes per level, which must not become a stack overflow.
constexpr unsigned MaxTreeDepth = 8192;

/// Decodes one node, validating the claimed structure against the
/// signature before allocating anything in \p Ctx: kid/literal counts
/// must match the tag's arity, literal kinds its literal specs, kid
/// sorts its slot sorts, and URIs must be unique within the blob.
Tree *decodeTreeNode(BinReader &R, const SignatureTable &Sig,
                     TreeContext &Ctx, const std::vector<Symbol> &Table,
                     std::unordered_set<URI> &SeenUris, unsigned Depth,
                     bool PreserveUris) {
  if (Depth > MaxTreeDepth) {
    R.fail("tree too deep");
    return nullptr;
  }
  TagId Tag = localSymbol(R, Table);
  URI Uri = R.getVarint();
  if (!R.ok())
    return nullptr;
  if (!Sig.hasTag(Tag)) {
    R.fail("node symbol is not a constructor tag");
    return nullptr;
  }
  if (!SeenUris.insert(Uri).second) {
    R.fail("duplicate URI in tree");
    return nullptr;
  }
  const TagSignature &TagSig = Sig.signature(Tag);

  uint64_t NumKids = R.getVarint();
  if (R.ok() && NumKids != TagSig.Kids.size())
    R.fail("kid count does not match tag signature");
  if (!R.ok())
    return nullptr;
  std::vector<Tree *> Kids;
  Kids.reserve(NumKids);
  for (uint64_t I = 0; I != NumKids; ++I) {
    Tree *Kid =
        decodeTreeNode(R, Sig, Ctx, Table, SeenUris, Depth + 1, PreserveUris);
    if (Kid == nullptr)
      return nullptr;
    if (!Sig.isSubsort(Sig.signature(Kid->tag()).Result,
                       TagSig.Kids[I].Sort)) {
      R.fail("kid sort does not match slot sort");
      return nullptr;
    }
    Kids.push_back(Kid);
  }

  uint64_t NumLits = R.getVarint();
  if (R.ok() && NumLits != TagSig.Lits.size())
    R.fail("literal count does not match tag signature");
  if (!R.ok())
    return nullptr;
  std::vector<Literal> Lits;
  Lits.reserve(NumLits);
  for (uint64_t I = 0; I != NumLits; ++I) {
    Literal L = getLiteral(R);
    if (!R.ok())
      return nullptr;
    if (L.kind() != TagSig.Lits[I].Kind) {
      R.fail("literal kind does not match tag signature");
      return nullptr;
    }
    Lits.push_back(std::move(L));
  }
  return PreserveUris ? Ctx.adoptWithUri(Tag, Uri, std::move(Kids),
                                         std::move(Lits))
                      : Ctx.make(Tag, std::move(Kids), std::move(Lits));
}

} // namespace

std::string persist::encodeTree(const SignatureTable &Sig, const Tree *T) {
  SymbolSink Syms(Sig);
  std::string Body;
  encodeTreeNode(Body, Syms, T);
  return Syms.render() + Body;
}

DecodeTreeResult persist::decodeTree(const SignatureTable &Sig,
                                     TreeContext &Ctx,
                                     std::string_view Blob) {
  return decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/true);
}

DecodeTreeResult persist::decodeTree(const SignatureTable &Sig,
                                     TreeContext &Ctx, std::string_view Blob,
                                     bool PreserveUris) {
  DecodeTreeResult Result;
  BinReader R(Blob);
  std::vector<Symbol> Table;
  if (!readSymbolTable(R, Sig, Table, Result.Error))
    return Result;
  std::unordered_set<URI> SeenUris;
  Tree *Root = decodeTreeNode(R, Sig, Ctx, Table, SeenUris, 0, PreserveUris);
  if (Root == nullptr || !R.ok()) {
    Result.Error = R.ok() ? "invalid tree blob" : R.error();
    return Result;
  }
  if (!R.atEnd()) {
    Result.Error = "trailing bytes after tree";
    return Result;
  }
  Result.Root = Root;
  return Result;
}

//===- persist/Persistence.cpp - Durability for the document store ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Persistence.h"

#include "blame/Provenance.h"
#include "persist/BinaryCodec.h"
#include "persist/Snapshot.h"
#include "truechange/Inverse.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include <unistd.h>

using namespace truediff;
using namespace truediff::persist;
using service::DocId;
using service::DocumentStore;

namespace {

WalKind kindFor(DocumentStore::StoreOp Op) {
  switch (Op) {
  case DocumentStore::StoreOp::Open:
    return WalKind::Open;
  case DocumentStore::StoreOp::Submit:
    return WalKind::Submit;
  case DocumentStore::StoreOp::Rollback:
    return WalKind::Rollback;
  }
  return WalKind::Submit;
}

} // namespace

Persistence::Persistence(const SignatureTable &Sig, Config C)
    : Sig(Sig), Cfg(C), Io(C.Env != nullptr ? *C.Env : realIoEnv()),
      Wal(C.Dir, WalWriter::Config{C.FsyncEvery, C.SegmentBytes}, C.Env) {
  Brk.BackoffMs = std::max(1u, Cfg.BreakerBackoffMs);
}

Persistence::~Persistence() {
  {
    std::lock_guard<std::mutex> Lock(BgMu);
    StopBg = true;
  }
  BgCv.notify_all();
  if (Background.joinable())
    Background.join();
  // The WalWriter destructor fsyncs the tail.
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

void Persistence::scheduleProbeLocked() {
  unsigned Jitter =
      static_cast<unsigned>(JitterRng.below(Brk.BackoffMs / 2 + 1));
  Brk.NextProbeAt = Clock::now() + std::chrono::milliseconds(
                                       static_cast<uint64_t>(Brk.BackoffMs) +
                                       Jitter);
}

void Persistence::noteIoSuccessLocked() {
  Brk.ConsecutiveFailures = 0;
  if (Brk.Open) {
    Brk.Open = false;
    DegradedUsTotal += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              Brk.OpenedAt)
            .count());
    Brk.BackoffMs = std::max(1u, Cfg.BreakerBackoffMs);
  }
}

void Persistence::noteIoFailureLocked() {
  ++Counters.WalAppendFailures;
  if (Brk.Open) {
    // A failed half-open probe: stay open, back off further.
    ++Counters.ProbeFailures;
    Brk.BackoffMs = static_cast<unsigned>(
        std::min<uint64_t>(static_cast<uint64_t>(Brk.BackoffMs) * 2,
                           std::max(1u, Cfg.BreakerBackoffMaxMs)));
    scheduleProbeLocked();
    return;
  }
  ++Brk.ConsecutiveFailures;
  if (Cfg.BreakerThreshold != 0 &&
      Brk.ConsecutiveFailures >= Cfg.BreakerThreshold)
    tripLocked();
}

void Persistence::tripLocked() {
  Brk.Open = true;
  Brk.OpenedAt = Clock::now();
  Brk.BackoffMs = std::max(1u, Cfg.BreakerBackoffMs);
  ++Counters.BreakerTrips;
  scheduleProbeLocked();
}

void Persistence::noteSnapshotIoLocked(bool Ok) {
  if (Ok) {
    // Healthy snapshot I/O is evidence the disk works, but only a
    // successful WAL probe closes an open breaker: the WAL is what the
    // durability contract rides on.
    if (!Brk.Open)
      Brk.ConsecutiveFailures = 0;
    return;
  }
  ++Counters.SnapshotFailures;
  if (Brk.Open)
    return; // see the header: never starve the probe schedule
  ++Brk.ConsecutiveFailures;
  if (Cfg.BreakerThreshold != 0 &&
      Brk.ConsecutiveFailures >= Cfg.BreakerThreshold)
    tripLocked();
}

bool Persistence::logRecord(const WalRecord &Rec, bool &Durable) {
  bool Probing = false;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    if (Brk.Open) {
      // Half-open: one appender at a time may probe, and only once the
      // backoff has elapsed; everyone else is shed immediately.
      if (Brk.ProbeInFlight || Clock::now() < Brk.NextProbeAt)
        return false;
      Brk.ProbeInFlight = true;
      Probing = true;
    }
  }
  bool Ok = false;
  try {
    // A failed append poisons the segment (its tail may hold a torn
    // frame); rotate to a clean one before trying again.
    if (Wal.poisoned())
      Wal.reopenFresh();
    Durable = Wal.append(Rec);
    Ok = true;
  } catch (const std::exception &) {
  }
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    if (Probing)
      Brk.ProbeInFlight = false;
    if (Ok)
      noteIoSuccessLocked();
    else
      noteIoFailureLocked();
  }
  return Ok;
}

bool Persistence::probe() {
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    if (!Brk.Open)
      return true;
    if (Brk.ProbeInFlight || Clock::now() < Brk.NextProbeAt)
      return false;
    Brk.ProbeInFlight = true;
  }
  bool Ok = false;
  try {
    Wal.reopenFresh();
    Ok = true;
  } catch (const std::exception &) {
  }
  std::lock_guard<std::mutex> Lock(StateMu);
  Brk.ProbeInFlight = false;
  if (Ok)
    noteIoSuccessLocked();
  else
    noteIoFailureLocked();
  return !Brk.Open;
}

bool Persistence::degraded() const {
  std::lock_guard<std::mutex> Lock(StateMu);
  return Brk.Open;
}

//===----------------------------------------------------------------------===//
// Store listeners
//===----------------------------------------------------------------------===//

void Persistence::onScript(DocId Doc, uint64_t Version,
                           DocumentStore::StoreOp Op, const EditScript &Script,
                           const DocumentStore::ScriptInfo &Info) {
  WalRecord Rec;
  Rec.Kind = kindFor(Op);
  Rec.Doc = Doc;
  Rec.Version = Version;
  Rec.Script = encodeEditScript(Sig, Script);
  Rec.Author = std::string(Info.Author);
  bool Skip = false;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Rec.Seq = ++NextSeq;
    DocState &DS = DocStates[Doc];
    DS.LastSeq = Rec.Seq;
    ++DS.OpsSinceSnap;
    // Log-chain gap: an earlier op on this document never reached the
    // log, so a record appended now would replay against the wrong
    // base. A pending erase tombstone is the same disease for a
    // re-opened id: until the tombstone lands, replay resurrects the
    // erased predecessor, and a record logged now would apply on top of
    // it. Stay unlogged until a resync snapshot covers the gap.
    Skip = DS.NeedsResync || PendingTombs.count(Doc) != 0;
  }
  // Listener invocations are serialized by the store's listener mutex,
  // so sequence order equals append order.
  bool Durable = false;
  bool Logged = !Skip && logRecord(Rec, Durable);
  if (!Logged) {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Counters.UnloggedOps;
    auto It = DocStates.find(Doc);
    if (It != DocStates.end()) {
      It->second.NeedsResync = true;
      ++It->second.UnloggedOps;
    }
  }
  if (DurListener)
    DurListener(Doc, Rec.Seq, Logged, Logged && Durable);
}

void Persistence::onErase(DocId Doc) {
  WalRecord Rec;
  Rec.Kind = WalKind::Erase;
  Rec.Doc = Doc;
  bool Skip = false;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Rec.Seq = ++NextSeq;
    auto It = DocStates.find(Doc);
    Skip = It != DocStates.end() && It->second.NeedsResync;
    DocStates.erase(Doc);
  }
  bool Durable = false;
  bool Logged = !Skip && logRecord(Rec, Durable);
  if (!Logged) {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Counters.UnloggedOps;
  }

  // Tombstone so compaction can drop the erase record and everything
  // before it without old records resurrecting the document. Runs under
  // the shard lock (erase listener contract), which also orders it
  // before any re-open of the same id. When the erase record itself is
  // unlogged, the tombstone is the *only* thing preventing recovery
  // from resurrecting the document, so a failed write is queued for
  // retry instead of shrugged off.
  SnapshotData Tomb;
  Tomb.Doc = Doc;
  Tomb.Seq = Rec.Seq;
  Tomb.Tombstone = true;
  bool TombOk = false;
  try {
    writeSnapshotFile(Cfg.Dir, Tomb, &Io);
    TombOk = true;
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Counters.TombstonesWritten;
    noteSnapshotIoLocked(true);
    PendingTombs.erase(Doc);
  } catch (const std::exception &) {
    std::lock_guard<std::mutex> Lock(StateMu);
    noteSnapshotIoLocked(false);
    if (!Logged)
      PendingTombs[Doc] = Rec.Seq;
  }
  if (TombOk) {
    // Older snapshots of the erased document are superseded; best
    // effort.
    for (const SnapshotFileName &F : listSnapshotFiles(Cfg.Dir))
      if (F.Doc == Doc && F.Seq < Rec.Seq &&
          Io.unlinkFile(F.Path.c_str()) == 0) {
        std::lock_guard<std::mutex> Lock(StateMu);
        ++Counters.SnapshotsDeleted;
      }
  }
  if (DurListener)
    DurListener(Doc, Rec.Seq, Logged || TombOk, (Logged && Durable) || TombOk);
}

void Persistence::writePendingTombstones() {
  std::unordered_map<uint64_t, uint64_t> Pending;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Pending = PendingTombs;
  }
  for (const auto &[Doc, Seq] : Pending) {
    SnapshotData Tomb;
    Tomb.Doc = Doc;
    Tomb.Seq = Seq;
    Tomb.Tombstone = true;
    try {
      writeSnapshotFile(Cfg.Dir, Tomb, &Io);
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Counters.TombstonesWritten;
      noteSnapshotIoLocked(true);
      PendingTombs.erase(Doc);
    } catch (const std::exception &) {
      std::lock_guard<std::mutex> Lock(StateMu);
      noteSnapshotIoLocked(false);
    }
  }
}

size_t Persistence::resyncDegraded() {
  if (Store == nullptr)
    return 0;
  // Capture each marked document's unlogged count; the mark is cleared
  // only if no further unlogged op raced the snapshot, so an op that
  // commits between capture and clear keeps the document marked for the
  // next pass.
  std::vector<std::pair<DocId, uint64_t>> Need;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    for (const auto &[Doc, DS] : DocStates)
      if (DS.NeedsResync)
        Need.emplace_back(Doc, DS.UnloggedOps);
  }
  size_t Repaired = 0;
  for (const auto &[Doc, UnloggedAtCapture] : Need) {
    uint64_t SnapSeq = 0;
    if (!snapshotDocument(Doc, &SnapSeq))
      continue; // erased meanwhile, or the write failed: retry next pass
    std::lock_guard<std::mutex> Lock(StateMu);
    // A snapshot at SnapSeq only supersedes a pending erase tombstone it
    // actually covers: an erase + re-open racing this pass leaves a
    // tombstone *newer* than the state we captured, and dropping it
    // would let recovery resurrect the erased predecessor underneath
    // the re-opened document.
    auto Pend = PendingTombs.find(Doc);
    if (Pend != PendingTombs.end() && Pend->second <= SnapSeq)
      PendingTombs.erase(Pend);
    // Same incarnation test for the resync mark: clear it only if the
    // snapshot reaches the document's current sequence number. The
    // unlogged-op count alone is not enough -- an erase + re-open resets
    // it, and the new incarnation can coincidentally match the captured
    // count while the snapshot covers none of its operations.
    auto It = DocStates.find(Doc);
    if (It != DocStates.end() && It->second.NeedsResync &&
        It->second.UnloggedOps == UnloggedAtCapture &&
        It->second.LastSeq <= SnapSeq) {
      It->second.NeedsResync = false;
      It->second.UnloggedOps = 0;
      ++Counters.ResyncSnapshots;
      ++Repaired;
    }
  }
  return Repaired;
}

void Persistence::attach(DocumentStore &S) {
  Store = &S;
  S.addScriptListener([this](DocId Doc, uint64_t Version,
                             DocumentStore::StoreOp Op,
                             const EditScript &Script,
                             const DocumentStore::ScriptInfo &Info) {
    onScript(Doc, Version, Op, Script, Info);
  });
  S.addEraseListener([this](DocId Doc) { onErase(Doc); });
  if (Cfg.BackgroundIntervalMs != 0 && !Background.joinable())
    Background = std::thread([this] { backgroundLoop(); });
}

bool Persistence::snapshotDocument(DocId Doc, uint64_t *CapturedSeq) {
  SnapshotData Snap;
  // The open author is immutable for a document incarnation, so it is
  // safe to read before taking the document lock (openAuthor takes its
  // own locks; calling it inside withDocument would deadlock).
  if (Store != nullptr)
    Snap.OpenAuthor = Store->openAuthor(Doc);
  bool Found =
      Store != nullptr &&
      Store->withDocument(
          Doc, [&](const Tree *T, uint64_t Version,
                   const std::vector<DocumentStore::HistoryEntry> &History) {
            // The document lock is held: no new record for this document
            // can be logged concurrently, so LastSeq is exactly the
            // sequence number of the state being captured.
            {
              std::lock_guard<std::mutex> Lock(StateMu);
              Snap.Seq = DocStates[Doc].LastSeq;
            }
            Snap.Doc = Doc;
            Snap.Version = Version;
            Snap.TreeBlob = encodeTree(Sig, T);
            for (const DocumentStore::HistoryEntry &H : History) {
              Snap.History.emplace_back(H.Version,
                                        encodeEditScript(Sig, *H.Script));
              Snap.HistoryAuthors.push_back(
                  H.Author != nullptr ? *H.Author : std::string());
            }
            // The index listener updates under this same document lock,
            // so the provenance blob matches the tree exactly.
            if (ProvSource)
              Snap.ProvBlob = ProvSource(Doc);
          });
  if (!Found)
    return false;

  try {
    writeSnapshotFile(Cfg.Dir, Snap, &Io);
  } catch (const std::exception &) {
    std::lock_guard<std::mutex> Lock(StateMu);
    noteSnapshotIoLocked(false);
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Counters.SnapshotsWritten;
    noteSnapshotIoLocked(true);
    auto It = DocStates.find(Doc);
    if (It != DocStates.end()) {
      if (It->second.SnapSeq < Snap.Seq)
        It->second.SnapSeq = Snap.Seq;
      It->second.OpsSinceSnap = 0;
    }
  }
  // Superseded snapshots of this document are dead weight; best effort.
  for (const SnapshotFileName &F : listSnapshotFiles(Cfg.Dir))
    if (F.Doc == Doc && F.Seq < Snap.Seq &&
        Io.unlinkFile(F.Path.c_str()) == 0) {
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Counters.SnapshotsDeleted;
    }
  if (CapturedSeq != nullptr)
    *CapturedSeq = Snap.Seq;
  return true;
}

size_t Persistence::snapshotDueDocuments() {
  if (Cfg.SnapshotEvery == 0)
    return 0;
  std::vector<DocId> Due;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    for (const auto &[Doc, DS] : DocStates)
      if (DS.OpsSinceSnap >= Cfg.SnapshotEvery)
        Due.push_back(Doc);
  }
  size_t Written = 0;
  for (DocId Doc : Due)
    if (snapshotDocument(Doc))
      ++Written;
  return Written;
}

void Persistence::compact() {
  // Coverage comes from valid snapshot *contents*, never file names.
  std::unordered_map<uint64_t, uint64_t> BestSeq;
  struct ValidFile {
    std::string Path;
    uint64_t Doc;
    uint64_t Seq;
  };
  std::vector<ValidFile> Valid;
  for (const SnapshotFileName &F : listSnapshotFiles(Cfg.Dir)) {
    ReadSnapshotResult R = readSnapshotFile(F.Path);
    if (!R.Ok)
      continue; // corrupt files are recovery's diagnostic, not ours
    Valid.push_back({F.Path, R.Snap.Doc, R.Snap.Seq});
    uint64_t &Best = BestSeq[R.Snap.Doc];
    Best = std::max(Best, R.Snap.Seq);
  }

  // Superseded snapshots first, so segment coverage below reflects what
  // will remain on disk.
  for (const ValidFile &F : Valid)
    if (F.Seq < BestSeq[F.Doc] && Io.unlinkFile(F.Path.c_str()) == 0) {
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Counters.SnapshotsDeleted;
    }

  // A closed segment is dead iff every decodable record in it is covered
  // by a snapshot. Torn tail bytes are dead by the recovery contract
  // (recovery discards them too), so they do not pin a segment.
  uint64_t Current = Wal.currentSegment();
  for (const auto &[Index, Path] : listWalSegments(Cfg.Dir)) {
    if (Index >= Current)
      continue;
    WalSegment Seg = readWalSegment(Index, Path);
    if (!Seg.HeaderOk)
      continue; // unreadable: keep for post-mortem, recovery skips it
    bool Dead = true;
    for (const WalRecord &Rec : Seg.Records) {
      auto It = BestSeq.find(Rec.Doc);
      if (It == BestSeq.end() || It->second < Rec.Seq) {
        Dead = false;
        break;
      }
    }
    if (Dead && Io.unlinkFile(Path.c_str()) == 0) {
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Counters.SegmentsDeleted;
    }
  }
  std::lock_guard<std::mutex> Lock(StateMu);
  ++Counters.CompactionRuns;
}

bool Persistence::flush() {
  try {
    Wal.flush();
    return true;
  } catch (const std::exception &) {
    // The tail's durability is unknown; nothing was acknowledged as
    // durable on its strength, so the contract holds. Feed the breaker:
    // a sick fsync is the same disease as a sick write.
    std::lock_guard<std::mutex> Lock(StateMu);
    noteIoFailureLocked();
    return false;
  }
}

void Persistence::backgroundLoop() {
  std::unique_lock<std::mutex> Lock(BgMu);
  while (!StopBg) {
    BgCv.wait_for(Lock, std::chrono::milliseconds(Cfg.BackgroundIntervalMs),
                  [this] { return StopBg; });
    if (StopBg)
      break;
    Lock.unlock();
    // Bound the group-commit loss window in time, not just in records.
    flush();
    // Probe first so a breaker that just re-closed is resynced in the
    // same pass; both are no-ops on a healthy service.
    probe();
    if (!degraded()) {
      writePendingTombstones();
      resyncDegraded();
    }
    size_t Wrote = snapshotDueDocuments();
    if (Wrote != 0 && Cfg.CompactAfterSnapshot)
      compact();
    Lock.lock();
  }
}

Persistence::Stats Persistence::stats() const {
  Stats Out;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Out = Counters;
    Out.Degraded = Brk.Open;
    Out.DegradedUs = DegradedUsTotal;
    if (Brk.Open)
      Out.DegradedUs += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                Brk.OpenedAt)
              .count());
    Out.PendingTombstones = PendingTombs.size();
    for (const auto &[Doc, DS] : DocStates)
      if (DS.NeedsResync)
        ++Out.DocsNeedingResync;
  }
  Out.Wal = Wal.stats();
  Out.CurrentSegment = Wal.currentSegment();
  return Out;
}

Persistence::HealthInfo Persistence::healthInfo() const {
  Stats S = stats();
  HealthInfo H;
  H.Degraded = S.Degraded;
  H.BreakerTrips = S.BreakerTrips;
  H.DegradedUs = S.DegradedUs;
  H.UnloggedOps = S.UnloggedOps;
  H.DocsNeedingResync = S.DocsNeedingResync;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    H.ConsecutiveFailures = Brk.ConsecutiveFailures;
  }
  return H;
}

std::string Persistence::statsJson() const {
  Stats S = stats();
  auto N = [](uint64_t V) { return std::to_string(V); };
  std::string Json = "{\"wal\":{\"records\":" + N(S.Wal.Records) +
                     ",\"bytes\":" + N(S.Wal.Bytes) +
                     ",\"fsyncs\":" + N(S.Wal.Fsyncs) +
                     ",\"rotations\":" + N(S.Wal.Rotations) +
                     ",\"segment\":" + N(S.CurrentSegment) + "}";
  Json += ",\"snapshots\":{\"written\":" + N(S.SnapshotsWritten) +
          ",\"tombstones\":" + N(S.TombstonesWritten) +
          ",\"deleted\":" + N(S.SnapshotsDeleted) +
          ",\"failures\":" + N(S.SnapshotFailures) + "}";
  Json += ",\"compaction\":{\"runs\":" + N(S.CompactionRuns) +
          ",\"segments_deleted\":" + N(S.SegmentsDeleted) + "}";
  {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f",
                  static_cast<double>(S.DegradedUs) / 1e6);
    Json += std::string(",\"breaker\":{\"degraded\":") +
            (S.Degraded ? "true" : "false") +
            ",\"trips\":" + N(S.BreakerTrips) +
            ",\"append_failures\":" + N(S.WalAppendFailures) +
            ",\"probe_failures\":" + N(S.ProbeFailures) +
            ",\"unlogged_ops\":" + N(S.UnloggedOps) +
            ",\"resync_snapshots\":" + N(S.ResyncSnapshots) +
            ",\"pending_tombstones\":" + N(S.PendingTombstones) +
            ",\"docs_needing_resync\":" + N(S.DocsNeedingResync) +
            ",\"wal_reopens\":" + N(S.Wal.Reopens) +
            ",\"degraded_seconds\":" + Buf + "}";
  }
  const RecoveryResult &R = LastRecovery;
  Json += ",\"recovery\":{\"docs\":" + N(R.DocsRecovered) +
          ",\"records_replayed\":" + N(R.RecordsReplayed) +
          ",\"records_skipped\":" + N(R.RecordsSkipped) +
          ",\"orphans\":" + N(R.OrphanRecords) +
          ",\"torn_bytes\":" + N(R.TornBytes) +
          ",\"snapshots_loaded\":" + N(R.SnapshotsLoaded) + "}";
  Json += "}";
  return Json;
}

RecoveryResult Persistence::recoverAndAttach(DocumentStore &S,
                                             blame::ProvenanceIndex *Prov) {
  RecoveryResult R = recover(Sig, Cfg.Dir, S, Prov);
  LastRecovery = R;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    NextSeq = std::max(NextSeq, R.MaxSeq);
    for (const RecoveryResult::RecoveredDoc &D : R.Docs) {
      DocState &DS = DocStates[D.Doc];
      DS.LastSeq = D.LastSeq;
      DS.SnapSeq = D.SnapSeq;
      DS.OpsSinceSnap = 0;
    }
  }
  attach(S);
  return R;
}

//===----------------------------------------------------------------------===//
// Recovery
//===----------------------------------------------------------------------===//

namespace {

/// Replay-time state of one document.
struct ReplayDoc {
  std::unique_ptr<MTree> M;
  uint64_t Version = 0;
  uint64_t SnapSeq = 0;
  uint64_t LastSeq = 0;
  bool Live = false;
  /// A record failed to decode or type-check: keep the current (still
  /// consistent) state, apply nothing further.
  bool Frozen = false;
  /// A record tore the tree mid-apply: exclude the document entirely.
  bool Dropped = false;
  /// Forward scripts of the rollback ring (with authors), oldest first.
  std::vector<DocumentStore::RestoreEntry> History;
  /// Author of version 0, from the snapshot or a replayed open record.
  std::string OpenAuthor;
};

} // namespace

RecoveryResult Persistence::recover(const SignatureTable &Sig,
                                    const std::string &Dir,
                                    DocumentStore &Store,
                                    blame::ProvenanceIndex *Prov) {
  RecoveryResult R;
  LinearTypeChecker Checker(Sig);
  std::unordered_map<uint64_t, ReplayDoc> Docs;
  if (Prov != nullptr)
    Prov->clear();

  // Phase 1: newest valid snapshot per document. Validity is decided by
  // file contents (CRC + full decode); names only locate the files.
  std::unordered_map<uint64_t, SnapshotData> BestSnap;
  for (const SnapshotFileName &F : listSnapshotFiles(Dir)) {
    ReadSnapshotResult Res = readSnapshotFile(F.Path);
    if (!Res.Ok) {
      ++R.SnapshotsCorrupt;
      continue;
    }
    auto It = BestSnap.find(Res.Snap.Doc);
    if (It == BestSnap.end() || It->second.Seq < Res.Snap.Seq)
      BestSnap[Res.Snap.Doc] = std::move(Res.Snap);
  }
  for (auto &[Doc, Snap] : BestSnap) {
    ++R.SnapshotsLoaded;
    R.MaxSeq = std::max(R.MaxSeq, Snap.Seq);
    ReplayDoc &D = Docs[Doc];
    D.SnapSeq = D.LastSeq = Snap.Seq;
    if (Snap.Tombstone)
      continue; // D.Live stays false: erased as of Snap.Seq
    TreeContext Ctx(Sig); // transient: MTree copies the structure out
    DecodeTreeResult TreeRes = decodeTree(Sig, Ctx, Snap.TreeBlob);
    if (!TreeRes.ok()) {
      // CRC passed but the blob is undecodable: without the base state
      // the log suffix is useless for this document.
      ++R.SnapshotsCorrupt;
      ++R.DocsDropped;
      D.Dropped = true;
      continue;
    }
    D.M = std::make_unique<MTree>(MTree::fromTree(Sig, TreeRes.Root));
    D.Version = Snap.Version;
    D.Live = true;
    D.OpenAuthor = Snap.OpenAuthor;
    if (Prov != nullptr && !Snap.ProvBlob.empty() &&
        !Prov->installSnapshot(Doc, Snap.ProvBlob))
      Prov->eraseDoc(Doc); // malformed blob: degrade to unattributed
    for (size_t I = 0; I != Snap.History.size(); ++I) {
      DecodeScriptResult SR = decodeEditScript(Sig, Snap.History[I].second);
      if (!SR.Ok) {
        // History only bounds rollback depth; losing it is benign.
        D.History.clear();
        break;
      }
      DocumentStore::RestoreEntry E;
      E.Version = Snap.History[I].first;
      E.Script = std::move(SR.Script);
      if (I < Snap.HistoryAuthors.size())
        E.Author = Snap.HistoryAuthors[I];
      D.History.push_back(std::move(E));
    }
  }

  // Phase 2: replay the WAL suffix in log order. Segment indices order
  // segments; within a segment, append order holds. Torn tails were
  // already cut by readWalSegment.
  size_t HistoryCap = Store.config().HistoryCapacity;
  for (const auto &[Index, Path] : listWalSegments(Dir)) {
    WalSegment Seg = readWalSegment(Index, Path);
    R.TornBytes += Seg.TornBytes;
    if (!Seg.HeaderOk)
      continue;
    for (WalRecord &Rec : Seg.Records) {
      R.MaxSeq = std::max(R.MaxSeq, Rec.Seq);
      ReplayDoc &D = Docs[Rec.Doc];
      if (Rec.Seq <= D.SnapSeq || D.Dropped || D.Frozen) {
        ++R.RecordsSkipped;
        continue;
      }
      D.LastSeq = Rec.Seq;

      if (Rec.Kind == WalKind::Erase) {
        if (!D.Live) {
          ++R.OrphanRecords;
          continue;
        }
        D.M.reset();
        D.Live = false;
        D.History.clear();
        if (Prov != nullptr)
          Prov->eraseDoc(Rec.Doc);
        ++R.RecordsReplayed;
        continue;
      }

      // Orphan classification precedes script decoding: a record that log
      // order says cannot apply (open over a live document, submit or
      // rollback after an erase) is the erase-overtakes-in-flight race
      // artifact whatever its payload holds, and skipping it must not
      // freeze the document.
      if (Rec.Kind == WalKind::Open ? D.Live : !D.Live) {
        ++R.OrphanRecords;
        continue;
      }

      DecodeScriptResult SR = decodeEditScript(Sig, Rec.Script);
      if (!SR.Ok) {
        D.Frozen = true;
        ++R.InvalidRecords;
        continue;
      }

      if (Rec.Kind == WalKind::Open) {
        if (!Checker.checkInitializing(SR.Script).Ok) {
          D.Frozen = true;
          ++R.InvalidRecords;
          continue;
        }
        auto M = std::make_unique<MTree>(Sig);
        MTree::PatchResult P = M->patchChecked(SR.Script);
        if (!P.Ok) {
          // The fresh MTree is discarded, so nothing tears; but the
          // document cannot come into being.
          D.Frozen = true;
          ++R.InvalidRecords;
          continue;
        }
        R.EditsReplayed += SR.Script.size();
        D.M = std::move(M);
        D.Live = true;
        D.Version = 0;
        D.History.clear();
        D.OpenAuthor = Rec.Author;
        if (Prov != nullptr)
          Prov->apply(Rec.Doc, Rec.Version, DocumentStore::StoreOp::Open,
                      Rec.Author, SR.Script);
        ++R.RecordsReplayed;
        continue;
      }

      // Submit or Rollback on an existing document.
      if (!Checker.checkWellTyped(SR.Script).Ok) {
        D.Frozen = true;
        ++R.InvalidRecords;
        continue;
      }
      MTree::PatchResult P = D.M->patchChecked(SR.Script);
      if (!P.Ok) {
        // patchChecked applies edit by edit; a mid-script failure leaves
        // the tree torn, so the document is excluded rather than
        // restored half-applied.
        D.Dropped = true;
        D.Live = false;
        D.M.reset();
        D.History.clear();
        if (Prov != nullptr)
          Prov->eraseDoc(Rec.Doc);
        ++R.DocsDropped;
        ++R.InvalidRecords;
        continue;
      }
      R.EditsReplayed += SR.Script.size();
      D.Version = Rec.Version;
      if (Prov != nullptr)
        Prov->apply(Rec.Doc, Rec.Version,
                    Rec.Kind == WalKind::Submit
                        ? DocumentStore::StoreOp::Submit
                        : DocumentStore::StoreOp::Rollback,
                    Rec.Author, SR.Script);
      if (Rec.Kind == WalKind::Submit) {
        DocumentStore::RestoreEntry E;
        E.Version = Rec.Version;
        E.Script = std::move(SR.Script);
        E.Author = std::move(Rec.Author);
        D.History.push_back(std::move(E));
        if (D.History.size() > HistoryCap)
          D.History.erase(D.History.begin());
      } else {
        // Rollback consumed the ring's newest record.
        if (!D.History.empty() && D.History.back().Version == Rec.Version + 1)
          D.History.pop_back();
        else
          D.History.clear(); // ring out of sync (capacity eviction): drop
      }
      ++R.RecordsReplayed;
    }
  }

  // Phase 3: install the survivors.
  for (auto &[Doc, D] : Docs) {
    if (!D.Live || !D.M)
      continue;
    service::StoreResult Res = Store.restore(
        Doc, D.Version,
        [&](TreeContext &Ctx) {
          service::BuildResult B;
          B.Root = D.M->toTreePreservingUris(Ctx);
          if (B.Root == nullptr)
            B.Error = "recovered tree is not closed";
          return B;
        },
        std::move(D.History), D.OpenAuthor);
    if (!Res.Ok) {
      if (Prov != nullptr)
        Prov->eraseDoc(Doc);
      ++R.DocsDropped;
      continue;
    }
    ++R.DocsRecovered;
    R.NodesRestored += Res.TreeSize;
    R.Docs.push_back({Doc, D.LastSeq, D.SnapSeq, D.Version});
  }
  return R;
}

//===- persist/Snapshot.cpp - Per-document snapshot files ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Snapshot.h"

#include "persist/Crc32c.h"
#include "persist/Varint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::persist;

namespace {

constexpr char FileMagic[8] = {'T', 'D', 'S', 'N', 'A', 'P', '1', '\n'};

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

uint32_t getU32(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return V;
}

[[noreturn]] void throwErrno(const std::string &What) {
  throw std::runtime_error(What + ": " + std::strerror(errno));
}

std::string snapshotPath(const std::string &Dir, uint64_t Doc,
                         uint64_t Seq) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "snap-%llu-%llu.snap",
                static_cast<unsigned long long>(Doc),
                static_cast<unsigned long long>(Seq));
  return Dir + "/" + Buf;
}

void syncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

} // namespace

std::string persist::writeSnapshotFile(const std::string &Dir,
                                       const SnapshotData &Snap, IoEnv *E) {
  IoEnv &Env = E != nullptr ? *E : realIoEnv();
  std::string Payload;
  putVarint(Payload, Snap.Doc);
  putVarint(Payload, Snap.Seq);
  putVarint(Payload, Snap.Version);
  putVarint(Payload, Snap.Tombstone ? 1 : 0);
  putVarint(Payload, Snap.TreeBlob.size());
  Payload += Snap.TreeBlob;
  putVarint(Payload, Snap.History.size());
  for (const auto &[Version, Blob] : Snap.History) {
    putVarint(Payload, Version);
    putVarint(Payload, Blob.size());
    Payload += Blob;
  }
  putVarint(Payload, Snap.ProvBlob.size());
  Payload += Snap.ProvBlob;
  putVarint(Payload, Snap.OpenAuthor.size());
  Payload += Snap.OpenAuthor;
  for (size_t I = 0; I != Snap.History.size(); ++I) {
    std::string_view Author =
        I < Snap.HistoryAuthors.size() ? Snap.HistoryAuthors[I] : "";
    putVarint(Payload, Author.size());
    Payload += Author;
  }

  std::string File(FileMagic, sizeof(FileMagic));
  putU32(File, static_cast<uint32_t>(Payload.size()));
  putU32(File, crc32c(Payload));
  File += Payload;

  std::string Final = snapshotPath(Dir, Snap.Doc, Snap.Seq);
  std::string Temp = Final + ".tmp";
  int Fd = Env.openFile(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    throwErrno("create " + Temp);
  const char *Data = File.data();
  size_t Size = File.size();
  while (Size != 0) {
    ssize_t N = Env.writeSome(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int Err = errno;
      Env.closeFd(Fd);
      Env.unlinkFile(Temp.c_str());
      errno = Err;
      throwErrno("write " + Temp);
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  if (Env.syncFd(Fd) != 0) {
    int Err = errno;
    Env.closeFd(Fd);
    Env.unlinkFile(Temp.c_str());
    errno = Err;
    throwErrno("fsync " + Temp);
  }
  Env.closeFd(Fd);
  if (Env.renameFile(Temp.c_str(), Final.c_str()) != 0) {
    int Err = errno;
    Env.unlinkFile(Temp.c_str());
    errno = Err;
    throwErrno("rename " + Temp);
  }
  syncDir(Dir);
  return Final;
}

ReadSnapshotResult persist::readSnapshotFile(const std::string &Path,
                                             IoEnv *Env) {
  ReadSnapshotResult Result;
  std::string Bytes;
  IoEnv &E = Env != nullptr ? *Env : realIoEnv();
  if (E.readFile(Path.c_str(), Bytes) != 0) {
    Result.Error = "cannot open " + Path;
    return Result;
  }

  if (Bytes.size() < sizeof(FileMagic) + 8 ||
      std::memcmp(Bytes.data(), FileMagic, sizeof(FileMagic)) != 0) {
    Result.Error = "bad snapshot header";
    return Result;
  }
  uint32_t Len = getU32(Bytes.data() + sizeof(FileMagic));
  uint32_t Crc = getU32(Bytes.data() + sizeof(FileMagic) + 4);
  if (Bytes.size() - sizeof(FileMagic) - 8 != Len) {
    Result.Error = "snapshot length mismatch";
    return Result;
  }
  std::string_view Payload(Bytes.data() + sizeof(FileMagic) + 8, Len);
  if (crc32c(Payload) != Crc) {
    Result.Error = "snapshot CRC mismatch";
    return Result;
  }

  size_t Pos = 0;
  auto Doc = getVarint(Payload, Pos);
  auto Seq = getVarint(Payload, Pos);
  auto Version = getVarint(Payload, Pos);
  auto Flags = getVarint(Payload, Pos);
  auto TreeLen = getVarint(Payload, Pos);
  if (!Doc || !Seq || !Version || !Flags || *Flags > 1 || !TreeLen ||
      *TreeLen > Payload.size() - Pos) {
    Result.Error = "truncated snapshot payload";
    return Result;
  }
  Result.Snap.Doc = *Doc;
  Result.Snap.Seq = *Seq;
  Result.Snap.Version = *Version;
  Result.Snap.Tombstone = *Flags == 1;
  Result.Snap.TreeBlob = std::string(Payload.substr(Pos, *TreeLen));
  Pos += *TreeLen;

  auto Count = getVarint(Payload, Pos);
  if (!Count || *Count > (1u << 20)) {
    Result.Error = "bad snapshot history count";
    return Result;
  }
  for (uint64_t I = 0; I != *Count; ++I) {
    auto V = getVarint(Payload, Pos);
    auto BlobLen = getVarint(Payload, Pos);
    if (!V || !BlobLen || *BlobLen > Payload.size() - Pos) {
      Result.Error = "truncated snapshot history";
      return Result;
    }
    Result.Snap.History.emplace_back(
        *V, std::string(Payload.substr(Pos, *BlobLen)));
    Pos += *BlobLen;
  }
  // Optional blame extension (pre-blame snapshots end here).
  if (Pos != Payload.size()) {
    auto ProvLen = getVarint(Payload, Pos);
    if (!ProvLen || *ProvLen > Payload.size() - Pos) {
      Result.Error = "truncated snapshot provenance";
      return Result;
    }
    Result.Snap.ProvBlob = std::string(Payload.substr(Pos, *ProvLen));
    Pos += *ProvLen;
    auto OpenLen = getVarint(Payload, Pos);
    if (!OpenLen || *OpenLen > Payload.size() - Pos) {
      Result.Error = "truncated snapshot open author";
      return Result;
    }
    Result.Snap.OpenAuthor = std::string(Payload.substr(Pos, *OpenLen));
    Pos += *OpenLen;
    for (uint64_t I = 0; I != *Count; ++I) {
      auto AuthorLen = getVarint(Payload, Pos);
      if (!AuthorLen || *AuthorLen > Payload.size() - Pos) {
        Result.Error = "truncated snapshot history authors";
        return Result;
      }
      Result.Snap.HistoryAuthors.emplace_back(
          Payload.substr(Pos, *AuthorLen));
      Pos += *AuthorLen;
    }
    if (Pos != Payload.size()) {
      Result.Error = "trailing bytes in snapshot";
      return Result;
    }
  }
  Result.Ok = true;
  return Result;
}

std::vector<SnapshotFileName> persist::listSnapshotFiles(
    const std::string &Dir) {
  std::vector<SnapshotFileName> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (D == nullptr)
    return Out;
  while (struct dirent *Ent = ::readdir(D)) {
    // Exactly snap-<digits>-<digits>.snap.
    std::string_view Name(Ent->d_name);
    if (Name.size() <= 10 || Name.substr(0, 5) != "snap-" ||
        Name.substr(Name.size() - 5) != ".snap")
      continue;
    std::string_view Mid = Name.substr(5, Name.size() - 10);
    size_t Dash = Mid.find('-');
    if (Dash == std::string_view::npos)
      continue;
    auto ParseNum = [](std::string_view S, uint64_t &V) {
      if (S.empty())
        return false;
      V = 0;
      for (char C : S) {
        if (C < '0' || C > '9')
          return false;
        V = V * 10 + static_cast<uint64_t>(C - '0');
      }
      return true;
    };
    SnapshotFileName F;
    if (!ParseNum(Mid.substr(0, Dash), F.Doc) ||
        !ParseNum(Mid.substr(Dash + 1), F.Seq))
      continue;
    F.Path = Dir + "/" + Ent->d_name;
    Out.push_back(std::move(F));
  }
  ::closedir(D);
  return Out;
}

//===- persist/Crc32c.h - CRC-32C (Castagnoli) checksums --------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
/// checksum guarding every WAL record frame and snapshot payload. Chosen
/// over plain CRC-32 for its strictly better error-detection properties
/// and because it is the de-facto standard for storage framing (iSCSI,
/// ext4, LevelDB, RocksDB). Software slice-by-8 implementation -- no ISA
/// extensions required, ~1 byte/cycle, far faster than the disk it
/// guards.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_CRC32C_H
#define TRUEDIFF_PERSIST_CRC32C_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace truediff {
namespace persist {

/// Extends \p Crc (a previous crc32c result, or 0 to start) over
/// \p Size bytes at \p Data. The conventional pre/post inversion is
/// handled internally, so calls chain: crc32c(crc32c(0, a), b) equals
/// crc32c(0, ab).
uint32_t crc32c(uint32_t Crc, const void *Data, size_t Size);

inline uint32_t crc32c(std::string_view Bytes) {
  return crc32c(0, Bytes.data(), Bytes.size());
}

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_CRC32C_H

//===- persist/Varint.h - LEB128 helpers shared by persist ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LEB128 varint and zigzag primitives shared by the binary codec and
/// the WAL record framing. Header-only; internal to src/persist.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_VARINT_H
#define TRUEDIFF_PERSIST_VARINT_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace truediff {
namespace persist {

inline void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>(V | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

/// Reads a varint at \p Pos, advancing it; std::nullopt on truncated or
/// overlong input (more than ten bytes).
inline std::optional<uint64_t> getVarint(std::string_view Bytes,
                                         size_t &Pos) {
  uint64_t V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    if (Pos >= Bytes.size())
      return std::nullopt;
    uint8_t B = static_cast<uint8_t>(Bytes[Pos++]);
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if ((B & 0x80) == 0)
      return V;
  }
  return std::nullopt;
}

inline uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}

inline int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>((V >> 1) ^ (~(V & 1) + 1));
}

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_VARINT_H

//===- persist/Wal.h - Edit-script write-ahead log --------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The write-ahead log of the persistence subsystem: an append-only
/// sequence of CRC32C-framed records, one per committed DocumentStore
/// operation, split into numbered segment files `wal-<n>.log`.
///
/// On-disk format (all fixed-width integers little-endian):
///
///   segment   ::= header record*
///   header    ::= "TDWAL1\n" u8(0)            (8 bytes)
///   record    ::= u32(magic 0x54445752)       ("TDWR")
///                 u32(payload length)
///                 u32(crc32c of payload)
///                 payload
///   payload   ::= u8(kind) varint(doc) varint(seq) varint(version)
///                 varint(|script blob|) script-blob
///                 [ varint(|author|) author ]
///
/// The trailing author field is optional on read (records written
/// before the blame subsystem omit it; they decode as unattributed) and
/// always written. For rollback records it carries the *target*
/// version's author, matching the store's attribution rule.
///
/// The CRC covers only the payload; the magic and length words are
/// implicitly validated by the CRC check on the bytes they frame. A
/// record is *durable* once an fsync covering it returned; a crash can
/// tear at most the unsynced tail, and the reader discards a torn tail
/// at the first frame whose magic, length, or CRC fails -- a partial
/// record is never surfaced.
///
/// Group commit: the writer fsyncs once every Config::FsyncEvery
/// records (and on flush/rotation/close) instead of once per append, so
/// a pool of workers committing concurrently shares fsync cost instead
/// of serializing on the disk. The durability contract is therefore: at
/// most FsyncEvery-1 acknowledged commits can be lost to a power
/// failure; a plain process crash (kill -9) loses nothing that write(2)
/// accepted, because page cache survives the process.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_WAL_H
#define TRUEDIFF_PERSIST_WAL_H

#include "persist/IoEnv.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace truediff {
namespace persist {

/// What kind of store operation a WAL record logs.
enum class WalKind : uint8_t {
  /// Document created; payload is the initializing script.
  Open,
  /// Version committed; payload is the forward script.
  Submit,
  /// Version undone; payload is the applied inverse script.
  Rollback,
  /// Document removed; no payload.
  Erase,
};

const char *walKindName(WalKind Kind);

/// One logged operation. Seq is a per-document sequence number assigned
/// by the persistence layer; it is strictly increasing per document and
/// is what snapshots cut the log against (versions are not monotone --
/// rollback decreases them).
struct WalRecord {
  WalKind Kind = WalKind::Submit;
  uint64_t Doc = 0;
  uint64_t Seq = 0;
  uint64_t Version = 0;
  /// Binary edit script (persist/BinaryCodec); empty for Erase.
  std::string Script;
  /// Attribution of the operation; empty = unattributed. For Rollback
  /// this is the target version's author (see file comment).
  std::string Author;
};

/// Appends records to segment files in a directory. Thread-safe; every
/// append is written (not necessarily synced) before it returns.
class WalWriter {
public:
  struct Config {
    /// fsync once per this many records. 1 = every record durable before
    /// its append returns; N > 1 = group commit, at most N-1 acknowledged
    /// records lost on power failure.
    size_t FsyncEvery = 8;
    /// Rotate to a fresh segment once the current one exceeds this.
    size_t SegmentBytes = 4u << 20;
  };

  struct Stats {
    uint64_t Records = 0;
    uint64_t Bytes = 0;
    uint64_t Fsyncs = 0;
    uint64_t Rotations = 0;
    /// Fresh segments opened by reopenFresh() after a poisoned one.
    uint64_t Reopens = 0;
  };

  /// Opens a new segment numbered one past the highest existing segment
  /// in \p Dir (existing segments are never appended to: their tails may
  /// be torn, and immutability is what makes compaction safe). Creates
  /// \p Dir if missing. Throws std::runtime_error on I/O failure.
  /// \p Env is the I/O seam; null means real I/O.
  WalWriter(std::string Dir, Config C, IoEnv *Env = nullptr);
  ~WalWriter();

  WalWriter(const WalWriter &) = delete;
  WalWriter &operator=(const WalWriter &) = delete;

  /// Appends \p Rec. Returns true if the record is already durable
  /// (this append triggered the batch fsync), false if its durability
  /// is deferred to a later sync. Throws std::runtime_error if the
  /// write itself fails -- a lost write must fail the commit, not be
  /// discovered at recovery. A failed append *poisons* the writer: the
  /// segment tail may hold a torn frame, and anything appended after it
  /// would be discarded by the reader along with the tear, so further
  /// appends fail fast until reopenFresh() rotates to a clean segment.
  bool append(const WalRecord &Rec);

  /// Fsyncs any unsynced records; the graceful-drain barrier. Works on
  /// a poisoned writer too -- complete frames written before the tear
  /// are still recoverable, and this makes them durable. Throws
  /// std::runtime_error if the fsync fails.
  void flush();

  /// Abandons a poisoned segment and opens a fresh one (the breaker's
  /// half-open probe). The old segment's durable prefix remains valid
  /// for recovery; its tail, if torn, is cut by the reader. Safe to call
  /// on a healthy writer (plain rotation). Throws std::runtime_error if
  /// the fresh segment cannot be created -- the probe failed.
  void reopenFresh();

  /// True after a failed append/fsync until reopenFresh() succeeds.
  bool poisoned() const;

  Stats stats() const;

  /// Index of the segment currently being appended to.
  uint64_t currentSegment() const;

private:
  void openSegment(uint64_t Index);
  void syncLocked();

  const std::string Dir;
  const Config Cfg;
  IoEnv &Env;

  mutable std::mutex Mu;
  int Fd = -1;
  uint64_t SegmentIndex = 0;
  size_t SegmentSize = 0;
  size_t PendingRecords = 0;
  bool Poisoned = false;
  Stats Counters;
};

/// One segment's worth of decoded records plus torn-tail diagnostics.
struct WalSegment {
  uint64_t Index = 0;
  std::string Path;
  std::vector<WalRecord> Records;
  /// Bytes discarded at the tail (torn write or trailing garbage).
  uint64_t TornBytes = 0;
  /// False if the file is unreadable or its header is malformed.
  bool HeaderOk = false;
};

/// Lists `wal-<n>.log` files in \p Dir, ordered by segment index.
std::vector<std::pair<uint64_t, std::string>> listWalSegments(
    const std::string &Dir);

/// Reads one segment, stopping cleanly at the first invalid frame.
/// \p Env is the read seam (null = real I/O); a faulty environment can
/// silently corrupt the returned bytes, which the CRC walk then
/// classifies as a torn tail.
WalSegment readWalSegment(uint64_t Index, const std::string &Path,
                          IoEnv *Env = nullptr);

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_WAL_H

//===- persist/Wal.cpp - Edit-script write-ahead log -----------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Wal.h"

#include "persist/Crc32c.h"
#include "persist/Varint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::persist;

namespace {

constexpr char SegmentHeader[8] = {'T', 'D', 'W', 'A', 'L', '1', '\n', 0};
constexpr uint32_t RecordMagic = 0x54445752u; // "TDWR" read little-endian

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

uint32_t getU32(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return V;
}

[[noreturn]] void throwErrno(const std::string &What) {
  throw std::runtime_error(What + ": " + std::strerror(errno));
}

void writeAll(IoEnv &Env, int Fd, const char *Data, size_t Size,
              const std::string &What) {
  while (Size != 0) {
    ssize_t N = Env.writeSome(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throwErrno(What);
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
}

/// Fsync of the directory itself, so a freshly created file's directory
/// entry survives a power failure.
void syncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return; // best effort: some filesystems refuse directory fds
  ::fsync(Fd);
  ::close(Fd);
}

std::string segmentPath(const std::string &Dir, uint64_t Index) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "wal-%08llu.log",
                static_cast<unsigned long long>(Index));
  return Dir + "/" + Buf;
}

std::string encodeRecordPayload(const WalRecord &Rec) {
  std::string Payload;
  Payload.push_back(static_cast<char>(Rec.Kind));
  putVarint(Payload, Rec.Doc);
  putVarint(Payload, Rec.Seq);
  putVarint(Payload, Rec.Version);
  putVarint(Payload, Rec.Script.size());
  Payload += Rec.Script;
  putVarint(Payload, Rec.Author.size());
  Payload += Rec.Author;
  return Payload;
}

bool decodeRecordPayload(std::string_view Payload, WalRecord &Out) {
  size_t Pos = 0;
  if (Payload.empty())
    return false;
  uint8_t Kind = static_cast<uint8_t>(Payload[Pos++]);
  if (Kind > static_cast<uint8_t>(WalKind::Erase))
    return false;
  Out.Kind = static_cast<WalKind>(Kind);
  auto Doc = getVarint(Payload, Pos);
  auto Seq = getVarint(Payload, Pos);
  auto Version = getVarint(Payload, Pos);
  auto ScriptLen = getVarint(Payload, Pos);
  if (!Doc || !Seq || !Version || !ScriptLen)
    return false;
  if (*ScriptLen > Payload.size() - Pos)
    return false;
  Out.Doc = *Doc;
  Out.Seq = *Seq;
  Out.Version = *Version;
  Out.Script = std::string(Payload.substr(Pos, *ScriptLen));
  Pos += *ScriptLen;
  // Optional trailing author (pre-blame records omit it).
  Out.Author.clear();
  if (Pos != Payload.size()) {
    auto AuthorLen = getVarint(Payload, Pos);
    if (!AuthorLen || *AuthorLen != Payload.size() - Pos)
      return false;
    Out.Author = std::string(Payload.substr(Pos));
  }
  return true;
}

} // namespace

const char *persist::walKindName(WalKind Kind) {
  switch (Kind) {
  case WalKind::Open:
    return "open";
  case WalKind::Submit:
    return "submit";
  case WalKind::Rollback:
    return "rollback";
  case WalKind::Erase:
    return "erase";
  }
  return "<unknown>";
}

WalWriter::WalWriter(std::string Dir, Config C, IoEnv *E)
    : Dir(std::move(Dir)), Cfg(C), Env(E != nullptr ? *E : realIoEnv()) {
  if (Env.makeDir(this->Dir.c_str(), 0777) != 0 && errno != EEXIST)
    throwErrno("mkdir " + this->Dir);
  uint64_t Next = 1;
  for (const auto &[Index, Path] : listWalSegments(this->Dir))
    Next = std::max(Next, Index + 1);
  openSegment(Next);
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0) {
    if (PendingRecords != 0) {
      try {
        syncLocked();
      } catch (const std::exception &) {
        // Destructor must not throw; the unsynced tail was never
        // acknowledged as durable, so losing it keeps the contract.
      }
    }
    Env.closeFd(Fd);
    Fd = -1;
  }
}

void WalWriter::openSegment(uint64_t Index) {
  std::string Path = segmentPath(Dir, Index);
  int NewFd = Env.openFile(Path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (NewFd < 0)
    throwErrno("create WAL segment " + Path);
  try {
    writeAll(Env, NewFd, SegmentHeader, sizeof(SegmentHeader),
             "write " + Path);
    if (Env.syncFd(NewFd) != 0)
      throwErrno("fsync " + Path);
  } catch (...) {
    Env.closeFd(NewFd);
    Env.unlinkFile(Path.c_str());
    throw;
  }
  syncDir(Dir);
  if (Fd >= 0) {
    // Best-effort sync of the outgoing segment: complete frames in it
    // stay recoverable even if the writer is abandoning a torn tail.
    if (PendingRecords != 0 && Env.syncFd(Fd) == 0) {
      PendingRecords = 0;
      ++Counters.Fsyncs;
    }
    Env.closeFd(Fd);
  }
  Fd = NewFd;
  SegmentIndex = Index;
  SegmentSize = sizeof(SegmentHeader);
}

void WalWriter::syncLocked() {
  if (Env.syncFd(Fd) != 0)
    throwErrno("fsync WAL segment");
  PendingRecords = 0;
  ++Counters.Fsyncs;
}

bool WalWriter::append(const WalRecord &Rec) {
  std::string Payload = encodeRecordPayload(Rec);
  std::string Frame;
  Frame.reserve(12 + Payload.size());
  putU32(Frame, RecordMagic);
  putU32(Frame, static_cast<uint32_t>(Payload.size()));
  putU32(Frame, crc32c(Payload));
  Frame += Payload;

  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    throw std::runtime_error("WAL writer is closed");
  if (Poisoned)
    throw std::runtime_error(
        "WAL segment poisoned by an earlier write failure; reopen required");
  try {
    // Rotate before the write so a record never spans segments.
    if (SegmentSize + Frame.size() > Cfg.SegmentBytes &&
        SegmentSize > sizeof(SegmentHeader)) {
      if (PendingRecords != 0)
        syncLocked();
      openSegment(SegmentIndex + 1);
      ++Counters.Rotations;
    }
    writeAll(Env, Fd, Frame.data(), Frame.size(), "append WAL record");
    SegmentSize += Frame.size();
    ++Counters.Records;
    Counters.Bytes += Frame.size();
    if (++PendingRecords >= std::max<size_t>(1, Cfg.FsyncEvery)) {
      syncLocked();
      return true;
    }
    return false;
  } catch (...) {
    // The segment tail may now hold a torn frame (or, after an fsync
    // failure, pages in unknown state); anything appended behind it
    // would be discarded by the reader. Fail fast until reopenFresh().
    Poisoned = true;
    throw;
  }
}

void WalWriter::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0 && PendingRecords != 0)
    syncLocked();
}

void WalWriter::reopenFresh() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    throw std::runtime_error("WAL writer is closed");
  openSegment(SegmentIndex + 1);
  ++Counters.Reopens;
  Poisoned = false;
}

bool WalWriter::poisoned() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Poisoned;
}

WalWriter::Stats WalWriter::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

uint64_t WalWriter::currentSegment() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return SegmentIndex;
}

std::vector<std::pair<uint64_t, std::string>> persist::listWalSegments(
    const std::string &Dir) {
  std::vector<std::pair<uint64_t, std::string>> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (D == nullptr)
    return Out;
  while (struct dirent *Ent = ::readdir(D)) {
    // Exactly wal-<digits>.log, nothing trailing.
    std::string_view Name(Ent->d_name);
    if (Name.size() <= 8 || Name.substr(0, 4) != "wal-" ||
        Name.substr(Name.size() - 4) != ".log")
      continue;
    std::string_view Digits = Name.substr(4, Name.size() - 8);
    uint64_t Index = 0;
    bool Numeric = !Digits.empty();
    for (char C : Digits) {
      if (C < '0' || C > '9') {
        Numeric = false;
        break;
      }
      Index = Index * 10 + static_cast<uint64_t>(C - '0');
    }
    if (Numeric)
      Out.emplace_back(Index, Dir + "/" + Ent->d_name);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

WalSegment persist::readWalSegment(uint64_t Index, const std::string &Path,
                                   IoEnv *Env) {
  WalSegment Seg;
  Seg.Index = Index;
  Seg.Path = Path;

  std::string Bytes;
  IoEnv &E = Env != nullptr ? *Env : realIoEnv();
  if (E.readFile(Path.c_str(), Bytes) != 0)
    return Seg;

  if (Bytes.size() < sizeof(SegmentHeader) ||
      std::memcmp(Bytes.data(), SegmentHeader, sizeof(SegmentHeader)) != 0) {
    Seg.TornBytes = Bytes.size();
    return Seg;
  }
  Seg.HeaderOk = true;

  size_t Pos = sizeof(SegmentHeader);
  while (Pos != Bytes.size()) {
    if (Bytes.size() - Pos < 12)
      break; // torn frame header
    if (getU32(Bytes.data() + Pos) != RecordMagic)
      break; // tail garbage
    uint32_t Len = getU32(Bytes.data() + Pos + 4);
    uint32_t Crc = getU32(Bytes.data() + Pos + 8);
    if (Bytes.size() - Pos - 12 < Len)
      break; // torn payload
    std::string_view Payload(Bytes.data() + Pos + 12, Len);
    if (crc32c(Payload) != Crc)
      break; // corrupt payload
    WalRecord Rec;
    if (!decodeRecordPayload(Payload, Rec))
      break; // CRC-valid but structurally bogus: treat like corruption
    Seg.Records.push_back(std::move(Rec));
    Pos += 12 + Len;
  }
  Seg.TornBytes = Bytes.size() - Pos;
  return Seg;
}

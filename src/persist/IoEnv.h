//===- persist/IoEnv.h - Injectable I/O environment -------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The I/O seam of the persistence subsystem. Every write-side syscall
/// the WAL, snapshot writer, and compactor issue goes through an IoEnv,
/// so tests can interpose a FaultyIoEnv that injects ENOSPC/EIO, short
/// and torn writes, fsync failures, and latency on a deterministic
/// seeded schedule -- the substrate of the chaos suite and the thing
/// the circuit breaker (persist/Persistence.h) is tested against.
///
/// All methods follow POSIX conventions: they return the syscall's
/// result and report failure as -1 with errno set, never by throwing.
/// The read side exposes a single whole-file seam (readFile) used by
/// recovery and the integrity scrubber's disk pass; FaultyIoEnv can
/// silently flip bits in the returned bytes -- the media-decay fault
/// model the scrubber exists to catch. Structured read faults (torn
/// frames) are still modelled by corrupting files on disk, which
/// persist_test covers byte by byte.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_IOENV_H
#define TRUEDIFF_PERSIST_IOENV_H

#include "support/Rng.h"

#include <cstdint>
#include <mutex>
#include <string>

#include <sys/types.h>

namespace truediff {
namespace persist {

/// Virtual dispatch over the write-side syscalls. The default
/// implementation is the real thing; realIoEnv() returns a shared
/// instance of it.
class IoEnv {
public:
  virtual ~IoEnv() = default;

  /// ::open. \p Mode is consulted only when \p Flags creates.
  virtual int openFile(const char *Path, int Flags, mode_t Mode);

  /// One ::write attempt; may write fewer than \p Count bytes. Callers
  /// loop, as they must for real descriptors too.
  virtual ssize_t writeSome(int Fd, const void *Buf, size_t Count);

  /// ::fsync.
  virtual int syncFd(int Fd);

  /// ::close.
  virtual int closeFd(int Fd);

  /// ::rename.
  virtual int renameFile(const char *From, const char *To);

  /// ::unlink.
  virtual int unlinkFile(const char *Path);

  /// ::mkdir.
  virtual int makeDir(const char *Path, mode_t Mode);

  /// Reads the whole file at \p Path into \p Out. Returns 0 on success,
  /// -1 with errno set otherwise. The read seam of recovery and the
  /// integrity scrubber: a faulty environment may return success with
  /// silently corrupted bytes, exactly like decaying media.
  virtual int readFile(const char *Path, std::string &Out);
};

/// The shared pass-through environment; what a null IoEnv* means.
IoEnv &realIoEnv();

/// Deterministic fault injection over a real environment. Each faultable
/// call first consults a seeded PRNG schedule; probabilities are in
/// permille so schedules can be sparse. Thread-safe: the schedule is
/// advanced under a mutex, so a fixed seed yields a fixed fault *count*
/// even when the interleaving of callers varies.
class FaultyIoEnv : public IoEnv {
public:
  struct FaultPlan {
    uint64_t Seed = 1;
    /// Probability (permille) that a write fails with ENOSPC or EIO.
    unsigned WriteErrorPermille = 0;
    /// Probability (permille) that a failing write first lands a prefix
    /// of the buffer on disk -- a torn write: the caller sees failure,
    /// the file holds a partial frame.
    unsigned TornWritePermille = 500;
    /// Probability (permille) of a benign short write (fewer bytes than
    /// asked, no error) -- exercises callers' retry loops.
    unsigned ShortWritePermille = 0;
    /// Probability (permille) that fsync fails with EIO.
    unsigned FsyncErrorPermille = 0;
    /// Probability (permille) that open/creat fails with ENOSPC.
    unsigned OpenErrorPermille = 0;
    /// Probability (permille) that rename fails with EIO.
    unsigned RenameErrorPermille = 0;
    /// Injected latency: each faultable call sleeps a uniform random
    /// duration up to this many microseconds. 0 disables.
    unsigned MaxLatencyUs = 0;
    /// After this many faultable calls the disk "dies": every subsequent
    /// write/fsync/open/rename fails until heal(). 0 disables.
    uint64_t DieAfterOps = 0;
    /// Probability (permille) that a readFile succeeds but one seeded
    /// bit of the returned bytes is flipped -- silent read-path
    /// corruption past every syscall error check. The CRC/digest
    /// verification of the scrubber is what must catch it.
    unsigned ReadFlipPermille = 0;
  };

  struct Counters {
    uint64_t Ops = 0;
    uint64_t WritesFailed = 0;
    uint64_t TornWrites = 0;
    uint64_t ShortWrites = 0;
    uint64_t FsyncsFailed = 0;
    uint64_t OpensFailed = 0;
    uint64_t RenamesFailed = 0;
    /// readFile calls whose returned bytes were silently bit-flipped.
    uint64_t ReadsCorrupted = 0;
  };

  explicit FaultyIoEnv(FaultPlan P, IoEnv &Base = realIoEnv());

  int openFile(const char *Path, int Flags, mode_t Mode) override;
  ssize_t writeSome(int Fd, const void *Buf, size_t Count) override;
  int syncFd(int Fd) override;
  int closeFd(int Fd) override;
  int renameFile(const char *From, const char *To) override;
  int unlinkFile(const char *Path) override;
  int makeDir(const char *Path, mode_t Mode) override;
  int readFile(const char *Path, std::string &Out) override;

  /// Stops all fault injection (the "faults cease" phase of a chaos
  /// schedule); subsequent calls pass straight through.
  void heal();

  /// True once heal() ran or the plan injects nothing.
  bool healed() const;

  Counters counters() const;

private:
  /// Rolls the schedule for one faultable call. Returns true if a fault
  /// with probability \p Permille fires (dead disk forces true).
  bool roll(unsigned Permille, uint64_t &OpIndex);

  IoEnv &Base;
  const FaultPlan Plan;

  mutable std::mutex Mu;
  Rng Schedule;
  Counters Stats;
  bool Healed = false;
};

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_IOENV_H

//===- persist/Persistence.h - Durability for the document store -*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence subsystem's front door: wires a DocumentStore to a
/// write-ahead log (persist/Wal) and per-document snapshots
/// (persist/Snapshot) so the store's state survives restarts and
/// crashes.
///
/// Logging. Attached as a script listener, Persistence assigns every
/// committed operation (open, submit, rollback, erase) a globally
/// monotone sequence number and appends one binary WAL record for it.
/// Listeners run under the store's listener mutex, so sequence order
/// equals log order; per-document order additionally matches commit
/// order because script listeners run under the document lock.
///
/// Snapshots. After Config::SnapshotEvery logged operations on a
/// document, a background pass (or an explicit snapshotDocument call,
/// the SAVE verb) captures the document's full tree -- URIs preserved,
/// so logged scripts stay meaningful against it -- and its rollback
/// history ring, stamped with the document's last logged sequence
/// number. erase() writes a *tombstone* snapshot so compaction can drop
/// the erase record without old records resurrecting the document.
///
/// Recovery. recover() loads the newest valid snapshot of each document,
/// replays the WAL suffix (records with Seq greater than the snapshot's)
/// through the standard semantics -- every script is validated with
/// LinearTypeChecker and applied with MTree::patchChecked -- and
/// installs the results via DocumentStore::restore. Torn log tails are
/// CRC-detected and discarded; a record is either fully applied or not
/// at all, so the recovered store always equals a committed prefix of
/// the accepted operations. Orphan records (an erase can overtake an
/// in-flight operation's log record) are skipped and counted.
///
/// Compaction. A WAL segment is dead once every record in it is covered
/// by some durable snapshot (Seq <= the document's snapshot Seq);
/// compact() deletes dead closed segments and superseded snapshot
/// files. The active segment is never touched. Tombstones are kept
/// conservatively: they are cheap, and proving them dead would require
/// knowing the minimum sequence number still present in the log.
///
/// Durability contract. With Config::FsyncEvery = 1 every acknowledged
/// commit survives power loss. With N > 1 (group commit) an fsync
/// happens every N records and on flush/rotation/close, so power loss
/// can drop at most the last N-1 acknowledged commits -- but a plain
/// process crash (kill -9) loses nothing, because completed write(2)
/// calls survive the process in page cache. The background pass also
/// flushes every Config::BackgroundIntervalMs, bounding the loss window
/// in time as well as in records.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_PERSISTENCE_H
#define TRUEDIFF_PERSIST_PERSISTENCE_H

#include "persist/Wal.h"
#include "service/DocumentStore.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace persist {

/// What recovery found and rebuilt; all counters are totals across the
/// data directory.
struct RecoveryResult {
  /// Documents installed into the store.
  uint64_t DocsRecovered = 0;
  /// Documents whose replay failed mid-apply and were excluded rather
  /// than restored torn. Always 0 unless the log was corrupted in a way
  /// CRC framing cannot see.
  uint64_t DocsDropped = 0;
  /// Valid snapshots loaded (tombstones included).
  uint64_t SnapshotsLoaded = 0;
  /// Snapshot files that failed CRC/decoding and were ignored.
  uint64_t SnapshotsCorrupt = 0;
  /// WAL records applied during replay.
  uint64_t RecordsReplayed = 0;
  /// WAL records already covered by a snapshot (Seq <= snapshot Seq).
  uint64_t RecordsSkipped = 0;
  /// Records for documents that no longer exist at that point in the
  /// log -- the erase-overtakes-in-flight-operation race.
  uint64_t OrphanRecords = 0;
  /// CRC-valid records whose script failed decoding or type checking;
  /// the document is frozen at its last good state.
  uint64_t InvalidRecords = 0;
  /// Bytes discarded at segment tails (torn writes).
  uint64_t TornBytes = 0;
  /// Highest sequence number seen in any record or snapshot; the live
  /// writer continues from here.
  uint64_t MaxSeq = 0;
  /// Total nodes of all restored trees.
  uint64_t NodesRestored = 0;
  /// Total edits of all replayed scripts.
  uint64_t EditsReplayed = 0;

  /// Per-document outcome, for seeding the live layer and for tests.
  struct RecoveredDoc {
    uint64_t Doc = 0;
    uint64_t LastSeq = 0;
    uint64_t SnapSeq = 0;
    uint64_t Version = 0;
  };
  std::vector<RecoveredDoc> Docs;
};

/// Durable persistence for one DocumentStore. Construct (opens the WAL),
/// then either recoverAndAttach() on a data directory that may hold
/// prior state, or attach() on a store that is already authoritative.
class Persistence {
public:
  struct Config {
    /// Data directory; created if missing. Holds wal-<n>.log segments
    /// and snap-<doc>-<seq>.snap snapshots.
    std::string Dir;
    /// Group-commit batch: fsync once per this many records (1 = every
    /// record durable before its commit is acknowledged).
    size_t FsyncEvery = 8;
    /// WAL segment rotation threshold.
    size_t SegmentBytes = 4u << 20;
    /// Snapshot a document after this many logged operations on it.
    /// 0 disables automatic snapshots (SAVE still works).
    size_t SnapshotEvery = 64;
    /// Run compaction after the background pass wrote snapshots.
    bool CompactAfterSnapshot = true;
    /// Background pass period (snapshots due documents, flushes the
    /// WAL, compacts). 0 disables the background thread.
    unsigned BackgroundIntervalMs = 200;
  };

  /// Live gauges, WAL counters included.
  struct Stats {
    WalWriter::Stats Wal;
    uint64_t CurrentSegment = 0;
    uint64_t SnapshotsWritten = 0;
    uint64_t TombstonesWritten = 0;
    uint64_t SnapshotsDeleted = 0;
    uint64_t SnapshotFailures = 0;
    uint64_t SegmentsDeleted = 0;
    uint64_t CompactionRuns = 0;
  };

  /// Opens (creating if needed) the data directory and a fresh WAL
  /// segment. Throws std::runtime_error on I/O failure.
  Persistence(const SignatureTable &Sig, Config C);

  /// Stops the background thread and fsyncs any unsynced WAL tail.
  ~Persistence();

  Persistence(const Persistence &) = delete;
  Persistence &operator=(const Persistence &) = delete;

  /// Rebuilds \p Store from \p Dir: newest valid snapshot per document
  /// plus WAL replay with type checking. \p Store must be empty of the
  /// recovered ids and must not be serving traffic. Standalone -- usable
  /// without a Persistence instance (e.g. offline inspection).
  static RecoveryResult recover(const SignatureTable &Sig,
                                const std::string &Dir,
                                service::DocumentStore &Store);

  /// recover() into \p Store from this instance's directory, seed the
  /// sequence counter past everything recovered, then attach().
  RecoveryResult recoverAndAttach(service::DocumentStore &Store);

  /// Registers the script and erase listeners on \p Store and starts the
  /// background thread. Call before serving traffic; once attached, the
  /// store must not outlive this object's traffic (listeners hold
  /// `this`).
  void attach(service::DocumentStore &Store);

  /// Snapshots one document now (the SAVE verb). Returns false if the
  /// document does not exist or the snapshot could not be written.
  bool snapshotDocument(service::DocId Doc);

  /// Snapshots every document that crossed Config::SnapshotEvery;
  /// returns how many snapshots were written.
  size_t snapshotDueDocuments();

  /// Deletes dead closed WAL segments and superseded snapshot files.
  void compact();

  /// Fsyncs the WAL tail -- the graceful-drain barrier.
  void flush();

  Stats stats() const;

  /// The Stats as a JSON object (no trailing newline), for splicing into
  /// service stats output.
  std::string statsJson() const;

  /// Result of the recoverAndAttach() run, if any.
  const RecoveryResult &lastRecovery() const { return LastRecovery; }

  const Config &config() const { return Cfg; }

private:
  /// Per-document live bookkeeping. Guarded by StateMu.
  struct DocState {
    uint64_t LastSeq = 0;
    uint64_t SnapSeq = 0;
    uint64_t OpsSinceSnap = 0;
  };

  void onScript(service::DocId Doc, uint64_t Version,
                service::DocumentStore::StoreOp Op, const EditScript &Script);
  void onErase(service::DocId Doc);
  void backgroundLoop();

  const SignatureTable &Sig;
  const Config Cfg;
  WalWriter Wal;
  service::DocumentStore *Store = nullptr;
  RecoveryResult LastRecovery;

  mutable std::mutex StateMu;
  uint64_t NextSeq = 0;
  std::unordered_map<uint64_t, DocState> DocStates;
  Stats Counters; // non-WAL fields only; WAL fields live in the writer

  std::thread Background;
  std::mutex BgMu;
  std::condition_variable BgCv;
  bool StopBg = false;
};

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_PERSISTENCE_H

//===- persist/Persistence.h - Durability for the document store -*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence subsystem's front door: wires a DocumentStore to a
/// write-ahead log (persist/Wal) and per-document snapshots
/// (persist/Snapshot) so the store's state survives restarts and
/// crashes.
///
/// Logging. Attached as a script listener, Persistence assigns every
/// committed operation (open, submit, rollback, erase) a globally
/// monotone sequence number and appends one binary WAL record for it.
/// Listeners run under the store's listener mutex, so sequence order
/// equals log order; per-document order additionally matches commit
/// order because script listeners run under the document lock.
///
/// Snapshots. After Config::SnapshotEvery logged operations on a
/// document, a background pass (or an explicit snapshotDocument call,
/// the SAVE verb) captures the document's full tree -- URIs preserved,
/// so logged scripts stay meaningful against it -- and its rollback
/// history ring, stamped with the document's last logged sequence
/// number. erase() writes a *tombstone* snapshot so compaction can drop
/// the erase record without old records resurrecting the document.
///
/// Recovery. recover() loads the newest valid snapshot of each document,
/// replays the WAL suffix (records with Seq greater than the snapshot's)
/// through the standard semantics -- every script is validated with
/// LinearTypeChecker and applied with MTree::patchChecked -- and
/// installs the results via DocumentStore::restore. Torn log tails are
/// CRC-detected and discarded; a record is either fully applied or not
/// at all, so the recovered store always equals a committed prefix of
/// the accepted operations. Orphan records (an erase can overtake an
/// in-flight operation's log record) are skipped and counted.
///
/// Compaction. A WAL segment is dead once every record in it is covered
/// by some durable snapshot (Seq <= the document's snapshot Seq);
/// compact() deletes dead closed segments and superseded snapshot
/// files. The active segment is never touched. Tombstones are kept
/// conservatively: they are cheap, and proving them dead would require
/// knowing the minimum sequence number still present in the log.
///
/// Circuit breaker. All write-side I/O feeds one breaker: WAL appends,
/// fsyncs, and snapshot/tombstone writes share a consecutive-failure
/// count (one disk, one disease), and after Config::BreakerThreshold
/// consecutive failures the breaker trips
/// *open* and the service runs degraded -- commits are acknowledged
/// in-memory only, counted as unlogged, and their documents are marked
/// for resync. While open, a half-open probe (opening a fresh WAL
/// segment) runs on an exponential-backoff-plus-jitter schedule; the
/// first successful probe closes the breaker, after which the
/// background pass writes a fresh snapshot for every marked document,
/// repairing log coverage (a snapshot at the document's current
/// sequence number makes the unlogged gap invisible to replay). A
/// document with an unlogged operation is never logged past the gap:
/// a later record would replay against the wrong base, so its ops stay
/// unlogged until the resync snapshot lands. The durability listener
/// reports, per operation, whether it was logged and whether an fsync
/// covered it -- nothing is ever claimed durable that is not.
///
/// Durability contract. With Config::FsyncEvery = 1 every acknowledged
/// commit survives power loss. With N > 1 (group commit) an fsync
/// happens every N records and on flush/rotation/close, so power loss
/// can drop at most the last N-1 acknowledged commits -- but a plain
/// process crash (kill -9) loses nothing, because completed write(2)
/// calls survive the process in page cache. The background pass also
/// flushes every Config::BackgroundIntervalMs, bounding the loss window
/// in time as well as in records.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_PERSISTENCE_H
#define TRUEDIFF_PERSIST_PERSISTENCE_H

#include "persist/IoEnv.h"
#include "persist/Wal.h"
#include "service/DocumentStore.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace truediff {

namespace blame {
class ProvenanceIndex;
} // namespace blame

namespace persist {

/// What recovery found and rebuilt; all counters are totals across the
/// data directory.
struct RecoveryResult {
  /// Documents installed into the store.
  uint64_t DocsRecovered = 0;
  /// Documents whose replay failed mid-apply and were excluded rather
  /// than restored torn. Always 0 unless the log was corrupted in a way
  /// CRC framing cannot see.
  uint64_t DocsDropped = 0;
  /// Valid snapshots loaded (tombstones included).
  uint64_t SnapshotsLoaded = 0;
  /// Snapshot files that failed CRC/decoding and were ignored.
  uint64_t SnapshotsCorrupt = 0;
  /// WAL records applied during replay.
  uint64_t RecordsReplayed = 0;
  /// WAL records already covered by a snapshot (Seq <= snapshot Seq).
  uint64_t RecordsSkipped = 0;
  /// Records for documents that no longer exist at that point in the
  /// log -- the erase-overtakes-in-flight-operation race.
  uint64_t OrphanRecords = 0;
  /// CRC-valid records whose script failed decoding or type checking;
  /// the document is frozen at its last good state.
  uint64_t InvalidRecords = 0;
  /// Bytes discarded at segment tails (torn writes).
  uint64_t TornBytes = 0;
  /// Highest sequence number seen in any record or snapshot; the live
  /// writer continues from here.
  uint64_t MaxSeq = 0;
  /// Total nodes of all restored trees.
  uint64_t NodesRestored = 0;
  /// Total edits of all replayed scripts.
  uint64_t EditsReplayed = 0;

  /// Per-document outcome, for seeding the live layer and for tests.
  struct RecoveredDoc {
    uint64_t Doc = 0;
    uint64_t LastSeq = 0;
    uint64_t SnapSeq = 0;
    uint64_t Version = 0;
  };
  std::vector<RecoveredDoc> Docs;
};

/// Durable persistence for one DocumentStore. Construct (opens the WAL),
/// then either recoverAndAttach() on a data directory that may hold
/// prior state, or attach() on a store that is already authoritative.
class Persistence {
public:
  struct Config {
    /// Data directory; created if missing. Holds wal-<n>.log segments
    /// and snap-<doc>-<seq>.snap snapshots.
    std::string Dir;
    /// Group-commit batch: fsync once per this many records (1 = every
    /// record durable before its commit is acknowledged).
    size_t FsyncEvery = 8;
    /// WAL segment rotation threshold.
    size_t SegmentBytes = 4u << 20;
    /// Snapshot a document after this many logged operations on it.
    /// 0 disables automatic snapshots (SAVE still works).
    size_t SnapshotEvery = 64;
    /// Run compaction after the background pass wrote snapshots.
    bool CompactAfterSnapshot = true;
    /// Background pass period (snapshots due documents, flushes the
    /// WAL, probes/resyncs the breaker, compacts). 0 disables the
    /// background thread.
    unsigned BackgroundIntervalMs = 200;
    /// I/O seam for every write-side syscall (WAL, snapshots, deletes).
    /// Null means real I/O; tests inject a FaultyIoEnv. Must outlive
    /// this object.
    IoEnv *Env = nullptr;
    /// Consecutive WAL I/O failures before the breaker trips open
    /// (degraded, in-memory-only mode). 0 disables tripping; failures
    /// are still absorbed per operation.
    size_t BreakerThreshold = 3;
    /// Initial half-open probe backoff after a trip; doubled per failed
    /// probe up to BreakerBackoffMaxMs, plus up to 50% deterministic
    /// jitter so a fleet of recovering services does not thundering-herd
    /// a shared disk.
    unsigned BreakerBackoffMs = 100;
    unsigned BreakerBackoffMaxMs = 5000;
  };

  /// Live gauges, WAL counters included.
  struct Stats {
    WalWriter::Stats Wal;
    uint64_t CurrentSegment = 0;
    uint64_t SnapshotsWritten = 0;
    uint64_t TombstonesWritten = 0;
    uint64_t SnapshotsDeleted = 0;
    uint64_t SnapshotFailures = 0;
    uint64_t SegmentsDeleted = 0;
    uint64_t CompactionRuns = 0;
    /// \name Breaker
    /// @{
    /// WAL appends/fsyncs/reopens that failed.
    uint64_t WalAppendFailures = 0;
    /// Times the breaker tripped open.
    uint64_t BreakerTrips = 0;
    /// Half-open probes that failed (breaker stayed open).
    uint64_t ProbeFailures = 0;
    /// Operations acknowledged in-memory only (no WAL record).
    uint64_t UnloggedOps = 0;
    /// Fresh snapshots written to repair unlogged gaps.
    uint64_t ResyncSnapshots = 0;
    /// Erase tombstones still awaiting a successful write (gauge).
    uint64_t PendingTombstones = 0;
    /// Documents currently marked for resync (gauge).
    uint64_t DocsNeedingResync = 0;
    /// True while the breaker is open (gauge).
    bool Degraded = false;
    /// Cumulative microseconds spent degraded, current period included.
    uint64_t DegradedUs = 0;
    /// @}
  };

  /// The health summary behind the wire protocol's `health` verb.
  struct HealthInfo {
    bool Degraded = false;
    uint64_t BreakerTrips = 0;
    uint64_t DegradedUs = 0;
    uint64_t UnloggedOps = 0;
    uint64_t DocsNeedingResync = 0;
    uint64_t ConsecutiveFailures = 0;
  };

  /// Observes the durability outcome of every committed operation.
  /// \p Logged: the record reached the WAL. \p Durable: an fsync
  /// covering it returned before this call (FsyncEvery batch boundary;
  /// for an erase, a durable tombstone also counts). Logged-but-not-
  /// durable operations become durable at the next successful flush().
  /// Unlogged operations (breaker open, or a log-chain gap on the
  /// document) are in-memory only until a resync snapshot covers them.
  /// Called under the store's listener ordering, so per-document calls
  /// are in commit order. Set before traffic.
  using DurabilityListener = std::function<void(service::DocId Doc,
                                                uint64_t Seq, bool Logged,
                                                bool Durable)>;

  /// Opens (creating if needed) the data directory and a fresh WAL
  /// segment. Throws std::runtime_error on I/O failure.
  Persistence(const SignatureTable &Sig, Config C);

  /// Stops the background thread and fsyncs any unsynced WAL tail.
  ~Persistence();

  Persistence(const Persistence &) = delete;
  Persistence &operator=(const Persistence &) = delete;

  /// Rebuilds \p Store from \p Dir: newest valid snapshot per document
  /// plus WAL replay with type checking. \p Store must be empty of the
  /// recovered ids and must not be serving traffic. Standalone -- usable
  /// without a Persistence instance (e.g. offline inspection).
  ///
  /// When \p Prov is non-null it is rebuilt alongside the trees: the
  /// snapshot's provenance blob seeds each document's index and the
  /// replayed WAL suffix is folded on top -- the same incremental step
  /// the live listener runs, so the recovered index equals the one a
  /// never-crashed process would hold. \p Prov is cleared first.
  static RecoveryResult recover(const SignatureTable &Sig,
                                const std::string &Dir,
                                service::DocumentStore &Store,
                                blame::ProvenanceIndex *Prov = nullptr);

  /// recover() into \p Store from this instance's directory, seed the
  /// sequence counter past everything recovered, then attach().
  RecoveryResult recoverAndAttach(service::DocumentStore &Store,
                                  blame::ProvenanceIndex *Prov = nullptr);

  /// Registers the script and erase listeners on \p Store and starts the
  /// background thread. Call before serving traffic; once attached, the
  /// store must not outlive this object's traffic (listeners hold
  /// `this`).
  void attach(service::DocumentStore &Store);

  /// Snapshots one document now (the SAVE verb). Returns false if the
  /// document does not exist or the snapshot could not be written. On
  /// success \p CapturedSeq (when non-null) receives the sequence number
  /// the written snapshot covers -- callers deciding whether the
  /// snapshot repaired a log-chain gap must compare it against the
  /// document's current sequence, because an erase + re-open can slide a
  /// new incarnation under a snapshot captured from the old one.
  bool snapshotDocument(service::DocId Doc, uint64_t *CapturedSeq = nullptr);

  /// Snapshots every document that crossed Config::SnapshotEvery;
  /// returns how many snapshots were written.
  size_t snapshotDueDocuments();

  /// Deletes dead closed WAL segments and superseded snapshot files.
  void compact();

  /// Fsyncs the WAL tail -- the graceful-drain barrier. Returns false
  /// if the fsync failed (the tail's durability is unknown; the failure
  /// feeds the breaker).
  bool flush();

  /// Runs the half-open probe if the breaker is open and its backoff
  /// has elapsed: opens a fresh WAL segment, closing the breaker on
  /// success. Returns true iff the breaker is closed after the call.
  /// The background pass calls this; exposed for tests and drains.
  bool probe();

  /// Writes a fresh snapshot for every document marked by an unlogged
  /// operation, clearing the mark when no further unlogged operation
  /// raced the snapshot. Returns how many documents were repaired. The
  /// background pass calls this once the breaker closes.
  size_t resyncDegraded();

  /// True while the breaker is open (commits are in-memory only).
  bool degraded() const;

  HealthInfo healthInfo() const;

  void setDurabilityListener(DurabilityListener L) {
    DurListener = std::move(L);
  }

  /// Source of a document's canonical provenance blob (the blame
  /// index's snapshotDoc), captured inside snapshotDocument()'s
  /// document-lock section so tree and provenance are one consistent
  /// cut. Set before traffic; absent means snapshots carry an empty
  /// provenance blob.
  void setProvenanceSource(std::function<std::string(service::DocId)> Fn) {
    ProvSource = std::move(Fn);
  }

  Stats stats() const;

  /// The Stats as a JSON object (no trailing newline), for splicing into
  /// service stats output.
  std::string statsJson() const;

  /// Result of the recoverAndAttach() run, if any.
  const RecoveryResult &lastRecovery() const { return LastRecovery; }

  const Config &config() const { return Cfg; }

private:
  using Clock = std::chrono::steady_clock;

  /// Per-document live bookkeeping. Guarded by StateMu.
  struct DocState {
    uint64_t LastSeq = 0;
    uint64_t SnapSeq = 0;
    uint64_t OpsSinceSnap = 0;
    /// Operations acknowledged without a WAL record since the last
    /// covering snapshot; nonzero iff NeedsResync.
    uint64_t UnloggedOps = 0;
    /// The log has a gap for this document: do not log further records
    /// (they would replay against the wrong base) until a fresh
    /// snapshot covers the current state.
    bool NeedsResync = false;
  };

  /// Breaker state. Guarded by StateMu.
  struct BreakerState {
    bool Open = false;
    /// At most one probe at a time; guards the half-open window.
    bool ProbeInFlight = false;
    size_t ConsecutiveFailures = 0;
    unsigned BackoffMs = 0;
    Clock::time_point OpenedAt;
    Clock::time_point NextProbeAt;
  };

  void onScript(service::DocId Doc, uint64_t Version,
                service::DocumentStore::StoreOp Op, const EditScript &Script,
                const service::DocumentStore::ScriptInfo &Info);
  void onErase(service::DocId Doc);
  void backgroundLoop();

  /// Appends \p Rec through the breaker. Returns true if the record
  /// reached the WAL; \p Durable reports whether an fsync covered it.
  /// Never throws: failures feed the breaker instead.
  bool logRecord(const WalRecord &Rec, bool &Durable);

  /// Retries tombstones whose write failed during onErase.
  void writePendingTombstones();

  void noteIoSuccessLocked();
  void noteIoFailureLocked();
  /// Snapshot/tombstone write outcomes feed the same breaker as WAL
  /// appends (one disk, one disease), with two asymmetries: a snapshot
  /// success never closes an open breaker (only a successful WAL probe
  /// proves the log is writable again), and a snapshot failure while the
  /// breaker is open does not touch the probe schedule (background
  /// snapshot retries fail continuously while degraded; feeding them
  /// into the backoff would push the probe out forever).
  void noteSnapshotIoLocked(bool Ok);
  /// Opens the breaker: stamps the trip, resets backoff, schedules the
  /// first half-open probe.
  void tripLocked();
  void scheduleProbeLocked();

  const SignatureTable &Sig;
  const Config Cfg;
  IoEnv &Io;
  WalWriter Wal;
  service::DocumentStore *Store = nullptr;
  RecoveryResult LastRecovery;
  DurabilityListener DurListener;
  std::function<std::string(service::DocId)> ProvSource;

  mutable std::mutex StateMu;
  uint64_t NextSeq = 0;
  std::unordered_map<uint64_t, DocState> DocStates;
  Stats Counters; // non-WAL fields only; WAL fields live in the writer
  BreakerState Brk;
  /// Microseconds of *closed* degraded periods; the current open period
  /// is added on read.
  uint64_t DegradedUsTotal = 0;
  Rng JitterRng{0x62726b6aull};
  /// Erase tombstones to retry: doc -> erase sequence number.
  std::unordered_map<uint64_t, uint64_t> PendingTombs;

  std::thread Background;
  std::mutex BgMu;
  std::condition_variable BgCv;
  bool StopBg = false;
};

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_PERSISTENCE_H

//===- persist/IoEnv.cpp - Injectable I/O environment ----------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/IoEnv.h"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::persist;

int IoEnv::openFile(const char *Path, int Flags, mode_t Mode) {
  return ::open(Path, Flags, Mode);
}

ssize_t IoEnv::writeSome(int Fd, const void *Buf, size_t Count) {
  return ::write(Fd, Buf, Count);
}

int IoEnv::syncFd(int Fd) { return ::fsync(Fd); }

int IoEnv::closeFd(int Fd) { return ::close(Fd); }

int IoEnv::renameFile(const char *From, const char *To) {
  return ::rename(From, To);
}

int IoEnv::unlinkFile(const char *Path) { return ::unlink(Path); }

int IoEnv::makeDir(const char *Path, mode_t Mode) {
  return ::mkdir(Path, Mode);
}

int IoEnv::readFile(const char *Path, std::string &Out) {
  Out.clear();
  std::FILE *F = std::fopen(Path, "rb");
  if (F == nullptr)
    return -1;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  int Rc = std::ferror(F) ? -1 : 0;
  int SavedErrno = errno;
  std::fclose(F);
  errno = SavedErrno;
  return Rc;
}

IoEnv &persist::realIoEnv() {
  static IoEnv Env;
  return Env;
}

//===----------------------------------------------------------------------===//
// FaultyIoEnv
//===----------------------------------------------------------------------===//

FaultyIoEnv::FaultyIoEnv(FaultPlan P, IoEnv &Base)
    : Base(Base), Plan(P), Schedule(P.Seed) {}

bool FaultyIoEnv::roll(unsigned Permille, uint64_t &OpIndex) {
  std::lock_guard<std::mutex> Lock(Mu);
  OpIndex = ++Stats.Ops;
  if (Healed)
    return false;
  if (Plan.DieAfterOps != 0 && OpIndex > Plan.DieAfterOps)
    return true; // dead disk: everything fails
  if (Permille == 0)
    return false;
  return Schedule.below(1000) < Permille;
}

namespace {

/// Deterministic latency from the op index, not a second PRNG stream:
/// the fault schedule must not depend on whether latency is enabled.
void maybeSleep(unsigned MaxLatencyUs, uint64_t OpIndex) {
  if (MaxLatencyUs == 0)
    return;
  ::usleep(static_cast<useconds_t>((OpIndex * 2654435761u) % MaxLatencyUs));
}

} // namespace

int FaultyIoEnv::openFile(const char *Path, int Flags, mode_t Mode) {
  uint64_t Op;
  bool Fail = roll(Plan.OpenErrorPermille, Op);
  maybeSleep(Plan.MaxLatencyUs, Op);
  if (Fail) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Stats.OpensFailed;
    }
    errno = ENOSPC;
    return -1;
  }
  return Base.openFile(Path, Flags, Mode);
}

ssize_t FaultyIoEnv::writeSome(int Fd, const void *Buf, size_t Count) {
  uint64_t Op;
  bool Fail = roll(Plan.WriteErrorPermille, Op);
  maybeSleep(Plan.MaxLatencyUs, Op);
  if (Fail) {
    bool Torn;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Stats.WritesFailed;
      Torn = Count > 1 && Schedule.below(1000) < Plan.TornWritePermille;
      if (Torn)
        ++Stats.TornWrites;
    }
    if (Torn) {
      // A torn write: a prefix lands on disk, the caller sees failure.
      // This is what leaves a partial frame for recovery to cut.
      size_t Prefix = 1 + (Op % (Count - 1));
      ssize_t N = Base.writeSome(Fd, Buf, Prefix);
      (void)N;
    }
    errno = Op % 2 == 0 ? ENOSPC : EIO;
    return -1;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Healed && Count > 1 && Plan.ShortWritePermille != 0 &&
        Schedule.below(1000) < Plan.ShortWritePermille) {
      ++Stats.ShortWrites;
      Count = 1 + (Op % (Count - 1));
    }
  }
  return Base.writeSome(Fd, Buf, Count);
}

int FaultyIoEnv::syncFd(int Fd) {
  uint64_t Op;
  bool Fail = roll(Plan.FsyncErrorPermille, Op);
  maybeSleep(Plan.MaxLatencyUs, Op);
  if (Fail) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Stats.FsyncsFailed;
    }
    errno = EIO;
    return -1;
  }
  return Base.syncFd(Fd);
}

int FaultyIoEnv::closeFd(int Fd) {
  // close() never fails by schedule: a failing close would leak the
  // descriptor in callers that (correctly) cannot retry it.
  return Base.closeFd(Fd);
}

int FaultyIoEnv::renameFile(const char *From, const char *To) {
  uint64_t Op;
  bool Fail = roll(Plan.RenameErrorPermille, Op);
  maybeSleep(Plan.MaxLatencyUs, Op);
  if (Fail) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Stats.RenamesFailed;
    }
    errno = EIO;
    return -1;
  }
  return Base.renameFile(From, To);
}

int FaultyIoEnv::unlinkFile(const char *Path) {
  // Unlink faults would only delay cleanup; not part of the schedule.
  return Base.unlinkFile(Path);
}

int FaultyIoEnv::makeDir(const char *Path, mode_t Mode) {
  return Base.makeDir(Path, Mode);
}

int FaultyIoEnv::readFile(const char *Path, std::string &Out) {
  uint64_t Op;
  bool Flip = roll(Plan.ReadFlipPermille, Op);
  maybeSleep(Plan.MaxLatencyUs, Op);
  int Rc = Base.readFile(Path, Out);
  if (Rc != 0)
    return Rc;
  // Silent corruption: the read *succeeds* -- no errno, no short count --
  // but one deterministic bit of the payload is wrong. Only checksums or
  // digest re-verification can tell. Plan.ReadFlipPermille gates it so a
  // dead disk (roll forces true) does not start flipping bits when the
  // plan never asked for read corruption.
  if (Flip && Plan.ReadFlipPermille != 0 && !Out.empty()) {
    size_t Byte = static_cast<size_t>((Op * 2654435761u) % Out.size());
    Out[Byte] = static_cast<char>(Out[Byte] ^ (1u << (Op % 8)));
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stats.ReadsCorrupted;
  }
  return 0;
}

void FaultyIoEnv::heal() {
  std::lock_guard<std::mutex> Lock(Mu);
  Healed = true;
}

bool FaultyIoEnv::healed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Healed)
    return true;
  return Plan.WriteErrorPermille == 0 && Plan.FsyncErrorPermille == 0 &&
         Plan.OpenErrorPermille == 0 && Plan.RenameErrorPermille == 0 &&
         Plan.DieAfterOps == 0 && Plan.ReadFlipPermille == 0;
}

FaultyIoEnv::Counters FaultyIoEnv::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

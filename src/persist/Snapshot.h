//===- persist/Snapshot.h - Per-document snapshot files ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-document snapshot files: the full tree (URIs preserved) plus the
/// rollback history ring, written atomically (temp file, fsync, rename)
/// so a snapshot either exists completely or not at all. Snapshots bound
/// recovery replay and make WAL compaction possible: a log record is
/// dead once some durable snapshot of its document has Seq >= the
/// record's Seq.
///
/// On-disk format:
///
///   file    ::= "TDSNAP1\n" u32(payload length) u32(crc32c of payload)
///               payload
///   payload ::= varint(doc) varint(seq) varint(version) varint(flags)
///               varint(|tree blob|) tree-blob
///               varint(history count)
///               { varint(version) varint(|script blob|) script-blob }*
///               [ blame-ext ]
///   blame-ext ::= varint(|prov blob|) prov-blob
///                 varint(|open author|) open-author
///                 { varint(|author|) author }*   (one per history entry)
///   flags   ::= 0 (normal) | 1 (tombstone: document erased; tree blob
///               and history are empty)
///
/// The blame extension is optional on read (snapshots written before
/// the blame subsystem omit it; they restore as unattributed with an
/// empty provenance index) and always written. The prov blob is the
/// ProvenanceIndex's canonical per-document serialization, captured
/// under the same document lock as the tree, so the two always agree.
///
/// File names are `snap-<doc>-<seq>.snap`; the header is authoritative,
/// the name only drives cleanup ordering. Higher Seq supersedes lower.
/// A *tombstone* records that the document was erased at Seq, so the
/// erase record and everything before it can be compacted away without
/// old log records resurrecting the document.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PERSIST_SNAPSHOT_H
#define TRUEDIFF_PERSIST_SNAPSHOT_H

#include "persist/IoEnv.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace truediff {
namespace persist {

/// In-memory form of one snapshot file. Tree and scripts stay as binary
/// blobs here; decoding needs a SignatureTable and a TreeContext and is
/// recovery's business.
struct SnapshotData {
  uint64_t Doc = 0;
  /// Per-document WAL sequence number of the last operation the snapshot
  /// includes; replay skips records with Seq <= this.
  uint64_t Seq = 0;
  uint64_t Version = 0;
  /// True for a tombstone: the document was erased at Seq.
  bool Tombstone = false;
  /// encodeTree blob of the document's tree, URIs preserved; empty for
  /// tombstones.
  std::string TreeBlob;
  /// The history ring: (version, encodeEditScript blob of the forward
  /// script), oldest first. Inverses are recomputed on recovery.
  std::vector<std::pair<uint64_t, std::string>> History;
  /// Authors of the history ring entries, parallel to History; empty
  /// when the snapshot predates the blame subsystem (unattributed).
  std::vector<std::string> HistoryAuthors;
  /// Author recorded for the document's open; empty = unattributed.
  std::string OpenAuthor;
  /// Canonical ProvenanceIndex blob for the document; empty when the
  /// snapshot predates the blame subsystem.
  std::string ProvBlob;
};

/// Writes \p Snap atomically into \p Dir; returns the final path.
/// Throws std::runtime_error on I/O failure -- the temp file is cleaned
/// up and the previous snapshot (if any) is untouched, so a failed
/// write never degrades what recovery can see. \p Env is the I/O seam;
/// null means real I/O.
std::string writeSnapshotFile(const std::string &Dir, const SnapshotData &Snap,
                              IoEnv *Env = nullptr);

/// Result of reading one snapshot file.
struct ReadSnapshotResult {
  bool Ok = false;
  SnapshotData Snap;
  std::string Error;
};

/// Reads and CRC-checks one snapshot file; corrupt or truncated files
/// yield an error, never a partial snapshot. \p Env is the read seam
/// (null = real I/O); a faulty environment can silently corrupt the
/// bytes, which the CRC check then reports as a mismatch.
ReadSnapshotResult readSnapshotFile(const std::string &Path,
                                    IoEnv *Env = nullptr);

/// Lists snapshot files in \p Dir as (path, doc, seq) parsed from the
/// file name, unordered. Callers must still trust only the file header.
struct SnapshotFileName {
  std::string Path;
  uint64_t Doc = 0;
  uint64_t Seq = 0;
};
std::vector<SnapshotFileName> listSnapshotFiles(const std::string &Dir);

} // namespace persist
} // namespace truediff

#endif // TRUEDIFF_PERSIST_SNAPSHOT_H

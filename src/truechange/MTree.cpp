//===- truechange/MTree.cpp - Standard semantics of edit scripts -----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truechange/MTree.h"

#include <cassert>

using namespace truediff;

MTree::MTree(const SignatureTable &Sig) : Sig(Sig) {
  Arena.emplace_back();
  Root = &Arena.back();
  Root->Tag = Sig.rootTag();
  Root->Uri = NullURI;
  Root->Kids.emplace(Sig.rootLink(), nullptr);
  Index.emplace(NullURI, Root);
}

void MTree::buildFromTree(MNode *Parent, LinkId Link, const Tree *T) {
  Arena.emplace_back();
  MNode *N = &Arena.back();
  N->Tag = T->tag();
  N->Uri = T->uri();
  Parent->Kids[Link] = N;
  assert(!Index.count(T->uri()) && "URIs must be unique");
  Index.emplace(T->uri(), N);

  const TagSignature &TagSig = Sig.signature(T->tag());
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    buildFromTree(N, TagSig.Kids[I].Link, T->kid(I));
  for (size_t I = 0, E = T->numLits(); I != E; ++I)
    N->Lits.emplace(TagSig.Lits[I].Link, T->lit(I));
}

MTree MTree::fromTree(const SignatureTable &Sig, const Tree *T) {
  MTree M(Sig);
  if (T != nullptr)
    M.buildFromTree(M.Root, Sig.rootLink(), T);
  return M;
}

const MNode *MTree::lookup(URI Uri) const {
  auto It = Index.find(Uri);
  return It == Index.end() ? nullptr : It->second;
}

const MNode *MTree::top() const {
  auto It = Root->Kids.find(Sig.rootLink());
  return It == Root->Kids.end() ? nullptr : It->second;
}

MTree::PatchResult MTree::processEdit(const Edit &E, size_t Index0) {
  auto Fail = [&](std::string Message) {
    PatchResult R;
    R.Ok = false;
    R.ErrorIndex = Index0;
    R.Error = E.toString(Sig) + ": " + std::move(Message);
    return R;
  };

  switch (E.Kind) {
  case EditKind::Detach: {
    auto It = Index.find(E.Parent.Uri);
    if (It == Index.end())
      return Fail("parent not in index");
    It->second->Kids[E.Link] = nullptr;
    return PatchResult();
  }
  case EditKind::Attach: {
    auto ParentIt = Index.find(E.Parent.Uri);
    if (ParentIt == Index.end())
      return Fail("parent not in index");
    auto NodeIt = Index.find(E.Node.Uri);
    if (NodeIt == Index.end())
      return Fail("node not in index");
    ParentIt->second->Kids[E.Link] = NodeIt->second;
    return PatchResult();
  }
  case EditKind::Load: {
    Arena.emplace_back();
    MNode *N = &Arena.back();
    N->Tag = E.Node.Tag;
    N->Uri = E.Node.Uri;
    for (const KidRef &Kid : E.Kids) {
      auto It = Index.find(Kid.Uri);
      if (It == Index.end()) {
        Arena.pop_back();
        return Fail("kid " + std::to_string(Kid.Uri) + " not in index");
      }
      N->Kids.emplace(Kid.Link, It->second);
    }
    for (const LitRef &Lit : E.Lits)
      N->Lits.emplace(Lit.Link, Lit.Value);
    if (!Index.emplace(E.Node.Uri, N).second) {
      Arena.pop_back();
      return Fail("URI already loaded");
    }
    return PatchResult();
  }
  case EditKind::Unload: {
    if (Index.erase(E.Node.Uri) == 0)
      return Fail("node not in index");
    return PatchResult();
  }
  case EditKind::Update: {
    auto It = Index.find(E.Node.Uri);
    if (It == Index.end())
      return Fail("node not in index");
    for (const LitRef &Lit : E.Lits)
      It->second->Lits[Lit.Link] = Lit.Value;
    return PatchResult();
  }
  }
  return Fail("unknown edit kind");
}

MTree::PatchResult MTree::checkCompliance(const Edit &E, size_t Index0) const {
  auto Fail = [&](std::string Message) {
    PatchResult R;
    R.Ok = false;
    R.ErrorIndex = Index0;
    R.Error = E.toString(Sig) + ": non-compliant: " + std::move(Message);
    return R;
  };

  switch (E.Kind) {
  case EditKind::Detach: {
    // Definition 3.5 (1): the parent exists, has the claimed tag, and its
    // link currently holds the claimed node.
    const MNode *P = lookup(E.Parent.Uri);
    if (P == nullptr)
      return Fail("parent not loaded");
    if (P->Tag != E.Parent.Tag)
      return Fail("parent tag mismatch");
    auto It = P->Kids.find(E.Link);
    if (It == P->Kids.end() || It->second == nullptr)
      return Fail("link is not filled");
    if (It->second->Uri != E.Node.Uri || It->second->Tag != E.Node.Tag)
      return Fail("link holds a different node");
    return PatchResult();
  }
  case EditKind::Attach:
    // Definition 3.5 (2): ensured by the type system, nothing to check.
    return PatchResult();
  case EditKind::Load:
    // Definition 3.5 (3): the URI is fresh. Later loads of the same URI
    // fail here too because patching interleaves with these checks.
    if (lookup(E.Node.Uri) != nullptr)
      return Fail("URI is not fresh");
    return PatchResult();
  case EditKind::Unload: {
    // Definition 3.5 (4): the node exists with the claimed tag, kids, and
    // literals.
    const MNode *N = lookup(E.Node.Uri);
    if (N == nullptr)
      return Fail("node not loaded");
    if (N->Tag != E.Node.Tag)
      return Fail("tag mismatch");
    for (const KidRef &Kid : E.Kids) {
      auto It = N->Kids.find(Kid.Link);
      if (It == N->Kids.end() || It->second == nullptr ||
          It->second->Uri != Kid.Uri)
        return Fail("kid list disagrees with tree");
    }
    for (const LitRef &Lit : E.Lits) {
      auto It = N->Lits.find(Lit.Link);
      if (It == N->Lits.end() || !(It->second == Lit.Value))
        return Fail("literal list disagrees with tree");
    }
    return PatchResult();
  }
  case EditKind::Update: {
    const MNode *N = lookup(E.Node.Uri);
    if (N == nullptr)
      return Fail("node not loaded");
    if (N->Tag != E.Node.Tag)
      return Fail("tag mismatch");
    for (const LitRef &Lit : E.OldLits) {
      auto It = N->Lits.find(Lit.Link);
      if (It == N->Lits.end() || !(It->second == Lit.Value))
        return Fail("old literals disagree with tree");
    }
    return PatchResult();
  }
  }
  return Fail("unknown edit kind");
}

MTree::PatchResult MTree::patch(const EditScript &Script) {
  for (size_t I = 0, E = Script.size(); I != E; ++I) {
    PatchResult R = processEdit(Script[I], I);
    if (!R.Ok)
      return R;
  }
  PatchResult Done;
  Done.TouchedUris = Script.touchedUris();
  return Done;
}

MTree::PatchResult MTree::patchChecked(const EditScript &Script) {
  for (size_t I = 0, E = Script.size(); I != E; ++I) {
    PatchResult R = checkCompliance(Script[I], I);
    if (!R.Ok)
      return R;
    R = processEdit(Script[I], I);
    if (!R.Ok)
      return R;
  }
  PatchResult Done;
  Done.TouchedUris = Script.touchedUris();
  return Done;
}

bool MTree::nodeEqualsTree(const MNode *N, const Tree *T) const {
  if (N == nullptr || T == nullptr)
    return N == nullptr && T == nullptr;
  if (N->Tag != T->tag())
    return false;
  const TagSignature &TagSig = Sig.signature(T->tag());
  if (N->Kids.size() != TagSig.Kids.size() ||
      N->Lits.size() != TagSig.Lits.size())
    return false;
  for (size_t I = 0, E = T->arity(); I != E; ++I) {
    auto It = N->Kids.find(TagSig.Kids[I].Link);
    if (It == N->Kids.end() || !nodeEqualsTree(It->second, T->kid(I)))
      return false;
  }
  for (size_t I = 0, E = T->numLits(); I != E; ++I) {
    auto It = N->Lits.find(TagSig.Lits[I].Link);
    if (It == N->Lits.end() || !(It->second == T->lit(I)))
      return false;
  }
  return true;
}

bool MTree::equalsTree(const Tree *T) const { return nodeEqualsTree(top(), T); }

Tree *MTree::toTree(TreeContext &Ctx) const {
  if (!isClosedWellFormed())
    return nullptr;
  std::function<Tree *(const MNode *)> Build =
      [&](const MNode *N) -> Tree * {
    const TagSignature &TagSig = Sig.signature(N->Tag);
    std::vector<Tree *> Kids;
    Kids.reserve(TagSig.Kids.size());
    for (const KidSpec &Spec : TagSig.Kids)
      Kids.push_back(Build(N->Kids.at(Spec.Link)));
    std::vector<Literal> Lits;
    Lits.reserve(TagSig.Lits.size());
    for (const LitSpec &Spec : TagSig.Lits)
      Lits.push_back(N->Lits.at(Spec.Link));
    return Ctx.make(N->Tag, std::move(Kids), std::move(Lits));
  };
  return Build(top());
}

Tree *MTree::toTreePreservingUris(TreeContext &Ctx) const {
  if (!isClosedWellFormed())
    return nullptr;
  std::function<Tree *(const MNode *)> Build =
      [&](const MNode *N) -> Tree * {
    const TagSignature &TagSig = Sig.signature(N->Tag);
    std::vector<Tree *> Kids;
    Kids.reserve(TagSig.Kids.size());
    for (const KidSpec &Spec : TagSig.Kids)
      Kids.push_back(Build(N->Kids.at(Spec.Link)));
    std::vector<Literal> Lits;
    Lits.reserve(TagSig.Lits.size());
    for (const LitSpec &Spec : TagSig.Lits)
      Lits.push_back(N->Lits.at(Spec.Link));
    return Ctx.adoptWithUri(N->Tag, N->Uri, std::move(Kids), std::move(Lits));
  };
  return Build(top());
}

bool MTree::isClosedWellFormed() const {
  size_t Reachable = 1; // the virtual root
  std::function<bool(const MNode *)> Walk = [&](const MNode *N) -> bool {
    if (N == nullptr)
      return false; // empty slot
    ++Reachable;
    if (!Sig.hasTag(N->Tag))
      return false;
    const TagSignature &TagSig = Sig.signature(N->Tag);
    for (const KidSpec &Spec : TagSig.Kids) {
      auto It = N->Kids.find(Spec.Link);
      if (It == N->Kids.end() || !Walk(It->second))
        return false;
    }
    for (const LitSpec &Spec : TagSig.Lits) {
      auto It = N->Lits.find(Spec.Link);
      if (It == N->Lits.end() || It->second.kind() != Spec.Kind)
        return false;
    }
    return true;
  };
  auto TopIt = Root->Kids.find(Sig.rootLink());
  if (TopIt == Root->Kids.end() || !Walk(TopIt->second))
    return false;
  // No leaked roots: the index holds exactly the reachable nodes.
  return Reachable == Index.size();
}

std::string MTree::nodeToString(const MNode *N) const {
  if (N == nullptr)
    return "<hole>";
  std::string Out = "(" + Sig.name(N->Tag) + "_" + std::to_string(N->Uri);
  const TagSignature &TagSig = Sig.signature(N->Tag);
  for (const KidSpec &Spec : TagSig.Kids) {
    Out += " ";
    auto It = N->Kids.find(Spec.Link);
    Out += It == N->Kids.end() ? "<hole>" : nodeToString(It->second);
  }
  for (const LitSpec &Spec : TagSig.Lits) {
    Out += " ";
    auto It = N->Lits.find(Spec.Link);
    Out += It == N->Lits.end() ? "<missing>" : It->second.toString();
  }
  Out += ")";
  return Out;
}

std::string MTree::toString() const { return nodeToString(top()); }

//===- truechange/InitScript.h - Initializing edit scripts ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Produces *initializing* edit scripts (paper Definition 3.2): a script
/// that builds a given tree from the empty tree by loading every node
/// bottom-up and attaching the root to RootLink -- exactly the shape of
/// the paper's Delta_1 example (Section 3.1). With this, a tree itself
/// can be transmitted as an edit script, so a truechange consumer needs
/// no other wire format.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUECHANGE_INITSCRIPT_H
#define TRUEDIFF_TRUECHANGE_INITSCRIPT_H

#include "tree/Tree.h"
#include "truechange/Edit.h"

namespace truediff {

/// Builds the initializing script for \p T: loads in post-order (kids
/// before parents, satisfying T-Load's linearity) and attaches the root.
/// The result satisfies Definition 3.2:
///   Sigma |- D : ((null:Root) . (null.RootLink:Any)) > ((null:Root) . e)
EditScript buildInitializingScript(const SignatureTable &Sig, const Tree *T);

} // namespace truediff

#endif // TRUEDIFF_TRUECHANGE_INITSCRIPT_H

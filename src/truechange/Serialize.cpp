//===- truechange/Serialize.cpp - Edit script text format ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truechange/Serialize.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>

using namespace truediff;

std::string truediff::serializeEditScript(const SignatureTable &Sig,
                                          const EditScript &Script) {
  return Script.toString(Sig);
}

namespace {

/// Recursive-descent parser for the edit script notation.
class ScriptParser {
public:
  ScriptParser(const SignatureTable &Sig, std::string_view Text)
      : Sig(Sig), Text(Text) {}

  ParseScriptResult run() {
    ParseScriptResult Result;
    std::vector<Edit> Edits;
    skipSpace();
    while (Pos < Text.size()) {
      std::optional<Edit> E = parseEdit();
      if (!E) {
        Result.Error = Err.empty() ? "parse error" : Err;
        return Result;
      }
      Edits.push_back(std::move(*E));
      skipSpace();
    }
    Result.Ok = true;
    Result.Script = EditScript(std::move(Edits));
    return Result;
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  void fail(const std::string &Message) {
    if (Err.empty())
      Err = Message + " at offset " + std::to_string(Pos);
  }

  bool expect(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    fail(std::string("expected '") + C + "'");
    return false;
  }

  bool peekIs(char C) {
    skipSpace();
    return Pos < Text.size() && Text[Pos] == C;
  }

  std::string parseIdent() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    if (Pos == Start)
      fail("expected identifier");
    return std::string(Text.substr(Start, Pos - Start));
  }

  std::optional<uint64_t> parseUInt() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start) {
      fail("expected number");
      return std::nullopt;
    }
    return std::strtoull(std::string(Text.substr(Start, Pos - Start)).c_str(),
                         nullptr, 10);
  }

  /// Tag_URI, e.g. "Add_1". The tag name may itself contain underscores;
  /// the URI is the suffix after the *last* underscore.
  std::optional<NodeRef> parseNode() {
    std::string Ident = parseIdent();
    if (!Err.empty())
      return std::nullopt;
    size_t Sep = Ident.rfind('_');
    if (Sep == std::string::npos || Sep + 1 == Ident.size()) {
      fail("expected Tag_URI");
      return std::nullopt;
    }
    std::string TagName = Ident.substr(0, Sep);
    for (size_t I = Sep + 1; I != Ident.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Ident[I]))) {
        fail("expected numeric URI suffix");
        return std::nullopt;
      }
    Symbol Tag = Sig.lookup(TagName);
    if (Tag == InvalidSymbol || !Sig.hasTag(Tag)) {
      fail("unknown tag '" + TagName + "'");
      return std::nullopt;
    }
    return NodeRef{Tag, std::strtoull(Ident.c_str() + Sep + 1, nullptr, 10)};
  }

  std::optional<LinkId> parseQuotedLink() {
    if (!expect('"'))
      return std::nullopt;
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '"')
      ++Pos;
    if (Pos >= Text.size()) {
      fail("unterminated link name");
      return std::nullopt;
    }
    std::string Name(Text.substr(Start, Pos - Start));
    ++Pos;
    Symbol Link = Sig.lookup(Name);
    if (Link == InvalidSymbol) {
      fail("unknown link '" + Name + "'");
      return std::nullopt;
    }
    return Link;
  }

  bool expectArrow() {
    skipSpace();
    if (Text.substr(Pos, 2) == "->") {
      Pos += 2;
      return true;
    }
    fail("expected '->'");
    return false;
  }

  std::optional<Literal> parseLiteral() {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("expected literal");
      return std::nullopt;
    }
    char C = Text[Pos];
    if (C == '"') {
      ++Pos;
      std::string Value;
      while (Pos < Text.size() && Text[Pos] != '"') {
        char Ch = Text[Pos];
        if (Ch == '\\' && Pos + 1 < Text.size()) {
          ++Pos;
          switch (Text[Pos]) {
          case 'n':
            Value.push_back('\n');
            break;
          case 't':
            Value.push_back('\t');
            break;
          default:
            Value.push_back(Text[Pos]);
          }
        } else {
          Value.push_back(Ch);
        }
        ++Pos;
      }
      if (Pos >= Text.size()) {
        fail("unterminated string literal");
        return std::nullopt;
      }
      ++Pos;
      return Literal(std::move(Value));
    }
    if (std::isalpha(static_cast<unsigned char>(C))) {
      std::string Word = parseIdent();
      if (Word == "true")
        return Literal(true);
      if (Word == "false")
        return Literal(false);
      if (Word == "inf")
        return Literal(std::numeric_limits<double>::infinity());
      if (Word == "nan")
        return Literal(std::numeric_limits<double>::quiet_NaN());
      fail("expected literal, got '" + Word + "'");
      return std::nullopt;
    }
    // Number: integer unless it contains '.', 'e', or 'E'.
    size_t Start = Pos;
    if (C == '-' || C == '+') {
      ++Pos;
      // Signed non-finite floats: "-inf", "-nan" (and "+" variants).
      if (Pos < Text.size() &&
          std::isalpha(static_cast<unsigned char>(Text[Pos]))) {
        std::string Word = parseIdent();
        double Sign = C == '-' ? -1.0 : 1.0;
        if (Word == "inf")
          return Literal(Sign * std::numeric_limits<double>::infinity());
        if (Word == "nan")
          return Literal(
              std::copysign(std::numeric_limits<double>::quiet_NaN(), Sign));
        fail("expected literal, got '" + std::string(1, C) + Word + "'");
        return std::nullopt;
      }
    }
    bool IsFloat = false;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            ((Text[Pos] == '-' || Text[Pos] == '+') &&
             (Text[Pos - 1] == 'e' || Text[Pos - 1] == 'E')))) {
      IsFloat |= Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E';
      ++Pos;
    }
    std::string Num(Text.substr(Start, Pos - Start));
    if (Num.find_first_of("0123456789") == std::string::npos) {
      // Catches the empty case and a bare sign, which strtoll would
      // silently read as 0.
      fail("expected literal");
      return std::nullopt;
    }
    if (IsFloat)
      return Literal(std::strtod(Num.c_str(), nullptr));
    return Literal(static_cast<int64_t>(
        std::strtoll(Num.c_str(), nullptr, 10)));
  }

  /// ["link"->uri, ...]
  std::optional<std::vector<KidRef>> parseKidList() {
    if (!expect('['))
      return std::nullopt;
    std::vector<KidRef> Kids;
    if (!peekIs(']')) {
      do {
        std::optional<LinkId> Link = parseQuotedLink();
        if (!Link || !expectArrow())
          return std::nullopt;
        std::optional<uint64_t> Uri = parseUInt();
        if (!Uri)
          return std::nullopt;
        Kids.push_back(KidRef{*Link, *Uri});
      } while (peekIs(',') && expect(','));
    }
    if (!expect(']'))
      return std::nullopt;
    return Kids;
  }

  /// ["link"->literal, ...]
  std::optional<std::vector<LitRef>> parseLitList() {
    if (!expect('['))
      return std::nullopt;
    std::vector<LitRef> Lits;
    if (!peekIs(']')) {
      do {
        std::optional<LinkId> Link = parseQuotedLink();
        if (!Link || !expectArrow())
          return std::nullopt;
        std::optional<Literal> Value = parseLiteral();
        if (!Value)
          return std::nullopt;
        Lits.push_back(LitRef{*Link, std::move(*Value)});
      } while (peekIs(',') && expect(','));
    }
    if (!expect(']'))
      return std::nullopt;
    return Lits;
  }

  std::optional<Edit> parseEdit() {
    std::string Kind = parseIdent();
    if (!Err.empty())
      return std::nullopt;
    if (!expect('('))
      return std::nullopt;
    std::optional<NodeRef> Node = parseNode();
    if (!Node)
      return std::nullopt;

    std::optional<Edit> Result;
    if (Kind == "detach" || Kind == "attach") {
      if (!expect(','))
        return std::nullopt;
      std::optional<LinkId> Link = parseQuotedLink();
      if (!Link || !expect(','))
        return std::nullopt;
      std::optional<NodeRef> Parent = parseNode();
      if (!Parent)
        return std::nullopt;
      Result = Kind == "detach" ? Edit::detach(*Node, *Link, *Parent)
                                : Edit::attach(*Node, *Link, *Parent);
    } else if (Kind == "load" || Kind == "unload") {
      if (!expect(','))
        return std::nullopt;
      std::optional<std::vector<KidRef>> Kids = parseKidList();
      if (!Kids || !expect(','))
        return std::nullopt;
      std::optional<std::vector<LitRef>> Lits = parseLitList();
      if (!Lits)
        return std::nullopt;
      Result = Kind == "load"
                   ? Edit::load(*Node, std::move(*Kids), std::move(*Lits))
                   : Edit::unload(*Node, std::move(*Kids), std::move(*Lits));
    } else if (Kind == "update") {
      if (!expect(','))
        return std::nullopt;
      std::optional<std::vector<LitRef>> Old = parseLitList();
      if (!Old || !expect(','))
        return std::nullopt;
      std::optional<std::vector<LitRef>> New = parseLitList();
      if (!New)
        return std::nullopt;
      Result = Edit::update(*Node, std::move(*Old), std::move(*New));
    } else {
      fail("unknown edit kind '" + Kind + "'");
      return std::nullopt;
    }

    if (!expect(')'))
      return std::nullopt;
    return Result;
  }

  const SignatureTable &Sig;
  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

ParseScriptResult truediff::parseEditScript(const SignatureTable &Sig,
                                            std::string_view Text) {
  return ScriptParser(Sig, Text).run();
}

//===- truechange/MTree.h - Standard semantics of edit scripts --*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard semantics of truechange (paper Figure 2): a mutable tree
/// of MNodes with an index from URI to node, so every edit applies in
/// constant time. The pre-defined root node has tag RootTag, URI null, and
/// a single slot RootLink.
///
/// Because well-typed scripts never overload links, each link maps to at
/// most one child and a plain map<Link, MNode*> suffices -- the paper's
/// key observation enabling typed representations.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUECHANGE_MTREE_H
#define TRUEDIFF_TRUECHANGE_MTREE_H

#include "tree/Tree.h"
#include "truechange/Edit.h"

#include <deque>
#include <string>
#include <unordered_map>

namespace truediff {

/// A mutable tree node of the standard semantics: links to child nodes and
/// literals can be updated destructively.
struct MNode {
  TagId Tag = InvalidSymbol;
  URI Uri = NullURI;
  std::unordered_map<LinkId, MNode *> Kids;
  std::unordered_map<LinkId, Literal> Lits;
};

/// A mutable tree with indexed nodes for constant-time access.
class MTree {
public:
  /// Creates the empty tree: just the pre-defined root node with an empty
  /// RootLink slot, as in the paper's MTree constructor.
  explicit MTree(const SignatureTable &Sig);

  MTree(const MTree &) = delete;
  MTree &operator=(const MTree &) = delete;
  MTree(MTree &&) = default;

  /// Converts a typed tree into an MTree, preserving URIs. The tree hangs
  /// off the root's RootLink.
  static MTree fromTree(const SignatureTable &Sig, const Tree *T);

  /// Outcome of patching: Ok, or the index of the failing edit plus a
  /// message. Patching never fails for well-typed, compliant scripts
  /// (Theorem 3.6).
  struct PatchResult {
    bool Ok = true;
    size_t ErrorIndex = 0;
    std::string Error;
    /// On success (patch/patchChecked only): the deduplicated URIs whose
    /// nodes the script mutated in place -- rewired parents, re-literaled
    /// and loaded nodes (EditScript::touchedUris). Consumers maintaining
    /// per-node caches over the tree invalidate exactly these entries
    /// (plus their ancestors) instead of flushing.
    std::vector<URI> TouchedUris;
  };

  /// The standard semantics t => t.patch(Delta): applies each edit with
  /// processEdit. Performs only the lookups Figure 2 performs; trusts the
  /// type system otherwise.
  PatchResult patch(const EditScript &Script);

  /// Like patch, but first verifies each edit's syntactic compliance
  /// (Definition 3.5) against the current tree: detached nodes really are
  /// the children they claim to be, loaded URIs are fresh, unloaded nodes
  /// carry exactly the listed kids and literals, and updates replace the
  /// literals they claim to replace.
  PatchResult patchChecked(const EditScript &Script);

  /// Applies a single edit (Figure 2's processEdit).
  PatchResult processEdit(const Edit &E, size_t Index = 0);

  /// \name Inspection
  /// @{
  MNode *root() { return Root; }
  const MNode *root() const { return Root; }

  /// The node with URI \p Uri, or nullptr if not loaded.
  const MNode *lookup(URI Uri) const;

  /// The tree hanging off the root's RootLink, or nullptr.
  const MNode *top() const;

  /// Number of indexed nodes, including the pre-defined root.
  size_t indexSize() const { return Index.size(); }

  /// True iff the tree is closed and well-formed: every node reachable
  /// from the root has all signature slots filled and all literals
  /// present, and the index contains exactly the reachable nodes (no
  /// leaked detached subtrees). This is the conclusion Theorem 3.6
  /// guarantees for well-typed, compliant scripts.
  bool isClosedWellFormed() const;

  /// True iff the patched content equals \p T up to URIs. Kid links are
  /// compared in signature order.
  bool equalsTree(const Tree *T) const;

  /// Converts the patched content back into a typed tree allocated in
  /// \p Ctx (with fresh URIs). Requires a closed, well-formed tree;
  /// returns nullptr otherwise. Together with fromTree/patch this closes
  /// the loop: typed tree -> standard semantics -> typed tree.
  Tree *toTree(TreeContext &Ctx) const;

  /// Like toTree, but every rebuilt node keeps its MTree URI, so scripts
  /// produced against the original tree remain meaningful against the
  /// result. \p Ctx must not hold a live node with any of these URIs
  /// (pass a fresh context); its fresh-URI counter is bumped past the
  /// maximum adopted URI. This is how the service layer materialises a
  /// rolled-back document: fromTree -> patch(inverse) ->
  /// toTreePreservingUris.
  Tree *toTreePreservingUris(TreeContext &Ctx) const;

  /// Renders the tree like printSExprWithUris, for tests and debugging.
  std::string toString() const;
  /// @}

private:
  PatchResult checkCompliance(const Edit &E, size_t Index) const;
  bool nodeEqualsTree(const MNode *N, const Tree *T) const;
  void buildFromTree(MNode *Parent, LinkId Link, const Tree *T);
  std::string nodeToString(const MNode *N) const;

  const SignatureTable &Sig;
  std::deque<MNode> Arena;
  MNode *Root;
  std::unordered_map<URI, MNode *> Index;
};

} // namespace truediff

#endif // TRUEDIFF_TRUECHANGE_MTREE_H

//===- truechange/Serialize.h - Edit script text format ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual wire format for truechange edit scripts, so patches can be
/// stored and transmitted -- the version-control and database use cases
/// the paper motivates (Section 1). The format is exactly the paper
/// notation EditScript::toString produces, one edit per line:
///
///   detach(Sub_2, "e1", Add_1)
///   load(Var_4, ["e1"->1, "e2"->2], ["name"->"a"])
///   update(Var_2, ["name"->"b"], ["name"->"c"])
///
/// parseEditScript is the exact inverse of EditScript::toString.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUECHANGE_SERIALIZE_H
#define TRUEDIFF_TRUECHANGE_SERIALIZE_H

#include "truechange/Edit.h"

#include <string>
#include <string_view>

namespace truediff {

/// Result of parsing a serialized edit script.
struct ParseScriptResult {
  bool Ok = false;
  EditScript Script;
  std::string Error;
};

/// Serializes \p Script; identical to Script.toString(Sig).
std::string serializeEditScript(const SignatureTable &Sig,
                                const EditScript &Script);

/// Parses the textual format back into an edit script. Tags and links
/// must exist in \p Sig (scripts only make sense against the signature
/// they were produced for); unknown names are reported as errors.
ParseScriptResult parseEditScript(const SignatureTable &Sig,
                                  std::string_view Text);

} // namespace truediff

#endif // TRUEDIFF_TRUECHANGE_SERIALIZE_H

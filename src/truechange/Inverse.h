//===- truechange/Inverse.h - Inverting edit scripts ------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inversion of truechange edit scripts. Every edit operation has an
/// exact inverse (detach/attach, load/unload are dual; update swaps its
/// literal lists), so a well-typed script can be undone by inverting each
/// edit and reversing the order:
///
///   Sigma |- D : (R . S) > (R' . S')  implies
///   Sigma |- invert(D) : (R' . S') > (R . S)
///
/// This gives truechange-based systems first-class undo and enables the
/// patch-algebra style of version control the paper relates to (darcs,
/// Section 7): applying D then invert(D) restores the original tree.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUECHANGE_INVERSE_H
#define TRUEDIFF_TRUECHANGE_INVERSE_H

#include "truechange/Edit.h"

namespace truediff {

/// The inverse of a single edit.
Edit invertEdit(const Edit &E);

/// The inverse script: each edit inverted, in reverse order.
EditScript invertScript(const EditScript &Script);

} // namespace truediff

#endif // TRUEDIFF_TRUECHANGE_INVERSE_H

//===- truechange/TypeChecker.h - Linear type system of truechange *- C++-*-=//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear type system of truechange (paper Figure 3). The judgment
///
///   Sigma |- e : (R . S) > (R' . S')
///
/// tracks unattached roots R (URI -> sort) and empty slots S
/// ((URI, link) -> sort) as linearly typed resources. Rules:
///
///   T-Detach: node not in R, par.x not in S; adds node and the slot.
///   T-Attach: consumes node from R and par.x from S if T <: T'.
///   T-Load:   consumes the kid roots, produces the node root; kids and
///             lits must match the tag's signature.
///   T-Unload: consumes the node root, produces the kid roots.
///   T-Update: checks the new literals against the signature; no effect.
///
/// Definition 3.1 (well-typed script) and Definition 3.2 (well-typed
/// initializing script) are exposed as checkWellTyped/checkInitializing.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUECHANGE_TYPECHECKER_H
#define TRUEDIFF_TRUECHANGE_TYPECHECKER_H

#include "truechange/Edit.h"

#include <string>
#include <unordered_map>

namespace truediff {

/// Outcome of type checking: Ok, or the index of the offending edit and a
/// diagnostic message (style: lowercase, no trailing period).
struct TypeCheckResult {
  bool Ok = true;
  size_t ErrorIndex = 0;
  std::string Error;

  static TypeCheckResult success() { return TypeCheckResult(); }
  static TypeCheckResult failure(size_t Index, std::string Message) {
    TypeCheckResult R;
    R.Ok = false;
    R.ErrorIndex = Index;
    R.Error = std::move(Message);
    return R;
  }
};

/// The typing state (R . S): unattached roots and empty slots with sorts.
class LinearState {
public:
  /// Key of an empty slot: the parent URI and the link.
  struct SlotKey {
    URI Parent;
    LinkId Link;
    bool operator==(const SlotKey &O) const {
      return Parent == O.Parent && Link == O.Link;
    }
  };
  struct SlotKeyHash {
    size_t operator()(const SlotKey &K) const {
      return std::hash<uint64_t>()(K.Parent * 1000003u + K.Link);
    }
  };

  std::unordered_map<URI, SortId> Roots;
  std::unordered_map<SlotKey, SortId, SlotKeyHash> Slots;

  /// The state of Definition 3.1: R = {null : Root}, S = {}.
  static LinearState closed(const SignatureTable &Sig);

  /// The initial state of Definition 3.2: R = {null : Root},
  /// S = {null.RootLink : Any}.
  static LinearState empty(const SignatureTable &Sig);

  bool operator==(const LinearState &O) const {
    return Roots == O.Roots && Slots == O.Slots;
  }
};

/// Checks truechange edit scripts against the linear type system.
class LinearTypeChecker {
public:
  explicit LinearTypeChecker(const SignatureTable &Sig) : Sig(Sig) {}

  /// Threads one edit through \p State per Figure 3. On success, State is
  /// updated in place.
  TypeCheckResult checkEdit(const Edit &E, LinearState &State,
                            size_t Index = 0) const;

  /// Threads a whole script through \p State (T-EditScript-Nil/Cons).
  TypeCheckResult checkScript(const EditScript &Script,
                              LinearState &State) const;

  /// Definition 3.1: Sigma |- Delta : ((null:Root) . e) > ((null:Root) . e).
  TypeCheckResult checkWellTyped(const EditScript &Script) const;

  /// Definition 3.2: from ((null:Root) . (null.RootLink:Any)) to
  /// ((null:Root) . e); used for scripts that initialize the empty tree.
  TypeCheckResult checkInitializing(const EditScript &Script) const;

private:
  const SignatureTable &Sig;
};

} // namespace truediff

#endif // TRUEDIFF_TRUECHANGE_TYPECHECKER_H

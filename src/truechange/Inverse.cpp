//===- truechange/Inverse.cpp - Inverting edit scripts ---------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truechange/Inverse.h"

using namespace truediff;

Edit truediff::invertEdit(const Edit &E) {
  switch (E.Kind) {
  case EditKind::Detach:
    return Edit::attach(E.Node, E.Link, E.Parent);
  case EditKind::Attach:
    return Edit::detach(E.Node, E.Link, E.Parent);
  case EditKind::Load:
    return Edit::unload(E.Node, E.Kids, E.Lits);
  case EditKind::Unload:
    return Edit::load(E.Node, E.Kids, E.Lits);
  case EditKind::Update:
    return Edit::update(E.Node, E.Lits, E.OldLits);
  }
  return E; // unreachable
}

EditScript truediff::invertScript(const EditScript &Script) {
  std::vector<Edit> Inverted;
  Inverted.reserve(Script.size());
  for (size_t I = Script.size(); I-- > 0;)
    Inverted.push_back(invertEdit(Script[I]));
  return EditScript(std::move(Inverted));
}

//===- truechange/Edit.h - The truechange edit script language --*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax of truechange edit scripts (paper Figure 1):
///
///   Edit ::= Detach(n, l, par) | Attach(n, l, par)
///          | Load(n, ks, ls)   | Unload(n, ks, ls)
///          | Update(n, old, now)
///
/// Nodes are (tag, URI) pairs; kids are (link, URI) pairs; lits are
/// (link, value) pairs. An EditScript is a sequence of edits.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUECHANGE_EDIT_H
#define TRUEDIFF_TRUECHANGE_EDIT_H

#include "support/Literal.h"
#include "tree/Ids.h"
#include "tree/Signature.h"

#include <string>
#include <vector>

namespace truediff {

/// A node reference (tag, URI); the paper writes Tag_URI.
struct NodeRef {
  TagId Tag = InvalidSymbol;
  URI Uri = NullURI;

  bool operator==(const NodeRef &O) const {
    return Tag == O.Tag && Uri == O.Uri;
  }
};

/// One (link, URI) entry of a Load/Unload kid list.
struct KidRef {
  LinkId Link = InvalidSymbol;
  URI Uri = NullURI;
};

/// One (link, value) entry of a literal list.
struct LitRef {
  LinkId Link = InvalidSymbol;
  Literal Value;
};

/// Discriminator for Edit.
enum class EditKind : uint8_t {
  Detach,
  Attach,
  Load,
  Unload,
  Update,
};

/// Returns "detach", "attach", ...
const char *editKindName(EditKind Kind);

/// One edit operation. A tagged struct rather than a class hierarchy: edit
/// scripts are bulk data that gets copied, stored, and replayed.
struct Edit {
  EditKind Kind;
  /// The node the edit manipulates (all edit kinds).
  NodeRef Node;
  /// Detach/Attach: the link between parent and node.
  LinkId Link = InvalidSymbol;
  /// Detach/Attach: the parent node.
  NodeRef Parent;
  /// Load/Unload: the node's kid list.
  std::vector<KidRef> Kids;
  /// Load/Unload: the node's literal list. Update: the *new* literals.
  std::vector<LitRef> Lits;
  /// Update only: the old literals.
  std::vector<LitRef> OldLits;

  static Edit detach(NodeRef Node, LinkId Link, NodeRef Parent);
  static Edit attach(NodeRef Node, LinkId Link, NodeRef Parent);
  static Edit load(NodeRef Node, std::vector<KidRef> Kids,
                   std::vector<LitRef> Lits);
  static Edit unload(NodeRef Node, std::vector<KidRef> Kids,
                     std::vector<LitRef> Lits);
  static Edit update(NodeRef Node, std::vector<LitRef> Old,
                     std::vector<LitRef> Now);

  /// True for Detach and Unload, the "negative" edits truediff emits
  /// before all positive ones (Section 4.4).
  bool isNegative() const {
    return Kind == EditKind::Detach || Kind == EditKind::Unload;
  }

  /// Renders the edit in the paper's notation, e.g.
  /// "detach(Sub_2, \"e1\", Add_1)".
  std::string toString(const SignatureTable &Sig) const;

  /// Appends the URIs of nodes this edit mutates *in place* when applied:
  /// the parent whose slot a Detach/Attach rewires, the node an Update
  /// re-literals, the node a Load creates. Unload contributes nothing (the
  /// node ceases to exist). These are the nodes whose cached derived data
  /// (Step-1 digests) a digest cache must invalidate -- together with
  /// their ancestors, which the script does not name.
  void appendTouchedUris(std::vector<URI> &Out) const;
};

/// A sequence of edits.
class EditScript {
public:
  EditScript() = default;
  explicit EditScript(std::vector<Edit> Edits) : Edits(std::move(Edits)) {}

  const std::vector<Edit> &edits() const { return Edits; }
  size_t size() const { return Edits.size(); }
  bool empty() const { return Edits.empty(); }
  const Edit &operator[](size_t I) const { return Edits[I]; }

  void append(Edit E) { Edits.push_back(std::move(E)); }

  /// The paper's conciseness metric: a Load directly followed by an Attach
  /// of the same node counts as one edit, and likewise a Detach directly
  /// followed by an Unload of the same node (Section 6, "Conciseness").
  size_t coalescedSize() const;

  /// One edit per line, in the paper's notation.
  std::string toString(const SignatureTable &Sig) const;

  /// The deduplicated set of URIs the script's edits mutate in place (see
  /// Edit::appendTouchedUris), in first-touched order. This is the
  /// script's invalidation set for digest caches keyed by URI.
  std::vector<URI> touchedUris() const;

private:
  std::vector<Edit> Edits;
};

} // namespace truediff

#endif // TRUEDIFF_TRUECHANGE_EDIT_H

//===- truechange/InitScript.cpp - Initializing edit scripts ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truechange/InitScript.h"

using namespace truediff;

namespace {

void loadRec(const SignatureTable &Sig, const Tree *T,
             std::vector<Edit> &Edits) {
  const TagSignature &TagSig = Sig.signature(T->tag());
  std::vector<KidRef> Kids;
  Kids.reserve(T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I) {
    loadRec(Sig, T->kid(I), Edits);
    Kids.push_back(KidRef{TagSig.Kids[I].Link, T->kid(I)->uri()});
  }
  std::vector<LitRef> Lits;
  Lits.reserve(T->numLits());
  for (size_t I = 0, E = T->numLits(); I != E; ++I)
    Lits.push_back(LitRef{TagSig.Lits[I].Link, T->lit(I)});
  Edits.push_back(Edit::load(NodeRef{T->tag(), T->uri()}, std::move(Kids),
                             std::move(Lits)));
}

} // namespace

EditScript truediff::buildInitializingScript(const SignatureTable &Sig,
                                             const Tree *T) {
  std::vector<Edit> Edits;
  loadRec(Sig, T, Edits);
  Edits.push_back(Edit::attach(NodeRef{T->tag(), T->uri()}, Sig.rootLink(),
                               NodeRef{Sig.rootTag(), NullURI}));
  return EditScript(std::move(Edits));
}

//===- truechange/TypeChecker.cpp - Linear type system of truechange -------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truechange/TypeChecker.h"

using namespace truediff;

LinearState LinearState::closed(const SignatureTable &Sig) {
  LinearState S;
  S.Roots.emplace(NullURI, Sig.rootSort());
  return S;
}

LinearState LinearState::empty(const SignatureTable &Sig) {
  LinearState S;
  S.Roots.emplace(NullURI, Sig.rootSort());
  S.Slots.emplace(SlotKey{NullURI, Sig.rootLink()}, Sig.anySort());
  return S;
}

namespace {

/// Checks that the kid list of a Load/Unload provides exactly the links of
/// the signature, in any order, and returns the kid URI per signature slot.
/// On error returns a message.
std::string matchKids(const SignatureTable &Sig, const TagSignature &TagSig,
                      const std::vector<KidRef> &Kids,
                      std::vector<URI> &UrisBySlot) {
  if (Kids.size() != TagSig.Kids.size())
    return "kid list does not match signature arity";
  UrisBySlot.assign(TagSig.Kids.size(), NullURI);
  std::vector<bool> Filled(TagSig.Kids.size(), false);
  for (const KidRef &Kid : Kids) {
    int Index = TagSig.kidIndex(Kid.Link);
    if (Index < 0)
      return "kid link \"" + Sig.name(Kid.Link) + "\" not in signature";
    if (Filled[Index])
      return "kid link \"" + Sig.name(Kid.Link) + "\" provided twice";
    Filled[Index] = true;
    UrisBySlot[Index] = Kid.Uri;
  }
  return "";
}

/// Checks that the literal list provides exactly the links of the
/// signature with well-kinded values.
std::string matchLits(const SignatureTable &Sig, const TagSignature &TagSig,
                      const std::vector<LitRef> &Lits) {
  if (Lits.size() != TagSig.Lits.size())
    return "literal list does not match signature arity";
  std::vector<bool> Filled(TagSig.Lits.size(), false);
  for (const LitRef &Lit : Lits) {
    int Index = TagSig.litIndex(Lit.Link);
    if (Index < 0)
      return "literal link \"" + Sig.name(Lit.Link) + "\" not in signature";
    if (Filled[Index])
      return "literal link \"" + Sig.name(Lit.Link) + "\" provided twice";
    Filled[Index] = true;
    if (Lit.Value.kind() != TagSig.Lits[Index].Kind)
      return "literal \"" + Sig.name(Lit.Link) + "\" has kind " +
             litKindName(Lit.Value.kind()) + ", signature requires " +
             litKindName(TagSig.Lits[Index].Kind);
  }
  return "";
}

} // namespace

TypeCheckResult LinearTypeChecker::checkEdit(const Edit &E, LinearState &State,
                                             size_t Index) const {
  auto Fail = [&](std::string Message) {
    return TypeCheckResult::failure(
        Index, E.toString(Sig) + ": " + std::move(Message));
  };

  if (!Sig.hasTag(E.Node.Tag))
    return Fail("unknown tag");

  switch (E.Kind) {
  case EditKind::Detach: {
    // T-Detach
    if (State.Roots.count(E.Node.Uri))
      return Fail("node is already an unattached root");
    if (!Sig.hasTag(E.Parent.Tag))
      return Fail("unknown parent tag");
    const TagSignature &ParentSig = Sig.signature(E.Parent.Tag);
    int SlotIndex = ParentSig.kidIndex(E.Link);
    if (SlotIndex < 0)
      return Fail("parent has no link \"" + Sig.name(E.Link) + "\"");
    LinearState::SlotKey Key{E.Parent.Uri, E.Link};
    if (State.Slots.count(Key))
      return Fail("slot is already empty");
    State.Roots.emplace(E.Node.Uri, Sig.signature(E.Node.Tag).Result);
    State.Slots.emplace(Key, ParentSig.Kids[SlotIndex].Sort);
    return TypeCheckResult::success();
  }

  case EditKind::Attach: {
    // T-Attach
    auto RootIt = State.Roots.find(E.Node.Uri);
    if (RootIt == State.Roots.end())
      return Fail("node is not an unattached root");
    LinearState::SlotKey Key{E.Parent.Uri, E.Link};
    auto SlotIt = State.Slots.find(Key);
    if (SlotIt == State.Slots.end())
      return Fail("target slot is not empty");
    if (!Sig.isSubsort(RootIt->second, SlotIt->second))
      return Fail("root sort " + Sig.name(RootIt->second) +
                  " is not a subsort of slot sort " +
                  Sig.name(SlotIt->second));
    State.Roots.erase(RootIt);
    State.Slots.erase(SlotIt);
    return TypeCheckResult::success();
  }

  case EditKind::Load: {
    // T-Load
    if (State.Roots.count(E.Node.Uri))
      return Fail("loaded node URI collides with an unattached root");
    const TagSignature &TagSig = Sig.signature(E.Node.Tag);
    std::vector<URI> KidUris;
    if (std::string Err = matchKids(Sig, TagSig, E.Kids, KidUris);
        !Err.empty())
      return Fail(std::move(Err));
    if (std::string Err = matchLits(Sig, TagSig, E.Lits); !Err.empty())
      return Fail(std::move(Err));
    // Consume all kid roots; Ti <: Ui per slot. Consume as we go but check
    // duplicates first so errors do not corrupt the state.
    for (size_t I = 0, End = KidUris.size(); I != End; ++I) {
      for (size_t J = I + 1; J != End; ++J)
        if (KidUris[I] == KidUris[J])
          return Fail("kid URI " + std::to_string(KidUris[I]) +
                      " used twice; subtrees are linear resources");
    }
    for (size_t I = 0, End = KidUris.size(); I != End; ++I) {
      auto It = State.Roots.find(KidUris[I]);
      if (It == State.Roots.end())
        return Fail("kid " + std::to_string(KidUris[I]) +
                    " is not an unattached root");
      if (!Sig.isSubsort(It->second, TagSig.Kids[I].Sort))
        return Fail("kid sort " + Sig.name(It->second) +
                    " is not a subsort of " + Sig.name(TagSig.Kids[I].Sort));
    }
    for (URI Kid : KidUris)
      State.Roots.erase(Kid);
    State.Roots.emplace(E.Node.Uri, TagSig.Result);
    return TypeCheckResult::success();
  }

  case EditKind::Unload: {
    // T-Unload
    auto RootIt = State.Roots.find(E.Node.Uri);
    if (RootIt == State.Roots.end())
      return Fail("node is not an unattached root");
    const TagSignature &TagSig = Sig.signature(E.Node.Tag);
    if (!Sig.isSubsort(RootIt->second, TagSig.Result) &&
        !Sig.isSubsort(TagSig.Result, RootIt->second))
      return Fail("root sort disagrees with tag signature");
    std::vector<URI> KidUris;
    if (std::string Err = matchKids(Sig, TagSig, E.Kids, KidUris);
        !Err.empty())
      return Fail(std::move(Err));
    if (std::string Err = matchLits(Sig, TagSig, E.Lits); !Err.empty())
      return Fail(std::move(Err));
    // {k1, ..., km} disjoint from dom(R).
    for (URI Kid : KidUris)
      if (State.Roots.count(Kid))
        return Fail("kid " + std::to_string(Kid) +
                    " is already an unattached root");
    for (size_t I = 0, End = KidUris.size(); I != End; ++I) {
      for (size_t J = I + 1; J != End; ++J)
        if (KidUris[I] == KidUris[J])
          return Fail("kid URI " + std::to_string(KidUris[I]) +
                      " listed twice");
    }
    State.Roots.erase(RootIt);
    for (size_t I = 0, End = KidUris.size(); I != End; ++I)
      State.Roots.emplace(KidUris[I], TagSig.Kids[I].Sort);
    return TypeCheckResult::success();
  }

  case EditKind::Update: {
    // T-Update
    const TagSignature &TagSig = Sig.signature(E.Node.Tag);
    if (std::string Err = matchLits(Sig, TagSig, E.Lits); !Err.empty())
      return Fail("new literals: " + Err);
    if (std::string Err = matchLits(Sig, TagSig, E.OldLits); !Err.empty())
      return Fail("old literals: " + Err);
    return TypeCheckResult::success();
  }
  }
  return Fail("unknown edit kind");
}

TypeCheckResult LinearTypeChecker::checkScript(const EditScript &Script,
                                               LinearState &State) const {
  for (size_t I = 0, E = Script.size(); I != E; ++I) {
    TypeCheckResult R = checkEdit(Script[I], State, I);
    if (!R.Ok)
      return R;
  }
  return TypeCheckResult::success();
}

TypeCheckResult
LinearTypeChecker::checkWellTyped(const EditScript &Script) const {
  LinearState State = LinearState::closed(Sig);
  TypeCheckResult R = checkScript(Script, State);
  if (!R.Ok)
    return R;
  if (!(State == LinearState::closed(Sig))) {
    std::string Message = "script leaks resources:";
    for (const auto &[Uri, Sort] : State.Roots)
      if (Uri != NullURI)
        Message += " root " + std::to_string(Uri);
    for (const auto &[Key, Sort] : State.Slots)
      Message += " slot " + std::to_string(Key.Parent) + "." +
                 Sig.name(Key.Link);
    return TypeCheckResult::failure(Script.size(), std::move(Message));
  }
  return TypeCheckResult::success();
}

TypeCheckResult
LinearTypeChecker::checkInitializing(const EditScript &Script) const {
  LinearState State = LinearState::empty(Sig);
  TypeCheckResult R = checkScript(Script, State);
  if (!R.Ok)
    return R;
  if (!(State == LinearState::closed(Sig)))
    return TypeCheckResult::failure(Script.size(),
                                    "initializing script leaks resources");
  return TypeCheckResult::success();
}

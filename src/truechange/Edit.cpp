//===- truechange/Edit.cpp - The truechange edit script language -----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truechange/Edit.h"

#include <unordered_set>

using namespace truediff;

const char *truediff::editKindName(EditKind Kind) {
  switch (Kind) {
  case EditKind::Detach:
    return "detach";
  case EditKind::Attach:
    return "attach";
  case EditKind::Load:
    return "load";
  case EditKind::Unload:
    return "unload";
  case EditKind::Update:
    return "update";
  }
  return "<unknown>";
}

Edit Edit::detach(NodeRef Node, LinkId Link, NodeRef Parent) {
  Edit E;
  E.Kind = EditKind::Detach;
  E.Node = Node;
  E.Link = Link;
  E.Parent = Parent;
  return E;
}

Edit Edit::attach(NodeRef Node, LinkId Link, NodeRef Parent) {
  Edit E;
  E.Kind = EditKind::Attach;
  E.Node = Node;
  E.Link = Link;
  E.Parent = Parent;
  return E;
}

Edit Edit::load(NodeRef Node, std::vector<KidRef> Kids,
                std::vector<LitRef> Lits) {
  Edit E;
  E.Kind = EditKind::Load;
  E.Node = Node;
  E.Kids = std::move(Kids);
  E.Lits = std::move(Lits);
  return E;
}

Edit Edit::unload(NodeRef Node, std::vector<KidRef> Kids,
                  std::vector<LitRef> Lits) {
  Edit E;
  E.Kind = EditKind::Unload;
  E.Node = Node;
  E.Kids = std::move(Kids);
  E.Lits = std::move(Lits);
  return E;
}

Edit Edit::update(NodeRef Node, std::vector<LitRef> Old,
                  std::vector<LitRef> Now) {
  Edit E;
  E.Kind = EditKind::Update;
  E.Node = Node;
  E.OldLits = std::move(Old);
  E.Lits = std::move(Now);
  return E;
}

static std::string nodeToString(const SignatureTable &Sig,
                                const NodeRef &Node) {
  return Sig.name(Node.Tag) + "_" + std::to_string(Node.Uri);
}

static std::string kidsToString(const SignatureTable &Sig,
                                const std::vector<KidRef> &Kids) {
  std::string Out = "[";
  for (size_t I = 0, E = Kids.size(); I != E; ++I) {
    if (I != 0)
      Out += ", ";
    Out += "\"" + Sig.name(Kids[I].Link) + "\"->" +
           std::to_string(Kids[I].Uri);
  }
  return Out + "]";
}

static std::string litsToString(const SignatureTable &Sig,
                                const std::vector<LitRef> &Lits) {
  std::string Out = "[";
  for (size_t I = 0, E = Lits.size(); I != E; ++I) {
    if (I != 0)
      Out += ", ";
    Out += "\"" + Sig.name(Lits[I].Link) + "\"->" + Lits[I].Value.toString();
  }
  return Out + "]";
}

std::string Edit::toString(const SignatureTable &Sig) const {
  std::string Out = editKindName(Kind);
  Out += "(";
  Out += nodeToString(Sig, Node);
  switch (Kind) {
  case EditKind::Detach:
  case EditKind::Attach:
    Out += ", \"" + Sig.name(Link) + "\", " + nodeToString(Sig, Parent);
    break;
  case EditKind::Load:
  case EditKind::Unload:
    Out += ", " + kidsToString(Sig, Kids) + ", " + litsToString(Sig, Lits);
    break;
  case EditKind::Update:
    Out += ", " + litsToString(Sig, OldLits) + ", " + litsToString(Sig, Lits);
    break;
  }
  Out += ")";
  return Out;
}

void Edit::appendTouchedUris(std::vector<URI> &Out) const {
  switch (Kind) {
  case EditKind::Detach:
  case EditKind::Attach:
    Out.push_back(Parent.Uri);
    break;
  case EditKind::Load:
  case EditKind::Update:
    Out.push_back(Node.Uri);
    break;
  case EditKind::Unload:
    break;
  }
}

std::vector<URI> EditScript::touchedUris() const {
  std::vector<URI> Raw;
  Raw.reserve(Edits.size());
  for (const Edit &E : Edits)
    E.appendTouchedUris(Raw);
  std::vector<URI> Out;
  Out.reserve(Raw.size());
  std::unordered_set<URI> Seen;
  for (URI U : Raw)
    if (Seen.insert(U).second)
      Out.push_back(U);
  return Out;
}

size_t EditScript::coalescedSize() const {
  size_t Count = 0;
  for (size_t I = 0, E = Edits.size(); I != E; ++I) {
    if (I + 1 != E) {
      const Edit &Cur = Edits[I];
      const Edit &Next = Edits[I + 1];
      bool InsertPair = Cur.Kind == EditKind::Load &&
                        Next.Kind == EditKind::Attach &&
                        Cur.Node.Uri == Next.Node.Uri;
      bool DeletePair = Cur.Kind == EditKind::Detach &&
                        Next.Kind == EditKind::Unload &&
                        Cur.Node.Uri == Next.Node.Uri;
      if (InsertPair || DeletePair) {
        ++Count;
        ++I; // consume the pair
        continue;
      }
    }
    ++Count;
  }
  return Count;
}

std::string EditScript::toString(const SignatureTable &Sig) const {
  std::string Out;
  for (const Edit &E : Edits) {
    Out += E.toString(Sig);
    Out += "\n";
  }
  return Out;
}

//===- lcsdiff/LcsDiff.cpp - Type-safe diffing without moves ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lcsdiff/LcsDiff.h"

#include <cassert>

using namespace truediff;
using namespace truediff::lcsdiff;

size_t LcsScript::numChanges() const {
  size_t Count = 0;
  for (const Op &O : Ops)
    Count += O.Kind != OpKind::Cpy;
  return Count;
}

std::string LcsScript::toString(const SignatureTable &Sig) const {
  std::string Out;
  for (const Op &O : Ops) {
    switch (O.Kind) {
    case OpKind::Cpy:
      Out += "Cpy";
      break;
    case OpKind::Ins:
      Out += "Ins(" + Sig.name(O.Tok.Tag) + ")";
      break;
    case OpKind::Del:
      Out += "Del(" + Sig.name(O.Tok.Tag) + ")";
      break;
    }
    Out += " ";
  }
  if (!Out.empty())
    Out.pop_back();
  return Out;
}

static void collectPreOrder(const Tree *T, std::vector<Token> &Out) {
  Out.push_back(Token{T->tag(), T->lits()});
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    collectPreOrder(T->kid(I), Out);
}

std::vector<Token> truediff::lcsdiff::preOrderTokens(const Tree *T) {
  std::vector<Token> Out;
  Out.reserve(T->size());
  collectPreOrder(T, Out);
  return Out;
}

LcsScript truediff::lcsdiff::lcsDiff(const Tree *Src, const Tree *Dst,
                                     const LcsOptions &Opts) {
  std::vector<Token> A = preOrderTokens(Src);
  std::vector<Token> B = preOrderTokens(Dst);

  // Trim the common prefix and suffix; real edits are local, so this
  // keeps the quadratic LCS core small.
  size_t Prefix = 0;
  while (Prefix < A.size() && Prefix < B.size() && A[Prefix] == B[Prefix])
    ++Prefix;
  size_t Suffix = 0;
  while (Suffix < A.size() - Prefix && Suffix < B.size() - Prefix &&
         A[A.size() - 1 - Suffix] == B[B.size() - 1 - Suffix])
    ++Suffix;

  size_t N = A.size() - Prefix - Suffix;
  size_t M = B.size() - Prefix - Suffix;

  LcsScript Script;
  Script.Ops.reserve(A.size() + B.size() - Prefix - Suffix);
  for (size_t I = 0; I != Prefix; ++I)
    Script.Ops.push_back(Op{OpKind::Cpy, Token()});

  if (static_cast<uint64_t>(N) * static_cast<uint64_t>(M) >
      Opts.MaxDpProduct) {
    // Fallback: replace the middle wholesale.
    for (size_t I = 0; I != N; ++I)
      Script.Ops.push_back(Op{OpKind::Del, A[Prefix + I]});
    for (size_t J = 0; J != M; ++J)
      Script.Ops.push_back(Op{OpKind::Ins, B[Prefix + J]});
  } else if (N != 0 || M != 0) {
    // Exact LCS over the middle via dynamic programming.
    std::vector<uint32_t> Dp((N + 1) * (M + 1), 0);
    auto At = [&](size_t I, size_t J) -> uint32_t & {
      return Dp[I * (M + 1) + J];
    };
    for (size_t I = N; I-- > 0;)
      for (size_t J = M; J-- > 0;) {
        if (A[Prefix + I] == B[Prefix + J])
          At(I, J) = At(I + 1, J + 1) + 1;
        else
          At(I, J) = std::max(At(I + 1, J), At(I, J + 1));
      }
    size_t I = 0, J = 0;
    while (I < N && J < M) {
      if (A[Prefix + I] == B[Prefix + J]) {
        Script.Ops.push_back(Op{OpKind::Cpy, Token()});
        ++I;
        ++J;
      } else if (At(I + 1, J) >= At(I, J + 1)) {
        Script.Ops.push_back(Op{OpKind::Del, A[Prefix + I]});
        ++I;
      } else {
        Script.Ops.push_back(Op{OpKind::Ins, B[Prefix + J]});
        ++J;
      }
    }
    for (; I < N; ++I)
      Script.Ops.push_back(Op{OpKind::Del, A[Prefix + I]});
    for (; J < M; ++J)
      Script.Ops.push_back(Op{OpKind::Ins, B[Prefix + J]});
  }

  for (size_t I = 0; I != Suffix; ++I)
    Script.Ops.push_back(Op{OpKind::Cpy, Token()});
  return Script;
}

namespace {

/// Rebuilds a typed tree from a pre-order token sequence; arities come
/// from the signature.
Tree *buildFromTokens(TreeContext &Ctx, const std::vector<Token> &Tokens,
                      size_t &Pos) {
  if (Pos >= Tokens.size())
    return nullptr;
  const Token &Tok = Tokens[Pos++];
  if (!Ctx.signatures().hasTag(Tok.Tag))
    return nullptr;
  const TagSignature &TagSig = Ctx.signatures().signature(Tok.Tag);
  if (Tok.Lits.size() != TagSig.Lits.size())
    return nullptr;
  std::vector<Tree *> Kids;
  Kids.reserve(TagSig.Kids.size());
  for (size_t I = 0, E = TagSig.Kids.size(); I != E; ++I) {
    Tree *Kid = buildFromTokens(Ctx, Tokens, Pos);
    if (Kid == nullptr)
      return nullptr;
    SortId KidSort = Ctx.signatures().signature(Kid->tag()).Result;
    if (!Ctx.signatures().isSubsort(KidSort, TagSig.Kids[I].Sort))
      return nullptr;
    Kids.push_back(Kid);
  }
  return Ctx.make(Tok.Tag, std::move(Kids), Tok.Lits);
}

} // namespace

Tree *truediff::lcsdiff::applyLcs(TreeContext &Ctx, const Tree *Src,
                                  const LcsScript &Script) {
  std::vector<Token> Input = preOrderTokens(Src);
  std::vector<Token> Output;
  size_t In = 0;
  for (const Op &O : Script.Ops) {
    switch (O.Kind) {
    case OpKind::Cpy:
      if (In >= Input.size())
        return nullptr;
      Output.push_back(Input[In++]);
      break;
    case OpKind::Del:
      if (In >= Input.size() || !(Input[In] == O.Tok))
        return nullptr;
      ++In;
      break;
    case OpKind::Ins:
      Output.push_back(O.Tok);
      break;
    }
  }
  if (In != Input.size())
    return nullptr;
  size_t Pos = 0;
  Tree *Result = buildFromTokens(Ctx, Output, Pos);
  if (Result == nullptr || Pos != Output.size())
    return nullptr;
  return Result;
}

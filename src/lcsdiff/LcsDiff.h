//===- lcsdiff/LcsDiff.h - Type-safe diffing without moves ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A type-safe edit script in the style of Lempsink et al. (WGP 2009) and
/// Vassena (TyDe 2016), discussed in the paper's Sections 1 and 7: the
/// script is a list of Cpy/Ins/Del operations interpreted against a
/// pre-order traversal of the tree. Because the script cannot express
/// moves, a moved subtree is deleted and re-inserted from scratch, and the
/// script mentions every unchanged node through Cpy -- the paper's example
/// for "type-safe but not concise".
///
/// The script is computed as a longest common subsequence of the pre-order
/// token sequences (common prefix/suffix are trimmed first; very large
/// middles fall back to full replacement, see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_LCSDIFF_LCSDIFF_H
#define TRUEDIFF_LCSDIFF_LCSDIFF_H

#include "tree/Tree.h"

#include <string>
#include <vector>

namespace truediff {
namespace lcsdiff {

/// One node of the pre-order serialization: the constructor and its
/// literals. Arity is implied by the signature.
struct Token {
  TagId Tag = InvalidSymbol;
  std::vector<Literal> Lits;

  bool operator==(const Token &O) const {
    return Tag == O.Tag && Lits == O.Lits;
  }
};

enum class OpKind : uint8_t { Cpy, Ins, Del };

struct Op {
  OpKind Kind;
  Token Tok;
};

/// A Cpy/Ins/Del edit script over pre-order traversals.
struct LcsScript {
  std::vector<Op> Ops;

  /// Total script length; this is the Lempsink et al. patch size the
  /// paper criticises (proportional to the traversal, Cpy included).
  size_t size() const { return Ops.size(); }

  /// Only the changes (Ins + Del).
  size_t numChanges() const;

  std::string toString(const SignatureTable &Sig) const;
};

/// Pre-order serialization of a tree.
std::vector<Token> preOrderTokens(const Tree *T);

/// Options controlling the LCS fallback for very large diffs.
struct LcsOptions {
  /// Maximum product of middle lengths for the exact LCS; larger inputs
  /// replace the middle wholesale (Del* then Ins*).
  uint64_t MaxDpProduct = 6250000; // 2500 x 2500
};

/// Computes a Cpy/Ins/Del script turning \p Src into \p Dst.
LcsScript lcsDiff(const Tree *Src, const Tree *Dst,
                  const LcsOptions &Opts = LcsOptions());

/// Applies a script to \p Src: replays the operations against the
/// pre-order serialization and rebuilds the typed result tree in \p Ctx.
/// Returns nullptr if the script does not fit the tree (wrong Cpy/Del
/// tokens, leftover input, or an ill-formed output sequence).
Tree *applyLcs(TreeContext &Ctx, const Tree *Src, const LcsScript &Script);

} // namespace lcsdiff
} // namespace truediff

#endif // TRUEDIFF_LCSDIFF_LCSDIFF_H

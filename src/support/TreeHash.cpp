//===- support/TreeHash.cpp - Pluggable subtree digest policies ------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TreeHash.h"

#include <cstdlib>
#include <random>

using namespace truediff;

const char *truediff::digestPolicyName(DigestPolicy Policy) {
  switch (Policy) {
  case DigestPolicy::Sha256:
    return "sha256";
  case DigestPolicy::Fast128:
    return "fast";
  }
  return "<unknown>";
}

std::optional<DigestPolicy> truediff::parseDigestPolicy(std::string_view Name) {
  if (Name == "sha256" || Name == "sha")
    return DigestPolicy::Sha256;
  if (Name == "fast" || Name == "fast128")
    return DigestPolicy::Fast128;
  return std::nullopt;
}

static uint64_t drawProcessSeed() {
  if (const char *Env = std::getenv("TRUEDIFF_DIGEST_SEED")) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(Env, &End, 0);
    if (End != Env && *End == '\0')
      return static_cast<uint64_t>(V);
  }
  std::random_device Rd;
  uint64_t Hi = Rd();
  uint64_t Lo = Rd();
  // random_device may be 32-bit; combine two draws and stir so a weak
  // implementation still yields a full-width seed.
  return fast128_detail::splitmix64((Hi << 32) ^ Lo);
}

uint64_t truediff::processDigestSeed() {
  static const uint64_t Seed = drawProcessSeed();
  return Seed;
}

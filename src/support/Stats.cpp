//===- support/Stats.cpp - Box-plot summary statistics ---------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cstdio>

using namespace truediff;

namespace {

/// Linear-interpolation percentile of a sorted vector, matching numpy's
/// default method so plots can be cross-checked.
double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}

} // namespace

BoxStats BoxStats::of(std::vector<double> Values) {
  BoxStats S;
  if (Values.empty())
    return S;
  std::sort(Values.begin(), Values.end());
  S.Count = Values.size();
  S.Min = Values.front();
  S.Max = Values.back();
  S.Q1 = percentile(Values, 0.25);
  S.Median = percentile(Values, 0.5);
  S.Q3 = percentile(Values, 0.75);
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Values.size());
  return S;
}

std::string BoxStats::toString() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "min=%.3f q1=%.3f median=%.3f q3=%.3f max=%.3f mean=%.3f "
                "n=%zu",
                Min, Q1, Median, Q3, Max, Mean, Count);
  return Buf;
}

std::string truediff::formatBoxRow(const std::string &Label,
                                   const BoxStats &Stats) {
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf),
                "%-28s %10.3f %10.3f %10.3f %10.3f %12.3f %10.3f %8zu",
                Label.c_str(), Stats.Min, Stats.Q1, Stats.Median, Stats.Q3,
                Stats.Max, Stats.Mean, Stats.Count);
  return Buf;
}

//===- support/WorkerPool.h - Small blocking worker pool --------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool for fork-join parallelism, used to
/// parallelize Step-1 subtree hashing (Tree::refreshDerivedParallel). The
/// pool is deliberately minimal: run() takes a batch of independent tasks,
/// the calling thread works alongside the workers, and run() returns only
/// when every task has finished -- no futures, no work stealing, no
/// cross-batch state.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_WORKERPOOL_H
#define TRUEDIFF_SUPPORT_WORKERPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace truediff {

/// Fork-join pool with \p Threads-1 background workers (the caller of
/// run() is the remaining worker). A pool with Threads <= 1 spawns no
/// threads and run() executes tasks inline, so callers need no special
/// single-core path.
class WorkerPool {
public:
  explicit WorkerPool(unsigned Threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Total workers including the caller of run().
  unsigned numWorkers() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs every task in \p Tasks and returns when all have completed.
  /// Tasks must be independent; exceptions escaping a task terminate the
  /// process (tasks hash trees -- they have no recoverable failures).
  void run(std::vector<std::function<void()>> Tasks);

private:
  void workerLoop();
  bool popAndRun();

  std::vector<std::thread> Workers;
  std::mutex Mu;
  std::condition_variable WorkReady;
  std::condition_variable BatchDone;
  std::vector<std::function<void()>> Pending;
  size_t Running = 0;
  bool ShuttingDown = false;
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_WORKERPOOL_H

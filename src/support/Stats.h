//===- support/Stats.h - Box-plot summary statistics ------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics for the benchmark harness. Figures 4 and 5 of the
/// paper are box plots; our benches print the five-number summary plus the
/// mean for each series so the figures can be regenerated.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_STATS_H
#define TRUEDIFF_SUPPORT_STATS_H

#include <string>
#include <vector>

namespace truediff {

/// Five-number summary (min, q1, median, q3, max) plus mean and count.
struct BoxStats {
  double Min = 0;
  double Q1 = 0;
  double Median = 0;
  double Q3 = 0;
  double Max = 0;
  double Mean = 0;
  size_t Count = 0;

  /// Computes summary statistics of \p Values (copied and sorted inside).
  /// An empty input yields an all-zero summary.
  static BoxStats of(std::vector<double> Values);

  /// Renders "min=.. q1=.. median=.. q3=.. max=.. mean=.. n=..".
  std::string toString() const;
};

/// Prints one aligned table row: the label followed by the box stats.
/// All bench binaries share this so outputs line up.
std::string formatBoxRow(const std::string &Label, const BoxStats &Stats);

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_STATS_H

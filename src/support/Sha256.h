//===- support/Sha256.h - SHA-256 message digest ----------------*- C++-*-===//
//
// Part of truediff-cpp, a reproduction of "Concise, Type-Safe, and Efficient
// Structural Diffing" (PLDI 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch implementation of the SHA-256 cryptographic hash
/// (FIPS 180-4). truediff decides subtree equivalence purely through digest
/// equality (paper Section 4.1), so the hash must be collision resistant.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_SHA256_H
#define TRUEDIFF_SUPPORT_SHA256_H

#include "support/Digest.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace truediff {

/// Incremental SHA-256 hasher.
///
/// Usage mirrors `MessageDigest` from the paper's Scala implementation:
/// feed byte ranges with update() and obtain the 32-byte digest with
/// finish(). A hasher must not be updated after finish().
class Sha256 {
public:
  Sha256() { reset(); }

  /// Resets the hasher to the initial state so it can be reused.
  void reset();

  /// Absorbs \p Size bytes starting at \p Data.
  void update(const void *Data, size_t Size);

  /// Absorbs the bytes of \p Str.
  void update(std::string_view Str) { update(Str.data(), Str.size()); }

  /// Absorbs a little-endian encoding of \p Value.
  void updateU64(uint64_t Value);

  /// Absorbs a little-endian encoding of \p Value.
  void updateU32(uint32_t Value);

  /// Absorbs a previously computed digest.
  void update(const Digest &D) { update(D.bytes().data(), Digest::NumBytes); }

  /// Pads, finalizes, and returns the 32-byte digest.
  Digest finish();

  /// Convenience helper: hash of one contiguous byte range.
  static Digest hash(const void *Data, size_t Size);

  /// Convenience helper: hash of a string.
  static Digest hash(std::string_view Str) {
    return hash(Str.data(), Str.size());
  }

private:
  void compressBlock(const uint8_t *Block);

  uint32_t State[8];
  uint8_t Buffer[64];
  size_t BufferLen = 0;
  uint64_t TotalBytes = 0;
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_SHA256_H

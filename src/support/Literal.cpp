//===- support/Literal.cpp - Literal values in tree nodes ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Literal.h"

#include <charconv>
#include <cmath>

using namespace truediff;

const char *truediff::litKindName(LitKind Kind) {
  switch (Kind) {
  case LitKind::Int:
    return "Int";
  case LitKind::Float:
    return "Float";
  case LitKind::Bool:
    return "Bool";
  case LitKind::String:
    return "String";
  }
  return "<unknown>";
}

std::string Literal::toString() const {
  switch (kind()) {
  case LitKind::Int:
    return std::to_string(asInt());
  case LitKind::Float: {
    double V = asFloat();
    // Non-finite values get fixed spellings the parser knows; appending
    // ".0" to to_chars's "inf"/"nan" would render them unparseable.
    if (std::isinf(V))
      return V < 0 ? "-inf" : "inf";
    if (std::isnan(V))
      return std::signbit(V) ? "-nan" : "nan";
    char Buf[64];
    auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V,
                                   std::chars_format::general);
    (void)Ec;
    std::string S(Buf, End);
    // Keep float literals distinguishable from ints in dumps.
    if (S.find_first_of(".eE") == std::string::npos)
      S += ".0";
    return S;
  }
  case LitKind::Bool:
    return asBool() ? "true" : "false";
  case LitKind::String: {
    std::string Out = "\"";
    for (char C : asString()) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        Out.push_back(C);
      }
    }
    Out.push_back('"');
    return Out;
  }
  }
  return "<unknown>";
}

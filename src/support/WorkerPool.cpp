//===- support/WorkerPool.cpp - Small blocking worker pool -----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"

using namespace truediff;

WorkerPool::WorkerPool(unsigned Threads) {
  for (unsigned I = 1; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool WorkerPool::popAndRun() {
  std::function<void()> Task;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Pending.empty())
      return false;
    Task = std::move(Pending.back());
    Pending.pop_back();
    ++Running;
  }
  Task();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    --Running;
    if (Running == 0 && Pending.empty())
      BatchDone.notify_all();
  }
  return true;
}

void WorkerPool::workerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkReady.wait(Lock,
                     [this] { return ShuttingDown || !Pending.empty(); });
      if (ShuttingDown && Pending.empty())
        return;
    }
    while (popAndRun())
      ;
  }
}

void WorkerPool::run(std::vector<std::function<void()>> Tasks) {
  if (Tasks.empty())
    return;
  if (Workers.empty()) {
    for (auto &Task : Tasks)
      Task();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto &Task : Tasks)
      Pending.push_back(std::move(Task));
  }
  WorkReady.notify_all();
  // The caller works the batch too, then blocks until in-flight tasks
  // drain.
  while (popAndRun())
    ;
  std::unique_lock<std::mutex> Lock(Mu);
  BatchDone.wait(Lock, [this] { return Running == 0 && Pending.empty(); });
}

//===- support/TreeHash.h - Pluggable subtree digest policies ---*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The digest policy seam for Step-1 subtree hashing. truediff decides
/// subtree equivalence purely through digest equality (paper Section 4.1),
/// so the default policy stays SHA-256: replication followers recompute and
/// compare digests across process boundaries, where collision resistance
/// against adversarial inputs matters. For diff throughput, a context can
/// instead opt into Fast128, a seeded non-cryptographic 128-bit hash in the
/// wyhash/rapidhash family that is an order of magnitude cheaper per node.
///
/// Fast128 digests are seeded per process (see processDigestSeed), so they
/// are meaningless outside the producing process and must never be
/// persisted or shipped to replicas -- both already rebuild digests from
/// structure. See DESIGN.md section 13 for the trade-off discussion.
///
/// Fast128 is implemented inline: Step 1 constructs two hashers per node
/// over inputs that are usually a few dozen bytes, so call overhead and
/// the full-block code path would otherwise dominate the actual mixing.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_TREEHASH_H
#define TRUEDIFF_SUPPORT_TREEHASH_H

#include "support/Digest.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

namespace truediff {

/// Which hash computes the per-node structure and literal digests.
enum class DigestPolicy : uint8_t {
  /// Truncated SHA-256 (the seed's behaviour): collision resistant against
  /// adversarial inputs; required whenever digests are compared across
  /// processes (replication verification).
  Sha256,
  /// Seeded 128-bit mum-mix hash: not collision resistant against an
  /// adversary who knows the seed, but ~10x cheaper per node. Digests live
  /// in bytes [0,16) of the Digest value; bytes [16,32) are zero.
  Fast128,
};

/// "sha256" or "fast".
const char *digestPolicyName(DigestPolicy Policy);

/// Parses "sha256"/"sha" or "fast"/"fast128"; nullopt on anything else.
std::optional<DigestPolicy> parseDigestPolicy(std::string_view Name);

/// The per-process random seed mixed into Fast128 digests and DigestHash
/// table hashes. Drawn from std::random_device once per process;
/// overridable via the TRUEDIFF_DIGEST_SEED environment variable (decimal
/// or 0x-hex) so tests and benchmarks can pin it.
uint64_t processDigestSeed();

namespace fast128_detail {

/// Odd constants from the wyhash family; lanes are re-seeded per process
/// (see fast128SeededLanes) so digests are not attacker-predictable.
inline constexpr uint64_t Secret[4] = {
    0xA0761D6478BD642FULL,
    0xE7037ED1A0B428DBULL,
    0x8EBC6AF09C88C6E3ULL,
    0x589965CC75374CC3ULL,
};

inline uint64_t read64(const uint8_t *P) {
  uint64_t V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}

/// 64x64 -> 128 multiply folded to 64 bits (the wyhash "mum" primitive).
inline uint64_t mum(uint64_t A, uint64_t B) {
  unsigned __int128 R = static_cast<unsigned __int128>(A) * B;
  return static_cast<uint64_t>(R) ^ static_cast<uint64_t>(R >> 64);
}

inline uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

} // namespace fast128_detail

/// The per-process seeded initial lane values, computed once. Hasher
/// construction copies these instead of re-deriving them from the seed --
/// Step 1 resets two hashers per tree node.
inline const std::array<uint64_t, 4> &fast128SeededLanes() {
  static const std::array<uint64_t, 4> Lanes = [] {
    uint64_t Seed = processDigestSeed();
    std::array<uint64_t, 4> L;
    for (int I = 0; I != 4; ++I)
      L[I] = fast128_detail::splitmix64(Seed ^ fast128_detail::Secret[I]);
    return L;
  }();
  return Lanes;
}

/// Incremental seeded 128-bit hasher with the same update API as Sha256,
/// so Tree::computeDerived can be instantiated over either.
///
/// Construction: a wyhash-style folded-multiply compressor over 64-byte
/// blocks with four lanes, length-armoured in the finalizer; inputs that
/// never fill a block take a two-accumulator short path in finish().
/// Quality goal is "no accidental collisions among structured tree
/// encodings", not cryptographic strength.
class Fast128 {
public:
  Fast128() { reset(); }

  void reset() {
    const std::array<uint64_t, 4> &Seeded = fast128SeededLanes();
    Lane[0] = Seeded[0];
    Lane[1] = Seeded[1];
    Lane[2] = Seeded[2];
    Lane[3] = Seeded[3];
    BufferLen = 0;
    TotalBytes = 0;
  }

  void update(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    TotalBytes += Size;
    if (BufferLen != 0) {
      size_t Take = Size < sizeof(Buffer) - BufferLen
                        ? Size
                        : sizeof(Buffer) - BufferLen;
      std::memcpy(Buffer + BufferLen, P, Take);
      BufferLen += Take;
      P += Take;
      Size -= Take;
      if (BufferLen == sizeof(Buffer)) {
        compressBlock(Buffer);
        BufferLen = 0;
      }
    }
    while (Size >= sizeof(Buffer)) {
      compressBlock(P);
      P += sizeof(Buffer);
      Size -= sizeof(Buffer);
    }
    if (Size != 0) {
      std::memcpy(Buffer + BufferLen, P, Size);
      BufferLen += Size;
    }
  }

  void update(std::string_view Str) { update(Str.data(), Str.size()); }

  void updateU64(uint64_t Value) { update(&Value, sizeof(Value)); }

  void updateU32(uint32_t Value) { update(&Value, sizeof(Value)); }

  void update(const Digest &D) { update(D.bytes().data(), Digest::NumBytes); }

  /// Returns the 128-bit digest in bytes [0,16); bytes [16,32) are zero.
  Digest finish() {
    using fast128_detail::mum;
    using fast128_detail::read64;
    using fast128_detail::Secret;
    uint64_t L0, L1;
    if (TotalBytes < sizeof(Buffer)) {
      // Short input: every byte seen is still in Buffer. Fold 16-byte
      // chunks through two chained accumulators instead of running the
      // 4-lane block machinery over a mostly-zero padded block. Padding
      // only reaches the next chunk boundary; the total length folded
      // into the finalizer disambiguates padded tails.
      size_t Padded = (BufferLen + 15) & ~static_cast<size_t>(15);
      std::memset(Buffer + BufferLen, 0, Padded - BufferLen);
      L0 = Lane[0];
      L1 = Lane[1];
      for (size_t I = 0; I != Padded; I += 16) {
        uint64_t W0 = read64(Buffer + I);
        uint64_t W1 = read64(Buffer + I + 8);
        L0 = mum(L0 ^ W0, Secret[(I >> 4) & 3] ^ W1);
        L1 = mum(L1 ^ W1, Secret[(I >> 4) & 3] ^ L0);
      }
    } else {
      if (BufferLen != 0) {
        // Zero-pad the final partial block; length armouring as above.
        std::memset(Buffer + BufferLen, 0, sizeof(Buffer) - BufferLen);
        compressBlock(Buffer);
        BufferLen = 0;
      }
      L0 = Lane[0];
      L1 = Lane[1];
    }
    uint64_t H0 = mum(L0 ^ TotalBytes, Lane[2] ^ Secret[0]);
    uint64_t H1 = mum(L1 ^ Secret[1], Lane[3] ^ TotalBytes);
    H0 = mum(H0 ^ Secret[2], H1 ^ Secret[3]);
    H1 = fast128_detail::splitmix64(H0 ^ H1);

    std::array<uint8_t, Digest::NumBytes> Bytes{};
    std::memcpy(Bytes.data(), &H0, sizeof(H0));
    std::memcpy(Bytes.data() + sizeof(H0), &H1, sizeof(H1));
    return Digest(Bytes);
  }

  /// Convenience helper: hash of one contiguous byte range.
  static Digest hash(const void *Data, size_t Size) {
    Fast128 Hasher;
    Hasher.update(Data, Size);
    return Hasher.finish();
  }

private:
  void compressBlock(const uint8_t *Block) {
    using fast128_detail::mum;
    using fast128_detail::read64;
    using fast128_detail::Secret;
    for (int I = 0; I != 4; ++I)
      Lane[I] = mum(Lane[I] ^ read64(Block + 16 * I),
                    Secret[I] ^ read64(Block + 16 * I + 8));
  }

  uint64_t Lane[4];
  uint8_t Buffer[64];
  size_t BufferLen = 0;
  uint64_t TotalBytes = 0;
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_TREEHASH_H

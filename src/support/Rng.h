//===- support/Rng.h - Deterministic random number generator ----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64 seeded xoshiro-style
/// xorshift). Used by the corpus generators and property tests; the same
/// seed always reproduces the same workload on every platform.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_RNG_H
#define TRUEDIFF_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace truediff {

/// Deterministic 64-bit PRNG.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // splitmix64 expansion of the seed avoids pathological states.
    State = Seed + 0x9e3779b97f4a7c15ull;
    for (int I = 0; I != 4; ++I)
      (void)next();
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability \p Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

  /// Uniform double in [0, 1).
  double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

private:
  uint64_t State;
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_RNG_H

//===- support/Literal.h - Literal values in tree nodes ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Literal values stored at tree leaves (paper: "usually numbers and
/// strings"). Literals participate in the literal hash and in Update edits
/// but never in the structure hash.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_LITERAL_H
#define TRUEDIFF_SUPPORT_LITERAL_H

#include <cstdint>
#include <cstring>
#include <string>
#include <variant>

namespace truediff {

/// Base types of literals, mirroring the paper's base types B in tag
/// signatures.
enum class LitKind : uint8_t {
  Int,
  Float,
  Bool,
  String,
};

/// Returns a human-readable name for \p Kind ("Int", "Float", ...).
const char *litKindName(LitKind Kind);

/// A dynamically typed literal value with a LitKind discriminator.
class Literal {
public:
  Literal() : Value(int64_t(0)) {}
  explicit Literal(int64_t V) : Value(V) {}
  explicit Literal(double V) : Value(V) {}
  explicit Literal(bool V) : Value(V) {}
  explicit Literal(std::string V) : Value(std::move(V)) {}
  explicit Literal(const char *V) : Value(std::string(V)) {}

  LitKind kind() const {
    switch (Value.index()) {
    case 0:
      return LitKind::Int;
    case 1:
      return LitKind::Float;
    case 2:
      return LitKind::Bool;
    default:
      return LitKind::String;
    }
  }

  int64_t asInt() const { return std::get<int64_t>(Value); }
  double asFloat() const { return std::get<double>(Value); }
  bool asBool() const { return std::get<bool>(Value); }
  const std::string &asString() const { return std::get<std::string>(Value); }

  bool operator==(const Literal &O) const { return Value == O.Value; }
  bool operator!=(const Literal &O) const { return Value != O.Value; }

  /// Feeds a canonical encoding (kind byte + payload) into \p Hasher.
  /// Templated over the hasher so both digest policies (Sha256, Fast128)
  /// share one encoding; see TreeHash.h.
  template <typename HasherT> void addToHash(HasherT &Hasher) const {
    uint8_t KindByte = static_cast<uint8_t>(kind());
    Hasher.update(&KindByte, 1);
    switch (kind()) {
    case LitKind::Int:
      Hasher.updateU64(static_cast<uint64_t>(asInt()));
      break;
    case LitKind::Float: {
      double V = asFloat();
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(V));
      std::memcpy(&Bits, &V, sizeof(Bits));
      Hasher.updateU64(Bits);
      break;
    }
    case LitKind::Bool: {
      uint8_t B = asBool() ? 1 : 0;
      Hasher.update(&B, 1);
      break;
    }
    case LitKind::String:
      // Length prefix prevents ambiguity between adjacent strings.
      Hasher.updateU64(asString().size());
      Hasher.update(asString());
      break;
    }
  }

  /// Renders the literal the way it appears in s-expressions and edit
  /// script dumps; strings are quoted and escaped.
  std::string toString() const;

private:
  std::variant<int64_t, double, bool, std::string> Value;
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_LITERAL_H

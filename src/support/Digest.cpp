//===- support/Digest.cpp - 256-bit digest value type ----------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Digest.h"

#include "support/TreeHash.h"

using namespace truediff;

uint64_t truediff::digestTableSeed() { return processDigestSeed(); }

std::string Digest::toHex() const {
  static const char Hex[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(NumBytes * 2);
  for (uint8_t B : Bytes) {
    Out.push_back(Hex[B >> 4]);
    Out.push_back(Hex[B & 0xf]);
  }
  return Out;
}

//===- support/Interner.h - String interning --------------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense integer symbols. Node tags, link names, and
/// sort names are interned so that tag/link comparisons in the hot diffing
/// loop are integer comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_INTERNER_H
#define TRUEDIFF_SUPPORT_INTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace truediff {

/// A dense integer id handed out by an Interner. Symbol 0 is reserved as
/// the invalid symbol.
using Symbol = uint32_t;

constexpr Symbol InvalidSymbol = 0;

/// Bidirectional string <-> Symbol table.
///
/// Symbols are stable for the lifetime of the interner and start at 1.
class Interner {
public:
  Interner() {
    // Reserve symbol 0 so that value-initialized symbols are invalid.
    Names.push_back("<invalid>");
  }

  /// Returns the symbol for \p Name, interning it on first use.
  Symbol intern(std::string_view Name) {
    auto It = Table.find(Name);
    if (It != Table.end())
      return It->second;
    Symbol Sym = static_cast<Symbol>(Names.size());
    Names.emplace_back(Name);
    Table.emplace(Names.back(), Sym);
    return Sym;
  }

  /// Returns the symbol for \p Name or InvalidSymbol if never interned.
  Symbol lookup(std::string_view Name) const {
    auto It = Table.find(Name);
    return It == Table.end() ? InvalidSymbol : It->second;
  }

  /// Returns the string for \p Sym.
  const std::string &name(Symbol Sym) const {
    assert(Sym < Names.size() && "symbol out of range");
    return Names[Sym];
  }

  /// Number of interned symbols, including the reserved invalid symbol.
  size_t size() const { return Names.size(); }

private:
  struct ViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>()(S);
    }
  };
  struct ViewEq {
    using is_transparent = void;
    bool operator()(std::string_view A, std::string_view B) const {
      return A == B;
    }
  };

  std::vector<std::string> Names;
  std::unordered_map<std::string, Symbol, ViewHash, ViewEq> Table;
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_INTERNER_H

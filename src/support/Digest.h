//===- support/Digest.h - 256-bit digest value type -------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 32-byte digest value with cheap equality and hashing. truediff stores
/// two digests per tree node (structure hash and literal hash, paper
/// Section 4.1) and uses them as hash-table keys in the SubtreeRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_DIGEST_H
#define TRUEDIFF_SUPPORT_DIGEST_H

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace truediff {

/// A 256-bit digest. Equality of digests is treated as equality of the
/// hashed trees, exactly as in the paper.
class Digest {
public:
  static constexpr size_t NumBytes = 32;

  Digest() { Bytes.fill(0); }

  explicit Digest(const std::array<uint8_t, NumBytes> &B) : Bytes(B) {}

  const std::array<uint8_t, NumBytes> &bytes() const { return Bytes; }

  /// The first eight bytes interpreted as a machine word; used as the
  /// bucket key for hash tables (the full digest is compared on collision).
  uint64_t prefixWord() const {
    uint64_t W;
    std::memcpy(&W, Bytes.data(), sizeof(W));
    return W;
  }

  bool operator==(const Digest &O) const { return Bytes == O.Bytes; }
  bool operator!=(const Digest &O) const { return Bytes != O.Bytes; }

  /// Lexicographic order, handy for deterministic iteration in tests.
  bool operator<(const Digest &O) const { return Bytes < O.Bytes; }

  /// Renders the digest as lowercase hex, e.g. for debugging output.
  std::string toHex() const;

private:
  std::array<uint8_t, NumBytes> Bytes;
};

/// Hash functor so Digest can key std::unordered_map.
struct DigestHash {
  size_t operator()(const Digest &D) const {
    return static_cast<size_t>(D.prefixWord());
  }
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_DIGEST_H

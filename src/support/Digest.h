//===- support/Digest.h - 256-bit digest value type -------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 32-byte digest value with cheap equality and hashing. truediff stores
/// two digests per tree node (structure hash and literal hash, paper
/// Section 4.1) and uses them as hash-table keys in the SubtreeRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SUPPORT_DIGEST_H
#define TRUEDIFF_SUPPORT_DIGEST_H

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace truediff {

/// A 256-bit digest. Equality of digests is treated as equality of the
/// hashed trees, exactly as in the paper.
class Digest {
public:
  static constexpr size_t NumBytes = 32;

  Digest() { Bytes.fill(0); }

  explicit Digest(const std::array<uint8_t, NumBytes> &B) : Bytes(B) {}

  const std::array<uint8_t, NumBytes> &bytes() const { return Bytes; }

  /// The first eight bytes interpreted as a machine word.
  uint64_t prefixWord() const { return word(0); }

  /// Eight-byte word \p I (0..3) of the digest, little-endian.
  uint64_t word(size_t I) const {
    uint64_t W;
    std::memcpy(&W, Bytes.data() + I * sizeof(W), sizeof(W));
    return W;
  }

  bool operator==(const Digest &O) const { return Bytes == O.Bytes; }
  bool operator!=(const Digest &O) const { return Bytes != O.Bytes; }

  /// Lexicographic order, handy for deterministic iteration in tests.
  bool operator<(const Digest &O) const { return Bytes < O.Bytes; }

  /// Renders the digest as lowercase hex, e.g. for debugging output.
  std::string toHex() const;

private:
  std::array<uint8_t, NumBytes> Bytes;
};

/// The per-process random seed DigestHash folds into every table hash.
/// With a non-cryptographic digest policy the digest bytes themselves are
/// attacker-influenceable, so exposing them directly as the bucket key
/// would allow flooding one hash bucket; the seed (plus a strong finisher)
/// makes bucket placement unpredictable. Defined in Digest.cpp; see also
/// processDigestSeed() in TreeHash.h, which this reuses.
uint64_t digestTableSeed();

/// Hash functor so Digest can key std::unordered_map. Mixes the first two
/// digest words with the per-process seed through a splitmix64-style
/// finisher, rather than exposing the raw prefix as the bucket key.
struct DigestHash {
  size_t operator()(const Digest &D) const {
    uint64_t X = D.word(0) ^ digestTableSeed();
    X += D.word(1) * 0x9E3779B97F4A7C15ULL;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(X ^ (X >> 31));
  }
};

} // namespace truediff

#endif // TRUEDIFF_SUPPORT_DIGEST_H

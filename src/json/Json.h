//===- json/Json.h - JSON documents as typed trees --------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second language substrate besides Python: JSON documents as typed
/// trees. The paper motivates structural patches for databases and
/// version control (Section 1); this front end shows that the entire
/// stack -- truediff, the type checker, the standard semantics -- is
/// datatype-generic: it only needs a signature.
///
/// Signature: sorts Value, ElemList, Member, MemberList. Arrays and
/// objects use the typed cons encoding like Python's statement lists.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_JSON_JSON_H
#define TRUEDIFF_JSON_JSON_H

#include "tree/Signature.h"
#include "tree/Tree.h"

#include <string>
#include <string_view>

namespace truediff {
namespace json {

/// Builds the JSON signature: JNull, JBool, JNumber, JString, JArray,
/// JObject, plus the list encodings.
SignatureTable makeJsonSignature();

struct JsonParseResult {
  Tree *Value = nullptr;
  std::string Error;
  ParseFail Fail = ParseFail::None;

  bool ok() const { return Value != nullptr; }
};

/// Parses a JSON document into a typed tree; the context's signature
/// must be makeJsonSignature(). Numbers are stored as doubles (JSON has
/// one number type); object member order is preserved. \p Limits caps
/// the value nesting depth (bounding parser recursion against hostile
/// input) and the node count of one parse; if \p Ctx has a memory budget
/// attached, the parse aborts once it is exhausted.
JsonParseResult parseJson(TreeContext &Ctx, std::string_view Text,
                          const ParseLimits &Limits = {});

/// Renders the tree as compact JSON (round-trips through parseJson).
std::string unparseJson(const SignatureTable &Sig, const Tree *Value);

/// Renders the tree as indented JSON for humans.
std::string unparseJsonPretty(const SignatureTable &Sig, const Tree *Value);

} // namespace json
} // namespace truediff

#endif // TRUEDIFF_JSON_JSON_H

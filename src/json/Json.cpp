//===- json/Json.cpp - JSON documents as typed trees -----------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "json/Json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <vector>

using namespace truediff;
using namespace truediff::json;

SignatureTable truediff::json::makeJsonSignature() {
  SignatureTable Sig;
  Sig.defineTag("JNull", "Value", {}, {});
  Sig.defineTag("JBool", "Value", {}, {{"value", LitKind::Bool}});
  Sig.defineTag("JNumber", "Value", {}, {{"value", LitKind::Float}});
  Sig.defineTag("JString", "Value", {}, {{"value", LitKind::String}});
  Sig.defineTag("JArray", "Value", {{"elems", "ElemList"}}, {});
  Sig.defineTag("JObject", "Value", {{"members", "MemberList"}}, {});
  Sig.defineTag("ElemNil", "ElemList", {}, {});
  Sig.defineTag("ElemCons", "ElemList",
                {{"head", "Value"}, {"tail", "ElemList"}}, {});
  Sig.defineTag("Member", "Member", {{"value", "Value"}},
                {{"key", LitKind::String}});
  Sig.defineTag("MemberNil", "MemberList", {}, {});
  Sig.defineTag("MemberCons", "MemberList",
                {{"head", "Member"}, {"tail", "MemberList"}}, {});
  return Sig;
}

namespace {

class JsonParser {
public:
  JsonParser(TreeContext &Ctx, std::string_view Text,
             const ParseLimits &Limits)
      : Ctx(Ctx), Text(Text), Limits(Limits), BaseNodes(Ctx.numNodes()) {}

  Tree *run() {
    Tree *V = parseValue();
    if (V == nullptr)
      return nullptr;
    skipSpace();
    if (Pos != Text.size()) {
      fail("trailing input");
      return nullptr;
    }
    return V;
  }

  const std::string &error() const { return Err; }
  ParseFail failKind() const { return Err.empty() ? ParseFail::None : Fail; }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  void fail(const std::string &Message) {
    if (Err.empty()) {
      Fail = ParseFail::Syntax;
      Err = Message + " at offset " + std::to_string(Pos);
    }
  }

  void failTyped(ParseFail Kind, const std::string &Message) {
    if (Err.empty()) {
      Fail = Kind;
      Err = Message;
    }
  }

  bool expect(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    fail(std::string("expected '") + C + "'");
    return false;
  }

  bool peekIs(char C) {
    skipSpace();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool eatWord(std::string_view Word) {
    skipSpace();
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parseString() {
    if (!expect('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if (C == '\\' && Pos + 1 < Text.size()) {
        ++Pos;
        switch (Text[Pos]) {
        case 'n':
          Out.push_back('\n');
          break;
        case 't':
          Out.push_back('\t');
          break;
        case 'r':
          Out.push_back('\r');
          break;
        case 'b':
          Out.push_back('\b');
          break;
        case 'f':
          Out.push_back('\f');
          break;
        case '/':
          Out.push_back('/');
          break;
        case '"':
          Out.push_back('"');
          break;
        case '\\':
          Out.push_back('\\');
          break;
        case 'u': {
          // Keep it simple: decode BMP escapes to UTF-8.
          if (Pos + 4 >= Text.size()) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          unsigned Code = 0;
          for (int I = 1; I <= 4; ++I) {
            char H = Text[Pos + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code += static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code += static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code += static_cast<unsigned>(H - 'A' + 10);
            else {
              fail("bad \\u escape");
              return std::nullopt;
            }
          }
          Pos += 4;
          if (Code < 0x80) {
            Out.push_back(static_cast<char>(Code));
          } else if (Code < 0x800) {
            Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
            Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
          } else {
            Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
            Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
            Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
        }
        ++Pos;
      } else {
        Out.push_back(C);
        ++Pos;
      }
    }
    if (Pos >= Text.size()) {
      fail("unterminated string");
      return std::nullopt;
    }
    ++Pos;
    return Out;
  }

  Tree *parseValue() {
    // Admission caps fire on the way down, so hostile deeply-nested input
    // unwinds after MaxDepth parser frames instead of smashing the stack.
    ++Depth;
    if (Limits.MaxDepth != 0 && Depth > Limits.MaxDepth) {
      failTyped(ParseFail::TooDeep, "input nesting exceeds the depth cap of " +
                                        std::to_string(Limits.MaxDepth));
      return nullptr;
    }
    if (Limits.MaxNodes != 0 && Ctx.numNodes() - BaseNodes > Limits.MaxNodes) {
      failTyped(ParseFail::TooLarge, "input exceeds the node cap of " +
                                         std::to_string(Limits.MaxNodes) +
                                         " nodes");
      return nullptr;
    }
    if (Ctx.overBudget()) {
      failTyped(ParseFail::OverBudget,
                "memory budget exhausted while parsing input");
      return nullptr;
    }
    Tree *V = parseValueBody();
    --Depth;
    return V;
  }

  Tree *parseValueBody() {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("expected value");
      return nullptr;
    }
    char C = Text[Pos];
    if (C == 'n')
      return eatWord("null") ? Ctx.make("JNull", {}, {})
                             : (fail("expected 'null'"), nullptr);
    if (C == 't')
      return eatWord("true") ? Ctx.make("JBool", {}, {Literal(true)})
                             : (fail("expected 'true'"), nullptr);
    if (C == 'f')
      return eatWord("false") ? Ctx.make("JBool", {}, {Literal(false)})
                              : (fail("expected 'false'"), nullptr);
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return nullptr;
      return Ctx.make("JString", {}, {Literal(std::move(*S))});
    }
    if (C == '[') {
      ++Pos;
      std::vector<Tree *> Elems;
      if (!peekIs(']')) {
        do {
          Tree *E = parseValue();
          if (E == nullptr)
            return nullptr;
          Elems.push_back(E);
        } while (peekIs(',') && expect(','));
      }
      if (!expect(']'))
        return nullptr;
      Tree *List = Ctx.make("ElemNil", {}, {});
      for (size_t I = Elems.size(); I-- > 0;)
        List = Ctx.make("ElemCons", {Elems[I], List}, {});
      return Ctx.make("JArray", {List}, {});
    }
    if (C == '{') {
      ++Pos;
      std::vector<Tree *> Members;
      if (!peekIs('}')) {
        do {
          std::optional<std::string> Key = parseString();
          if (!Key || !expect(':'))
            return nullptr;
          Tree *V = parseValue();
          if (V == nullptr)
            return nullptr;
          Members.push_back(
              Ctx.make("Member", {V}, {Literal(std::move(*Key))}));
        } while (peekIs(',') && expect(','));
      }
      if (!expect('}'))
        return nullptr;
      Tree *List = Ctx.make("MemberNil", {}, {});
      for (size_t I = Members.size(); I-- > 0;)
        List = Ctx.make("MemberCons", {Members[I], List}, {});
      return Ctx.make("JObject", {List}, {});
    }
    // Number.
    size_t Start = Pos;
    if (C == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("expected value");
      return nullptr;
    }
    return Ctx.make(
        "JNumber", {},
        {Literal(std::strtod(std::string(Text.substr(Start, Pos - Start))
                                 .c_str(),
                             nullptr))});
  }

  TreeContext &Ctx;
  std::string_view Text;
  ParseLimits Limits;
  size_t BaseNodes = 0;
  uint32_t Depth = 0;
  size_t Pos = 0;
  std::string Err;
  ParseFail Fail = ParseFail::None;
};

void escapeJsonString(const std::string &In, std::string &Out) {
  Out.push_back('"');
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out.push_back(C);
    }
  }
  Out.push_back('"');
}

void printNumber(double V, std::string &Out) {
  char Buf[64];
  auto [End, Ec] =
      std::to_chars(Buf, Buf + sizeof(Buf), V, std::chars_format::general);
  (void)Ec;
  Out.append(Buf, End);
}

void printRec(const SignatureTable &Sig, const Tree *T, std::string &Out,
              int Indent) {
  const std::string &Tag = Sig.name(T->tag());
  auto Newline = [&](int Level) {
    if (Indent < 0)
      return;
    Out.push_back('\n');
    Out.append(static_cast<size_t>(Level) * 2, ' ');
  };

  if (Tag == "JNull") {
    Out += "null";
  } else if (Tag == "JBool") {
    Out += T->lit(0).asBool() ? "true" : "false";
  } else if (Tag == "JNumber") {
    printNumber(T->lit(0).asFloat(), Out);
  } else if (Tag == "JString") {
    escapeJsonString(T->lit(0).asString(), Out);
  } else if (Tag == "JArray") {
    Out.push_back('[');
    const Tree *List = T->kid(0);
    bool First = true;
    while (Sig.name(List->tag()) == "ElemCons") {
      if (!First)
        Out.push_back(',');
      Newline(Indent + 1);
      printRec(Sig, List->kid(0), Out, Indent < 0 ? Indent : Indent + 1);
      First = false;
      List = List->kid(1);
    }
    if (!First)
      Newline(Indent);
    Out.push_back(']');
  } else if (Tag == "JObject") {
    Out.push_back('{');
    const Tree *List = T->kid(0);
    bool First = true;
    while (Sig.name(List->tag()) == "MemberCons") {
      if (!First)
        Out.push_back(',');
      Newline(Indent + 1);
      const Tree *Member = List->kid(0);
      escapeJsonString(Member->lit(0).asString(), Out);
      Out.push_back(':');
      if (Indent >= 0)
        Out.push_back(' ');
      printRec(Sig, Member->kid(0), Out, Indent < 0 ? Indent : Indent + 1);
      First = false;
      List = List->kid(1);
    }
    if (!First)
      Newline(Indent);
    Out.push_back('}');
  }
}

} // namespace

JsonParseResult truediff::json::parseJson(TreeContext &Ctx,
                                          std::string_view Text,
                                          const ParseLimits &Limits) {
  JsonParser P(Ctx, Text, Limits);
  JsonParseResult R;
  R.Value = P.run();
  if (R.Value == nullptr) {
    R.Error = P.error().empty() ? "parse error" : P.error();
    R.Fail = P.failKind();
  }
  return R;
}

std::string truediff::json::unparseJson(const SignatureTable &Sig,
                                        const Tree *Value) {
  std::string Out;
  printRec(Sig, Value, Out, -1);
  return Out;
}

std::string truediff::json::unparseJsonPretty(const SignatureTable &Sig,
                                              const Tree *Value) {
  std::string Out;
  printRec(Sig, Value, Out, 0);
  return Out;
}

//===- python/Lexer.h - Indentation-aware Python lexer ----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizes the Python subset: names, keywords, numbers, strings,
/// operators, and the layout tokens NEWLINE/INDENT/DEDENT produced from
/// an indentation stack (CPython's tokenizer algorithm). Blank lines and
/// `#` comments are skipped; newlines inside brackets are ignored.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PYTHON_LEXER_H
#define TRUEDIFF_PYTHON_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace truediff {
namespace python {

enum class TokKind : uint8_t {
  Name,
  Keyword,
  Int,
  Float,
  Str,
  Op,
  Newline,
  Indent,
  Dedent,
  EndOfFile,
  Error,
};

struct Tok {
  TokKind Kind;
  /// The lexeme; for Str the *decoded* value.
  std::string Text;
  int Line = 0;

  bool isKw(std::string_view Kw) const {
    return Kind == TokKind::Keyword && Text == Kw;
  }
  bool isOp(std::string_view O) const {
    return Kind == TokKind::Op && Text == O;
  }
};

/// Tokenizes \p Source. On a lexical error the last token has kind Error
/// and carries the message; otherwise the stream ends with EndOfFile
/// (preceded by the dedents closing open blocks).
std::vector<Tok> lexPython(std::string_view Source);

} // namespace python
} // namespace truediff

#endif // TRUEDIFF_PYTHON_LEXER_H

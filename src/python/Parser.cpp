//===- python/Parser.cpp - Recursive-descent parser for the subset ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "python/Python.h"

#include "python/Lexer.h"

#include <cstdlib>
#include <functional>

using namespace truediff;
using namespace truediff::python;

namespace {

/// Recursive-descent parser; errors unwind through nullptr with the first
/// message retained.
class Parser {
public:
  Parser(TreeContext &Ctx, std::vector<Tok> Tokens, const ParseLimits &Limits)
      : Ctx(Ctx), Sig(Ctx.signatures()), Toks(std::move(Tokens)),
        Limits(Limits), BaseNodes(Ctx.numNodes()) {}

  Tree *parseModule() {
    if (!Toks.empty() && Toks.back().Kind == TokKind::Error) {
      Err = Toks.back().Text;
      return nullptr;
    }
    std::vector<Tree *> Stmts;
    while (!at(TokKind::EndOfFile)) {
      Tree *S = parseStmt();
      if (S == nullptr)
        return nullptr;
      Stmts.push_back(S);
    }
    return Ctx.make("Module", {stmtList(Stmts)}, {});
  }

  const std::string &error() const { return Err; }
  ParseFail failKind() const { return Err.empty() ? ParseFail::None : Fail; }

private:
  //===--------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------===//

  const Tok &cur() const { return Toks[Pos]; }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atKw(std::string_view K) const { return cur().isKw(K); }
  bool atOp(std::string_view O) const { return cur().isOp(O); }

  Tok take() { return Toks[Pos++]; }

  bool eatKw(std::string_view K) {
    if (!atKw(K))
      return false;
    ++Pos;
    return true;
  }
  bool eatOp(std::string_view O) {
    if (!atOp(O))
      return false;
    ++Pos;
    return true;
  }
  bool eat(TokKind K) {
    if (!at(K))
      return false;
    ++Pos;
    return true;
  }

  std::nullptr_t fail(const std::string &Message) {
    if (Err.empty()) {
      Fail = ParseFail::Syntax;
      Err = Message + " at line " + std::to_string(cur().Line);
    }
    return nullptr;
  }

  std::nullptr_t failTyped(ParseFail Kind, const std::string &Message) {
    if (Err.empty()) {
      Fail = Kind;
      Err = Message;
    }
    return nullptr;
  }

  /// Admission caps, polled at every statement/expression nesting level.
  /// The depth check fires on the way down, so hostile deeply-nested
  /// input unwinds after MaxDepth parser frames; the node check bounds
  /// how much arena a single parse can allocate before being abandoned.
  bool enterNested() {
    ++Depth;
    if (Limits.MaxDepth != 0 && Depth > Limits.MaxDepth) {
      failTyped(ParseFail::TooDeep, "input nesting exceeds the depth cap of " +
                                        std::to_string(Limits.MaxDepth));
      return false;
    }
    if (Limits.MaxNodes != 0 && Ctx.numNodes() - BaseNodes > Limits.MaxNodes) {
      failTyped(ParseFail::TooLarge, "input exceeds the node cap of " +
                                         std::to_string(Limits.MaxNodes) +
                                         " nodes");
      return false;
    }
    if (Ctx.overBudget()) {
      failTyped(ParseFail::OverBudget,
                "memory budget exhausted while parsing input");
      return false;
    }
    return true;
  }

  bool expectOp(std::string_view O) {
    if (eatOp(O))
      return true;
    fail("expected '" + std::string(O) + "'");
    return false;
  }

  bool expectNewline() {
    if (eat(TokKind::Newline))
      return true;
    fail("expected end of line");
    return false;
  }

  //===--------------------------------------------------------------===//
  // Tree builders
  //===--------------------------------------------------------------===//

  Tree *stmtList(const std::vector<Tree *> &Stmts) {
    Tree *List = Ctx.make("StmtNil", {}, {});
    for (size_t I = Stmts.size(); I-- > 0;)
      List = Ctx.make("StmtCons", {Stmts[I], List}, {});
    return List;
  }

  Tree *exprList(const std::vector<Tree *> &Exprs) {
    Tree *List = Ctx.make("ExprNil", {}, {});
    for (size_t I = Exprs.size(); I-- > 0;)
      List = Ctx.make("ExprCons", {Exprs[I], List}, {});
    return List;
  }

  Tree *paramList(const std::vector<Tree *> &Params) {
    Tree *List = Ctx.make("ParamNil", {}, {});
    for (size_t I = Params.size(); I-- > 0;)
      List = Ctx.make("ParamCons", {Params[I], List}, {});
    return List;
  }

  Tree *entryList(const std::vector<Tree *> &Entries) {
    Tree *List = Ctx.make("EntryNil", {}, {});
    for (size_t I = Entries.size(); I-- > 0;)
      List = Ctx.make("EntryCons", {Entries[I], List}, {});
    return List;
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  Tree *parseStmt() {
    if (!enterNested())
      return nullptr;
    Tree *S = parseStmtBody();
    --Depth;
    return S;
  }

  Tree *parseStmtBody() {
    if (atKw("def"))
      return parseFuncDef();
    if (atKw("class"))
      return parseClassDef();
    if (atKw("if"))
      return parseIf();
    if (atKw("while"))
      return parseWhile();
    if (atKw("for"))
      return parseFor();
    Tree *S = parseSimpleStmt();
    if (S == nullptr)
      return nullptr;
    if (!expectNewline())
      return nullptr;
    return S;
  }

  /// ':' NEWLINE INDENT stmt+ DEDENT
  Tree *parseBlock() {
    if (!expectOp(":"))
      return nullptr;
    if (!expectNewline())
      return nullptr;
    if (!eat(TokKind::Indent))
      return fail("expected an indented block");
    std::vector<Tree *> Stmts;
    while (!at(TokKind::Dedent) && !at(TokKind::EndOfFile)) {
      Tree *S = parseStmt();
      if (S == nullptr)
        return nullptr;
      Stmts.push_back(S);
    }
    if (!eat(TokKind::Dedent))
      return fail("expected dedent");
    if (Stmts.empty())
      return fail("empty block");
    return stmtList(Stmts);
  }

  Tree *parseFuncDef() {
    eatKw("def");
    if (!at(TokKind::Name))
      return fail("expected function name");
    std::string Name = take().Text;
    if (!expectOp("("))
      return nullptr;
    std::vector<Tree *> Params;
    if (!atOp(")")) {
      do {
        if (!at(TokKind::Name))
          return fail("expected parameter name");
        Params.push_back(Ctx.make("Param", {}, {Literal(take().Text)}));
      } while (eatOp(","));
    }
    if (!expectOp(")"))
      return nullptr;
    Tree *Body = parseBlock();
    if (Body == nullptr)
      return nullptr;
    return Ctx.make("FuncDef", {paramList(Params), Body},
                    {Literal(std::move(Name))});
  }

  Tree *parseClassDef() {
    eatKw("class");
    if (!at(TokKind::Name))
      return fail("expected class name");
    std::string Name = take().Text;
    std::vector<Tree *> Bases;
    if (eatOp("(")) {
      if (!atOp(")")) {
        do {
          Tree *E = parseExpr();
          if (E == nullptr)
            return nullptr;
          Bases.push_back(E);
        } while (eatOp(","));
      }
      if (!expectOp(")"))
        return nullptr;
    }
    Tree *Body = parseBlock();
    if (Body == nullptr)
      return nullptr;
    return Ctx.make("ClassDef", {exprList(Bases), Body},
                    {Literal(std::move(Name))});
  }

  Tree *parseIf() {
    eatKw("if");
    return parseIfRest();
  }

  /// Parses "<cond> block {elif...} [else...]"; elif becomes a nested If.
  Tree *parseIfRest() {
    Tree *Cond = parseExpr();
    if (Cond == nullptr)
      return nullptr;
    Tree *Then = parseBlock();
    if (Then == nullptr)
      return nullptr;
    Tree *Else = nullptr;
    if (atKw("elif")) {
      eatKw("elif");
      Tree *Nested = parseIfRest();
      if (Nested == nullptr)
        return nullptr;
      Else = stmtList({Nested});
    } else if (eatKw("else")) {
      Else = parseBlock();
      if (Else == nullptr)
        return nullptr;
    } else {
      Else = Ctx.make("StmtNil", {}, {});
    }
    return Ctx.make("If", {Cond, Then, Else}, {});
  }

  Tree *parseWhile() {
    eatKw("while");
    Tree *Cond = parseExpr();
    if (Cond == nullptr)
      return nullptr;
    Tree *Body = parseBlock();
    if (Body == nullptr)
      return nullptr;
    return Ctx.make("While", {Cond, Body}, {});
  }

  /// For-loop targets are postfix expressions (names, attributes,
  /// subscripts) or tuples thereof; a full expression would swallow the
  /// 'in' keyword as a comparison.
  Tree *parseTarget() {
    Tree *First = parsePostfix();
    if (First == nullptr)
      return nullptr;
    if (!atOp(","))
      return First;
    std::vector<Tree *> Elts{First};
    while (eatOp(",")) {
      if (atKw("in"))
        break;
      Tree *E = parsePostfix();
      if (E == nullptr)
        return nullptr;
      Elts.push_back(E);
    }
    return Ctx.make("TupleExpr", {exprList(Elts)}, {});
  }

  Tree *parseFor() {
    eatKw("for");
    Tree *Target = parseTarget();
    if (Target == nullptr)
      return nullptr;
    if (!eatKw("in"))
      return fail("expected 'in'");
    Tree *Iter = parseExpr();
    if (Iter == nullptr)
      return nullptr;
    Tree *Body = parseBlock();
    if (Body == nullptr)
      return nullptr;
    return Ctx.make("For", {Target, Iter, Body}, {});
  }

  Tree *parseSimpleStmt() {
    if (eatKw("pass"))
      return Ctx.make("Pass", {}, {});
    if (eatKw("break"))
      return Ctx.make("Break", {}, {});
    if (eatKw("continue"))
      return Ctx.make("Continue", {}, {});
    if (eatKw("return")) {
      if (at(TokKind::Newline))
        return Ctx.make("Return", {Ctx.make("NoneLit", {}, {})}, {});
      Tree *V = parseExprListAsExpr();
      if (V == nullptr)
        return nullptr;
      return Ctx.make("Return", {V}, {});
    }
    if (eatKw("import")) {
      std::string Module = parseDottedName();
      if (Module.empty())
        return nullptr;
      return Ctx.make("Import", {}, {Literal(std::move(Module))});
    }
    if (eatKw("from")) {
      std::string Module = parseDottedName();
      if (Module.empty())
        return nullptr;
      if (!eatKw("import"))
        return fail("expected 'import'");
      if (!at(TokKind::Name) && !atOp("*"))
        return fail("expected imported name");
      std::string Name = take().Text;
      return Ctx.make("ImportFrom", {},
                      {Literal(std::move(Module)), Literal(std::move(Name))});
    }
    if (eatKw("assert")) {
      Tree *T = parseExpr();
      if (T == nullptr)
        return nullptr;
      return Ctx.make("Assert", {T}, {});
    }

    // Expression statement, assignment, or augmented assignment.
    Tree *Target = parseExprListAsExpr();
    if (Target == nullptr)
      return nullptr;
    static const char *AugOps[] = {"+=", "-=", "*=", "/=", "%=", "**=",
                                   "//="};
    for (const char *O : AugOps) {
      if (atOp(O)) {
        std::string Op(take().Text, 0, std::string(O).size() - 1);
        Tree *Value = parseExprListAsExpr();
        if (Value == nullptr)
          return nullptr;
        return Ctx.make("AugAssign", {Target, Value},
                        {Literal(std::move(Op))});
      }
    }
    if (eatOp("=")) {
      Tree *Value = parseExprListAsExpr();
      if (Value == nullptr)
        return nullptr;
      return Ctx.make("Assign", {Target, Value}, {});
    }
    return Ctx.make("ExprStmt", {Target}, {});
  }

  std::string parseDottedName() {
    if (!at(TokKind::Name)) {
      fail("expected module name");
      return "";
    }
    std::string Name = take().Text;
    while (atOp(".")) {
      ++Pos;
      if (!at(TokKind::Name)) {
        fail("expected name after '.'");
        return "";
      }
      Name += ".";
      Name += take().Text;
    }
    return Name;
  }

  //===--------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------===//

  /// expr {',' expr}: a single expression, or a TupleExpr.
  Tree *parseExprListAsExpr() {
    Tree *First = parseExpr();
    if (First == nullptr)
      return nullptr;
    if (!atOp(","))
      return First;
    std::vector<Tree *> Elts{First};
    while (eatOp(",")) {
      if (at(TokKind::Newline) || atOp(")") || atOp("]") || atOp("}") ||
          atOp(":") || atOp("="))
        break; // trailing comma
      Tree *E = parseExpr();
      if (E == nullptr)
        return nullptr;
      Elts.push_back(E);
    }
    return Ctx.make("TupleExpr", {exprList(Elts)}, {});
  }

  Tree *parseExpr() {
    if (!enterNested())
      return nullptr;
    Tree *E = parseOr();
    --Depth;
    return E;
  }

  Tree *parseOr() {
    Tree *L = parseAnd();
    if (L == nullptr)
      return nullptr;
    while (atKw("or")) {
      ++Pos;
      Tree *R = parseAnd();
      if (R == nullptr)
        return nullptr;
      L = Ctx.make("BoolOp", {L, R}, {Literal("or")});
    }
    return L;
  }

  Tree *parseAnd() {
    Tree *L = parseNot();
    if (L == nullptr)
      return nullptr;
    while (atKw("and")) {
      ++Pos;
      Tree *R = parseNot();
      if (R == nullptr)
        return nullptr;
      L = Ctx.make("BoolOp", {L, R}, {Literal("and")});
    }
    return L;
  }

  Tree *parseNot() {
    if (atKw("not")) {
      ++Pos;
      Tree *E = parseNot();
      if (E == nullptr)
        return nullptr;
      return Ctx.make("UnaryOp", {E}, {Literal("not")});
    }
    return parseComparison();
  }

  Tree *parseComparison() {
    Tree *L = parseArith();
    if (L == nullptr)
      return nullptr;
    for (;;) {
      std::string Op;
      if (atOp("==") || atOp("!=") || atOp("<") || atOp("<=") ||
          atOp(">") || atOp(">=")) {
        Op = take().Text;
      } else if (atKw("in")) {
        ++Pos;
        Op = "in";
      } else if (atKw("not")) {
        // 'not in'
        ++Pos;
        if (!eatKw("in"))
          return fail("expected 'in' after 'not'");
        Op = "not in";
      } else if (atKw("is")) {
        ++Pos;
        Op = eatKw("not") ? "is not" : "is";
      } else {
        return L;
      }
      Tree *R = parseArith();
      if (R == nullptr)
        return nullptr;
      L = Ctx.make("Compare", {L, R}, {Literal(std::move(Op))});
    }
  }

  Tree *parseArith() {
    Tree *L = parseTerm();
    if (L == nullptr)
      return nullptr;
    while (atOp("+") || atOp("-")) {
      std::string Op = take().Text;
      Tree *R = parseTerm();
      if (R == nullptr)
        return nullptr;
      L = Ctx.make("BinOp", {L, R}, {Literal(std::move(Op))});
    }
    return L;
  }

  Tree *parseTerm() {
    Tree *L = parseFactor();
    if (L == nullptr)
      return nullptr;
    while (atOp("*") || atOp("/") || atOp("%") || atOp("//")) {
      std::string Op = take().Text;
      Tree *R = parseFactor();
      if (R == nullptr)
        return nullptr;
      L = Ctx.make("BinOp", {L, R}, {Literal(std::move(Op))});
    }
    return L;
  }

  Tree *parseFactor() {
    if (atOp("-") || atOp("+")) {
      std::string Op = take().Text;
      Tree *E = parseFactor();
      if (E == nullptr)
        return nullptr;
      return Ctx.make("UnaryOp", {E}, {Literal(std::move(Op))});
    }
    return parsePower();
  }

  Tree *parsePower() {
    Tree *L = parsePostfix();
    if (L == nullptr)
      return nullptr;
    if (atOp("**")) {
      ++Pos;
      Tree *R = parseFactor(); // right-associative
      if (R == nullptr)
        return nullptr;
      return Ctx.make("BinOp", {L, R}, {Literal("**")});
    }
    return L;
  }

  Tree *parsePostfix() {
    Tree *E = parseAtom();
    if (E == nullptr)
      return nullptr;
    for (;;) {
      if (eatOp("(")) {
        std::vector<Tree *> Args;
        if (!atOp(")")) {
          do {
            if (atOp(")"))
              break; // trailing comma
            Tree *A = parseExpr();
            if (A == nullptr)
              return nullptr;
            Args.push_back(A);
          } while (eatOp(","));
        }
        if (!expectOp(")"))
          return nullptr;
        E = Ctx.make("Call", {E, exprList(Args)}, {});
        continue;
      }
      if (eatOp(".")) {
        if (!at(TokKind::Name))
          return fail("expected attribute name");
        E = Ctx.make("Attribute", {E}, {Literal(take().Text)});
        continue;
      }
      if (eatOp("[")) {
        Tree *Index = parseExprListAsExpr();
        if (Index == nullptr)
          return nullptr;
        if (!expectOp("]"))
          return nullptr;
        E = Ctx.make("Subscript", {E, Index}, {});
        continue;
      }
      return E;
    }
  }

  Tree *parseAtom() {
    if (at(TokKind::Name))
      return Ctx.make("Name", {}, {Literal(take().Text)});
    if (at(TokKind::Int))
      return Ctx.make(
          "IntLit", {},
          {Literal(static_cast<int64_t>(
              std::strtoll(take().Text.c_str(), nullptr, 10)))});
    if (at(TokKind::Float))
      return Ctx.make("FloatLit", {},
                      {Literal(std::strtod(take().Text.c_str(), nullptr))});
    if (at(TokKind::Str))
      return Ctx.make("StrLit", {}, {Literal(take().Text)});
    if (eatKw("True"))
      return Ctx.make("BoolLit", {}, {Literal(true)});
    if (eatKw("False"))
      return Ctx.make("BoolLit", {}, {Literal(false)});
    if (eatKw("None"))
      return Ctx.make("NoneLit", {}, {});
    if (eatOp("(")) {
      if (eatOp(")")) // empty tuple
        return Ctx.make("TupleExpr", {exprList({})}, {});
      Tree *E = parseExprListAsExpr();
      if (E == nullptr)
        return nullptr;
      if (!expectOp(")"))
        return nullptr;
      return E; // grouping; tuples got built by the comma rule
    }
    if (eatOp("[")) {
      std::vector<Tree *> Elts;
      if (!atOp("]")) {
        do {
          if (atOp("]"))
            break;
          Tree *E = parseExpr();
          if (E == nullptr)
            return nullptr;
          Elts.push_back(E);
        } while (eatOp(","));
      }
      if (!expectOp("]"))
        return nullptr;
      return Ctx.make("ListExpr", {exprList(Elts)}, {});
    }
    if (eatOp("{")) {
      std::vector<Tree *> Entries;
      if (!atOp("}")) {
        do {
          if (atOp("}"))
            break;
          Tree *K = parseExpr();
          if (K == nullptr)
            return nullptr;
          if (!expectOp(":"))
            return nullptr;
          Tree *V = parseExpr();
          if (V == nullptr)
            return nullptr;
          Entries.push_back(Ctx.make("Entry", {K, V}, {}));
        } while (eatOp(","));
      }
      if (!expectOp("}"))
        return nullptr;
      return Ctx.make("DictExpr", {entryList(Entries)}, {});
    }
    return fail("expected expression");
  }

  TreeContext &Ctx;
  const SignatureTable &Sig;
  std::vector<Tok> Toks;
  ParseLimits Limits;
  size_t BaseNodes = 0;
  uint32_t Depth = 0;
  size_t Pos = 0;
  std::string Err;
  ParseFail Fail = ParseFail::None;
};

} // namespace

PyParseResult truediff::python::parsePython(TreeContext &Ctx,
                                            std::string_view Source,
                                            const ParseLimits &Limits) {
  Parser P(Ctx, lexPython(Source), Limits);
  PyParseResult R;
  R.Module = P.parseModule();
  if (R.Module == nullptr) {
    R.Error = P.error().empty() ? "parse error" : P.error();
    R.Fail = P.failKind();
  }
  return R;
}

//===- python/PySig.h - Typed AST signature for a Python subset -*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The signature Sigma of the Python-subset ASTs used by the evaluation
/// (paper Section 6 benchmarks Python files). Statement and expression
/// sequences are encoded as typed cons lists (StmtCons/StmtNil etc.), the
/// standard algebraic encoding, so every tag has a fixed arity as required
/// by typed tree representations.
///
/// Sorts: Mod, Stmt, StmtList, Expr, ExprList, Param, ParamList, Entry,
/// EntryList.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PYTHON_PYSIG_H
#define TRUEDIFF_PYTHON_PYSIG_H

#include "tree/Signature.h"

namespace truediff {
namespace python {

/// Builds the Python-subset signature (see the file comment for the sort
/// structure). The returned table is self-contained and shared by parser,
/// unparser, generator, and mutator.
SignatureTable makePythonSignature();

} // namespace python
} // namespace truediff

#endif // TRUEDIFF_PYTHON_PYSIG_H

//===- python/Lexer.cpp - Indentation-aware Python lexer -------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "python/Lexer.h"

#include <cctype>

using namespace truediff;
using namespace truediff::python;

namespace {

const char *Keywords[] = {"def",    "class", "if",     "elif",   "else",
                          "while",  "for",   "in",     "return", "pass",
                          "break",  "continue", "import", "from", "assert",
                          "and",    "or",    "not",    "True",   "False",
                          "None",   "is"};

bool isKeyword(std::string_view S) {
  for (const char *K : Keywords)
    if (S == K)
      return true;
  return false;
}

/// Multi-character operators, longest first.
const char *MultiOps[] = {"**=", "//=", "==", "!=", "<=", ">=", "+=", "-=",
                          "*=",  "/=",  "%=", "**", "//"};

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {
    Indents.push_back(0);
  }

  std::vector<Tok> run() {
    while (!AtEof) {
      lexLine();
    }
    // Close open blocks.
    if (!Failed) {
      while (Indents.back() > 0) {
        Indents.pop_back();
        emit(TokKind::Dedent, "");
      }
      emit(TokKind::EndOfFile, "");
    }
    return std::move(Toks);
  }

private:
  void emit(TokKind Kind, std::string Text) {
    Toks.push_back(Tok{Kind, std::move(Text), Line});
  }

  void error(const std::string &Message) {
    if (!Failed)
      emit(TokKind::Error,
           Message + " at line " + std::to_string(Line));
    Failed = true;
    AtEof = true;
  }

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char take() { return Src[Pos++]; }
  bool atEnd() const { return Pos >= Src.size(); }

  /// Lexes one logical line: indentation handling, then tokens until the
  /// newline.
  void lexLine() {
    // Measure indentation; skip blank/comment lines entirely.
    size_t LineStart = Pos;
    int Indent = 0;
    while (!atEnd() && (peek() == ' ' || peek() == '\t')) {
      Indent += peek() == '\t' ? 8 - (Indent % 8) : 1;
      ++Pos;
    }
    if (atEnd()) {
      AtEof = true;
      return;
    }
    if (peek() == '\n' || peek() == '#') {
      skipToLineEnd();
      return;
    }
    (void)LineStart;

    // INDENT/DEDENT per the indentation stack.
    if (Indent > Indents.back()) {
      Indents.push_back(Indent);
      emit(TokKind::Indent, "");
    } else {
      while (Indent < Indents.back()) {
        Indents.pop_back();
        emit(TokKind::Dedent, "");
      }
      if (Indent != Indents.back()) {
        error("inconsistent dedent");
        return;
      }
    }

    // Tokens until end of (logical) line.
    while (!atEnd() && peek() != '\n') {
      if (peek() == ' ' || peek() == '\t') {
        ++Pos;
        continue;
      }
      if (peek() == '#') {
        while (!atEnd() && peek() != '\n')
          ++Pos;
        break;
      }
      if (!lexToken())
        return;
    }
    if (!atEnd())
      ++Pos; // consume '\n'
    if (BracketDepth == 0)
      emit(TokKind::Newline, "");
    ++Line;
    if (atEnd())
      AtEof = true;

    // Inside brackets, logical lines continue: merge following physical
    // lines without layout tokens.
    while (BracketDepth > 0 && !atEnd()) {
      while (!atEnd() && peek() != '\n') {
        if (peek() == ' ' || peek() == '\t') {
          ++Pos;
          continue;
        }
        if (peek() == '#') {
          while (!atEnd() && peek() != '\n')
            ++Pos;
          break;
        }
        if (!lexToken())
          return;
      }
      if (!atEnd())
        ++Pos;
      ++Line;
      if (BracketDepth == 0)
        emit(TokKind::Newline, "");
    }
    if (atEnd())
      AtEof = true;
  }

  void skipToLineEnd() {
    while (!atEnd() && peek() != '\n')
      ++Pos;
    if (!atEnd())
      ++Pos;
    ++Line;
    if (atEnd())
      AtEof = true;
  }

  bool lexToken() {
    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexName();
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();
    if (C == '"' || C == '\'')
      return lexString();
    return lexOp();
  }

  bool lexName() {
    size_t Start = Pos;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      ++Pos;
    std::string Text(Src.substr(Start, Pos - Start));
    TokKind Kind = isKeyword(Text) ? TokKind::Keyword : TokKind::Name;
    emit(Kind, std::move(Text));
    return true;
  }

  bool lexNumber() {
    size_t Start = Pos;
    bool IsFloat = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (!atEnd() && peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      ++Pos;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      size_t Save = Pos;
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        IsFloat = true;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          ++Pos;
      } else {
        Pos = Save;
      }
    }
    emit(IsFloat ? TokKind::Float : TokKind::Int,
         std::string(Src.substr(Start, Pos - Start)));
    return true;
  }

  bool lexString() {
    char Quote = take();
    std::string Value;
    while (!atEnd() && peek() != Quote && peek() != '\n') {
      char C = take();
      if (C == '\\' && !atEnd()) {
        char E = take();
        switch (E) {
        case 'n':
          Value.push_back('\n');
          break;
        case 't':
          Value.push_back('\t');
          break;
        case '\\':
          Value.push_back('\\');
          break;
        case '\'':
          Value.push_back('\'');
          break;
        case '"':
          Value.push_back('"');
          break;
        default:
          Value.push_back('\\');
          Value.push_back(E);
        }
      } else {
        Value.push_back(C);
      }
    }
    if (atEnd() || peek() == '\n') {
      error("unterminated string literal");
      return false;
    }
    ++Pos; // closing quote
    emit(TokKind::Str, std::move(Value));
    return true;
  }

  bool lexOp() {
    for (const char *O : MultiOps) {
      size_t Len = std::char_traits<char>::length(O);
      if (Src.substr(Pos, Len) == O) {
        Pos += Len;
        emit(TokKind::Op, O);
        return true;
      }
    }
    char C = take();
    switch (C) {
    case '(':
    case '[':
    case '{':
      ++BracketDepth;
      break;
    case ')':
    case ']':
    case '}':
      if (BracketDepth > 0)
        --BracketDepth;
      break;
    case '+':
    case '-':
    case '*':
    case '/':
    case '%':
    case '=':
    case '<':
    case '>':
    case ',':
    case ':':
    case '.':
      break;
    default:
      error(std::string("unexpected character '") + C + "'");
      return false;
    }
    emit(TokKind::Op, std::string(1, C));
    return true;
  }

  std::string_view Src;
  size_t Pos = 0;
  int Line = 1;
  int BracketDepth = 0;
  bool AtEof = false;
  bool Failed = false;
  std::vector<int> Indents;
  std::vector<Tok> Toks;
};

} // namespace

std::vector<Tok> truediff::python::lexPython(std::string_view Source) {
  return Lexer(Source).run();
}

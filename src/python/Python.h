//===- python/Python.h - Parse and unparse the Python subset ----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Front end for the Python subset: parsing source text into typed trees
/// (signature from PySig.h) and unparsing trees back to source. Together
/// with truediff this reproduces the paper's evaluation pipeline:
/// reparse the file, diff the trees, process the edit script (Section 6).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_PYTHON_PYTHON_H
#define TRUEDIFF_PYTHON_PYTHON_H

#include "python/PySig.h"
#include "tree/Tree.h"

#include <string>
#include <string_view>

namespace truediff {
namespace python {

struct PyParseResult {
  Tree *Module = nullptr;
  std::string Error;
  ParseFail Fail = ParseFail::None;

  bool ok() const { return Module != nullptr; }
};

/// Parses \p Source into a Module tree in \p Ctx; the context's signature
/// must be makePythonSignature(). \p Limits caps the grammar nesting
/// depth (which bounds parser recursion against hostile deeply-nested
/// input) and the number of nodes one parse may allocate; if \p Ctx has a
/// memory budget attached, the parse aborts once it is exhausted.
PyParseResult parsePython(TreeContext &Ctx, std::string_view Source,
                          const ParseLimits &Limits = {});

/// Renders a Module tree as source text. Output is canonical (4-space
/// indent, conservative parentheses) and reparses to an equal tree.
std::string unparsePython(const SignatureTable &Sig, const Tree *Module);

} // namespace python
} // namespace truediff

#endif // TRUEDIFF_PYTHON_PYTHON_H

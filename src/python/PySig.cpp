//===- python/PySig.cpp - Typed AST signature for a Python subset ----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "python/PySig.h"

using namespace truediff;

SignatureTable truediff::python::makePythonSignature() {
  SignatureTable Sig;

  // Module and statement lists.
  Sig.defineTag("Module", "Mod", {{"body", "StmtList"}}, {});
  Sig.defineTag("StmtNil", "StmtList", {}, {});
  Sig.defineTag("StmtCons", "StmtList",
                {{"head", "Stmt"}, {"tail", "StmtList"}}, {});

  // Parameters.
  Sig.defineTag("Param", "Param", {}, {{"name", LitKind::String}});
  Sig.defineTag("ParamNil", "ParamList", {}, {});
  Sig.defineTag("ParamCons", "ParamList",
                {{"head", "Param"}, {"tail", "ParamList"}}, {});

  // Statements.
  Sig.defineTag("FuncDef", "Stmt",
                {{"params", "ParamList"}, {"body", "StmtList"}},
                {{"name", LitKind::String}});
  Sig.defineTag("ClassDef", "Stmt",
                {{"bases", "ExprList"}, {"body", "StmtList"}},
                {{"name", LitKind::String}});
  Sig.defineTag("If", "Stmt",
                {{"cond", "Expr"}, {"then", "StmtList"},
                 {"orelse", "StmtList"}},
                {});
  Sig.defineTag("While", "Stmt", {{"cond", "Expr"}, {"body", "StmtList"}},
                {});
  Sig.defineTag("For", "Stmt",
                {{"target", "Expr"}, {"iter", "Expr"}, {"body", "StmtList"}},
                {});
  Sig.defineTag("Return", "Stmt", {{"value", "Expr"}}, {});
  Sig.defineTag("Assign", "Stmt", {{"target", "Expr"}, {"value", "Expr"}},
                {});
  Sig.defineTag("AugAssign", "Stmt",
                {{"target", "Expr"}, {"value", "Expr"}},
                {{"op", LitKind::String}});
  Sig.defineTag("ExprStmt", "Stmt", {{"value", "Expr"}}, {});
  Sig.defineTag("Pass", "Stmt", {}, {});
  Sig.defineTag("Break", "Stmt", {}, {});
  Sig.defineTag("Continue", "Stmt", {}, {});
  Sig.defineTag("Import", "Stmt", {}, {{"module", LitKind::String}});
  Sig.defineTag("ImportFrom", "Stmt", {},
                {{"module", LitKind::String}, {"name", LitKind::String}});
  Sig.defineTag("Assert", "Stmt", {{"test", "Expr"}}, {});

  // Expressions.
  Sig.defineTag("Name", "Expr", {}, {{"id", LitKind::String}});
  Sig.defineTag("IntLit", "Expr", {}, {{"value", LitKind::Int}});
  Sig.defineTag("FloatLit", "Expr", {}, {{"value", LitKind::Float}});
  Sig.defineTag("StrLit", "Expr", {}, {{"value", LitKind::String}});
  Sig.defineTag("BoolLit", "Expr", {}, {{"value", LitKind::Bool}});
  Sig.defineTag("NoneLit", "Expr", {}, {});
  Sig.defineTag("BinOp", "Expr", {{"left", "Expr"}, {"right", "Expr"}},
                {{"op", LitKind::String}});
  Sig.defineTag("BoolOp", "Expr", {{"left", "Expr"}, {"right", "Expr"}},
                {{"op", LitKind::String}});
  Sig.defineTag("Compare", "Expr", {{"left", "Expr"}, {"right", "Expr"}},
                {{"op", LitKind::String}});
  Sig.defineTag("UnaryOp", "Expr", {{"operand", "Expr"}},
                {{"op", LitKind::String}});
  Sig.defineTag("Call", "Expr", {{"func", "Expr"}, {"args", "ExprList"}},
                {});
  Sig.defineTag("Attribute", "Expr", {{"value", "Expr"}},
                {{"attr", LitKind::String}});
  Sig.defineTag("Subscript", "Expr",
                {{"value", "Expr"}, {"index", "Expr"}}, {});
  Sig.defineTag("ListExpr", "Expr", {{"elts", "ExprList"}}, {});
  Sig.defineTag("TupleExpr", "Expr", {{"elts", "ExprList"}}, {});
  Sig.defineTag("DictExpr", "Expr", {{"entries", "EntryList"}}, {});

  // Expression lists and dict entries.
  Sig.defineTag("ExprNil", "ExprList", {}, {});
  Sig.defineTag("ExprCons", "ExprList",
                {{"head", "Expr"}, {"tail", "ExprList"}}, {});
  Sig.defineTag("Entry", "Entry", {{"key", "Expr"}, {"value", "Expr"}}, {});
  Sig.defineTag("EntryNil", "EntryList", {}, {});
  Sig.defineTag("EntryCons", "EntryList",
                {{"head", "Entry"}, {"tail", "EntryList"}}, {});

  return Sig;
}

//===- python/Unparser.cpp - Render Python-subset trees as source ----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "python/Python.h"

#include <cassert>

using namespace truediff;
using namespace truediff::python;

namespace {

/// Expression precedence levels; higher binds tighter.
enum Prec {
  PrecOr = 1,
  PrecAnd = 2,
  PrecNot = 3,
  PrecCompare = 4,
  PrecArith = 5,
  PrecTerm = 6,
  PrecUnary = 7,
  PrecPower = 8,
  PrecPostfix = 9,
  PrecAtom = 10,
};

class Unparser {
public:
  explicit Unparser(const SignatureTable &Sig) : Sig(Sig) {}

  std::string run(const Tree *Module) {
    assert(tagIs(Module, "Module"));
    stmts(Module->kid(0), 0);
    return std::move(Out);
  }

private:
  bool tagIs(const Tree *T, std::string_view Name) const {
    return Sig.name(T->tag()) == Name;
  }

  void indent(int Level) { Out.append(static_cast<size_t>(Level) * 4, ' '); }

  void line(int Level, const std::string &Text) {
    indent(Level);
    Out += Text;
    Out += "\n";
  }

  /// Walks a StmtCons/StmtNil list.
  void stmts(const Tree *List, int Level) {
    while (tagIs(List, "StmtCons")) {
      stmt(List->kid(0), Level);
      List = List->kid(1);
    }
  }

  void block(const Tree *List, int Level) {
    Out += ":\n";
    if (!tagIs(List, "StmtCons")) {
      line(Level + 1, "pass"); // defensive: empty bodies never parse back
      return;
    }
    stmts(List, Level + 1);
  }

  void stmt(const Tree *S, int Level) {
    const std::string &Tag = Sig.name(S->tag());
    if (Tag == "FuncDef") {
      indent(Level);
      Out += "def " + S->lit(0).asString() + "(";
      const Tree *P = S->kid(0);
      bool First = true;
      while (tagIs(P, "ParamCons")) {
        if (!First)
          Out += ", ";
        Out += P->kid(0)->lit(0).asString();
        First = false;
        P = P->kid(1);
      }
      Out += ")";
      block(S->kid(1), Level);
      return;
    }
    if (Tag == "ClassDef") {
      indent(Level);
      Out += "class " + S->lit(0).asString();
      if (tagIs(S->kid(0), "ExprCons")) {
        Out += "(";
        exprListInline(S->kid(0));
        Out += ")";
      }
      block(S->kid(1), Level);
      return;
    }
    if (Tag == "If") {
      indent(Level);
      Out += "if ";
      expr(S->kid(0), PrecOr);
      block(S->kid(1), Level);
      const Tree *Else = S->kid(2);
      if (tagIs(Else, "StmtCons")) {
        indent(Level);
        Out += "else";
        block(Else, Level);
      }
      return;
    }
    if (Tag == "While") {
      indent(Level);
      Out += "while ";
      expr(S->kid(0), PrecOr);
      block(S->kid(1), Level);
      return;
    }
    if (Tag == "For") {
      indent(Level);
      Out += "for ";
      expr(S->kid(0), PrecOr);
      Out += " in ";
      expr(S->kid(1), PrecOr);
      block(S->kid(2), Level);
      return;
    }

    // Simple statements.
    indent(Level);
    if (Tag == "Return") {
      if (tagIs(S->kid(0), "NoneLit"))
        Out += "return";
      else {
        Out += "return ";
        expr(S->kid(0), PrecOr);
      }
    } else if (Tag == "Assign") {
      expr(S->kid(0), PrecOr);
      Out += " = ";
      expr(S->kid(1), PrecOr);
    } else if (Tag == "AugAssign") {
      expr(S->kid(0), PrecOr);
      Out += " " + S->lit(0).asString() + "= ";
      expr(S->kid(1), PrecOr);
    } else if (Tag == "ExprStmt") {
      expr(S->kid(0), PrecOr);
    } else if (Tag == "Pass") {
      Out += "pass";
    } else if (Tag == "Break") {
      Out += "break";
    } else if (Tag == "Continue") {
      Out += "continue";
    } else if (Tag == "Import") {
      Out += "import " + S->lit(0).asString();
    } else if (Tag == "ImportFrom") {
      Out += "from " + S->lit(0).asString() + " import " +
             S->lit(1).asString();
    } else if (Tag == "Assert") {
      Out += "assert ";
      expr(S->kid(0), PrecOr);
    } else {
      assert(false && "unknown statement tag");
    }
    Out += "\n";
  }

  void exprListInline(const Tree *List) {
    bool First = true;
    while (tagIs(List, "ExprCons")) {
      if (!First)
        Out += ", ";
      expr(List->kid(0), PrecOr);
      First = false;
      List = List->kid(1);
    }
  }

  static int binOpPrec(const std::string &Op) {
    if (Op == "+" || Op == "-")
      return PrecArith;
    if (Op == "**")
      return PrecPower;
    return PrecTerm; // * / % //
  }

  /// Renders \p E, parenthesizing when its precedence is below the
  /// context's minimum. Conservative: equal precedence on the right side
  /// also gets parentheses, which keeps associativity explicit and makes
  /// the output reparse to an equal tree.
  void expr(const Tree *E, int MinPrec) {
    const std::string &Tag = Sig.name(E->tag());
    int MyPrec;
    if (Tag == "BoolOp")
      MyPrec = E->lit(0).asString() == "or" ? PrecOr : PrecAnd;
    else if (Tag == "Compare")
      MyPrec = PrecCompare;
    else if (Tag == "BinOp")
      MyPrec = binOpPrec(E->lit(0).asString());
    else if (Tag == "UnaryOp")
      MyPrec = E->lit(0).asString() == "not" ? PrecNot : PrecUnary;
    else if (Tag == "Call" || Tag == "Attribute" || Tag == "Subscript")
      MyPrec = PrecPostfix;
    else
      MyPrec = PrecAtom;

    bool Parens = MyPrec < MinPrec;
    if (Parens)
      Out += "(";

    if (Tag == "Name") {
      Out += E->lit(0).asString();
    } else if (Tag == "IntLit") {
      Out += std::to_string(E->lit(0).asInt());
    } else if (Tag == "FloatLit") {
      Out += E->lit(0).toString();
    } else if (Tag == "StrLit") {
      Out += E->lit(0).toString(); // quoted + escaped
    } else if (Tag == "BoolLit") {
      Out += E->lit(0).asBool() ? "True" : "False";
    } else if (Tag == "NoneLit") {
      Out += "None";
    } else if (Tag == "BoolOp" || Tag == "Compare" || Tag == "BinOp") {
      expr(E->kid(0), MyPrec);
      Out += " " + E->lit(0).asString() + " ";
      expr(E->kid(1), MyPrec + 1);
    } else if (Tag == "UnaryOp") {
      const std::string &Op = E->lit(0).asString();
      Out += Op == "not" ? "not " : Op;
      expr(E->kid(0), MyPrec);
    } else if (Tag == "Call") {
      expr(E->kid(0), PrecPostfix);
      Out += "(";
      exprListInline(E->kid(1));
      Out += ")";
    } else if (Tag == "Attribute") {
      expr(E->kid(0), PrecPostfix);
      Out += "." + E->lit(0).asString();
    } else if (Tag == "Subscript") {
      expr(E->kid(0), PrecPostfix);
      Out += "[";
      expr(E->kid(1), PrecOr);
      Out += "]";
    } else if (Tag == "ListExpr") {
      Out += "[";
      exprListInline(E->kid(0));
      Out += "]";
    } else if (Tag == "TupleExpr") {
      Out += "(";
      exprListInline(E->kid(0));
      // A one-element tuple needs the trailing comma, or it would reparse
      // as grouping.
      if (tagIs(E->kid(0), "ExprCons") && !tagIs(E->kid(0)->kid(1), "ExprCons"))
        Out += ",";
      Out += ")";
    } else if (Tag == "DictExpr") {
      Out += "{";
      const Tree *List = E->kid(0);
      bool First = true;
      while (tagIs(List, "EntryCons")) {
        if (!First)
          Out += ", ";
        expr(List->kid(0)->kid(0), PrecOr);
        Out += ": ";
        expr(List->kid(0)->kid(1), PrecOr);
        First = false;
        List = List->kid(1);
      }
      Out += "}";
    } else {
      assert(false && "unknown expression tag");
    }

    if (Parens)
      Out += ")";
  }

  const SignatureTable &Sig;
  std::string Out;
};

} // namespace

std::string truediff::python::unparsePython(const SignatureTable &Sig,
                                            const Tree *Module) {
  return Unparser(Sig).run(Module);
}

//===- corpus/Mutator.cpp - Commit-simulating tree mutations ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Mutator.h"

#include "corpus/Sketch.h"

#include <cassert>

using namespace truediff;
using namespace truediff::corpus;

const char *truediff::corpus::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::RenameIdentifier:
    return "rename-identifier";
  case MutationKind::ChangeNumber:
    return "change-number";
  case MutationKind::ChangeString:
    return "change-string";
  case MutationKind::ChangeOperator:
    return "change-operator";
  case MutationKind::InsertStatement:
    return "insert-statement";
  case MutationKind::DeleteStatement:
    return "delete-statement";
  case MutationKind::DuplicateStatement:
    return "duplicate-statement";
  case MutationKind::SwapStatements:
    return "swap-statements";
  case MutationKind::MoveStatement:
    return "move-statement";
  case MutationKind::WrapInIf:
    return "wrap-in-if";
  case MutationKind::ReorderTopLevel:
    return "reorder-top-level";
  }
  return "<unknown>";
}

namespace {

const char *FreshNames[] = {"tmp", "buf", "delta", "scale", "bias",
                            "count", "flag", "cache"};
const char *FreshStrings[] = {"tanh", "sigmoid", "sgd", "same", "linear"};

class Mutator {
public:
  Mutator(const SignatureTable &Sig, Rng &R) : Sig(Sig), R(R) {
    StmtConsTag = Sig.lookup("StmtCons");
    NameTag = Sig.lookup("Name");
    ParamTag = Sig.lookup("Param");
    FuncDefTag = Sig.lookup("FuncDef");
    AttributeTag = Sig.lookup("Attribute");
    IntLitTag = Sig.lookup("IntLit");
    FloatLitTag = Sig.lookup("FloatLit");
    StrLitTag = Sig.lookup("StrLit");
    BinOpTag = Sig.lookup("BinOp");
    CompareTag = Sig.lookup("Compare");
    BoolOpTag = Sig.lookup("BoolOp");
    AugAssignTag = Sig.lookup("AugAssign");
    ModuleTag = Sig.lookup("Module");
  }

  bool apply(TreeSketch &Module, MutationKind Kind) {
    switch (Kind) {
    case MutationKind::RenameIdentifier:
      return renameIdentifier(Module);
    case MutationKind::ChangeNumber:
      return changeNumber(Module);
    case MutationKind::ChangeString:
      return changeString(Module);
    case MutationKind::ChangeOperator:
      return changeOperator(Module);
    case MutationKind::InsertStatement:
      return spliceBody(Module, [this](std::vector<TreeSketch> &Stmts) {
        Stmts.insert(Stmts.begin() +
                         static_cast<long>(R.below(Stmts.size() + 1)),
                     freshStatement());
        return true;
      });
    case MutationKind::DeleteStatement:
      return spliceBody(Module, [this](std::vector<TreeSketch> &Stmts) {
        if (Stmts.size() < 2)
          return false; // keep bodies non-empty
        Stmts.erase(Stmts.begin() + static_cast<long>(R.below(Stmts.size())));
        return true;
      });
    case MutationKind::DuplicateStatement:
      return spliceBody(Module, [this](std::vector<TreeSketch> &Stmts) {
        size_t I = R.below(Stmts.size());
        Stmts.insert(Stmts.begin() + static_cast<long>(I), Stmts[I]);
        return true;
      });
    case MutationKind::SwapStatements:
      return spliceBody(Module, [this](std::vector<TreeSketch> &Stmts) {
        if (Stmts.size() < 2)
          return false;
        size_t I = R.below(Stmts.size() - 1);
        std::swap(Stmts[I], Stmts[I + 1]);
        return true;
      });
    case MutationKind::MoveStatement:
      return moveStatement(Module);
    case MutationKind::WrapInIf:
      return spliceBody(Module, [this](std::vector<TreeSketch> &Stmts) {
        size_t I = R.below(Stmts.size());
        TreeSketch If;
        If.Tag = Sig.lookup("If");
        TreeSketch Cond;
        Cond.Tag = CompareTag;
        Cond.Lits.push_back(Literal("=="));
        TreeSketch Lhs;
        Lhs.Tag = NameTag;
        Lhs.Lits.push_back(Literal("flag"));
        TreeSketch Rhs;
        Rhs.Tag = Sig.lookup("BoolLit");
        Rhs.Lits.push_back(Literal(true));
        Cond.Kids = {Lhs, Rhs};
        If.Kids.push_back(std::move(Cond));
        If.Kids.push_back(vectorToList(Sig, "StmtCons", "StmtNil",
                                       {std::move(Stmts[I])}));
        TreeSketch Nil;
        Nil.Tag = Sig.lookup("StmtNil");
        If.Kids.push_back(std::move(Nil));
        Stmts[I] = std::move(If);
        return true;
      });
    case MutationKind::ReorderTopLevel:
      return reorderTopLevel(Module);
    }
    return false;
  }

private:
  //===--------------------------------------------------------------===//
  // Literal-level mutations
  //===--------------------------------------------------------------===//

  /// Renames every occurrence of one identifier, mimicking a refactoring
  /// commit. Candidates come from Name, Param, and Attribute nodes.
  bool renameIdentifier(TreeSketch &Module) {
    std::vector<std::string> Candidates;
    Module.foreach([&](TreeSketch &N) {
      if ((N.Tag == NameTag || N.Tag == ParamTag) && !N.Lits.empty())
        Candidates.push_back(N.Lits[0].asString());
    });
    if (Candidates.empty())
      return false;
    const std::string Old = Candidates[R.below(Candidates.size())];
    std::string New = std::string(FreshNames[R.below(8)]) + "_" +
                      std::to_string(R.below(1000));
    Module.foreach([&](TreeSketch &N) {
      if ((N.Tag == NameTag || N.Tag == ParamTag) && !N.Lits.empty() &&
          N.Lits[0].asString() == Old)
        N.Lits[0] = Literal(New);
    });
    return true;
  }

  bool changeNumber(TreeSketch &Module) {
    std::vector<TreeSketch *> Sites;
    Module.foreach([&](TreeSketch &N) {
      if (N.Tag == IntLitTag || N.Tag == FloatLitTag)
        Sites.push_back(&N);
    });
    if (Sites.empty())
      return false;
    TreeSketch *Site = Sites[R.below(Sites.size())];
    if (Site->Tag == IntLitTag)
      Site->Lits[0] = Literal(R.range(0, 1024));
    else
      Site->Lits[0] = Literal(static_cast<double>(R.below(1000)) / 100.0);
    return true;
  }

  bool changeString(TreeSketch &Module) {
    std::vector<TreeSketch *> Sites;
    Module.foreach([&](TreeSketch &N) {
      if (N.Tag == StrLitTag)
        Sites.push_back(&N);
    });
    if (Sites.empty())
      return false;
    Sites[R.below(Sites.size())]->Lits[0] =
        Literal(FreshStrings[R.below(5)]);
    return true;
  }

  bool changeOperator(TreeSketch &Module) {
    std::vector<TreeSketch *> Sites;
    Module.foreach([&](TreeSketch &N) {
      if (N.Tag == BinOpTag || N.Tag == CompareTag || N.Tag == BoolOpTag ||
          N.Tag == AugAssignTag)
        Sites.push_back(&N);
    });
    if (Sites.empty())
      return false;
    TreeSketch *Site = Sites[R.below(Sites.size())];
    const std::string Op = Site->Lits[0].asString();
    std::string New;
    if (Op == "+")
      New = "-";
    else if (Op == "-")
      New = "+";
    else if (Op == "*")
      New = "/";
    else if (Op == "/")
      New = "*";
    else if (Op == "==")
      New = "!=";
    else if (Op == "!=")
      New = "==";
    else if (Op == "<")
      New = "<=";
    else if (Op == "<=")
      New = "<";
    else if (Op == ">")
      New = ">=";
    else if (Op == ">=")
      New = ">";
    else if (Op == "and")
      New = "or";
    else if (Op == "or")
      New = "and";
    else
      return false;
    Site->Lits[0] = Literal(New);
    return true;
  }

  //===--------------------------------------------------------------===//
  // Statement-list mutations
  //===--------------------------------------------------------------===//

  /// Collects pointers to every statement-list head (the StmtList kid of
  /// Module/FuncDef/ClassDef/If/While/For) that currently holds at least
  /// one statement.
  std::vector<TreeSketch *> bodyHeads(TreeSketch &Module,
                                      bool AllowEmpty = false) {
    std::vector<TreeSketch *> Heads;
    Module.foreach([&](TreeSketch &N) {
      const TagSignature &TagSig = Sig.signature(N.Tag);
      for (size_t I = 0, E = N.Kids.size(); I != E; ++I) {
        if (Sig.name(TagSig.Kids[I].Sort) != "StmtList")
          continue;
        if (AllowEmpty || Sig.name(N.Kids[I].Tag) == "StmtCons")
          Heads.push_back(&N.Kids[I]);
      }
    });
    return Heads;
  }

  /// Picks a random non-empty body, lets \p Edit splice its statement
  /// vector, and writes the list back.
  bool spliceBody(TreeSketch &Module,
                  const std::function<bool(std::vector<TreeSketch> &)> &Edit) {
    std::vector<TreeSketch *> Heads = bodyHeads(Module);
    if (Heads.empty())
      return false;
    TreeSketch *Head = Heads[R.below(Heads.size())];
    std::vector<TreeSketch> Stmts = listToVector(Sig, *Head);
    if (Stmts.empty() || !Edit(Stmts))
      return false;
    *Head = vectorToList(Sig, "StmtCons", "StmtNil", std::move(Stmts));
    return true;
  }

  /// Moves one statement from one body to another (or within one),
  /// exercising truediff's subtree moves.
  bool moveStatement(TreeSketch &Module) {
    std::vector<TreeSketch *> Heads = bodyHeads(Module);
    if (Heads.empty())
      return false;
    TreeSketch *From = Heads[R.below(Heads.size())];
    std::vector<TreeSketch> FromStmts = listToVector(Sig, *From);
    if (FromStmts.size() < 2)
      return false; // keep the source body non-empty
    size_t I = R.below(FromStmts.size());
    TreeSketch Moved = std::move(FromStmts[I]);
    FromStmts.erase(FromStmts.begin() + static_cast<long>(I));
    *From = vectorToList(Sig, "StmtCons", "StmtNil", std::move(FromStmts));

    // Re-collect heads: `From`'s subtree changed; allow empty targets.
    std::vector<TreeSketch *> Targets = bodyHeads(Module, /*AllowEmpty=*/true);
    TreeSketch *To = Targets[R.below(Targets.size())];
    std::vector<TreeSketch> ToStmts = listToVector(Sig, *To);
    ToStmts.insert(ToStmts.begin() + static_cast<long>(
                                         R.below(ToStmts.size() + 1)),
                   std::move(Moved));
    *To = vectorToList(Sig, "StmtCons", "StmtNil", std::move(ToStmts));
    return true;
  }

  bool reorderTopLevel(TreeSketch &Module) {
    assert(Module.Tag == ModuleTag);
    std::vector<TreeSketch> Stmts = listToVector(Sig, Module.Kids[0]);
    if (Stmts.size() < 2)
      return false;
    size_t From = R.below(Stmts.size());
    TreeSketch Moved = std::move(Stmts[From]);
    Stmts.erase(Stmts.begin() + static_cast<long>(From));
    Stmts.insert(Stmts.begin() + static_cast<long>(R.below(Stmts.size() + 1)),
                 std::move(Moved));
    Module.Kids[0] = vectorToList(Sig, "StmtCons", "StmtNil",
                                  std::move(Stmts));
    return true;
  }

  /// A small fresh statement for insertions.
  TreeSketch freshStatement() {
    TreeSketch Assign;
    Assign.Tag = Sig.lookup("Assign");
    TreeSketch Target;
    Target.Tag = NameTag;
    Target.Lits.push_back(
        Literal(std::string(FreshNames[R.below(8)]) + "_" +
                std::to_string(R.below(1000))));
    TreeSketch Value;
    if (R.chance(50)) {
      Value.Tag = IntLitTag;
      Value.Lits.push_back(Literal(R.range(0, 512)));
    } else {
      Value.Tag = Sig.lookup("Call");
      TreeSketch Callee;
      Callee.Tag = NameTag;
      Callee.Lits.push_back(Literal("build"));
      TreeSketch Nil;
      Nil.Tag = Sig.lookup("ExprNil");
      Value.Kids = {std::move(Callee), std::move(Nil)};
    }
    Assign.Kids = {std::move(Target), std::move(Value)};
    return Assign;
  }

  const SignatureTable &Sig;
  Rng &R;
  TagId StmtConsTag, NameTag, ParamTag, FuncDefTag, AttributeTag, IntLitTag,
      FloatLitTag, StrLitTag, BinOpTag, CompareTag, BoolOpTag, AugAssignTag,
      ModuleTag;
};

} // namespace

Tree *truediff::corpus::mutateModule(TreeContext &Ctx, Rng &R,
                                     const Tree *Module,
                                     const MutatorOptions &Opts,
                                     MutationReport *Report) {
  TreeSketch Sketch = TreeSketch::of(Module);
  Mutator M(Ctx.signatures(), R);

  unsigned NumOps = static_cast<unsigned>(
      R.range(static_cast<int64_t>(Opts.MinOps),
              static_cast<int64_t>(Opts.MaxOps)));
  unsigned Applied = 0;
  unsigned Attempts = 0;
  while (Applied < NumOps && Attempts < NumOps * 8) {
    ++Attempts;
    auto Kind = static_cast<MutationKind>(R.below(11));
    if (M.apply(Sketch, Kind)) {
      ++Applied;
      if (Report != nullptr)
        Report->Applied.push_back(Kind);
    }
  }
  return Sketch.build(Ctx);
}

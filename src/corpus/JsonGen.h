//===- corpus/JsonGen.h - Random JSON documents and edits -------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workload generator for the JSON substrate: nested configuration-style
/// documents and realistic document edits (value changes, member
/// insertion/removal, array splices, member moves). Exercises the
/// paper's database use case (Section 1) on a second signature.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_CORPUS_JSONGEN_H
#define TRUEDIFF_CORPUS_JSONGEN_H

#include "support/Rng.h"
#include "tree/Tree.h"

namespace truediff {
namespace corpus {

struct JsonGenOptions {
  unsigned MaxDepth = 4;
  unsigned MaxFanout = 6;
};

/// Generates a random JSON document tree in \p Ctx (signature:
/// json::makeJsonSignature()).
Tree *generateJson(TreeContext &Ctx, Rng &R,
                   const JsonGenOptions &Opts = JsonGenOptions());

/// Returns an edited copy of \p Doc (fresh tree; input untouched),
/// applying 1..MaxOps random document edits.
Tree *mutateJson(TreeContext &Ctx, Rng &R, const Tree *Doc,
                 unsigned MaxOps = 3);

} // namespace corpus
} // namespace truediff

#endif // TRUEDIFF_CORPUS_JSONGEN_H

//===- corpus/Corpus.cpp - Synthetic commit-history corpus -----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "python/Python.h"

using namespace truediff;
using namespace truediff::corpus;

std::vector<CommitPair>
truediff::corpus::buildCommitCorpus(const CorpusOptions &Opts) {
  SignatureTable Sig = python::makePythonSignature();
  Rng R(Opts.Seed);

  std::vector<CommitPair> Pairs;
  Pairs.reserve(Opts.NumPairs);

  while (Pairs.size() < Opts.NumPairs) {
    // One fresh file, then a chain of commits against it. Each file uses
    // its own context so arena memory is bounded per history.
    TreeContext Ctx(Sig);
    Tree *Current = generateModule(Ctx, R, Opts.Gen);
    std::string CurrentSrc = python::unparsePython(Sig, Current);

    for (unsigned Commit = 0;
         Commit != Opts.CommitsPerFile && Pairs.size() < Opts.NumPairs;
         ++Commit) {
      MutationReport Report;
      Tree *Next = mutateModule(Ctx, R, Current, Opts.Mut, &Report);
      std::string NextSrc = python::unparsePython(Sig, Next);
      if (NextSrc != CurrentSrc)
        Pairs.push_back(CommitPair{CurrentSrc, NextSrc, Report.Applied});
      Current = Next;
      CurrentSrc = std::move(NextSrc);
    }
  }
  return Pairs;
}

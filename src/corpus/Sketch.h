//===- corpus/Sketch.h - Editable tree sketches -----------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TreeSketch is a plain, freely editable value-type mirror of a Tree.
/// The corpus mutator edits sketches (splice statement lists, rename
/// identifiers, ...) and then materializes the result as a fresh Tree,
/// because Tree nodes are arena-owned and carry derived data that must
/// stay consistent.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_CORPUS_SKETCH_H
#define TRUEDIFF_CORPUS_SKETCH_H

#include "tree/Tree.h"

#include <functional>
#include <vector>

namespace truediff {
namespace corpus {

/// Editable mirror of a tree node.
struct TreeSketch {
  TagId Tag = InvalidSymbol;
  std::vector<TreeSketch> Kids;
  std::vector<Literal> Lits;

  /// Deep-copies \p T into a sketch.
  static TreeSketch of(const Tree *T);

  /// Materializes the sketch as a fresh tree in \p Ctx.
  Tree *build(TreeContext &Ctx) const;

  /// Applies \p Fn to this sketch and all descendants, pre-order.
  void foreach(const std::function<void(TreeSketch &)> &Fn);

  /// Number of nodes.
  size_t size() const;
};

/// Flattens a cons list (XCons/XNil encoding) into element sketches.
std::vector<TreeSketch> listToVector(const SignatureTable &Sig,
                                     const TreeSketch &List);

/// Rebuilds a cons list from elements; \p ConsTag/\p NilTag name the
/// encoding (e.g. "StmtCons"/"StmtNil").
TreeSketch vectorToList(const SignatureTable &Sig, std::string_view ConsTag,
                        std::string_view NilTag,
                        std::vector<TreeSketch> Elements);

} // namespace corpus
} // namespace truediff

#endif // TRUEDIFF_CORPUS_SKETCH_H

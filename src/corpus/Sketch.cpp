//===- corpus/Sketch.cpp - Editable tree sketches --------------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Sketch.h"

#include <cassert>

using namespace truediff;
using namespace truediff::corpus;

TreeSketch TreeSketch::of(const Tree *T) {
  TreeSketch S;
  S.Tag = T->tag();
  S.Lits = T->lits();
  S.Kids.reserve(T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    S.Kids.push_back(TreeSketch::of(T->kid(I)));
  return S;
}

Tree *TreeSketch::build(TreeContext &Ctx) const {
  std::vector<Tree *> Built;
  Built.reserve(Kids.size());
  for (const TreeSketch &Kid : Kids)
    Built.push_back(Kid.build(Ctx));
  return Ctx.make(Tag, std::move(Built), Lits);
}

void TreeSketch::foreach(const std::function<void(TreeSketch &)> &Fn) {
  Fn(*this);
  for (TreeSketch &Kid : Kids)
    Kid.foreach(Fn);
}

size_t TreeSketch::size() const {
  size_t N = 1;
  for (const TreeSketch &Kid : Kids)
    N += Kid.size();
  return N;
}

std::vector<TreeSketch>
truediff::corpus::listToVector(const SignatureTable &Sig,
                               const TreeSketch &List) {
  std::vector<TreeSketch> Out;
  const TreeSketch *Cur = &List;
  while (Cur->Kids.size() == 2 &&
         Sig.name(Cur->Tag).ends_with("Cons")) {
    Out.push_back(Cur->Kids[0]);
    Cur = &Cur->Kids[1];
  }
  return Out;
}

TreeSketch truediff::corpus::vectorToList(const SignatureTable &Sig,
                                          std::string_view ConsTag,
                                          std::string_view NilTag,
                                          std::vector<TreeSketch> Elements) {
  TreeSketch List;
  List.Tag = Sig.lookup(NilTag);
  assert(List.Tag != InvalidSymbol);
  TagId Cons = Sig.lookup(ConsTag);
  assert(Cons != InvalidSymbol);
  for (size_t I = Elements.size(); I-- > 0;) {
    TreeSketch Node;
    Node.Tag = Cons;
    Node.Kids.push_back(std::move(Elements[I]));
    Node.Kids.push_back(std::move(List));
    List = std::move(Node);
  }
  return List;
}

//===- corpus/PyGen.h - Random Python program generator ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random generator for Python-subset modules. The paper
/// evaluates on the keras commit history; since that corpus is not
/// available offline, this generator produces deep-learning-flavoured
/// modules (imports, layer-builder functions, classes with methods,
/// training loops) whose ASTs have realistic shapes -- nested bodies,
/// repeated call patterns, shared sub-expressions -- so diffing exercises
/// the same code paths (see DESIGN.md, substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_CORPUS_PYGEN_H
#define TRUEDIFF_CORPUS_PYGEN_H

#include "support/Rng.h"
#include "tree/Tree.h"

namespace truediff {
namespace corpus {

struct PyGenOptions {
  unsigned NumImports = 3;
  unsigned NumFunctions = 6;
  unsigned NumClasses = 2;
  unsigned MethodsPerClass = 3;
  unsigned StmtsPerBody = 5;
  unsigned MaxExprDepth = 3;
  unsigned MaxBlockDepth = 2;
};

/// Generates a random module tree in \p Ctx (signature:
/// python::makePythonSignature()).
Tree *generateModule(TreeContext &Ctx, Rng &R,
                     const PyGenOptions &Opts = PyGenOptions());

/// Generates a module with at least \p MinNodes AST nodes by appending
/// functions; used by the linear-scaling bench (DESIGN.md E5).
Tree *generateModuleOfSize(TreeContext &Ctx, Rng &R, uint64_t MinNodes);

} // namespace corpus
} // namespace truediff

#endif // TRUEDIFF_CORPUS_PYGEN_H

//===- corpus/PyGen.cpp - Random Python program generator ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/PyGen.h"

#include <string>
#include <vector>

using namespace truediff;
using namespace truediff::corpus;

namespace {

const char *ModuleNames[] = {"keras",  "numpy",      "os",
                             "math",   "tensorflow", "keras.layers",
                             "random", "json"};
const char *VarNames[] = {"x",      "y",       "model",  "layer", "units",
                          "result", "total",   "inputs", "batch", "loss",
                          "epoch",  "weights", "data",   "rate",  "acc"};
const char *FuncNames[] = {"build",      "train_step", "evaluate",
                           "get_config", "call",       "fit",
                           "compile",    "predict",    "update_state",
                           "reset",      "load",       "save",
                           "normalize",  "dense_block"};
const char *AttrNames[] = {"shape", "layers", "dtype", "size", "name",
                           "units", "output", "state"};
const char *ClassNames[] = {"Model", "Dense", "Layer", "Optimizer",
                            "Callback", "Metric"};
const char *StrValues[] = {"relu", "softmax", "adam", "mse", "valid",
                           "channels_last", "float32"};
const char *BinOps[] = {"+", "-", "*", "/"};
const char *CmpOps[] = {"==", "!=", "<", "<=", ">", ">="};

/// Tree-building helper bound to one generation run.
class Generator {
public:
  Generator(TreeContext &Ctx, Rng &R, const PyGenOptions &Opts)
      : Ctx(Ctx), R(R), Opts(Opts) {}

  Tree *module() {
    std::vector<Tree *> Stmts;
    for (unsigned I = 0; I != Opts.NumImports; ++I)
      Stmts.push_back(import());
    for (unsigned I = 0; I != Opts.NumFunctions; ++I)
      Stmts.push_back(funcDef());
    for (unsigned I = 0; I != Opts.NumClasses; ++I)
      Stmts.push_back(classDef());
    return Ctx.make("Module", {stmtList(std::move(Stmts))}, {});
  }

  Tree *funcDef() {
    std::vector<Tree *> Params;
    unsigned NumParams = static_cast<unsigned>(R.range(0, 3));
    for (unsigned I = 0; I != NumParams; ++I)
      Params.push_back(
          Ctx.make("Param", {}, {Literal(pick(VarNames))}));
    return Ctx.make("FuncDef",
                    {paramList(std::move(Params)),
                     body(Opts.MaxBlockDepth, /*InFunction=*/true)},
                    {Literal(pick(FuncNames) + std::string("_") +
                             std::to_string(R.below(100)))});
  }

private:
  template <size_t N> const char *pick(const char *(&Pool)[N]) {
    return Pool[R.below(N)];
  }

  Tree *stmtList(std::vector<Tree *> Stmts) {
    Tree *List = Ctx.make("StmtNil", {}, {});
    for (size_t I = Stmts.size(); I-- > 0;)
      List = Ctx.make("StmtCons", {Stmts[I], List}, {});
    return List;
  }

  Tree *exprList(std::vector<Tree *> Exprs) {
    Tree *List = Ctx.make("ExprNil", {}, {});
    for (size_t I = Exprs.size(); I-- > 0;)
      List = Ctx.make("ExprCons", {Exprs[I], List}, {});
    return List;
  }

  Tree *paramList(std::vector<Tree *> Params) {
    Tree *List = Ctx.make("ParamNil", {}, {});
    for (size_t I = Params.size(); I-- > 0;)
      List = Ctx.make("ParamCons", {Params[I], List}, {});
    return List;
  }

  Tree *import() {
    if (R.chance(60))
      return Ctx.make("Import", {}, {Literal(pick(ModuleNames))});
    return Ctx.make("ImportFrom", {},
                    {Literal(pick(ModuleNames)), Literal(pick(FuncNames))});
  }

  Tree *classDef() {
    std::vector<Tree *> Methods;
    for (unsigned I = 0; I != Opts.MethodsPerClass; ++I)
      Methods.push_back(funcDef());
    std::vector<Tree *> Bases;
    if (R.chance(70))
      Bases.push_back(name(pick(ClassNames)));
    return Ctx.make("ClassDef",
                    {exprList(std::move(Bases)),
                     stmtList(std::move(Methods))},
                    {Literal(pick(ClassNames) + std::string("_") +
                             std::to_string(R.below(100)))});
  }

  Tree *body(unsigned Depth, bool InFunction) {
    std::vector<Tree *> Stmts;
    unsigned Count = 1 + static_cast<unsigned>(R.below(Opts.StmtsPerBody));
    for (unsigned I = 0; I != Count; ++I)
      Stmts.push_back(stmt(Depth, InFunction));
    if (InFunction && R.chance(60))
      Stmts.push_back(Ctx.make("Return", {expr(2)}, {}));
    return stmtList(std::move(Stmts));
  }

  Tree *stmt(unsigned Depth, bool InFunction) {
    unsigned Choice = static_cast<unsigned>(R.below(Depth > 0 ? 10 : 7));
    switch (Choice) {
    case 0:
    case 1:
    case 2:
      return Ctx.make("Assign", {name(pick(VarNames)), expr(Opts.MaxExprDepth)},
                      {});
    case 3:
      return Ctx.make("AugAssign", {name(pick(VarNames)), expr(2)},
                      {Literal(pick(BinOps))});
    case 4:
      return Ctx.make("ExprStmt", {callExpr(Opts.MaxExprDepth)}, {});
    case 5:
      return Ctx.make("Assert", {compare()}, {});
    case 6:
      return Ctx.make("Pass", {}, {});
    case 7: // if
      return Ctx.make("If",
                      {compare(), body(Depth - 1, InFunction),
                       R.chance(50) ? body(Depth - 1, InFunction)
                                    : Ctx.make("StmtNil", {}, {})},
                      {});
    case 8: // for
      return Ctx.make("For",
                      {name(pick(VarNames)),
                       Ctx.make("Call",
                                {name("range"), exprList({intLit()})}, {}),
                       body(Depth - 1, InFunction)},
                      {});
    default: // while
      return Ctx.make("While", {compare(), body(Depth - 1, InFunction)},
                      {});
    }
  }

  Tree *name(const std::string &Id) {
    return Ctx.make("Name", {}, {Literal(Id)});
  }

  Tree *intLit() {
    return Ctx.make("IntLit", {}, {Literal(R.range(0, 256))});
  }

  Tree *compare() {
    return Ctx.make("Compare", {expr(1), expr(1)}, {Literal(pick(CmpOps))});
  }

  Tree *callExpr(unsigned Depth) {
    Tree *Callee = R.chance(50)
                       ? name(pick(FuncNames))
                       : Ctx.make("Attribute", {name(pick(VarNames))},
                                  {Literal(pick(FuncNames))});
    std::vector<Tree *> Args;
    unsigned NumArgs = static_cast<unsigned>(R.range(0, 3));
    for (unsigned I = 0; I != NumArgs; ++I)
      Args.push_back(expr(Depth > 0 ? Depth - 1 : 0));
    return Ctx.make("Call", {Callee, exprList(std::move(Args))}, {});
  }

  Tree *expr(unsigned Depth) {
    if (Depth == 0 || R.chance(35)) {
      switch (R.below(5)) {
      case 0:
        return intLit();
      case 1:
        return Ctx.make("FloatLit", {},
                        {Literal(static_cast<double>(R.below(100)) / 10.0)});
      case 2:
        return Ctx.make("StrLit", {}, {Literal(pick(StrValues))});
      case 3:
        return name(pick(VarNames));
      default:
        return Ctx.make("Attribute", {name(pick(VarNames))},
                        {Literal(pick(AttrNames))});
      }
    }
    switch (R.below(6)) {
    case 0:
    case 1:
      return Ctx.make("BinOp", {expr(Depth - 1), expr(Depth - 1)},
                      {Literal(pick(BinOps))});
    case 2:
      return callExpr(Depth - 1);
    case 3:
      return Ctx.make("Subscript", {name(pick(VarNames)), intLit()}, {});
    case 4:
      return Ctx.make("ListExpr",
                      {exprList({expr(Depth - 1), expr(Depth - 1)})}, {});
    default:
      return Ctx.make("UnaryOp", {expr(Depth - 1)}, {Literal("-")});
    }
  }

  TreeContext &Ctx;
  Rng &R;
  const PyGenOptions &Opts;
};

} // namespace

Tree *truediff::corpus::generateModule(TreeContext &Ctx, Rng &R,
                                       const PyGenOptions &Opts) {
  return Generator(Ctx, R, Opts).module();
}

Tree *truediff::corpus::generateModuleOfSize(TreeContext &Ctx, Rng &R,
                                             uint64_t MinNodes) {
  PyGenOptions Opts;
  Opts.NumImports = 2;
  Opts.NumClasses = 0;
  Opts.NumFunctions = 1;

  // Generate functions until the module body is large enough, then wrap
  // them in one module.
  Generator Gen(Ctx, R, Opts);
  std::vector<Tree *> Funcs;
  uint64_t Nodes = 0;
  while (Nodes < MinNodes) {
    Tree *F = Gen.funcDef();
    Nodes += F->size() + 1;
    Funcs.push_back(F);
  }
  Tree *List = Ctx.make("StmtNil", {}, {});
  for (size_t I = Funcs.size(); I-- > 0;)
    List = Ctx.make("StmtCons", {Funcs[I], List}, {});
  return Ctx.make("Module", {List}, {});
}

//===- corpus/JsonGen.cpp - Random JSON documents and edits ----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/JsonGen.h"

#include "corpus/Sketch.h"

using namespace truediff;
using namespace truediff::corpus;

namespace {

const char *Keys[] = {"name",   "rate",  "mode",    "layers", "units",
                      "config", "jobs",  "enabled", "id",     "path",
                      "limit",  "cache", "shards",  "epochs"};
const char *Strings[] = {"fast", "slow", "auto", "relu", "adam",
                         "prod", "dev",  "gpu",  "cpu"};

class JsonGenerator {
public:
  JsonGenerator(TreeContext &Ctx, Rng &R, const JsonGenOptions &Opts)
      : Ctx(Ctx), R(R), Opts(Opts) {}

  Tree *value(unsigned Depth) {
    if (Depth == 0 || R.chance(35))
      return scalar();
    return R.chance(50) ? array(Depth) : object(Depth);
  }

private:
  Tree *scalar() {
    switch (R.below(4)) {
    case 0:
      return Ctx.make("JNull", {}, {});
    case 1:
      return Ctx.make("JBool", {}, {Literal(R.chance(50))});
    case 2:
      return Ctx.make(
          "JNumber", {},
          {Literal(static_cast<double>(R.range(0, 1000)) / 10.0)});
    default:
      return Ctx.make("JString", {}, {Literal(Strings[R.below(9)])});
    }
  }

  Tree *array(unsigned Depth) {
    Tree *List = Ctx.make("ElemNil", {}, {});
    for (unsigned I = 1 + static_cast<unsigned>(R.below(Opts.MaxFanout));
         I-- > 0;)
      List = Ctx.make("ElemCons", {value(Depth - 1), List}, {});
    return Ctx.make("JArray", {List}, {});
  }

  Tree *object(unsigned Depth) {
    Tree *List = Ctx.make("MemberNil", {}, {});
    for (unsigned I = 1 + static_cast<unsigned>(R.below(Opts.MaxFanout));
         I-- > 0;) {
      Tree *Member = Ctx.make("Member", {value(Depth - 1)},
                              {Literal(Keys[R.below(14)])});
      List = Ctx.make("MemberCons", {Member, List}, {});
    }
    return Ctx.make("JObject", {List}, {});
  }

  TreeContext &Ctx;
  Rng &R;
  const JsonGenOptions &Opts;
};

/// Sketch-level JSON edits.
class JsonMutator {
public:
  JsonMutator(const SignatureTable &Sig, Rng &R) : Sig(Sig), R(R) {
    NumberTag = Sig.lookup("JNumber");
    StringTag = Sig.lookup("JString");
    BoolTag = Sig.lookup("JBool");
    MemberTag = Sig.lookup("Member");
  }

  bool apply(TreeSketch &Doc) {
    switch (R.below(6)) {
    case 0: // change a number
      return changeLit(Doc, NumberTag, [&] {
        return Literal(static_cast<double>(R.range(0, 1000)) / 10.0);
      });
    case 1: // change a string
      return changeLit(Doc, StringTag,
                       [&] { return Literal(Strings[R.below(9)]); });
    case 2: // flip a bool
      return changeLit(Doc, BoolTag, [&] { return Literal(R.chance(50)); });
    case 3: // rename a member key
      return changeLit(Doc, MemberTag,
                       [&] { return Literal(Keys[R.below(14)]); });
    case 4: // splice an array: insert, delete, or rotate one element
      return spliceList(Doc, "ElemCons", "ElemNil", [&](auto &Elems) {
        if (Elems.empty() || R.chance(50)) {
          TreeSketch Fresh;
          Fresh.Tag = NumberTag;
          Fresh.Lits.push_back(
              Literal(static_cast<double>(R.range(0, 99))));
          Elems.insert(Elems.begin() +
                           static_cast<long>(R.below(Elems.size() + 1)),
                       std::move(Fresh));
        } else if (Elems.size() >= 2 && R.chance(50)) {
          std::rotate(Elems.begin(), Elems.begin() + 1, Elems.end());
        } else {
          Elems.erase(Elems.begin() +
                      static_cast<long>(R.below(Elems.size())));
        }
        return true;
      });
    default: // splice an object: move or remove one member
      return spliceList(Doc, "MemberCons", "MemberNil", [&](auto &Members) {
        if (Members.size() < 2)
          return false;
        if (R.chance(60)) {
          size_t From = R.below(Members.size());
          TreeSketch Moved = std::move(Members[From]);
          Members.erase(Members.begin() + static_cast<long>(From));
          Members.insert(Members.begin() +
                             static_cast<long>(R.below(Members.size() + 1)),
                         std::move(Moved));
        } else {
          Members.erase(Members.begin() +
                        static_cast<long>(R.below(Members.size())));
        }
        return true;
      });
    }
  }

private:
  bool changeLit(TreeSketch &Doc, TagId Tag,
                 const std::function<Literal()> &Fresh) {
    std::vector<TreeSketch *> Sites;
    Doc.foreach([&](TreeSketch &N) {
      if (N.Tag == Tag)
        Sites.push_back(&N);
    });
    if (Sites.empty())
      return false;
    Sites[R.below(Sites.size())]->Lits[0] = Fresh();
    return true;
  }

  bool
  spliceList(TreeSketch &Doc, std::string_view ConsName,
             std::string_view NilName,
             const std::function<bool(std::vector<TreeSketch> &)> &Edit) {
    TagId Cons = Sig.lookup(ConsName);
    TagId Nil = Sig.lookup(NilName);
    // List heads: kids of JArray/JObject nodes.
    std::vector<TreeSketch *> Heads;
    Doc.foreach([&](TreeSketch &N) {
      for (TreeSketch &Kid : N.Kids)
        if (Kid.Tag == Cons || Kid.Tag == Nil)
          Heads.push_back(&Kid);
    });
    if (Heads.empty())
      return false;
    TreeSketch *Head = Heads[R.below(Heads.size())];
    std::vector<TreeSketch> Elems = listToVector(Sig, *Head);
    if (!Edit(Elems))
      return false;
    *Head = vectorToList(Sig, ConsName, NilName, std::move(Elems));
    return true;
  }

  const SignatureTable &Sig;
  Rng &R;
  TagId NumberTag, StringTag, BoolTag, MemberTag;
};

} // namespace

Tree *truediff::corpus::generateJson(TreeContext &Ctx, Rng &R,
                                     const JsonGenOptions &Opts) {
  // Top level is always an object, like real configuration documents.
  JsonGenerator Gen(Ctx, R, Opts);
  Tree *List = Ctx.make("MemberNil", {}, {});
  for (unsigned I = 0; I != Opts.MaxFanout; ++I) {
    Tree *Member = Ctx.make("Member", {Gen.value(Opts.MaxDepth)},
                            {Literal(Keys[R.below(14)])});
    List = Ctx.make("MemberCons", {Member, List}, {});
  }
  return Ctx.make("JObject", {List}, {});
}

Tree *truediff::corpus::mutateJson(TreeContext &Ctx, Rng &R, const Tree *Doc,
                                   unsigned MaxOps) {
  TreeSketch Sketch = TreeSketch::of(Doc);
  JsonMutator M(Ctx.signatures(), R);
  unsigned Ops = 1 + static_cast<unsigned>(R.below(MaxOps));
  unsigned Applied = 0;
  for (unsigned Attempt = 0; Applied < Ops && Attempt < Ops * 8; ++Attempt)
    Applied += M.apply(Sketch);
  return Sketch.build(Ctx);
}

//===- corpus/Mutator.h - Commit-simulating tree mutations ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies realistic edit operations to Python-subset modules, simulating
/// the commits of the paper's keras corpus: identifier renames, literal
/// tweaks, operator changes, statement insertion/deletion/duplication,
/// statement moves within and across bodies, wrapping in conditionals,
/// and top-level reordering. Every operation preserves well-typedness.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_CORPUS_MUTATOR_H
#define TRUEDIFF_CORPUS_MUTATOR_H

#include "support/Rng.h"
#include "tree/Tree.h"

#include <string>
#include <vector>

namespace truediff {
namespace corpus {

enum class MutationKind : uint8_t {
  RenameIdentifier,
  ChangeNumber,
  ChangeString,
  ChangeOperator,
  InsertStatement,
  DeleteStatement,
  DuplicateStatement,
  SwapStatements,
  MoveStatement,
  WrapInIf,
  ReorderTopLevel,
};

const char *mutationKindName(MutationKind Kind);

struct MutatorOptions {
  unsigned MinOps = 1;
  unsigned MaxOps = 4;
};

/// Names of the operations actually applied (some draws are no-ops when
/// the tree offers no applicable site).
struct MutationReport {
  std::vector<MutationKind> Applied;
};

/// Returns a mutated copy of \p Module (a fresh tree in \p Ctx); the
/// input is not modified.
Tree *mutateModule(TreeContext &Ctx, Rng &R, const Tree *Module,
                   const MutatorOptions &Opts = MutatorOptions(),
                   MutationReport *Report = nullptr);

} // namespace corpus
} // namespace truediff

#endif // TRUEDIFF_CORPUS_MUTATOR_H

//===- corpus/Corpus.h - Synthetic commit-history corpus --------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the evaluation corpus: a set of (before, after) source-file
/// pairs produced by simulating commit histories over generated Python
/// modules. This substitutes for the paper's 2393 changed keras files
/// from 500 commits (see DESIGN.md). Pairs are plain source text, so
/// every benchmark runs the full pipeline: parse, hash, diff.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_CORPUS_CORPUS_H
#define TRUEDIFF_CORPUS_CORPUS_H

#include "corpus/Mutator.h"
#include "corpus/PyGen.h"

#include <string>
#include <vector>

namespace truediff {
namespace corpus {

/// One changed file in one commit.
struct CommitPair {
  std::string Before;
  std::string After;
  /// Which mutation kinds produced After from Before.
  std::vector<MutationKind> Mutations;
};

struct CorpusOptions {
  /// Total number of (before, after) pairs.
  unsigned NumPairs = 300;
  /// Consecutive commits simulated per generated file; pairs chain:
  /// commit i's After is commit i+1's Before.
  unsigned CommitsPerFile = 10;
  uint64_t Seed = 42;
  PyGenOptions Gen;
  MutatorOptions Mut;
};

/// Builds the corpus deterministically from the seed.
std::vector<CommitPair> buildCommitCorpus(const CorpusOptions &Opts);

} // namespace corpus
} // namespace truediff

#endif // TRUEDIFF_CORPUS_CORPUS_H

//===- replica/Leader.cpp - Replication leader endpoint --------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "replica/Leader.h"

#include <cstdio>

using namespace truediff;
using namespace truediff::net;
using namespace truediff::replica;

Leader::Leader(EventLoop &Loop, ReplicationLog &Log, Config C)
    : Loop(Loop), Log(Log), Cfg(C) {
  Log.setOnRecord([this](const RecordMsg &R) {
    // Invoked under the log lock in seq order; posting preserves that
    // order on the loop thread.
    this->Loop.post([this, R] { broadcast(R); });
  });
}

bool Leader::start(std::string *Err) {
  uint16_t Port = Loop.listen(
      Cfg.Port,
      [this](Conn &C) {
        // Replication links are idle between commits by design; no idle
        // timeout.
        States.emplace(C.id(), FollowerConn{});
        Followers.emplace(C.id(), &C);
        Conn::Handlers H;
        H.OnData = [this](Conn &C) { onData(C); };
        H.OnClose = [this](Conn &C) {
          auto It = States.find(C.id());
          if (It != States.end() && It->second.Live)
            NumLive.fetch_sub(1);
          States.erase(C.id());
          Followers.erase(C.id());
          std::lock_guard<std::mutex> Lock(AckMu);
          AckedSeqs.erase(C.id());
        };
        C.setHandlers(std::move(H));
      },
      Err);
  if (Port == 0)
    return false;
  BoundPort = Port;
  return true;
}

void Leader::onData(Conn &C) {
  while (parseOne(C)) {
  }
}

bool Leader::parseOne(Conn &C) {
  if (C.closing())
    return false;
  std::string &In = C.in();
  if (In.empty())
    return false;
  if (static_cast<uint8_t>(In[0]) != ReplMagic) {
    C.closeNow();
    return false;
  }
  FrameHeader H;
  switch (peekFrame(In, Cfg.MaxFrameBytes, H)) {
  case FramePeek::NeedMore:
    return false;
  case FramePeek::TooLarge:
    C.closeNow();
    return false;
  case FramePeek::Ok:
    break;
  }
  std::string Payload(In.substr(FrameHeaderBytes, H.Len));
  In.erase(0, FrameHeaderBytes + H.Len);

  switch (static_cast<ReplFrame>(H.Type)) {
  case ReplFrame::FollowerHello: {
    FollowerHello Hello;
    if (!decodeFollowerHello(Payload, Hello)) {
      C.closeNow();
      return false;
    }
    handshake(C, Hello);
    return true;
  }
  case ReplFrame::ResyncReq: {
    ResyncReqMsg Req;
    if (!decodeResyncReq(Payload, Req)) {
      C.closeNow();
      return false;
    }
    C.send(encodeDocSnapshot(Log.snapshotDoc(Req.Doc)));
    SnapshotsSent.fetch_add(1);
    ResyncsServed.fetch_add(1);
    return true;
  }
  case ReplFrame::Ack: {
    AckMsg M;
    if (!decodeAck(Payload, M)) {
      C.closeNow();
      return false;
    }
    std::lock_guard<std::mutex> Lock(AckMu);
    uint64_t &Acked = AckedSeqs[C.id()];
    if (M.Seq > Acked)
      Acked = M.Seq;
    return true;
  }
  default:
    // A follower has no business sending anything else.
    C.closeNow();
    return false;
  }
}

void Leader::handshake(Conn &C, const FollowerHello &Hello) {
  // Self-fencing: a follower that has seen a higher epoch proves some
  // other node was promoted past us. Serving it would fork the history;
  // instead report staleness (so the wiring can demote this node's role)
  // and drop the link -- but announce our stale epoch first, so the
  // follower observes a typed stale-leader rejection rather than a
  // bare connection loss.
  if (Hello.MaxEpochSeen > Cfg.Epoch) {
    FencedHellos.fetch_add(1);
    if (Cfg.OnFenced)
      Cfg.OnFenced(Hello.MaxEpochSeen);
    LeaderHello LH;
    LH.Epoch = Cfg.Epoch;
    LH.CurrentSeq = Log.currentSeq();
    C.send(encodeLeaderHello(LH));
    C.closeAfterFlush();
    return;
  }

  // Cutoff read before any catch-up work: every record committed after
  // it reaches this connection through the live fanout (see header).
  uint64_t Cutoff = Log.currentSeq();

  LeaderHello LH;
  LH.Epoch = Cfg.Epoch;
  LH.CurrentSeq = Cutoff;
  C.send(encodeLeaderHello(LH));

  std::vector<RecordMsg> Records;
  bool SnapshotMode = !Log.tailSince(Hello.LastSeq, Records);
  if (!SnapshotMode) {
    // The ring still covers the follower's position: WAL-tail replay.
    for (const RecordMsg &R : Records)
      C.send(encodeRecord(R));
    TailRecords.fetch_add(Records.size());
  } else {
    // Snapshot transfer: full state. Each snapshot folds in every record
    // of its document up to now (per-doc seq metadata dedups any live
    // fanout overlap); a doc erased before the loop reaches it yields a
    // tombstone, which is also correct to install.
    for (uint64_t Doc : Log.liveDocs()) {
      C.send(encodeDocSnapshot(Log.snapshotDoc(Doc)));
      SnapshotsSent.fetch_add(1);
    }
  }

  CatchupDoneMsg Done;
  Done.Seq = Cutoff;
  Done.SnapshotMode = SnapshotMode;
  C.send(encodeCatchupDone(Done));

  FollowerConn &S = States[C.id()];
  if (!S.Live) {
    S.Live = true;
    NumLive.fetch_add(1);
  }
  // Until the first Ack arrives, the hello's last seq is the best known
  // applied watermark.
  std::lock_guard<std::mutex> Lock(AckMu);
  uint64_t &Acked = AckedSeqs[C.id()];
  if (Hello.LastSeq > Acked)
    Acked = Hello.LastSeq;
}

void Leader::broadcast(const RecordMsg &R) {
  std::string Bytes = encodeRecord(R);
  for (auto &[Id, C] : Followers) {
    auto It = States.find(Id);
    if (It != States.end() && It->second.Live && !C->closing())
      C->send(Bytes);
  }
}

void Leader::broadcastSummary(const ShardSummaryMsg &M) {
  // Encoded once here (any thread), fanned out on the loop thread like
  // the record broadcast so it interleaves cleanly with live records.
  std::string Bytes = encodeShardSummary(M);
  Loop.post([this, Bytes = std::move(Bytes)] {
    bool Sent = false;
    for (auto &[Id, C] : Followers) {
      auto It = States.find(Id);
      if (It != States.end() && It->second.Live && !C->closing()) {
        C->send(Bytes);
        Sent = true;
      }
    }
    if (Sent)
      SummariesSent.fetch_add(1);
  });
}

Leader::Stats Leader::stats() const {
  Stats S;
  S.Followers = NumLive.load();
  S.SnapshotsSent = SnapshotsSent.load();
  S.TailRecords = TailRecords.load();
  S.ResyncsServed = ResyncsServed.load();
  S.FencedHellos = FencedHellos.load();
  S.SummariesSent = SummariesSent.load();
  return S;
}

std::vector<Leader::FollowerLag> Leader::followerLags() const {
  uint64_t Seq = Log.currentSeq();
  std::vector<FollowerLag> Out;
  std::lock_guard<std::mutex> Lock(AckMu);
  Out.reserve(AckedSeqs.size());
  for (const auto &[Id, Acked] : AckedSeqs) {
    FollowerLag L;
    L.ConnId = Id;
    L.AckedSeq = Acked;
    L.Lag = Seq > Acked ? Seq - Acked : 0;
    Out.push_back(L);
  }
  return Out;
}

std::string Leader::replicaJson() const {
  std::vector<FollowerLag> Lags = followerLags();
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"role\":\"leader\",\"epoch\":%llu,\"last_seq\":%llu,"
                "\"followers\":[",
                static_cast<unsigned long long>(Cfg.Epoch),
                static_cast<unsigned long long>(Log.currentSeq()));
  std::string Out = Buf;
  for (size_t I = 0; I != Lags.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"conn\":%llu,\"acked_seq\":%llu,\"lag\":%llu}",
                  I == 0 ? "" : ",",
                  static_cast<unsigned long long>(Lags[I].ConnId),
                  static_cast<unsigned long long>(Lags[I].AckedSeq),
                  static_cast<unsigned long long>(Lags[I].Lag));
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

//===- replica/Failover.cpp - Leader failover machinery --------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "replica/Failover.h"

#include "blame/Provenance.h"
#include "persist/BinaryCodec.h"

using namespace truediff;
using namespace truediff::replica;
using service::DocumentStore;

namespace {

/// Restores an exported tree blob with its URIs intact -- the promoted
/// store must be byte-identical (URI-level) to the follower's applied
/// state, or the convergence digests would diverge on re-replication.
service::TreeBuilder
makeRestoreBuilder(const std::string &Blob,
                   const SignatureTable &Sig) {
  return [&Blob, &Sig](TreeContext &Ctx) -> service::BuildResult {
    service::BuildResult Out;
    persist::DecodeTreeResult R =
        persist::decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/true);
    if (!R.ok()) {
      Out.Error = R.Error.empty() ? "malformed exported tree" : R.Error;
      return Out;
    }
    Out.Root = R.Root;
    return Out;
  };
}

} // namespace

PromotionResult replica::promoteFollower(Follower &F, DocumentStore &Store,
                                         blame::ProvenanceIndex *Prov,
                                         ReplicationLog &Log,
                                         uint64_t NewEpoch) {
  PromotionResult Out;
  Out.Epoch = NewEpoch;

  // Fence first: from here on the old leader cannot feed this node, so
  // the export below is final, not a moving target.
  F.prepareForPromotion(NewEpoch);
  Follower::Export E = F.exportForPromotion();
  Out.LastSeq = E.LastSeq;

  std::vector<ReplicationLog::SeedDoc> Seeds;
  Seeds.reserve(E.Docs.size());
  for (Follower::ExportedDoc &D : E.Docs) {
    service::StoreResult R =
        Store.restore(D.Doc, D.Version,
                      makeRestoreBuilder(D.TreeBlob, Store.signatures()),
                      std::move(D.History), std::move(D.OpenAuthor));
    if (!R.Ok) {
      Out.Error = "restore of document " + std::to_string(D.Doc) +
                  " failed: " + R.Error;
      return Out;
    }
    if (Prov != nullptr && !D.ProvBlob.empty())
      Prov->installSnapshot(D.Doc, D.ProvBlob);
    ReplicationLog::SeedDoc S;
    S.Doc = D.Doc;
    S.Incarnation = D.Incarnation;
    S.Version = D.Version;
    S.LastSeq = D.DocSeq;
    Seeds.push_back(S);
    ++Out.Docs;
  }

  // Seed before attach: the first post-promotion commit must continue
  // the exported chains (same incarnations, seq = LastSeq + 1), or
  // re-pointed followers would reject the stream.
  Log.seed(E.LastSeq, Seeds);
  Log.attach();
  Out.Ok = true;
  return Out;
}

//===- replica/Failover.h - Leader failover machinery -----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Promotes a follower replica to leader. The promotion is a state
/// machine over three existing subsystems, with the paper's typed edit
/// scripts as the correctness backbone:
///
///   1. fence    -- prepareForPromotion(NewEpoch): the follower drops
///                  its leader link and raises its epoch fencing floor,
///                  so the old leader can never be accepted again;
///   2. export   -- one consistent cut of the applied state (every
///                  document the product of a committed record prefix,
///                  because followers only ever apply type-checked,
///                  gap-free script sequences);
///   3. install  -- DocumentStore::restore per document (URIs
///                  preserved), provenance snapshots into the node's
///                  blame index, and ReplicationLog::seed so the new
///                  leader's record stream continues each per-document
///                  chain seamlessly.
///
/// After promoteFollower the caller flips the node's RoleState to
/// Leader, starts a Leader endpoint with the new epoch, and serves
/// writes from the restored store. Peers re-point at it: followers at or
/// behind the promoted seq catch up normally; the demoted leader's
/// divergent, never-acked suffix is not replayable and such a node
/// rejoins by state transfer into fresh follower state (see DESIGN.md
/// §15).
///
/// FailoverHandler is the request-path half: one RequestHandler that
/// routes by the node's current role, so a single listening port serves
/// the follower's read protocol before promotion and the full leader
/// protocol after.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_REPLICA_FAILOVER_H
#define TRUEDIFF_REPLICA_FAILOVER_H

#include "net/Role.h"
#include "replica/Follower.h"
#include "replica/ReplicationLog.h"

#include <atomic>

namespace truediff {
namespace blame {
class ProvenanceIndex;
}
namespace replica {

struct PromotionResult {
  bool Ok = false;
  std::string Error;
  /// Documents installed into the store.
  uint64_t Docs = 0;
  /// The committed-prefix seq the promoted state reproduces; the seeded
  /// log continues from here.
  uint64_t LastSeq = 0;
  uint64_t Epoch = 0;
};

/// Runs the fence/export/install sequence: \p F stops following and its
/// applied state becomes \p Store's content (URIs preserved, history
/// rings intact), \p Prov (may be null) receives each document's
/// provenance snapshot, and \p Log -- which must be fresh: never
/// committed, not yet attached -- is seeded and then attached to the
/// store. On return the store serves exactly the committed prefix the
/// follower had applied, ready for a Leader endpoint at \p NewEpoch.
///
/// \p Store must not already contain any exported document (promotion
/// installs into a fresh store). Fails atomically per document: the
/// first restore failure aborts with its error.
PromotionResult promoteFollower(Follower &F, service::DocumentStore &Store,
                                blame::ProvenanceIndex *Prov,
                                ReplicationLog &Log, uint64_t NewEpoch);

/// Routes requests by the node's current role: Leader serves the full
/// service protocol (writes included), anything else serves the
/// follower's read protocol. The writer handler may be installed later
/// -- promotion constructs it once the store exists -- via setWriter(),
/// which is safe against concurrent handle() calls.
class FailoverHandler : public net::RequestHandler {
public:
  FailoverHandler(net::RoleState &Role, net::RequestHandler &Reader)
      : Role(Role), Reader(Reader) {}

  void setWriter(net::RequestHandler *W) { Writer.store(W); }

  void handle(net::NetRequest Req,
              std::function<void(service::Response)> Done) override {
    net::RequestHandler *W = Writer.load();
    if (W != nullptr && Role.writable()) {
      W->handle(std::move(Req), std::move(Done));
      return;
    }
    Reader.handle(std::move(Req), std::move(Done));
  }

private:
  net::RoleState &Role;
  std::atomic<net::RequestHandler *> Writer{nullptr};
  net::RequestHandler &Reader;
};

} // namespace replica
} // namespace truediff

#endif // TRUEDIFF_REPLICA_FAILOVER_H

//===- replica/Protocol.cpp - Replication frame payloads -------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "replica/Protocol.h"

#include "persist/Varint.h"

using namespace truediff;
using namespace truediff::replica;
using truediff::net::appendFrame;
using truediff::net::ReplFrame;
using truediff::net::ReplMagic;
using truediff::persist::getVarint;
using truediff::persist::putVarint;

namespace {

std::string frame(ReplFrame Type, const std::string &Payload) {
  std::string Out;
  appendFrame(Out, ReplMagic, static_cast<uint8_t>(Type), Payload);
  return Out;
}

} // namespace

std::string replica::encodeFollowerHello(const FollowerHello &M) {
  std::string P;
  putVarint(P, M.LastSeq);
  putVarint(P, M.MaxEpochSeen);
  return frame(ReplFrame::FollowerHello, P);
}

std::string replica::encodeLeaderHello(const LeaderHello &M) {
  std::string P;
  putVarint(P, M.Epoch);
  putVarint(P, M.CurrentSeq);
  return frame(ReplFrame::LeaderHello, P);
}

std::string replica::encodeRecord(const RecordMsg &M) {
  std::string P;
  putVarint(P, M.Seq);
  putVarint(P, M.Doc);
  putVarint(P, M.Incarnation);
  P.push_back(static_cast<char>(M.Op));
  putVarint(P, M.Version);
  putVarint(P, M.Blob.size());
  P += M.Blob;
  putVarint(P, M.Author.size());
  P += M.Author;
  return frame(ReplFrame::Record, P);
}

std::string replica::encodeDocSnapshot(const DocSnapshotMsg &M) {
  std::string P;
  putVarint(P, M.Doc);
  putVarint(P, M.Incarnation);
  putVarint(P, M.Version);
  putVarint(P, M.Seq);
  P.push_back(static_cast<char>(M.Tombstone ? 1 : 0));
  putVarint(P, M.Blob.size());
  P += M.Blob;
  putVarint(P, M.ProvBlob.size());
  P += M.ProvBlob;
  return frame(ReplFrame::DocSnapshot, P);
}

std::string replica::encodeCatchupDone(const CatchupDoneMsg &M) {
  std::string P;
  putVarint(P, M.Seq);
  P.push_back(static_cast<char>(M.SnapshotMode ? 1 : 0));
  return frame(ReplFrame::CatchupDone, P);
}

std::string replica::encodeResyncReq(const ResyncReqMsg &M) {
  std::string P;
  putVarint(P, M.Doc);
  return frame(ReplFrame::ResyncReq, P);
}

std::string replica::encodeAck(const AckMsg &M) {
  std::string P;
  putVarint(P, M.Seq);
  return frame(ReplFrame::Ack, P);
}

std::string replica::encodeShardSummary(const ShardSummaryMsg &M) {
  std::string P;
  putVarint(P, M.Shard);
  putVarint(P, M.ShardCount);
  putVarint(P, M.AsOfSeq);
  putVarint(P, M.Entries.size());
  for (const ShardSummaryMsg::Entry &E : M.Entries) {
    putVarint(P, E.Doc);
    putVarint(P, E.Version);
    putVarint(P, E.DigestHex.size());
    P += E.DigestHex;
  }
  return frame(ReplFrame::ShardSummary, P);
}

bool replica::decodeFollowerHello(std::string_view Payload,
                                  FollowerHello &Out) {
  size_t Pos = 0;
  auto Seq = getVarint(Payload, Pos);
  auto Epoch = getVarint(Payload, Pos);
  if (!Seq || !Epoch || Pos != Payload.size())
    return false;
  Out.LastSeq = *Seq;
  Out.MaxEpochSeen = *Epoch;
  return true;
}

bool replica::decodeLeaderHello(std::string_view Payload, LeaderHello &Out) {
  size_t Pos = 0;
  auto Epoch = getVarint(Payload, Pos);
  auto Seq = getVarint(Payload, Pos);
  if (!Epoch || !Seq || Pos != Payload.size())
    return false;
  Out.Epoch = *Epoch;
  Out.CurrentSeq = *Seq;
  return true;
}

bool replica::decodeRecord(std::string_view Payload, RecordMsg &Out) {
  size_t Pos = 0;
  auto Seq = getVarint(Payload, Pos);
  auto Doc = getVarint(Payload, Pos);
  auto Inc = getVarint(Payload, Pos);
  if (!Seq || !Doc || !Inc || Pos >= Payload.size())
    return false;
  uint8_t Op = static_cast<uint8_t>(Payload[Pos++]);
  if (Op > static_cast<uint8_t>(ReplOp::Erase))
    return false;
  auto Version = getVarint(Payload, Pos);
  auto BlobLen = getVarint(Payload, Pos);
  if (!Version || !BlobLen || *BlobLen > Payload.size() - Pos)
    return false;
  Out.Seq = *Seq;
  Out.Doc = *Doc;
  Out.Incarnation = *Inc;
  Out.Op = static_cast<ReplOp>(Op);
  Out.Version = *Version;
  Out.Blob = std::string(Payload.substr(Pos, *BlobLen));
  Pos += *BlobLen;
  // Optional trailing author (pre-blame peers omit it).
  Out.Author.clear();
  if (Pos != Payload.size()) {
    auto AuthorLen = getVarint(Payload, Pos);
    if (!AuthorLen || *AuthorLen != Payload.size() - Pos)
      return false;
    Out.Author = std::string(Payload.substr(Pos));
  }
  return true;
}

bool replica::decodeDocSnapshot(std::string_view Payload,
                                DocSnapshotMsg &Out) {
  size_t Pos = 0;
  auto Doc = getVarint(Payload, Pos);
  auto Inc = getVarint(Payload, Pos);
  auto Version = getVarint(Payload, Pos);
  auto Seq = getVarint(Payload, Pos);
  if (!Doc || !Inc || !Version || !Seq || Pos >= Payload.size())
    return false;
  uint8_t Flags = static_cast<uint8_t>(Payload[Pos++]);
  auto BlobLen = getVarint(Payload, Pos);
  if (!BlobLen || *BlobLen > Payload.size() - Pos)
    return false;
  Out.Doc = *Doc;
  Out.Incarnation = *Inc;
  Out.Version = *Version;
  Out.Seq = *Seq;
  Out.Tombstone = (Flags & 1) != 0;
  Out.Blob = std::string(Payload.substr(Pos, *BlobLen));
  Pos += *BlobLen;
  // Optional trailing provenance blob (pre-blame peers omit it).
  Out.ProvBlob.clear();
  if (Pos != Payload.size()) {
    auto ProvLen = getVarint(Payload, Pos);
    if (!ProvLen || *ProvLen != Payload.size() - Pos)
      return false;
    Out.ProvBlob = std::string(Payload.substr(Pos));
  }
  return true;
}

bool replica::decodeCatchupDone(std::string_view Payload,
                                CatchupDoneMsg &Out) {
  size_t Pos = 0;
  auto Seq = getVarint(Payload, Pos);
  if (!Seq || Pos + 1 != Payload.size())
    return false;
  Out.Seq = *Seq;
  Out.SnapshotMode = (static_cast<uint8_t>(Payload[Pos]) & 1) != 0;
  return true;
}

bool replica::decodeResyncReq(std::string_view Payload, ResyncReqMsg &Out) {
  size_t Pos = 0;
  auto Doc = getVarint(Payload, Pos);
  if (!Doc || Pos != Payload.size())
    return false;
  Out.Doc = *Doc;
  return true;
}

bool replica::decodeAck(std::string_view Payload, AckMsg &Out) {
  size_t Pos = 0;
  auto Seq = getVarint(Payload, Pos);
  if (!Seq || Pos != Payload.size())
    return false;
  Out.Seq = *Seq;
  return true;
}

bool replica::decodeShardSummary(std::string_view Payload,
                                 ShardSummaryMsg &Out) {
  size_t Pos = 0;
  auto Shard = getVarint(Payload, Pos);
  auto Count = getVarint(Payload, Pos);
  auto AsOf = getVarint(Payload, Pos);
  auto N = getVarint(Payload, Pos);
  if (!Shard || !Count || *Count == 0 || !AsOf || !N)
    return false;
  Out.Shard = *Shard;
  Out.ShardCount = *Count;
  Out.AsOfSeq = *AsOf;
  Out.Entries.clear();
  for (uint64_t I = 0; I != *N; ++I) {
    ShardSummaryMsg::Entry E;
    auto Doc = getVarint(Payload, Pos);
    auto Version = getVarint(Payload, Pos);
    auto DigestLen = getVarint(Payload, Pos);
    if (!Doc || !Version || !DigestLen || *DigestLen > Payload.size() - Pos)
      return false;
    E.Doc = *Doc;
    E.Version = *Version;
    E.DigestHex = std::string(Payload.substr(Pos, *DigestLen));
    Pos += *DigestLen;
    Out.Entries.push_back(std::move(E));
  }
  return Pos == Payload.size();
}

//===- replica/Protocol.h - Replication frame payloads ----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Payload codecs for the replication stream (net/Frame.h, ReplMagic).
/// All integers are LEB128 varints; blobs are length-prefixed.
///
///   FollowerHello   last-seq, max-epoch-seen
///   LeaderHello     epoch, current-seq
///   Record          seq, doc, incarnation, op byte, version, script blob
///                   (persist/BinaryCodec encodeEditScript; empty for
///                   erase), author string (length-prefixed; the target
///                   version's author for rollback)
///   DocSnapshot     doc, incarnation, version, seq, flags byte (bit 0 =
///                   tombstone), tree blob (encodeTree, URIs preserved),
///                   provenance blob (blame ProvenanceIndex::snapshotDoc)
///
/// The author and provenance fields are optional-trailing: decoders
/// accept their absence (empty author / empty provenance), so pre-blame
/// peers interoperate.
///   CatchupDone     seq: the initial dump covers everything up to here
///   ResyncReq       doc
///   Ack             seq: the follower applied everything up to here --
///                   the leader's durability watermark (per-follower lag
///                   in stats, and what failover treats as durable)
///   ShardSummary    anti-entropy digest summary of one store shard:
///                   shard, shard-count, as-of-seq, then per document
///                   (doc, version, SHA-256-of-URI-rendering hex)
///
/// Decoders are total and strict: trailing bytes or truncated varints
/// fail the decode. A follower treats any undecodable frame from its
/// leader as a broken link and reconnects; a leader drops the follower.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_REPLICA_PROTOCOL_H
#define TRUEDIFF_REPLICA_PROTOCOL_H

#include "net/Frame.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace truediff {
namespace replica {

/// Replicated store operation, the StoreOp values plus erase (which the
/// store reports through a separate listener).
enum class ReplOp : uint8_t {
  Open = 0,
  Submit = 1,
  Rollback = 2,
  Erase = 3,
};

struct FollowerHello {
  uint64_t LastSeq = 0;
  uint64_t MaxEpochSeen = 0;
};

struct LeaderHello {
  uint64_t Epoch = 0;
  uint64_t CurrentSeq = 0;
};

/// One replication-log record. Rollback records carry the *applied
/// inverse* script, so a follower only ever patches forward.
struct RecordMsg {
  uint64_t Seq = 0;
  uint64_t Doc = 0;
  /// Bumped each time the doc id is (re-)opened; fences records of a
  /// prior life of the same id.
  uint64_t Incarnation = 0;
  ReplOp Op = ReplOp::Open;
  /// Document version after the operation.
  uint64_t Version = 0;
  /// encodeEditScript blob; empty for Erase.
  std::string Blob;
  /// Attribution of the produced version (rollback: the target version's
  /// author); empty = unattributed. Feeds the follower's provenance
  /// index so blame reads answer identically on either side.
  std::string Author;
};

struct DocSnapshotMsg {
  uint64_t Doc = 0;
  uint64_t Incarnation = 0;
  uint64_t Version = 0;
  /// Global seq of the doc's latest record folded into this snapshot;
  /// records at or below it are already reflected.
  uint64_t Seq = 0;
  /// The document no longer exists; Blob is empty.
  bool Tombstone = false;
  /// encodeTree blob, URIs preserved (empty for tombstones).
  std::string Blob;
  /// Canonical provenance blob of the same document state (blame
  /// ProvenanceIndex::snapshotDoc; empty for tombstones or pre-blame
  /// leaders), installed into the follower's index with the tree.
  std::string ProvBlob;
};

struct CatchupDoneMsg {
  uint64_t Seq = 0;
  /// The dump was a snapshot transfer (full state): any document the
  /// follower holds that no snapshot refreshed is stale -- its erase
  /// record may have been evicted from the tail ring -- and must be
  /// dropped. False = tail replay, which is incremental and complete.
  bool SnapshotMode = false;
};

struct ResyncReqMsg {
  uint64_t Doc = 0;
};

/// Follower -> leader applied watermark, sent after every batch that
/// advances the applied seq.
struct AckMsg {
  uint64_t Seq = 0;
};

/// Anti-entropy: the leader's digest summary of one store shard,
/// broadcast periodically by the integrity scrubber. Each entry names a
/// document, its version, and the SHA-256 hex digest of its URI
/// rendering -- the cross-process-stable content identity (never the
/// seeded Fast128 node digests, which are meaningless outside one
/// process). A follower compares each entry against its own state up to
/// AsOfSeq and requests a resync for any mismatch, catching silent
/// divergence that gap detection cannot (the follower applied
/// *something* for every seq; it was just wrong).
struct ShardSummaryMsg {
  /// Which shard of the document-id space this summarizes (Doc %
  /// ShardCount == Shard for every entry).
  uint64_t Shard = 0;
  uint64_t ShardCount = 1;
  /// Replication seq the summary was taken at. A follower that has not
  /// yet applied up to here skips the comparison -- it would be
  /// comparing different points in time, not detecting corruption.
  uint64_t AsOfSeq = 0;
  struct Entry {
    uint64_t Doc = 0;
    uint64_t Version = 0;
    /// SHA-256 hex of the document's URI rendering.
    std::string DigestHex;
  };
  std::vector<Entry> Entries;
};

/// Each encoder renders a complete wire frame (header included).
std::string encodeFollowerHello(const FollowerHello &M);
std::string encodeLeaderHello(const LeaderHello &M);
std::string encodeRecord(const RecordMsg &M);
std::string encodeDocSnapshot(const DocSnapshotMsg &M);
std::string encodeCatchupDone(const CatchupDoneMsg &M);
std::string encodeResyncReq(const ResyncReqMsg &M);
std::string encodeAck(const AckMsg &M);
std::string encodeShardSummary(const ShardSummaryMsg &M);

/// Each decoder parses one frame's payload; false on malformed input.
bool decodeFollowerHello(std::string_view Payload, FollowerHello &Out);
bool decodeLeaderHello(std::string_view Payload, LeaderHello &Out);
bool decodeRecord(std::string_view Payload, RecordMsg &Out);
bool decodeDocSnapshot(std::string_view Payload, DocSnapshotMsg &Out);
bool decodeCatchupDone(std::string_view Payload, CatchupDoneMsg &Out);
bool decodeResyncReq(std::string_view Payload, ResyncReqMsg &Out);
bool decodeAck(std::string_view Payload, AckMsg &Out);
bool decodeShardSummary(std::string_view Payload, ShardSummaryMsg &Out);

} // namespace replica
} // namespace truediff

#endif // TRUEDIFF_REPLICA_PROTOCOL_H

//===- replica/ReplicationLog.cpp - Leader-side script stream --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "replica/ReplicationLog.h"

#include "persist/BinaryCodec.h"

using namespace truediff;
using namespace truediff::replica;
using service::DocumentStore;

ReplicationLog::ReplicationLog(DocumentStore &Store)
    : ReplicationLog(Store, Config()) {}

ReplicationLog::ReplicationLog(DocumentStore &Store, Config C)
    : Store(Store), Cfg(C) {}

void ReplicationLog::attach() {
  Store.addScriptListener([this](service::DocId Doc, uint64_t Version,
                                 DocumentStore::StoreOp Op,
                                 const EditScript &Script,
                                 const DocumentStore::ScriptInfo &Info) {
    ReplOp R;
    switch (Op) {
    case DocumentStore::StoreOp::Open:
      R = ReplOp::Open;
      break;
    case DocumentStore::StoreOp::Submit:
      R = ReplOp::Submit;
      break;
    case DocumentStore::StoreOp::Rollback:
      R = ReplOp::Rollback;
      break;
    default:
      return;
    }
    commit(Doc, R, Version,
           persist::encodeEditScript(Store.signatures(), Script),
           std::string(Info.Author));
  });
  Store.addEraseListener([this](service::DocId Doc) {
    commit(Doc, ReplOp::Erase, 0, std::string(), std::string());
  });
}

void ReplicationLog::seed(uint64_t BaseSeq,
                          const std::vector<SeedDoc> &SeedDocs) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Seq < BaseSeq)
    Seq = BaseSeq;
  for (const SeedDoc &S : SeedDocs) {
    DocMeta &M = Docs[S.Doc];
    M.Incarnation = S.Incarnation;
    M.Version = S.Version;
    M.LastSeq = S.LastSeq;
    M.Live = true;
  }
}

void ReplicationLog::commit(uint64_t Doc, ReplOp Op, uint64_t Version,
                            std::string Blob, std::string Author) {
  std::lock_guard<std::mutex> Lock(Mu);
  RecordMsg R;
  R.Seq = ++Seq;
  R.Doc = Doc;
  R.Op = Op;
  R.Version = Version;
  R.Blob = std::move(Blob);
  R.Author = std::move(Author);
  DocMeta &M = Docs[Doc];
  if (Op == ReplOp::Open) {
    ++M.Incarnation;
    M.Live = true;
  } else if (Op == ReplOp::Erase) {
    M.Live = false;
  }
  M.Version = Version;
  M.LastSeq = R.Seq;
  R.Incarnation = M.Incarnation;
  Tail.push_back(R);
  if (Tail.size() > Cfg.TailCapacity)
    Tail.pop_front();
  if (OnRecord)
    OnRecord(R);
}

uint64_t ReplicationLog::currentSeq() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Seq;
}

uint64_t ReplicationLog::firstTailSeq() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Tail.empty() ? 0 : Tail.front().Seq;
}

bool ReplicationLog::tailSince(uint64_t AfterSeq,
                               std::vector<RecordMsg> &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (AfterSeq > Seq)
    return false; // a diverged peer claims a future seq: full transfer
  if (!Tail.empty() && Tail.front().Seq > AfterSeq + 1)
    return false; // the continuation was evicted
  if (Tail.empty() && Seq > AfterSeq)
    return false; // records existed but none are retained
  for (const RecordMsg &R : Tail)
    if (R.Seq > AfterSeq)
      Out.push_back(R);
  return true;
}

std::vector<uint64_t> ReplicationLog::liveDocs() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<uint64_t> Out;
  for (const auto &[Doc, M] : Docs)
    if (M.Live)
      Out.push_back(Doc);
  return Out;
}

DocSnapshotMsg ReplicationLog::snapshotDoc(uint64_t Doc) const {
  DocSnapshotMsg Snap;
  Snap.Doc = Doc;
  bool Found = Store.withDocument(
      Doc, [&](const Tree *T, uint64_t Version,
               const std::vector<DocumentStore::HistoryEntry> &) {
        // Under the document lock: the listener (and thus this doc's log
        // metadata) cannot advance while we are here, so blob and meta
        // are one consistent cut.
        Snap.Blob = persist::encodeTree(Store.signatures(), T);
        // The index listener updates under this same document lock, so
        // the provenance blob matches the tree exactly.
        if (ProvSource)
          Snap.ProvBlob = ProvSource(Doc);
        Snap.Version = Version;
        std::lock_guard<std::mutex> Lock(Mu);
        auto It = Docs.find(Doc);
        if (It != Docs.end()) {
          Snap.Incarnation = It->second.Incarnation;
          Snap.Seq = It->second.LastSeq;
        }
      });
  if (!Found) {
    std::lock_guard<std::mutex> Lock(Mu);
    Snap.Tombstone = true;
    auto It = Docs.find(Doc);
    if (It != Docs.end()) {
      Snap.Incarnation = It->second.Incarnation;
      Snap.Seq = It->second.LastSeq;
    } else {
      Snap.Seq = Seq;
    }
  }
  return Snap;
}

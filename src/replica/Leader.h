//===- replica/Leader.h - Replication leader endpoint -----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serves the replication stream to follower replicas: on FollowerHello
/// the leader answers LeaderHello (carrying its epoch, so a follower can
/// fence a stale leader), catches the follower up -- tail replay when
/// the log's ring still covers its last seq, per-document snapshot
/// transfer otherwise -- ends the dump with CatchupDone, and from then
/// on fans out every committed record live. ResyncReq answers with a
/// fresh snapshot of one document (tombstone if it is gone).
///
/// Correctness of the catch-up/live seam: the handshake runs as one
/// uninterrupted task on the loop thread with a cutoff seq read at its
/// start. Any record committed after the cutoff is posted to the loop
/// *after* its commit, hence dispatched after the handshake task, when
/// the connection is already marked live -- so nothing between the
/// cutoff and the present can be lost, and anything delivered twice
/// (snapshots may embed post-cutoff records) is deduplicated by the
/// follower's seq checks.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_REPLICA_LEADER_H
#define TRUEDIFF_REPLICA_LEADER_H

#include "net/EventLoop.h"
#include "replica/ReplicationLog.h"

#include <atomic>
#include <mutex>

namespace truediff {
namespace replica {

class Leader {
public:
  struct Config {
    uint16_t Port = 0; ///< 0 = ephemeral
    /// Leadership epoch announced to followers. A follower that has seen
    /// a higher epoch refuses this leader (stale-leader fencing).
    uint64_t Epoch = 1;
    /// Cap on one replication frame from a follower.
    size_t MaxFrameBytes = net::MaxBinaryFrameBytes;
    /// A follower's hello reported a max-epoch-seen above ours: some
    /// other node was promoted, so this leader is stale. Invoked on the
    /// loop thread with the reported epoch (the connection is dropped
    /// either way); wire it to demote the local role so the front end
    /// starts fencing writes. Null = just drop the connection.
    std::function<void(uint64_t ReportedEpoch)> OnFenced;
  };

  /// Takes over \p Log's OnRecord subscription. attach() the log before
  /// start(); the loop must outlive the leader's traffic.
  Leader(net::EventLoop &Loop, ReplicationLog &Log, Config C);

  bool start(std::string *Err = nullptr);
  uint16_t port() const { return BoundPort; }
  uint64_t epoch() const { return Cfg.Epoch; }

  /// Fans an anti-entropy digest summary out to every live follower.
  /// Safe from any thread (the send is posted to the loop); the
  /// integrity scrubber calls this once per scrubbed shard. Followers
  /// that are still catching up simply ignore summaries ahead of their
  /// applied seq.
  void broadcastSummary(const ShardSummaryMsg &M);

  struct Stats {
    uint64_t Followers = 0;     ///< currently connected, past handshake
    uint64_t SnapshotsSent = 0; ///< catch-up + resync snapshots
    uint64_t TailRecords = 0;   ///< records replayed from the tail ring
    uint64_t ResyncsServed = 0;
    uint64_t FencedHellos = 0;  ///< hellos that reported a higher epoch
    uint64_t SummariesSent = 0; ///< anti-entropy shard summaries fanned out
  };
  Stats stats() const;

  /// One live follower's applied watermark, from its Ack stream.
  struct FollowerLag {
    uint64_t ConnId = 0;
    uint64_t AckedSeq = 0;
    uint64_t Lag = 0; ///< log currentSeq - AckedSeq at sampling time
  };
  /// Snapshot of every live follower's lag; any thread.
  std::vector<FollowerLag> followerLags() const;

  /// The "replica" stats fragment for this node: role, epoch, the log's
  /// current seq, and per-follower acked seq / lag. A complete JSON
  /// object, embeddable as the "replica" member of the service's stats.
  std::string replicaJson() const;

private:
  struct FollowerConn {
    bool Live = false; ///< handshake done; receives the live fanout
  };

  void onData(net::Conn &C);
  bool parseOne(net::Conn &C);
  void handshake(net::Conn &C, const FollowerHello &Hello);
  void broadcast(const RecordMsg &R);

  net::EventLoop &Loop;
  ReplicationLog &Log;
  const Config Cfg;
  uint16_t BoundPort = 0;
  /// Loop-thread state.
  std::unordered_map<uint64_t, net::Conn *> Followers;
  std::unordered_map<uint64_t, FollowerConn> States;

  std::atomic<uint64_t> NumLive{0};
  std::atomic<uint64_t> SnapshotsSent{0};
  std::atomic<uint64_t> TailRecords{0};
  std::atomic<uint64_t> ResyncsServed{0};
  std::atomic<uint64_t> FencedHellos{0};
  std::atomic<uint64_t> SummariesSent{0};

  /// Applied watermark per live follower conn id, written on the loop
  /// thread (Ack frames, handshakes, closes), read from stats threads.
  mutable std::mutex AckMu;
  std::unordered_map<uint64_t, uint64_t> AckedSeqs;
};

} // namespace replica
} // namespace truediff

#endif // TRUEDIFF_REPLICA_LEADER_H

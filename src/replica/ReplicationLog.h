//===- replica/ReplicationLog.h - Leader-side script stream -----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a DocumentStore's committed-script stream into a replication
/// log: every open/submit/rollback/erase becomes a Record with a global,
/// gap-free sequence number and per-document incarnation metadata. The
/// paper's edit scripts are the replication unit -- a follower applies
/// exactly the scripts the leader committed, type-checked again on
/// arrival, so replication inherits every script guarantee instead of
/// shipping opaque state.
///
/// A bounded tail ring retains the newest records for cheap catch-up
/// (WAL-tail analogue): a follower whose last seq is still covered
/// replays the tail; anyone older gets per-document snapshots.
///
/// Rollback records carry the *applied inverse* script (what the store's
/// listener observes), so followers only ever patch forward.
///
/// Ordering: the store invokes script listeners under the document lock
/// and the log assigns seqs under its own lock, so record order is the
/// commit order. The single OnRecord subscriber is invoked under the log
/// lock -- it must be cheap (the leader just posts to its event loop)
/// and must not call back.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_REPLICA_REPLICATIONLOG_H
#define TRUEDIFF_REPLICA_REPLICATIONLOG_H

#include "replica/Protocol.h"
#include "service/DocumentStore.h"

#include <deque>
#include <mutex>

namespace truediff {
namespace replica {

class ReplicationLog {
public:
  struct Config {
    /// Records retained for tail-replay catch-up; older followers fall
    /// back to snapshot transfer.
    size_t TailCapacity = 1024;
  };

  explicit ReplicationLog(service::DocumentStore &Store);
  ReplicationLog(service::DocumentStore &Store, Config C);

  /// Registers the store listeners. Call once, before traffic.
  void attach();

  /// Pre-loads the log's position after a follower promotion: the
  /// global seq continues from \p BaseSeq and each document's
  /// incarnation/version/seq metadata continues the chain the promoted
  /// state was applied from, so followers reconnecting at or behind
  /// \p BaseSeq accept the new leader's records as a seamless
  /// continuation. The tail ring stays empty -- anyone behind BaseSeq
  /// falls back to snapshot transfer, which is exactly right because the
  /// records between their position and BaseSeq were committed by the
  /// previous leader and are not replayable here. Call before attach()
  /// and before traffic, on a log that has never committed.
  struct SeedDoc {
    uint64_t Doc = 0;
    uint64_t Incarnation = 0;
    uint64_t Version = 0;
    uint64_t LastSeq = 0;
  };
  void seed(uint64_t BaseSeq, const std::vector<SeedDoc> &SeedDocs);

  /// Single live-fanout subscriber, invoked under the log lock in seq
  /// order. Set before attach().
  void setOnRecord(std::function<void(const RecordMsg &)> Fn) {
    OnRecord = std::move(Fn);
  }

  /// Source of a document's canonical provenance blob (the blame index's
  /// snapshotDoc), captured inside snapshotDoc()'s document-lock section
  /// so tree and provenance are one consistent cut. Set before traffic;
  /// absent means snapshots carry no provenance.
  void setProvenanceSource(std::function<std::string(uint64_t)> Fn) {
    ProvSource = std::move(Fn);
  }

  /// Highest assigned seq (0 = nothing committed yet).
  uint64_t currentSeq() const;

  /// Seq of the oldest record still in the tail ring (0 = ring empty).
  uint64_t firstTailSeq() const;

  /// Appends every retained record with seq > \p AfterSeq to \p Out.
  /// Returns true iff the ring covers the request -- i.e. nothing
  /// between \p AfterSeq and the present has been evicted -- so the
  /// records form a gap-free continuation.
  bool tailSince(uint64_t AfterSeq, std::vector<RecordMsg> &Out) const;

  /// Document ids currently live in the log's metadata.
  std::vector<uint64_t> liveDocs() const;

  /// Renders a catch-up snapshot of \p Doc: the current tree (URIs
  /// preserved) plus the incarnation/version/seq metadata its record
  /// stream continues from. A dead or unknown document yields a
  /// tombstone. Consistent by construction: the tree and the metadata
  /// are captured under the document's lock, which the script listener
  /// also holds.
  DocSnapshotMsg snapshotDoc(uint64_t Doc) const;

private:
  struct DocMeta {
    uint64_t Incarnation = 0;
    uint64_t Version = 0;
    uint64_t LastSeq = 0;
    bool Live = false;
  };

  void commit(uint64_t Doc, ReplOp Op, uint64_t Version, std::string Blob,
              std::string Author);

  service::DocumentStore &Store;
  const Config Cfg;
  std::function<void(const RecordMsg &)> OnRecord;
  std::function<std::string(uint64_t)> ProvSource;

  mutable std::mutex Mu;
  uint64_t Seq = 0;
  std::unordered_map<uint64_t, DocMeta> Docs;
  std::deque<RecordMsg> Tail;
};

} // namespace replica
} // namespace truediff

#endif // TRUEDIFF_REPLICA_REPLICATIONLOG_H

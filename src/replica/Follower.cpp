//===- replica/Follower.cpp - Follower replica -----------------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "replica/Follower.h"

#include "blame/Render.h"
#include "persist/BinaryCodec.h"
#include "support/Sha256.h"
#include "tree/SExpr.h"
#include "truechange/TypeChecker.h"

#include <cstdio>
#include <cstring>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::net;
using namespace truediff::replica;

Follower::Follower(EventLoop &Loop, const SignatureTable &Sig, Config C)
    : Loop(Loop), Sig(Sig), Cfg(C), MaxEpochSeen(C.MaxEpochSeen) {}

Follower::Follower(EventLoop &Loop, const SignatureTable &Sig)
    : Follower(Loop, Sig, Config()) {}

Follower::~Follower() { disconnect(); }

bool Follower::connectTo(const std::string &Host, uint16_t Port,
                         std::string *Err) {
  auto Fail = [&](const std::string &What) {
    if (Err != nullptr)
      *Err = What;
    return false;
  };
  disconnect();

  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(Port);
  if (getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Res) != 0 ||
      Res == nullptr)
    return Fail("resolve " + Host + " failed");
  int Fd = ::socket(Res->ai_family, Res->ai_socktype, Res->ai_protocol);
  if (Fd < 0) {
    freeaddrinfo(Res);
    return Fail(std::string("socket: ") + std::strerror(errno));
  }
  int Rc = ::connect(Fd, Res->ai_addr, Res->ai_addrlen);
  freeaddrinfo(Res);
  if (Rc != 0) {
    ::close(Fd);
    return Fail(std::string("connect: ") + std::strerror(errno));
  }

  std::string Hello;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    HsState = Handshake::Pending;
    CatchupSeen = false;
    LastAckSent = 0;
    ++HelloGen;
    FollowerHello FH;
    FH.LastSeq = LastSeq;
    FH.MaxEpochSeen = MaxEpochSeen;
    Hello = encodeFollowerHello(FH);
  }

  Loop.post([this, Fd, Hello = std::move(Hello)] {
    Conn::Handlers H;
    H.OnData = [this](Conn &C) { onData(C); };
    H.OnClose = [this](Conn &C) {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Link == &C) {
        Link = nullptr;
        IsConnected = false;
        if (HsState == Handshake::Pending) {
          HsState = Handshake::Failed;
          HandshakeCv.notify_all();
        }
      }
    };
    Conn *C = Loop.adopt(Fd, std::move(H));
    std::lock_guard<std::mutex> Lock(Mu);
    if (C == nullptr) {
      HsState = Handshake::Failed;
      HandshakeCv.notify_all();
      return;
    }
    Link = C;
    C->send(Hello);
  });

  std::unique_lock<std::mutex> Lock(Mu);
  bool Done = HandshakeCv.wait_for(
      Lock, std::chrono::milliseconds(Cfg.HandshakeTimeoutMs),
      [this] { return HsState != Handshake::Pending; });
  if (!Done) {
    Lock.unlock();
    disconnect();
    return Fail("handshake timed out");
  }
  switch (HsState) {
  case Handshake::Accepted:
    return true;
  case Handshake::Stale:
    Lock.unlock();
    disconnect();
    return Fail("stale leader: epoch below the fencing floor");
  default:
    return Fail("connection lost during handshake");
  }
}

void Follower::disconnect() {
  Loop.post([this] {
    std::unique_lock<std::mutex> Lock(Mu);
    Conn *C = Link;
    Link = nullptr;
    IsConnected = false;
    Lock.unlock();
    if (C != nullptr)
      C->closeNow();
  });
}

bool Follower::connected() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return IsConnected;
}

bool Follower::caughtUp() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return IsConnected && CatchupSeen;
}

uint64_t Follower::lastSeq() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LastSeq;
}

void Follower::onData(Conn &C) {
  while (parseOne(C)) {
  }
  // Ack once per drained batch, not per record: the leader only needs
  // the high-water mark, and batching keeps the ack stream O(wakeups).
  std::lock_guard<std::mutex> Lock(Mu);
  if (!C.closing() && CatchupSeen && LastSeq > LastAckSent) {
    AckMsg M;
    M.Seq = LastSeq;
    C.send(encodeAck(M));
    LastAckSent = LastSeq;
  }
}

bool Follower::parseOne(Conn &C) {
  if (C.closing())
    return false;
  std::string &In = C.in();
  if (In.empty())
    return false;
  if (static_cast<uint8_t>(In[0]) != ReplMagic) {
    C.closeNow();
    return false;
  }
  FrameHeader H;
  switch (peekFrame(In, Cfg.MaxFrameBytes, H)) {
  case FramePeek::NeedMore:
    return false;
  case FramePeek::TooLarge:
    C.closeNow();
    return false;
  case FramePeek::Ok:
    break;
  }
  std::string Payload(In.substr(FrameHeaderBytes, H.Len));
  In.erase(0, FrameHeaderBytes + H.Len);

  bool Ok = false;
  switch (static_cast<ReplFrame>(H.Type)) {
  case ReplFrame::LeaderHello: {
    LeaderHello LH;
    if ((Ok = decodeLeaderHello(Payload, LH)))
      onLeaderHello(C, LH);
    break;
  }
  case ReplFrame::Record: {
    RecordMsg R;
    if ((Ok = decodeRecord(Payload, R)))
      onRecord(C, R);
    break;
  }
  case ReplFrame::DocSnapshot: {
    DocSnapshotMsg S;
    if ((Ok = decodeDocSnapshot(Payload, S)))
      onSnapshot(S);
    break;
  }
  case ReplFrame::CatchupDone: {
    CatchupDoneMsg D;
    if ((Ok = decodeCatchupDone(Payload, D)))
      onCatchupDone(D);
    break;
  }
  case ReplFrame::ShardSummary: {
    ShardSummaryMsg M;
    if ((Ok = decodeShardSummary(Payload, M)))
      onShardSummary(C, M);
    break;
  }
  default:
    break;
  }
  if (!Ok) {
    // An undecodable frame from the leader means the stream is broken;
    // drop the link. A reconnect will catch up cleanly.
    C.closeNow();
    return false;
  }
  return true;
}

void Follower::onLeaderHello(Conn &C, const LeaderHello &LH) {
  std::unique_lock<std::mutex> Lock(Mu);
  if (LH.Epoch < MaxEpochSeen) {
    ++Counters.StaleLeaderRejects;
    HsState = Handshake::Stale;
    HandshakeCv.notify_all();
    Lock.unlock();
    C.closeNow();
    return;
  }
  Epoch = LH.Epoch;
  MaxEpochSeen = LH.Epoch;
  IsConnected = true;
  HsState = Handshake::Accepted;
  HandshakeCv.notify_all();
}

void Follower::onRecord(Conn &C, const RecordMsg &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (R.Seq <= LastSeq) {
    ++Counters.DupRecords;
    return;
  }
  if (R.Seq != LastSeq + 1) {
    if (!CatchupSeen)
      return; // straggler from before the hello; the dump covers it
    // A gap after catch-up means records were lost: full re-handshake on
    // the same link.
    ++Counters.GapRehellos;
    CatchupSeen = false;
    ++HelloGen;
    FollowerHello FH;
    FH.LastSeq = LastSeq;
    FH.MaxEpochSeen = MaxEpochSeen;
    C.send(encodeFollowerHello(FH));
    return;
  }
  LastSeq = R.Seq;
  applyDocRecord(C, R);
}

void Follower::applyDocRecord(Conn &C, const RecordMsg &R) {
  auto It = Docs.find(R.Doc);

  if (R.Op == ReplOp::Erase) {
    if (It == Docs.end()) {
      ++Counters.OrphanRecords;
      return;
    }
    Docs.erase(It);
    Prov.eraseDoc(R.Doc);
    ++Counters.RecordsApplied;
    return;
  }

  if (R.Op == ReplOp::Open) {
    if (It != Docs.end() && It->second.Incarnation >= R.Incarnation) {
      ++Counters.DupRecords; // a newer snapshot already covers this life
      return;
    }
    persist::DecodeScriptResult D = persist::decodeEditScript(Sig, R.Blob);
    LinearTypeChecker TC(Sig);
    if (!D.Ok || !TC.checkInitializing(D.Script).Ok) {
      requestResync(C, R.Doc);
      return;
    }
    MTree M(Sig);
    if (!M.patchChecked(D.Script).Ok) {
      requestResync(C, R.Doc);
      return;
    }
    ReplicaDoc &RD = Docs[R.Doc];
    RD.T = std::make_unique<MTree>(std::move(M));
    RD.Version = R.Version;
    RD.Incarnation = R.Incarnation;
    RD.DocSeq = R.Seq;
    RD.Resyncing = false;
    RD.RefreshGen = HelloGen;
    RD.Ring.clear();
    RD.OpenAuthor = R.Author;
    Prov.apply(R.Doc, R.Version, service::DocumentStore::StoreOp::Open,
               R.Author, D.Script);
    ++Counters.RecordsApplied;
    return;
  }

  // Submit / Rollback.
  if (It == Docs.end()) {
    // Erase notifications can overtake in-flight script notifications on
    // the leader; a record for a document we no longer hold is expected
    // noise, not an error.
    ++Counters.OrphanRecords;
    return;
  }
  ReplicaDoc &D = It->second;
  if (D.Resyncing)
    return; // the pending snapshot supersedes everything before it
  if (R.Seq <= D.DocSeq) {
    ++Counters.DupRecords;
    return;
  }
  uint64_t Expect =
      R.Op == ReplOp::Submit ? D.Version + 1
                             : (D.Version == 0 ? uint64_t(0) : D.Version - 1);
  if (R.Incarnation != D.Incarnation || R.Version != Expect ||
      (R.Op == ReplOp::Rollback && D.Version == 0)) {
    requestResync(C, R.Doc);
    return;
  }
  persist::DecodeScriptResult Dec = persist::decodeEditScript(Sig, R.Blob);
  LinearTypeChecker TC(Sig);
  if (!Dec.Ok || !TC.checkWellTyped(Dec.Script).Ok ||
      !D.T->patchChecked(Dec.Script).Ok) {
    // patchChecked may have applied a prefix before failing; the
    // snapshot we request replaces the whole document, so a torn state
    // is never served (Resyncing gates reads' records until then).
    requestResync(C, R.Doc);
    return;
  }
  D.Version = R.Version;
  D.DocSeq = R.Seq;
  D.RefreshGen = HelloGen;
  // Fold the applied record into the provenance index and the retained
  // ring -- only after the patch succeeded, so attribution never gets
  // ahead of the tree.
  if (R.Op == ReplOp::Submit) {
    Prov.apply(R.Doc, R.Version, service::DocumentStore::StoreOp::Submit,
               R.Author, Dec.Script);
    HistoryRec H;
    H.Version = R.Version;
    H.Author = R.Author;
    H.Script = std::move(Dec.Script);
    D.Ring.push_back(std::move(H));
    if (D.Ring.size() > HistoryCap)
      D.Ring.pop_front();
  } else {
    Prov.apply(R.Doc, R.Version, service::DocumentStore::StoreOp::Rollback,
               R.Author, Dec.Script);
    // Rollback undoes the newest retained submit, exactly as the
    // leader's store pops its ring.
    if (!D.Ring.empty() && D.Ring.back().Version == R.Version + 1)
      D.Ring.pop_back();
    else
      D.Ring.clear();
  }
  ++Counters.RecordsApplied;
}

void Follower::onSnapshot(const DocSnapshotMsg &S) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Docs.find(S.Doc);

  if (S.Tombstone) {
    if (It != Docs.end() && S.Seq >= It->second.DocSeq) {
      Docs.erase(It);
      Prov.eraseDoc(S.Doc);
    }
    ++Counters.SnapshotsInstalled;
    return;
  }

  if (It != Docs.end() && !It->second.Resyncing &&
      It->second.DocSeq >= S.Seq && It->second.Incarnation >= S.Incarnation) {
    // Already at or past this state (live records beat the snapshot).
    It->second.RefreshGen = HelloGen;
    return;
  }

  TreeContext Tmp(Sig);
  persist::DecodeTreeResult D = persist::decodeTree(Sig, Tmp, S.Blob);
  if (!D.ok())
    return; // corrupt snapshot: keep the old state; a gap will re-sync
  MTree M = MTree::fromTree(Sig, D.Root);
  ReplicaDoc &RD = Docs[S.Doc];
  RD.T = std::make_unique<MTree>(std::move(M));
  RD.Version = S.Version;
  RD.Incarnation = S.Incarnation;
  RD.DocSeq = S.Seq;
  RD.Resyncing = false;
  RD.RefreshGen = HelloGen;
  // State transfer replaces the record chain: history before it is gone
  // (and degrades explicitly on queries), the provenance index comes
  // from the snapshot's canonical blob.
  RD.Ring.clear();
  RD.OpenAuthor.clear();
  if (S.ProvBlob.empty() || !Prov.installSnapshot(S.Doc, S.ProvBlob))
    Prov.eraseDoc(S.Doc);
  ++Counters.SnapshotsInstalled;
}

void Follower::onCatchupDone(const CatchupDoneMsg &D) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (D.Seq > LastSeq)
    LastSeq = D.Seq;
  if (D.SnapshotMode) {
    // Full state transfer: anything the dump did not refresh was erased
    // while we were away (its erase record may be long evicted).
    for (auto It = Docs.begin(); It != Docs.end();) {
      if (It->second.RefreshGen == HelloGen) {
        ++It;
      } else {
        Prov.eraseDoc(It->first);
        It = Docs.erase(It);
      }
    }
  }
  CatchupSeen = true;
}

void Follower::onShardSummary(Conn &C, const ShardSummaryMsg &M) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Counters.SummariesReceived;
  // Comparing states at different points in time would manufacture false
  // mismatches, so the summary only applies once this follower has
  // applied everything the summary reflects.
  if (!CatchupSeen || LastSeq < M.AsOfSeq)
    return;
  for (const ShardSummaryMsg::Entry &E : M.Entries) {
    auto It = Docs.find(E.Doc);
    if (It == Docs.end()) {
      // The leader holds a document this caught-up follower lacks: a
      // lost open no gap check noticed. The resync installs it.
      ++Counters.SummaryMismatches;
      requestResync(C, E.Doc);
      continue;
    }
    ReplicaDoc &D = It->second;
    // A doc that advanced past the summary's cut (or is mid-resync) is
    // being compared against stale information; skip, the next summary
    // covers it.
    if (D.Resyncing || D.DocSeq > M.AsOfSeq)
      continue;
    bool Mismatch = D.Version != E.Version;
    if (!Mismatch) {
      TreeContext Tmp(Sig);
      Tree *T = D.T->toTreePreservingUris(Tmp);
      Mismatch = T == nullptr ||
                 Sha256::hash(printSExprWithUris(Sig, T)).toHex() !=
                     E.DigestHex;
    }
    if (Mismatch) {
      ++Counters.SummaryMismatches;
      requestResync(C, E.Doc);
    }
  }
}

void Follower::requestResync(Conn &C, uint64_t Doc) {
  auto It = Docs.find(Doc);
  if (It != Docs.end()) {
    if (It->second.Resyncing)
      return;
    It->second.Resyncing = true;
  }
  ++Counters.ResyncsRequested;
  ResyncReqMsg R;
  R.Doc = Doc;
  C.send(encodeResyncReq(R));
}

Follower::ReadResult Follower::read(uint64_t Doc) const {
  std::lock_guard<std::mutex> Lock(Mu);
  ReadResult Out;
  auto It = Docs.find(Doc);
  if (It == Docs.end()) {
    Out.Error = "no such document";
    return Out;
  }
  TreeContext Tmp(Sig);
  Tree *T = It->second.T->toTreePreservingUris(Tmp);
  if (T == nullptr) {
    Out.Error = "document is not well-formed";
    return Out;
  }
  Out.Ok = true;
  Out.Version = It->second.Version;
  Out.TreeSize = T->size();
  Out.Text = printSExpr(Sig, T);
  Out.UriText = printSExprWithUris(Sig, T);
  Out.DigestHex = Sha256::hash(Out.UriText).toHex();
  return Out;
}

bool Follower::contains(uint64_t Doc) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Docs.count(Doc) != 0;
}

service::Response Follower::blameRead(uint64_t Doc, bool HasUri,
                                      URI Uri) const {
  // Single-node blame never needs the tree.
  if (HasUri)
    return blame::blameTreeResponse(Sig, nullptr, Prov, Doc, true, Uri);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Docs.find(Doc);
  if (It == Docs.end()) {
    service::Response R;
    R.Code = service::ErrCode::NoSuchDocument;
    R.Error = "no document " + std::to_string(Doc);
    return R;
  }
  TreeContext Tmp(Sig);
  Tree *T = It->second.T->toTreePreservingUris(Tmp);
  if (T == nullptr) {
    service::Response R;
    R.Error = "document is not well-formed";
    return R;
  }
  return blame::blameTreeResponse(Sig, T, Prov, Doc, false, Uri);
}

service::Response Follower::historyRead(uint64_t Doc, URI Uri) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Docs.find(Doc);
  if (It == Docs.end()) {
    service::Response R;
    R.Code = service::ErrCode::NoSuchDocument;
    R.Error = "no document " + std::to_string(Doc);
    return R;
  }
  std::vector<blame::HistoryRef> Ring;
  Ring.reserve(It->second.Ring.size());
  for (const HistoryRec &H : It->second.Ring) {
    blame::HistoryRef Ref;
    Ref.Version = H.Version;
    Ref.Author = H.Author;
    Ref.Script = &H.Script;
    Ring.push_back(Ref);
  }
  return blame::historyResponse(Prov, Doc, Uri, Ring);
}

Follower::Stats Follower::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S = Counters;
  S.LastSeq = LastSeq;
  S.Epoch = Epoch;
  S.MaxEpochSeen = MaxEpochSeen;
  S.Docs = Docs.size();
  return S;
}

std::string Follower::statsJson() const {
  Stats S = stats();
  char Buf[640];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"role\":\"follower\",\"last_seq\":%llu,\"epoch\":%llu,"
      "\"max_epoch_seen\":%llu,\"documents\":%llu,"
      "\"records_applied\":%llu,\"snapshots_installed\":%llu,"
      "\"resyncs_requested\":%llu,\"gap_rehellos\":%llu,"
      "\"stale_leader_rejects\":%llu,\"orphan_records\":%llu,"
      "\"dup_records\":%llu,\"summaries_received\":%llu,"
      "\"summary_mismatches\":%llu}",
      static_cast<unsigned long long>(S.LastSeq),
      static_cast<unsigned long long>(S.Epoch),
      static_cast<unsigned long long>(S.MaxEpochSeen),
      static_cast<unsigned long long>(S.Docs),
      static_cast<unsigned long long>(S.RecordsApplied),
      static_cast<unsigned long long>(S.SnapshotsInstalled),
      static_cast<unsigned long long>(S.ResyncsRequested),
      static_cast<unsigned long long>(S.GapRehellos),
      static_cast<unsigned long long>(S.StaleLeaderRejects),
      static_cast<unsigned long long>(S.OrphanRecords),
      static_cast<unsigned long long>(S.DupRecords),
      static_cast<unsigned long long>(S.SummariesReceived),
      static_cast<unsigned long long>(S.SummaryMismatches));
  return Buf;
}

void Follower::injectGapForTest(uint64_t Doc) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Docs.find(Doc);
  if (It != Docs.end())
    It->second.Version += 1000;
}

bool Follower::corruptDocForTest(uint64_t Doc) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Docs.find(Doc);
  if (It == Docs.end() || It->second.T == nullptr)
    return false;
  // Kind-preserving mutation of the first literal found: the tree stays
  // well-formed (rendering, export, and patching all keep working), only
  // its *content* is silently wrong. Version and seq are untouched.
  std::deque<MNode *> Work{It->second.T->root()};
  while (!Work.empty()) {
    MNode *N = Work.front();
    Work.pop_front();
    for (auto &[Link, Lit] : N->Lits) {
      switch (Lit.kind()) {
      case LitKind::Int:
        Lit = Literal(Lit.asInt() + 1);
        break;
      case LitKind::Float:
        Lit = Literal(Lit.asFloat() + 1.0);
        break;
      case LitKind::Bool:
        Lit = Literal(!Lit.asBool());
        break;
      case LitKind::String:
        Lit = Literal(Lit.asString() + "?");
        break;
      }
      return true;
    }
    for (auto &[Link, Kid] : N->Kids)
      Work.push_back(Kid);
  }
  return false;
}

void Follower::prepareForPromotion(uint64_t NewEpoch) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (NewEpoch > MaxEpochSeen)
      MaxEpochSeen = NewEpoch;
  }
  disconnect();
}

Follower::Export Follower::exportForPromotion() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Export Out;
  Out.LastSeq = LastSeq;
  Out.MaxEpochSeen = MaxEpochSeen;
  Out.Docs.reserve(Docs.size());
  for (const auto &[Doc, RD] : Docs) {
    ExportedDoc E;
    E.Doc = Doc;
    E.Incarnation = RD.Incarnation;
    E.Version = RD.Version;
    E.DocSeq = RD.DocSeq;
    E.OpenAuthor = RD.OpenAuthor;
    TreeContext Tmp(Sig);
    Tree *T = RD.T->toTreePreservingUris(Tmp);
    if (T == nullptr)
      continue; // cannot happen for applied state; skip defensively
    E.TreeBlob = persist::encodeTree(Sig, T);
    E.ProvBlob = Prov.snapshotDoc(Doc);
    E.History.reserve(RD.Ring.size());
    for (const HistoryRec &H : RD.Ring) {
      service::DocumentStore::RestoreEntry R;
      R.Version = H.Version;
      R.Script = H.Script;
      R.Author = H.Author;
      E.History.push_back(std::move(R));
    }
    Out.Docs.push_back(std::move(E));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// ReplicaReadHandler
//===----------------------------------------------------------------------===//

void ReplicaReadHandler::handle(net::NetRequest Req,
                                std::function<void(service::Response)> Done) {
  using service::ErrCode;
  using service::WireCommand;
  service::Response R;
  switch (Req.Cmd.K) {
  case WireCommand::Kind::Get: {
    Follower::ReadResult RR = F.read(Req.Cmd.Doc);
    if (!RR.Ok) {
      R.Error = RR.Error;
      R.Code = ErrCode::NoSuchDocument;
      break;
    }
    R.Ok = true;
    R.Version = RR.Version;
    R.TreeSize = RR.TreeSize;
    R.Payload = std::move(RR.Text);
    break;
  }
  case WireCommand::Kind::Blame:
    R = F.blameRead(Req.Cmd.Doc, Req.Cmd.HasUri, Req.Cmd.Uri);
    break;
  case WireCommand::Kind::History:
    R = F.historyRead(Req.Cmd.Doc, Req.Cmd.Uri);
    break;
  case WireCommand::Kind::Stats:
    R.Ok = true;
    R.Payload = F.statsJson();
    break;
  case WireCommand::Kind::Health: {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"role\":\"follower\",\"connected\":%s,"
                  "\"caught_up\":%s,\"last_seq\":%llu}",
                  F.connected() ? "true" : "false",
                  F.caughtUp() ? "true" : "false",
                  static_cast<unsigned long long>(F.lastSeq()));
    R.Ok = true;
    R.Payload = Buf;
    break;
  }
  case WireCommand::Kind::Promote:
    if (Cfg.OnPromote) {
      Done(Cfg.OnPromote(Req.Cmd.Expect.value_or(0)));
      return;
    }
    R.Error = "role management is disabled";
    break;
  case WireCommand::Kind::Demote:
    if (Cfg.OnDemote) {
      Done(Cfg.OnDemote(Req.Cmd.Arg));
      return;
    }
    R.Error = "role management is disabled";
    break;
  case WireCommand::Kind::Open:
  case WireCommand::Kind::Submit:
  case WireCommand::Kind::Rollback:
  case WireCommand::Kind::Save:
  case WireCommand::Kind::Scrub:
  case WireCommand::Kind::Recover:
    R.Error = "read-only follower replica; send writes to the leader";
    R.Code = ErrCode::NotLeader;
    if (Cfg.Role != nullptr) {
      net::RoleState::View V = Cfg.Role->view();
      R.LeaderAddr = V.LeaderAddr;
      R.RetryAfterMs = V.RetryAfterMs;
    }
    break;
  default:
    R.Error = "unroutable request";
    break;
  }
  Done(std::move(R));
}

//===- replica/Follower.h - Follower replica ---------------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A follower replica: connects to a leader, catches up (tail replay or
/// snapshot transfer), then applies the live record stream. Every script
/// is re-verified on arrival -- LinearTypeChecker (Definitions 3.1/3.2)
/// plus MTree::patchChecked compliance -- so a follower only ever holds
/// state a well-typed, compliant script sequence produces; replication
/// cannot smuggle in a state the type system would reject.
///
/// Consistency machinery:
///   - a global, gap-free seq: a gap after catch-up means lost records,
///     triggering a fresh handshake on the same link;
///   - per-document seq/version/incarnation checks: a mismatch (evicted
///     history, erase/reopen races) triggers a per-document ResyncReq
///     answered with a snapshot;
///   - epoch fencing: a leader announcing an epoch below the highest
///     this follower has ever seen is stale and is rejected.
///
/// Reads materialise the document's MTree into a typed tree (URIs
/// preserved) and render both s-expression forms plus a SHA-256 digest
/// of the URI form -- the byte-identical convergence check the tests
/// assert against the leader.
///
/// Threading: records apply on the event-loop thread; reads and stats
/// come from any thread under the state mutex. connectTo() blocks the
/// calling thread until the handshake completes (never call it from the
/// loop thread).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_REPLICA_FOLLOWER_H
#define TRUEDIFF_REPLICA_FOLLOWER_H

#include "blame/Provenance.h"
#include "net/EventLoop.h"
#include "net/NetServer.h"
#include "net/Role.h"
#include "replica/Protocol.h"
#include "service/DocumentStore.h"
#include "truechange/MTree.h"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace truediff {
namespace replica {

class Follower {
public:
  struct Config {
    /// Fencing floor: leaders announcing an epoch below this are
    /// rejected. Updated as leaders are accepted.
    uint64_t MaxEpochSeen = 0;
    unsigned HandshakeTimeoutMs = 5000;
    size_t MaxFrameBytes = net::MaxBinaryFrameBytes;
  };

  Follower(net::EventLoop &Loop, const SignatureTable &Sig, Config C);
  Follower(net::EventLoop &Loop, const SignatureTable &Sig);
  ~Follower();

  /// Connects to a leader and blocks until the handshake completes (the
  /// LeaderHello was accepted), the leader was rejected as stale, or the
  /// timeout expired. The loop must already be running; must not be
  /// called from the loop thread. Reconnecting after a disconnect keeps
  /// the applied state and catches up from lastSeq().
  bool connectTo(const std::string &Host, uint16_t Port,
                 std::string *Err = nullptr);

  /// Drops the leader link (no-op if not connected). The applied state
  /// stays readable.
  void disconnect();

  bool connected() const;
  /// True once the current link delivered its CatchupDone.
  bool caughtUp() const;
  uint64_t lastSeq() const;

  struct ReadResult {
    bool Ok = false;
    std::string Error;
    uint64_t Version = 0;
    uint64_t TreeSize = 0;
    std::string Text;      ///< plain s-expression
    std::string UriText;   ///< s-expression with URI subscripts
    std::string DigestHex; ///< SHA-256 of UriText: the convergence probe
  };
  ReadResult read(uint64_t Doc) const;
  bool contains(uint64_t Doc) const;

  /// Blame/history reads served from the follower's own provenance
  /// index, maintained from the record stream (and installed from
  /// snapshot transfers), so attribution answers do not need the leader.
  /// Rendering is shared with the leader (blame/Render.h), so a
  /// caught-up follower answers byte-identically.
  service::Response blameRead(uint64_t Doc, bool HasUri, URI Uri) const;
  service::Response historyRead(uint64_t Doc, URI Uri) const;

  struct Stats {
    uint64_t LastSeq = 0;
    uint64_t Epoch = 0;
    uint64_t MaxEpochSeen = 0;
    uint64_t Docs = 0;
    uint64_t RecordsApplied = 0;
    uint64_t SnapshotsInstalled = 0;
    uint64_t ResyncsRequested = 0;
    uint64_t GapRehellos = 0;
    uint64_t StaleLeaderRejects = 0;
    uint64_t OrphanRecords = 0;
    uint64_t DupRecords = 0;
    uint64_t SummariesReceived = 0;
    /// Anti-entropy summary entries whose version or content digest
    /// disagreed with our applied state (each one triggered a resync).
    uint64_t SummaryMismatches = 0;
  };
  Stats stats() const;
  std::string statsJson() const;

  /// Test hook: corrupts \p Doc's applied version so the next record for
  /// it fails the version check and triggers a ResyncReq.
  void injectGapForTest(uint64_t Doc);

  /// Test hook: silently mutates one literal of \p Doc's applied tree
  /// *without* touching its version or seq -- divergence no gap or
  /// version check can ever notice, only the anti-entropy digest
  /// comparison. Returns false if the document is absent or its tree
  /// holds no literal to mutate.
  bool corruptDocForTest(uint64_t Doc);

  /// First half of a promotion (see replica/Failover.h): drops the
  /// leader link and raises the fencing floor to \p NewEpoch, so no
  /// leader of an older epoch can ever be accepted again -- the old
  /// leader is fenced from this node the instant promotion begins.
  void prepareForPromotion(uint64_t NewEpoch);

  /// One document of the applied state, packaged for installation into a
  /// leader-side DocumentStore.
  struct ExportedDoc {
    uint64_t Doc = 0;
    uint64_t Incarnation = 0;
    uint64_t Version = 0;
    uint64_t DocSeq = 0;
    /// Attribution of version 0 (empty after a snapshot install, which
    /// does not carry it -- acceptable, blame still answers from the
    /// provenance blob).
    std::string OpenAuthor;
    /// encodeTree blob, URIs preserved: the state the store restores.
    std::string TreeBlob;
    /// Canonical provenance blob (ProvenanceIndex::snapshotDoc).
    std::string ProvBlob;
    /// Retained submit history (oldest first), so the promoted leader
    /// can still roll back and answer history queries.
    std::vector<service::DocumentStore::RestoreEntry> History;
  };

  struct Export {
    uint64_t LastSeq = 0;
    uint64_t MaxEpochSeen = 0;
    std::vector<ExportedDoc> Docs;
  };

  /// Second half of a promotion: one consistent cut of the applied state
  /// -- every document is the product of the committed record prefix up
  /// to LastSeq (taken under the state mutex, so no record can land
  /// mid-export). The follower keeps serving reads from its own state
  /// afterwards; the export is a copy.
  Export exportForPromotion() const;

private:
  /// One retained submit record, for history rendering; mirrors the
  /// leader's history ring (same capacity), so both sides list the same
  /// retained revisions.
  struct HistoryRec {
    uint64_t Version = 0;
    std::string Author;
    EditScript Script;
  };

  /// Bound of the per-document record ring; matches the store's default
  /// HistoryCapacity so leader and follower history degrade at the same
  /// boundary.
  static constexpr size_t HistoryCap = 32;

  struct ReplicaDoc {
    std::unique_ptr<MTree> T;
    uint64_t Version = 0;
    uint64_t Incarnation = 0;
    /// Global seq of the newest record reflected in T.
    uint64_t DocSeq = 0;
    /// A ResyncReq is in flight; records are ignored until the snapshot
    /// lands.
    bool Resyncing = false;
    /// Handshake generation that last refreshed this doc; snapshot-mode
    /// catch-up prunes docs the dump did not refresh.
    uint64_t RefreshGen = 0;
    /// Retained submit records, oldest first. Cleared on snapshot
    /// install (history before a state transfer degrades explicitly,
    /// never silently misattributes).
    std::deque<HistoryRec> Ring;
    /// Author of version 0, from the Open record (empty when the doc
    /// arrived by snapshot, which does not carry it).
    std::string OpenAuthor;
  };

  enum class Handshake { Idle, Pending, Accepted, Stale, Failed };

  void onData(net::Conn &C);
  bool parseOne(net::Conn &C);
  void onLeaderHello(net::Conn &C, const LeaderHello &LH);
  void onRecord(net::Conn &C, const RecordMsg &R);
  void onSnapshot(const DocSnapshotMsg &S);
  void onShardSummary(net::Conn &C, const ShardSummaryMsg &M);
  void onCatchupDone(const CatchupDoneMsg &D);
  void applyDocRecord(net::Conn &C, const RecordMsg &R);
  void requestResync(net::Conn &C, uint64_t Doc);
  void failHandshake(Handshake Result);

  net::EventLoop &Loop;
  const SignatureTable &Sig;
  const Config Cfg;

  mutable std::mutex Mu;
  std::condition_variable HandshakeCv;
  Handshake HsState = Handshake::Idle;
  net::Conn *Link = nullptr; ///< loop-thread use only
  bool IsConnected = false;
  bool CatchupSeen = false;
  uint64_t HelloGen = 0;
  uint64_t LastSeq = 0;
  /// Highest seq acked to the current leader; acks fire when a data
  /// batch advanced LastSeq past this.
  uint64_t LastAckSent = 0;
  uint64_t Epoch = 0;
  uint64_t MaxEpochSeen = 0;
  std::unordered_map<uint64_t, ReplicaDoc> Docs;
  Stats Counters;
  /// Per-node attribution, folded from the same records the trees are
  /// built from (and installed from snapshot transfers).
  blame::ProvenanceIndex Prov;
};

/// Serves the follower's state through a NetServer: get/stats/health
/// work, every write answers ErrCode::NotLeader -- carrying the leader's
/// address and a retry hint when a RoleState is wired in. This is the
/// follower's read endpoint -- clients point reads here and writes at
/// the leader -- and also the follower's admin endpoint: the promote
/// hook, when set, turns this node into the leader (replica/Failover).
class ReplicaReadHandler : public net::RequestHandler {
public:
  struct Config {
    /// Source of the leader address / retry hint attached to not_leader
    /// answers. Null = bare not_leader. Must outlive the handler.
    net::RoleState *Role = nullptr;
    /// promote <epoch>: run the failover machinery. Unset = error.
    std::function<service::Response(uint64_t NewEpoch)> OnPromote;
    /// demote [<host:port>]: update the redirect hint. Unset = error.
    std::function<service::Response(std::string LeaderAddr)> OnDemote;
  };

  explicit ReplicaReadHandler(Follower &F) : F(F) {}
  ReplicaReadHandler(Follower &F, Config C) : F(F), Cfg(std::move(C)) {}

  void handle(net::NetRequest Req,
              std::function<void(service::Response)> Done) override;

private:
  Follower &F;
  const Config Cfg;
};

} // namespace replica
} // namespace truediff

#endif // TRUEDIFF_REPLICA_FOLLOWER_H

//===- service/Metrics.h - Counters and latency histograms ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for the concurrent diff service: lock-free counters and
/// log-bucketed latency histograms (p50/p95/p99 per operation), dumpable
/// as JSON. All members are atomics, so worker threads record without
/// coordination and a reader thread can summarize at any time; summaries
/// are monotone snapshots, not linearizable cuts, which is the standard
/// contract for service metrics.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_METRICS_H
#define TRUEDIFF_SERVICE_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace truediff {
namespace service {

/// The typed operations the service processes.
enum class OpKind : unsigned {
  Open,
  Submit,
  Rollback,
  GetVersion,
  Stats,
  Blame,
  History,
};

inline constexpr unsigned NumOpKinds = 7;

/// Returns "open", "submit", ...
const char *opKindName(OpKind Kind);

/// A fixed-size histogram over power-of-two microsecond buckets: bucket i
/// counts latencies in [2^(i-1), 2^i) us (bucket 0 counts < 1 us). 40
/// buckets cover up to ~9 minutes, far beyond any request we serve.
class LatencyHistogram {
public:
  static constexpr size_t NumBuckets = 40;

  void record(double Ms);

  struct Summary {
    uint64_t Count = 0;
    double MeanMs = 0;
    double P50Ms = 0;
    double P95Ms = 0;
    double P99Ms = 0;
    double MaxMs = 0;
  };

  Summary summarize() const;

  /// {"count":..,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..,
  ///  "max_ms":..}
  std::string toJson() const;

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> SumUs{0};
  std::atomic<uint64_t> MaxUs{0};
};

/// All service counters. Owned by DiffService; exposed const to callers.
struct ServiceMetrics {
  struct PerOp {
    std::atomic<uint64_t> Requests{0};
    std::atomic<uint64_t> Failures{0};
    LatencyHistogram Latency;
  };

  /// Indexed by OpKind.
  std::array<PerOp, NumOpKinds> Ops;

  /// Time requests spend queued before a worker picks them up.
  LatencyHistogram QueueWait;

  /// Requests rejected because the queue was full (backpressure) or the
  /// service was shut down.
  std::atomic<uint64_t> Rejected{0};

  /// Successful submits, i.e. edit scripts produced and emitted.
  std::atomic<uint64_t> ScriptsEmitted{0};
  /// Total raw edit operations across emitted scripts.
  std::atomic<uint64_t> EditsEmitted{0};
  /// Total coalesced edits (the paper's conciseness metric).
  std::atomic<uint64_t> CoalescedEdits{0};
  /// Total source+target nodes processed by submits (throughput basis).
  std::atomic<uint64_t> NodesDiffed{0};
  /// Total stored-tree nodes rehashed serving submits: dirty paths only
  /// when the store persists digests (warm), full trees when it does not
  /// (cold). NodesDiffed - NodesRehashed approximates the hashing the
  /// digest cache avoided.
  std::atomic<uint64_t> NodesRehashed{0};

  /// Requests shed because their deadline had already expired when a
  /// worker dequeued them (the response carries a retry-after hint).
  std::atomic<uint64_t> DeadlineExpired{0};
  /// Requests shed by the sojourn-time overload control: their document's
  /// queue wait stayed above the shed target, so the newest queued
  /// requests were answered with a per-document retry-after hint instead
  /// of being served.
  std::atomic<uint64_t> Shed{0};
  /// Subset of Shed rejected at enqueue: the document's estimated backlog
  /// (queue depth x observed service time) already exceeded the shed
  /// target when the request arrived, so it never occupied a queue slot.
  std::atomic<uint64_t> ArrivalShed{0};
  /// Requests rejected by parse-time admission caps (tree depth or node
  /// count).
  std::atomic<uint64_t> AdmissionRejected{0};
  /// Requests rejected because the process-wide memory budget was
  /// exhausted (up front at enqueue, or mid-parse).
  std::atomic<uint64_t> BudgetRejected{0};
  /// Submits answered with the type-checked replace-root fallback script
  /// because the diff would have blown the request's deadline.
  std::atomic<uint64_t> FallbackScripts{0};

  /// Persistence circuit-breaker gauges, mirrored from the health source
  /// (see DiffService::setHealthSource) just before each JSON dump --
  /// mutable because mirroring happens under const statsJson(). Zero when
  /// the service runs without persistence.
  mutable std::atomic<uint64_t> BreakerTrips{0};
  /// Cumulative microseconds the persistence layer spent degraded.
  mutable std::atomic<uint64_t> DegradedUs{0};

  /// Memory-budget gauges, mirrored from the budget just before each JSON
  /// dump (mutable for the same reason as the breaker gauges). Zero when
  /// the service runs without a budget.
  mutable std::atomic<uint64_t> MemUsedBytes{0};
  mutable std::atomic<uint64_t> MemBudgetBytes{0};

  /// Dumps everything as one JSON object. Queue depth/capacity and the
  /// number of per-document sub-queues are live gauges owned by the
  /// service, so the caller passes them in.
  std::string toJson(size_t QueueDepth, size_t QueueCapacity,
                     unsigned Workers, size_t DocQueues = 0) const;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_METRICS_H

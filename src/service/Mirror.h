//===- service/Mirror.h - TreeDatabase on the script stream -----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Subscribes a per-document incremental TreeDatabase (the paper's IncA
/// fact database, Section 6) to a DocumentStore's script stream. Because
/// the store emits the initializing script on open, the forward script on
/// submit, and the inverse script on rollback -- each in per-document
/// order -- the mirror maintains every database purely by constant-time
/// edit application, never re-walking a tree. This is the paper's
/// incremental-computing story operating inside the concurrent service.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_MIRROR_H
#define TRUEDIFF_SERVICE_MIRROR_H

#include "incremental/TreeDatabase.h"
#include "service/DocumentStore.h"

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace truediff {
namespace service {

class DatabaseMirror {
public:
  DatabaseMirror(const SignatureTable &Sig, incremental::IndexMode Mode)
      : Sig(Sig), Mode(Mode) {}

  /// Registers this mirror as a script listener on \p Store. The mirror
  /// must outlive the store's traffic. Call before serving requests.
  void attach(DocumentStore &Store) {
    Store.addScriptListener([this](DocId Doc, uint64_t Version,
                                   DocumentStore::StoreOp,
                                   const EditScript &Script,
                                   const DocumentStore::ScriptInfo &) {
      onScript(Doc, Version, Script);
    });
  }

  /// Applies one script to \p Doc's database, creating it (from the empty
  /// state) on first sight. Thread-safe; per-document calls arrive in
  /// order because the store invokes listeners under the document lock.
  void onScript(DocId Doc, uint64_t Version, const EditScript &Script);

  size_t numDocuments() const;

  /// Runs \p Fn with \p Doc's database under the mirror's lock for that
  /// document; returns false if the document was never seen.
  bool withDatabase(
      DocId Doc,
      const std::function<void(const incremental::TreeDatabase &)> &Fn) const;

  /// The version of the last script applied for \p Doc, or nullopt.
  std::optional<uint64_t> lastVersion(DocId Doc) const;

private:
  struct Entry {
    mutable std::mutex Mu;
    incremental::TreeDatabase Db;
    uint64_t LastVersion = 0;

    Entry(const SignatureTable &Sig, incremental::IndexMode Mode)
        : Db(Sig, Mode) {
      Db.initEmpty();
    }
  };

  Entry &entryFor(DocId Doc);
  const Entry *lookup(DocId Doc) const;

  const SignatureTable &Sig;
  incremental::IndexMode Mode;
  mutable std::mutex MapMu;
  std::unordered_map<DocId, std::unique_ptr<Entry>> Entries;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_MIRROR_H

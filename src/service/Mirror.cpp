//===- service/Mirror.cpp - TreeDatabase on the script stream --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Mirror.h"

using namespace truediff;
using namespace truediff::service;

DatabaseMirror::Entry &DatabaseMirror::entryFor(DocId Doc) {
  std::lock_guard<std::mutex> Lock(MapMu);
  std::unique_ptr<Entry> &Slot = Entries[Doc];
  if (!Slot)
    Slot = std::make_unique<Entry>(Sig, Mode);
  return *Slot;
}

const DatabaseMirror::Entry *DatabaseMirror::lookup(DocId Doc) const {
  std::lock_guard<std::mutex> Lock(MapMu);
  auto It = Entries.find(Doc);
  return It == Entries.end() ? nullptr : It->second.get();
}

void DatabaseMirror::onScript(DocId Doc, uint64_t Version,
                              const EditScript &Script) {
  Entry &E = entryFor(Doc);
  std::lock_guard<std::mutex> Lock(E.Mu);
  E.Db.applyScript(Script);
  E.LastVersion = Version;
}

size_t DatabaseMirror::numDocuments() const {
  std::lock_guard<std::mutex> Lock(MapMu);
  return Entries.size();
}

bool DatabaseMirror::withDatabase(
    DocId Doc,
    const std::function<void(const incremental::TreeDatabase &)> &Fn) const {
  const Entry *E = lookup(Doc);
  if (E == nullptr)
    return false;
  std::lock_guard<std::mutex> Lock(E->Mu);
  Fn(E->Db);
  return true;
}

std::optional<uint64_t> DatabaseMirror::lastVersion(DocId Doc) const {
  const Entry *E = lookup(Doc);
  if (E == nullptr)
    return std::nullopt;
  std::lock_guard<std::mutex> Lock(E->Mu);
  return E->LastVersion;
}

//===- service/FairQueue.h - Fair-share bounded MPMC queue ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer multi-consumer queue with per-key sub-queues
/// drained by deficit round-robin (DRR), replacing the single global FIFO
/// on the DiffService admission path: one hot or hostile document can no
/// longer monopolise the workers, because every active key gets a quantum
/// of service per scheduling turn regardless of how deep its own backlog
/// runs.
///
/// Contracts carried over from BoundedQueue: producers never block
/// (tryPush reports backpressure instead), consumers block in pop until
/// an item arrives or the queue is closed *and* drained, and a failed
/// push leaves the item untouched. New here:
///
///  - tryPush takes a key and a cost (expected service time in arbitrary
///    units, e.g. microseconds); the scheduler serves a key while its
///    accumulated deficit covers the next item's cost, so keys with
///    expensive requests get proportionally fewer slots per turn.
///  - an optional per-key capacity bounds any single key's backlog below
///    the shared capacity (a hot tenant hits its own wall first).
///  - shedNewest(Key) removes the youngest queued item of a key, which is
///    what CoDel-style load shedding wants: old requests are about to be
///    answered anyway, fresh arrivals are the ones worth pushing back on.
///
/// Items within one key stay FIFO; fairness reorders *across* keys only.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_FAIRQUEUE_H
#define TRUEDIFF_SERVICE_FAIRQUEUE_H

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace truediff {
namespace service {

/// Outcome of FairQueue::tryPush. Full and KeyFull are both backpressure,
/// but callers report them differently (global vs. per-document hints).
enum class PushResult : uint8_t {
  Ok,      ///< enqueued
  Full,    ///< shared capacity exhausted
  KeyFull, ///< this key's sub-queue is at its per-key capacity
  Closed,  ///< queue is shut down
};

template <typename T> class FairQueue {
public:
  /// \p Capacity bounds the total queued items across all keys.
  /// \p PerKeyCapacity bounds any single key's backlog (0 = no per-key
  /// bound). \p Quantum is the deficit granted to each active key per
  /// scheduling turn, in the same units as the costs passed to tryPush.
  FairQueue(size_t Capacity, size_t PerKeyCapacity, uint64_t Quantum)
      : Capacity(Capacity), PerKeyCapacity(PerKeyCapacity),
        Quantum(std::max<uint64_t>(1, Quantum)) {}

  /// Enqueues \p Item under \p Key with expected service cost \p Cost.
  /// On any failure the item is left untouched (not moved from). Costs
  /// are clamped to [1, 64 * Quantum] so a single mispredicted request
  /// can never stall its key forever (a key's deficit grows by Quantum
  /// every turn, so any clamped cost is payable within 64 turns).
  PushResult tryPush(uint64_t Key, T &&Item, uint64_t Cost) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Closed)
        return PushResult::Closed;
      if (Size >= Capacity)
        return PushResult::Full;
      SubQueue &Sub = Subs[Key];
      if (PerKeyCapacity != 0 && Sub.Items.size() >= PerKeyCapacity)
        return PushResult::KeyFull;
      Cost = std::min(std::max<uint64_t>(1, Cost), 64 * Quantum);
      if (Sub.Items.empty())
        Active.push_back(Key);
      Sub.Items.emplace_back(std::move(Item), Cost);
      ++Size;
    }
    NotEmpty.notify_one();
    return PushResult::Ok;
  }

  /// Blocks until an item is available and returns the next one in DRR
  /// order, or std::nullopt once the queue is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Closed || Size != 0; });
    if (Size == 0)
      return std::nullopt;

    // Deficit round-robin over the active keys, one item per visit:
    // grant the head key a quantum, serve its head item if the deficit
    // covers the item's cost, then rotate regardless. Serving at most
    // one item per visit keeps the scheduler latency-fair (a flood of
    // cheap requests cannot spend its whole quantum in one burst while
    // a cold key waits); costs still weight throughput, because an
    // expensive item needs several visits to accumulate its cost.
    // Cost clamping at push (64 quanta) and the deficit cap guarantee
    // every key is served within a bounded number of ring rotations.
    for (;;) {
      uint64_t Key = Active.front();
      SubQueue &Sub = Subs.find(Key)->second;
      if (!Sub.TurnCharged) {
        Sub.Deficit = std::min(Sub.Deficit + Quantum, 64 * Quantum);
        Sub.TurnCharged = true;
      }
      if (Sub.Items.front().second <= Sub.Deficit) {
        Sub.Deficit -= Sub.Items.front().second;
        T Item = std::move(Sub.Items.front().first);
        Sub.Items.pop_front();
        --Size;
        Active.pop_front();
        if (Sub.Items.empty()) {
          // An emptied key leaves the ring and forfeits its deficit, so
          // idle keys cannot bank credit (standard DRR).
          Subs.erase(Key);
        } else {
          Active.push_back(Key);
          Sub.TurnCharged = false;
        }
        return Item;
      }
      Active.pop_front();
      Active.push_back(Key);
      Sub.TurnCharged = false;
    }
  }

  /// Removes and returns the *youngest* queued item of \p Key, or
  /// std::nullopt if the key has no queued items. Used by load shedding:
  /// fresh arrivals are pushed back on, requests near the head are about
  /// to be served anyway.
  std::optional<T> shedNewest(uint64_t Key) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Subs.find(Key);
    if (It == Subs.end())
      return std::nullopt;
    SubQueue &Sub = It->second;
    T Item = std::move(Sub.Items.back().first);
    Sub.Items.pop_back();
    --Size;
    if (Sub.Items.empty()) {
      Active.erase(std::find(Active.begin(), Active.end(), Key));
      Subs.erase(It);
    }
    return Item;
  }

  /// Stops accepting new items; blocked consumers drain the remainder and
  /// then observe end-of-queue.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Size;
  }

  /// Queued items under \p Key.
  size_t depthOf(uint64_t Key) const {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Subs.find(Key);
    return It == Subs.end() ? 0 : It->second.Items.size();
  }

  /// Number of keys with at least one queued item.
  size_t activeKeys() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Active.size();
  }

  size_t capacity() const { return Capacity; }
  size_t perKeyCapacity() const { return PerKeyCapacity; }

private:
  struct SubQueue {
    std::deque<std::pair<T, uint64_t>> Items; ///< (item, cost) FIFO
    uint64_t Deficit = 0;
    /// Whether this key already received its quantum for the current
    /// scheduling turn; reset when the key is rotated to the back.
    bool TurnCharged = false;
  };

  const size_t Capacity;
  const size_t PerKeyCapacity;
  const uint64_t Quantum;

  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::unordered_map<uint64_t, SubQueue> Subs;
  /// Round-robin ring of keys with queued items; invariant: Key appears
  /// here exactly once iff Subs[Key].Items is non-empty, and Size is the
  /// sum of all sub-queue sizes.
  std::deque<uint64_t> Active;
  size_t Size = 0;
  bool Closed = false;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_FAIRQUEUE_H

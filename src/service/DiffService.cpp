//===- service/DiffService.cpp - Worker-pool diff serving ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/DiffService.h"

#include "truechange/Serialize.h"

using namespace truediff;
using namespace truediff::service;

/// DRR quantum, in the queue's cost unit (microseconds of expected
/// service time): every active document may consume up to 1ms of worker
/// time per scheduling turn. Costs are clamped to 64 quanta by the queue,
/// so the granularity only affects how finely expensive documents are
/// deprioritised, not whether they are served.
static constexpr uint64_t QuantumUs = 1000;

DiffService::DiffService(DocumentStore &Store, ServiceConfig C)
    : Store(Store), Cfg(C),
      NumWorkers(C.Workers != 0 ? C.Workers
                                : std::max(1u, std::thread::hardware_concurrency())),
      Queue(std::max<size_t>(1, C.QueueCapacity), C.PerDocQueueCapacity,
            QuantumUs) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

DiffService::~DiffService() { shutdown(); }

void DiffService::shutdown() {
  if (Stopped.exchange(true))
    return;
  Queue.close();
  for (std::thread &W : Workers)
    W.join();
  // All accepted requests have executed; let durability catch up before
  // the caller treats the drain as complete.
  if (DrainHook)
    DrainHook();
}

OpKind DiffService::kindOf(const Operation &Op) {
  return static_cast<OpKind>(Op.index());
}

uint64_t DiffService::keyOf(const Operation &Op) {
  return std::visit(
      [](const auto &Req) -> uint64_t {
        using T = std::decay_t<decltype(Req)>;
        if constexpr (std::is_same_v<T, StatsOp>)
          return StatsKey;
        else
          return Req.Doc;
      },
      Op);
}

uint64_t DiffService::costOf(uint64_t Key, size_t PayloadBytes) const {
  double EwmaMs = 0;
  double DocRate = 0;
  double GlobalRate = 0;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    auto It = DocStates.find(Key);
    if (It != DocStates.end()) {
      EwmaMs = It->second.EwmaServiceMs;
      DocRate = It->second.EwmaUsPerByte;
    }
    GlobalRate = GlobalUsPerByte;
  }
  // Per-request pricing: when the transport reports the payload size at
  // enqueue, charge this request its own expected cost -- a 100-byte
  // tweak and a megabyte rewrite of the same document no longer cost the
  // scheduler the same. A document on first sight is priced by the
  // global per-byte rate instead of a flat quantum guess.
  if (PayloadBytes != 0) {
    double Rate = DocRate > 0 ? DocRate : GlobalRate;
    if (Rate > 0) {
      double Us = static_cast<double>(PayloadBytes) * Rate;
      return Us < 1.0 ? 1 : static_cast<uint64_t>(Us); // FairQueue clamps
    }
  }
  if (EwmaMs <= 0)
    return QuantumUs; // unseen document: one quantum, plain round-robin
  double Us = EwmaMs * 1000.0;
  return Us < 1.0 ? 1 : static_cast<uint64_t>(Us); // FairQueue clamps high
}

void DiffService::noteServiceTime(uint64_t Key, double Ms,
                                  size_t PayloadBytes) {
  if (Key == StatsKey)
    return;
  std::lock_guard<std::mutex> Lock(StateMu);
  DocState &DS = DocStates[Key];
  DS.EwmaServiceMs =
      DS.EwmaServiceMs <= 0 ? Ms : 0.8 * DS.EwmaServiceMs + 0.2 * Ms;
  if (PayloadBytes != 0) {
    double Rate = Ms * 1000.0 / static_cast<double>(PayloadBytes);
    DS.EwmaUsPerByte =
        DS.EwmaUsPerByte <= 0 ? Rate : 0.8 * DS.EwmaUsPerByte + 0.2 * Rate;
    GlobalUsPerByte =
        GlobalUsPerByte <= 0 ? Rate : 0.8 * GlobalUsPerByte + 0.2 * Rate;
  }
}

bool DiffService::shouldShedAtArrival(uint64_t Key, OpKind Kind) const {
  if (Cfg.ShedTargetMs == 0 || Key == StatsKey ||
      (Kind != OpKind::Open && Kind != OpKind::Submit))
    return false;
  double EwmaMs = 0;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    auto It = DocStates.find(Key);
    if (It != DocStates.end())
      EwmaMs = It->second.EwmaServiceMs;
  }
  // No sample yet: admit. The dequeue-side CoDel control still protects
  // against a document whose very first burst overwhelms the workers.
  if (EwmaMs <= 0)
    return false;
  return static_cast<double>(Queue.depthOf(Key)) * EwmaMs >
         static_cast<double>(Cfg.ShedTargetMs);
}

uint64_t DiffService::retryAfterHintMs(uint64_t Key) const {
  double PerRequestMs = 0;
  if (Key != StatsKey) {
    std::lock_guard<std::mutex> Lock(StateMu);
    auto It = DocStates.find(Key);
    if (It != DocStates.end())
      PerRequestMs = It->second.EwmaServiceMs;
  }
  if (PerRequestMs <= 0) {
    LatencyHistogram::Summary S =
        Metrics.Ops[static_cast<unsigned>(OpKind::Submit)].Latency.summarize();
    PerRequestMs = S.Count != 0 ? S.MeanMs : 1.0;
  }
  size_t Depth = Key == StatsKey ? Queue.depth() : Queue.depthOf(Key);
  double Hint = static_cast<double>(Depth + 1) * PerRequestMs;
  return Hint < 1.0 ? 1 : static_cast<uint64_t>(Hint);
}

std::future<Response> DiffService::enqueue(Operation Op, OpKind Kind,
                                           uint64_t DeadlineMs,
                                           size_t PayloadBytes,
                                           ResponseCallback Done) {
  if (DeadlineMs == 0)
    DeadlineMs = Cfg.DefaultDeadlineMs;
  uint64_t Key = keyOf(Op);
  Request R;
  R.Op = std::move(Op);
  R.Done = std::move(Done);
  R.Enqueued = Clock::now();
  if (DeadlineMs != 0)
    R.Deadline = R.Enqueued + std::chrono::milliseconds(DeadlineMs);
  R.PayloadBytes = PayloadBytes;
  std::future<Response> Fut;
  if (!R.Done)
    Fut = R.Promise.get_future();

  // Resource admission, up front: a request that would parse new trees
  // into an exhausted memory budget is refused before it queues, so the
  // budget bounds the process instead of the OOM killer. Reads and
  // rollbacks still pass -- they allocate at most what existing trees
  // already pay for.
  if (Cfg.MemBudget != nullptr && Cfg.MemBudget->over() &&
      (Kind == OpKind::Open || Kind == OpKind::Submit)) {
    Metrics.BudgetRejected.fetch_add(1, std::memory_order_relaxed);
    Metrics.Ops[static_cast<unsigned>(Kind)].Failures.fetch_add(
        1, std::memory_order_relaxed);
    Response Rej;
    Rej.Code = ErrCode::MemoryBudget;
    Rej.Error = "memory budget exhausted (" +
                std::to_string(Cfg.MemBudget->used()) + " of " +
                std::to_string(Cfg.MemBudget->limit()) + " bytes in use)";
    Rej.RetryAfterMs = retryAfterHintMs(Key);
    fulfill(R, std::move(Rej));
    return Fut;
  }

  // Arrival shedding: when the document's estimated backlog already
  // exceeds the sojourn target, this request would only be shed at
  // dequeue after holding a queue slot the whole time -- reject it now,
  // with the same typed error and retry hint the dequeue path produces.
  if (shouldShedAtArrival(Key, Kind)) {
    Metrics.Shed.fetch_add(1, std::memory_order_relaxed);
    Metrics.ArrivalShed.fetch_add(1, std::memory_order_relaxed);
    Metrics.Ops[static_cast<unsigned>(Kind)].Failures.fetch_add(
        1, std::memory_order_relaxed);
    Response Rej;
    Rej.Code = ErrCode::Shed;
    Rej.Error = "shed at arrival: estimated backlog exceeds the " +
                std::to_string(Cfg.ShedTargetMs) + "ms target";
    Rej.RetryAfterMs = retryAfterHintMs(Key);
    fulfill(R, std::move(Rej));
    return Fut;
  }

  PushResult P = Queue.tryPush(Key, std::move(R), costOf(Key, PayloadBytes));
  if (P != PushResult::Ok) {
    Metrics.Rejected.fetch_add(1, std::memory_order_relaxed);
    Metrics.Ops[static_cast<unsigned>(Kind)].Failures.fetch_add(
        1, std::memory_order_relaxed);
    Response Rej;
    switch (P) {
    case PushResult::Closed:
      Rej.Error = "service is shut down";
      Rej.Code = ErrCode::Shutdown;
      break;
    case PushResult::KeyFull:
      Rej.Error = "document queue full (backpressure)";
      Rej.Code = ErrCode::Backpressure;
      Rej.RetryAfterMs = retryAfterHintMs(Key);
      break;
    default:
      Rej.Error = "request queue full (backpressure)";
      Rej.Code = ErrCode::Backpressure;
      Rej.RetryAfterMs = retryAfterHintMs(StatsKey);
      break;
    }
    fulfill(R, std::move(Rej));
  }
  return Fut;
}

void DiffService::openCb(DocId Doc, TreeBuilder Build, size_t PayloadBytes,
                         ResponseCallback Done) {
  openCb(Doc, std::move(Build), PayloadBytes, std::string(), std::move(Done));
}
void DiffService::openCb(DocId Doc, TreeBuilder Build, size_t PayloadBytes,
                         std::string Author, ResponseCallback Done) {
  enqueue(OpenOp{Doc, std::move(Build), std::move(Author)}, OpKind::Open, 0,
          PayloadBytes, std::move(Done));
}
void DiffService::submitCb(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                           size_t PayloadBytes, bool RawScript,
                           ResponseCallback Done) {
  submitCb(Doc, std::move(Build), DeadlineMs, PayloadBytes, RawScript,
           std::string(), std::move(Done));
}
void DiffService::submitCb(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                           size_t PayloadBytes, bool RawScript,
                           std::string Author, ResponseCallback Done) {
  submitCb(Doc, std::move(Build), DeadlineMs, PayloadBytes, RawScript,
           std::move(Author), std::nullopt, std::move(Done));
}
void DiffService::submitCb(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                           size_t PayloadBytes, bool RawScript,
                           std::string Author, std::optional<uint64_t> Expect,
                           ResponseCallback Done) {
  enqueue(SubmitOp{Doc, std::move(Build), RawScript, std::move(Author),
                   Expect},
          OpKind::Submit, DeadlineMs, PayloadBytes, std::move(Done));
}
void DiffService::rollbackCb(DocId Doc, ResponseCallback Done) {
  enqueue(RollbackOp{Doc}, OpKind::Rollback, 0, 0, std::move(Done));
}
void DiffService::getVersionCb(DocId Doc, ResponseCallback Done) {
  enqueue(GetVersionOp{Doc}, OpKind::GetVersion, 0, 0, std::move(Done));
}
void DiffService::statsCb(ResponseCallback Done) {
  enqueue(StatsOp{}, OpKind::Stats, 0, 0, std::move(Done));
}
void DiffService::blameCb(DocId Doc, bool HasUri, URI Uri,
                          ResponseCallback Done) {
  enqueue(BlameOp{Doc, HasUri, Uri}, OpKind::Blame, 0, 0, std::move(Done));
}
void DiffService::historyCb(DocId Doc, URI Uri, ResponseCallback Done) {
  enqueue(HistoryOp{Doc, Uri}, OpKind::History, 0, 0, std::move(Done));
}

std::future<Response> DiffService::openAsync(DocId Doc, TreeBuilder Build) {
  return enqueue(OpenOp{Doc, std::move(Build)}, OpKind::Open);
}
std::future<Response> DiffService::openAsync(DocId Doc, TreeBuilder Build,
                                             std::string Author) {
  return enqueue(OpenOp{Doc, std::move(Build), std::move(Author)},
                 OpKind::Open);
}
std::future<Response> DiffService::submitAsync(DocId Doc, TreeBuilder Build) {
  return enqueue(SubmitOp{Doc, std::move(Build)}, OpKind::Submit);
}
std::future<Response> DiffService::submitAsync(DocId Doc, TreeBuilder Build,
                                               std::string Author) {
  return enqueue(SubmitOp{Doc, std::move(Build), false, std::move(Author)},
                 OpKind::Submit);
}
std::future<Response> DiffService::submitAsync(DocId Doc, TreeBuilder Build,
                                               uint64_t DeadlineMs) {
  return enqueue(SubmitOp{Doc, std::move(Build)}, OpKind::Submit, DeadlineMs);
}
std::future<Response> DiffService::submitAsync(DocId Doc, TreeBuilder Build,
                                               uint64_t DeadlineMs,
                                               std::string Author) {
  return enqueue(SubmitOp{Doc, std::move(Build), false, std::move(Author)},
                 OpKind::Submit, DeadlineMs);
}
std::future<Response> DiffService::rollbackAsync(DocId Doc) {
  return enqueue(RollbackOp{Doc}, OpKind::Rollback);
}
std::future<Response> DiffService::getVersionAsync(DocId Doc) {
  return enqueue(GetVersionOp{Doc}, OpKind::GetVersion);
}
std::future<Response> DiffService::statsAsync() {
  return enqueue(StatsOp{}, OpKind::Stats);
}
std::future<Response> DiffService::blameAsync(DocId Doc, bool HasUri,
                                              URI Uri) {
  return enqueue(BlameOp{Doc, HasUri, Uri}, OpKind::Blame);
}
std::future<Response> DiffService::historyAsync(DocId Doc, URI Uri) {
  return enqueue(HistoryOp{Doc, Uri}, OpKind::History);
}

Response DiffService::open(DocId Doc, TreeBuilder Build) {
  return openAsync(Doc, std::move(Build)).get();
}
Response DiffService::open(DocId Doc, TreeBuilder Build, std::string Author) {
  return openAsync(Doc, std::move(Build), std::move(Author)).get();
}
Response DiffService::submit(DocId Doc, TreeBuilder Build) {
  return submitAsync(Doc, std::move(Build)).get();
}
Response DiffService::submit(DocId Doc, TreeBuilder Build,
                             uint64_t DeadlineMs) {
  return submitAsync(Doc, std::move(Build), DeadlineMs).get();
}
Response DiffService::submit(DocId Doc, TreeBuilder Build,
                             std::string Author) {
  return submitAsync(Doc, std::move(Build), std::move(Author)).get();
}
Response DiffService::submit(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                             std::string Author) {
  return submitAsync(Doc, std::move(Build), DeadlineMs, std::move(Author))
      .get();
}
Response DiffService::rollback(DocId Doc) { return rollbackAsync(Doc).get(); }
Response DiffService::getVersion(DocId Doc) {
  return getVersionAsync(Doc).get();
}
Response DiffService::stats() { return statsAsync().get(); }
Response DiffService::blame(DocId Doc, bool HasUri, URI Uri) {
  return blameAsync(Doc, HasUri, Uri).get();
}
Response DiffService::history(DocId Doc, URI Uri) {
  return historyAsync(Doc, Uri).get();
}

void DiffService::maybeShed(uint64_t Key, double SojournMs,
                            Clock::time_point Now) {
  if (Cfg.ShedTargetMs == 0 || Key == StatsKey)
    return;
  double EwmaMs;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    DocState &DS = DocStates[Key];
    if (SojournMs <= static_cast<double>(Cfg.ShedTargetMs)) {
      DS.AboveSince = Clock::time_point::min();
      return;
    }
    if (DS.AboveSince == Clock::time_point::min()) {
      // First above-target dequeue: start the interval clock, tolerate
      // the burst.
      DS.AboveSince = Now;
      return;
    }
    if (Now - DS.AboveSince < std::chrono::milliseconds(Cfg.ShedIntervalMs))
      return;
    EwmaMs = DS.EwmaServiceMs;
  }
  if (EwmaMs <= 0)
    EwmaMs = 1.0;

  // Standing queue: shed this document's newest requests until its
  // estimated backlog drains within the target. Newest-first because the
  // requests near the head have almost been served -- their latency is
  // sunk cost -- while fresh arrivals are the ones a client should back
  // off on.
  while (static_cast<double>(Queue.depthOf(Key)) * EwmaMs >
         static_cast<double>(Cfg.ShedTargetMs)) {
    std::optional<Request> Victim = Queue.shedNewest(Key);
    if (!Victim)
      break;
    Metrics.Shed.fetch_add(1, std::memory_order_relaxed);
    Metrics.Ops[static_cast<unsigned>(kindOf(Victim->Op))].Failures.fetch_add(
        1, std::memory_order_relaxed);
    Response Shed;
    Shed.Code = ErrCode::Shed;
    Shed.Error = "shed: queue sojourn exceeded the " +
                 std::to_string(Cfg.ShedTargetMs) + "ms target";
    Shed.RetryAfterMs = retryAfterHintMs(Key);
    fulfill(*Victim, std::move(Shed));
  }
}

void DiffService::workerLoop() {
  while (std::optional<Request> R = Queue.pop()) {
    auto Started = Clock::now();
    double WaitMs =
        std::chrono::duration<double, std::milli>(Started - R->Enqueued)
            .count();
    Metrics.QueueWait.record(WaitMs);

    OpKind Kind = kindOf(R->Op);
    uint64_t Key = keyOf(R->Op);
    ServiceMetrics::PerOp &Op = Metrics.Ops[static_cast<unsigned>(Kind)];
    Op.Requests.fetch_add(1, std::memory_order_relaxed);

    // CoDel-style overload control: this request is served either way
    // (its wait is sunk cost), but a sustained above-target sojourn says
    // the document's backlog outruns its service rate, so the newest
    // queued requests of the same document are shed now.
    maybeShed(Key, WaitMs, Started);

    // Admission control at dequeue: a request whose deadline already
    // passed while it sat in the queue gets a fast rejection with a
    // retry-after hint, not a slow answer nobody is waiting for.
    if (Started > R->Deadline) {
      Metrics.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
      Op.Failures.fetch_add(1, std::memory_order_relaxed);
      Response Shed;
      Shed.Error = "deadline expired while queued";
      Shed.Code = ErrCode::DeadlineExpired;
      Shed.RetryAfterMs = retryAfterHintMs(Key);
      fulfill(*R, std::move(Shed));
      continue;
    }

    Response Resp;
    try {
      Resp = execute(R->Op, R->Deadline);
    } catch (const std::exception &E) {
      // A throwing operation must never break the caller's promise.
      Resp = Response();
      Resp.Error = std::string("internal error: ") + E.what();
    }

    double ExecMs =
        std::chrono::duration<double, std::milli>(Clock::now() - Started)
            .count();
    Op.Latency.record(ExecMs);
    noteServiceTime(Key, ExecMs, R->PayloadBytes);
    if (!Resp.Ok)
      Op.Failures.fetch_add(1, std::memory_order_relaxed);
    fulfill(*R, std::move(Resp));
  }
}

namespace {

Response fromStoreResult(StoreResult &&R) {
  Response Out;
  Out.Ok = R.Ok;
  Out.Code = R.Code;
  Out.Error = std::move(R.Error);
  Out.Version = R.Version;
  Out.EditCount = R.Script.size();
  Out.CoalescedSize = R.Script.coalescedSize();
  Out.TreeSize = R.TreeSize;
  return Out;
}

} // namespace

void DiffService::noteAdmission(const Response &R) {
  if (R.Ok)
    return;
  switch (R.Code) {
  case ErrCode::TreeTooDeep:
  case ErrCode::TreeTooLarge:
    Metrics.AdmissionRejected.fetch_add(1, std::memory_order_relaxed);
    break;
  case ErrCode::MemoryBudget:
    Metrics.BudgetRejected.fetch_add(1, std::memory_order_relaxed);
    break;
  default:
    break;
  }
}

Response DiffService::execute(Operation &Op, Clock::time_point Deadline) {
  return std::visit(
      [&](auto &Req) -> Response {
        using T = std::decay_t<decltype(Req)>;
        if constexpr (std::is_same_v<T, OpenOp>) {
          Response Out = fromStoreResult(
              Store.open(Req.Doc, Req.Build, std::move(Req.Author)));
          noteAdmission(Out);
          return Out;
        } else if constexpr (std::is_same_v<T, SubmitOp>) {
          SubmitOptions Opts;
          Opts.Author = std::move(Req.Author);
          Opts.ExpectedVersion = Req.ExpectedVersion;
          if (Cfg.DeadlineFallback && Deadline != Clock::time_point::max())
            Opts.UseFallback = [Deadline] {
              return Clock::now() > Deadline;
            };
          StoreResult R = Store.submit(Req.Doc, Req.Build, Opts);
          if (R.Ok && R.UsedFallback)
            Metrics.FallbackScripts.fetch_add(1, std::memory_order_relaxed);
          if (R.Ok) {
            Metrics.ScriptsEmitted.fetch_add(1, std::memory_order_relaxed);
            Metrics.EditsEmitted.fetch_add(R.Script.size(),
                                           std::memory_order_relaxed);
            Metrics.CoalescedEdits.fetch_add(R.Script.coalescedSize(),
                                             std::memory_order_relaxed);
            Metrics.NodesDiffed.fetch_add(R.NodesDiffed,
                                          std::memory_order_relaxed);
            Metrics.NodesRehashed.fetch_add(R.NodesRehashed,
                                            std::memory_order_relaxed);
          }
          // The binary front end re-encodes the script itself; rendering
          // the textual form too would double the serialization cost of
          // every replicated write.
          std::string Payload =
              R.Ok && !Req.RawScript
                  ? serializeEditScript(Store.signatures(), R.Script)
                  : "";
          bool Fallback = R.UsedFallback;
          // fromStoreResult reads Script.size() for the edit counters, so
          // the raw script may only be moved out afterwards.
          Response Out = fromStoreResult(std::move(R));
          Out.Payload = std::move(Payload);
          if (Out.Ok && Req.RawScript)
            Out.Script = std::move(R.Script);
          Out.Fallback = Fallback;
          noteAdmission(Out);
          return Out;
        } else if constexpr (std::is_same_v<T, RollbackOp>) {
          return fromStoreResult(Store.rollback(Req.Doc));
        } else if constexpr (std::is_same_v<T, GetVersionOp>) {
          DocumentSnapshot S = Store.snapshot(Req.Doc);
          Response Out;
          Out.Ok = S.Ok;
          // snapshot()'s only failure mode is an absent document.
          Out.Code = S.Ok ? ErrCode::None : ErrCode::NoSuchDocument;
          Out.Error = std::move(S.Error);
          Out.Version = S.Version;
          Out.TreeSize = S.TreeSize;
          Out.Payload = std::move(S.Text);
          if (S.Quarantined)
            Out.IntegrityWarning = std::move(S.QuarantineReason);
          return Out;
        } else if constexpr (std::is_same_v<T, BlameOp>) {
          if (!BlameFn) {
            Response Out;
            Out.Code = ErrCode::BuildFailed;
            Out.Error = "blame is not enabled on this server";
            return Out;
          }
          return BlameFn(Req.Doc, Req.HasUri, Req.Uri);
        } else if constexpr (std::is_same_v<T, HistoryOp>) {
          if (!HistoryFn) {
            Response Out;
            Out.Code = ErrCode::BuildFailed;
            Out.Error = "history is not enabled on this server";
            return Out;
          }
          return HistoryFn(Req.Doc, Req.Uri);
        } else {
          static_assert(std::is_same_v<T, StatsOp>);
          Response Out;
          Out.Ok = true;
          Out.Payload = statsJson();
          return Out;
        }
      },
      Op);
}

HealthStatus DiffService::health() const {
  return HealthSource ? HealthSource() : HealthStatus();
}

void DiffService::refreshHealth() const {
  if (!HealthSource)
    return;
  HealthStatus H = HealthSource();
  Metrics.BreakerTrips.store(H.BreakerTrips, std::memory_order_relaxed);
  Metrics.DegradedUs.store(H.DegradedUs, std::memory_order_relaxed);
}

std::string DiffService::healthJson() const {
  HealthStatus H = health();
  refreshHealth();
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"status\":\"%s\",\"degraded\":%s,\"breaker_trips\":%llu,"
                "\"degraded_seconds\":%.6f,\"queue_depth\":%zu,"
                "\"workers\":%u}",
                H.Degraded ? "degraded" : "ok", H.Degraded ? "true" : "false",
                static_cast<unsigned long long>(H.BreakerTrips),
                static_cast<double>(H.DegradedUs) / 1e6, Queue.depth(),
                NumWorkers);
  return Buf;
}

std::string DiffService::statsJson() const {
  refreshHealth();
  if (Cfg.MemBudget != nullptr) {
    Metrics.MemUsedBytes.store(Cfg.MemBudget->used(),
                               std::memory_order_relaxed);
    Metrics.MemBudgetBytes.store(Cfg.MemBudget->limit(),
                                 std::memory_order_relaxed);
  }
  StoreStats S = Store.stats();
  char Buf[256];
  std::snprintf(
      Buf, sizeof(Buf),
      ",\"store\":{\"documents\":%llu,\"versions_retained\":%llu,"
      "\"live_nodes\":%llu,\"nodes_rehashed\":%llu,"
      "\"digest_cache_saved_nodes\":%llu,\"quarantined\":%llu}}",
      static_cast<unsigned long long>(S.NumDocuments),
      static_cast<unsigned long long>(S.VersionsRetained),
      static_cast<unsigned long long>(S.LiveNodes),
      static_cast<unsigned long long>(S.NodesRehashed),
      static_cast<unsigned long long>(S.NodesDigestCacheSaved),
      static_cast<unsigned long long>(S.Quarantined));
  std::string Json = Metrics.toJson(Queue.depth(), Queue.capacity(),
                                    NumWorkers, Queue.activeKeys());
  // Splice the store object into the metrics object.
  Json.pop_back(); // trailing '}'
  Json += Buf;
  if (StatsAugmenter) {
    std::string Extra = StatsAugmenter();
    if (!Extra.empty()) {
      Json.pop_back(); // trailing '}'
      Json += "," + Extra + "}";
    }
  }
  return Json;
}

//===- service/Wire.h - Textual wire protocol for the service ---*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-oriented wire protocol the diff server speaks. Commands, one
/// per line:
///
///   open <doc-id> <s-expression>      create a document
///   submit <doc-id> <s-expression>    diff a new version in
///   rollback <doc-id>                 undo the latest version
///   get <doc-id>                      current version + tree
///   save <doc-id>                     force a durable snapshot now
///   recover                           last recovery's summary as JSON
///   stats                             service metrics as JSON
///   health                            durability liveness as JSON
///   quit                              close the session
///
/// save and recover require the server to run with persistence enabled
/// (diff_server --data-dir); without it they answer with an error.
///
/// Responses are framed by a terminating "." line:
///
///   ok version=3 edits=5 coalesced=2 size=40
///   <payload: serialized edit script / s-expression / JSON>
///   .
///
/// or, on failure:
///
///   err <message>
///   .
///
/// A submit answered with the deadline fallback script appends
/// " fallback=1" to the ok line; a shed or backpressure-rejected request
/// appends " retry_after_ms=<hint>" to the err line. Both markers are
/// additive, so clients that ignore unknown trailing fields keep
/// working. health answers even when the request queue is saturated --
/// it is served without queueing.
///
/// Trees travel as s-expressions (tree/SExpr), edit scripts in the
/// truechange textual format (truechange/Serialize), so the protocol
/// composes the repo's two existing text formats instead of inventing a
/// third.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_WIRE_H
#define TRUEDIFF_SERVICE_WIRE_H

#include "service/DiffService.h"

#include <string>
#include <string_view>

namespace truediff {
namespace service {

/// Upper bound on one protocol line. Longer frames are rejected with a
/// protocol error before any parsing happens, so a hostile or broken
/// client cannot feed unbounded input to a worker thread.
inline constexpr size_t MaxWireLineBytes = 1 << 20;

/// One parsed command line.
struct WireCommand {
  enum class Kind {
    Open,
    Submit,
    Rollback,
    Get,
    Save,
    Recover,
    Stats,
    Health,
    Quit,
    Invalid,
  };

  Kind K = Kind::Invalid;
  DocId Doc = 0;
  /// open/submit: the s-expression text.
  std::string Arg;
  /// Kind::Invalid: what went wrong.
  std::string Error;
};

/// Parses one line of the protocol. Never throws; malformed input yields
/// Kind::Invalid with an error message. Hardened against hostile input:
/// a single trailing "\r" is tolerated (CRLF transports), but lines over
/// MaxWireLineBytes, embedded control characters (including NUL and
/// interior "\r"), empty/whitespace-only frames, and document ids that
/// would overflow 64 bits are all rejected with a protocol error.
WireCommand parseWireCommand(std::string_view Line);

/// Renders a service response in the framed wire format, including the
/// trailing "." line.
std::string formatWireResponse(const Response &R);

/// A TreeBuilder that parses \p Text as an s-expression inside the
/// document's context -- the builder the wire front end submits.
TreeBuilder makeSExprBuilder(std::string Text);

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_WIRE_H

//===- service/Wire.h - Textual wire protocol for the service ---*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-oriented wire protocol the diff server speaks. Commands, one
/// per line:
///
///   open <doc-id> <s-expression>      create a document
///   submit <doc-id> <s-expression>    diff a new version in
///   rollback <doc-id>                 undo the latest version
///   get <doc-id>                      current version + tree
///   stats                             service metrics as JSON
///   quit                              close the session
///
/// Responses are framed by a terminating "." line:
///
///   ok version=3 edits=5 coalesced=2 size=40
///   <payload: serialized edit script / s-expression / JSON>
///   .
///
/// or, on failure:
///
///   err <message>
///   .
///
/// Trees travel as s-expressions (tree/SExpr), edit scripts in the
/// truechange textual format (truechange/Serialize), so the protocol
/// composes the repo's two existing text formats instead of inventing a
/// third.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_WIRE_H
#define TRUEDIFF_SERVICE_WIRE_H

#include "service/DiffService.h"

#include <string>
#include <string_view>

namespace truediff {
namespace service {

/// One parsed command line.
struct WireCommand {
  enum class Kind {
    Open,
    Submit,
    Rollback,
    Get,
    Stats,
    Quit,
    Invalid,
  };

  Kind K = Kind::Invalid;
  DocId Doc = 0;
  /// open/submit: the s-expression text.
  std::string Arg;
  /// Kind::Invalid: what went wrong.
  std::string Error;
};

/// Parses one line of the protocol. Never throws; malformed input yields
/// Kind::Invalid with an error message.
WireCommand parseWireCommand(std::string_view Line);

/// Renders a service response in the framed wire format, including the
/// trailing "." line.
std::string formatWireResponse(const Response &R);

/// A TreeBuilder that parses \p Text as an s-expression inside the
/// document's context -- the builder the wire front end submits.
TreeBuilder makeSExprBuilder(std::string Text);

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_WIRE_H

//===- service/Wire.h - Textual wire protocol for the service ---*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-oriented wire protocol the diff server speaks. Commands, one
/// per line:
///
///   open <doc-id> [author=<name>] <s-expression>    create a document
///   submit <doc-id> [author=<name>] [expect=<v>] <s-expression>
///                                     diff a new version in
///   rollback <doc-id>                 undo the latest version
///   get <doc-id>                      current version + tree
///   blame <doc-id> [<uri>]            per-node attribution (tree or node)
///   history <doc-id> <uri>            retained revision chain of one node
///   save <doc-id>                     force a durable snapshot now
///   scrub                             run one integrity scrub cycle now
///   recover                           last recovery's summary as JSON
///   stats                             service metrics as JSON
///   health                            durability liveness as JSON
///   promote <epoch>                   replica admin: become the leader
///   demote [<host:port>]              replica admin: stop accepting writes
///   quit                              close the session
///
/// The optional author token attributes the produced version; it feeds
/// the blame subsystem (src/blame) that the blame/history verbs query.
/// The optional expect token is a version-CAS guard: the submit only
/// applies when the document is exactly at that version, failing with
/// code=cas_mismatch (and the current version) otherwise -- the building
/// block that makes client retries exactly-once.
///
/// promote/demote drive leader failover on replica deployments; servers
/// without a role seam answer them with an error. A write sent to a
/// non-leader fails with code=not_leader and, when the replica knows
/// where the leader is, " leader=<host:port>" plus a retry_after_ms
/// backoff hint.
///
/// save and recover require the server to run with persistence enabled
/// (diff_server --data-dir); without it they answer with an error.
/// scrub runs one synchronous integrity cycle (digest re-verification,
/// disk CRC re-reads, anti-entropy fan-out) and answers with the
/// cycle's findings as JSON; it requires the integrity scrubber to be
/// wired in. A get of a quarantined document still answers, but its ok
/// line carries " quarantined=1" -- the explicit integrity warning.
///
/// Responses are framed by a terminating "." line:
///
///   ok version=3 edits=5 coalesced=2 size=40
///   <payload: serialized edit script / s-expression / JSON>
///   .
///
/// or, on failure:
///
///   err <message>
///   .
///
/// A submit answered with the deadline fallback script appends
/// " fallback=1" to the ok line. Failures with a typed error class
/// append " code=<name>" (errCodeName) to the err line, and a shed or
/// backpressure-rejected request additionally appends
/// " retry_after_ms=<hint>". code=not_leader errors may carry
/// " leader=<host:port>", code=cas_mismatch errors carry
/// " version=<current>". All markers are additive, so clients that
/// ignore unknown trailing fields keep working. health answers even when the request queue is saturated --
/// it is served without queueing.
///
/// Trees travel as s-expressions (tree/SExpr), edit scripts in the
/// truechange textual format (truechange/Serialize), so the protocol
/// composes the repo's two existing text formats instead of inventing a
/// third.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_WIRE_H
#define TRUEDIFF_SERVICE_WIRE_H

#include "service/DiffService.h"

#include <string>
#include <string_view>

namespace truediff {
namespace service {

/// Upper bound on one protocol line. Longer frames are rejected with a
/// protocol error before any parsing happens, so a hostile or broken
/// client cannot feed unbounded input to a worker thread.
inline constexpr size_t MaxWireLineBytes = 1 << 20;

/// One parsed command line.
struct WireCommand {
  enum class Kind {
    Open,
    Submit,
    Rollback,
    Get,
    Blame,
    History,
    Save,
    Scrub,
    Recover,
    Stats,
    Health,
    Promote,
    Demote,
    Quit,
    Invalid,
  };

  Kind K = Kind::Invalid;
  DocId Doc = 0;
  /// open/submit: the s-expression text.
  std::string Arg;
  /// open/submit: the author= token, empty when absent.
  std::string Author;
  /// submit: the expect= version-CAS token. promote: the new epoch.
  /// demote: unused.
  std::optional<uint64_t> Expect;
  /// blame/history: the queried node URI (blame: only when HasUri).
  URI Uri = NullURI;
  /// blame: a uri operand was present (whole-tree blame otherwise).
  bool HasUri = false;
  /// Kind::Invalid: what went wrong.
  std::string Error;
  /// Kind::Invalid: typed cause (ErrCode::FrameTooLarge for oversized
  /// frames, ErrCode::None for plain protocol errors).
  ErrCode Code = ErrCode::None;
};

/// Parses one line of the protocol. Never throws; malformed input yields
/// Kind::Invalid with an error message. Hardened against hostile input:
/// a single trailing "\r" is tolerated (CRLF transports), but lines over
/// \p MaxFrameBytes (default MaxWireLineBytes), embedded control
/// characters (including NUL and interior "\r"), empty/whitespace-only
/// frames, and document ids that would overflow 64 bits are all rejected
/// with a protocol error.
WireCommand parseWireCommand(std::string_view Line,
                             size_t MaxFrameBytes = MaxWireLineBytes);

/// Renders a service response in the framed wire format, including the
/// trailing "." line. Error responses carry " retry_after_ms=<hint>"
/// when the service supplied one.
std::string formatWireResponse(const Response &R);

/// Verb-aware variant: retry_after_ms hints are only meaningful on
/// retryable data verbs (open/submit/rollback/get/save). On the others
/// -- health, stats, recover, quit, and malformed frames -- a hint would
/// tell the client to back off and retry a request that load shedding
/// never rejects (or that retrying cannot fix), so it is dropped.
std::string formatWireResponse(const Response &R, WireCommand::Kind K);

/// A TreeBuilder that parses \p Text as an s-expression inside the
/// document's context -- the builder the wire front end submits.
TreeBuilder makeSExprBuilder(std::string Text);

/// As above, but parsing under resource-admission caps: depth/node-count
/// violations and memory-budget exhaustion fail the build with the
/// matching typed ErrCode (see errCodeForParseFail).
TreeBuilder makeSExprBuilder(std::string Text, ParseLimits Limits);

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_WIRE_H

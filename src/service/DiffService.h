//===- service/DiffService.h - Worker-pool diff serving ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads consuming a bounded MPMC queue of typed
/// requests against a DocumentStore:
///
///   Submit    diff a new version in, returns the serialized edit script
///   Open      create a document
///   Rollback  undo the latest version via its recorded inverse
///   GetVersion current version + serialized tree
///   Stats     metrics and store gauges as JSON
///
/// Backpressure is explicit: when the queue is full (or the service is
/// shut down) a request is rejected immediately with an error response
/// rather than blocking the client. shutdown() is graceful: the queue
/// stops accepting, workers drain every accepted request, then join, so
/// no accepted request is ever dropped.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_DIFFSERVICE_H
#define TRUEDIFF_SERVICE_DIFFSERVICE_H

#include "service/BoundedQueue.h"
#include "service/DocumentStore.h"
#include "service/Metrics.h"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <variant>
#include <vector>

namespace truediff {
namespace service {

/// What the service answers for any request.
struct Response {
  bool Ok = false;
  std::string Error;
  uint64_t Version = 0;
  uint64_t EditCount = 0;
  uint64_t CoalescedSize = 0;
  uint64_t TreeSize = 0;
  /// submit: the serialized edit script (truechange/Serialize);
  /// get_version: the document's s-expression; stats: JSON.
  std::string Payload;
};

/// \name Typed requests
/// @{
struct OpenOp {
  DocId Doc = 0;
  TreeBuilder Build;
};
struct SubmitOp {
  DocId Doc = 0;
  TreeBuilder Build;
};
struct RollbackOp {
  DocId Doc = 0;
};
struct GetVersionOp {
  DocId Doc = 0;
};
struct StatsOp {};

using Operation =
    std::variant<OpenOp, SubmitOp, RollbackOp, GetVersionOp, StatsOp>;
/// @}

struct ServiceConfig {
  /// 0 picks std::thread::hardware_concurrency().
  unsigned Workers = 0;
  /// Bound of the request queue; requests beyond it are rejected.
  size_t QueueCapacity = 256;
};

class DiffService {
public:
  DiffService(DocumentStore &Store, ServiceConfig C = ServiceConfig());
  ~DiffService();

  DiffService(const DiffService &) = delete;
  DiffService &operator=(const DiffService &) = delete;

  /// \name Asynchronous API
  /// All return immediately. A rejected request (queue full / shut down)
  /// yields an already-resolved error response.
  /// @{
  std::future<Response> openAsync(DocId Doc, TreeBuilder Build);
  std::future<Response> submitAsync(DocId Doc, TreeBuilder Build);
  std::future<Response> rollbackAsync(DocId Doc);
  std::future<Response> getVersionAsync(DocId Doc);
  std::future<Response> statsAsync();
  /// @}

  /// \name Blocking convenience wrappers
  /// @{
  Response open(DocId Doc, TreeBuilder Build);
  Response submit(DocId Doc, TreeBuilder Build);
  Response rollback(DocId Doc);
  Response getVersion(DocId Doc);
  Response stats();
  /// @}

  /// Stops accepting requests, drains the queue, joins the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// Called once after shutdown() drained the queue -- the hook the
  /// persistence layer flushes its WAL through, so every acknowledged
  /// request is durable when shutdown returns. Set before traffic.
  void setDrainHook(std::function<void()> Hook) { DrainHook = std::move(Hook); }

  /// Extra top-level field(s) spliced into statsJson(), e.g.
  /// `"persist":{...}`. Must return a complete `"key":value` fragment
  /// without leading comma, or an empty string. Set before traffic.
  void setStatsAugmenter(std::function<std::string()> Fn) {
    StatsAugmenter = std::move(Fn);
  }

  unsigned workers() const { return NumWorkers; }
  size_t queueDepth() const { return Queue.depth(); }
  const ServiceMetrics &metrics() const { return Metrics; }

  /// The Stats payload: metrics, queue gauges, and store stats.
  std::string statsJson() const;

private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Operation Op;
    std::promise<Response> Promise;
    Clock::time_point Enqueued;
  };

  std::future<Response> enqueue(Operation Op, OpKind Kind);
  void workerLoop();
  Response execute(Operation &Op);
  static OpKind kindOf(const Operation &Op);

  DocumentStore &Store;
  const unsigned NumWorkers;
  BoundedQueue<Request> Queue;
  ServiceMetrics Metrics;
  std::vector<std::thread> Workers;
  std::atomic<bool> Stopped{false};
  std::function<void()> DrainHook;
  std::function<std::string()> StatsAugmenter;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_DIFFSERVICE_H

//===- service/DiffService.h - Worker-pool diff serving ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads consuming a bounded MPMC queue of typed
/// requests against a DocumentStore:
///
///   Submit    diff a new version in, returns the serialized edit script
///   Open      create a document
///   Rollback  undo the latest version via its recorded inverse
///   GetVersion current version + serialized tree
///   Stats     metrics and store gauges as JSON
///
/// Backpressure is explicit: when the queue is full (or the service is
/// shut down) a request is rejected immediately with an error response
/// rather than blocking the client. shutdown() is graceful: the queue
/// stops accepting, workers drain every accepted request, then join, so
/// no accepted request is ever dropped.
///
/// Deadlines bound tail latency: a submit may carry a deadline; if it is
/// still queued when the deadline passes it is shed with a retry-after
/// hint, and if its diff would overrun the deadline the service answers
/// with the type-checked replace-root fallback script instead (concise
/// is the first thing degraded mode gives up -- type safety never is).
/// healthJson() reports durability liveness without touching the request
/// queue.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_DIFFSERVICE_H
#define TRUEDIFF_SERVICE_DIFFSERVICE_H

#include "service/BoundedQueue.h"
#include "service/DocumentStore.h"
#include "service/Metrics.h"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <variant>
#include <vector>

namespace truediff {
namespace service {

/// What the service answers for any request.
struct Response {
  bool Ok = false;
  std::string Error;
  uint64_t Version = 0;
  uint64_t EditCount = 0;
  uint64_t CoalescedSize = 0;
  uint64_t TreeSize = 0;
  /// submit: the serialized edit script (truechange/Serialize);
  /// get_version: the document's s-expression; stats: JSON.
  std::string Payload;
  /// submit: the script is the deadline fallback (replace-root), not a
  /// minimal diff.
  bool Fallback = false;
  /// On rejection/shedding: hint for when a retry is likely to succeed,
  /// derived from queue depth and observed submit latency. 0 = no hint.
  uint64_t RetryAfterMs = 0;
};

/// \name Typed requests
/// @{
struct OpenOp {
  DocId Doc = 0;
  TreeBuilder Build;
};
struct SubmitOp {
  DocId Doc = 0;
  TreeBuilder Build;
};
struct RollbackOp {
  DocId Doc = 0;
};
struct GetVersionOp {
  DocId Doc = 0;
};
struct StatsOp {};

using Operation =
    std::variant<OpenOp, SubmitOp, RollbackOp, GetVersionOp, StatsOp>;
/// @}

struct ServiceConfig {
  /// 0 picks std::thread::hardware_concurrency().
  unsigned Workers = 0;
  /// Bound of the request queue; requests beyond it are rejected.
  size_t QueueCapacity = 256;
  /// Deadline applied to submits that do not carry their own, in
  /// milliseconds from enqueue. 0 = no default deadline.
  unsigned DefaultDeadlineMs = 0;
  /// When a submit's diff would overrun its deadline, answer with the
  /// type-checked replace-root fallback script instead of failing the
  /// request (see SubmitOptions::UseFallback). When false an over-deadline
  /// submit still runs the full diff; the deadline then only sheds
  /// requests that expire while queued.
  bool DeadlineFallback = true;
};

/// Liveness of the durability layer as seen by the service, polled from
/// the health source (the persistence layer, when attached).
struct HealthStatus {
  /// True while the persistence circuit breaker is open: writes are
  /// in-memory only and acknowledged as NOT durable.
  bool Degraded = false;
  uint64_t BreakerTrips = 0;
  /// Cumulative microseconds spent degraded, including the current
  /// period if degraded now.
  uint64_t DegradedUs = 0;
};

class DiffService {
public:
  DiffService(DocumentStore &Store, ServiceConfig C = ServiceConfig());
  ~DiffService();

  DiffService(const DiffService &) = delete;
  DiffService &operator=(const DiffService &) = delete;

  /// \name Asynchronous API
  /// All return immediately. A rejected request (queue full / shut down)
  /// yields an already-resolved error response.
  /// @{
  std::future<Response> openAsync(DocId Doc, TreeBuilder Build);
  std::future<Response> submitAsync(DocId Doc, TreeBuilder Build);
  /// Submit with an explicit deadline, milliseconds from now. 0 falls
  /// back to ServiceConfig::DefaultDeadlineMs. A request still queued at
  /// its deadline is shed with a retry-after hint; a request whose build
  /// finishes but whose diff would overrun it is answered with the
  /// replace-root fallback script (Response::Fallback) when
  /// ServiceConfig::DeadlineFallback is set.
  std::future<Response> submitAsync(DocId Doc, TreeBuilder Build,
                                    uint64_t DeadlineMs);
  std::future<Response> rollbackAsync(DocId Doc);
  std::future<Response> getVersionAsync(DocId Doc);
  std::future<Response> statsAsync();
  /// @}

  /// \name Blocking convenience wrappers
  /// @{
  Response open(DocId Doc, TreeBuilder Build);
  Response submit(DocId Doc, TreeBuilder Build);
  Response submit(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs);
  Response rollback(DocId Doc);
  Response getVersion(DocId Doc);
  Response stats();
  /// @}

  /// Stops accepting requests, drains the queue, joins the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// Called once after shutdown() drained the queue -- the hook the
  /// persistence layer flushes its WAL through, so every acknowledged
  /// request is durable when shutdown returns. Set before traffic.
  void setDrainHook(std::function<void()> Hook) { DrainHook = std::move(Hook); }

  /// Extra top-level field(s) spliced into statsJson(), e.g.
  /// `"persist":{...}`. Must return a complete `"key":value` fragment
  /// without leading comma, or an empty string. Set before traffic.
  void setStatsAugmenter(std::function<std::string()> Fn) {
    StatsAugmenter = std::move(Fn);
  }

  /// Where healthJson()/statsJson() read durability liveness from --
  /// typically [&P] { return HealthStatus from P.healthInfo(); }. Set
  /// before traffic; absent means "never degraded".
  void setHealthSource(std::function<HealthStatus()> Fn) {
    HealthSource = std::move(Fn);
  }

  unsigned workers() const { return NumWorkers; }
  size_t queueDepth() const { return Queue.depth(); }
  const ServiceMetrics &metrics() const { return Metrics; }

  /// The Stats payload: metrics, queue gauges, and store stats.
  std::string statsJson() const;

  /// Small always-available liveness summary (the wire `health` verb):
  /// degraded flag, breaker trips, degraded seconds, queue depth. Served
  /// without going through the request queue, so it answers even when the
  /// queue is saturated -- that is the moment health checks matter.
  std::string healthJson() const;

  /// Current health as polled from the health source (all-zero without
  /// one).
  HealthStatus health() const;

private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Operation Op;
    std::promise<Response> Promise;
    Clock::time_point Enqueued;
    /// Absolute deadline; max() = none.
    Clock::time_point Deadline = Clock::time_point::max();
  };

  std::future<Response> enqueue(Operation Op, OpKind Kind,
                                uint64_t DeadlineMs = 0);
  void workerLoop();
  Response execute(Operation &Op, Clock::time_point Deadline);
  static OpKind kindOf(const Operation &Op);

  /// Retry-after hint in ms: (queue depth + 1) x mean submit latency,
  /// floored at 1ms. Heuristic, not a promise.
  uint64_t retryAfterHintMs() const;

  /// Pulls HealthStatus from the source into the mirrored metrics
  /// gauges.
  void refreshHealth() const;

  DocumentStore &Store;
  const ServiceConfig Cfg;
  const unsigned NumWorkers;
  BoundedQueue<Request> Queue;
  ServiceMetrics Metrics;
  std::vector<std::thread> Workers;
  std::atomic<bool> Stopped{false};
  std::function<void()> DrainHook;
  std::function<std::string()> StatsAugmenter;
  std::function<HealthStatus()> HealthSource;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_DIFFSERVICE_H

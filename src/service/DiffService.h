//===- service/DiffService.h - Worker-pool diff serving ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads consuming a fair-share bounded queue of
/// typed requests against a DocumentStore:
///
///   Submit    diff a new version in, returns the serialized edit script
///   Open      create a document
///   Rollback  undo the latest version via its recorded inverse
///   GetVersion current version + serialized tree
///   Stats     metrics and store gauges as JSON
///
/// Overload protection happens in three layers on the admission path:
///
///  1. Fair scheduling: requests queue per document and workers drain the
///     sub-queues by deficit round-robin weighted by each document's
///     observed service time (FairQueue), so one hot or hostile document
///     cannot monopolise the workers. An optional per-document capacity
///     makes a flooding tenant hit its own wall long before the shared
///     one.
///  2. Adaptive shedding: when a document's requests keep dequeuing with
///     a queue sojourn above ServiceConfig::ShedTargetMs (CoDel-style:
///     sustained for ShedIntervalMs, not a one-off spike), the newest
///     queued requests of that document are shed until its estimated
///     backlog fits the target again. Shed responses carry a
///     per-document retry_after_ms derived from that document's queue
///     depth and observed service time.
///  3. Resource admission: when ServiceConfig::MemBudget is exhausted,
///     new open/submit requests are rejected up front with a typed error
///     (ErrCode::MemoryBudget) instead of parsing into an OOM kill;
///     parse-time depth/node caps reject hostile inputs mid-parse (see
///     ParseLimits) and surface as ErrCode::TreeTooDeep/TreeTooLarge.
///
/// Backpressure is explicit: when the queue (shared or per-document) is
/// full, or the service is shut down, a request is rejected immediately
/// with an error response rather than blocking the client. shutdown() is
/// graceful: the queue stops accepting, workers drain every accepted
/// request, then join, so no accepted request is ever dropped.
///
/// Deadlines bound tail latency: a submit may carry a deadline; if it is
/// still queued when the deadline passes it is shed with a retry-after
/// hint, and if its diff would overrun the deadline the service answers
/// with the type-checked replace-root fallback script instead (concise
/// is the first thing degraded mode gives up -- type safety never is).
/// healthJson() reports durability liveness without touching the request
/// queue.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_DIFFSERVICE_H
#define TRUEDIFF_SERVICE_DIFFSERVICE_H

#include "service/DocumentStore.h"
#include "service/FairQueue.h"
#include "service/Metrics.h"

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

namespace truediff {
namespace service {

/// What the service answers for any request.
struct Response {
  bool Ok = false;
  std::string Error;
  uint64_t Version = 0;
  uint64_t EditCount = 0;
  uint64_t CoalescedSize = 0;
  uint64_t TreeSize = 0;
  /// submit: the serialized edit script (truechange/Serialize);
  /// get_version: the document's s-expression; stats: JSON.
  std::string Payload;
  /// submit: the script is the deadline fallback (replace-root), not a
  /// minimal diff.
  bool Fallback = false;
  /// On rejection/shedding: hint for when a retry is likely to succeed,
  /// derived from the *document's* queue depth and observed service time
  /// (global gauges for document-less requests). 0 = no hint.
  uint64_t RetryAfterMs = 0;
  /// Typed cause when !Ok (ErrCode::None if unclassified).
  ErrCode Code = ErrCode::None;
  /// ErrCode::NotLeader: where the current leader answers writes
  /// ("host:port"), so clients follow the redirect instead of spinning.
  /// Attached by the role-aware front end (net/ServiceHandler), not the
  /// service itself. Empty = no hint.
  std::string LeaderAddr;
  /// submit with SubmitOp::RawScript: the edit script itself, so a
  /// binary front end can encode it without re-parsing Payload (which is
  /// left empty in that mode).
  EditScript Script;
  /// get: non-empty when the document is quarantined by an integrity
  /// check -- the answer is served (a possibly-wrong answer plus an
  /// explicit warning beats silence) but carries the quarantine reason,
  /// and the wire layer marks the ok line with quarantined=1.
  std::string IntegrityWarning;
};

/// Completion of one request, invoked exactly once from a worker thread
/// (or inline from the enqueueing thread on rejection). The callback
/// alternative to the future-based API, for event-driven callers that
/// must not block.
using ResponseCallback = std::function<void(Response)>;

/// \name Typed requests
/// @{
struct OpenOp {
  DocId Doc = 0;
  TreeBuilder Build;
  /// Attribution of version 0 (empty = unattributed).
  std::string Author;
};
struct SubmitOp {
  DocId Doc = 0;
  TreeBuilder Build;
  /// Skip the textual script serialization and hand the EditScript to
  /// Response::Script instead -- the binary protocol's mode.
  bool RawScript = false;
  /// Attribution of the submitted revision (empty = unattributed).
  std::string Author;
  /// Version-CAS guard (see SubmitOptions::ExpectedVersion).
  std::optional<uint64_t> ExpectedVersion;
};
struct RollbackOp {
  DocId Doc = 0;
};
struct GetVersionOp {
  DocId Doc = 0;
};
struct StatsOp {};
struct BlameOp {
  DocId Doc = 0;
  /// False: annotate the whole live tree; true: the single node \p Uri.
  bool HasUri = false;
  URI Uri = NullURI;
};
struct HistoryOp {
  DocId Doc = 0;
  URI Uri = NullURI;
};

using Operation = std::variant<OpenOp, SubmitOp, RollbackOp, GetVersionOp,
                               StatsOp, BlameOp, HistoryOp>;
/// @}

struct ServiceConfig {
  /// 0 picks std::thread::hardware_concurrency().
  unsigned Workers = 0;
  /// Bound of the request queue; requests beyond it are rejected.
  size_t QueueCapacity = 256;
  /// Deadline applied to submits that do not carry their own, in
  /// milliseconds from enqueue. 0 = no default deadline.
  unsigned DefaultDeadlineMs = 0;
  /// When a submit's diff would overrun its deadline, answer with the
  /// type-checked replace-root fallback script instead of failing the
  /// request (see SubmitOptions::UseFallback). When false an over-deadline
  /// submit still runs the full diff; the deadline then only sheds
  /// requests that expire while queued.
  bool DeadlineFallback = true;
  /// Bound on any single document's backlog inside the shared queue, so
  /// a flooding tenant gets per-document backpressure while others still
  /// enqueue. 0 = no per-document bound (only QueueCapacity applies).
  size_t PerDocQueueCapacity = 0;
  /// Shed target for queue sojourn, in milliseconds: once requests of a
  /// document keep dequeuing after waiting longer than this (sustained
  /// for ShedIntervalMs), the document's newest queued requests are shed
  /// until its estimated backlog (depth x observed service time) fits
  /// the target again. 0 disables sojourn shedding.
  unsigned ShedTargetMs = 0;
  /// How long a document's sojourn must stay above ShedTargetMs before
  /// shedding starts (CoDel's interval: tolerate bursts, act on standing
  /// queues).
  unsigned ShedIntervalMs = 100;
  /// Process-wide tree-memory budget. When exhausted, open/submit
  /// requests are rejected at enqueue with ErrCode::MemoryBudget. Give
  /// the same budget to DocumentStore::Config::MemBudget so the arenas
  /// actually account against it. Null = unlimited. Must outlive the
  /// service.
  MemoryBudget *MemBudget = nullptr;
};

/// Liveness of the durability layer as seen by the service, polled from
/// the health source (the persistence layer, when attached).
struct HealthStatus {
  /// True while the persistence circuit breaker is open: writes are
  /// in-memory only and acknowledged as NOT durable.
  bool Degraded = false;
  uint64_t BreakerTrips = 0;
  /// Cumulative microseconds spent degraded, including the current
  /// period if degraded now.
  uint64_t DegradedUs = 0;
};

class DiffService {
public:
  DiffService(DocumentStore &Store, ServiceConfig C = ServiceConfig());
  ~DiffService();

  DiffService(const DiffService &) = delete;
  DiffService &operator=(const DiffService &) = delete;

  /// \name Asynchronous API
  /// All return immediately. A rejected request (queue full / shut down)
  /// yields an already-resolved error response.
  /// @{
  std::future<Response> openAsync(DocId Doc, TreeBuilder Build);
  std::future<Response> openAsync(DocId Doc, TreeBuilder Build,
                                  std::string Author);
  std::future<Response> submitAsync(DocId Doc, TreeBuilder Build);
  std::future<Response> submitAsync(DocId Doc, TreeBuilder Build,
                                    std::string Author);
  /// Submit with an explicit deadline, milliseconds from now. 0 falls
  /// back to ServiceConfig::DefaultDeadlineMs. A request still queued at
  /// its deadline is shed with a retry-after hint; a request whose build
  /// finishes but whose diff would overrun it is answered with the
  /// replace-root fallback script (Response::Fallback) when
  /// ServiceConfig::DeadlineFallback is set.
  std::future<Response> submitAsync(DocId Doc, TreeBuilder Build,
                                    uint64_t DeadlineMs);
  std::future<Response> submitAsync(DocId Doc, TreeBuilder Build,
                                    uint64_t DeadlineMs, std::string Author);
  std::future<Response> rollbackAsync(DocId Doc);
  std::future<Response> getVersionAsync(DocId Doc);
  std::future<Response> statsAsync();
  /// Blame/history reads; answered by the handlers wired up with
  /// setBlameHandler/setHistoryHandler (a typed error without them).
  std::future<Response> blameAsync(DocId Doc, bool HasUri, URI Uri);
  std::future<Response> historyAsync(DocId Doc, URI Uri);
  /// @}

  /// \name Callback API
  /// The event-loop front end's entry points: \p Done fires exactly once,
  /// from a worker thread on completion or inline on rejection, so the
  /// caller never blocks on a future. \p PayloadBytes is the wire size of
  /// the request's tree payload when the transport knows it (0 = unknown);
  /// it prices the request in the DRR scheduler, replacing the flat
  /// one-quantum guess for documents without a service-time sample.
  /// @{
  void openCb(DocId Doc, TreeBuilder Build, size_t PayloadBytes,
              ResponseCallback Done);
  void openCb(DocId Doc, TreeBuilder Build, size_t PayloadBytes,
              std::string Author, ResponseCallback Done);
  void submitCb(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                size_t PayloadBytes, bool RawScript, ResponseCallback Done);
  void submitCb(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                size_t PayloadBytes, bool RawScript, std::string Author,
                ResponseCallback Done);
  /// As above with a version-CAS guard: the submit only applies when the
  /// document is exactly at \p Expect (ErrCode::CasMismatch with the
  /// current version otherwise).
  void submitCb(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                size_t PayloadBytes, bool RawScript, std::string Author,
                std::optional<uint64_t> Expect, ResponseCallback Done);
  void rollbackCb(DocId Doc, ResponseCallback Done);
  void getVersionCb(DocId Doc, ResponseCallback Done);
  void statsCb(ResponseCallback Done);
  void blameCb(DocId Doc, bool HasUri, URI Uri, ResponseCallback Done);
  void historyCb(DocId Doc, URI Uri, ResponseCallback Done);
  /// @}

  /// \name Blocking convenience wrappers
  /// @{
  Response open(DocId Doc, TreeBuilder Build);
  Response open(DocId Doc, TreeBuilder Build, std::string Author);
  Response submit(DocId Doc, TreeBuilder Build);
  Response submit(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs);
  Response submit(DocId Doc, TreeBuilder Build, uint64_t DeadlineMs,
                  std::string Author);
  Response submit(DocId Doc, TreeBuilder Build, std::string Author);
  Response rollback(DocId Doc);
  Response getVersion(DocId Doc);
  Response stats();
  Response blame(DocId Doc, bool HasUri, URI Uri);
  Response history(DocId Doc, URI Uri);
  /// @}

  /// Stops accepting requests, drains the queue, joins the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// Called once after shutdown() drained the queue -- the hook the
  /// persistence layer flushes its WAL through, so every acknowledged
  /// request is durable when shutdown returns. Set before traffic.
  void setDrainHook(std::function<void()> Hook) { DrainHook = std::move(Hook); }

  /// Extra top-level field(s) spliced into statsJson(), e.g.
  /// `"persist":{...}`. Must return a complete `"key":value` fragment
  /// without leading comma, or an empty string. Set before traffic.
  void setStatsAugmenter(std::function<std::string()> Fn) {
    StatsAugmenter = std::move(Fn);
  }

  /// Where healthJson()/statsJson() read durability liveness from --
  /// typically [&P] { return HealthStatus from P.healthInfo(); }. Set
  /// before traffic; absent means "never degraded".
  void setHealthSource(std::function<HealthStatus()> Fn) {
    HealthSource = std::move(Fn);
  }

  /// Serves blame/history operations. The service itself is
  /// blame-agnostic: the server binary wires these to the provenance
  /// index (see blame/Render.h wireBlameHandlers). Executed on worker
  /// threads like any other read; must be thread-safe. Set before
  /// traffic; without a handler the verbs answer a typed error.
  using BlameHandler = std::function<Response(DocId, bool HasUri, URI Uri)>;
  using HistoryHandler = std::function<Response(DocId, URI Uri)>;
  void setBlameHandler(BlameHandler Fn) { BlameFn = std::move(Fn); }
  void setHistoryHandler(HistoryHandler Fn) { HistoryFn = std::move(Fn); }

  unsigned workers() const { return NumWorkers; }
  size_t queueDepth() const { return Queue.depth(); }
  const ServiceMetrics &metrics() const { return Metrics; }

  /// The Stats payload: metrics, queue gauges, and store stats.
  std::string statsJson() const;

  /// Small always-available liveness summary (the wire `health` verb):
  /// degraded flag, breaker trips, degraded seconds, queue depth. Served
  /// without going through the request queue, so it answers even when the
  /// queue is saturated -- that is the moment health checks matter.
  std::string healthJson() const;

  /// Current health as polled from the health source (all-zero without
  /// one).
  HealthStatus health() const;

private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Operation Op;
    std::promise<Response> Promise;
    /// When set, completion goes through the callback and Promise is
    /// never touched.
    ResponseCallback Done;
    Clock::time_point Enqueued;
    /// Absolute deadline; max() = none.
    Clock::time_point Deadline = Clock::time_point::max();
    /// Wire payload size at enqueue (0 = unknown); prices the request in
    /// the DRR scheduler and feeds the per-byte cost model.
    size_t PayloadBytes = 0;
  };

  /// Resolves \p R with \p Resp through whichever completion channel the
  /// request carries.
  static void fulfill(Request &R, Response &&Resp) {
    if (R.Done)
      R.Done(std::move(Resp));
    else
      R.Promise.set_value(std::move(Resp));
  }

  /// Scheduling key for document-less requests (stats). Documents with
  /// the same numeric id would share its sub-queue, which is harmless:
  /// fairness and hints degrade to "shared with stats", never break.
  static constexpr uint64_t StatsKey = ~uint64_t(0);

  /// Fair-scheduling and shedding state per document, updated by the
  /// workers under StateMu.
  struct DocState {
    /// EWMA of observed service time, milliseconds (0 = no sample yet).
    /// Feeds the DRR cost of queued requests and the retry-after hints.
    double EwmaServiceMs = 0;
    /// EWMA of observed service time per payload byte, microseconds
    /// (0 = no sample with a known payload yet). Prices individual
    /// requests by size instead of charging every request of a document
    /// the same.
    double EwmaUsPerByte = 0;
    /// When this document's dequeue sojourn first exceeded the shed
    /// target; min() = currently below target.
    Clock::time_point AboveSince = Clock::time_point::min();
  };

  std::future<Response> enqueue(Operation Op, OpKind Kind,
                                uint64_t DeadlineMs = 0,
                                size_t PayloadBytes = 0,
                                ResponseCallback Done = nullptr);
  void workerLoop();
  Response execute(Operation &Op, Clock::time_point Deadline);
  static OpKind kindOf(const Operation &Op);
  static uint64_t keyOf(const Operation &Op);

  /// Expected service cost of one request of \p Key in microseconds (the
  /// DRR cost unit). With a known \p PayloadBytes the request is priced
  /// individually: payload size times the document's (or, for a document
  /// on first sight, the global) observed per-byte service rate. Without
  /// one it falls back to the document's service-time EWMA, then to one
  /// quantum (plain round-robin).
  uint64_t costOf(uint64_t Key, size_t PayloadBytes) const;
  /// Folds an observed service time (and, when \p PayloadBytes is known,
  /// the implied per-byte rate) into \p Key's and the global EWMAs.
  void noteServiceTime(uint64_t Key, double Ms, size_t PayloadBytes);
  /// Arrival-time admission: true if \p Key's estimated backlog (queue
  /// depth x observed service time) already exceeds the shed target, so
  /// a new open/submit should be rejected now instead of shedding it at
  /// dequeue after it burned a queue slot.
  bool shouldShedAtArrival(uint64_t Key, OpKind Kind) const;
  /// CoDel-style control, run at each dequeue: tracks how long \p Key's
  /// sojourn has been above the shed target and sheds its newest queued
  /// requests once the interval is exceeded.
  void maybeShed(uint64_t Key, double SojournMs, Clock::time_point Now);

  /// Bumps the admission/budget rejection counters for a failed store
  /// response carrying a resource-cap ErrCode.
  void noteAdmission(const Response &R);

  /// Retry-after hint in ms for requests of \p Key: (the document's
  /// queue depth + 1) x its observed service time, falling back to the
  /// global submit mean for unseen documents, floored at 1ms. Heuristic,
  /// not a promise.
  uint64_t retryAfterHintMs(uint64_t Key) const;

  /// Pulls HealthStatus from the source into the mirrored metrics
  /// gauges.
  void refreshHealth() const;

  DocumentStore &Store;
  const ServiceConfig Cfg;
  const unsigned NumWorkers;
  FairQueue<Request> Queue;
  ServiceMetrics Metrics;
  std::vector<std::thread> Workers;
  std::atomic<bool> Stopped{false};
  std::function<void()> DrainHook;
  std::function<std::string()> StatsAugmenter;
  std::function<HealthStatus()> HealthSource;
  BlameHandler BlameFn;
  HistoryHandler HistoryFn;

  mutable std::mutex StateMu;
  std::unordered_map<uint64_t, DocState> DocStates;
  /// Cross-document EWMA of service time per payload byte (microseconds);
  /// the cost model for documents the service has never executed for.
  double GlobalUsPerByte = 0;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_DIFFSERVICE_H

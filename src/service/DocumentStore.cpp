//===- service/DocumentStore.cpp - Versioned live-document store -----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/DocumentStore.h"

#include "tree/SExpr.h"
#include "truechange/InitScript.h"
#include "truechange/Inverse.h"
#include "truechange/MTree.h"
#include "truediff/TrueDiff.h"

using namespace truediff;
using namespace truediff::service;

DocumentStore::DocumentStore(const SignatureTable &Sig)
    : DocumentStore(Sig, Config()) {}

DocumentStore::DocumentStore(const SignatureTable &Sig, Config C)
    : Sig(Sig), Cfg(C), Shards(std::max<size_t>(1, C.NumShards)) {}

void DocumentStore::addScriptListener(ScriptListener Listener) {
  std::lock_guard<std::mutex> Lock(ListenersMu);
  Listeners.push_back(std::move(Listener));
}

std::shared_ptr<DocumentStore::Document> DocumentStore::find(DocId Doc) const {
  const Shard &S = shardFor(Doc);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Docs.find(Doc);
  return It == S.Docs.end() ? nullptr : It->second;
}

void DocumentStore::emit(DocId Doc, uint64_t Version,
                         const EditScript &Script) const {
  std::lock_guard<std::mutex> Lock(ListenersMu);
  for (const ScriptListener &L : Listeners)
    L(Doc, Version, Script);
}

StoreResult DocumentStore::open(DocId Doc, const TreeBuilder &Build) {
  StoreResult R;
  auto D = std::make_shared<Document>();
  D->Ctx = std::make_unique<TreeContext>(Sig);
  BuildResult B = Build(*D->Ctx);
  if (B.Root == nullptr) {
    R.Error = B.Error.empty() ? "builder produced no tree" : B.Error;
    return R;
  }
  D->Current = B.Root;
  D->Version = 0;

  // Hold the (still private) document lock across publication so that a
  // racing submit on the same id observes the initializing script first.
  std::lock_guard<std::mutex> DocLock(D->Mu);
  {
    Shard &S = shardFor(Doc);
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (!S.Docs.emplace(Doc, D).second) {
      R.Error = "document already exists";
      return R;
    }
  }
  R.Script = buildInitializingScript(Sig, D->Current);
  emit(Doc, 0, R.Script);
  R.Ok = true;
  R.Version = 0;
  R.TreeSize = D->Current->size();
  return R;
}

StoreResult DocumentStore::submit(DocId Doc, const TreeBuilder &Build) {
  StoreResult R;
  std::shared_ptr<Document> D = find(Doc);
  if (!D) {
    R.Error = "no such document";
    return R;
  }
  std::lock_guard<std::mutex> Lock(D->Mu);
  BuildResult B = Build(*D->Ctx);
  if (B.Root == nullptr) {
    R.Error = B.Error.empty() ? "builder produced no tree" : B.Error;
    return R;
  }
  uint64_t SourceSize = D->Current->size();
  uint64_t TargetSize = B.Root->size();

  TrueDiff Differ(*D->Ctx);
  DiffResult Diff = Differ.compareTo(D->Current, B.Root);
  D->Current = Diff.Patched;
  ++D->Version;

  VersionRecord Rec;
  Rec.Version = D->Version;
  Rec.Inverse = invertScript(Diff.Script);
  Rec.Script = std::move(Diff.Script);
  D->History.push_back(std::move(Rec));
  if (D->History.size() > Cfg.HistoryCapacity)
    D->History.pop_front();

  emit(Doc, D->Version, D->History.back().Script);
  maybeCompact(*D);

  R.Ok = true;
  R.Version = D->Version;
  R.Script = D->History.back().Script;
  R.NodesDiffed = SourceSize + TargetSize;
  R.TreeSize = D->Current->size();
  return R;
}

StoreResult DocumentStore::rollback(DocId Doc) {
  StoreResult R;
  std::shared_ptr<Document> D = find(Doc);
  if (!D) {
    R.Error = "no such document";
    return R;
  }
  std::lock_guard<std::mutex> Lock(D->Mu);
  if (D->History.empty()) {
    R.Error = "no history to roll back";
    return R;
  }
  VersionRecord Rec = std::move(D->History.back());
  D->History.pop_back();

  // Lift into the standard semantics, undo, and rebuild with the same
  // URIs so older ring entries remain applicable.
  MTree M = MTree::fromTree(Sig, D->Current);
  MTree::PatchResult P = M.patchChecked(Rec.Inverse);
  if (!P.Ok) {
    // Cannot happen for scripts we recorded ourselves; fail loudly and
    // leave the document at its current version (the record is consumed,
    // matching what the tree now provably is not).
    R.Error = "internal error: inverse script rejected: " + P.Error;
    return R;
  }
  auto FreshCtx = std::make_unique<TreeContext>(Sig);
  Tree *Restored = M.toTreePreservingUris(*FreshCtx);
  if (Restored == nullptr) {
    R.Error = "internal error: rolled-back tree is not closed";
    return R;
  }
  D->Ctx = std::move(FreshCtx);
  D->Current = Restored;
  D->Version = Rec.Version - 1;

  emit(Doc, D->Version, Rec.Inverse);

  R.Ok = true;
  R.Version = D->Version;
  R.Script = std::move(Rec.Inverse);
  R.TreeSize = D->Current->size();
  return R;
}

DocumentSnapshot DocumentStore::snapshot(DocId Doc) const {
  DocumentSnapshot S;
  std::shared_ptr<Document> D = find(Doc);
  if (!D) {
    S.Error = "no such document";
    return S;
  }
  std::lock_guard<std::mutex> Lock(D->Mu);
  S.Ok = true;
  S.Version = D->Version;
  S.TreeSize = D->Current->size();
  S.Text = printSExpr(Sig, D->Current);
  S.UriText = printSExprWithUris(Sig, D->Current);
  return S;
}

bool DocumentStore::contains(DocId Doc) const { return find(Doc) != nullptr; }

bool DocumentStore::erase(DocId Doc) {
  Shard &S = shardFor(Doc);
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Docs.erase(Doc) != 0;
}

StoreStats DocumentStore::stats() const {
  StoreStats Out;
  for (const Shard &S : Shards) {
    std::vector<std::shared_ptr<Document>> Docs;
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      Docs.reserve(S.Docs.size());
      for (const auto &[Id, D] : S.Docs)
        Docs.push_back(D);
    }
    // Document locks are taken after the shard lock is released; see the
    // locking model in the header.
    for (const std::shared_ptr<Document> &D : Docs) {
      std::lock_guard<std::mutex> Lock(D->Mu);
      ++Out.NumDocuments;
      Out.VersionsRetained += D->History.size();
      Out.LiveNodes += D->Current->size();
    }
  }
  return Out;
}

void DocumentStore::maybeCompact(Document &D) const {
  if (Cfg.CompactionFactor == 0)
    return;
  if (D.Ctx->numNodes() <= Cfg.CompactionFactor * D.Current->size() + 256)
    return;
  MTree M = MTree::fromTree(Sig, D.Current);
  auto FreshCtx = std::make_unique<TreeContext>(Sig);
  Tree *Fresh = M.toTreePreservingUris(*FreshCtx);
  if (Fresh == nullptr)
    return; // live trees are always closed; keep the old arena if not
  D.Ctx = std::move(FreshCtx);
  D.Current = Fresh;
}

//===- service/DocumentStore.cpp - Versioned live-document store -----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/DocumentStore.h"

#include "tree/SExpr.h"
#include "truechange/InitScript.h"
#include "truechange/Inverse.h"
#include "truechange/MTree.h"
#include "truediff/TrueDiff.h"

using namespace truediff;
using namespace truediff::service;

const char *truediff::service::errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::None:
    return "none";
  case ErrCode::NoSuchDocument:
    return "no_such_document";
  case ErrCode::DocumentExists:
    return "document_exists";
  case ErrCode::BuildFailed:
    return "build_failed";
  case ErrCode::TreeTooDeep:
    return "tree_too_deep";
  case ErrCode::TreeTooLarge:
    return "tree_too_large";
  case ErrCode::MemoryBudget:
    return "memory_budget";
  case ErrCode::FrameTooLarge:
    return "frame_too_large";
  case ErrCode::Backpressure:
    return "backpressure";
  case ErrCode::Shed:
    return "shed";
  case ErrCode::DeadlineExpired:
    return "deadline_expired";
  case ErrCode::Shutdown:
    return "shutdown";
  case ErrCode::HistoryExhausted:
    return "history_exhausted";
  case ErrCode::MalformedFrame:
    return "malformed_frame";
  case ErrCode::NotLeader:
    return "not_leader";
  case ErrCode::NoSuchNode:
    return "no_such_node";
  case ErrCode::CasMismatch:
    return "cas_mismatch";
  case ErrCode::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

DocumentStore::DocumentStore(const SignatureTable &Sig)
    : DocumentStore(Sig, Config()) {}

DocumentStore::DocumentStore(const SignatureTable &Sig, Config C)
    : Sig(Sig), Cfg(C), Shards(std::max<size_t>(1, C.NumShards)) {
  if (Cfg.Step1Workers > 1)
    Pool = std::make_unique<WorkerPool>(Cfg.Step1Workers);
}

void DocumentStore::addScriptListener(ScriptListener Listener) {
  std::lock_guard<std::mutex> Lock(ListenersMu);
  Listeners.push_back(std::move(Listener));
}

void DocumentStore::addEraseListener(EraseListener Listener) {
  std::lock_guard<std::mutex> Lock(ListenersMu);
  EraseListeners.push_back(std::move(Listener));
}

std::shared_ptr<DocumentStore::Document> DocumentStore::find(DocId Doc) const {
  const Shard &S = shardFor(Doc);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Docs.find(Doc);
  return It == S.Docs.end() ? nullptr : It->second;
}

void DocumentStore::emit(DocId Doc, uint64_t Version, StoreOp Op,
                         const EditScript &Script,
                         std::string_view Author) const {
  ScriptInfo Info;
  Info.Author = Author;
  std::lock_guard<std::mutex> Lock(ListenersMu);
  for (const ScriptListener &L : Listeners)
    L(Doc, Version, Op, Script, Info);
}

StoreResult DocumentStore::open(DocId Doc, const TreeBuilder &Build,
                                std::string Author) {
  StoreResult R;
  auto D = std::make_shared<Document>();
  D->Ctx = std::make_unique<TreeContext>(Sig, Cfg.Digest);
  D->Ctx->attachBudget(Cfg.MemBudget);
  BuildResult B = Build(*D->Ctx);
  if (B.Root == nullptr) {
    R.Error = B.Error.empty() ? "builder produced no tree" : B.Error;
    R.Code = B.Code != ErrCode::None ? B.Code : ErrCode::BuildFailed;
    return R;
  }
  D->Current = B.Root;
  D->Version = 0;
  D->OpenAuthor = std::move(Author);

  // Hold the (still private) document lock across publication so that a
  // racing submit on the same id observes the initializing script first.
  std::lock_guard<std::mutex> DocLock(D->Mu);
  {
    Shard &S = shardFor(Doc);
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (!S.Docs.emplace(Doc, D).second) {
      R.Error = "document already exists";
      R.Code = ErrCode::DocumentExists;
      return R;
    }
  }
  R.Script = buildInitializingScript(Sig, D->Current);
  emit(Doc, 0, StoreOp::Open, R.Script, D->OpenAuthor);
  R.Ok = true;
  R.Version = 0;
  R.TreeSize = D->Current->size();
  return R;
}

StoreResult DocumentStore::submit(DocId Doc, const TreeBuilder &Build) {
  return submit(Doc, Build, SubmitOptions());
}

StoreResult DocumentStore::submit(DocId Doc, const TreeBuilder &Build,
                                  const SubmitOptions &Opts) {
  StoreResult R;
  std::shared_ptr<Document> D = find(Doc);
  if (!D) {
    R.Error = "no such document";
    R.Code = ErrCode::NoSuchDocument;
    return R;
  }
  std::lock_guard<std::mutex> Lock(D->Mu);
  if (D->Quarantined) {
    // Rejected before the CAS check and the builder: a quarantined
    // document accepts no writes at all until repair lifts the flag, so
    // corruption cannot be compounded by diffing against a corrupt base.
    R.Error = "document is quarantined: " + D->QuarantineReason;
    R.Code = ErrCode::Quarantined;
    R.Version = D->Version;
    return R;
  }
  if (Opts.ExpectedVersion && *Opts.ExpectedVersion != D->Version) {
    // Checked before the builder runs: a failed guard must not pay for a
    // parse, and must report where the document actually is so the
    // client can tell "my retry already applied" from "someone else
    // wrote".
    R.Error = "version mismatch: document is at version " +
              std::to_string(D->Version) + ", expected " +
              std::to_string(*Opts.ExpectedVersion);
    R.Code = ErrCode::CasMismatch;
    R.Version = D->Version;
    R.TreeSize = D->Current->size();
    return R;
  }
  BuildResult B = Build(*D->Ctx);
  if (B.Root == nullptr) {
    R.Error = B.Error.empty() ? "builder produced no tree" : B.Error;
    R.Code = B.Code != ErrCode::None ? B.Code : ErrCode::BuildFailed;
    return R;
  }
  uint64_t SourceSize = D->Current->size();
  uint64_t TargetSize = B.Root->size();

  if (Opts.UseFallback && Opts.UseFallback()) {
    // Over budget: answer with the replace-root script instead of a
    // minimal diff -- unload the stored tree, load and attach the
    // target. The inverse of an initializing script unloads exactly
    // what the script loaded, so the concatenation is well-typed by
    // construction: the degraded path trades conciseness for latency,
    // never type safety.
    EditScript Unload =
        invertScript(buildInitializingScript(Sig, D->Current));
    EditScript Load = buildInitializingScript(Sig, B.Root);
    std::vector<Edit> Edits;
    Edits.reserve(Unload.size() + Load.size());
    for (const Edit &E : Unload.edits())
      Edits.push_back(E);
    for (const Edit &E : Load.edits())
      Edits.push_back(E);
    EditScript Forward{std::move(Edits)};

    D->Current = B.Root;
    ++D->Version;

    VersionRecord Rec;
    Rec.Version = D->Version;
    Rec.Inverse = invertScript(Forward);
    Rec.Script = std::move(Forward);
    Rec.Author = Opts.Author;
    D->History.push_back(std::move(Rec));
    if (D->History.size() > Cfg.HistoryCapacity)
      D->History.pop_front();

    emit(Doc, D->Version, StoreOp::Submit, D->History.back().Script,
         D->History.back().Author);
    maybeCompact(*D);

    R.Ok = true;
    R.UsedFallback = true;
    R.Version = D->Version;
    R.Script = D->History.back().Script;
    R.NodesDiffed = SourceSize + TargetSize;
    R.TreeSize = D->Current->size();
    return R;
  }

  // Warm path: the stored tree's Step-1 digests are valid (populated at
  // construction, maintained by every previous submit's dirty-path rehash
  // and every rollback/compaction rebuild), so the diff consumes them
  // as-is and afterwards rehashes only the root-to-edit paths it touched.
  // Cold path: recompute the stored digests from scratch first and fully
  // rehash the patched tree after, like a service that does not own its
  // trees between requests.
  TrueDiffOptions DiffOpts;
  DiffOpts.IncrementalRehash = Cfg.PersistDigests;
  DiffOpts.Step1Pool = Pool.get();
  uint64_t ColdRehash = 0;
  if (!Cfg.PersistDigests) {
    if (Pool != nullptr)
      D->Current->refreshDerivedParallel(Sig, Cfg.Digest, *Pool);
    else
      D->Current->refreshDerived(Sig, Cfg.Digest);
    ColdRehash = SourceSize;
  }

  TrueDiff Differ(*D->Ctx, DiffOpts);
  DiffResult Diff = Differ.compareTo(D->Current, B.Root);
  D->Current = Diff.Patched;
  ++D->Version;

  uint64_t PatchedSize = D->Current->size();
  R.NodesRehashed = ColdRehash + Diff.NodesRehashed;
  D->NodesRehashed += R.NodesRehashed;
  if (Cfg.PersistDigests)
    D->NodesDigestCacheSaved += PatchedSize - Diff.NodesRehashed;

  VersionRecord Rec;
  Rec.Version = D->Version;
  Rec.Inverse = invertScript(Diff.Script);
  Rec.Script = std::move(Diff.Script);
  Rec.Author = Opts.Author;
  D->History.push_back(std::move(Rec));
  if (D->History.size() > Cfg.HistoryCapacity)
    D->History.pop_front();

  emit(Doc, D->Version, StoreOp::Submit, D->History.back().Script,
       D->History.back().Author);
  maybeCompact(*D);

  R.Ok = true;
  R.Version = D->Version;
  R.Script = D->History.back().Script;
  R.NodesDiffed = SourceSize + TargetSize;
  R.TreeSize = D->Current->size();
  return R;
}

StoreResult DocumentStore::rollback(DocId Doc) {
  StoreResult R;
  std::shared_ptr<Document> D = find(Doc);
  if (!D) {
    R.Error = "no such document";
    R.Code = ErrCode::NoSuchDocument;
    return R;
  }
  std::lock_guard<std::mutex> Lock(D->Mu);
  if (D->Quarantined) {
    R.Error = "document is quarantined: " + D->QuarantineReason;
    R.Code = ErrCode::Quarantined;
    R.Version = D->Version;
    return R;
  }
  if (D->History.empty()) {
    // Distinguish "nothing ever to undo" from "the record fell off the
    // bounded ring": rolling back past the ring's oldest retained version
    // must yield this clean error, never a torn tree.
    R.Error = D->Version == 0
                  ? "no history to roll back"
                  : "cannot roll back version " + std::to_string(D->Version) +
                        ": its script was evicted from the history ring "
                        "(capacity " + std::to_string(Cfg.HistoryCapacity) +
                        ")";
    R.Code = ErrCode::HistoryExhausted;
    return R;
  }

  // Lift into the standard semantics, undo, and rebuild with the same
  // URIs so older ring entries remain applicable. Nothing is committed --
  // the record stays in the ring and the document keeps its tree -- until
  // the restored tree exists; a failure at any step leaves the document
  // exactly as it was.
  const VersionRecord &Rec = D->History.back();
  MTree M = MTree::fromTree(Sig, D->Current);
  MTree::PatchResult P = M.patchChecked(Rec.Inverse);
  if (!P.Ok) {
    // Cannot happen for scripts we recorded ourselves; fail loudly.
    R.Error = "internal error: inverse script rejected: " + P.Error;
    return R;
  }
  // Rollback rebuilds an existing tree, so it proceeds even when the
  // budget is tight: its peak charge is bounded by the tree we already
  // hold, and the old arena's (larger) charge is released right after.
  auto FreshCtx = std::make_unique<TreeContext>(Sig, Cfg.Digest);
  FreshCtx->attachBudget(Cfg.MemBudget);
  Tree *Restored = M.toTreePreservingUris(*FreshCtx);
  if (Restored == nullptr) {
    R.Error = "internal error: rolled-back tree is not closed";
    return R;
  }

  // Commit point: consume the record and swap in the rebuilt tree, whose
  // construction re-derived every digest (the cache "drop" of the
  // populate/invalidate/drop lifecycle).
  VersionRecord Taken = std::move(D->History.back());
  D->History.pop_back();
  D->Ctx = std::move(FreshCtx);
  D->Current = Restored;
  D->Version = Taken.Version - 1;

  // Rollback's provenance attributes to the *target* version's author:
  // the rollback restores that author's work. Version 0 is the open's
  // author; otherwise the ring's new top is the target version's record
  // -- unless it was evicted, in which case attribution is unknown.
  std::string_view TargetAuthor;
  if (D->Version == 0)
    TargetAuthor = D->OpenAuthor;
  else if (!D->History.empty() && D->History.back().Version == D->Version)
    TargetAuthor = D->History.back().Author;
  emit(Doc, D->Version, StoreOp::Rollback, Taken.Inverse, TargetAuthor);

  R.Ok = true;
  R.Version = D->Version;
  R.Script = std::move(Taken.Inverse);
  R.TreeSize = D->Current->size();
  return R;
}

DocumentSnapshot DocumentStore::snapshot(DocId Doc) const {
  DocumentSnapshot S;
  std::shared_ptr<Document> D = find(Doc);
  if (!D) {
    S.Error = "no such document";
    return S;
  }
  std::lock_guard<std::mutex> Lock(D->Mu);
  S.Ok = true;
  S.Version = D->Version;
  S.TreeSize = D->Current->size();
  S.Text = printSExpr(Sig, D->Current);
  S.UriText = printSExprWithUris(Sig, D->Current);
  S.Quarantined = D->Quarantined;
  S.QuarantineReason = D->QuarantineReason;
  return S;
}

namespace {

/// Compares \p Stored's cached derived data against \p Fresh, a
/// from-scratch rebuild of the same tree; returns the first divergence.
std::optional<std::string> compareDerived(const Tree *Stored,
                                          const Tree *Fresh) {
  auto Complain = [&](const char *What) {
    return "stale " + std::string(What) + " at uri " +
           std::to_string(Stored->uri());
  };
  if (Stored->structureHash() != Fresh->structureHash())
    return Complain("structure hash");
  if (Stored->literalHash() != Fresh->literalHash())
    return Complain("literal hash");
  if (Stored->height() != Fresh->height())
    return Complain("height");
  if (Stored->size() != Fresh->size())
    return Complain("size");
  if (Stored->arity() != Fresh->arity())
    return Complain("arity");
  for (size_t I = 0, E = Stored->arity(); I != E; ++I)
    if (auto Err = compareDerived(Stored->kid(I), Fresh->kid(I)))
      return Err;
  return std::nullopt;
}

} // namespace

std::optional<std::string> DocumentStore::checkDigests(DocId Doc) const {
  std::shared_ptr<Document> D = find(Doc);
  if (!D)
    return "no such document";
  std::lock_guard<std::mutex> Lock(D->Mu);
  // deepCopy re-derives every digest bottom-up in a scratch arena (with
  // the store's digest policy); the stored tree must agree with it node
  // for node.
  TreeContext Scratch(Sig, Cfg.Digest);
  const Tree *Fresh = Scratch.deepCopy(D->Current);
  return compareDerived(D->Current, Fresh);
}

bool DocumentStore::contains(DocId Doc) const { return find(Doc) != nullptr; }

bool DocumentStore::erase(DocId Doc) {
  Shard &S = shardFor(Doc);
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Docs.erase(Doc) == 0)
    return false;
  // Notify while still holding the shard lock: a racing re-open of the
  // same id cannot publish (it needs this shard's lock) until the erase
  // has been observed, so subscribers see erase-before-reopen in order.
  std::lock_guard<std::mutex> LLock(ListenersMu);
  for (const EraseListener &L : EraseListeners)
    L(Doc);
  return true;
}

std::vector<DocId> DocumentStore::listDocuments() const {
  std::vector<DocId> Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Id, D] : S.Docs)
      Out.push_back(Id);
  }
  return Out;
}

bool DocumentStore::quarantine(DocId Doc, std::string Reason) {
  std::shared_ptr<Document> D = find(Doc);
  if (!D)
    return false;
  std::lock_guard<std::mutex> Lock(D->Mu);
  if (!D->Quarantined) {
    D->Quarantined = true;
    D->QuarantineReason = std::move(Reason);
  }
  return true;
}

bool DocumentStore::corruptDigestForTest(DocId Doc) {
  std::shared_ptr<Document> D = find(Doc);
  if (!D)
    return false;
  std::lock_guard<std::mutex> Lock(D->Mu);
  TreeContext::corruptDerivedForTest(D->Current);
  return true;
}

bool DocumentStore::clearQuarantine(DocId Doc) {
  std::shared_ptr<Document> D = find(Doc);
  if (!D)
    return false;
  std::lock_guard<std::mutex> Lock(D->Mu);
  D->Quarantined = false;
  D->QuarantineReason.clear();
  return true;
}

std::optional<std::string> DocumentStore::quarantineInfo(DocId Doc) const {
  std::shared_ptr<Document> D = find(Doc);
  if (!D)
    return std::nullopt;
  std::lock_guard<std::mutex> Lock(D->Mu);
  if (!D->Quarantined)
    return std::nullopt;
  return D->QuarantineReason;
}

StoreResult DocumentStore::repair(DocId Doc, uint64_t Version,
                                  const TreeBuilder &Build,
                                  std::vector<RestoreEntry> History,
                                  std::string OpenAuthor) {
  StoreResult R;
  std::shared_ptr<Document> D = find(Doc);
  if (!D) {
    R.Error = "no such document";
    R.Code = ErrCode::NoSuchDocument;
    return R;
  }
  // Build the recovered state into a fresh context first; the corrupt
  // arena is only released once the replacement exists, so a failed
  // repair leaves the document exactly as it was (still quarantined).
  auto FreshCtx = std::make_unique<TreeContext>(Sig, Cfg.Digest);
  FreshCtx->attachBudget(Cfg.MemBudget);
  BuildResult B = Build(*FreshCtx);
  if (B.Root == nullptr) {
    R.Error = B.Error.empty() ? "builder produced no tree" : B.Error;
    R.Code = B.Code != ErrCode::None ? B.Code : ErrCode::BuildFailed;
    return R;
  }
  std::deque<VersionRecord> Ring;
  if (History.size() > Cfg.HistoryCapacity)
    History.erase(History.begin(),
                  History.end() - static_cast<ptrdiff_t>(Cfg.HistoryCapacity));
  for (RestoreEntry &E : History) {
    VersionRecord Rec;
    Rec.Version = E.Version;
    Rec.Inverse = invertScript(E.Script);
    Rec.Script = std::move(E.Script);
    Rec.Author = std::move(E.Author);
    Ring.push_back(std::move(Rec));
  }

  std::lock_guard<std::mutex> Lock(D->Mu);
  D->Ctx = std::move(FreshCtx);
  D->Current = B.Root;
  D->Version = Version;
  D->History = std::move(Ring);
  D->OpenAuthor = std::move(OpenAuthor);
  D->Quarantined = false;
  D->QuarantineReason.clear();

  R.Ok = true;
  R.Version = Version;
  R.TreeSize = D->Current->size();
  return R;
}

bool DocumentStore::withDocument(
    DocId Doc,
    const std::function<void(const Tree *, uint64_t Version,
                             const std::vector<HistoryEntry> &)> &Fn) const {
  std::shared_ptr<Document> D = find(Doc);
  if (!D)
    return false;
  std::lock_guard<std::mutex> Lock(D->Mu);
  std::vector<HistoryEntry> History;
  History.reserve(D->History.size());
  for (const VersionRecord &Rec : D->History)
    History.push_back({Rec.Version, &Rec.Script, &Rec.Author});
  Fn(D->Current, D->Version, History);
  return true;
}

std::string DocumentStore::openAuthor(DocId Doc) const {
  std::shared_ptr<Document> D = find(Doc);
  if (!D)
    return std::string();
  std::lock_guard<std::mutex> Lock(D->Mu);
  return D->OpenAuthor;
}

StoreResult DocumentStore::restore(DocId Doc, uint64_t Version,
                                   const TreeBuilder &Build,
                                   std::vector<RestoreEntry> History,
                                   std::string OpenAuthor) {
  StoreResult R;
  auto D = std::make_shared<Document>();
  D->Ctx = std::make_unique<TreeContext>(Sig, Cfg.Digest);
  D->Ctx->attachBudget(Cfg.MemBudget);
  BuildResult B = Build(*D->Ctx);
  if (B.Root == nullptr) {
    R.Error = B.Error.empty() ? "builder produced no tree" : B.Error;
    R.Code = B.Code != ErrCode::None ? B.Code : ErrCode::BuildFailed;
    return R;
  }
  D->Current = B.Root;
  D->Version = Version;
  D->OpenAuthor = std::move(OpenAuthor);
  if (History.size() > Cfg.HistoryCapacity)
    History.erase(History.begin(),
                  History.end() - static_cast<ptrdiff_t>(Cfg.HistoryCapacity));
  for (RestoreEntry &E : History) {
    VersionRecord Rec;
    Rec.Version = E.Version;
    Rec.Inverse = invertScript(E.Script);
    Rec.Script = std::move(E.Script);
    Rec.Author = std::move(E.Author);
    D->History.push_back(std::move(Rec));
  }

  {
    Shard &S = shardFor(Doc);
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (!S.Docs.emplace(Doc, D).second) {
      R.Error = "document already exists";
      R.Code = ErrCode::DocumentExists;
      return R;
    }
  }
  R.Ok = true;
  R.Version = Version;
  R.TreeSize = D->Current->size();
  return R;
}

StoreStats DocumentStore::stats() const {
  StoreStats Out;
  for (const Shard &S : Shards) {
    std::vector<std::shared_ptr<Document>> Docs;
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      Docs.reserve(S.Docs.size());
      for (const auto &[Id, D] : S.Docs)
        Docs.push_back(D);
    }
    // Document locks are taken after the shard lock is released; see the
    // locking model in the header.
    for (const std::shared_ptr<Document> &D : Docs) {
      std::lock_guard<std::mutex> Lock(D->Mu);
      ++Out.NumDocuments;
      Out.VersionsRetained += D->History.size();
      Out.LiveNodes += D->Current->size();
      Out.NodesRehashed += D->NodesRehashed;
      Out.NodesDigestCacheSaved += D->NodesDigestCacheSaved;
      if (D->Quarantined)
        ++Out.Quarantined;
    }
  }
  return Out;
}

void DocumentStore::maybeCompact(Document &D) const {
  if (Cfg.CompactionFactor == 0)
    return;
  if (D.Ctx->numNodes() <= Cfg.CompactionFactor * D.Current->size() + 256)
    return;
  MTree M = MTree::fromTree(Sig, D.Current);
  auto FreshCtx = std::make_unique<TreeContext>(Sig, Cfg.Digest);
  FreshCtx->attachBudget(Cfg.MemBudget);
  Tree *Fresh = M.toTreePreservingUris(*FreshCtx);
  if (Fresh == nullptr)
    return; // live trees are always closed; keep the old arena if not
  D.Ctx = std::move(FreshCtx);
  D.Current = Fresh;
}

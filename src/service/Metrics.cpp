//===- service/Metrics.cpp - Counters and latency histograms ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

using namespace truediff;
using namespace truediff::service;

const char *service::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Open:
    return "open";
  case OpKind::Submit:
    return "submit";
  case OpKind::Rollback:
    return "rollback";
  case OpKind::GetVersion:
    return "get_version";
  case OpKind::Stats:
    return "stats";
  case OpKind::Blame:
    return "blame";
  case OpKind::History:
    return "history";
  }
  return "?";
}

void LatencyHistogram::record(double Ms) {
  uint64_t Us = Ms <= 0 ? 0 : static_cast<uint64_t>(Ms * 1000.0);
  size_t Bucket = std::bit_width(Us); // 0 us -> bucket 0, [2^(i-1),2^i) -> i
  if (Bucket >= NumBuckets)
    Bucket = NumBuckets - 1;
  Buckets[Bucket].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  SumUs.fetch_add(Us, std::memory_order_relaxed);
  uint64_t Prev = MaxUs.load(std::memory_order_relaxed);
  while (Us > Prev &&
         !MaxUs.compare_exchange_weak(Prev, Us, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Summary LatencyHistogram::summarize() const {
  Summary S;
  std::array<uint64_t, NumBuckets> Snap;
  for (size_t I = 0; I != NumBuckets; ++I)
    Snap[I] = Buckets[I].load(std::memory_order_relaxed);
  uint64_t Total = 0;
  for (uint64_t C : Snap)
    Total += C;
  S.Count = Total;
  if (Total == 0)
    return S;
  S.MeanMs = static_cast<double>(SumUs.load(std::memory_order_relaxed)) /
             static_cast<double>(Total) / 1000.0;
  S.MaxMs = static_cast<double>(MaxUs.load(std::memory_order_relaxed)) / 1000.0;

  // A percentile reports the upper bound of the bucket containing it, in
  // ms; bucket i's upper bound is 2^i us.
  auto Percentile = [&](double P) {
    uint64_t Rank = static_cast<uint64_t>(std::ceil(P * Total));
    if (Rank == 0)
      Rank = 1;
    uint64_t Seen = 0;
    for (size_t I = 0; I != NumBuckets; ++I) {
      Seen += Snap[I];
      if (Seen >= Rank)
        return static_cast<double>(uint64_t(1) << I) / 1000.0;
    }
    return S.MaxMs;
  };
  S.P50Ms = Percentile(0.50);
  S.P95Ms = Percentile(0.95);
  S.P99Ms = Percentile(0.99);
  return S;
}

std::string LatencyHistogram::toJson() const {
  Summary S = summarize();
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"count\":%llu,\"mean_ms\":%.4f,\"p50_ms\":%.4f,"
                "\"p95_ms\":%.4f,\"p99_ms\":%.4f,\"max_ms\":%.4f}",
                static_cast<unsigned long long>(S.Count), S.MeanMs, S.P50Ms,
                S.P95Ms, S.P99Ms, S.MaxMs);
  return Buf;
}

std::string ServiceMetrics::toJson(size_t QueueDepth, size_t QueueCapacity,
                                   unsigned Workers, size_t DocQueues) const {
  std::string Out = "{";
  char Buf[384];
  std::snprintf(Buf, sizeof(Buf),
                "\"workers\":%u,\"queue\":{\"depth\":%zu,\"capacity\":%zu,"
                "\"doc_queues\":%zu},",
                Workers, QueueDepth, QueueCapacity, DocQueues);
  Out += Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "\"rejected\":%llu,\"scripts_emitted\":%llu,\"edits_emitted\":%llu,"
      "\"coalesced_edits\":%llu,\"nodes_diffed\":%llu,"
      "\"nodes_rehashed\":%llu,",
      static_cast<unsigned long long>(Rejected.load()),
      static_cast<unsigned long long>(ScriptsEmitted.load()),
      static_cast<unsigned long long>(EditsEmitted.load()),
      static_cast<unsigned long long>(CoalescedEdits.load()),
      static_cast<unsigned long long>(NodesDiffed.load()),
      static_cast<unsigned long long>(NodesRehashed.load()));
  Out += Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "\"deadline_expired\":%llu,\"fallback_scripts\":%llu,"
      "\"shed\":%llu,\"shed_at_arrival\":%llu,"
      "\"admission_rejected\":%llu,\"budget_rejected\":%llu,"
      "\"mem_used_bytes\":%llu,\"mem_budget_bytes\":%llu,"
      "\"breaker_trips\":%llu,\"degraded_seconds\":%.6f,",
      static_cast<unsigned long long>(DeadlineExpired.load()),
      static_cast<unsigned long long>(FallbackScripts.load()),
      static_cast<unsigned long long>(Shed.load()),
      static_cast<unsigned long long>(ArrivalShed.load()),
      static_cast<unsigned long long>(AdmissionRejected.load()),
      static_cast<unsigned long long>(BudgetRejected.load()),
      static_cast<unsigned long long>(MemUsedBytes.load()),
      static_cast<unsigned long long>(MemBudgetBytes.load()),
      static_cast<unsigned long long>(BreakerTrips.load()),
      static_cast<double>(DegradedUs.load()) / 1e6);
  Out += Buf;
  Out += "\"queue_wait\":" + QueueWait.toJson() + ",\"ops\":{";
  for (unsigned I = 0; I != NumOpKinds; ++I) {
    if (I != 0)
      Out += ",";
    const PerOp &Op = Ops[I];
    std::snprintf(Buf, sizeof(Buf),
                  "\"%s\":{\"requests\":%llu,\"failures\":%llu,\"latency\":",
                  opKindName(static_cast<OpKind>(I)),
                  static_cast<unsigned long long>(Op.Requests.load()),
                  static_cast<unsigned long long>(Op.Failures.load()));
    Out += Buf;
    Out += Op.Latency.toJson();
    Out += "}";
  }
  Out += "}}";
  return Out;
}

//===- service/BoundedQueue.h - Bounded MPMC request queue ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer multi-consumer queue with reject-on-full
/// semantics: producers never block, they get backpressure instead
/// (tryPush returns false), which is the contract the DiffService exposes
/// to its clients. Consumers block in pop until an item arrives or the
/// queue is closed *and* drained, so closing gives graceful shutdown: no
/// accepted request is dropped.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_BOUNDEDQUEUE_H
#define TRUEDIFF_SERVICE_BOUNDEDQUEUE_H

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace truediff {
namespace service {

template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(size_t Capacity) : Capacity(Capacity) {}

  /// Enqueues \p Item unless the queue is full or closed. On failure the
  /// item is left untouched (not moved from).
  bool tryPush(T &&Item) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Closed || Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available and returns it, or returns
  /// std::nullopt once the queue is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    return Item;
  }

  /// Stops accepting new items; blocked consumers drain the remainder and
  /// then observe end-of-queue.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Items.size();
  }

  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_BOUNDEDQUEUE_H

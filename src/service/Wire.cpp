//===- service/Wire.cpp - Textual wire protocol for the service ------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Wire.h"

#include "tree/SExpr.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace truediff;
using namespace truediff::service;

namespace {

std::string toHexByte(unsigned char U) {
  const char *Hex = "0123456789abcdef";
  return {Hex[U >> 4], Hex[U & 0xf]};
}

std::string_view trimLeft(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
    S.remove_prefix(1);
  return S;
}

std::string_view nextToken(std::string_view &S) {
  S = trimLeft(S);
  size_t End = 0;
  while (End != S.size() && S[End] != ' ' && S[End] != '\t')
    ++End;
  std::string_view Tok = S.substr(0, End);
  S.remove_prefix(End);
  return Tok;
}

bool parseDocId(std::string_view Tok, DocId &Out) {
  if (Tok.empty())
    return false;
  DocId Value = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return false;
    DocId Digit = static_cast<DocId>(C - '0');
    // Reject ids that overflow 64 bits instead of silently wrapping onto
    // some other client's document.
    if (Value > (std::numeric_limits<DocId>::max() - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

} // namespace

WireCommand service::parseWireCommand(std::string_view Line,
                                      size_t MaxFrameBytes) {
  WireCommand Cmd;
  // Bound the frame before touching its contents: every later step is
  // O(line), so the cap also bounds per-request parser work.
  if (Line.size() > MaxFrameBytes) {
    Cmd.Error = "oversized frame: " + std::to_string(Line.size()) +
                " bytes exceeds the limit of " + std::to_string(MaxFrameBytes);
    Cmd.Code = ErrCode::FrameTooLarge;
    return Cmd;
  }
  // Tolerate CRLF transports: one trailing '\r' is line framing, not
  // payload.
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  // No control character survives into command or payload: interior
  // '\r'/NUL/escape bytes are either framing bugs or probe traffic, and
  // both deserve a protocol error instead of reaching a builder.
  for (char C : Line) {
    unsigned char U = static_cast<unsigned char>(C);
    if ((U < 0x20 && C != '\t') || U == 0x7f) {
      Cmd.Error = "control character 0x" + toHexByte(U) + " in frame";
      return Cmd;
    }
  }
  std::string_view Rest = Line;
  std::string_view Verb = nextToken(Rest);
  if (Verb.empty()) {
    Cmd.Error = "empty command";
    return Cmd;
  }

  auto NeedDoc = [&](WireCommand::Kind K, bool WantsArg) {
    std::string_view IdTok = nextToken(Rest);
    if (!parseDocId(IdTok, Cmd.Doc)) {
      Cmd.Error = "expected numeric document id after '" + std::string(Verb) +
                  "'";
      return;
    }
    Rest = trimLeft(Rest);
    if (WantsArg) {
      // Optional key=value tokens between the id and the payload, in any
      // order. The payload is an s-expression and always starts with
      // '(', so the key prefixes cannot be tree text.
      constexpr std::string_view AuthorKey = "author=";
      constexpr std::string_view ExpectKey = "expect=";
      for (;;) {
        if (Rest.substr(0, AuthorKey.size()) == AuthorKey) {
          std::string_view Tok = nextToken(Rest);
          Cmd.Author = std::string(Tok.substr(AuthorKey.size()));
          Rest = trimLeft(Rest);
        } else if (Rest.substr(0, ExpectKey.size()) == ExpectKey) {
          std::string_view Tok = nextToken(Rest);
          uint64_t Expect = 0;
          if (!parseDocId(Tok.substr(ExpectKey.size()), Expect)) {
            Cmd.Error = "expected numeric version after 'expect='";
            return;
          }
          Cmd.Expect = Expect;
          Rest = trimLeft(Rest);
        } else {
          break;
        }
      }
      if (Rest.empty()) {
        Cmd.Error = "expected s-expression after document id";
        return;
      }
      Cmd.Arg = std::string(Rest);
    } else if (!Rest.empty()) {
      Cmd.Error = "unexpected trailing input: " + std::string(Rest);
      return;
    }
    Cmd.K = K;
  };

  // blame: optional node uri; history: required node uri.
  auto NeedDocUri = [&](WireCommand::Kind K, bool UriRequired) {
    std::string_view IdTok = nextToken(Rest);
    if (!parseDocId(IdTok, Cmd.Doc)) {
      Cmd.Error = "expected numeric document id after '" + std::string(Verb) +
                  "'";
      return;
    }
    Rest = trimLeft(Rest);
    if (Rest.empty()) {
      if (UriRequired) {
        Cmd.Error = "expected node uri after document id";
        return;
      }
      Cmd.K = K;
      return;
    }
    std::string_view UriTok = nextToken(Rest);
    if (!UriTok.empty() && UriTok.front() == '#')
      UriTok.remove_prefix(1);
    if (!parseDocId(UriTok, Cmd.Uri)) {
      Cmd.Error = "expected numeric node uri, got '" + std::string(UriTok) +
                  "'";
      return;
    }
    if (!trimLeft(Rest).empty()) {
      Cmd.Error = "unexpected trailing input: " + std::string(trimLeft(Rest));
      return;
    }
    Cmd.HasUri = true;
    Cmd.K = K;
  };

  if (Verb == "open")
    NeedDoc(WireCommand::Kind::Open, /*WantsArg=*/true);
  else if (Verb == "submit")
    NeedDoc(WireCommand::Kind::Submit, /*WantsArg=*/true);
  else if (Verb == "rollback")
    NeedDoc(WireCommand::Kind::Rollback, /*WantsArg=*/false);
  else if (Verb == "get")
    NeedDoc(WireCommand::Kind::Get, /*WantsArg=*/false);
  else if (Verb == "blame")
    NeedDocUri(WireCommand::Kind::Blame, /*UriRequired=*/false);
  else if (Verb == "history")
    NeedDocUri(WireCommand::Kind::History, /*UriRequired=*/true);
  else if (Verb == "save")
    NeedDoc(WireCommand::Kind::Save, /*WantsArg=*/false);
  else if (Verb == "scrub" && trimLeft(Rest).empty())
    Cmd.K = WireCommand::Kind::Scrub;
  else if (Verb == "promote") {
    // The epoch operand is mandatory: an accidental bare "promote" must
    // not silently pick an epoch and split the cluster's brain.
    std::string_view EpochTok = nextToken(Rest);
    uint64_t Epoch = 0;
    if (!parseDocId(EpochTok, Epoch) || Epoch == 0)
      Cmd.Error = "expected positive epoch after 'promote'";
    else if (!trimLeft(Rest).empty())
      Cmd.Error = "unexpected trailing input: " + std::string(trimLeft(Rest));
    else {
      Cmd.Expect = Epoch;
      Cmd.K = WireCommand::Kind::Promote;
    }
  } else if (Verb == "demote") {
    // Optional operand: where writes should go now (the new leader's
    // host:port), echoed back to fenced clients as a redirect hint.
    Rest = trimLeft(Rest);
    if (!Rest.empty()) {
      std::string_view Addr = nextToken(Rest);
      if (!trimLeft(Rest).empty()) {
        Cmd.Error =
            "unexpected trailing input: " + std::string(trimLeft(Rest));
        return Cmd;
      }
      Cmd.Arg = std::string(Addr);
    }
    Cmd.K = WireCommand::Kind::Demote;
  } else if (Verb == "recover" && trimLeft(Rest).empty())
    Cmd.K = WireCommand::Kind::Recover;
  else if (Verb == "stats" && trimLeft(Rest).empty())
    Cmd.K = WireCommand::Kind::Stats;
  else if (Verb == "health" && trimLeft(Rest).empty())
    Cmd.K = WireCommand::Kind::Health;
  else if ((Verb == "quit" || Verb == "exit") && trimLeft(Rest).empty())
    Cmd.K = WireCommand::Kind::Quit;
  else
    Cmd.Error = "unknown command: " + std::string(Verb);
  return Cmd;
}

std::string service::formatWireResponse(const Response &R) {
  std::string Out;
  if (R.Ok) {
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "ok version=%llu edits=%llu coalesced=%llu size=%llu%s\n",
                  static_cast<unsigned long long>(R.Version),
                  static_cast<unsigned long long>(R.EditCount),
                  static_cast<unsigned long long>(R.CoalescedSize),
                  static_cast<unsigned long long>(R.TreeSize),
                  R.Fallback ? " fallback=1" : "");
    Out += Buf;
    // Integrity warning: the document is quarantined; the payload is
    // served anyway but the client must know it may be corrupt. The
    // marker is additive, like fallback=1.
    if (!R.IntegrityWarning.empty()) {
      Out.pop_back(); // '\n'
      Out += " quarantined=1\n";
    }
    if (!R.Payload.empty()) {
      Out += R.Payload;
      if (Out.back() != '\n')
        Out += '\n';
    }
  } else {
    Out += "err " + R.Error;
    if (R.Code != ErrCode::None)
      Out += std::string(" code=") + errCodeName(R.Code);
    if (R.RetryAfterMs != 0)
      Out += " retry_after_ms=" + std::to_string(R.RetryAfterMs);
    // Redirect hint: which replica answers writes now.
    if (R.Code == ErrCode::NotLeader && !R.LeaderAddr.empty())
      Out += " leader=" + R.LeaderAddr;
    // CAS miss: the version the document is actually at, so a retrying
    // client can tell "my earlier attempt applied" from "someone else
    // wrote" without a round trip.
    if (R.Code == ErrCode::CasMismatch)
      Out += " version=" + std::to_string(R.Version);
    Out += "\n";
  }
  Out += ".\n";
  return Out;
}

std::string service::formatWireResponse(const Response &R,
                                        WireCommand::Kind K) {
  switch (K) {
  case WireCommand::Kind::Health:
  case WireCommand::Kind::Stats:
  case WireCommand::Kind::Scrub:
  case WireCommand::Kind::Recover:
  case WireCommand::Kind::Promote:
  case WireCommand::Kind::Demote:
  case WireCommand::Kind::Quit:
  case WireCommand::Kind::Invalid: {
    Response Stripped = R;
    Stripped.RetryAfterMs = 0;
    return formatWireResponse(Stripped);
  }
  default:
    return formatWireResponse(R);
  }
}

TreeBuilder service::makeSExprBuilder(std::string Text) {
  return makeSExprBuilder(std::move(Text), ParseLimits());
}

TreeBuilder service::makeSExprBuilder(std::string Text, ParseLimits Limits) {
  return [Text = std::move(Text), Limits](TreeContext &Ctx) -> BuildResult {
    ParseResult P = parseSExpr(Ctx, Text, Limits);
    if (!P.ok())
      return BuildResult{nullptr, P.Error, errCodeForParseFail(P.Fail)};
    return BuildResult{P.Root, ""};
  };
}

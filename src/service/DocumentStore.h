//===- service/DocumentStore.h - Versioned live-document store --*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded store of live documents -- the version-control
/// and database use cases the paper motivates (Section 1), grown into a
/// subsystem. Each document owns its TreeContext and current Tree plus a
/// bounded ring of applied edit scripts and their inverses (via
/// truechange/Inverse), so any document can be rolled back version by
/// version or its history replayed by a subscriber.
///
/// Locking model: a shard mutex guards only the DocId -> Document map;
/// every document has its own mutex that serialises all tree access. This
/// keeps the share-assignment state of one diff single-threaded (as the
/// truediff algorithm requires -- Tree nodes carry mutable diffing state)
/// while diffs on independent documents proceed in parallel. No code path
/// acquires a shard mutex while holding a document mutex, so the two
/// levels cannot deadlock.
///
/// Rollback works in URI space: the current tree is lifted into the
/// standard semantics (MTree), the recorded inverse script is applied
/// with full compliance checking, and the restored tree is rebuilt into a
/// fresh context *preserving URIs*, so the remaining history ring stays
/// meaningful for further rollbacks. The same rebuild doubles as arena
/// compaction once a long-lived document's context accumulates garbage.
/// Rollback commits nothing until the restored tree exists: if any step
/// fails (e.g. the requested version's record was evicted from the ring),
/// the document -- tree, context, history -- is left exactly as it was
/// and a clean error is returned; a torn document is never observable.
///
/// Digest cache (truediff Step 1, paper Section 4.2): every stored tree
/// carries its structural/literal SHA-256 digests, heights, and sizes in
/// its nodes, so they persist across requests. The lifecycle is
///   populate     at open/submit/rollback (tree construction hashes),
///   invalidate   on submit along the root-to-edit paths the applied
///                script touched (TrueDiff's dirty marks), rehashing only
///                those paths, and
///   drop         on rollback and arena compaction, whose URI-preserving
///                rebuild re-derives every digest from scratch.
/// A warm diff therefore skips rehashing the unchanged bulk of the stored
/// tree. Config::PersistDigests turns the cache off, which recomputes the
/// stored tree's digests from scratch on every diff (the cold path); cold
/// and warm diffs produce byte-identical edit scripts.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_SERVICE_DOCUMENTSTORE_H
#define TRUEDIFF_SERVICE_DOCUMENTSTORE_H

#include "support/WorkerPool.h"
#include "tree/Tree.h"
#include "truechange/Edit.h"

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace service {

/// Identifies one live document in the store.
using DocId = uint64_t;

/// Typed cause of a failed service or store operation. The wire protocol
/// keeps its human-readable `err <message>` lines; the code travels on
/// the API result so clients, the shedding logic, and tests can switch
/// on the cause without string matching.
enum class ErrCode : uint8_t {
  None = 0,         ///< no error, or an unclassified failure
  NoSuchDocument,   ///< the document does not exist
  DocumentExists,   ///< open() of an existing document
  BuildFailed,      ///< builder failed for a non-admission reason (syntax)
  TreeTooDeep,      ///< parse-time depth cap exceeded (ParseFail::TooDeep)
  TreeTooLarge,     ///< parse-time node cap exceeded (ParseFail::TooLarge)
  MemoryBudget,     ///< process-wide memory budget exhausted
  FrameTooLarge,    ///< wire frame exceeded the byte cap
  Backpressure,     ///< global or per-document queue full
  Shed,             ///< shed by sojourn-time overload control
  DeadlineExpired,  ///< deadline passed while queued
  Shutdown,         ///< service is shut down
  HistoryExhausted, ///< rollback past the retained history ring
  MalformedFrame,   ///< binary wire frame or payload failed to decode
  NotLeader,        ///< write sent to a read-only follower replica
  NoSuchNode,       ///< blame/history query for a URI with no live node
  CasMismatch,      ///< submit's expected version != the current version
  Quarantined,      ///< document failed an integrity check; writes rejected
};

/// Short stable name for \p C (for logs and stats).
const char *errCodeName(ErrCode C);

/// Maps a parser's typed failure to the store/service error code.
inline ErrCode errCodeForParseFail(ParseFail F) {
  switch (F) {
  case ParseFail::TooDeep:
    return ErrCode::TreeTooDeep;
  case ParseFail::TooLarge:
    return ErrCode::TreeTooLarge;
  case ParseFail::OverBudget:
    return ErrCode::MemoryBudget;
  case ParseFail::None:
  case ParseFail::Syntax:
    break;
  }
  return ErrCode::BuildFailed;
}

/// What a TreeBuilder produced: a tree, or an error message with a typed
/// cause (admission rejections vs. plain build failures).
struct BuildResult {
  Tree *Root = nullptr;
  std::string Error;
  ErrCode Code = ErrCode::None;
};

/// Builds a version of a document inside the document's own context.
/// Called under the document lock, so it must not call back into the
/// store. Returning a null Root fails the request with Error.
using TreeBuilder = std::function<BuildResult(TreeContext &)>;

/// Result of a mutating store operation.
struct StoreResult {
  bool Ok = false;
  std::string Error;
  /// Typed cause when !Ok (ErrCode::None if unclassified).
  ErrCode Code = ErrCode::None;
  /// Version after the operation (0 = freshly opened).
  uint64_t Version = 0;
  /// open: the initializing script; submit: the forward script;
  /// rollback: the inverse script that was applied.
  EditScript Script;
  /// submit: source + target node count (throughput accounting).
  uint64_t NodesDiffed = 0;
  /// Node count of the document's tree after the operation.
  uint64_t TreeSize = 0;
  /// submit: nodes of the stored tree whose Step-1 digests were
  /// recomputed serving this request -- only the touched root-to-edit
  /// paths when digests are persisted (warm), the full source and patched
  /// trees when not (cold).
  uint64_t NodesRehashed = 0;
  /// submit: the emitted script is the replace-root fallback (see
  /// SubmitOptions::UseFallback), not a minimal diff.
  bool UsedFallback = false;
};

/// Per-call options for DocumentStore::submit.
struct SubmitOptions {
  /// Consulted once, after the builder produced the target tree (the
  /// deadline check must account for build time) but before the diff
  /// runs. Returning true skips the diff and commits the type-checked
  /// replace-root script instead: invert(init(current)) ++ init(target)
  /// -- unload the old tree, load and attach the new one. Well-typed by
  /// construction (truechange Thm 3.8: the inverse of a well-typed
  /// script is well-typed, and init scripts are the paper's Def 3.2),
  /// so a degraded answer still upholds every script guarantee; it is
  /// just not concise. Null means never.
  std::function<bool()> UseFallback;
  /// Who authored the submitted revision; recorded on the version's
  /// history-ring entry and handed to script listeners, so provenance
  /// consumers (src/blame) can attribute the nodes the script touches.
  /// Empty = unattributed.
  std::string Author;
  /// Optimistic-concurrency guard: when set, the submit only applies if
  /// the document's current version equals this, failing with
  /// ErrCode::CasMismatch (and the current version in
  /// StoreResult::Version) otherwise. A client that retries a timed-out
  /// submit with the same expected version can never apply it twice --
  /// the second application sees a bumped version and fails the guard --
  /// which is what makes at-least-once network retries exactly-once at
  /// the store.
  std::optional<uint64_t> ExpectedVersion;
};

/// Read-only view of a document's current state.
struct DocumentSnapshot {
  bool Ok = false;
  std::string Error;
  uint64_t Version = 0;
  uint64_t TreeSize = 0;
  /// Plain s-expression of the current tree (the wire tree format).
  std::string Text;
  /// S-expression with URI subscripts; stable across rollback, so tests
  /// can assert exact (URI-level) restoration.
  std::string UriText;
  /// The document is quarantined: an integrity check found its in-memory
  /// state corrupt and repair has not (yet) succeeded. The snapshot is
  /// still returned -- a possibly-wrong answer plus an explicit warning
  /// beats silence -- but callers must surface the warning.
  bool Quarantined = false;
  /// Why the document was quarantined (empty when !Quarantined).
  std::string QuarantineReason;
};

/// Aggregate store gauges.
struct StoreStats {
  uint64_t NumDocuments = 0;
  uint64_t VersionsRetained = 0;
  uint64_t LiveNodes = 0;
  /// Total nodes rehashed serving submits (see StoreResult::NodesRehashed).
  uint64_t NodesRehashed = 0;
  /// Total stored-tree nodes whose persisted digests a warm submit reused
  /// instead of rehashing: sum over submits of patched-tree size minus
  /// rehashed paths. Zero when digests are not persisted.
  uint64_t NodesDigestCacheSaved = 0;
  /// Documents currently quarantined by an integrity check.
  uint64_t Quarantined = 0;
};

class DocumentStore {
public:
  struct Config {
    /// Number of independently locked map shards.
    size_t NumShards = 16;
    /// Bound of the per-document history ring; rollback depth is limited
    /// to this many versions.
    size_t HistoryCapacity = 32;
    /// Compact a document's arena when it holds more than
    /// CompactionFactor * treeSize + 256 nodes. 0 disables compaction.
    size_t CompactionFactor = 8;
    /// Keep each stored tree's Step-1 digests warm across requests and
    /// rehash only the root-to-edit paths a submit touches. When false,
    /// the stored tree's digests are recomputed from scratch before every
    /// diff and the patched tree is fully rehashed after it (the cold
    /// path a stateless diff service pays). Purely an optimisation: the
    /// emitted edit scripts are byte-identical either way.
    bool PersistDigests = true;
    /// Process-wide memory budget every document context accounts
    /// against (open, restore, rollback and compaction rebuilds).
    /// Builders running in those contexts observe it via
    /// TreeContext::overBudget(). Null = unlimited. Must outlive the
    /// store.
    MemoryBudget *MemBudget = nullptr;
    /// Digest policy for every document context (see TreeHash.h).
    /// SHA-256 is the default; Fast128 speeds up Step-1 hashing
    /// substantially but its seeded digests are meaningless outside this
    /// process, so keep SHA-256 wherever digests are compared across
    /// processes (replication verification). Scripts are byte-identical
    /// under either policy.
    DigestPolicy Digest = DigestPolicy::Sha256;
    /// Worker threads for Step-1 hashing on the cold path (PersistDigests
    /// = false, where every submit rehashes the whole stored tree).
    /// 0 or 1 keeps hashing on the serving thread. Warm incremental
    /// rehashes are never distributed -- the touched paths are too small.
    unsigned Step1Workers = 0;
  };

  /// Which store operation a script listener is observing.
  enum class StoreOp : uint8_t {
    Open,     ///< initializing script, version 0
    Submit,   ///< forward script
    Rollback, ///< the applied inverse script
  };

  /// Out-of-band context delivered with every script notification.
  struct ScriptInfo {
    /// Attribution of the version the script produced. Open/Submit: the
    /// request's author. Rollback: the author of the *target* version
    /// (the one the document rolled back to), never the rollback
    /// request itself -- rollback restores someone else's work, and
    /// provenance must say whose. Empty when unattributed, or when the
    /// target version's record was already evicted from the ring.
    /// Points into store-owned memory; valid only during the call.
    std::string_view Author;
  };

  /// Observes every applied script: the initializing script on open, the
  /// forward script on submit, the inverse script on rollback. Called
  /// under the document's lock, so per-document invocations are totally
  /// ordered; implementations must not call back into the store. Register
  /// all listeners before serving traffic.
  using ScriptListener = std::function<void(DocId, uint64_t Version, StoreOp,
                                            const EditScript &,
                                            const ScriptInfo &)>;

  /// Observes erase(). Called under the shard lock (erase never takes the
  /// document lock), so an erase notification can overtake the script
  /// notification of an in-flight operation on the same document;
  /// consumers that order events must tolerate post-erase stragglers.
  /// Must not call back into the store.
  using EraseListener = std::function<void(DocId)>;

  explicit DocumentStore(const SignatureTable &Sig);
  DocumentStore(const SignatureTable &Sig, Config C);

  const SignatureTable &signatures() const { return Sig; }
  const Config &config() const { return Cfg; }

  void addScriptListener(ScriptListener Listener);
  void addEraseListener(EraseListener Listener);

  /// Creates document \p Doc at version 0 from \p Build; fails if it
  /// already exists. Emits the initializing script. \p Author attributes
  /// version 0 (empty = unattributed).
  StoreResult open(DocId Doc, const TreeBuilder &Build,
                   std::string Author = std::string());

  /// Diffs the current version against the tree \p Build produces and
  /// advances the document to it. The result carries the edit script.
  StoreResult submit(DocId Doc, const TreeBuilder &Build);

  /// submit() with per-call options (deadline fallback).
  StoreResult submit(DocId Doc, const TreeBuilder &Build,
                     const SubmitOptions &Opts);

  /// Undoes the most recent submit by applying its recorded inverse.
  /// Fails with a clean error -- leaving the document untouched at its
  /// current version -- if the history ring is exhausted, distinguishing
  /// "already at the initial version" from "the record was evicted from
  /// the bounded ring".
  StoreResult rollback(DocId Doc);

  /// Verifies the digest-cache invariant for \p Doc: every node of the
  /// stored tree must carry exactly the structural/literal hashes, height,
  /// and size a from-scratch recomputation yields. Returns a description
  /// of the first stale node, or std::nullopt if the cache is coherent.
  /// O(tree) with full rehashing -- a test/debug facility, not a serving
  /// path.
  std::optional<std::string> checkDigests(DocId Doc) const;

  /// Current version and serialized tree of \p Doc.
  DocumentSnapshot snapshot(DocId Doc) const;

  /// One retained history-ring entry, exposed to withDocument visitors.
  /// The script and author pointers are valid only for the duration of
  /// the visit.
  struct HistoryEntry {
    uint64_t Version = 0;
    const EditScript *Script = nullptr;
    /// Author of this version (empty = unattributed).
    const std::string *Author = nullptr;
  };

  /// Runs \p Fn with \p Doc's live tree, version, and history ring
  /// (oldest first) under the document's lock -- the hook the
  /// persistence layer snapshots through, so the captured state is
  /// consistent with the per-document script stream. \p Fn must not call
  /// back into the store. Returns false if the document does not exist.
  bool withDocument(
      DocId Doc,
      const std::function<void(const Tree *, uint64_t Version,
                               const std::vector<HistoryEntry> &)> &Fn) const;

  /// Author of version 0, as recorded at open (or restore). Empty when
  /// the document is absent or version 0 was unattributed.
  std::string openAuthor(DocId Doc) const;

  /// One history-ring entry handed to restore(), oldest first.
  struct RestoreEntry {
    uint64_t Version = 0;
    EditScript Script;
    std::string Author;
  };

  /// Installs a recovered document: \p Build produces the tree (URIs
  /// preserved, as with MTree::toTreePreservingUris) in the document's
  /// fresh context, \p History carries the forward scripts of the
  /// retained ring (oldest first; inverses are recomputed, the ring is
  /// truncated to Config::HistoryCapacity). Unlike open this emits
  /// nothing to listeners -- recovery runs before traffic -- and leaves
  /// the document at \p Version with version 0 attributed to
  /// \p OpenAuthor. Fails if the document already exists.
  StoreResult restore(DocId Doc, uint64_t Version, const TreeBuilder &Build,
                      std::vector<RestoreEntry> History,
                      std::string OpenAuthor = std::string());

  bool contains(DocId Doc) const;

  /// Removes \p Doc; in-flight operations holding the document finish
  /// against the detached document. Returns false if absent.
  bool erase(DocId Doc);

  /// Ids of every live document, in no particular order -- the scrub
  /// walk's worklist. A snapshot: documents opened or erased afterwards
  /// are not reflected.
  std::vector<DocId> listDocuments() const;

  /// Marks \p Doc corrupt: subsequent submits and rollbacks fail with
  /// ErrCode::Quarantined, snapshots carry an integrity warning, and
  /// every other document keeps serving untouched (the blast radius is
  /// exactly one document). Idempotent; the first reason wins. Returns
  /// false if the document does not exist.
  bool quarantine(DocId Doc, std::string Reason);

  /// Lifts \p Doc's quarantine (after a successful repair). Returns
  /// false if the document does not exist.
  bool clearQuarantine(DocId Doc);

  /// The quarantine reason if \p Doc is quarantined, std::nullopt if it
  /// is healthy or absent.
  std::optional<std::string> quarantineInfo(DocId Doc) const;

  /// Test-only fault injection: flips one byte in the cached structure
  /// hash of \p Doc's root -- the in-memory analogue of FaultyIoEnv's
  /// read-path bit flips -- so the next checkDigests() reports the root
  /// stale. Returns false if the document does not exist.
  bool corruptDigestForTest(DocId Doc);

  /// Repairs \p Doc in place from recovered state: \p Build produces the
  /// known-good tree (URIs preserved) in a fresh context, \p History the
  /// forward scripts of the retained ring (oldest first), exactly like
  /// restore() -- but the document must already exist, its old (corrupt)
  /// arena is replaced under the document lock, and a successful swap
  /// clears any quarantine. In-flight readers finish against the old
  /// state; nothing is emitted to listeners. Fails without touching the
  /// document if the builder fails or the document is absent.
  StoreResult repair(DocId Doc, uint64_t Version, const TreeBuilder &Build,
                     std::vector<RestoreEntry> History,
                     std::string OpenAuthor = std::string());

  StoreStats stats() const;

private:
  struct VersionRecord {
    uint64_t Version = 0;
    EditScript Script;
    EditScript Inverse;
    /// Who authored this version (empty = unattributed).
    std::string Author;
  };

  struct Document {
    mutable std::mutex Mu;
    std::unique_ptr<TreeContext> Ctx;
    Tree *Current = nullptr;
    uint64_t Version = 0;
    std::deque<VersionRecord> History;
    /// Author of version 0 (open/restore); rollback to the initial
    /// version re-attributes to this.
    std::string OpenAuthor;
    /// Digest-cache accounting across this document's submits.
    uint64_t NodesRehashed = 0;
    uint64_t NodesDigestCacheSaved = 0;
    /// Set by quarantine(): an integrity check found this document's
    /// state corrupt. Writes are rejected until repair() or
    /// clearQuarantine() lifts it; reads carry QuarantineReason.
    bool Quarantined = false;
    std::string QuarantineReason;
  };

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<DocId, std::shared_ptr<Document>> Docs;
  };

  Shard &shardFor(DocId Doc) {
    return Shards[static_cast<size_t>(Doc) % Shards.size()];
  }
  const Shard &shardFor(DocId Doc) const {
    return Shards[static_cast<size_t>(Doc) % Shards.size()];
  }

  std::shared_ptr<Document> find(DocId Doc) const;
  void emit(DocId Doc, uint64_t Version, StoreOp Op, const EditScript &Script,
            std::string_view Author) const;

  /// Rebuilds \p D's tree into a fresh context, URIs preserved, if the
  /// arena has outgrown the live tree. Requires D.Mu held.
  void maybeCompact(Document &D) const;

  const SignatureTable &Sig;
  const Config Cfg;
  /// Shared Step-1 hashing pool (null when Step1Workers <= 1). WorkerPool
  /// batches are independent, so concurrent cold submits on different
  /// documents can share it safely.
  std::unique_ptr<WorkerPool> Pool;
  std::vector<Shard> Shards;

  mutable std::mutex ListenersMu;
  std::vector<ScriptListener> Listeners;
  std::vector<EraseListener> EraseListeners;
};

} // namespace service
} // namespace truediff

#endif // TRUEDIFF_SERVICE_DOCUMENTSTORE_H

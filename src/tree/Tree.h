//===- tree/Tree.h - Mutable typed trees with hashes ------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Diffable tree representation of the paper (Sections 4 and 5): a
/// mutable, typed tree whose nodes carry
///   - a URI and constructor tag,
///   - children and literals in signature order,
///   - cached SHA-256 structure and literal hashes (Section 4.1),
///   - cached height and size, and
///   - the diffing state (share and assignment) of Sections 4.2-4.3.
///
/// Nodes are owned by a TreeContext arena. truediff moves nodes between the
/// source and the patched tree, so nodes cannot belong to a single tree
/// object; the arena is the C++ realisation of the paper's "mutable, yet
/// linearly typed resources".
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TREE_TREE_H
#define TRUEDIFF_TREE_TREE_H

#include "support/Digest.h"
#include "support/Literal.h"
#include "support/TreeHash.h"
#include "tree/Ids.h"
#include "tree/Limits.h"
#include "tree/Signature.h"

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace truediff {

class SubtreeShare;
class TreeContext;
class WorkerPool;

namespace detail {

/// Small-buffer LIFO work stack for the hot-path traversals: the first 64
/// entries live in the object (on the caller's stack), deeper traversals
/// spill to the heap. Pop order is proper LIFO across the spill boundary
/// because entries only spill while the small buffer is full.
template <typename T> class TraversalStack {
public:
  void push(T V) {
    if (N < SmallSize)
      Small[N++] = V;
    else
      Spill.push_back(V);
  }

  T pop() {
    if (!Spill.empty()) {
      T V = Spill.back();
      Spill.pop_back();
      return V;
    }
    return Small[--N];
  }

  bool empty() const { return N == 0 && Spill.empty(); }

private:
  static constexpr size_t SmallSize = 64;
  T Small[SmallSize];
  size_t N = 0;
  std::vector<T> Spill;
};

} // namespace detail

/// A mutable typed tree node. Children and literals are stored in the
/// order fixed by the tag's signature, so link lookups are array accesses.
class Tree {
public:
  /// \name Identity and structure
  /// @{
  TagId tag() const { return Tag; }
  URI uri() const { return Uri; }

  size_t arity() const { return Kids.size(); }
  Tree *kid(size_t I) const { return Kids[I]; }
  void setKid(size_t I, Tree *New) { Kids[I] = New; }

  size_t numLits() const { return Lits.size(); }
  const Literal &lit(size_t I) const { return Lits[I]; }
  const std::vector<Literal> &lits() const { return Lits; }
  void setLits(std::vector<Literal> New) { Lits = std::move(New); }
  /// @}

  /// \name Cached derived data (valid after TreeContext::make or
  /// refreshDerived)
  /// @{

  /// Hash of the tree's shape: tag and kid structure hashes, ignoring
  /// literals. Trees with equal structure hashes are *structurally
  /// equivalent* reuse candidates (Section 4.1).
  const Digest &structureHash() const { return StructHash; }

  /// Hash of the tree's literals, ignoring tags. Among structurally
  /// equivalent candidates, trees with equal literal hashes are *preferred*
  /// (exact copies).
  const Digest &literalHash() const { return LitHash; }

  /// Height of the tree; a leaf has height 1. Drives the highest-first
  /// traversal of Section 4.3.
  uint32_t height() const { return Height; }

  /// Number of nodes in the tree.
  uint64_t size() const { return Size; }

  /// True iff this and \p Other are structurally AND literally equivalent,
  /// i.e. equal up to URIs.
  bool equalsModuloUris(const Tree &Other) const {
    return StructHash == Other.StructHash && LitHash == Other.LitHash;
  }
  /// @}

  /// \name Diffing state (Sections 4.2-4.3)
  /// @{
  SubtreeShare *share() const { return Share; }
  void setShare(SubtreeShare *S) { Share = S; }

  /// True while this node is registered as an available resource in its
  /// share. Stored in the node rather than a per-share hash set so that
  /// availability checks on the Step-3 hot path are one flag load instead
  /// of a hash lookup (see SubtreeShare).
  bool shareAvailable() const { return ShareAvailable; }
  void setShareAvailable(bool A) { ShareAvailable = A; }

  Tree *assigned() const { return Assigned; }

  /// True if an ancestor of this (target) node was acquired as a whole in
  /// Step 3, so this node must not acquire a source tree of its own.
  bool covered() const { return Covered; }
  void setCovered(bool C) { Covered = C; }

  /// Symmetrically assigns this tree and \p That to each other.
  void assignTree(Tree *That) {
    Assigned = That;
    That->Assigned = this;
  }

  /// Symmetrically clears the assignment of this tree (and its partner).
  void unassignTree() {
    if (Assigned != nullptr) {
      Assigned->Assigned = nullptr;
      Assigned = nullptr;
    }
  }
  /// @}

  /// \name Traversals
  /// @{

  /// Applies \p Fn to this node and every descendant, pre-order. Inlined
  /// template: these traversals sit on truediff's hot path. Iterative with
  /// an explicit stack -- a depth-MaxDepth chain that admission accepted
  /// must not overflow the call stack.
  template <typename Fn> void foreachTree(Fn &&F) {
    detail::TraversalStack<Tree *> Stack;
    Stack.push(this);
    drainPreorder(Stack, F);
  }

  /// Applies \p Fn to every proper descendant, pre-order.
  template <typename Fn> void foreachSubtree(Fn &&F) {
    detail::TraversalStack<Tree *> Stack;
    for (size_t I = Kids.size(); I != 0; --I)
      if (Kids[I - 1] != nullptr)
        Stack.push(Kids[I - 1]);
    drainPreorder(Stack, F);
  }

  /// Pre-order traversal with pruning: \p Fn returns true to descend into
  /// a node's kids, false to skip the subtree. Used by the parallel
  /// refresh to split off chunk roots.
  template <typename Fn> void foreachTreePruned(Fn &&F) {
    detail::TraversalStack<Tree *> Stack;
    Stack.push(this);
    while (!Stack.empty()) {
      Tree *T = Stack.pop();
      if (!F(T))
        continue;
      for (size_t I = T->Kids.size(); I != 0; --I)
        if (T->Kids[I - 1] != nullptr)
          Stack.push(T->Kids[I - 1]);
    }
  }
  /// @}

  /// \name Diff-session marks (used by TrueDiff::takeTree)
  /// @{
  uint32_t mark() const { return Mark; }
  void setMark(uint32_t M) { Mark = M; }
  /// @}

  /// \name Derived-data dirtiness (the Step-1 digest cache)
  ///
  /// A node is *derived-dirty* when its cached hashes, height, or size may
  /// be stale, or when some descendant's may be. TrueDiff marks the
  /// root-to-edit paths it touches in Step 4; rehashDirtyPaths then
  /// recomputes exactly those paths, so the unchanged bulk of a persisted
  /// tree keeps its digests across diffing rounds (see
  /// DocumentStore's digest cache).
  /// @{
  bool derivedDirty() const { return DerivedDirty; }
  void markDerivedDirty() { DerivedDirty = true; }

  /// Recomputes derived data along dirty paths only, clearing the flags;
  /// clean subtrees are not even visited. Returns the number of nodes
  /// rehashed. Requires the dirtiness invariant above (every node with a
  /// stale descendant is itself marked), which TrueDiff maintains.
  /// \p Policy must be the digest policy of the owning context.
  uint64_t rehashDirtyPaths(const SignatureTable &Sig, DigestPolicy Policy);
  /// @}

  /// Recomputes hashes, height, and size of this node and every
  /// descendant (and clears derived-dirty flags). Called on the patched
  /// tree after diffing, because reused nodes may have received new
  /// children or literals. \p Policy must be the digest policy of the
  /// owning context.
  void refreshDerived(const SignatureTable &Sig, DigestPolicy Policy);

  /// refreshDerived with Step-1 hashing fanned out over \p Pool: the tree
  /// is partitioned into subtree chunks hashed in parallel, then the spine
  /// above the chunks is recomputed serially (kids before parents).
  /// Produces exactly the digests of the serial refresh.
  void refreshDerivedParallel(const SignatureTable &Sig, DigestPolicy Policy,
                              WorkerPool &Pool);

  /// Clears share and assignment pointers in the whole tree.
  void clearDiffState();

private:
  friend class TreeContext;

  Tree() = default;

  /// Pops and visits nodes preorder until \p Stack drains.
  template <typename Fn>
  static void drainPreorder(detail::TraversalStack<Tree *> &Stack, Fn &&F) {
    while (!Stack.empty()) {
      Tree *T = Stack.pop();
      F(T);
      for (size_t I = T->Kids.size(); I != 0; --I)
        if (T->Kids[I - 1] != nullptr)
          Stack.push(T->Kids[I - 1]);
    }
  }

  /// Recomputes this node's caches from its (already consistent) kids.
  void computeDerived(const SignatureTable &Sig, DigestPolicy Policy);

  TagId Tag = InvalidSymbol;
  URI Uri = NullURI;
  std::vector<Tree *> Kids;
  std::vector<Literal> Lits;

  Digest StructHash;
  Digest LitHash;
  uint32_t Height = 0;
  uint64_t Size = 0;

  SubtreeShare *Share = nullptr;
  Tree *Assigned = nullptr;
  bool Covered = false;
  bool DerivedDirty = false;
  bool ShareAvailable = false;
  uint32_t Mark = 0;
};

/// Arena that owns every node of a diffing session and hands out fresh
/// URIs. Source and target trees of one diff must come from the same
/// context so URIs are globally unique (the paper's uniqueness-of-URIs
/// requirement).
class TreeContext {
public:
  /// \p Policy selects the hash computing node digests (TreeHash.h).
  /// SHA-256 is the default; Fast128 trades adversarial collision
  /// resistance for diff throughput and must not be used where digests
  /// are compared across processes (replication verification).
  explicit TreeContext(const SignatureTable &Sig,
                       DigestPolicy Policy = DigestPolicy::Sha256)
      : Sig(Sig), Policy(Policy) {}
  ~TreeContext();

  TreeContext(const TreeContext &) = delete;
  TreeContext &operator=(const TreeContext &) = delete;

  /// \name Memory-budget accounting
  ///
  /// When a budget is attached, every node allocation charges an estimate
  /// of its heap footprint against it, and the whole charge is released
  /// when the context is destroyed. Attach before allocating any nodes;
  /// nodes made earlier are not accounted retroactively.
  /// @{
  void attachBudget(MemoryBudget *B) { Budget = B; }
  MemoryBudget *budget() const { return Budget; }

  /// True when an attached budget is exhausted. Parsers poll this at each
  /// allocation and abandon the parse with ParseFail::OverBudget, so a
  /// request that would blow the budget is refused instead of OOM-killing
  /// the process.
  bool overBudget() const { return Budget != nullptr && Budget->over(); }

  /// Bytes this context has charged against its budget so far.
  size_t bytesCharged() const { return BytesCharged; }
  /// @}

  const SignatureTable &signatures() const { return Sig; }

  /// The digest policy every node of this arena is hashed with. Trees of
  /// one diff live in one context, so source and target digests are
  /// always comparable.
  DigestPolicy digestPolicy() const { return Policy; }

  /// Creates a node with the given tag, children, and literals, assigning
  /// a fresh URI and computing all derived data. Asserts that children and
  /// literals match the tag's signature (arity, sorts, literal kinds).
  Tree *make(TagId Tag, std::vector<Tree *> Kids, std::vector<Literal> Lits);

  /// Same, with the tag given by name.
  Tree *make(std::string_view TagName, std::vector<Tree *> Kids,
             std::vector<Literal> Lits);

  /// Creates a node with a caller-chosen URI (used by edit-script replay
  /// and by tests). Asserts the URI has not been used by this context.
  Tree *makeWithUri(TagId Tag, URI Uri, std::vector<Tree *> Kids,
                    std::vector<Literal> Lits);

  /// Like makeWithUri, but without the monotonicity requirement: the
  /// caller guarantees \p Uri is not carried by any live node of this
  /// context. The next fresh URI is bumped past \p Uri, so later make()
  /// calls stay unique. Used by MTree::toTreePreservingUris to rebuild
  /// rolled-back documents whose historical URIs are out of allocation
  /// order.
  Tree *adoptWithUri(TagId Tag, URI Uri, std::vector<Tree *> Kids,
                     std::vector<Literal> Lits);

  /// Deep-copies \p T into this context with fresh URIs. Used by the
  /// benchmarks to rebuild trees so hashing time is measured (Section 6).
  Tree *deepCopy(const Tree *T);

  /// Checks the whole tree against the signatures; returns an error
  /// message or std::nullopt if well-typed. Construction already asserts
  /// this, so the function exists for tests and external input.
  std::optional<std::string> validate(const Tree *T) const;

  /// Test-only fault injection: flips one byte of \p T's cached
  /// structure hash, simulating a silent in-memory corruption (bit rot,
  /// stray write) that verification against a from-scratch rebuild must
  /// catch. Lives on TreeContext because it is the class entrusted with
  /// the derived-data invariant this deliberately breaks.
  static void corruptDerivedForTest(Tree *T);

  /// Next URI that will be handed out; also used by truediff to allocate
  /// URIs for loaded nodes.
  URI peekNextUri() const { return NextUri; }

  /// Number of nodes allocated so far.
  size_t numNodes() const { return Nodes.size(); }

private:
  const SignatureTable &Sig;
  DigestPolicy Policy = DigestPolicy::Sha256;
  std::deque<Tree> Nodes;
  URI NextUri = 1;
  MemoryBudget *Budget = nullptr;
  size_t BytesCharged = 0;
};

/// True iff \p A and \p B have identical shapes, tags, and literals,
/// ignoring URIs. Unlike Tree::equalsModuloUris this walks the trees, so it
/// is usable in tests that deliberately corrupt cached hashes.
bool treeEqualsModuloUris(const Tree *A, const Tree *B);

} // namespace truediff

#endif // TRUEDIFF_TREE_TREE_H

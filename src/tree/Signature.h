//===- tree/Signature.h - Tag signatures and subtyping ----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The signature environment Sigma of the paper (Section 3.3):
///
///   Sigma ::= e | Sigma, tag : sig
///   sig   ::= (<x1:T1, ..., xm:Tm>, <y1:B1, ..., yn:Bn>) -> T
///
/// Each tag has named child links with sorts, named literal links with base
/// types, and a result sort. The table also maintains the subsort relation
/// used by the T <: T' premises of the truechange type system. RootTag with
/// signature (<RootLink : Any>, <>) -> Root is pre-defined.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TREE_SIGNATURE_H
#define TRUEDIFF_TREE_SIGNATURE_H

#include "support/Interner.h"
#include "support/Literal.h"
#include "tree/Ids.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace truediff {

/// One child link x_i : T_i of a tag signature.
struct KidSpec {
  LinkId Link;
  SortId Sort;
};

/// One literal link y_j : B_j of a tag signature.
struct LitSpec {
  LinkId Link;
  LitKind Kind;
};

/// The signature of one constructor tag.
struct TagSignature {
  TagId Tag = InvalidSymbol;
  SortId Result = InvalidSymbol;
  std::vector<KidSpec> Kids;
  std::vector<LitSpec> Lits;

  /// Returns the index of child link \p Link or -1 if absent.
  int kidIndex(LinkId Link) const;

  /// Returns the index of literal link \p Link or -1 if absent.
  int litIndex(LinkId Link) const;
};

/// The signature environment Sigma: interns tags/links/sorts, stores tag
/// signatures, and answers subsort queries.
///
/// A SignatureTable is built once per language (expressions, Python, ...)
/// and shared by all trees and edit scripts of that language.
class SignatureTable {
public:
  SignatureTable();

  /// \name Sorts and subtyping
  /// @{

  /// Interns (and implicitly declares) sort \p Name.
  SortId sort(std::string_view Name);

  /// Declares Sub <: Super (in addition to reflexivity and T <: Any).
  void declareSubsort(SortId Sub, SortId Super);

  /// Declares Sub <: Super by name.
  void declareSubsort(std::string_view Sub, std::string_view Super) {
    declareSubsort(sort(Sub), sort(Super));
  }

  /// Reflexive-transitive subsort check with Any as top.
  bool isSubsort(SortId Sub, SortId Super) const;

  /// The top sort Any; every sort is a subsort of Any.
  SortId anySort() const { return Any; }

  /// The sort of the pre-defined root node.
  SortId rootSort() const { return Root; }
  /// @}

  /// \name Tags
  /// @{

  /// Defines a tag. Kid and literal links are given as (name, sort-name)
  /// and (name, kind) pairs. Asserts the tag was not defined before.
  TagId defineTag(std::string_view Name, std::string_view ResultSort,
                  std::vector<std::pair<std::string, std::string>> Kids,
                  std::vector<std::pair<std::string, LitKind>> Lits);

  /// Returns the signature of \p Tag; asserts it exists.
  const TagSignature &signature(TagId Tag) const;

  /// True if \p Tag has a signature.
  bool hasTag(TagId Tag) const { return Tags.count(Tag) != 0; }

  /// The pre-defined RootTag with signature (<RootLink:Any>, <>) -> Root.
  TagId rootTag() const { return RootTagId; }

  /// The single link of RootTag.
  LinkId rootLink() const { return RootLinkId; }

  /// All tags whose result sort is a subsort of \p Sort, in definition
  /// order; used by random tree generators.
  std::vector<TagId> tagsOfSort(SortId Sort) const;
  /// @}

  /// \name Symbol access
  /// @{
  Symbol intern(std::string_view Name) { return Symbols.intern(Name); }
  Symbol lookup(std::string_view Name) const { return Symbols.lookup(Name); }
  const std::string &name(Symbol Sym) const { return Symbols.name(Sym); }

  /// Interns a tag name; asserts nothing about it having a signature.
  TagId tag(std::string_view Name) { return Symbols.intern(Name); }

  /// Interns a link name.
  LinkId link(std::string_view Name) { return Symbols.intern(Name); }
  /// @}

private:
  Interner Symbols;
  SortId Any = InvalidSymbol;
  SortId Root = InvalidSymbol;
  TagId RootTagId = InvalidSymbol;
  LinkId RootLinkId = InvalidSymbol;
  std::unordered_map<TagId, TagSignature> Tags;
  std::vector<TagId> TagOrder;
  /// Direct declared subsort edges Sub -> {Super, ...}.
  std::unordered_map<SortId, std::unordered_set<SortId>> SubsortEdges;
};

} // namespace truediff

#endif // TRUEDIFF_TREE_SIGNATURE_H

//===- tree/SExpr.h - S-expression reader and printer -----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads and prints typed trees as s-expressions, e.g.
///
///   (Add (Num 1) (Call "f" (Num 2)))
///
/// For each tag, the reader expects the children first and then the
/// literals, in signature order, so the syntax is unambiguous without
/// labels. This plays the role of the paper's parser bindings (Section 5):
/// it is the generic way to get external trees into Diffable form.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TREE_SEXPR_H
#define TRUEDIFF_TREE_SEXPR_H

#include "tree/Tree.h"

#include <optional>
#include <string>
#include <string_view>

namespace truediff {

/// Result of parsing: the tree, or an error message with position info
/// plus a typed failure reason (admission caps vs. plain syntax errors).
struct ParseResult {
  Tree *Root = nullptr;
  std::string Error;
  ParseFail Fail = ParseFail::None;

  bool ok() const { return Root != nullptr; }
};

/// Parses \p Text into a tree allocated in \p Ctx. \p Limits caps the
/// nesting depth and node count of the input; the depth check fires on
/// the way down, so hostile deep inputs cannot exhaust the parser's
/// stack. If \p Ctx has a memory budget attached, the parse also aborts
/// with ParseFail::OverBudget once the budget is exhausted.
ParseResult parseSExpr(TreeContext &Ctx, std::string_view Text,
                       const ParseLimits &Limits = {});

/// Prints \p T as a single-line s-expression.
std::string printSExpr(const SignatureTable &Sig, const Tree *T);

/// Prints \p T as an s-expression with URIs as subscripts, e.g.
/// "(Add_1 (Num_2 1) (Num_3 2))"; matches the paper's notation and is used
/// in tests and examples.
std::string printSExprWithUris(const SignatureTable &Sig, const Tree *T);

} // namespace truediff

#endif // TRUEDIFF_TREE_SEXPR_H

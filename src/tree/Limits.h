//===- tree/Limits.h - Resource admission limits ----------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource-admission primitives shared by the parsers and the service
/// layer: parse-time caps on tree depth and node count, a typed reason for
/// why a parse was refused, and a process-wide memory budget that
/// TreeContext arenas account against.
///
/// The paper's complexity guarantee (Thm 4.1: linear-time diffing) only
/// holds for inputs we accept; these types are how the server decides what
/// to accept. Rejection happens *during* parsing -- a hostile input is
/// abandoned as soon as it crosses a cap, long before it can exhaust the
/// C++ stack (depth) or physical memory (nodes / budget).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TREE_LIMITS_H
#define TRUEDIFF_TREE_LIMITS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace truediff {

/// Caps enforced while parsing external input into trees. A zero field
/// means "unlimited". Depth is the parser's nesting depth, which bounds
/// both the resulting tree's height and the parser's own recursion (the
/// depth check fires on the way *down*, so a million-paren input costs at
/// most MaxDepth stack frames).
struct ParseLimits {
  uint32_t MaxNodes = 0; ///< max tree nodes allocated by one parse
  uint32_t MaxDepth = 0; ///< max nesting depth of the input
};

/// Why a parse failed, for typed error propagation. Everything except
/// Syntax is an admission decision: the input may even be well-formed, we
/// just refuse to materialise it.
enum class ParseFail : uint8_t {
  None = 0,   ///< no failure
  Syntax,     ///< malformed input
  TooDeep,    ///< nesting exceeds ParseLimits::MaxDepth
  TooLarge,   ///< node count exceeds ParseLimits::MaxNodes
  OverBudget, ///< process-wide MemoryBudget exhausted
};

/// A process-wide cap on tree-arena memory, shared by every TreeContext
/// the server creates. Charging is non-blocking and never fails -- the
/// budget can overshoot by one node -- but parsers poll over() at each
/// allocation and abandon the parse once the budget is exhausted, so the
/// overshoot is bounded by a single cooperative check interval rather
/// than by the size of a hostile input.
///
/// A limit of zero means "unlimited": accounting still happens (used() is
/// an honest gauge) but over() never fires.
class MemoryBudget {
public:
  explicit MemoryBudget(size_t LimitBytes = 0) : Limit(LimitBytes) {}

  MemoryBudget(const MemoryBudget &) = delete;
  MemoryBudget &operator=(const MemoryBudget &) = delete;

  size_t limit() const { return Limit; }
  size_t used() const { return Used.load(std::memory_order_relaxed); }
  bool over() const { return Limit != 0 && used() >= Limit; }

  void charge(size_t Bytes) {
    Used.fetch_add(Bytes, std::memory_order_relaxed);
  }
  void release(size_t Bytes) {
    Used.fetch_sub(Bytes, std::memory_order_relaxed);
  }

private:
  const size_t Limit;
  std::atomic<size_t> Used{0};
};

} // namespace truediff

#endif // TRUEDIFF_TREE_LIMITS_H

//===- tree/Signature.cpp - Tag signatures and subtyping -------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tree/Signature.h"

#include <cassert>
#include <deque>

using namespace truediff;

int TagSignature::kidIndex(LinkId Link) const {
  for (size_t I = 0, E = Kids.size(); I != E; ++I)
    if (Kids[I].Link == Link)
      return static_cast<int>(I);
  return -1;
}

int TagSignature::litIndex(LinkId Link) const {
  for (size_t I = 0, E = Lits.size(); I != E; ++I)
    if (Lits[I].Link == Link)
      return static_cast<int>(I);
  return -1;
}

SignatureTable::SignatureTable() {
  Any = Symbols.intern("Any");
  Root = Symbols.intern("Root");
  RootLinkId = Symbols.intern("RootLink");
  RootTagId = Symbols.intern("RootTag");

  TagSignature RootSig;
  RootSig.Tag = RootTagId;
  RootSig.Result = Root;
  RootSig.Kids.push_back(KidSpec{RootLinkId, Any});
  Tags.emplace(RootTagId, std::move(RootSig));
  TagOrder.push_back(RootTagId);
}

SortId SignatureTable::sort(std::string_view Name) {
  return Symbols.intern(Name);
}

void SignatureTable::declareSubsort(SortId Sub, SortId Super) {
  assert(Sub != InvalidSymbol && Super != InvalidSymbol);
  SubsortEdges[Sub].insert(Super);
}

bool SignatureTable::isSubsort(SortId Sub, SortId Super) const {
  if (Sub == Super || Super == Any)
    return true;
  // BFS over declared edges; the relation is small (one entry per sort).
  std::deque<SortId> Work{Sub};
  std::unordered_set<SortId> Seen{Sub};
  while (!Work.empty()) {
    SortId Cur = Work.front();
    Work.pop_front();
    auto It = SubsortEdges.find(Cur);
    if (It == SubsortEdges.end())
      continue;
    for (SortId Next : It->second) {
      if (Next == Super)
        return true;
      if (Seen.insert(Next).second)
        Work.push_back(Next);
    }
  }
  return false;
}

TagId SignatureTable::defineTag(
    std::string_view Name, std::string_view ResultSort,
    std::vector<std::pair<std::string, std::string>> Kids,
    std::vector<std::pair<std::string, LitKind>> Lits) {
  TagId Tag = Symbols.intern(Name);
  assert(!Tags.count(Tag) && "tag defined twice");

  TagSignature Sig;
  Sig.Tag = Tag;
  Sig.Result = sort(ResultSort);
  for (auto &[LinkName, SortName] : Kids)
    Sig.Kids.push_back(KidSpec{Symbols.intern(LinkName), sort(SortName)});
  for (auto &[LinkName, Kind] : Lits)
    Sig.Lits.push_back(LitSpec{Symbols.intern(LinkName), Kind});

  Tags.emplace(Tag, std::move(Sig));
  TagOrder.push_back(Tag);
  return Tag;
}

const TagSignature &SignatureTable::signature(TagId Tag) const {
  auto It = Tags.find(Tag);
  assert(It != Tags.end() && "tag has no signature");
  return It->second;
}

std::vector<TagId> SignatureTable::tagsOfSort(SortId Sort) const {
  std::vector<TagId> Result;
  for (TagId Tag : TagOrder) {
    const TagSignature &Sig = Tags.at(Tag);
    if (Tag != RootTagId && isSubsort(Sig.Result, Sort))
      Result.push_back(Tag);
  }
  return Result;
}

//===- tree/SExpr.cpp - S-expression reader and printer --------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tree/SExpr.h"

#include <cctype>
#include <cstdlib>

using namespace truediff;

namespace {

/// Recursive-descent s-expression parser. No exceptions: errors set Err and
/// unwind through nullptr returns.
class SExprParser {
public:
  SExprParser(TreeContext &Ctx, std::string_view Text,
              const ParseLimits &Limits)
      : Ctx(Ctx), Sig(Ctx.signatures()), Text(Text), Limits(Limits) {}

  Tree *parse() {
    Tree *T = parseTree();
    if (T == nullptr)
      return nullptr;
    skipSpace();
    if (Pos != Text.size()) {
      fail("trailing input after s-expression");
      return nullptr;
    }
    return T;
  }

  const std::string &error() const { return Err; }
  ParseFail failKind() const { return Err.empty() ? ParseFail::None : Fail; }

private:
  void skipSpace() {
    while (Pos < Text.size()) {
      if (std::isspace(static_cast<unsigned char>(Text[Pos]))) {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ';') { // comment to end of line
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  void fail(const std::string &Message) {
    if (Err.empty()) {
      Fail = ParseFail::Syntax;
      Err = Message + " at offset " + std::to_string(Pos);
    }
  }

  void failTyped(ParseFail Kind, const std::string &Message) {
    if (Err.empty()) {
      Fail = Kind;
      Err = Message;
    }
  }

  bool expect(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    fail(std::string("expected '") + C + "'");
    return false;
  }

  std::string_view parseSymbol() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '-' || Text[Pos] == '.' ||
            Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      fail("expected symbol");
    return Text.substr(Start, Pos - Start);
  }

  std::optional<Literal> parseLiteral(LitKind Kind) {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("expected literal");
      return std::nullopt;
    }
    switch (Kind) {
    case LitKind::String:
      return parseStringLiteral();
    case LitKind::Bool: {
      std::string_view Sym = parseSymbol();
      if (Sym == "true")
        return Literal(true);
      if (Sym == "false")
        return Literal(false);
      fail("expected 'true' or 'false'");
      return std::nullopt;
    }
    case LitKind::Int: {
      std::string_view Sym = parseSymbol();
      if (Sym.empty())
        return std::nullopt;
      return Literal(static_cast<int64_t>(
          std::strtoll(std::string(Sym).c_str(), nullptr, 10)));
    }
    case LitKind::Float: {
      std::string_view Sym = parseSymbol();
      if (Sym.empty())
        return std::nullopt;
      return Literal(std::strtod(std::string(Sym).c_str(), nullptr));
    }
    }
    fail("unknown literal kind");
    return std::nullopt;
  }

  std::optional<Literal> parseStringLiteral() {
    if (Text[Pos] != '"') {
      fail("expected string literal");
      return std::nullopt;
    }
    ++Pos;
    std::string Value;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if (C == '\\' && Pos + 1 < Text.size()) {
        ++Pos;
        switch (Text[Pos]) {
        case 'n':
          Value.push_back('\n');
          break;
        case 't':
          Value.push_back('\t');
          break;
        default:
          Value.push_back(Text[Pos]);
        }
      } else {
        Value.push_back(C);
      }
      ++Pos;
    }
    if (Pos >= Text.size()) {
      fail("unterminated string literal");
      return std::nullopt;
    }
    ++Pos; // closing quote
    return Literal(std::move(Value));
  }

  Tree *parseTree() {
    // Admission caps fire on the way down: a million-paren hostile input
    // unwinds after MaxDepth stack frames instead of smashing the stack.
    ++Depth;
    if (Limits.MaxDepth != 0 && Depth > Limits.MaxDepth) {
      failTyped(ParseFail::TooDeep, "input nesting exceeds the depth cap of " +
                                        std::to_string(Limits.MaxDepth));
      return nullptr;
    }
    Tree *T = parseTreeBody();
    --Depth;
    return T;
  }

  Tree *parseTreeBody() {
    if (!expect('('))
      return nullptr;
    std::string_view TagName = parseSymbol();
    if (!Err.empty())
      return nullptr;
    Symbol Tag = Sig.lookup(TagName);
    if (Tag == InvalidSymbol || !Sig.hasTag(Tag)) {
      fail("unknown tag '" + std::string(TagName) + "'");
      return nullptr;
    }
    const TagSignature &TagSig = Sig.signature(Tag);

    std::vector<Tree *> Kids;
    Kids.reserve(TagSig.Kids.size());
    for (size_t I = 0, E = TagSig.Kids.size(); I != E; ++I) {
      Tree *Kid = parseTree();
      if (Kid == nullptr)
        return nullptr;
      SortId KidSort = Sig.signature(Kid->tag()).Result;
      if (!Sig.isSubsort(KidSort, TagSig.Kids[I].Sort)) {
        fail("kid sort mismatch under '" + std::string(TagName) + "'");
        return nullptr;
      }
      Kids.push_back(Kid);
    }

    std::vector<Literal> Lits;
    Lits.reserve(TagSig.Lits.size());
    for (size_t I = 0, E = TagSig.Lits.size(); I != E; ++I) {
      std::optional<Literal> Lit = parseLiteral(TagSig.Lits[I].Kind);
      if (!Lit)
        return nullptr;
      Lits.push_back(std::move(*Lit));
    }

    if (!expect(')'))
      return nullptr;
    if (Limits.MaxNodes != 0 && NodesMade >= Limits.MaxNodes) {
      failTyped(ParseFail::TooLarge, "input exceeds the node cap of " +
                                         std::to_string(Limits.MaxNodes) +
                                         " nodes");
      return nullptr;
    }
    if (Ctx.overBudget()) {
      failTyped(ParseFail::OverBudget,
                "memory budget exhausted while parsing input");
      return nullptr;
    }
    ++NodesMade;
    return Ctx.make(Tag, std::move(Kids), std::move(Lits));
  }

  TreeContext &Ctx;
  const SignatureTable &Sig;
  std::string_view Text;
  ParseLimits Limits;
  size_t Pos = 0;
  uint32_t Depth = 0;
  uint32_t NodesMade = 0;
  std::string Err;
  ParseFail Fail = ParseFail::None;
};

void printRec(const SignatureTable &Sig, const Tree *T, bool WithUris,
              std::string &Out) {
  Out.push_back('(');
  Out += Sig.name(T->tag());
  if (WithUris) {
    Out.push_back('_');
    Out += std::to_string(T->uri());
  }
  for (size_t I = 0, E = T->arity(); I != E; ++I) {
    Out.push_back(' ');
    if (T->kid(I) == nullptr)
      Out += "<hole>";
    else
      printRec(Sig, T->kid(I), WithUris, Out);
  }
  for (size_t I = 0, E = T->numLits(); I != E; ++I) {
    Out.push_back(' ');
    Out += T->lit(I).toString();
  }
  Out.push_back(')');
}

} // namespace

ParseResult truediff::parseSExpr(TreeContext &Ctx, std::string_view Text,
                                 const ParseLimits &Limits) {
  SExprParser Parser(Ctx, Text, Limits);
  ParseResult Result;
  Result.Root = Parser.parse();
  if (Result.Root == nullptr) {
    Result.Error = Parser.error();
    Result.Fail = Parser.failKind();
  }
  return Result;
}

std::string truediff::printSExpr(const SignatureTable &Sig, const Tree *T) {
  std::string Out;
  printRec(Sig, T, /*WithUris=*/false, Out);
  return Out;
}

std::string truediff::printSExprWithUris(const SignatureTable &Sig,
                                         const Tree *T) {
  std::string Out;
  printRec(Sig, T, /*WithUris=*/true, Out);
  return Out;
}

//===- tree/Tree.cpp - Mutable typed trees with hashes ---------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tree/Tree.h"

#include "support/Sha256.h"

#include <algorithm>
#include <cassert>

using namespace truediff;

void Tree::computeDerived(const SignatureTable &Sig) {
  // Kid digests contribute their first 16 bytes only. This keeps the
  // common binary-node input within one SHA-256 block (a 2x speedup on
  // Step 1) while retaining cryptographic collision resistance: a
  // collision would still require a 2^64 birthday attack on truncated
  // SHA-256, which the paper's "hash equality is tree equality" reading
  // already accepts.
  constexpr size_t KidDigestBytes = 16;

  // Structure hash: tag + arity + kid structure hashes (Section 4.1).
  Sha256 StructHasher;
  StructHasher.updateU32(Tag);
  StructHasher.updateU32(static_cast<uint32_t>(Kids.size()));
  for (const Tree *Kid : Kids) {
    assert(Kid != nullptr && "derived data requires complete trees");
    StructHasher.update(Kid->StructHash.bytes().data(), KidDigestBytes);
  }
  StructHash = StructHasher.finish();

  // Literal hash: own literals + kid literal hashes, tag NOT included.
  Sha256 LitHasher;
  LitHasher.updateU32(static_cast<uint32_t>(Lits.size()));
  for (const Literal &L : Lits)
    L.addToHash(LitHasher);
  for (const Tree *Kid : Kids)
    LitHasher.update(Kid->LitHash.bytes().data(), KidDigestBytes);
  LitHash = LitHasher.finish();

  Height = 1;
  Size = 1;
  for (const Tree *Kid : Kids) {
    Height = std::max(Height, Kid->Height + 1);
    Size += Kid->Size;
  }
  (void)Sig;
}

void Tree::refreshDerived(const SignatureTable &Sig) {
  for (Tree *Kid : Kids)
    Kid->refreshDerived(Sig);
  computeDerived(Sig);
  DerivedDirty = false;
}

uint64_t Tree::rehashDirtyPaths(const SignatureTable &Sig) {
  if (!DerivedDirty)
    return 0;
  uint64_t Rehashed = 1;
  for (Tree *Kid : Kids)
    Rehashed += Kid->rehashDirtyPaths(Sig);
  computeDerived(Sig);
  DerivedDirty = false;
  return Rehashed;
}

void Tree::clearDiffState() {
  foreachTree([](Tree *T) {
    T->Share = nullptr;
    T->Assigned = nullptr;
    T->Covered = false;
    T->Mark = 0;
  });
}

static void assertMatchesSignature(const SignatureTable &Sig, TagId Tag,
                                   const std::vector<Tree *> &Kids,
                                   const std::vector<Literal> &Lits) {
#ifndef NDEBUG
  const TagSignature &TagSig = Sig.signature(Tag);
  assert(Kids.size() == TagSig.Kids.size() && "kid arity mismatch");
  assert(Lits.size() == TagSig.Lits.size() && "literal arity mismatch");
  for (size_t I = 0, E = Kids.size(); I != E; ++I) {
    assert(Kids[I] != nullptr && "kids of constructed nodes must be present");
    SortId KidSort = Sig.signature(Kids[I]->tag()).Result;
    assert(Sig.isSubsort(KidSort, TagSig.Kids[I].Sort) &&
           "kid sort does not match signature");
  }
  for (size_t I = 0, E = Lits.size(); I != E; ++I)
    assert(Lits[I].kind() == TagSig.Lits[I].Kind &&
           "literal kind does not match signature");
#else
  (void)Sig;
  (void)Tag;
  (void)Kids;
  (void)Lits;
#endif
}

Tree *TreeContext::make(TagId Tag, std::vector<Tree *> Kids,
                        std::vector<Literal> Lits) {
  return makeWithUri(Tag, NextUri, std::move(Kids), std::move(Lits));
}

Tree *TreeContext::make(std::string_view TagName, std::vector<Tree *> Kids,
                        std::vector<Literal> Lits) {
  Symbol Tag = Sig.lookup(TagName);
  assert(Tag != InvalidSymbol && "unknown tag name");
  return make(Tag, std::move(Kids), std::move(Lits));
}

Tree *TreeContext::makeWithUri(TagId Tag, URI Uri, std::vector<Tree *> Kids,
                               std::vector<Literal> Lits) {
  assert(Uri >= NextUri && "URI already used in this context");
  return adoptWithUri(Tag, Uri, std::move(Kids), std::move(Lits));
}

/// Estimate of a node's heap footprint for memory-budget accounting: the
/// node itself, its kid-pointer and literal arrays, and the heap payload
/// of string literals. An estimate is enough -- the budget guards against
/// order-of-magnitude blowups, not byte-exact ceilings.
static size_t approxNodeBytes(const Tree &N) {
  size_t Bytes = sizeof(Tree) + N.arity() * sizeof(Tree *) +
                 N.numLits() * sizeof(Literal);
  for (size_t I = 0, E = N.numLits(); I != E; ++I) {
    const Literal &L = N.lit(I);
    if (L.kind() == LitKind::String)
      Bytes += L.asString().capacity();
  }
  return Bytes;
}

TreeContext::~TreeContext() {
  if (Budget != nullptr)
    Budget->release(BytesCharged);
}

Tree *TreeContext::adoptWithUri(TagId Tag, URI Uri, std::vector<Tree *> Kids,
                                std::vector<Literal> Lits) {
  assertMatchesSignature(Sig, Tag, Kids, Lits);

  Nodes.emplace_back(Tree());
  Tree *Node = &Nodes.back();
  Node->Tag = Tag;
  Node->Uri = Uri;
  Node->Kids = std::move(Kids);
  Node->Lits = std::move(Lits);
  Node->computeDerived(Sig);
  NextUri = std::max(NextUri, Uri + 1);
  if (Budget != nullptr) {
    // All make/makeWithUri variants funnel through here, so this is the
    // single accounting point for the arena.
    size_t Bytes = approxNodeBytes(*Node);
    Budget->charge(Bytes);
    BytesCharged += Bytes;
  }
  return Node;
}

Tree *TreeContext::deepCopy(const Tree *T) {
  std::vector<Tree *> Kids;
  Kids.reserve(T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    Kids.push_back(deepCopy(T->kid(I)));
  return make(T->tag(), std::move(Kids), T->lits());
}

std::optional<std::string> TreeContext::validate(const Tree *T) const {
  if (!Sig.hasTag(T->tag()))
    return "unknown tag: " + Sig.name(T->tag());
  const TagSignature &TagSig = Sig.signature(T->tag());
  if (T->arity() != TagSig.Kids.size())
    return "kid arity mismatch at " + Sig.name(T->tag());
  if (T->numLits() != TagSig.Lits.size())
    return "literal arity mismatch at " + Sig.name(T->tag());
  for (size_t I = 0, E = T->arity(); I != E; ++I) {
    const Tree *Kid = T->kid(I);
    if (Kid == nullptr)
      return "empty slot in completed tree at " + Sig.name(T->tag());
    SortId KidSort = Sig.signature(Kid->tag()).Result;
    if (!Sig.isSubsort(KidSort, TagSig.Kids[I].Sort))
      return "kid sort mismatch at " + Sig.name(T->tag()) + "." +
             Sig.name(TagSig.Kids[I].Link);
    if (auto Err = validate(Kid))
      return Err;
  }
  for (size_t I = 0, E = T->numLits(); I != E; ++I)
    if (T->lit(I).kind() != TagSig.Lits[I].Kind)
      return "literal kind mismatch at " + Sig.name(T->tag()) + "." +
             Sig.name(TagSig.Lits[I].Link);
  return std::nullopt;
}

bool truediff::treeEqualsModuloUris(const Tree *A, const Tree *B) {
  if (A->tag() != B->tag() || A->arity() != B->arity() ||
      A->numLits() != B->numLits())
    return false;
  for (size_t I = 0, E = A->numLits(); I != E; ++I)
    if (A->lit(I) != B->lit(I))
      return false;
  for (size_t I = 0, E = A->arity(); I != E; ++I)
    if (!treeEqualsModuloUris(A->kid(I), B->kid(I)))
      return false;
  return true;
}

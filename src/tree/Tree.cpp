//===- tree/Tree.cpp - Mutable typed trees with hashes ---------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tree/Tree.h"

#include "support/Sha256.h"
#include "support/TreeHash.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cassert>

using namespace truediff;

/// Kid digests contribute their first 16 bytes only. This keeps the
/// common binary-node input within one SHA-256 block (a 2x speedup on
/// Step 1) while retaining cryptographic collision resistance: a
/// collision would still require a 2^64 birthday attack on truncated
/// SHA-256, which the paper's "hash equality is tree equality" reading
/// already accepts. The Fast128 policy emits 16-byte digests natively, so
/// both policies feed exactly KidDigestBytes per kid.
static constexpr size_t KidDigestBytes = 16;

namespace {

/// The node-digest computation, shared by both digest policies.
template <typename HasherT>
void hashNode(TagId Tag, const std::vector<Tree *> &Kids,
              const std::vector<Literal> &Lits, Digest &StructOut,
              Digest &LitOut) {
  // Structure hash: tag + arity + kid structure hashes (Section 4.1).
  HasherT StructHasher;
  StructHasher.updateU32(Tag);
  StructHasher.updateU32(static_cast<uint32_t>(Kids.size()));
  for (const Tree *Kid : Kids) {
    assert(Kid != nullptr && "derived data requires complete trees");
    StructHasher.update(Kid->structureHash().bytes().data(), KidDigestBytes);
  }
  StructOut = StructHasher.finish();

  // Literal hash: own literals + kid literal hashes, tag NOT included.
  HasherT LitHasher;
  LitHasher.updateU32(static_cast<uint32_t>(Lits.size()));
  for (const Literal &L : Lits)
    L.addToHash(LitHasher);
  for (const Tree *Kid : Kids)
    LitHasher.update(Kid->literalHash().bytes().data(), KidDigestBytes);
  LitOut = LitHasher.finish();
}

//===----------------------------------------------------------------------===//
// Fast-policy node digests
//===----------------------------------------------------------------------===//

/// Two-lane mum-chain accumulator for the fast digest policy. The generic
/// hashNode<Fast128> path pays a buffer memcpy per update call and a block
/// compress per finish, which dominates Step 1 on typical nodes whose whole
/// input is a few dozen bytes; this folds the same fields directly into the
/// chain. Values differ from streaming Fast128 output, which is fine: fast
/// digests are per-process and never persisted or shipped (TreeHash.h), and
/// every rehash in a process funnels through computeDerived, so digest
/// equality still means subtree equality.
struct FastAcc {
  uint64_t A, B;
  uint64_t N = 0;

  FastAcc(uint64_t SeedA, uint64_t SeedB) : A(SeedA), B(SeedB) {}

  /// Chains one 16-byte unit; order-sensitive (A feeds B, N rotates the
  /// secret schedule and armours the unit count).
  void fold(uint64_t W0, uint64_t W1) {
    using namespace fast128_detail;
    A = mum(A ^ W0, Secret[N & 3] ^ W1);
    B = mum(B ^ W1, A ^ Secret[(N + 1) & 3]);
    ++N;
  }

  /// Folds an arbitrary byte range in 16-byte units, zero-padding the tail
  /// (callers fold the length separately, so padded tails stay distinct).
  void foldBytes(const void *Data, size_t Size) {
    using fast128_detail::read64;
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    while (Size >= 16) {
      fold(read64(P), read64(P + 8));
      P += 16;
      Size -= 16;
    }
    if (Size != 0) {
      uint8_t Tail[16] = {};
      std::memcpy(Tail, P, Size);
      fold(read64(Tail), read64(Tail + 8));
    }
  }

  Digest finish() const {
    using namespace fast128_detail;
    uint64_t H0 = mum(A ^ N, Secret[0] ^ B);
    uint64_t H1 = splitmix64(H0 ^ B);
    std::array<uint8_t, Digest::NumBytes> Bytes{};
    std::memcpy(Bytes.data(), &H0, sizeof(H0));
    std::memcpy(Bytes.data() + sizeof(H0), &H1, sizeof(H1));
    return Digest(Bytes);
  }
};

/// The Fast128-policy analogue of hashNode: same fields in the same roles
/// (structure hash never sees literals), both digests built in a single
/// pass over the kids so each kid's digest cache lines are touched once.
void hashNodeFast(TagId Tag, const std::vector<Tree *> &Kids,
                  const std::vector<Literal> &Lits, Digest &StructOut,
                  Digest &LitOut) {
  const std::array<uint64_t, 4> &Seeds = fast128SeededLanes();
  FastAcc S(Seeds[0], Seeds[1]);
  FastAcc L(Seeds[2], Seeds[3]);
  S.fold(Tag, Kids.size());
  L.fold(Lits.size(), 0x4C495453ULL /* "LITS" */);
  for (const Literal &Lit : Lits) {
    switch (Lit.kind()) {
    case LitKind::Int:
      L.fold(static_cast<uint64_t>(LitKind::Int),
             static_cast<uint64_t>(Lit.asInt()));
      break;
    case LitKind::Float: {
      double V = Lit.asFloat();
      uint64_t Bits;
      std::memcpy(&Bits, &V, sizeof(Bits));
      L.fold(static_cast<uint64_t>(LitKind::Float), Bits);
      break;
    }
    case LitKind::Bool:
      L.fold(static_cast<uint64_t>(LitKind::Bool), Lit.asBool() ? 1 : 0);
      break;
    case LitKind::String: {
      const std::string &Str = Lit.asString();
      L.fold(static_cast<uint64_t>(LitKind::String), Str.size());
      L.foldBytes(Str.data(), Str.size());
      break;
    }
    }
  }
  for (const Tree *Kid : Kids) {
    assert(Kid != nullptr && "derived data requires complete trees");
    S.fold(Kid->structureHash().word(0), Kid->structureHash().word(1));
    L.fold(Kid->literalHash().word(0), Kid->literalHash().word(1));
  }
  StructOut = S.finish();
  LitOut = L.finish();
}

} // namespace

void Tree::computeDerived(const SignatureTable &Sig, DigestPolicy Policy) {
  switch (Policy) {
  case DigestPolicy::Sha256:
    hashNode<Sha256>(Tag, Kids, Lits, StructHash, LitHash);
    break;
  case DigestPolicy::Fast128:
    hashNodeFast(Tag, Kids, Lits, StructHash, LitHash);
    break;
  }

  Height = 1;
  Size = 1;
  for (const Tree *Kid : Kids) {
    Height = std::max(Height, Kid->Height + 1);
    Size += Kid->Size;
  }
  (void)Sig;
}

namespace {

/// Post-order frame: NextKid counts how many kids have been pushed so far.
struct PostorderFrame {
  Tree *Node;
  size_t NextKid;
};

} // namespace

void Tree::refreshDerived(const SignatureTable &Sig, DigestPolicy Policy) {
  // Iterative post-order: kids are fully recomputed before their parent.
  // Explicit stack so a depth-MaxDepth chain cannot overflow the call
  // stack.
  std::vector<PostorderFrame> Stack;
  Stack.push_back({this, 0});
  while (!Stack.empty()) {
    PostorderFrame &Top = Stack.back();
    if (Top.NextKid < Top.Node->Kids.size()) {
      Tree *Kid = Top.Node->Kids[Top.NextKid++];
      Stack.push_back({Kid, 0});
      continue;
    }
    Top.Node->computeDerived(Sig, Policy);
    Top.Node->DerivedDirty = false;
    Stack.pop_back();
  }
}

uint64_t Tree::rehashDirtyPaths(const SignatureTable &Sig,
                                DigestPolicy Policy) {
  if (!DerivedDirty)
    return 0;
  uint64_t Rehashed = 0;
  std::vector<PostorderFrame> Stack;
  Stack.push_back({this, 0});
  while (!Stack.empty()) {
    PostorderFrame &Top = Stack.back();
    if (Top.NextKid < Top.Node->Kids.size()) {
      Tree *Kid = Top.Node->Kids[Top.NextKid++];
      // Clean subtrees keep their digests: the dirtiness invariant says
      // every node with a stale descendant is itself marked.
      if (Kid->DerivedDirty)
        Stack.push_back({Kid, 0});
      continue;
    }
    Top.Node->computeDerived(Sig, Policy);
    Top.Node->DerivedDirty = false;
    ++Rehashed;
    Stack.pop_back();
  }
  return Rehashed;
}

void Tree::refreshDerivedParallel(const SignatureTable &Sig,
                                  DigestPolicy Policy, WorkerPool &Pool) {
  if (Pool.numWorkers() <= 1) {
    refreshDerived(Sig, Policy);
    return;
  }

  // Partition the tree into chunk roots of at most Grain nodes (using the
  // possibly stale cached sizes -- staleness only skews load balance, not
  // correctness: every node ends up either below exactly one chunk root or
  // on the spine above all of them). Spine nodes are collected preorder so
  // the reversed vector recomputes kids before parents.
  const uint64_t Grain =
      std::max<uint64_t>(2048, Size / (uint64_t(Pool.numWorkers()) * 8));
  std::vector<Tree *> Spine;
  std::vector<Tree *> ChunkRoots;
  foreachTreePruned([&](Tree *T) {
    if (T->Size <= Grain || T->Kids.empty()) {
      ChunkRoots.push_back(T);
      return false; // chunk subtrees are handled by the pool tasks
    }
    Spine.push_back(T);
    return true;
  });

  std::vector<std::function<void()>> Tasks;
  Tasks.reserve(ChunkRoots.size());
  for (Tree *Root : ChunkRoots)
    Tasks.push_back([Root, &Sig, Policy] { Root->refreshDerived(Sig, Policy); });
  Pool.run(std::move(Tasks));

  for (size_t I = Spine.size(); I != 0; --I) {
    Spine[I - 1]->computeDerived(Sig, Policy);
    Spine[I - 1]->DerivedDirty = false;
  }
}

void Tree::clearDiffState() {
  foreachTree([](Tree *T) {
    T->Share = nullptr;
    T->Assigned = nullptr;
    T->Covered = false;
    T->ShareAvailable = false;
    T->Mark = 0;
  });
}

static void assertMatchesSignature(const SignatureTable &Sig, TagId Tag,
                                   const std::vector<Tree *> &Kids,
                                   const std::vector<Literal> &Lits) {
#ifndef NDEBUG
  const TagSignature &TagSig = Sig.signature(Tag);
  assert(Kids.size() == TagSig.Kids.size() && "kid arity mismatch");
  assert(Lits.size() == TagSig.Lits.size() && "literal arity mismatch");
  for (size_t I = 0, E = Kids.size(); I != E; ++I) {
    assert(Kids[I] != nullptr && "kids of constructed nodes must be present");
    SortId KidSort = Sig.signature(Kids[I]->tag()).Result;
    assert(Sig.isSubsort(KidSort, TagSig.Kids[I].Sort) &&
           "kid sort does not match signature");
  }
  for (size_t I = 0, E = Lits.size(); I != E; ++I)
    assert(Lits[I].kind() == TagSig.Lits[I].Kind &&
           "literal kind does not match signature");
#else
  (void)Sig;
  (void)Tag;
  (void)Kids;
  (void)Lits;
#endif
}

Tree *TreeContext::make(TagId Tag, std::vector<Tree *> Kids,
                        std::vector<Literal> Lits) {
  return makeWithUri(Tag, NextUri, std::move(Kids), std::move(Lits));
}

Tree *TreeContext::make(std::string_view TagName, std::vector<Tree *> Kids,
                        std::vector<Literal> Lits) {
  Symbol Tag = Sig.lookup(TagName);
  assert(Tag != InvalidSymbol && "unknown tag name");
  return make(Tag, std::move(Kids), std::move(Lits));
}

Tree *TreeContext::makeWithUri(TagId Tag, URI Uri, std::vector<Tree *> Kids,
                               std::vector<Literal> Lits) {
  assert(Uri >= NextUri && "URI already used in this context");
  return adoptWithUri(Tag, Uri, std::move(Kids), std::move(Lits));
}

/// Estimate of a node's heap footprint for memory-budget accounting: the
/// node itself, its kid-pointer and literal arrays, and the heap payload
/// of string literals. An estimate is enough -- the budget guards against
/// order-of-magnitude blowups, not byte-exact ceilings.
static size_t approxNodeBytes(const Tree &N) {
  size_t Bytes = sizeof(Tree) + N.arity() * sizeof(Tree *) +
                 N.numLits() * sizeof(Literal);
  for (size_t I = 0, E = N.numLits(); I != E; ++I) {
    const Literal &L = N.lit(I);
    if (L.kind() == LitKind::String)
      Bytes += L.asString().capacity();
  }
  return Bytes;
}

TreeContext::~TreeContext() {
  if (Budget != nullptr)
    Budget->release(BytesCharged);
}

Tree *TreeContext::adoptWithUri(TagId Tag, URI Uri, std::vector<Tree *> Kids,
                                std::vector<Literal> Lits) {
  assertMatchesSignature(Sig, Tag, Kids, Lits);

  Nodes.emplace_back(Tree());
  Tree *Node = &Nodes.back();
  Node->Tag = Tag;
  Node->Uri = Uri;
  Node->Kids = std::move(Kids);
  Node->Lits = std::move(Lits);
  Node->computeDerived(Sig, Policy);
  NextUri = std::max(NextUri, Uri + 1);
  if (Budget != nullptr) {
    // All make/makeWithUri variants funnel through here, so this is the
    // single accounting point for the arena.
    size_t Bytes = approxNodeBytes(*Node);
    Budget->charge(Bytes);
    BytesCharged += Bytes;
  }
  return Node;
}

Tree *TreeContext::deepCopy(const Tree *T) {
  // Iterative post-order with POD frames and one shared results stack:
  // when a frame completes, its kids' copies are the top arity() entries
  // of Done (in order). This is the hot path of every diff invocation
  // (source trees are consumed), so no per-frame vector allocations.
  // Stack-safe on chains as deep as admission allows.
  struct CopyFrame {
    const Tree *Src;
    size_t NextKid;
  };
  std::vector<CopyFrame> Stack;
  std::vector<Tree *> Done;
  Stack.reserve(std::min<uint64_t>(T->height(), 4096));
  Done.reserve(64);
  Stack.push_back({T, 0});
  while (!Stack.empty()) {
    CopyFrame &Top = Stack.back();
    if (Top.NextKid < Top.Src->arity()) {
      Stack.push_back({Top.Src->kid(Top.NextKid++), 0});
      continue;
    }
    const Tree *Src = Top.Src;
    Stack.pop_back();
    size_t Arity = Src->arity();
    std::vector<Tree *> Kids(Done.end() - Arity, Done.end());
    Done.resize(Done.size() - Arity);
    Done.push_back(
        adoptWithUri(Src->tag(), NextUri, std::move(Kids), Src->lits()));
  }
  return Done.front();
}

std::optional<std::string> TreeContext::validate(const Tree *T) const {
  if (!Sig.hasTag(T->tag()))
    return "unknown tag: " + Sig.name(T->tag());
  const TagSignature &TagSig = Sig.signature(T->tag());
  if (T->arity() != TagSig.Kids.size())
    return "kid arity mismatch at " + Sig.name(T->tag());
  if (T->numLits() != TagSig.Lits.size())
    return "literal arity mismatch at " + Sig.name(T->tag());
  for (size_t I = 0, E = T->arity(); I != E; ++I) {
    const Tree *Kid = T->kid(I);
    if (Kid == nullptr)
      return "empty slot in completed tree at " + Sig.name(T->tag());
    SortId KidSort = Sig.signature(Kid->tag()).Result;
    if (!Sig.isSubsort(KidSort, TagSig.Kids[I].Sort))
      return "kid sort mismatch at " + Sig.name(T->tag()) + "." +
             Sig.name(TagSig.Kids[I].Link);
    if (auto Err = validate(Kid))
      return Err;
  }
  for (size_t I = 0, E = T->numLits(); I != E; ++I)
    if (T->lit(I).kind() != TagSig.Lits[I].Kind)
      return "literal kind mismatch at " + Sig.name(T->tag()) + "." +
             Sig.name(TagSig.Lits[I].Link);
  return std::nullopt;
}

void TreeContext::corruptDerivedForTest(Tree *T) {
  std::array<uint8_t, Digest::NumBytes> B = T->StructHash.bytes();
  B[0] ^= 0x01;
  T->StructHash = Digest(B);
}

bool truediff::treeEqualsModuloUris(const Tree *A, const Tree *B) {
  if (A->tag() != B->tag() || A->arity() != B->arity() ||
      A->numLits() != B->numLits())
    return false;
  for (size_t I = 0, E = A->numLits(); I != E; ++I)
    if (A->lit(I) != B->lit(I))
      return false;
  for (size_t I = 0, E = A->arity(); I != E; ++I)
    if (!treeEqualsModuloUris(A->kid(I), B->kid(I)))
      return false;
  return true;
}

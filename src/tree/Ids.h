//===- tree/Ids.h - URI, tag, link, and sort identifiers --------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier types shared by trees and edit scripts (paper Figure 1):
/// URIs name nodes, tags name constructors, links name constructor
/// arguments, and sorts name the types of the signature Sigma.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TREE_IDS_H
#define TRUEDIFF_TREE_IDS_H

#include "support/Interner.h"

#include <cstdint>

namespace truediff {

/// Uniquely identifies a node. The paper writes URIs as subscripts
/// (Add_1). URI 0 is the pre-defined root node the paper calls "null".
using URI = uint64_t;

/// The URI of the pre-defined root node.
constexpr URI NullURI = 0;

/// A constructor symbol (interned).
using TagId = Symbol;

/// A link connecting a parent to a child or literal (interned).
using LinkId = Symbol;

/// A sort, i.e. the type T of a tree in the signature Sigma (interned).
using SortId = Symbol;

} // namespace truediff

#endif // TRUEDIFF_TREE_IDS_H

//===- blame/Provenance.cpp - Per-node attribution index -------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blame/Provenance.h"

#include "persist/Varint.h"

#include <algorithm>

using namespace truediff;
using namespace truediff::blame;
using service::DocId;
using service::DocumentStore;
using truediff::persist::getVarint;
using truediff::persist::putVarint;

const char *truediff::blame::provOpName(ProvOp Op) {
  switch (Op) {
  case ProvOp::Insert:
    return "insert";
  case ProvOp::Move:
    return "move";
  case ProvOp::Update:
    return "update";
  case ProvOp::Rollback:
    return "rollback";
  }
  return "unknown";
}

namespace {

/// Interned per-document attribution entry. Author ids index the doc's
/// author table; 0 is the reserved "unattributed" id.
struct Entry {
  uint64_t IntroVersion = 0;
  uint64_t LastVersion = 0;
  uint32_t IntroAuthor = 0;
  uint32_t LastAuthor = 0;
  ProvOp LastOp = ProvOp::Insert;
};

/// Estimated heap cost of one node-map slot (entry, key, bucket links).
constexpr uint64_t NodeCost =
    sizeof(std::pair<const URI, Entry>) + 2 * sizeof(void *);
/// Fixed overhead per interned author string beyond its characters.
constexpr uint64_t AuthorCost = sizeof(std::string) + 2 * sizeof(void *);

} // namespace

struct ProvenanceIndex::DocIndex {
  mutable std::mutex Mu;
  std::unordered_map<URI, Entry> Nodes;
  /// Id I resolves to Authors[I - 1]; id 0 is the empty author.
  std::vector<std::string> Authors;
  std::unordered_map<std::string, uint32_t> AuthorIds;
  uint64_t AuthorBytes = 0;
  /// Version of the last revision folded in.
  uint64_t Version = 0;
  /// What the memory budget is currently charged for this document.
  uint64_t ChargedBytes = 0;
  mutable uint64_t Queries = 0;

  uint32_t intern(std::string_view Author) {
    if (Author.empty())
      return 0;
    auto It = AuthorIds.find(std::string(Author));
    if (It != AuthorIds.end())
      return It->second;
    Authors.emplace_back(Author);
    uint32_t Id = static_cast<uint32_t>(Authors.size());
    AuthorIds.emplace(Authors.back(), Id);
    AuthorBytes += Author.size() + AuthorCost;
    return Id;
  }

  std::string_view author(uint32_t Id) const {
    return Id == 0 ? std::string_view() : std::string_view(Authors[Id - 1]);
  }

  uint64_t estimateBytes() const {
    return sizeof(DocIndex) + Nodes.size() * NodeCost + AuthorBytes;
  }
};

ProvenanceIndex::ProvenanceIndex() : ProvenanceIndex(Config()) {}
ProvenanceIndex::ProvenanceIndex(Config C) : Cfg(C) {}

ProvenanceIndex::~ProvenanceIndex() { clear(); }

void ProvenanceIndex::attach(service::DocumentStore &Store) {
  Store.addScriptListener([this](DocId Doc, uint64_t Version,
                                 DocumentStore::StoreOp Op,
                                 const EditScript &Script,
                                 const DocumentStore::ScriptInfo &Info) {
    apply(Doc, Version, Op, Info.Author, Script);
  });
  Store.addEraseListener([this](DocId Doc) { eraseDoc(Doc); });
}

std::shared_ptr<ProvenanceIndex::DocIndex>
ProvenanceIndex::find(DocId Doc) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Docs.find(Doc);
  return It == Docs.end() ? nullptr : It->second;
}

std::shared_ptr<ProvenanceIndex::DocIndex>
ProvenanceIndex::findOrCreate(DocId Doc) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Docs.find(Doc);
  if (It != Docs.end())
    return It->second;
  auto D = std::make_shared<DocIndex>();
  Docs.emplace(Doc, D);
  return D;
}

void ProvenanceIndex::rechargeLocked(DocIndex &D) const {
  uint64_t Now = D.estimateBytes();
  if (Cfg.MemBudget != nullptr) {
    if (Now > D.ChargedBytes)
      Cfg.MemBudget->charge(Now - D.ChargedBytes);
    else if (Now < D.ChargedBytes)
      Cfg.MemBudget->release(D.ChargedBytes - Now);
  }
  D.ChargedBytes = Now;
}

void ProvenanceIndex::apply(DocId Doc, uint64_t Version,
                            DocumentStore::StoreOp Op, std::string_view Author,
                            const EditScript &Script) {
  std::shared_ptr<DocIndex> D = findOrCreate(Doc);
  std::lock_guard<std::mutex> Lock(D->Mu);
  if (Op == DocumentStore::StoreOp::Open) {
    // A fresh document: any state left from a previous incarnation of
    // the id (the erase notification can race an in-flight op) is dead.
    D->Nodes.clear();
    D->Authors.clear();
    D->AuthorIds.clear();
    D->AuthorBytes = 0;
  }
  D->Version = Version;
  uint32_t A = D->intern(Author);
  bool IsRollback = Op == DocumentStore::StoreOp::Rollback;

  for (const Edit &E : Script.edits()) {
    URI Uri = E.Node.Uri;
    switch (E.Kind) {
    case EditKind::Load: {
      Entry &N = D->Nodes[Uri];
      N.IntroVersion = N.LastVersion = Version;
      N.IntroAuthor = N.LastAuthor = A;
      N.LastOp = IsRollback ? ProvOp::Rollback : ProvOp::Insert;
      break;
    }
    case EditKind::Unload:
      D->Nodes.erase(Uri);
      break;
    case EditKind::Detach:
    case EditKind::Attach: {
      auto It = D->Nodes.find(Uri);
      if (It == D->Nodes.end()) {
        // Moving a node the index never saw introduced (it predates the
        // index): adopt it here, conservatively attributed to this
        // revision.
        Entry N;
        N.IntroVersion = N.LastVersion = Version;
        N.IntroAuthor = N.LastAuthor = A;
        N.LastOp = IsRollback ? ProvOp::Rollback : ProvOp::Move;
        D->Nodes.emplace(Uri, N);
        break;
      }
      Entry &N = It->second;
      // Attaching a node this same revision just loaded is part of its
      // introduction, not a move.
      if (!IsRollback && N.LastVersion == Version &&
          N.LastOp == ProvOp::Insert)
        break;
      N.LastVersion = Version;
      N.LastAuthor = A;
      N.LastOp = IsRollback ? ProvOp::Rollback : ProvOp::Move;
      break;
    }
    case EditKind::Update: {
      auto It = D->Nodes.find(Uri);
      if (It == D->Nodes.end()) {
        Entry N;
        N.IntroVersion = N.LastVersion = Version;
        N.IntroAuthor = N.LastAuthor = A;
        N.LastOp = IsRollback ? ProvOp::Rollback : ProvOp::Update;
        D->Nodes.emplace(Uri, N);
        break;
      }
      Entry &N = It->second;
      N.LastVersion = Version;
      N.LastAuthor = A;
      N.LastOp = IsRollback ? ProvOp::Rollback : ProvOp::Update;
      break;
    }
    }
  }
  rechargeLocked(*D);
}

void ProvenanceIndex::eraseDoc(DocId Doc) {
  std::shared_ptr<DocIndex> D;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Docs.find(Doc);
    if (It == Docs.end())
      return;
    D = std::move(It->second);
    Docs.erase(It);
  }
  std::lock_guard<std::mutex> Lock(D->Mu);
  if (Cfg.MemBudget != nullptr && D->ChargedBytes != 0)
    Cfg.MemBudget->release(D->ChargedBytes);
  D->ChargedBytes = 0;
}

void ProvenanceIndex::clear() {
  std::map<DocId, std::shared_ptr<DocIndex>> Taken;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Taken.swap(Docs);
  }
  for (auto &[Doc, D] : Taken) {
    std::lock_guard<std::mutex> Lock(D->Mu);
    if (Cfg.MemBudget != nullptr && D->ChargedBytes != 0)
      Cfg.MemBudget->release(D->ChargedBytes);
    D->ChargedBytes = 0;
  }
}

bool ProvenanceIndex::blameNode(DocId Doc, URI Uri,
                                NodeProvenance &Out) const {
  std::shared_ptr<DocIndex> D = find(Doc);
  if (!D)
    return false;
  std::lock_guard<std::mutex> Lock(D->Mu);
  ++D->Queries;
  auto It = D->Nodes.find(Uri);
  if (It == D->Nodes.end())
    return false;
  const Entry &N = It->second;
  Out.IntroVersion = N.IntroVersion;
  Out.LastVersion = N.LastVersion;
  Out.LastOp = N.LastOp;
  Out.IntroAuthor = std::string(D->author(N.IntroAuthor));
  Out.LastAuthor = std::string(D->author(N.LastAuthor));
  return true;
}

bool ProvenanceIndex::docVersion(DocId Doc, uint64_t *Out) const {
  std::shared_ptr<DocIndex> D = find(Doc);
  if (!D)
    return false;
  std::lock_guard<std::mutex> Lock(D->Mu);
  *Out = D->Version;
  return true;
}

bool ProvenanceIndex::DocView::lookup(URI Uri, NodeProvenance &Out) const {
  const auto *Doc = static_cast<const DocIndex *>(D);
  auto It = Doc->Nodes.find(Uri);
  if (It == Doc->Nodes.end())
    return false;
  const Entry &N = It->second;
  Out.IntroVersion = N.IntroVersion;
  Out.LastVersion = N.LastVersion;
  Out.LastOp = N.LastOp;
  Out.IntroAuthor = std::string(Doc->author(N.IntroAuthor));
  Out.LastAuthor = std::string(Doc->author(N.LastAuthor));
  return true;
}

uint64_t ProvenanceIndex::DocView::version() const {
  return static_cast<const DocIndex *>(D)->Version;
}

size_t ProvenanceIndex::DocView::nodes() const {
  return static_cast<const DocIndex *>(D)->Nodes.size();
}

bool ProvenanceIndex::withDocIndex(
    DocId Doc, const std::function<void(const DocView &)> &Fn) const {
  std::shared_ptr<DocIndex> D = find(Doc);
  if (!D)
    return false;
  std::lock_guard<std::mutex> Lock(D->Mu);
  ++D->Queries;
  Fn(DocView(D.get()));
  return true;
}

std::string ProvenanceIndex::snapshotDoc(DocId Doc) const {
  std::string Blob;
  std::shared_ptr<DocIndex> D = find(Doc);
  if (!D) {
    putVarint(Blob, 0); // version
    putVarint(Blob, 0); // authors
    putVarint(Blob, 0); // nodes
    return Blob;
  }
  std::lock_guard<std::mutex> Lock(D->Mu);

  // Canonical form: nodes sorted by URI, author ids remapped to
  // first-use order over that walk, and only referenced authors
  // emitted. Interning order -- which depends on whether the index was
  // built incrementally, replayed, or installed from a snapshot -- thus
  // never shows in the bytes.
  std::vector<std::pair<URI, const Entry *>> Sorted;
  Sorted.reserve(D->Nodes.size());
  for (const auto &[Uri, N] : D->Nodes)
    Sorted.emplace_back(Uri, &N);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &L, const auto &R) { return L.first < R.first; });

  std::vector<uint32_t> Remap(D->Authors.size() + 1, 0);
  std::vector<uint32_t> TableIds; // old ids in canonical order
  auto Canonical = [&](uint32_t Old) -> uint32_t {
    if (Old == 0)
      return 0;
    if (Remap[Old] == 0) {
      TableIds.push_back(Old);
      Remap[Old] = static_cast<uint32_t>(TableIds.size());
    }
    return Remap[Old];
  };
  struct CanonNode {
    URI Uri;
    uint64_t IntroV, LastV;
    uint32_t IntroA, LastA;
    ProvOp Op;
  };
  std::vector<CanonNode> Nodes;
  Nodes.reserve(Sorted.size());
  for (const auto &[Uri, N] : Sorted)
    Nodes.push_back({Uri, N->IntroVersion, N->LastVersion,
                     Canonical(N->IntroAuthor), Canonical(N->LastAuthor),
                     N->LastOp});

  putVarint(Blob, D->Version);
  putVarint(Blob, TableIds.size());
  for (uint32_t Old : TableIds) {
    std::string_view A = D->author(Old);
    putVarint(Blob, A.size());
    Blob.append(A.data(), A.size());
  }
  putVarint(Blob, Nodes.size());
  for (const CanonNode &N : Nodes) {
    putVarint(Blob, N.Uri);
    putVarint(Blob, N.IntroV);
    putVarint(Blob, N.IntroA);
    putVarint(Blob, N.LastV);
    putVarint(Blob, N.LastA);
    Blob.push_back(static_cast<char>(N.Op));
  }
  return Blob;
}

bool ProvenanceIndex::installSnapshot(DocId Doc, std::string_view Blob) {
  // Decode fully into fresh state before touching the live index: a
  // malformed blob must leave the previous state intact.
  size_t Pos = 0;
  auto Version = getVarint(Blob, Pos);
  auto NumAuthors = getVarint(Blob, Pos);
  if (!Version || !NumAuthors || *NumAuthors > Blob.size())
    return false;
  std::vector<std::string> Authors;
  Authors.reserve(*NumAuthors);
  for (uint64_t I = 0; I != *NumAuthors; ++I) {
    auto Len = getVarint(Blob, Pos);
    if (!Len || *Len > Blob.size() - Pos)
      return false;
    Authors.emplace_back(Blob.substr(Pos, *Len));
    Pos += *Len;
  }
  auto NumNodes = getVarint(Blob, Pos);
  if (!NumNodes || *NumNodes > Blob.size())
    return false;
  std::unordered_map<URI, Entry> Nodes;
  Nodes.reserve(*NumNodes);
  for (uint64_t I = 0; I != *NumNodes; ++I) {
    auto Uri = getVarint(Blob, Pos);
    auto IntroV = getVarint(Blob, Pos);
    auto IntroA = getVarint(Blob, Pos);
    auto LastV = getVarint(Blob, Pos);
    auto LastA = getVarint(Blob, Pos);
    if (!Uri || !IntroV || !IntroA || !LastV || !LastA ||
        Pos >= Blob.size())
      return false;
    uint8_t Op = static_cast<uint8_t>(Blob[Pos++]);
    if (*IntroA > Authors.size() || *LastA > Authors.size() ||
        Op > static_cast<uint8_t>(ProvOp::Rollback))
      return false;
    Entry N;
    N.IntroVersion = *IntroV;
    N.LastVersion = *LastV;
    N.IntroAuthor = static_cast<uint32_t>(*IntroA);
    N.LastAuthor = static_cast<uint32_t>(*LastA);
    N.LastOp = static_cast<ProvOp>(Op);
    Nodes.emplace(static_cast<URI>(*Uri), N);
  }
  if (Pos != Blob.size())
    return false;

  std::shared_ptr<DocIndex> D = findOrCreate(Doc);
  std::lock_guard<std::mutex> Lock(D->Mu);
  D->Nodes = std::move(Nodes);
  D->Authors = std::move(Authors);
  D->AuthorIds.clear();
  D->AuthorBytes = 0;
  for (uint32_t I = 0; I != D->Authors.size(); ++I) {
    D->AuthorIds.emplace(D->Authors[I], I + 1);
    D->AuthorBytes += D->Authors[I].size() + AuthorCost;
  }
  D->Version = *Version;
  rechargeLocked(*D);
  return true;
}

ProvenanceIndex::Stats ProvenanceIndex::stats() const {
  Stats Out;
  std::map<DocId, std::shared_ptr<DocIndex>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Snapshot = Docs;
  }
  for (const auto &[Doc, D] : Snapshot) {
    std::lock_guard<std::mutex> Lock(D->Mu);
    DocStats DS;
    DS.Doc = Doc;
    DS.Nodes = D->Nodes.size();
    DS.Bytes = D->estimateBytes();
    DS.Queries = D->Queries;
    ++Out.Docs;
    Out.Nodes += DS.Nodes;
    Out.Bytes += DS.Bytes;
    Out.Queries += DS.Queries;
    Out.PerDoc.push_back(std::move(DS));
  }
  return Out;
}

std::string ProvenanceIndex::statsJsonFragment() const {
  Stats S = stats();
  auto N = [](uint64_t V) { return std::to_string(V); };
  std::string Json = "\"blame\":{\"docs\":" + N(S.Docs) +
                     ",\"provenance_nodes\":" + N(S.Nodes) +
                     ",\"provenance_bytes\":" + N(S.Bytes) +
                     ",\"blame_queries\":" + N(S.Queries) + ",\"per_doc\":[";
  bool First = true;
  for (const DocStats &DS : S.PerDoc) {
    if (!First)
      Json += ',';
    First = false;
    Json += "{\"doc\":" + N(DS.Doc) + ",\"nodes\":" + N(DS.Nodes) +
            ",\"bytes\":" + N(DS.Bytes) + ",\"queries\":" + N(DS.Queries) +
            "}";
  }
  Json += "]}";
  return Json;
}

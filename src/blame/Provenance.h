//===- blame/Provenance.h - Per-node attribution index ----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The provenance index of the blame subsystem: for every live node URI
/// of every document, which revision introduced the node and which
/// revision last touched it (moved or re-literalled it), and who
/// authored those revisions.
///
/// The index is maintained *incrementally* from the DocumentStore's
/// script stream -- the same op+version-contextualized stream the
/// replication log and the persistence layer already consume. Each
/// applied script updates the index in O(|script|): a Load introduces
/// its node at the emitting version, an Unload erases it, Detach/Attach
/// re-attribute the node as moved, Update as edited in place. History is
/// never replayed on the query path; a blame lookup is one hash probe
/// regardless of how many revisions the document has seen.
///
/// Attribution rules (DESIGN.md section 14):
///
///   introduce   Load sets both the intro and last attribution to the
///               emitting (version, author). A node attached in the same
///               script that loaded it stays "insert" -- placing a
///               freshly created node is part of its introduction, not a
///               move.
///   move        Detach/Attach of a pre-existing node re-attributes only
///               the *last* touch; the intro attribution is permanent.
///   update      Update re-attributes the last touch, kind "update".
///   rollback    The inverse script is folded with the same mechanics,
///               but every touched node is attributed to the rollback's
///               *target* version and that version's author (the store
///               passes them in ScriptInfo), with kind "rollback" --
///               rollback restores earlier work, it does not author new
///               work. A node the inverse re-loads gets its intro reset
///               to the target version: its original introduction was
///               forgotten when the rolled-back script unloaded it.
///
/// The fold is a pure function of the (op, version, author, script)
/// sequence, so an index maintained incrementally is byte-identical --
/// via the canonical serialization below -- to one produced by replaying
/// the full stream from scratch. That is the subsystem's correctness
/// property (tests/blame_test.cpp) and what makes durability and
/// replication work: snapshots carry the serialized index, recovery and
/// follower catch-up rebuild the tail by folding the same records the
/// tree state is rebuilt from.
///
/// Serialization is canonical: nodes sorted by URI, author ids remapped
/// to first-use order over that walk. Two indexes holding the same
/// attribution serialize to the same bytes regardless of internal
/// interning order, so blobs can be compared for equality directly.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_BLAME_PROVENANCE_H
#define TRUEDIFF_BLAME_PROVENANCE_H

#include "service/DocumentStore.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace blame {

/// How a node's last-touch revision affected it.
enum class ProvOp : uint8_t {
  Insert = 0,   ///< introduced (Load) by that revision
  Move = 1,     ///< detached/attached by that revision
  Update = 2,   ///< literals rewritten in place by that revision
  Rollback = 3, ///< restored by rolling back to that revision
};

/// Returns "insert", "move", "update", "rollback".
const char *provOpName(ProvOp Op);

/// Resolved attribution of one live node, as returned by queries.
struct NodeProvenance {
  uint64_t IntroVersion = 0;
  uint64_t LastVersion = 0;
  ProvOp LastOp = ProvOp::Insert;
  /// Empty = unattributed.
  std::string IntroAuthor;
  std::string LastAuthor;
};

class ProvenanceIndex {
public:
  struct Config {
    /// Budget the index's estimated bytes are charged against -- the
    /// same process-wide budget the document arenas account to, so
    /// admission control sees tree + index memory as one pool. Null =
    /// uncharged (stats still report the estimate). Must outlive the
    /// index.
    MemoryBudget *MemBudget = nullptr;
  };

  ProvenanceIndex();
  explicit ProvenanceIndex(Config C);
  ~ProvenanceIndex();

  ProvenanceIndex(const ProvenanceIndex &) = delete;
  ProvenanceIndex &operator=(const ProvenanceIndex &) = delete;

  /// Subscribes to \p Store's script and erase streams. Register before
  /// serving traffic (the store's listener contract).
  void attach(service::DocumentStore &Store);

  /// Folds one applied script into the index -- the core incremental
  /// step, shared by the store listener, crash recovery, follower
  /// catch-up, and the from-scratch replay the property test compares
  /// against. O(|Script|). For rollback, \p Version and \p Author are
  /// the *target* version and its author (see the file comment).
  void apply(service::DocId Doc, uint64_t Version,
             service::DocumentStore::StoreOp Op, std::string_view Author,
             const EditScript &Script);

  /// Drops \p Doc's index (document erased) and releases its budget.
  void eraseDoc(service::DocId Doc);

  /// Drops every document's index.
  void clear();

  /// Looks up one live node; counts a blame query. Returns false when
  /// the document or the URI is unknown.
  bool blameNode(service::DocId Doc, URI Uri, NodeProvenance &Out) const;

  /// Version of the last revision folded into \p Doc's index; false when
  /// the document is unknown.
  bool docVersion(service::DocId Doc, uint64_t *Out) const;

  /// Read-only view of one document's index, for bulk rendering without
  /// a lock/resolve round trip per node. Valid only inside withDocIndex.
  class DocView {
  public:
    /// Resolved attribution of \p Uri; false if not live.
    bool lookup(URI Uri, NodeProvenance &Out) const;
    uint64_t version() const;
    size_t nodes() const;

  private:
    friend class ProvenanceIndex;
    explicit DocView(const void *D) : D(D) {}
    const void *D;
  };

  /// Runs \p Fn under \p Doc's index lock; counts one blame query.
  /// Returns false when the document is unknown.
  bool withDocIndex(service::DocId Doc,
                    const std::function<void(const DocView &)> &Fn) const;

  /// Canonical serialization of \p Doc's index (see file comment); the
  /// empty-index blob when the document is unknown. The blob travels in
  /// document snapshots and replication snapshot transfers.
  std::string snapshotDoc(service::DocId Doc) const;

  /// Installs \p Blob as \p Doc's entire index state, replacing whatever
  /// was there. Returns false (leaving the previous state untouched) on
  /// a malformed blob.
  bool installSnapshot(service::DocId Doc, std::string_view Blob);

  struct DocStats {
    service::DocId Doc = 0;
    uint64_t Nodes = 0;
    uint64_t Bytes = 0;
    uint64_t Queries = 0;
  };

  struct Stats {
    uint64_t Docs = 0;
    uint64_t Nodes = 0;
    /// Estimated index bytes (what the budget is charged).
    uint64_t Bytes = 0;
    /// Blame/history lookups served from the index.
    uint64_t Queries = 0;
    /// Per-document breakdown, ordered by document id.
    std::vector<DocStats> PerDoc;
  };

  Stats stats() const;

  /// `"blame":{...}` JSON fragment for the service stats augmenter:
  /// blame_queries, provenance_nodes, provenance_bytes plus the
  /// per-document breakdown.
  std::string statsJsonFragment() const;

private:
  struct DocIndex;

  std::shared_ptr<DocIndex> find(service::DocId Doc) const;
  std::shared_ptr<DocIndex> findOrCreate(service::DocId Doc);
  void rechargeLocked(DocIndex &D) const;

  const Config Cfg;
  mutable std::mutex Mu;
  /// Ordered so stats and per-doc JSON render deterministically.
  std::map<service::DocId, std::shared_ptr<DocIndex>> Docs;
};

} // namespace blame
} // namespace truediff

#endif // TRUEDIFF_BLAME_PROVENANCE_H

//===- blame/Render.cpp - blame / history query rendering -----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blame/Render.h"

#include <algorithm>

using namespace truediff;
using namespace truediff::blame;
using service::DocId;
using service::DocumentStore;
using service::ErrCode;
using service::Response;

namespace {

/// "-" for unattributed authors, so every line has the same field count.
std::string_view authorOr(std::string_view Author) {
  return Author.empty() ? std::string_view("-") : Author;
}

/// The attribution suffix shared by tree lines and single-node blame:
/// `intro=v<V>:<author|-> last=v<V>:<author|-> <op>`.
void appendProvenance(std::string &Out, const NodeProvenance &P) {
  Out += "intro=v";
  Out += std::to_string(P.IntroVersion);
  Out += ':';
  Out += authorOr(P.IntroAuthor);
  Out += " last=v";
  Out += std::to_string(P.LastVersion);
  Out += ':';
  Out += authorOr(P.LastAuthor);
  Out += ' ';
  Out += provOpName(P.LastOp);
}

/// True when \p E names \p Uri as the manipulated node or in its kid
/// list -- the revision containing \p E shows up in the node's history.
bool editTouches(const Edit &E, URI Uri) {
  if (E.Node.Uri == Uri)
    return true;
  for (const KidRef &K : E.Kids)
    if (K.Uri == Uri)
      return true;
  return false;
}

/// Deduplicated edit kinds of \p S touching \p Uri, in first-seen order,
/// rendered as "load" / "attach,detach" / ... Empty when none touch it.
std::string touchingKinds(const EditScript &S, URI Uri) {
  bool Seen[5] = {false, false, false, false, false};
  std::string Out;
  for (const Edit &E : S.edits()) {
    if (!editTouches(E, Uri))
      continue;
    unsigned K = static_cast<unsigned>(E.Kind);
    if (Seen[K])
      continue;
    Seen[K] = true;
    if (!Out.empty())
      Out += ',';
    Out += editKindName(E.Kind);
  }
  return Out;
}

Response errResponse(ErrCode Code, std::string Msg) {
  Response R;
  R.Ok = false;
  R.Code = Code;
  R.Error = std::move(Msg);
  return R;
}

} // namespace

std::string blame::renderBlameTree(const SignatureTable &Sig, const Tree *Root,
                                   const ProvenanceIndex::DocView &View) {
  std::string Out;
  if (Root == nullptr)
    return Out;
  // Iterative pre-order: tree depth is user-controlled, recursion is not.
  std::vector<std::pair<const Tree *, unsigned>> Stack;
  Stack.emplace_back(Root, 0);
  NodeProvenance P;
  while (!Stack.empty()) {
    auto [T, Depth] = Stack.back();
    Stack.pop_back();
    Out.append(static_cast<size_t>(Depth) * 2, ' ');
    Out += Sig.name(T->tag());
    Out += '#';
    Out += std::to_string(T->uri());
    Out += ' ';
    if (View.lookup(T->uri(), P))
      appendProvenance(Out, P);
    else
      Out += "unindexed";
    Out += '\n';
    for (size_t I = T->arity(); I != 0; --I)
      Stack.emplace_back(T->kid(I - 1), Depth + 1);
  }
  return Out;
}

Response blame::blameTreeResponse(const SignatureTable &Sig, const Tree *Root,
                                  const ProvenanceIndex &Idx, DocId Doc,
                                  bool HasUri, URI Uri) {
  Response R;
  bool Known = Idx.withDocIndex(Doc, [&](const ProvenanceIndex::DocView &V) {
    R.Version = V.version();
    if (HasUri) {
      NodeProvenance P;
      if (!V.lookup(Uri, P)) {
        R = errResponse(ErrCode::NoSuchNode,
                        "no live node #" + std::to_string(Uri) +
                            " in document " + std::to_string(Doc));
        return;
      }
      R.Ok = true;
      R.Payload = "#" + std::to_string(Uri) + " ";
      appendProvenance(R.Payload, P);
      return;
    }
    R.Ok = true;
    R.Payload = renderBlameTree(Sig, Root, V);
  });
  if (!Known)
    return errResponse(ErrCode::NoSuchDocument,
                       "no document " + std::to_string(Doc));
  return R;
}

Response blame::historyResponse(const ProvenanceIndex &Idx, DocId Doc, URI Uri,
                                const std::vector<HistoryRef> &Ring) {
  Response R;
  bool Known = Idx.withDocIndex(Doc, [&](const ProvenanceIndex::DocView &V) {
    R.Version = V.version();
    NodeProvenance P;
    if (!V.lookup(Uri, P)) {
      R = errResponse(ErrCode::NoSuchNode,
                      "no live node #" + std::to_string(Uri) +
                          " in document " + std::to_string(Doc));
      return;
    }

    // Lead line: the index attribution, same format as single-node blame.
    std::string Out = "#" + std::to_string(Uri) + " ";
    appendProvenance(Out, P);
    Out += '\n';

    // Retained revisions that touched the node, newest first.
    size_t Listed = 0;
    for (size_t I = Ring.size(); I != 0; --I) {
      const HistoryRef &H = Ring[I - 1];
      if (H.Script == nullptr)
        continue;
      std::string Kinds = touchingKinds(*H.Script, Uri);
      if (Kinds.empty())
        continue;
      Out += 'v';
      Out += std::to_string(H.Version);
      Out += " by ";
      Out += authorOr(H.Author);
      Out += " (";
      Out += Kinds;
      Out += ")\n";
      ++Listed;
    }

    // The open script (version 0) never enters the submit ring; the
    // index itself attributes it, so a v0 introduction is synthesized
    // rather than reported evicted.
    if (P.IntroVersion == 0) {
      Out += "v0 by ";
      Out += authorOr(P.IntroAuthor);
      Out += " (open)\n";
      ++Listed;
    }

    // Coverage: the ring retains versions [front, back]; an introduction
    // before the front means part of the node's chain was evicted. The
    // answer degrades *explicitly* -- a marker for a partial chain, a
    // typed error for a fully evicted one -- never a silently shortened
    // history.
    uint64_t CoveredFrom =
        !Ring.empty() ? Ring.front().Version : (V.version() == 0 ? 1 : 0);
    bool Complete =
        P.IntroVersion == 0 || (CoveredFrom != 0 && P.IntroVersion >= CoveredFrom);
    if (!Complete) {
      if (Listed == 0) {
        R = errResponse(ErrCode::HistoryExhausted,
                        "history exhausted: no retained revision touches "
                        "node #" +
                            std::to_string(Uri) +
                            " (introduced at v" +
                            std::to_string(P.IntroVersion) +
                            ", evicted from the ring)");
        return;
      }
      Out += "evicted: revisions before v";
      Out += std::to_string(CoveredFrom);
      Out += " no longer retained\n";
    }

    R.Ok = true;
    R.Payload = std::move(Out);
  });
  if (!Known)
    return errResponse(ErrCode::NoSuchDocument,
                       "no document " + std::to_string(Doc));
  return R;
}

Response blame::blameResponse(const DocumentStore &Store,
                              const ProvenanceIndex &Idx, DocId Doc,
                              bool HasUri, URI Uri) {
  // Single-node blame is one index probe; the store (and its locks) are
  // never involved.
  if (HasUri)
    return blameTreeResponse(Store.signatures(), nullptr, Idx, Doc, true, Uri);
  Response R;
  // Tree + index are read under the document lock, the same lock the
  // index listener updates under, so the annotation matches the tree.
  bool Found = Store.withDocument(
      Doc, [&](const Tree *Root, uint64_t,
               const std::vector<DocumentStore::HistoryEntry> &) {
        R = blameTreeResponse(Store.signatures(), Root, Idx, Doc, false, Uri);
      });
  if (!Found)
    return errResponse(ErrCode::NoSuchDocument,
                       "no document " + std::to_string(Doc));
  return R;
}

Response blame::historyResponse(const DocumentStore &Store,
                                const ProvenanceIndex &Idx, DocId Doc,
                                URI Uri) {
  Response R;
  bool Found = Store.withDocument(
      Doc, [&](const Tree *, uint64_t,
               const std::vector<DocumentStore::HistoryEntry> &History) {
        std::vector<HistoryRef> Ring;
        Ring.reserve(History.size());
        for (const DocumentStore::HistoryEntry &H : History) {
          HistoryRef Ref;
          Ref.Version = H.Version;
          if (H.Author != nullptr)
            Ref.Author = *H.Author;
          Ref.Script = H.Script;
          Ring.push_back(Ref);
        }
        R = historyResponse(Idx, Doc, Uri, Ring);
      });
  if (!Found)
    return errResponse(ErrCode::NoSuchDocument,
                       "no document " + std::to_string(Doc));
  return R;
}

void blame::wireBlameHandlers(service::DiffService &Svc,
                              const DocumentStore &Store,
                              const ProvenanceIndex &Idx) {
  Svc.setBlameHandler([&Store, &Idx](DocId Doc, bool HasUri, URI Uri) {
    return blameResponse(Store, Idx, Doc, HasUri, Uri);
  });
  Svc.setHistoryHandler([&Store, &Idx](DocId Doc, URI Uri) {
    return historyResponse(Store, Idx, Doc, Uri);
  });
}

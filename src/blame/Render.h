//===- blame/Render.h - blame / history query rendering ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders blame and history answers from the ProvenanceIndex into wire
/// responses, shared by the leader (serving from the DocumentStore) and
/// follower replicas (serving from their materialized trees and bounded
/// record rings). The text is deterministic: a leader and a caught-up
/// follower render byte-identical blame output for the same document,
/// which the replication smoke test asserts.
///
/// `blame <doc>` renders the live tree pre-order, one line per node:
///
///   <indent><tag>#<uri> intro=v<V>:<author|-> last=v<V>:<author|-> <op>
///
/// `blame <doc> <uri>` is the single-node line, served from the index
/// alone -- one hash probe, no tree walk, no history replay.
///
/// `history <doc> <uri>` lists the retained revisions that touched the
/// node, newest first, from the script history ring. The ring is
/// bounded, so answers degrade *explicitly*: a partially covered chain
/// carries a trailing `evicted ...` marker, and a node whose retained
/// chain is entirely gone yields ErrCode::HistoryExhausted -- never a
/// silently wrong attribution.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_BLAME_RENDER_H
#define TRUEDIFF_BLAME_RENDER_H

#include "blame/Provenance.h"
#include "service/DiffService.h"

namespace truediff {
namespace blame {

/// One retained revision of a document's history ring, for history
/// rendering. Leaders build these from DocumentStore::HistoryEntry,
/// followers from their replicated record rings.
struct HistoryRef {
  uint64_t Version = 0;
  std::string_view Author;
  const EditScript *Script = nullptr;
};

/// Renders the annotated pre-order tree for `blame <doc>` (the DocView
/// must belong to \p Doc's index and the tree to the same version).
std::string renderBlameTree(const SignatureTable &Sig, const Tree *Root,
                            const ProvenanceIndex::DocView &View);

/// Serves `blame <doc> [uri]` against a live tree. \p Root may be null
/// only when \p HasUri (single-node blame needs no tree).
service::Response blameTreeResponse(const SignatureTable &Sig,
                                    const Tree *Root,
                                    const ProvenanceIndex &Idx,
                                    service::DocId Doc, bool HasUri, URI Uri);

/// Serves `history <doc> <uri>` from the index plus the retained ring
/// (\p Ring oldest first).
service::Response historyResponse(const ProvenanceIndex &Idx,
                                  service::DocId Doc, URI Uri,
                                  const std::vector<HistoryRef> &Ring);

/// Leader-side `blame <doc> [uri]`: walks the store's live tree under
/// the document lock.
service::Response blameResponse(const service::DocumentStore &Store,
                                const ProvenanceIndex &Idx,
                                service::DocId Doc, bool HasUri, URI Uri);

/// Leader-side `history <doc> <uri>`: reads the store's history ring
/// under the document lock.
service::Response historyResponse(const service::DocumentStore &Store,
                                  const ProvenanceIndex &Idx,
                                  service::DocId Doc, URI Uri);

/// Wires `blame`/`history` service operations to \p Store + \p Idx; the
/// server binary calls this once after constructing the service. Both
/// must outlive \p Svc.
void wireBlameHandlers(service::DiffService &Svc,
                       const service::DocumentStore &Store,
                       const ProvenanceIndex &Idx);

} // namespace blame
} // namespace truediff

#endif // TRUEDIFF_BLAME_RENDER_H

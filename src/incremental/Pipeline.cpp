//===- incremental/Pipeline.cpp - Reparse-diff-update driver ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "incremental/Pipeline.h"

#include <chrono>

using namespace truediff;
using namespace truediff::incremental;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

} // namespace

IncrementalPipeline::IncrementalPipeline(IndexMode Mode)
    : Sig(python::makePythonSignature()), Calls(Sig), DefUse(Sig),
      Mode(Mode) {}

bool IncrementalPipeline::init(const std::string &Source) {
  Ctx = std::make_unique<TreeContext>(Sig);
  python::PyParseResult R = python::parsePython(*Ctx, Source);
  if (!R.ok())
    return false;
  Current = R.Module;
  Db = std::make_unique<TreeDatabase>(Sig, Mode);
  Db->initFromTree(Current);
  Census.recomputeAll(*Db);
  Calls.recomputeAll(*Db);
  DefUse.recomputeAll(*Db);
  return true;
}

std::optional<IncrementalPipeline::StepStats>
IncrementalPipeline::step(const std::string &NewSource) {
  StepStats Stats;

  auto T0 = Clock::now();
  python::PyParseResult R = python::parsePython(*Ctx, NewSource);
  Stats.ParseMs = msSince(T0);
  if (!R.ok())
    return std::nullopt;

  auto T1 = Clock::now();
  TrueDiff Diff(*Ctx);
  DiffResult Result = Diff.compareTo(Current, R.Module);
  Stats.DiffMs = msSince(T1);
  Current = Result.Patched;
  Stats.EditCount = Result.Script.size();
  Stats.PatchSize = Result.Script.coalescedSize();

  auto T2 = Clock::now();
  Db->applyScript(Result.Script);
  Stats.DbMs = msSince(T2);

  auto T3 = Clock::now();
  Census.update(Result.Script);
  Stats.DirtyFunctions = Calls.update(*Db, Result.Script);
  DefUse.update(*Db, Result.Script);
  Stats.AnalysisMs = msSince(T3);
  Stats.TotalFunctions = Calls.numFunctions();
  return Stats;
}

IncrementalPipeline::FullStats
IncrementalPipeline::fullReanalysis(const std::string &Source) {
  FullStats Stats;
  auto T0 = Clock::now();
  TreeContext Fresh(Sig);
  python::PyParseResult R = python::parsePython(Fresh, Source);
  Stats.ParseMs = msSince(T0);
  if (!R.ok())
    return Stats;

  auto T1 = Clock::now();
  TreeDatabase FreshDb(Sig, Mode);
  FreshDb.initFromTree(R.Module);
  TagCensus FreshCensus;
  FreshCensus.recomputeAll(FreshDb);
  CallGraph FreshCalls(Sig);
  FreshCalls.recomputeAll(FreshDb);
  DefUseAnalysis FreshDefUse(Sig);
  FreshDefUse.recomputeAll(FreshDb);
  Stats.BuildMs = msSince(T1);
  return Stats;
}

//===- incremental/Index.h - Bidirectional link indices ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two index encodings from the paper's incremental-computing case
/// study (Section 6): because truechange scripts are type-safe and never
/// overload links, a link can be stored in a bidirectional *one-to-one*
/// index. Untyped edit scripts require the weaker *many-to-one* encoding,
/// where a parent may transiently hold several children on one link, and
/// every operation pays for set handling.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_INCREMENTAL_INDEX_H
#define TRUEDIFF_INCREMENTAL_INDEX_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>

namespace truediff {
namespace incremental {

/// Bidirectional one-to-one index: each key maps to at most one value and
/// vice versa. Valid only under type-safe edit scripts.
template <typename K, typename V> class BidirectionalOneToOneIndex {
public:
  void put(const K &Key, const V &Value) {
    // Type safety guarantees the slot was vacated first; keep the
    // assertion cheap but present.
    assert(!Fwd.count(Key) && "one-to-one violated on key");
    assert(!Rev.count(Value) && "one-to-one violated on value");
    Fwd.emplace(Key, Value);
    Rev.emplace(Value, Key);
  }

  void eraseKey(const K &Key) {
    auto It = Fwd.find(Key);
    if (It == Fwd.end())
      return;
    Rev.erase(It->second);
    Fwd.erase(It);
  }

  std::optional<V> get(const K &Key) const {
    auto It = Fwd.find(Key);
    if (It == Fwd.end())
      return std::nullopt;
    return It->second;
  }

  std::optional<K> getReverse(const V &Value) const {
    auto It = Rev.find(Value);
    if (It == Rev.end())
      return std::nullopt;
    return It->second;
  }

  size_t size() const { return Fwd.size(); }

private:
  std::unordered_map<K, V> Fwd;
  std::unordered_map<V, K> Rev;
};

/// Bidirectional many-to-one index: many keys may map to one value; the
/// reverse direction yields a set. This is the encoding untyped edit
/// scripts force, with set operations on every access.
template <typename K, typename V> class BidirectionalManyToOneIndex {
public:
  void put(const K &Key, const V &Value) {
    auto It = Fwd.find(Key);
    if (It != Fwd.end()) {
      Rev[It->second].erase(Key);
      It->second = Value;
    } else {
      Fwd.emplace(Key, Value);
    }
    Rev[Value].insert(Key);
  }

  void eraseKey(const K &Key) {
    auto It = Fwd.find(Key);
    if (It == Fwd.end())
      return;
    auto RevIt = Rev.find(It->second);
    if (RevIt != Rev.end()) {
      RevIt->second.erase(Key);
      if (RevIt->second.empty())
        Rev.erase(RevIt);
    }
    Fwd.erase(It);
  }

  std::optional<V> get(const K &Key) const {
    auto It = Fwd.find(Key);
    if (It == Fwd.end())
      return std::nullopt;
    return It->second;
  }

  const std::set<K> *getReverse(const V &Value) const {
    auto It = Rev.find(Value);
    return It == Rev.end() ? nullptr : &It->second;
  }

  size_t size() const { return Fwd.size(); }

private:
  std::unordered_map<K, V> Fwd;
  std::unordered_map<V, std::set<K>> Rev;
};

} // namespace incremental
} // namespace truediff

#endif // TRUEDIFF_INCREMENTAL_INDEX_H

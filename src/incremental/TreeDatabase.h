//===- incremental/TreeDatabase.h - Edit-driven tree database ---*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Datalog-style database of tree facts -- node tags, literals, and one
/// parent/child index per link -- maintained incrementally from truechange
/// edit scripts, as in the paper's IncA driver (Section 6). The index
/// encoding is selectable: one-to-one (possible because the scripts are
/// type-safe) or many-to-one (what untyped scripts would force), so the
/// paper's comparison can be benchmarked.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_INCREMENTAL_TREEDATABASE_H
#define TRUEDIFF_INCREMENTAL_TREEDATABASE_H

#include "incremental/Index.h"
#include "truechange/Edit.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace truediff {

class Tree;

namespace incremental {

/// Which index encoding backs the per-link parent/child relation.
enum class IndexMode : uint8_t { OneToOne, ManyToOne };

/// One row of the node table.
struct NodeRow {
  TagId Tag = InvalidSymbol;
  std::vector<LitRef> Lits;
};

/// The fact database.
class TreeDatabase {
public:
  TreeDatabase(const SignatureTable &Sig, IndexMode Mode)
      : Sig(Sig), Mode(Mode) {}

  /// Inserts the row for the pre-defined virtual root, i.e. the state of
  /// the empty tree. A database initialised this way can be built up
  /// purely from an initializing edit script (truechange/InitScript),
  /// which is how the service layer's DatabaseMirror subscribes a
  /// database to a DocumentStore's script stream.
  void initEmpty();

  /// Loads every node of \p T (including a row for the virtual root).
  void initFromTree(const Tree *T);

  /// Applies one edit; constant time per edit.
  void applyEdit(const Edit &E);

  /// Applies a whole script.
  void applyScript(const EditScript &Script);

  /// \name Queries
  /// @{
  const NodeRow *node(URI Uri) const;

  /// The child of \p Parent via \p Link, if any.
  std::optional<URI> childOf(URI Parent, LinkId Link) const;

  /// The parent of \p Child via \p Link, if any.
  std::optional<URI> parentOf(URI Child, LinkId Link) const;

  /// The parent of \p Child via any link (searches the link indices).
  std::optional<URI> parentOf(URI Child) const;

  /// All children of \p Parent in signature-link order.
  std::vector<URI> childrenOf(URI Parent) const;

  size_t numNodes() const { return Nodes.size(); }
  IndexMode mode() const { return Mode; }
  const SignatureTable &signatures() const { return Sig; }
  /// @}

private:
  void link(URI Parent, LinkId Link, URI Child);
  void unlink(URI Parent, LinkId Link, URI Child);

  const SignatureTable &Sig;
  IndexMode Mode;
  std::unordered_map<URI, NodeRow> Nodes;
  /// One-to-one: parent <-> child per link.
  std::unordered_map<LinkId, BidirectionalOneToOneIndex<URI, URI>> One;
  /// Many-to-one: child -> parent per link, with reverse sets.
  std::unordered_map<LinkId, BidirectionalManyToOneIndex<URI, URI>> Many;
};

} // namespace incremental
} // namespace truediff

#endif // TRUEDIFF_INCREMENTAL_TREEDATABASE_H

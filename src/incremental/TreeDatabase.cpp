//===- incremental/TreeDatabase.cpp - Edit-driven tree database ------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "incremental/TreeDatabase.h"

#include "tree/Tree.h"

using namespace truediff;
using namespace truediff::incremental;

void TreeDatabase::link(URI Parent, LinkId Link, URI Child) {
  if (Mode == IndexMode::OneToOne)
    One[Link].put(Parent, Child);
  else
    Many[Link].put(Child, Parent);
}

void TreeDatabase::unlink(URI Parent, LinkId Link, URI Child) {
  if (Mode == IndexMode::OneToOne)
    One[Link].eraseKey(Parent);
  else
    Many[Link].eraseKey(Child);
}

void TreeDatabase::initEmpty() {
  NodeRow Root;
  Root.Tag = Sig.rootTag();
  Nodes.emplace(NullURI, Root);
}

void TreeDatabase::initFromTree(const Tree *T) {
  // Row for the pre-defined root, then the tree below RootLink.
  initEmpty();
  link(NullURI, Sig.rootLink(), T->uri());

  std::function<void(const Tree *)> Walk = [&](const Tree *Node) {
    const TagSignature &TagSig = Sig.signature(Node->tag());
    NodeRow Row;
    Row.Tag = Node->tag();
    for (size_t I = 0, E = Node->numLits(); I != E; ++I)
      Row.Lits.push_back(LitRef{TagSig.Lits[I].Link, Node->lit(I)});
    Nodes.emplace(Node->uri(), std::move(Row));
    for (size_t I = 0, E = Node->arity(); I != E; ++I) {
      link(Node->uri(), TagSig.Kids[I].Link, Node->kid(I)->uri());
      Walk(Node->kid(I));
    }
  };
  Walk(T);
}

void TreeDatabase::applyEdit(const Edit &E) {
  switch (E.Kind) {
  case EditKind::Detach:
    unlink(E.Parent.Uri, E.Link, E.Node.Uri);
    break;
  case EditKind::Attach:
    link(E.Parent.Uri, E.Link, E.Node.Uri);
    break;
  case EditKind::Load: {
    NodeRow Row;
    Row.Tag = E.Node.Tag;
    Row.Lits = E.Lits;
    Nodes.emplace(E.Node.Uri, std::move(Row));
    for (const KidRef &Kid : E.Kids)
      link(E.Node.Uri, Kid.Link, Kid.Uri);
    break;
  }
  case EditKind::Unload:
    for (const KidRef &Kid : E.Kids)
      unlink(E.Node.Uri, Kid.Link, Kid.Uri);
    Nodes.erase(E.Node.Uri);
    break;
  case EditKind::Update: {
    auto It = Nodes.find(E.Node.Uri);
    if (It != Nodes.end())
      It->second.Lits = E.Lits;
    break;
  }
  }
}

void TreeDatabase::applyScript(const EditScript &Script) {
  for (const Edit &E : Script.edits())
    applyEdit(E);
}

const NodeRow *TreeDatabase::node(URI Uri) const {
  auto It = Nodes.find(Uri);
  return It == Nodes.end() ? nullptr : &It->second;
}

std::optional<URI> TreeDatabase::childOf(URI Parent, LinkId Link) const {
  if (Mode == IndexMode::OneToOne) {
    auto It = One.find(Link);
    return It == One.end() ? std::nullopt : It->second.get(Parent);
  }
  auto It = Many.find(Link);
  if (It == Many.end())
    return std::nullopt;
  const std::set<URI> *Kids = It->second.getReverse(Parent);
  if (Kids == nullptr || Kids->empty())
    return std::nullopt;
  // Well-typed scripts keep this set at size <= 1.
  return *Kids->begin();
}

std::optional<URI> TreeDatabase::parentOf(URI Child, LinkId Link) const {
  if (Mode == IndexMode::OneToOne) {
    auto It = One.find(Link);
    return It == One.end() ? std::nullopt : It->second.getReverse(Child);
  }
  auto It = Many.find(Link);
  return It == Many.end() ? std::nullopt : It->second.get(Child);
}

std::optional<URI> TreeDatabase::parentOf(URI Child) const {
  if (Mode == IndexMode::OneToOne) {
    for (const auto &[Link, Index] : One)
      if (auto Parent = Index.getReverse(Child))
        return Parent;
    return std::nullopt;
  }
  for (const auto &[Link, Index] : Many)
    if (auto Parent = Index.get(Child))
      return Parent;
  return std::nullopt;
}

std::vector<URI> TreeDatabase::childrenOf(URI Parent) const {
  std::vector<URI> Out;
  const NodeRow *Row = node(Parent);
  if (Row == nullptr || !Sig.hasTag(Row->Tag))
    return Out;
  for (const KidSpec &Spec : Sig.signature(Row->Tag).Kids)
    if (auto Kid = childOf(Parent, Spec.Link))
      Out.push_back(*Kid);
  return Out;
}

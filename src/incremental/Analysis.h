//===- incremental/Analysis.h - Incremental program analyses ----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two IncA-style incremental analyses over the TreeDatabase, driven by
/// truechange edit scripts (paper Section 6):
///
///  - TagCensus: node counts per constructor; maintained exactly from
///    Load/Unload edits.
///  - CallGraph: for every function, the set of callee names in its body;
///    maintained by recomputing only the functions an edit script
///    touches (dirty-set propagation through the parent index).
///
/// Both analyses offer a recomputeAll() used as the full-reanalysis
/// baseline and as the test oracle.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_INCREMENTAL_ANALYSIS_H
#define TRUEDIFF_INCREMENTAL_ANALYSIS_H

#include "incremental/TreeDatabase.h"

#include <map>
#include <set>
#include <string>

namespace truediff {
namespace incremental {

/// Node counts per tag.
class TagCensus {
public:
  /// Full recomputation from the database.
  void recomputeAll(const TreeDatabase &Db);

  /// Exact incremental maintenance from an edit script.
  void update(const EditScript &Script);

  uint64_t countOf(TagId Tag) const;
  const std::map<TagId, uint64_t> &counts() const { return Counts; }

  bool operator==(const TagCensus &O) const { return Counts == O.Counts; }

private:
  std::map<TagId, uint64_t> Counts;
};

/// Function name -> set of called names (Name callees and Attribute
/// method names).
class CallGraph {
public:
  explicit CallGraph(const SignatureTable &Sig);

  void recomputeAll(const TreeDatabase &Db);

  /// Incremental maintenance: derives the dirty function set from the
  /// script's anchors and recomputes only those functions.
  /// \returns the number of functions recomputed.
  size_t update(const TreeDatabase &Db, const EditScript &Script);

  /// Callees of the function with URI \p Func.
  const std::set<std::string> *calleesOf(URI Func) const;

  size_t numFunctions() const { return Callees.size(); }

  bool operator==(const CallGraph &O) const { return Callees == O.Callees; }

private:
  /// Recomputes one function's callee set by walking its database
  /// subtree.
  void recomputeFunction(const TreeDatabase &Db, URI Func);

  /// The enclosing FuncDef of \p Uri in the database, if any.
  std::optional<URI> enclosingFunction(const TreeDatabase &Db,
                                       URI Uri) const;

  TagId FuncDefTag, CallTag, NameTag, AttributeTag;
  LinkId NameLit, AttrLit, IdLit;
  std::map<URI, std::set<std::string>> Callees;
};

/// Flow-insensitive def-use information per function: for every variable
/// name, the set of defining sites (parameters, assignment targets,
/// for-loop targets) and whether the name is used. This is the kind of
/// dataflow fact IncA maintains incrementally (paper Section 6); like
/// CallGraph it updates by recomputing only dirty functions.
class DefUseAnalysis {
public:
  explicit DefUseAnalysis(const SignatureTable &Sig);

  /// Defs and uses of one function.
  struct FunctionInfo {
    /// Variable name -> defining statement/parameter URIs.
    std::map<std::string, std::set<URI>> Defs;
    /// Names read in the function.
    std::set<std::string> Uses;

    bool operator==(const FunctionInfo &O) const {
      return Defs == O.Defs && Uses == O.Uses;
    }

    /// Names that are used but never defined locally (free variables --
    /// globals, builtins, or bugs).
    std::set<std::string> freeVariables() const;
  };

  void recomputeAll(const TreeDatabase &Db);

  /// Incremental maintenance; returns the number of functions
  /// recomputed.
  size_t update(const TreeDatabase &Db, const EditScript &Script);

  const FunctionInfo *infoOf(URI Func) const;
  size_t numFunctions() const { return Info.size(); }

  bool operator==(const DefUseAnalysis &O) const { return Info == O.Info; }

private:
  void recomputeFunction(const TreeDatabase &Db, URI Func);

  /// Collects the Name ids under a target expression (Name, TupleExpr,
  /// ListExpr) as definitions of \p Site.
  void collectTargetDefs(const TreeDatabase &Db, URI Target, URI Site,
                         FunctionInfo &Out) const;

  /// Walks an expression subtree counting Name reads.
  void collectUses(const TreeDatabase &Db, URI Node, FunctionInfo &Out) const;

  TagId FuncDefTag, ParamTag, AssignTag, AugAssignTag, ForTag, NameTag,
      TupleTag, ListTag, ExprConsTag, ExprNilTag;
  LinkId IdLit, NameLit, TargetLink, ValueLink, IterLink;
  std::map<URI, FunctionInfo> Info;
};

} // namespace incremental
} // namespace truediff

#endif // TRUEDIFF_INCREMENTAL_ANALYSIS_H

//===- incremental/Analysis.cpp - Incremental program analyses -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "incremental/Analysis.h"

#include <deque>
#include <unordered_set>

using namespace truediff;
using namespace truediff::incremental;

//===----------------------------------------------------------------------===//
// TagCensus
//===----------------------------------------------------------------------===//

void TagCensus::recomputeAll(const TreeDatabase &Db) {
  Counts.clear();
  // Walk the database from the virtual root.
  std::deque<URI> Work{NullURI};
  while (!Work.empty()) {
    URI Cur = Work.front();
    Work.pop_front();
    const NodeRow *Row = Db.node(Cur);
    if (Row == nullptr)
      continue;
    if (Cur != NullURI)
      ++Counts[Row->Tag];
    for (URI Kid : Db.childrenOf(Cur))
      Work.push_back(Kid);
  }
}

void TagCensus::update(const EditScript &Script) {
  for (const Edit &E : Script.edits()) {
    if (E.Kind == EditKind::Load)
      ++Counts[E.Node.Tag];
    else if (E.Kind == EditKind::Unload) {
      auto It = Counts.find(E.Node.Tag);
      if (It != Counts.end() && --It->second == 0)
        Counts.erase(It);
    }
  }
}

uint64_t TagCensus::countOf(TagId Tag) const {
  auto It = Counts.find(Tag);
  return It == Counts.end() ? 0 : It->second;
}

//===----------------------------------------------------------------------===//
// CallGraph
//===----------------------------------------------------------------------===//

CallGraph::CallGraph(const SignatureTable &Sig) {
  FuncDefTag = Sig.lookup("FuncDef");
  CallTag = Sig.lookup("Call");
  NameTag = Sig.lookup("Name");
  AttributeTag = Sig.lookup("Attribute");
  NameLit = Sig.lookup("name");
  AttrLit = Sig.lookup("attr");
  IdLit = Sig.lookup("id");
}

void CallGraph::recomputeFunction(const TreeDatabase &Db, URI Func) {
  std::set<std::string> Result;
  const SignatureTable &Sig = Db.signatures();
  std::deque<URI> Work{Func};
  bool First = true;
  while (!Work.empty()) {
    URI Cur = Work.front();
    Work.pop_front();
    const NodeRow *Row = Db.node(Cur);
    if (Row == nullptr)
      continue;
    if (!First && Row->Tag == FuncDefTag) {
      // Nested function: its calls belong to itself.
      continue;
    }
    First = false;
    if (Row->Tag == CallTag) {
      // Callee name: Name id or Attribute attr of the func child.
      if (auto Callee = Db.childOf(Cur, Sig.lookup("func"))) {
        const NodeRow *CalleeRow = Db.node(*Callee);
        if (CalleeRow != nullptr) {
          for (const LitRef &Lit : CalleeRow->Lits) {
            if ((CalleeRow->Tag == NameTag && Lit.Link == IdLit) ||
                (CalleeRow->Tag == AttributeTag && Lit.Link == AttrLit))
              Result.insert(Lit.Value.asString());
          }
        }
      }
    }
    for (URI Kid : Db.childrenOf(Cur))
      Work.push_back(Kid);
  }
  Callees[Func] = std::move(Result);
}

void CallGraph::recomputeAll(const TreeDatabase &Db) {
  Callees.clear();
  std::deque<URI> Work{NullURI};
  while (!Work.empty()) {
    URI Cur = Work.front();
    Work.pop_front();
    const NodeRow *Row = Db.node(Cur);
    if (Row == nullptr)
      continue;
    if (Row->Tag == FuncDefTag)
      recomputeFunction(Db, Cur);
    for (URI Kid : Db.childrenOf(Cur))
      Work.push_back(Kid);
  }
}

std::optional<URI> CallGraph::enclosingFunction(const TreeDatabase &Db,
                                                URI Uri) const {
  std::optional<URI> Cur = Uri;
  while (Cur) {
    const NodeRow *Row = Db.node(*Cur);
    if (Row != nullptr && Row->Tag == FuncDefTag)
      return Cur;
    Cur = Db.parentOf(*Cur);
  }
  return std::nullopt;
}

size_t CallGraph::update(const TreeDatabase &Db, const EditScript &Script) {
  // Anchors: nodes whose surroundings changed. The database has already
  // been patched, so climbing the parent index reflects the new tree.
  std::unordered_set<URI> Anchors;
  for (const Edit &E : Script.edits()) {
    switch (E.Kind) {
    case EditKind::Detach:
    case EditKind::Attach:
      Anchors.insert(E.Parent.Uri);
      Anchors.insert(E.Node.Uri);
      break;
    case EditKind::Load:
    case EditKind::Update:
      Anchors.insert(E.Node.Uri);
      break;
    case EditKind::Unload:
      Callees.erase(E.Node.Uri); // covers deleted functions
      break;
    }
  }

  std::unordered_set<URI> Dirty;
  for (URI Anchor : Anchors) {
    if (Db.node(Anchor) == nullptr)
      continue; // unloaded later in the script
    if (auto Func = enclosingFunction(Db, Anchor))
      Dirty.insert(*Func);
    // Loaded FuncDefs are dirty themselves even without an enclosing one.
    const NodeRow *Row = Db.node(Anchor);
    if (Row != nullptr && Row->Tag == FuncDefTag)
      Dirty.insert(Anchor);
  }

  for (URI Func : Dirty)
    recomputeFunction(Db, Func);
  return Dirty.size();
}

const std::set<std::string> *CallGraph::calleesOf(URI Func) const {
  auto It = Callees.find(Func);
  return It == Callees.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// DefUseAnalysis
//===----------------------------------------------------------------------===//

DefUseAnalysis::DefUseAnalysis(const SignatureTable &Sig) {
  FuncDefTag = Sig.lookup("FuncDef");
  ParamTag = Sig.lookup("Param");
  AssignTag = Sig.lookup("Assign");
  AugAssignTag = Sig.lookup("AugAssign");
  ForTag = Sig.lookup("For");
  NameTag = Sig.lookup("Name");
  TupleTag = Sig.lookup("TupleExpr");
  ListTag = Sig.lookup("ListExpr");
  ExprConsTag = Sig.lookup("ExprCons");
  ExprNilTag = Sig.lookup("ExprNil");
  IdLit = Sig.lookup("id");
  NameLit = Sig.lookup("name");
  TargetLink = Sig.lookup("target");
  ValueLink = Sig.lookup("value");
  IterLink = Sig.lookup("iter");
}

std::set<std::string> DefUseAnalysis::FunctionInfo::freeVariables() const {
  std::set<std::string> Free;
  for (const std::string &Name : Uses)
    if (!Defs.count(Name))
      Free.insert(Name);
  return Free;
}

void DefUseAnalysis::collectTargetDefs(const TreeDatabase &Db, URI Target,
                                       URI Site, FunctionInfo &Out) const {
  const NodeRow *Row = Db.node(Target);
  if (Row == nullptr)
    return;
  if (Row->Tag == NameTag) {
    for (const LitRef &Lit : Row->Lits)
      if (Lit.Link == IdLit)
        Out.Defs[Lit.Value.asString()].insert(Site);
    return;
  }
  if (Row->Tag == TupleTag || Row->Tag == ListTag ||
      Row->Tag == ExprConsTag) {
    // Tuple/list targets keep their elements behind the typed cons
    // encoding; descend through the spine.
    for (URI Kid : Db.childrenOf(Target))
      collectTargetDefs(Db, Kid, Site, Out);
    return;
  }
  if (Row->Tag == ExprNilTag)
    return;
  // Attribute/Subscript targets define no local variable, but their base
  // expressions are reads.
  collectUses(Db, Target, Out);
}

void DefUseAnalysis::collectUses(const TreeDatabase &Db, URI Node,
                                 FunctionInfo &Out) const {
  const NodeRow *Row = Db.node(Node);
  if (Row == nullptr || Row->Tag == FuncDefTag)
    return; // nested functions own their reads
  if (Row->Tag == NameTag) {
    for (const LitRef &Lit : Row->Lits)
      if (Lit.Link == IdLit)
        Out.Uses.insert(Lit.Value.asString());
    return;
  }
  for (URI Kid : Db.childrenOf(Node))
    collectUses(Db, Kid, Out);
}

void DefUseAnalysis::recomputeFunction(const TreeDatabase &Db, URI Func) {
  FunctionInfo Result;
  std::deque<URI> Work{Func};
  bool First = true;
  while (!Work.empty()) {
    URI Cur = Work.front();
    Work.pop_front();
    const NodeRow *Row = Db.node(Cur);
    if (Row == nullptr)
      continue;
    if (!First && Row->Tag == FuncDefTag)
      continue; // nested function: separate scope
    First = false;

    if (Row->Tag == ParamTag) {
      for (const LitRef &Lit : Row->Lits)
        if (Lit.Link == NameLit)
          Result.Defs[Lit.Value.asString()].insert(Cur);
      continue;
    }
    if (Row->Tag == AssignTag || Row->Tag == AugAssignTag) {
      if (auto Target = Db.childOf(Cur, TargetLink))
        collectTargetDefs(Db, *Target, Cur, Result);
      if (auto Value = Db.childOf(Cur, ValueLink))
        collectUses(Db, *Value, Result);
      // AugAssign also *reads* its target.
      if (Row->Tag == AugAssignTag)
        if (auto Target = Db.childOf(Cur, TargetLink))
          collectUses(Db, *Target, Result);
      continue;
    }
    if (Row->Tag == ForTag) {
      if (auto Target = Db.childOf(Cur, TargetLink))
        collectTargetDefs(Db, *Target, Cur, Result);
      if (auto Iter = Db.childOf(Cur, IterLink))
        collectUses(Db, *Iter, Result);
      // The body continues through the worklist below.
      for (URI Kid : Db.childrenOf(Cur)) {
        if (Kid != Db.childOf(Cur, TargetLink) &&
            Kid != Db.childOf(Cur, IterLink))
          Work.push_back(Kid);
      }
      continue;
    }
    if (Row->Tag == NameTag) {
      for (const LitRef &Lit : Row->Lits)
        if (Lit.Link == IdLit)
          Result.Uses.insert(Lit.Value.asString());
      continue;
    }
    for (URI Kid : Db.childrenOf(Cur))
      Work.push_back(Kid);
  }
  Info[Func] = std::move(Result);
}

void DefUseAnalysis::recomputeAll(const TreeDatabase &Db) {
  Info.clear();
  std::deque<URI> Work{NullURI};
  while (!Work.empty()) {
    URI Cur = Work.front();
    Work.pop_front();
    const NodeRow *Row = Db.node(Cur);
    if (Row == nullptr)
      continue;
    if (Row->Tag == FuncDefTag)
      recomputeFunction(Db, Cur);
    for (URI Kid : Db.childrenOf(Cur))
      Work.push_back(Kid);
  }
}

size_t DefUseAnalysis::update(const TreeDatabase &Db,
                              const EditScript &Script) {
  std::unordered_set<URI> Anchors;
  for (const Edit &E : Script.edits()) {
    switch (E.Kind) {
    case EditKind::Detach:
    case EditKind::Attach:
      Anchors.insert(E.Parent.Uri);
      Anchors.insert(E.Node.Uri);
      break;
    case EditKind::Load:
    case EditKind::Update:
      Anchors.insert(E.Node.Uri);
      break;
    case EditKind::Unload:
      Info.erase(E.Node.Uri);
      break;
    }
  }

  std::unordered_set<URI> Dirty;
  for (URI Anchor : Anchors) {
    const NodeRow *Row = Db.node(Anchor);
    if (Row == nullptr)
      continue;
    std::optional<URI> Cur = Anchor;
    while (Cur) {
      const NodeRow *CurRow = Db.node(*Cur);
      if (CurRow != nullptr && CurRow->Tag == FuncDefTag) {
        Dirty.insert(*Cur);
        break;
      }
      Cur = Db.parentOf(*Cur);
    }
    if (Row->Tag == FuncDefTag)
      Dirty.insert(Anchor);
  }

  for (URI Func : Dirty)
    recomputeFunction(Db, Func);
  return Dirty.size();
}

const DefUseAnalysis::FunctionInfo *DefUseAnalysis::infoOf(URI Func) const {
  auto It = Info.find(Func);
  return It == Info.end() ? nullptr : &It->second;
}

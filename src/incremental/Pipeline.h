//===- incremental/Pipeline.h - Reparse-diff-update driver ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's IncA driver pipeline (Section 6): after a code change,
/// reparse the source file, run truediff against the previous tree, and
/// process the edit script to update the fact database and the analyses
/// incrementally -- instead of reanalyzing the full AST.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_INCREMENTAL_PIPELINE_H
#define TRUEDIFF_INCREMENTAL_PIPELINE_H

#include "incremental/Analysis.h"
#include "incremental/TreeDatabase.h"
#include "python/Python.h"
#include "truediff/TrueDiff.h"

#include <memory>
#include <optional>
#include <string>

namespace truediff {
namespace incremental {

/// Holds the current tree, database, and analyses for one source file,
/// and advances them commit by commit.
class IncrementalPipeline {
public:
  explicit IncrementalPipeline(IndexMode Mode);

  /// Parses the initial source and builds database and analyses from
  /// scratch. Returns false on parse errors.
  bool init(const std::string &Source);

  /// Timings of one incremental step, in milliseconds.
  struct StepStats {
    double ParseMs = 0;
    double DiffMs = 0;
    double DbMs = 0;
    double AnalysisMs = 0;
    size_t EditCount = 0;
    size_t PatchSize = 0;
    size_t DirtyFunctions = 0;
    size_t TotalFunctions = 0;

    double totalMs() const { return ParseMs + DiffMs + DbMs + AnalysisMs; }
  };

  /// Processes one commit: reparse, diff, update database and analyses.
  /// Returns std::nullopt on parse errors.
  std::optional<StepStats> step(const std::string &NewSource);

  /// Timings of the from-scratch baseline.
  struct FullStats {
    double ParseMs = 0;
    /// Database construction plus full analysis recomputation.
    double BuildMs = 0;
    double totalMs() const { return ParseMs + BuildMs; }
  };

  /// Baseline: parse \p Source and recompute database and analyses from
  /// scratch. ParseMs is reported separately because both pipelines must
  /// parse; the paper's comparison concerns the analysis work.
  FullStats fullReanalysis(const std::string &Source);

  const TreeDatabase &database() const { return *Db; }
  const TagCensus &census() const { return Census; }
  const CallGraph &callGraph() const { return Calls; }
  const DefUseAnalysis &defUse() const { return DefUse; }
  const Tree *currentTree() const { return Current; }

private:
  SignatureTable Sig;
  std::unique_ptr<TreeContext> Ctx;
  std::unique_ptr<TreeDatabase> Db;
  TagCensus Census;
  CallGraph Calls;
  DefUseAnalysis DefUse;
  IndexMode Mode;
  Tree *Current = nullptr;
};

} // namespace incremental
} // namespace truediff

#endif // TRUEDIFF_INCREMENTAL_PIPELINE_H

//===- hdiff/HDiff.cpp - hdiff-style typed pattern diffing -----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hdiff/HDiff.h"

#include <cassert>
#include <functional>
#include <unordered_set>

using namespace truediff;
using namespace truediff::hdiff;

namespace {

void forEachConst(const Tree *T, const std::function<void(const Tree *)> &Fn) {
  Fn(T);
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    forEachConst(T->kid(I), Fn);
}

size_t countCtors(const PatchNode *N) {
  if (N->IsMetaVar)
    return 0;
  size_t Count = 1;
  for (const PatchNode *Kid : N->Kids)
    Count += countCtors(Kid);
  return Count;
}

void collectVars(const PatchNode *N, std::unordered_set<int> &Vars) {
  if (N->IsMetaVar) {
    Vars.insert(N->Var);
    return;
  }
  for (const PatchNode *Kid : N->Kids)
    collectVars(Kid, Vars);
}

std::string nodeToString(const SignatureTable &Sig, const PatchNode *N) {
  if (N->IsMetaVar) {
    std::string Var = "#";
    Var += std::to_string(N->Var);
    return Var;
  }
  std::string Out = "(";
  Out += Sig.name(N->Tag);
  for (const PatchNode *Kid : N->Kids) {
    Out += ' ';
    Out += nodeToString(Sig, Kid);
  }
  for (const Literal &L : N->Lits) {
    Out += ' ';
    Out += L.toString();
  }
  Out += ')';
  return Out;
}

} // namespace

size_t HDiffPatch::numConstructors() const {
  return countCtors(Deletion) + countCtors(Insertion);
}

size_t HDiffPatch::numMetaVars() const {
  std::unordered_set<int> Vars;
  collectVars(Deletion, Vars);
  collectVars(Insertion, Vars);
  return Vars.size();
}

std::string HDiffPatch::toString(const SignatureTable &Sig) const {
  return nodeToString(Sig, Deletion) + " ~> " + nodeToString(Sig, Insertion);
}

PatchNode *HDiff::makeVar(int Var) {
  Arena.emplace_back();
  PatchNode *N = &Arena.back();
  N->IsMetaVar = true;
  N->Var = Var;
  return N;
}

PatchNode *HDiff::makeCtor(const Tree *T, std::vector<PatchNode *> Kids) {
  Arena.emplace_back();
  PatchNode *N = &Arena.back();
  N->Tag = T->tag();
  N->Kids = std::move(Kids);
  N->Lits = T->lits();
  return N;
}

PatchNode *HDiff::extract(const Tree *T) {
  if (T->height() >= Opts.MinSharedHeight) {
    auto It = Shared.find(keyOf(T));
    if (It != Shared.end())
      return makeVar(It->second.Var);
  }
  std::vector<PatchNode *> Kids;
  Kids.reserve(T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    Kids.push_back(extract(T->kid(I)));
  return makeCtor(T, std::move(Kids));
}

PatchNode *HDiff::extractOneLevel(const Tree *T) {
  std::vector<PatchNode *> Kids;
  Kids.reserve(T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    Kids.push_back(extract(T->kid(I)));
  return makeCtor(T, std::move(Kids));
}

PatchNode *HDiff::copyNode(const PatchNode *N) {
  if (N->IsMetaVar)
    return makeVar(N->Var);
  Arena.emplace_back();
  PatchNode *Copy = &Arena.back();
  Copy->Tag = N->Tag;
  Copy->Lits = N->Lits;
  Copy->Kids.reserve(N->Kids.size());
  for (const PatchNode *Kid : N->Kids)
    Copy->Kids.push_back(copyNode(Kid));
  return Copy;
}

PatchNode *HDiff::substVar(PatchNode *N, int Var,
                           const PatchNode *Replacement) {
  if (N->IsMetaVar)
    return N->Var == Var ? copyNode(Replacement) : N;
  for (PatchNode *&Kid : N->Kids)
    Kid = substVar(Kid, Var, Replacement);
  return N;
}

void HDiff::close(HDiffPatch &Patch) {
  // Variable -> representative source tree, for expansion.
  std::unordered_map<int, const Tree *> ReprOf;
  for (const auto &[Key, Entry] : Shared)
    ReprOf.emplace(Entry.Var, Entry.Repr);

  for (;;) {
    std::unordered_set<int> Bound, Used;
    collectVars(Patch.Deletion, Bound);
    collectVars(Patch.Insertion, Used);
    std::unordered_set<int> Missing;
    for (int V : Used)
      if (!Bound.count(V))
        Missing.insert(V);
    if (Missing.empty())
      return;

    // Find a bound variable whose tree hides an occurrence of a missing
    // variable's tree, and expand it one constructor level on both sides.
    int Expand = -1;
    for (int W : Bound) {
      const Tree *Repr = ReprOf.at(W);
      bool Hides = false;
      forEachConst(Repr, [&](const Tree *Sub) {
        if (Sub == Repr || Sub->height() < Opts.MinSharedHeight)
          return;
        auto It = Shared.find(keyOf(Sub));
        if (It != Shared.end() && Missing.count(It->second.Var))
          Hides = true;
      });
      if (Hides) {
        Expand = W;
        break;
      }
    }
    assert(Expand >= 0 && "missing variable not hidden in any bound one");
    if (Expand < 0)
      return; // defensive: give up closure; apply() may then fail

    PatchNode *Replacement = extractOneLevel(ReprOf.at(Expand));
    Patch.Deletion = substVar(Patch.Deletion, Expand, Replacement);
    Patch.Insertion = substVar(Patch.Insertion, Expand, Replacement);
  }
}

HDiffPatch HDiff::diff(const Tree *Src, const Tree *Dst) {
  Shared.clear();
  NextVar = 0;

  // Sharing map: subtrees (of sufficient height) occurring in both trees
  // get a metavariable; equality is hash equality, as in truediff.
  std::unordered_map<TreeKey, const Tree *, TreeKeyHash> SrcOcc;
  forEachConst(Src, [&](const Tree *T) {
    if (T->height() >= Opts.MinSharedHeight)
      SrcOcc.emplace(keyOf(T), T);
  });
  forEachConst(Dst, [&](const Tree *T) {
    if (T->height() < Opts.MinSharedHeight)
      return;
    auto It = SrcOcc.find(keyOf(T));
    if (It != SrcOcc.end() && !Shared.count(It->first))
      Shared.emplace(It->first, SharedEntry{NextVar++, It->second});
  });

  HDiffPatch Patch;
  Patch.Deletion = extract(Src);
  Patch.Insertion = extract(Dst);
  close(Patch);
  return Patch;
}

bool HDiff::match(const PatchNode *Pattern, const Tree *T,
                  std::unordered_map<int, const Tree *> &Bindings) const {
  if (Pattern->IsMetaVar) {
    auto [It, Inserted] = Bindings.emplace(Pattern->Var, T);
    if (Inserted)
      return true;
    // Repeated variable: occurrences must bind equal trees.
    return It->second->structureHash() == T->structureHash() &&
           It->second->literalHash() == T->literalHash();
  }
  if (Pattern->Tag != T->tag() || Pattern->Kids.size() != T->arity() ||
      Pattern->Lits != T->lits())
    return false;
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    if (!match(Pattern->Kids[I], T->kid(I), Bindings))
      return false;
  return true;
}

Tree *HDiff::instantiate(
    const PatchNode *Template,
    const std::unordered_map<int, const Tree *> &Bindings) {
  if (Template->IsMetaVar) {
    auto It = Bindings.find(Template->Var);
    if (It == Bindings.end())
      return nullptr; // unbound variable: closure failed
    return Ctx.deepCopy(It->second);
  }
  std::vector<Tree *> Kids;
  Kids.reserve(Template->Kids.size());
  for (const PatchNode *Kid : Template->Kids) {
    Tree *NewKid = instantiate(Kid, Bindings);
    if (NewKid == nullptr)
      return nullptr;
    Kids.push_back(NewKid);
  }
  return Ctx.make(Template->Tag, std::move(Kids), Template->Lits);
}

Tree *HDiff::apply(const HDiffPatch &Patch, const Tree *T) {
  std::unordered_map<int, const Tree *> Bindings;
  if (!match(Patch.Deletion, T, Bindings))
    return nullptr;
  return instantiate(Patch.Insertion, Bindings);
}

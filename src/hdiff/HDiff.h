//===- hdiff/HDiff.h - hdiff-style typed pattern diffing --------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch implementation of the hdiff algorithm (Miraldo &
/// Swierstra, ICFP 2019), the typed baseline of the paper's evaluation.
/// A patch is a tree rewriting
///
///   (deletion context  { insertion context)
///
/// where shared subtrees -- identified by cryptographic hashes, like in
/// truediff -- are replaced by metavariables #n. The deletion context is
/// matched against the source tree to bind the metavariables; the
/// insertion context is a template producing the target tree.
///
/// The paper's criticism (Sections 1 and 7) is that such patches mention
/// every constructor on the spine from the root to each change, so their
/// size grows with the trees; the patch-size metric numConstructors()
/// reproduces that measurement (constructors mentioned in the rewriting).
///
/// After extraction, a closure pass restores well-scopedness: a
/// metavariable used by the insertion context but hidden inside a larger
/// shared tree on the deletion side forces that larger variable to be
/// expanded one constructor level (both sides), until every used variable
/// is bound.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_HDIFF_HDIFF_H
#define TRUEDIFF_HDIFF_HDIFF_H

#include "tree/Tree.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace hdiff {

/// A node of a context: either a metavariable or a constructor.
struct PatchNode {
  bool IsMetaVar = false;
  int Var = -1;
  TagId Tag = InvalidSymbol;
  std::vector<PatchNode *> Kids;
  std::vector<Literal> Lits;
};

struct HDiffOptions {
  /// Minimum height of shared subtrees; hdiff does not share trees below
  /// a height threshold to avoid degenerate sharing of tiny leaves.
  uint32_t MinSharedHeight = 2;
};

/// An hdiff patch: deletion context, insertion context, and the trees
/// bound to each metavariable (for expansion and debugging).
struct HDiffPatch {
  PatchNode *Deletion = nullptr;
  PatchNode *Insertion = nullptr;

  /// The paper's patch-size metric for hdiff: the number of constructors
  /// mentioned in the tree rewriting (metavariables are free).
  size_t numConstructors() const;

  /// Number of distinct metavariables.
  size_t numMetaVars() const;

  /// Renders "(Add (#0) (Mul (#1) (#2))) ~> (Add (#2) ...)".
  std::string toString(const SignatureTable &Sig) const;
};

/// hdiff diffing and patching session; owns the patch nodes it creates.
class HDiff {
public:
  explicit HDiff(TreeContext &Ctx, HDiffOptions Opts = HDiffOptions())
      : Ctx(Ctx), Sig(Ctx.signatures()), Opts(Opts) {}

  /// Computes the patch transforming \p Src into \p Dst. Neither tree is
  /// modified.
  HDiffPatch diff(const Tree *Src, const Tree *Dst);

  /// Applies a patch: matches the deletion context against \p Tree,
  /// binds metavariables (checking consistency for repeated variables),
  /// and instantiates the insertion context with fresh nodes in the
  /// context. Returns nullptr if the deletion context does not match.
  Tree *apply(const HDiffPatch &Patch, const Tree *Tree);

private:
  /// Key identifying equal trees: structure and literal hash together.
  struct TreeKey {
    Digest Struct, Lit;
    bool operator==(const TreeKey &O) const {
      return Struct == O.Struct && Lit == O.Lit;
    }
  };
  struct TreeKeyHash {
    size_t operator()(const TreeKey &K) const {
      return K.Struct.prefixWord() * 31 + K.Lit.prefixWord();
    }
  };
  static TreeKey keyOf(const Tree *T) {
    return TreeKey{T->structureHash(), T->literalHash()};
  }

  struct SharedEntry {
    int Var;
    const Tree *Repr; // representative occurrence (from the source tree)
  };

  PatchNode *makeVar(int Var);
  PatchNode *makeCtor(const Tree *T, std::vector<PatchNode *> Kids);

  /// Extracts a context: shared subtrees become metavariables.
  PatchNode *extract(const Tree *T);

  /// Extracts one constructor level of \p T, sharing the kids.
  PatchNode *extractOneLevel(const Tree *T);

  /// Replaces every occurrence of metavariable \p Var in \p N by a fresh
  /// copy of \p Replacement.
  PatchNode *substVar(PatchNode *N, int Var, const PatchNode *Replacement);

  PatchNode *copyNode(const PatchNode *N);

  /// Closure: expands deletion-hidden variables until the insertion
  /// context only uses bound variables.
  void close(HDiffPatch &Patch);

  bool match(const PatchNode *Pattern, const Tree *T,
             std::unordered_map<int, const Tree *> &Bindings) const;
  Tree *instantiate(const PatchNode *Template,
                    const std::unordered_map<int, const Tree *> &Bindings);

  TreeContext &Ctx;
  const SignatureTable &Sig;
  HDiffOptions Opts;
  std::deque<PatchNode> Arena;
  std::unordered_map<TreeKey, SharedEntry, TreeKeyHash> Shared;
  int NextVar = 0;
};

} // namespace hdiff
} // namespace truediff

#endif // TRUEDIFF_HDIFF_HDIFF_H

//===- client/Client.cpp - Resilient textual-protocol client ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "client/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <optional>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace truediff;
using namespace truediff::client;

namespace {

/// Splits "host:port"; false on malformed input.
bool splitEndpoint(const std::string &Ep, std::string &Host,
                   std::string &Port) {
  size_t Colon = Ep.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Ep.size())
    return false;
  Host = Ep.substr(0, Colon);
  Port = Ep.substr(Colon + 1);
  return true;
}

/// Non-blocking connect bounded by \p TimeoutMs. Returns the fd or -1.
int connectWithTimeout(const std::string &Host, const std::string &Port,
                       unsigned TimeoutMs) {
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  if (getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res) != 0 ||
      Res == nullptr)
    return -1;
  int Fd = ::socket(Res->ai_family, Res->ai_socktype, Res->ai_protocol);
  if (Fd < 0) {
    freeaddrinfo(Res);
    return -1;
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int Rc = ::connect(Fd, Res->ai_addr, Res->ai_addrlen);
  freeaddrinfo(Res);
  if (Rc != 0 && errno != EINPROGRESS) {
    ::close(Fd);
    return -1;
  }
  if (Rc != 0) {
    pollfd P{Fd, POLLOUT, 0};
    if (::poll(&P, 1, static_cast<int>(TimeoutMs)) <= 0) {
      ::close(Fd);
      return -1;
    }
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len) != 0 || Err != 0) {
      ::close(Fd);
      return -1;
    }
  }
  return Fd; // left non-blocking; every I/O below is poll()-gated
}

std::optional<uint64_t> parseU64(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  return V;
}

} // namespace

ResilientClient::ResilientClient(Config C)
    : Cfg(std::move(C)), Rng(Cfg.JitterSeed) {}

ResilientClient::~ResilientClient() { dropConn(); }

void ResilientClient::dropConn() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

const std::string &ResilientClient::currentEndpoint() const {
  static const std::string Empty;
  return Cur < Cfg.Endpoints.size() ? Cfg.Endpoints[Cur] : Empty;
}

void ResilientClient::forgetVersion(uint64_t Doc) { KnownVersion.erase(Doc); }

void ResilientClient::pointAt(const std::string &Endpoint) {
  for (size_t I = 0; I != Cfg.Endpoints.size(); ++I) {
    if (Cfg.Endpoints[I] == Endpoint) {
      if (I != Cur) {
        Cur = I;
        dropConn();
      }
      return;
    }
  }
  Cfg.Endpoints.push_back(Endpoint);
  Cur = Cfg.Endpoints.size() - 1;
  dropConn();
}

bool ResilientClient::connectCurrent() {
  if (Fd >= 0)
    return true;
  if (Cfg.Endpoints.empty())
    return false;
  std::string Host, Port;
  if (!splitEndpoint(Cfg.Endpoints[Cur], Host, Port))
    return false;
  Fd = connectWithTimeout(Host, Port, Cfg.RequestTimeoutMs);
  if (Fd < 0)
    ++Counters.ConnectFailures;
  return Fd >= 0;
}

/// Sends \p Line (newline appended) and reads one framed response (up to
/// the "." terminator line) into \p RespOut. False on any socket error
/// or deadline overrun -- the connection is dropped, so the next attempt
/// reconnects from a clean slate.
bool ResilientClient::exchange(const std::string &Line, std::string &RespOut) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Cfg.RequestTimeoutMs);
  auto RemainMs = [&]() -> int {
    auto R = std::chrono::duration_cast<std::chrono::milliseconds>(
                 Deadline - Clock::now())
                 .count();
    return R > 0 ? static_cast<int>(R) : 0;
  };

  std::string Out = Line;
  Out += '\n';
  size_t Sent = 0;
  while (Sent != Out.size()) {
    pollfd P{Fd, POLLOUT, 0};
    int R = RemainMs();
    if (R == 0 || ::poll(&P, 1, R) <= 0) {
      ++Counters.Timeouts;
      dropConn();
      return false;
    }
    ssize_t N = ::send(Fd, Out.data() + Sent, Out.size() - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        continue;
      dropConn();
      return false;
    }
    Sent += static_cast<size_t>(N);
  }

  RespOut.clear();
  char Buf[4096];
  for (;;) {
    // Frame complete? The terminator is a "." alone on a line.
    if (RespOut == ".\n" ||
        (RespOut.size() >= 3 &&
         RespOut.compare(RespOut.size() - 3, 3, "\n.\n") == 0))
      return true;
    pollfd P{Fd, POLLIN, 0};
    int R = RemainMs();
    if (R == 0 || ::poll(&P, 1, R) <= 0) {
      ++Counters.Timeouts;
      dropConn();
      return false;
    }
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0) {
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
        continue;
      dropConn();
      return false;
    }
    RespOut.append(Buf, static_cast<size_t>(N));
  }
}

void ResilientClient::backoff(unsigned Attempt, uint64_t RetryAfterMs) {
  // Capped exponential with full jitter; a server-provided hint is the
  // floor (the server knows how long its queue needs).
  uint64_t Exp = Cfg.BackoffBaseMs;
  for (unsigned I = 0; I < Attempt && Exp < Cfg.BackoffCapMs; ++I)
    Exp *= 2;
  if (Exp > Cfg.BackoffCapMs)
    Exp = Cfg.BackoffCapMs;
  uint64_t Jittered = Exp != 0 ? (Rng() % Exp) + 1 : 0;
  uint64_t Wait = std::max(Jittered, RetryAfterMs);
  Counters.BackoffMsTotal += Wait;
  if (Wait != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(Wait));
}

ResilientClient::ParsedStatus
ResilientClient::parseStatusLine(const std::string &Line) {
  ParsedStatus S;
  if (Line.compare(0, 3, "ok ") == 0 || Line == "ok") {
    S.Ok = true;
  } else if (Line.compare(0, 4, "err ") != 0) {
    S.Error = "malformed response: " + Line;
    return S;
  }
  // Trailing key=value markers are additive (Wire.h); scan tokens from
  // the end and stop at the first non-marker, which closes the message.
  size_t MsgEnd = Line.size();
  size_t End = Line.size();
  while (End > 0) {
    size_t Sp = Line.rfind(' ', End - 1);
    size_t TokStart = Sp == std::string::npos ? 0 : Sp + 1;
    std::string Tok = Line.substr(TokStart, End - TokStart);
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos || Eq == 0)
      break;
    std::string Key = Tok.substr(0, Eq);
    std::string Val = Tok.substr(Eq + 1);
    bool Known = true;
    if (Key == "version") {
      if (auto V = parseU64(Val))
        S.Version = *V;
    } else if (Key == "code") {
      S.Code = Val;
    } else if (Key == "retry_after_ms") {
      if (auto V = parseU64(Val))
        S.RetryAfterMs = *V;
    } else if (Key == "leader") {
      S.Leader = Val;
    } else if (Key == "edits" || Key == "coalesced" || Key == "size" ||
               Key == "fallback") {
      // ok-line metrics; recognised so the scan keeps walking left.
    } else {
      Known = false;
    }
    if (!Known)
      break;
    MsgEnd = TokStart;
    End = Sp == std::string::npos ? 0 : Sp;
  }
  if (!S.Ok) {
    while (MsgEnd > 4 && Line[MsgEnd - 1] == ' ')
      --MsgEnd;
    S.Error = Line.substr(4, MsgEnd > 4 ? MsgEnd - 4 : 0);
  }
  return S;
}

ResilientClient::Result ResilientClient::request(const std::string &Line,
                                                 bool IsWrite) {
  ++Counters.Requests;
  Result Out;
  for (unsigned Attempt = 0; Attempt < Cfg.MaxAttempts; ++Attempt) {
    Out.Attempts = Attempt + 1;
    ++Counters.Attempts;
    if (!connectCurrent()) {
      // Rotate: the endpoint may simply be dead.
      if (!Cfg.Endpoints.empty())
        Cur = (Cur + 1) % Cfg.Endpoints.size();
      backoff(Attempt, 0);
      continue;
    }
    std::string Resp;
    if (!exchange(Line, Resp)) {
      // The endpoint accepted the connection but never answered -- the
      // signature of a partitioned or dying leader. Rotate: a wedged
      // endpoint must not absorb the whole attempt budget.
      if (!Cfg.Endpoints.empty())
        Cur = (Cur + 1) % Cfg.Endpoints.size();
      backoff(Attempt, 0);
      continue;
    }
    size_t Eol = Resp.find('\n');
    ParsedStatus S = parseStatusLine(Resp.substr(0, Eol));
    Out.Ok = S.Ok;
    Out.Error = S.Error;
    Out.Code = S.Code;
    Out.Version = S.Version;
    if (Eol != std::string::npos) {
      // Everything between the status line and the "." terminator.
      size_t PayloadEnd = Resp.rfind("\n.\n");
      Out.Payload = PayloadEnd != std::string::npos && PayloadEnd > Eol
                        ? Resp.substr(Eol + 1, PayloadEnd - Eol)
                        : std::string();
    }
    if (S.Ok)
      return Out;
    if (S.Code == "not_leader" && IsWrite) {
      ++Counters.Redirects;
      if (Cfg.FollowRedirects && !S.Leader.empty())
        pointAt(S.Leader);
      else if (!Cfg.Endpoints.empty()) {
        Cur = (Cur + 1) % Cfg.Endpoints.size();
        dropConn();
      }
      backoff(Attempt, S.RetryAfterMs);
      continue;
    }
    if (S.Code == "shed" || S.Code == "backpressure") {
      backoff(Attempt, S.RetryAfterMs);
      continue;
    }
    return Out; // a typed, non-retryable error is the answer
  }
  if (Out.Error.empty()) {
    Out.Ok = false;
    Out.Error = "request failed after " + std::to_string(Out.Attempts) +
                " attempts";
    Out.Code = "unavailable";
  }
  return Out;
}

ResilientClient::Result ResilientClient::open(uint64_t Doc,
                                              const std::string &SExpr,
                                              const std::string &Author) {
  std::string Line = "open " + std::to_string(Doc);
  if (!Author.empty())
    Line += " author=" + Author;
  Line += " " + SExpr;
  Result R = request(Line, /*IsWrite=*/true);
  if (R.Ok)
    KnownVersion[Doc] = R.Version;
  else if (R.Code == "document_exists")
    // A retried open whose first copy applied: adopt the live version.
    KnownVersion.erase(Doc);
  return R;
}

ResilientClient::Result ResilientClient::submit(uint64_t Doc,
                                                const std::string &SExpr,
                                                const std::string &Author) {
  auto It = KnownVersion.find(Doc);
  if (It == KnownVersion.end()) {
    Result G = get(Doc);
    if (!G.Ok)
      return G;
    It = KnownVersion.find(Doc);
  }
  uint64_t Expect = It->second;
  std::string Line = "submit " + std::to_string(Doc);
  if (!Author.empty())
    Line += " author=" + Author;
  Line += " expect=" + std::to_string(Expect);
  Line += " " + SExpr;
  Result R = request(Line, /*IsWrite=*/true);
  if (R.Ok) {
    KnownVersion[Doc] = R.Version;
    return R;
  }
  if (R.Code == "cas_mismatch") {
    KnownVersion[Doc] = R.Version;
    if (R.Version == Expect + 1) {
      // Our timed-out first copy applied; the retry bounced off the CAS
      // guard. Exactly-once achieved -- report success.
      ++Counters.CasDedups;
      R.Ok = true;
      R.Deduped = true;
      R.Error.clear();
      R.Code.clear();
    }
  }
  return R;
}

ResilientClient::Result ResilientClient::get(uint64_t Doc) {
  Result R = request("get " + std::to_string(Doc), /*IsWrite=*/false);
  if (R.Ok)
    KnownVersion[Doc] = R.Version;
  return R;
}

ResilientClient::Result ResilientClient::rollback(uint64_t Doc) {
  Result R =
      request("rollback " + std::to_string(Doc), /*IsWrite=*/true);
  if (R.Ok)
    KnownVersion[Doc] = R.Version;
  return R;
}

ResilientClient::Result ResilientClient::stats() {
  return request("stats", /*IsWrite=*/false);
}

ResilientClient::Result ResilientClient::health() {
  return request("health", /*IsWrite=*/false);
}

//===- client/Client.h - Resilient textual-protocol client ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A client for the textual wire protocol (service/Wire.h) built to
/// survive a cluster mid-failover: per-request timeouts, capped
/// exponential backoff with deterministic jitter, redirect-following on
/// not_leader (the err line's leader= hint, falling back to endpoint
/// rotation), and version-CAS-guarded submits so a retried write is
/// never applied twice.
///
/// The exactly-once construction: every submit carries expect=<v>, the
/// client's last known version of the document. Retrying after a
/// timeout is at-least-once delivery; the store's CAS guard turns that
/// into at-most-once application; and a retry whose first copy did apply
/// comes back as cas_mismatch with version == expect+1 -- which the
/// client recognises as its own write and reports as success. The one
/// assumption is a single writer per document (the mismatch would
/// otherwise be ambiguous); concurrent writers surface as a clean
/// cas_mismatch error instead of silent double application.
///
/// Blocking sockets, deliberately: the client is the test harness's and
/// benchmark's view of the cluster, and sequential request/response with
/// poll()-bounded waits is the simplest thing that cannot deadlock. Not
/// thread-safe; one instance per thread.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_CLIENT_CLIENT_H
#define TRUEDIFF_CLIENT_CLIENT_H

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace client {

class ResilientClient {
public:
  struct Config {
    /// "host:port" endpoints, tried in order on connection failure.
    /// Redirect hints are appended as they are learned.
    std::vector<std::string> Endpoints;
    /// Per-attempt budget: connect, send, and receive each bounded.
    unsigned RequestTimeoutMs = 2000;
    /// Attempts per request() before giving up (connects, timeouts, and
    /// not_leader redirects all consume attempts).
    unsigned MaxAttempts = 10;
    /// Capped exponential backoff between retries, full jitter.
    unsigned BackoffBaseMs = 5;
    unsigned BackoffCapMs = 200;
    /// Deterministic jitter stream (tests replay schedules by seed).
    uint64_t JitterSeed = 1;
    /// Chase leader= hints on not_leader (otherwise just rotate).
    bool FollowRedirects = true;
  };

  struct Result {
    bool Ok = false;
    /// err line's message (markers stripped).
    std::string Error;
    /// code= marker ("" when absent).
    std::string Code;
    /// ok: the new version; err cas_mismatch: the current version.
    uint64_t Version = 0;
    /// Payload lines between the status line and the "." terminator.
    std::string Payload;
    /// Attempts consumed (1 = first try succeeded).
    unsigned Attempts = 0;
    /// The submit was acknowledged via CAS dedup: the first copy of a
    /// retried write had already applied.
    bool Deduped = false;
  };

  struct Stats {
    uint64_t Requests = 0;
    uint64_t Attempts = 0;
    uint64_t Timeouts = 0;
    uint64_t ConnectFailures = 0;
    uint64_t Redirects = 0;
    uint64_t CasDedups = 0;
    uint64_t BackoffMsTotal = 0;
  };

  explicit ResilientClient(Config C);
  ~ResilientClient();

  ResilientClient(const ResilientClient &) = delete;
  ResilientClient &operator=(const ResilientClient &) = delete;

  /// open <doc> [author=..] <sexpr>. On success the known version is 0.
  Result open(uint64_t Doc, const std::string &SExpr,
              const std::string &Author = std::string());

  /// Exactly-once submit: expect= travels with every attempt. If the
  /// client holds no version for \p Doc yet, it learns one with a get
  /// first.
  Result submit(uint64_t Doc, const std::string &SExpr,
                const std::string &Author = std::string());

  Result get(uint64_t Doc);
  Result rollback(uint64_t Doc);
  Result stats();
  Result health();

  /// One framed request/response exchange with retry/redirect/backoff.
  /// \p IsWrite gates not_leader handling (reads on a follower succeed
  /// and never redirect).
  Result request(const std::string &Line, bool IsWrite);

  const Stats &clientStats() const { return Counters; }

  /// The endpoint the last successful exchange used (test observability).
  const std::string &currentEndpoint() const;

  /// Forget the cached version of \p Doc (e.g. another writer took over).
  void forgetVersion(uint64_t Doc);

private:
  struct ParsedStatus {
    bool Ok = false;
    std::string Error;
    std::string Code;
    uint64_t Version = 0;
    uint64_t RetryAfterMs = 0;
    std::string Leader;
  };

  bool connectCurrent();
  void dropConn();
  bool exchange(const std::string &Line, std::string &RespOut);
  void backoff(unsigned Attempt, uint64_t RetryAfterMs);
  void pointAt(const std::string &Endpoint);
  static ParsedStatus parseStatusLine(const std::string &Line);

  Config Cfg;
  int Fd = -1;
  size_t Cur = 0;
  std::mt19937_64 Rng;
  Stats Counters;
  /// Last known version per document, maintained from every response
  /// that carries one.
  std::unordered_map<uint64_t, uint64_t> KnownVersion;
};

} // namespace client
} // namespace truediff

#endif // TRUEDIFF_CLIENT_CLIENT_H

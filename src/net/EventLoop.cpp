//===- net/EventLoop.cpp - Non-blocking epoll event loop -------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/EventLoop.h"

#include "net/NetEnv.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::net;

namespace {

/// How often the idle scan runs and the longest the loop sleeps without
/// checking for timeouts; coarse on purpose -- idle timeouts are a
/// resource-reclamation bound, not a latency contract.
constexpr std::chrono::milliseconds TickInterval{100};

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Conn
//===----------------------------------------------------------------------===//

void Conn::send(std::string_view Bytes) {
  if (Closing)
    return;
  Out.append(Bytes.data(), Bytes.size());
  if (!flushSome()) {
    closeNow();
    return;
  }
  updateEpollInterest();
}

bool Conn::flushSome() {
  while (OutPos < Out.size()) {
    ssize_t N = Loop.Env != nullptr
                    ? Loop.Env->sendBytes(Fd, Out.data() + OutPos,
                                          Out.size() - OutPos)
                    : ::send(Fd, Out.data() + OutPos, Out.size() - OutPos,
                             MSG_NOSIGNAL);
    if (N > 0) {
      OutPos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  if (OutPos == Out.size()) {
    Out.clear();
    OutPos = 0;
    if (CloseWhenFlushed)
      closeNow();
  } else if (OutPos > (1u << 20)) {
    // Reclaim the flushed prefix once it is large; amortised O(1).
    Out.erase(0, OutPos);
    OutPos = 0;
  }
  return true;
}

void Conn::updateEpollInterest() {
  bool Want = OutPos < Out.size();
  if (Want == WantWrite || Closing)
    return;
  if (Loop.epollMod(this, Want))
    WantWrite = Want;
}

void Conn::closeAfterFlush() {
  if (Closing)
    return;
  if (pendingOut() == 0) {
    closeNow();
    return;
  }
  CloseWhenFlushed = true;
}

void Conn::closeNow() {
  if (Closing)
    return;
  Closing = true;
  Loop.scheduleDestroy(this);
}

void Conn::handleReadable() {
  char Buf[65536];
  bool Got = false;
  bool Eof = false;
  while (!Closing) {
    ssize_t N = Loop.Env != nullptr ? Loop.Env->recvBytes(Fd, Buf, sizeof(Buf))
                                    : ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      In.append(Buf, static_cast<size_t>(N));
      Got = true;
      continue;
    }
    if (N == 0) {
      Eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    Eof = true;
    break;
  }
  if (Got) {
    LastActivity = Clock::now();
    if (H_.OnData)
      H_.OnData(*this);
  }
  if (Eof)
    closeNow();
}

void Conn::handleWritable() {
  if (Closing)
    return;
  if (!flushSome()) {
    closeNow();
    return;
  }
  updateEpollInterest();
}

//===----------------------------------------------------------------------===//
// EventLoop
//===----------------------------------------------------------------------===//

EventLoop::EventLoop() : EventLoop(nullptr) {}

EventLoop::EventLoop(NetEnv *Env) : Env(Env) {
  EpollFd = epoll_create1(EPOLL_CLOEXEC);
  WakeFd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = WakeFd;
  epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);
  LastIdleScan = std::chrono::steady_clock::now();
}

EventLoop::~EventLoop() {
  stop();
  for (auto &[Fd, L] : Listeners)
    ::close(Fd);
  Listeners.clear();
  // Conns not torn down by a run() (loop never started, or adopted after
  // stop) still own their fds.
  for (auto &[Fd, C] : Conns) {
    if (Env != nullptr)
      Env->onClose(Fd);
    ::close(Fd);
  }
  Conns.clear();
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
}

void EventLoop::wake() {
  uint64_t One = 1;
  [[maybe_unused]] ssize_t N = ::write(WakeFd, &One, sizeof(One));
}

void EventLoop::post(std::function<void()> Fn) {
  if (Stopped.load()) // discarded by contract
    return;
  {
    std::lock_guard<std::mutex> Lock(TasksMu);
    Tasks.push_back(std::move(Fn));
  }
  wake();
}

void EventLoop::drainTasks() {
  std::vector<std::function<void()>> Batch;
  {
    std::lock_guard<std::mutex> Lock(TasksMu);
    Batch.swap(Tasks);
  }
  for (auto &Fn : Batch)
    Fn();
}

uint16_t EventLoop::listen(uint16_t Port, AcceptHandler OnAccept,
                           std::string *Err) {
  auto Fail = [&](const char *What) -> uint16_t {
    if (Err != nullptr)
      *Err = std::string(What) + ": " + std::strerror(errno);
    return 0;
  };
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Fail("socket");
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return Fail("bind");
  }
  if (::listen(Fd, 128) != 0) {
    ::close(Fd);
    return Fail("listen");
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    ::close(Fd);
    return Fail("getsockname");
  }
  uint16_t Bound = ntohs(Addr.sin_port);

  Listener L;
  L.Fd = Fd;
  L.OnAccept = std::move(OnAccept);
  if (Running.load() && !onLoopThread()) {
    // The listener map belongs to the loop thread; hand the registration
    // over. The socket already accepts (kernel backlog), so no
    // connection is lost in the window.
    post([this, L = std::move(L)]() mutable { registerListener(std::move(L)); });
  } else {
    registerListener(std::move(L));
  }
  return Bound;
}

void EventLoop::registerListener(Listener L) {
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = L.Fd;
  epoll_ctl(EpollFd, EPOLL_CTL_ADD, L.Fd, &Ev);
  Listeners.emplace(L.Fd, std::move(L));
}

Conn *EventLoop::adopt(int Fd, Conn::Handlers H) {
  if (!setNonBlocking(Fd)) {
    ::close(Fd);
    return nullptr;
  }
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  auto C = std::unique_ptr<Conn>(new Conn(*this, Fd, NextConnId++));
  C->setHandlers(std::move(H));
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = Fd;
  if (epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
    ::close(Fd);
    return nullptr;
  }
  Conn *Raw = C.get();
  Conns.emplace(Fd, std::move(C));
  ConnCount.fetch_add(1);
  if (Env != nullptr)
    Env->onOpen(Fd);
  return Raw;
}

bool EventLoop::epollMod(Conn *C, bool WantWrite) {
  epoll_event Ev{};
  Ev.events = EPOLLIN | (WantWrite ? EPOLLOUT : 0u);
  Ev.data.fd = C->fd();
  return epoll_ctl(EpollFd, EPOLL_CTL_MOD, C->fd(), &Ev) == 0;
}

void EventLoop::acceptReady(Listener &L) {
  while (true) {
    int Fd = ::accept4(L.Fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // EAGAIN or transient accept error: wait for the next event
    }
    Conn *C = adopt(Fd, Conn::Handlers{});
    if (C != nullptr && L.OnAccept)
      L.OnAccept(*C);
  }
}

void EventLoop::scheduleDestroy(Conn *C) {
  // Stop watching immediately so an already-polled event batch is the
  // only way this conn is touched again before teardown.
  epoll_ctl(EpollFd, EPOLL_CTL_DEL, C->fd(), nullptr);
  Dead.push_back(C);
}

void EventLoop::destroyPending() {
  while (!Dead.empty()) {
    Conn *C = Dead.back();
    Dead.pop_back();
    auto It = Conns.find(C->fd());
    if (It == Conns.end() || It->second.get() != C)
      continue;
    std::unique_ptr<Conn> Owned = std::move(It->second);
    Conns.erase(It);
    ConnCount.fetch_sub(1);
    if (Owned->H_.OnClose)
      Owned->H_.OnClose(*Owned);
    if (Env != nullptr)
      Env->onClose(Owned->fd());
    ::close(Owned->fd());
  }
}

void EventLoop::tickEnv() {
  if (Env == nullptr)
    return;
  EnvKills.clear();
  Env->tick(EnvKills);
  for (int Fd : EnvKills) {
    auto It = Conns.find(Fd);
    if (It != Conns.end() && !It->second->Closing)
      It->second->closeNow();
  }
  if (!EnvKills.empty())
    destroyPending();
}

void EventLoop::scanIdle() {
  auto Now = std::chrono::steady_clock::now();
  if (Now - LastIdleScan < TickInterval)
    return;
  LastIdleScan = Now;
  for (auto &[Fd, C] : Conns) {
    if (C->Closing || C->IdleTimeout.count() == 0)
      continue;
    if (Now - C->LastActivity > C->IdleTimeout)
      C->closeNow();
  }
}

void EventLoop::run() {
  Running.store(true);
  LoopThreadId.store(std::this_thread::get_id());
  epoll_event Events[64];
  // With an env attached its delay queues need frequent service; the
  // plain loop only ever wakes for sockets and the coarse idle tick.
  const int WaitMs =
      Env != nullptr ? 5 : static_cast<int>(TickInterval.count());
  while (!Stopped.load()) {
    int N = epoll_wait(EpollFd, Events, 64, WaitMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int I = 0; I != N; ++I) {
      int Fd = Events[I].data.fd;
      uint32_t Ev = Events[I].events;
      if (Fd == WakeFd) {
        uint64_t Junk;
        while (::read(WakeFd, &Junk, sizeof(Junk)) > 0) {
        }
        continue;
      }
      auto LIt = Listeners.find(Fd);
      if (LIt != Listeners.end()) {
        acceptReady(LIt->second);
        continue;
      }
      auto CIt = Conns.find(Fd);
      if (CIt == Conns.end())
        continue;
      Conn *C = CIt->second.get();
      if ((Ev & (EPOLLERR | EPOLLHUP)) != 0) {
        // Flush what the socket still accepts (EPOLLHUP with pending
        // input is handled by the read below returning EOF).
        C->closeNow();
        continue;
      }
      if ((Ev & EPOLLIN) != 0)
        C->handleReadable();
      if ((Ev & EPOLLOUT) != 0 && !C->closing())
        C->handleWritable();
    }
    drainTasks();
    destroyPending();
    scanIdle();
    tickEnv();
  }
  // Teardown on the loop thread: every conn observes OnClose.
  for (auto &[Fd, C] : Conns)
    if (!C->Closing)
      C->closeNow();
  drainTasks();
  destroyPending();
  Running.store(false);
  LoopThreadId.store(std::thread::id());
}

void EventLoop::start() {
  // Mark the loop as running before the thread exists: a listen() that
  // lands between here and run()'s first iteration must take the
  // deferred-registration path, not mutate loop-thread state directly.
  Running.store(true);
  Thread = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (Stopped.exchange(true)) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  wake();
  if (Thread.joinable())
    Thread.join();
}

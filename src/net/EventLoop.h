//===- net/EventLoop.h - Non-blocking epoll event loop ----------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-threaded, non-blocking epoll event loop: listeners accept
/// connections, connections buffer reads and writes, and per-connection
/// idle timeouts are enforced by a coarse periodic scan. One loop thread
/// owns every Conn; cross-thread work enters through post(), which wakes
/// the loop via an eventfd. This single-owner discipline is what makes
/// the protocol state machines above it (NetServer, the replication
/// leader and follower) race-free without per-connection locks.
///
/// Lifetime: a Conn is owned by its loop and destroyed after its OnClose
/// handler ran; handlers must not retain the pointer past that. closeNow
/// defers the actual teardown to the end of the current dispatch turn,
/// so a handler may close its own connection and return normally.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_NET_EVENTLOOP_H
#define TRUEDIFF_NET_EVENTLOOP_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace net {

class EventLoop;
class NetEnv;

/// One established connection. All methods run on the loop thread
/// (handlers are invoked there); other threads reach a Conn only through
/// EventLoop::post.
class Conn {
public:
  struct Handlers {
    /// New bytes were appended to in(); consume from the front. Invoked
    /// once per readable event, after the socket was drained.
    std::function<void(Conn &)> OnData;
    /// The connection is gone (peer EOF, error, idle timeout, closeNow).
    /// The Conn is destroyed after this returns.
    std::function<void(Conn &)> OnClose;
  };

  uint64_t id() const { return Id; }
  int fd() const { return Fd; }
  bool closing() const { return Closing; }

  /// The read buffer; handlers erase what they consumed from the front.
  std::string &in() { return In; }

  /// Bytes queued but not yet accepted by the kernel.
  size_t pendingOut() const { return Out.size() - OutPos; }

  /// Queues \p Bytes for writing, flushing as much as the socket accepts
  /// immediately and arming EPOLLOUT for the rest.
  void send(std::string_view Bytes);

  /// Closes after the pending output drains (or immediately if none).
  void closeAfterFlush();

  /// Tears the connection down at the end of the current dispatch turn;
  /// pending output is dropped. OnClose fires exactly once.
  void closeNow();

  /// Idle timeout: the connection is closed when no bytes were received
  /// for this long. Zero (the default) disables the timeout -- the mode
  /// for replication links, which are idle between writes by design.
  void setIdleTimeout(std::chrono::milliseconds T) { IdleTimeout = T; }

  void setHandlers(Handlers H) { H_ = std::move(H); }

private:
  friend class EventLoop;
  using Clock = std::chrono::steady_clock;

  Conn(EventLoop &Loop, int Fd, uint64_t Id)
      : Loop(Loop), Fd(Fd), Id(Id), LastActivity(Clock::now()) {}

  void handleReadable();
  void handleWritable();
  bool flushSome(); ///< returns false on fatal write error
  void updateEpollInterest();

  EventLoop &Loop;
  int Fd;
  uint64_t Id;
  Handlers H_;
  std::string In;
  std::string Out;
  size_t OutPos = 0;
  bool WantWrite = false;
  bool Closing = false;
  bool CloseWhenFlushed = false;
  std::chrono::milliseconds IdleTimeout{0};
  Clock::time_point LastActivity;
};

/// The loop: owns the epoll instance, the listeners, and every Conn.
class EventLoop {
public:
  /// Invoked on the loop thread for each accepted connection, to install
  /// handlers and per-connection settings.
  using AcceptHandler = std::function<void(Conn &)>;

  EventLoop();
  /// Routes every send/recv of every Conn through \p Env (fault
  /// injection; see net/NetEnv.h). Null behaves like the default
  /// constructor. \p Env must outlive the loop.
  explicit EventLoop(NetEnv *Env);
  ~EventLoop();

  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  /// Binds a listening socket on \p Port (0 = ephemeral) and accepts
  /// connections into the loop. Returns the bound port, or 0 with \p Err
  /// set. Callable from any thread; registration with a running loop is
  /// deferred to the loop thread.
  uint16_t listen(uint16_t Port, AcceptHandler OnAccept,
                  std::string *Err = nullptr);

  /// Adopts an already-connected socket (e.g. from a blocking connect)
  /// into the loop. Must run on the loop thread (post() a task that
  /// calls it). The loop owns the fd from here on.
  Conn *adopt(int Fd, Conn::Handlers H);

  /// Runs the loop on the calling thread until stop().
  void run();

  /// Runs the loop on an internal thread.
  void start();

  /// Stops the loop and joins the internal thread if start() was used.
  /// Every open connection is closed (OnClose fires). Idempotent;
  /// callable from any thread except the loop thread itself.
  void stop();

  /// Requests \p Fn to run on the loop thread. Thread-safe. Tasks posted
  /// after stop() are discarded.
  void post(std::function<void()> Fn);

  bool onLoopThread() const {
    return std::this_thread::get_id() == LoopThreadId.load();
  }

  /// Live connection gauge (listeners excluded).
  size_t numConns() const { return ConnCount.load(); }

private:
  friend class Conn;

  struct Listener {
    int Fd = -1;
    AcceptHandler OnAccept;
  };

  void wake();
  void drainTasks();
  /// Runs the env's per-iteration tick and closes the connections it
  /// decided to kill. No-op without an env.
  void tickEnv();
  void acceptReady(Listener &L);
  void registerListener(Listener L);
  void scheduleDestroy(Conn *C);
  void destroyPending();
  void scanIdle();
  void closeConn(Conn *C);
  bool epollMod(Conn *C, bool WantWrite);

  NetEnv *Env = nullptr;
  int EpollFd = -1;
  int WakeFd = -1;
  std::atomic<bool> Stopped{false};
  std::atomic<bool> Running{false};
  std::atomic<std::thread::id> LoopThreadId{};
  std::thread Thread;

  std::mutex TasksMu;
  std::vector<std::function<void()>> Tasks;

  // Loop-thread state.
  std::unordered_map<int, Listener> Listeners;
  std::unordered_map<int, std::unique_ptr<Conn>> Conns;
  std::vector<Conn *> Dead;
  uint64_t NextConnId = 1;
  std::vector<int> EnvKills; ///< scratch for tickEnv
  std::chrono::steady_clock::time_point LastIdleScan;
  std::atomic<size_t> ConnCount{0};
};

} // namespace net
} // namespace truediff

#endif // TRUEDIFF_NET_EVENTLOOP_H

//===- net/NetServer.h - TCP front end for the diff service -----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serves the textual wire protocol (service/Wire.h) and the binary
/// frame protocol (net/Frame.h) over TCP, multiplexed per message by the
/// first byte. Requests are handed to a RequestHandler, which completes
/// them asynchronously from any thread; the server keeps per-connection
/// response slots so pipelined requests are answered in arrival order no
/// matter which worker finishes first.
///
/// Robustness contract (the fuzz tests pin it down):
///   - an oversized frame or line gets a typed FrameTooLarge error and
///     the connection is closed (the stream position is untrustworthy),
///   - a malformed payload inside a well-formed frame gets a typed
///     MalformedFrame error and the connection lives on,
///   - nothing a client sends crashes the loop.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_NET_NETSERVER_H
#define TRUEDIFF_NET_NETSERVER_H

#include "net/EventLoop.h"
#include "net/Frame.h"
#include "service/Wire.h"

#include <deque>
#include <memory>

namespace truediff {
namespace net {

/// One parsed request, textual or binary.
struct NetRequest {
  bool Binary = false;
  /// Parsed command. For binary frames, K/Doc are mapped from the verb
  /// and the payload's doc-id varint.
  service::WireCommand Cmd;
  /// Binary open/submit: the encodeTree blob.
  std::string Blob;
};

/// Completes NetServer requests. handle() runs on the loop thread and
/// must not block; \p Done may be invoked from any thread, exactly once.
class RequestHandler {
public:
  virtual ~RequestHandler() = default;
  virtual void handle(NetRequest Req,
                      std::function<void(service::Response)> Done) = 0;
};

class NetServer {
public:
  struct Config {
    uint16_t Port = 0; ///< 0 = ephemeral; see port()
    /// Cap on one textual protocol line.
    size_t MaxLineBytes = service::MaxWireLineBytes;
    /// Cap on one binary frame payload.
    size_t MaxFrameBytes = MaxBinaryFrameBytes;
    /// Per-connection idle timeout; 0 disables.
    unsigned IdleTimeoutMs = 60000;
  };

  /// The server registers its listener on \p Loop; \p Sig is needed to
  /// encode binary script payloads. Call start() before Loop runs or
  /// while it runs; responses are posted back to the loop, so the loop
  /// must outlive the server's traffic.
  NetServer(EventLoop &Loop, const SignatureTable &Sig,
            RequestHandler &Handler);
  NetServer(EventLoop &Loop, const SignatureTable &Sig,
            RequestHandler &Handler, Config C);
  ~NetServer();

  /// Binds and registers the listener. Returns false with \p Err on
  /// bind failure. The bound port is port() afterwards.
  bool start(std::string *Err = nullptr);

  uint16_t port() const { return BoundPort; }
  size_t numConns() const { return Loop.numConns(); }

private:
  /// A response slot: pipelined requests answer in order, so completions
  /// park here until every earlier slot is rendered.
  struct Slot {
    bool Ready = false;
    bool CloseAfter = false;
    std::string Bytes;
  };

  struct ConnState {
    std::deque<Slot> Slots;
    size_t NextToSend = 0; ///< index into Slots of the next unsent slot
    bool Draining = false; ///< quit seen: close once slots flush
  };

  void onData(Conn &C);
  /// Parses one message off the front of \p C's buffer. Returns false
  /// when more bytes are needed (or the conn is closing).
  bool parseOne(Conn &C);
  void dispatch(Conn &C, NetRequest Req, service::WireCommand::Kind K,
                bool CloseAfter);
  /// Fails the connection with a rendered protocol error and closes it.
  void protocolError(Conn &C, bool Binary, service::ErrCode Code,
                     const std::string &Message);
  /// Answers a malformed-but-framed request without killing the conn.
  void immediateError(Conn &C, bool Binary, service::WireCommand::Kind K,
                      service::ErrCode Code, const std::string &Message);
  std::string render(const service::Response &R, bool Binary,
                     service::WireCommand::Kind K) const;
  void deliver(uint64_t ConnId, size_t SlotIdx, std::string Bytes);
  void flushReady(Conn &C, ConnState &S);

  EventLoop &Loop;
  const SignatureTable &Sig;
  RequestHandler &Handler;
  const Config Cfg;
  uint16_t BoundPort = 0;
  /// Loop-thread state: conn id -> parser/slot state. Conn ids never
  /// recycle, so a late completion for a dead conn simply misses.
  std::unordered_map<uint64_t, ConnState> States;
  std::unordered_map<uint64_t, Conn *> LiveConns;
};

} // namespace net
} // namespace truediff

#endif // TRUEDIFF_NET_NETSERVER_H

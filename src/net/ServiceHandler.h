//===- net/ServiceHandler.h - NetServer -> DiffService bridge ---*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RequestHandler that feeds NetServer requests into a DiffService
/// through its callback API. Textual open/submit payloads parse as
/// s-expressions under the configured admission limits; binary payloads
/// decode through persist/BinaryCodec with fresh URIs (a client's URIs
/// must never collide with a document's live URI space), and binary
/// submits run in RawScript mode so the response frame carries the
/// binary-encoded script without a textual round trip.
///
/// health is answered inline from healthJson() -- it must work when the
/// request queue is saturated. save/recover are delegated to optional
/// hooks wired up by the server binary when persistence is enabled.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_NET_SERVICEHANDLER_H
#define TRUEDIFF_NET_SERVICEHANDLER_H

#include "net/NetServer.h"
#include "net/Role.h"
#include "tree/Limits.h"

namespace truediff {
namespace net {

class ServiceHandler : public RequestHandler {
public:
  struct Config {
    /// Admission caps for textual s-expression parses ({0,0} = none).
    ParseLimits Limits;
    /// Deadline handed to every submit, ms from enqueue (0 = service
    /// default).
    uint64_t SubmitDeadlineMs = 0;
    /// save <doc>: force a durable snapshot. Unset = "persistence is
    /// disabled" error. May block; it runs on a connection-independent
    /// path only when the wiring says so -- keep it cheap or unset.
    std::function<service::Response(service::DocId)> OnSave;
    /// recover: last recovery summary. Unset = error, as above.
    std::function<service::Response()> OnRecover;
    /// scrub: run one synchronous integrity scrub cycle, answering with
    /// its findings as JSON. Unset = "integrity scrubbing is disabled"
    /// error. Blocks for the cycle (rate-limited by the scrubber's
    /// token bucket), so wire it through a connection-independent path.
    std::function<service::Response()> OnScrub;
    /// Role gate: when set, writes (open/submit/rollback/save) are only
    /// admitted while the role is Leader; otherwise they answer
    /// ErrCode::NotLeader carrying the view's leader address and
    /// retry_after_ms hint. Null = always writable (single-node server).
    /// Must outlive the handler.
    RoleState *Role = nullptr;
    /// promote <epoch>: the failover hook that makes this node the
    /// leader. Unset = "role management is disabled" error.
    std::function<service::Response(uint64_t NewEpoch)> OnPromote;
    /// demote [<host:port>]: stop accepting writes, pointing clients at
    /// the given leader. Unset = error, as above.
    std::function<service::Response(std::string LeaderAddr)> OnDemote;
  };

  explicit ServiceHandler(service::DiffService &Svc);
  ServiceHandler(service::DiffService &Svc, Config C)
      : Svc(Svc), Cfg(std::move(C)) {}

  void handle(NetRequest Req,
              std::function<void(service::Response)> Done) override;

private:
  service::DiffService &Svc;
  const Config Cfg;
};

} // namespace net
} // namespace truediff

#endif // TRUEDIFF_NET_SERVICEHANDLER_H

//===- net/Frame.cpp - Length-prefixed binary framing ----------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Frame.h"

#include "persist/Varint.h"

using namespace truediff;
using namespace truediff::net;
using truediff::persist::getVarint;
using truediff::persist::putVarint;

void net::appendFrame(std::string &Out, uint8_t Magic, uint8_t Type,
                      std::string_view Payload) {
  Out.push_back(static_cast<char>(Magic));
  Out.push_back(static_cast<char>(Type));
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>(Len >> (8 * I)));
  Out.append(Payload.data(), Payload.size());
}

FramePeek net::peekFrame(std::string_view In, size_t MaxPayload,
                         FrameHeader &H) {
  if (In.size() < FrameHeaderBytes)
    return FramePeek::NeedMore;
  H.Magic = static_cast<uint8_t>(In[0]);
  H.Type = static_cast<uint8_t>(In[1]);
  H.Len = 0;
  for (int I = 0; I != 4; ++I)
    H.Len |= static_cast<uint32_t>(static_cast<uint8_t>(In[2 + I]))
             << (8 * I);
  if (H.Len > MaxPayload)
    return FramePeek::TooLarge;
  if (In.size() < FrameHeaderBytes + H.Len)
    return FramePeek::NeedMore;
  return FramePeek::Ok;
}

std::string net::encodeBinResponse(const service::Response &R,
                                   std::string_view Blob) {
  std::string Payload;
  if (R.Ok) {
    putVarint(Payload, R.Version);
    putVarint(Payload, R.EditCount);
    putVarint(Payload, R.CoalescedSize);
    putVarint(Payload, R.TreeSize);
    Payload.push_back(static_cast<char>(R.Fallback ? 1 : 0));
    putVarint(Payload, Blob.size());
    Payload.append(Blob.data(), Blob.size());
  } else {
    Payload.push_back(static_cast<char>(R.Code));
    putVarint(Payload, R.RetryAfterMs);
    putVarint(Payload, R.Version);
    putVarint(Payload, R.Error.size());
    Payload += R.Error;
    // Optional trailing redirect hint, same shape as the author /
    // provenance tails in replica/Protocol: absent entirely when empty.
    if (R.Code == service::ErrCode::NotLeader && !R.LeaderAddr.empty()) {
      putVarint(Payload, R.LeaderAddr.size());
      Payload += R.LeaderAddr;
    }
  }
  std::string Out;
  appendFrame(Out, ClientRespMagic, R.Ok ? 0 : 1, Payload);
  return Out;
}

bool net::decodeBinResponse(uint8_t Status, std::string_view Payload,
                            BinResponse &Out) {
  size_t Pos = 0;
  if (Status == 0) {
    Out.Ok = true;
    auto Version = getVarint(Payload, Pos);
    auto Edits = getVarint(Payload, Pos);
    auto Coalesced = getVarint(Payload, Pos);
    auto TreeSize = getVarint(Payload, Pos);
    if (!Version || !Edits || !Coalesced || !TreeSize ||
        Pos >= Payload.size())
      return false;
    uint8_t Flags = static_cast<uint8_t>(Payload[Pos++]);
    auto BlobLen = getVarint(Payload, Pos);
    if (!BlobLen || *BlobLen > Payload.size() - Pos)
      return false;
    Out.Version = *Version;
    Out.EditCount = *Edits;
    Out.CoalescedSize = *Coalesced;
    Out.TreeSize = *TreeSize;
    Out.Fallback = (Flags & 1) != 0;
    Out.Blob = std::string(Payload.substr(Pos, *BlobLen));
    return Pos + *BlobLen == Payload.size();
  }
  if (Status != 1)
    return false;
  Out.Ok = false;
  if (Payload.empty())
    return false;
  Out.Code = static_cast<service::ErrCode>(Payload[Pos++]);
  auto Retry = getVarint(Payload, Pos);
  auto Version = getVarint(Payload, Pos);
  auto MsgLen = getVarint(Payload, Pos);
  if (!Retry || !Version || !MsgLen || *MsgLen > Payload.size() - Pos)
    return false;
  Out.RetryAfterMs = *Retry;
  Out.Version = *Version;
  Out.Error = std::string(Payload.substr(Pos, *MsgLen));
  Pos += *MsgLen;
  if (Pos == Payload.size())
    return true;
  // Optional trailing leader address: when present it must account for
  // exactly the remaining bytes, so trailing garbage stays detectable.
  auto AddrLen = getVarint(Payload, Pos);
  if (!AddrLen || *AddrLen != Payload.size() - Pos)
    return false;
  Out.LeaderAddr = std::string(Payload.substr(Pos, *AddrLen));
  return true;
}

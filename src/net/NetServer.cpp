//===- net/NetServer.cpp - TCP front end for the diff service --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/NetServer.h"

#include "persist/BinaryCodec.h"
#include "persist/Varint.h"

using namespace truediff;
using namespace truediff::net;
using namespace truediff::service;
using truediff::persist::getVarint;

NetServer::NetServer(EventLoop &Loop, const SignatureTable &Sig,
                     RequestHandler &Handler)
    : NetServer(Loop, Sig, Handler, Config()) {}

NetServer::NetServer(EventLoop &Loop, const SignatureTable &Sig,
                     RequestHandler &Handler, Config C)
    : Loop(Loop), Sig(Sig), Handler(Handler), Cfg(C) {}

NetServer::~NetServer() = default;

bool NetServer::start(std::string *Err) {
  uint16_t Port = Loop.listen(
      Cfg.Port,
      [this](Conn &C) {
        C.setIdleTimeout(std::chrono::milliseconds(Cfg.IdleTimeoutMs));
        States.emplace(C.id(), ConnState{});
        LiveConns.emplace(C.id(), &C);
        Conn::Handlers H;
        H.OnData = [this](Conn &C) { onData(C); };
        H.OnClose = [this](Conn &C) {
          States.erase(C.id());
          LiveConns.erase(C.id());
        };
        C.setHandlers(std::move(H));
      },
      Err);
  if (Port == 0)
    return false;
  BoundPort = Port;
  return true;
}

void NetServer::onData(Conn &C) {
  while (parseOne(C)) {
  }
}

std::string NetServer::render(const Response &R, bool Binary,
                              WireCommand::Kind K) const {
  if (!Binary)
    return formatWireResponse(R, K);
  std::string Blob;
  if (R.Ok && K == WireCommand::Kind::Submit)
    Blob = persist::encodeEditScript(Sig, R.Script);
  else if (R.Ok)
    Blob = R.Payload;
  return encodeBinResponse(R, Blob);
}

void NetServer::deliver(uint64_t ConnId, size_t SlotIdx, std::string Bytes) {
  auto SIt = States.find(ConnId);
  if (SIt == States.end())
    return; // connection died before its response was ready
  ConnState &S = SIt->second;
  if (SlotIdx < S.NextToSend || SlotIdx - S.NextToSend >= S.Slots.size())
    return;
  Slot &Sl = S.Slots[SlotIdx - S.NextToSend];
  Sl.Ready = true;
  Sl.Bytes = std::move(Bytes);
  auto CIt = LiveConns.find(ConnId);
  if (CIt != LiveConns.end())
    flushReady(*CIt->second, S);
}

void NetServer::flushReady(Conn &C, ConnState &S) {
  while (!S.Slots.empty() && S.Slots.front().Ready) {
    Slot Sl = std::move(S.Slots.front());
    S.Slots.pop_front();
    ++S.NextToSend;
    C.send(Sl.Bytes);
    if (Sl.CloseAfter) {
      C.closeAfterFlush();
      return;
    }
  }
  if (S.Draining && S.Slots.empty())
    C.closeAfterFlush();
}

void NetServer::dispatch(Conn &C, NetRequest Req, WireCommand::Kind K,
                         bool CloseAfter) {
  ConnState &S = States[C.id()];
  size_t SlotIdx = S.NextToSend + S.Slots.size();
  Slot Sl;
  Sl.CloseAfter = CloseAfter;
  S.Slots.push_back(std::move(Sl));
  uint64_t ConnId = C.id();
  bool Binary = Req.Binary;
  Handler.handle(std::move(Req),
                 [this, ConnId, SlotIdx, Binary, K](Response R) {
                   // Rendering happens on the completing thread (a
                   // service worker, usually), keeping string work off
                   // the loop; the loop only splices bytes into slots.
                   std::string Bytes = render(R, Binary, K);
                   Loop.post([this, ConnId, SlotIdx,
                              Bytes = std::move(Bytes)]() mutable {
                     deliver(ConnId, SlotIdx, std::move(Bytes));
                   });
                 });
}

void NetServer::immediateError(Conn &C, bool Binary, WireCommand::Kind K,
                               ErrCode Code, const std::string &Message) {
  Response R;
  R.Ok = false;
  R.Code = Code;
  R.Error = Message;
  ConnState &S = States[C.id()];
  size_t SlotIdx = S.NextToSend + S.Slots.size();
  S.Slots.push_back(Slot{});
  deliver(C.id(), SlotIdx, render(R, Binary, K));
}

void NetServer::protocolError(Conn &C, bool Binary, ErrCode Code,
                              const std::string &Message) {
  Response R;
  R.Ok = false;
  R.Code = Code;
  R.Error = Message;
  C.send(render(R, Binary, WireCommand::Kind::Invalid));
  C.closeAfterFlush();
}

bool NetServer::parseOne(Conn &C) {
  if (C.closing())
    return false;
  std::string &In = C.in();
  if (In.empty())
    return false;
  uint8_t First = static_cast<uint8_t>(In[0]);

  if (First == ClientReqMagic || First == ReplMagic) {
    FrameHeader H;
    switch (peekFrame(In, Cfg.MaxFrameBytes, H)) {
    case FramePeek::NeedMore:
      return false;
    case FramePeek::TooLarge:
      protocolError(C, true, ErrCode::FrameTooLarge,
                    "frame exceeds " + std::to_string(Cfg.MaxFrameBytes) +
                        " bytes");
      return false;
    case FramePeek::Ok:
      break;
    }
    if (First == ReplMagic) {
      // Replication frames belong on the replication port; answering
      // them here would make a confused follower believe it has a
      // leader.
      protocolError(C, true, ErrCode::MalformedFrame,
                    "replication frame on the client port");
      return false;
    }
    std::string Payload(In.substr(FrameHeaderBytes, H.Len));
    In.erase(0, FrameHeaderBytes + H.Len);

    NetRequest Req;
    Req.Binary = true;
    size_t Pos = 0;
    auto NeedDoc = [&]() -> bool {
      auto Doc = getVarint(Payload, Pos);
      if (!Doc)
        return false;
      Req.Cmd.Doc = *Doc;
      return true;
    };
    switch (static_cast<BinVerb>(H.Type)) {
    case BinVerb::Open:
    case BinVerb::Submit:
      Req.Cmd.K = H.Type == static_cast<uint8_t>(BinVerb::Open)
                      ? WireCommand::Kind::Open
                      : WireCommand::Kind::Submit;
      if (!NeedDoc()) {
        immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                       "truncated doc id");
        return true;
      }
      {
        auto AuthorLen = getVarint(Payload, Pos);
        if (!AuthorLen || *AuthorLen > Payload.size() - Pos) {
          immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                         "truncated author field");
          return true;
        }
        Req.Cmd.Author = Payload.substr(Pos, *AuthorLen);
        Pos += *AuthorLen;
      }
      Req.Blob = Payload.substr(Pos);
      break;
    case BinVerb::Rollback:
    case BinVerb::Get:
      Req.Cmd.K = H.Type == static_cast<uint8_t>(BinVerb::Rollback)
                      ? WireCommand::Kind::Rollback
                      : WireCommand::Kind::Get;
      if (!NeedDoc() || Pos != Payload.size()) {
        immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                       "malformed doc id payload");
        return true;
      }
      break;
    case BinVerb::Blame:
      Req.Cmd.K = WireCommand::Kind::Blame;
      if (!NeedDoc()) {
        immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                       "truncated doc id");
        return true;
      }
      if (Pos != Payload.size()) {
        auto Uri = getVarint(Payload, Pos);
        if (!Uri || Pos != Payload.size()) {
          immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                         "malformed blame payload");
          return true;
        }
        Req.Cmd.Uri = *Uri;
        Req.Cmd.HasUri = true;
      }
      break;
    case BinVerb::History: {
      Req.Cmd.K = WireCommand::Kind::History;
      if (!NeedDoc()) {
        immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                       "truncated doc id");
        return true;
      }
      auto Uri = getVarint(Payload, Pos);
      if (!Uri || Pos != Payload.size()) {
        immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                       "malformed history payload");
        return true;
      }
      Req.Cmd.Uri = *Uri;
      Req.Cmd.HasUri = true;
      break;
    }
    case BinVerb::Stats:
    case BinVerb::Health:
      Req.Cmd.K = H.Type == static_cast<uint8_t>(BinVerb::Stats)
                      ? WireCommand::Kind::Stats
                      : WireCommand::Kind::Health;
      if (!Payload.empty()) {
        immediateError(C, true, Req.Cmd.K, ErrCode::MalformedFrame,
                       "unexpected payload");
        return true;
      }
      break;
    case BinVerb::Quit: {
      // Acknowledge, then close once everything queued before the quit
      // has been answered.
      ConnState &S = States[C.id()];
      S.Draining = true;
      Response Ok;
      Ok.Ok = true;
      size_t SlotIdx = S.NextToSend + S.Slots.size();
      Slot Sl;
      Sl.CloseAfter = true;
      S.Slots.push_back(std::move(Sl));
      deliver(C.id(), SlotIdx, render(Ok, true, WireCommand::Kind::Quit));
      return true;
    }
    default:
      immediateError(C, true, WireCommand::Kind::Invalid,
                     ErrCode::MalformedFrame,
                     "unknown verb " + std::to_string(H.Type));
      return true;
    }
    WireCommand::Kind K = Req.Cmd.K;
    dispatch(C, std::move(Req), K, false);
    return true;
  }

  // Textual path: one '\n'-terminated line.
  size_t Eol = In.find('\n');
  if (Eol == std::string::npos) {
    if (In.size() > Cfg.MaxLineBytes)
      protocolError(C, false, ErrCode::FrameTooLarge,
                    "line exceeds " + std::to_string(Cfg.MaxLineBytes) +
                        " bytes");
    return false;
  }
  std::string Line = In.substr(0, Eol);
  In.erase(0, Eol + 1);
  if (Line.empty() || Line == "\r")
    return true;

  WireCommand Cmd = parseWireCommand(Line, Cfg.MaxLineBytes);
  if (Cmd.K == WireCommand::Kind::Invalid) {
    immediateError(C, false, WireCommand::Kind::Invalid,
                   Cmd.Code, Cmd.Error);
    return true;
  }
  if (Cmd.K == WireCommand::Kind::Quit) {
    // Matches the REPL: quit produces no response. Close once earlier
    // pipelined requests have flushed.
    ConnState &S = States[C.id()];
    S.Draining = true;
    if (S.Slots.empty())
      C.closeAfterFlush();
    return true;
  }
  NetRequest Req;
  Req.Cmd = std::move(Cmd);
  WireCommand::Kind K = Req.Cmd.K;
  dispatch(C, std::move(Req), K, false);
  return true;
}

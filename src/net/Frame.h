//===- net/Frame.h - Length-prefixed binary framing -------------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary frame shared by the client protocol and
/// the replication stream. Every frame is
///
///   u8 magic | u8 type | u32le payload-length | payload
///
/// with three magics: 0xB1 client request, 0xB2 client response, 0xB3
/// replication. The first byte of a connection's next message selects
/// the protocol -- 0xB1/0xB3 enters the binary parser, anything else is
/// a textual line (service/Wire.h) terminated by '\n' -- so one port
/// serves both client protocols frame by frame.
///
/// Client request payloads (tree blobs are persist/BinaryCodec
/// encodeTree; all integers LEB128 varints):
///
///   Open, Submit    varint doc-id, varint author-length + author bytes
///                   (0 = unattributed), then the tree blob
///   Rollback, Get   varint doc-id
///   Blame           varint doc-id, optionally varint node uri (absent =
///                   annotate the whole tree)
///   History         varint doc-id, varint node uri
///   Stats, Health,
///   Quit            empty
///
/// Client responses echo no verb; the frame type is the status (0 = ok,
/// 1 = err). Ok payloads carry varints version, edit count, coalesced
/// size, tree size, one flags byte (bit 0 = deadline fallback), then a
/// varint-length-prefixed blob: the binary edit script for submit, the
/// s-expression text for get, JSON for stats/health, empty otherwise.
/// Err payloads carry one ErrCode byte, a varint retry_after_ms hint, a
/// varint current document version (meaningful for cas_mismatch, 0
/// otherwise), a varint-length-prefixed message, and optionally a
/// varint-length-prefixed leader address ("host:port", the redirect hint
/// on not_leader) that must consume the payload's remainder.
///
/// Decoders are total: a malformed payload in a well-formed frame yields
/// a typed error (ErrCode::MalformedFrame) and the connection lives on;
/// only frames whose claimed length exceeds the configured cap kill the
/// connection, because the stream position after them is untrustworthy.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_NET_FRAME_H
#define TRUEDIFF_NET_FRAME_H

#include "service/DiffService.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace truediff {
namespace net {

inline constexpr uint8_t ClientReqMagic = 0xB1;
inline constexpr uint8_t ClientRespMagic = 0xB2;
inline constexpr uint8_t ReplMagic = 0xB3;

inline constexpr size_t FrameHeaderBytes = 6;

/// Default cap on one binary frame's payload.
inline constexpr size_t MaxBinaryFrameBytes = 16u << 20;

/// Client request verbs (frame type under ClientReqMagic).
enum class BinVerb : uint8_t {
  Open = 1,
  Submit = 2,
  Rollback = 3,
  Get = 4,
  Stats = 5,
  Health = 6,
  Quit = 7,
  Blame = 8,
  History = 9,
};

/// Replication frame types (frame type under ReplMagic).
enum class ReplFrame : uint8_t {
  FollowerHello = 1, ///< varint last-seq, varint max-epoch-seen
  LeaderHello = 2,   ///< varint epoch, varint current-seq
  Record = 3,        ///< one replication-log record
  DocSnapshot = 4,   ///< full document state for catch-up / resync
  CatchupDone = 5,   ///< varint seq: initial dump complete up to seq
  ResyncReq = 6,     ///< varint doc-id: follower requests a fresh snapshot
  Ack = 7,           ///< varint seq: follower durably applied up to seq
  ShardSummary = 8,  ///< anti-entropy digest summary for one store shard
};

struct FrameHeader {
  uint8_t Magic = 0;
  uint8_t Type = 0;
  uint32_t Len = 0;
};

enum class FramePeek {
  NeedMore, ///< fewer bytes than one full frame
  Ok,       ///< header parsed; payload available
  TooLarge, ///< claimed length exceeds the cap: kill the connection
};

/// Appends one frame to \p Out.
void appendFrame(std::string &Out, uint8_t Magic, uint8_t Type,
                 std::string_view Payload);

/// Inspects the frame at the front of \p In (caller checked the magic).
FramePeek peekFrame(std::string_view In, size_t MaxPayload, FrameHeader &H);

/// Decoded client response, for clients and tests.
struct BinResponse {
  bool Ok = false;
  service::ErrCode Code = service::ErrCode::None;
  uint64_t RetryAfterMs = 0;
  std::string Error;
  /// Err with Code == NotLeader: where the leader answers writes
  /// (empty = unknown).
  std::string LeaderAddr;
  uint64_t Version = 0;
  uint64_t EditCount = 0;
  uint64_t CoalescedSize = 0;
  uint64_t TreeSize = 0;
  bool Fallback = false;
  std::string Blob;
};

/// Renders a service response as one client response frame. \p Blob is
/// the verb-specific payload blob (binary script, s-expression, JSON).
std::string encodeBinResponse(const service::Response &R,
                              std::string_view Blob);

/// Parses a client response frame's payload (\p Status is the frame
/// type). Returns false on malformed input.
bool decodeBinResponse(uint8_t Status, std::string_view Payload,
                       BinResponse &Out);

} // namespace net
} // namespace truediff

#endif // TRUEDIFF_NET_FRAME_H

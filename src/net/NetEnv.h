//===- net/NetEnv.h - Socket I/O seam with fault injection ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket I/O seam the event loop routes every send/recv through --
/// the network analogue of persist/IoEnv. The default NetEnv is a plain
/// pass-through to ::send/::recv; FaultyNetEnv injects seeded, per-
/// connection fault schedules so every network failure mode the failover
/// layer must survive is reproducible from a seed:
///
///   short writes     a send accepts only a prefix (the kernel's
///                    partial-write path, exercised on demand),
///   latency          accepted bytes are held in an internal queue and
///                    released to the real socket after a delay,
///   partitions       accepted bytes are held until the partition heals
///                    (per-fd or whole-env; one-way partitions fall out
///                    of giving each endpoint's loop its own env),
///   kills            the connection errors after a byte budget, exactly
///                    like a peer reset mid-stream,
///   corruption       a send's bytes reach the peer with one seeded bit
///                    flipped -- the rare mutation TCP's 16-bit checksum
///                    fails to catch (or a buggy middlebox introduces).
///
/// Every fault is injected on the send side: bytes are delayed,
/// withheld, or (only when CorruptProb asks for it) mutated, never
/// reordered -- TCP delivers a prefix. A killed or closed connection
/// drops whatever the env still held for it, which is the prefix-loss a
/// real crash produces. A corrupted send is *silent* at this layer: the
/// peer's framing either rejects the frame (loud, connection dies) or
/// decodes plausible-but-wrong data -- the divergence the anti-entropy
/// exchange exists to detect.
///
/// Threading: sendBytes/recvBytes/onOpen/onClose/tick run on the owning
/// loop thread; the fault dials (setPartitioned, ...) may be flipped
/// from any thread. FaultyNetEnv locks internally.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_NET_NETENV_H
#define TRUEDIFF_NET_NETENV_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <random>
#include <string>
#include <sys/types.h>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace net {

/// The seam. Same contract as ::send/::recv: bytes accepted (>= 1), or
/// -1 with errno set (EAGAIN means "try again later", anything else is
/// fatal to the connection).
class NetEnv {
public:
  virtual ~NetEnv();

  virtual ssize_t sendBytes(int Fd, const char *Data, size_t Len);
  virtual ssize_t recvBytes(int Fd, char *Buf, size_t Len);

  /// A connection entered / left the loop (adopt / teardown). Per-fd
  /// fault state must reset here: the kernel recycles fd numbers.
  virtual void onOpen(int Fd);
  virtual void onClose(int Fd);

  /// Invoked once per loop iteration on the loop thread. Releases
  /// delayed bytes whose deadline passed and appends the fds of
  /// connections the env decided to kill to \p Kill.
  virtual void tick(std::vector<int> &Kill);
};

/// Deterministic, seeded fault injection (see file comment). Each
/// connection draws its schedule from Seed and its adoption ordinal, so
/// a run is reproducible even though fd numbers are not.
class FaultyNetEnv : public NetEnv {
public:
  struct Config {
    uint64_t Seed = 1;
    /// Probability one send call accepts only a random non-empty prefix.
    double ShortWriteProb = 0;
    /// Probability one send call's bytes are delayed; the delay is
    /// uniform in [1, MaxDelayMs].
    double DelayProb = 0;
    unsigned MaxDelayMs = 20;
    /// Probability, drawn once per connection at adoption, that the
    /// connection dies after a uniform byte budget in [1, KillAfterMax].
    double KillProb = 0;
    size_t KillAfterMax = 4096;
    /// Probability one send call's bytes arrive with a single seeded bit
    /// flipped (silent in-flight mutation; see file comment).
    double CorruptProb = 0;
  };

  FaultyNetEnv() = default;
  explicit FaultyNetEnv(Config C) : Cfg(C) {}

  ssize_t sendBytes(int Fd, const char *Data, size_t Len) override;
  ssize_t recvBytes(int Fd, char *Buf, size_t Len) override;
  void onOpen(int Fd) override;
  void onClose(int Fd) override;
  void tick(std::vector<int> &Kill) override;

  /// Holds every send of every connection until healed -- the whole-env
  /// partition switch. Queued bytes flush (in order) on the next tick
  /// after healing.
  void setPartitioned(bool On);
  /// Partitions one connection's outbound direction.
  void setPartitioned(int Fd, bool On);

  /// Arms a kill after \p Bytes more outbound bytes on \p Fd (0 = on the
  /// very next send). Overrides any seeded budget.
  void killAfter(int Fd, size_t Bytes);

  struct Stats {
    uint64_t ShortWrites = 0;
    uint64_t DelayedSends = 0;
    uint64_t HeldSends = 0; ///< sends absorbed while partitioned
    uint64_t Kills = 0;
    uint64_t CorruptedSends = 0; ///< sends with a bit flipped in flight
  };
  Stats stats() const;

private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::string Bytes;
    size_t Pos = 0;
    Clock::time_point Due;
  };

  struct FdState {
    std::mt19937_64 Rng;
    std::deque<Pending> Queue;
    bool Partitioned = false;
    bool Killed = false;
    bool HasKillBudget = false;
    size_t KillBudget = 0; ///< outbound bytes until the kill fires
  };

  /// Consumes up to \p Len bytes of \p Fd's kill budget; returns how
  /// many bytes may still pass, flipping Killed when the budget is gone.
  /// Requires Mu held.
  size_t passBudget(FdState &S, size_t Len);

  const Config Cfg;
  mutable std::mutex Mu;
  std::unordered_map<int, FdState> Fds;
  uint64_t NextConnOrdinal = 0;
  bool AllPartitioned = false;
  Stats Counters;
};

} // namespace net
} // namespace truediff

#endif // TRUEDIFF_NET_NETENV_H

//===- net/ServiceHandler.cpp - NetServer -> DiffService bridge ------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/ServiceHandler.h"

#include "persist/BinaryCodec.h"

using namespace truediff;
using namespace truediff::net;
using namespace truediff::service;

namespace {

/// Builds a client-supplied binary tree blob inside the document's
/// context. Fresh URIs: the decoder validates the encoded ones but
/// allocates every node via TreeContext::make. Structural caps live in
/// the codec (depth/symbol/list bounds); the memory budget is enforced
/// by the context's arena like any other build.
TreeBuilder makeBlobBuilder(std::string Blob) {
  return [Blob = std::move(Blob)](TreeContext &Ctx) -> BuildResult {
    BuildResult Out;
    persist::DecodeTreeResult R =
        persist::decodeTree(Ctx.signatures(), Ctx, Blob,
                            /*PreserveUris=*/false);
    if (!R.ok()) {
      Out.Error = R.Error.empty() ? "malformed tree blob" : R.Error;
      Out.Code = ErrCode::MalformedFrame;
      return Out;
    }
    Out.Root = R.Root;
    return Out;
  };
}

Response errorResponse(std::string Message) {
  Response R;
  R.Ok = false;
  R.Error = std::move(Message);
  return R;
}

} // namespace

ServiceHandler::ServiceHandler(service::DiffService &Svc)
    : ServiceHandler(Svc, Config()) {}

void ServiceHandler::handle(NetRequest Req,
                            std::function<void(service::Response)> Done) {
  const WireCommand &Cmd = Req.Cmd;
  // Role gate: a non-leader never lets a write reach the service. The
  // answer carries where the leader is plus a pacing hint, so a resilient
  // client redirects instead of spinning.
  if (Cfg.Role != nullptr) {
    switch (Cmd.K) {
    case WireCommand::Kind::Open:
    case WireCommand::Kind::Submit:
    case WireCommand::Kind::Rollback:
    case WireCommand::Kind::Save: {
      RoleState::View V = Cfg.Role->view();
      if (V.R != RoleState::Role::Leader) {
        Response R;
        R.Error = std::string("not the leader (role: ") + roleName(V.R) +
                  "); writes go to the leader";
        R.Code = ErrCode::NotLeader;
        R.LeaderAddr = V.LeaderAddr;
        R.RetryAfterMs = V.RetryAfterMs;
        Done(std::move(R));
        return;
      }
      break;
    }
    default:
      break;
    }
  }
  switch (Cmd.K) {
  case WireCommand::Kind::Open: {
    size_t Bytes = Req.Binary ? Req.Blob.size() : Cmd.Arg.size();
    TreeBuilder Build = Req.Binary
                            ? makeBlobBuilder(std::move(Req.Blob))
                            : makeSExprBuilder(Cmd.Arg, Cfg.Limits);
    Svc.openCb(Cmd.Doc, std::move(Build), Bytes, std::move(Req.Cmd.Author),
               std::move(Done));
    return;
  }
  case WireCommand::Kind::Submit: {
    size_t Bytes = Req.Binary ? Req.Blob.size() : Cmd.Arg.size();
    TreeBuilder Build = Req.Binary
                            ? makeBlobBuilder(std::move(Req.Blob))
                            : makeSExprBuilder(Cmd.Arg, Cfg.Limits);
    Svc.submitCb(Cmd.Doc, std::move(Build), Cfg.SubmitDeadlineMs, Bytes,
                 /*RawScript=*/Req.Binary, std::move(Req.Cmd.Author),
                 Cmd.Expect, std::move(Done));
    return;
  }
  case WireCommand::Kind::Rollback:
    Svc.rollbackCb(Cmd.Doc, std::move(Done));
    return;
  case WireCommand::Kind::Get:
    Svc.getVersionCb(Cmd.Doc, std::move(Done));
    return;
  case WireCommand::Kind::Blame:
    Svc.blameCb(Cmd.Doc, Cmd.HasUri, Cmd.Uri, std::move(Done));
    return;
  case WireCommand::Kind::History:
    Svc.historyCb(Cmd.Doc, Cmd.Uri, std::move(Done));
    return;
  case WireCommand::Kind::Stats:
    Svc.statsCb(std::move(Done));
    return;
  case WireCommand::Kind::Health: {
    // Inline, queue-free: health must answer while the queue is full.
    Response R;
    R.Ok = true;
    R.Payload = Svc.healthJson();
    Done(std::move(R));
    return;
  }
  case WireCommand::Kind::Save:
    Done(Cfg.OnSave ? Cfg.OnSave(Cmd.Doc)
                    : errorResponse("persistence is disabled"));
    return;
  case WireCommand::Kind::Scrub:
    Done(Cfg.OnScrub ? Cfg.OnScrub()
                     : errorResponse("integrity scrubbing is disabled"));
    return;
  case WireCommand::Kind::Recover:
    Done(Cfg.OnRecover ? Cfg.OnRecover()
                       : errorResponse("persistence is disabled"));
    return;
  case WireCommand::Kind::Promote:
    Done(Cfg.OnPromote ? Cfg.OnPromote(Cmd.Expect.value_or(0))
                       : errorResponse("role management is disabled"));
    return;
  case WireCommand::Kind::Demote:
    Done(Cfg.OnDemote ? Cfg.OnDemote(Cmd.Arg)
                      : errorResponse("role management is disabled"));
    return;
  case WireCommand::Kind::Quit:
  case WireCommand::Kind::Invalid:
    // The server answers these itself; getting here is a wiring bug,
    // but a typed error beats a dropped slot.
    Done(errorResponse("unroutable request"));
    return;
  }
  Done(errorResponse("unroutable request"));
}

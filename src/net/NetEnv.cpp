//===- net/NetEnv.cpp - Socket I/O seam with fault injection ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/NetEnv.h"

#include <cerrno>
#include <sys/socket.h>

using namespace truediff;
using namespace truediff::net;

namespace {

ssize_t rawSend(int Fd, const char *Data, size_t Len) {
  return ::send(Fd, Data, Len, MSG_NOSIGNAL);
}

/// Uniform double in [0, 1) from one 64-bit draw -- engine-portable,
/// unlike std::uniform_real_distribution.
double unitDraw(std::mt19937_64 &Rng) {
  return static_cast<double>(Rng() >> 11) /
         static_cast<double>(uint64_t(1) << 53);
}

/// splitmix64 finalizer: decorrelates seed ^ ordinal streams.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

NetEnv::~NetEnv() = default;

ssize_t NetEnv::sendBytes(int Fd, const char *Data, size_t Len) {
  return rawSend(Fd, Data, Len);
}

ssize_t NetEnv::recvBytes(int Fd, char *Buf, size_t Len) {
  return ::recv(Fd, Buf, Len, 0);
}

void NetEnv::onOpen(int) {}
void NetEnv::onClose(int) {}
void NetEnv::tick(std::vector<int> &) {}

//===----------------------------------------------------------------------===//
// FaultyNetEnv
//===----------------------------------------------------------------------===//

size_t FaultyNetEnv::passBudget(FdState &S, size_t Len) {
  if (!S.HasKillBudget)
    return Len;
  if (S.KillBudget == 0) {
    S.Killed = true;
    return 0;
  }
  size_t Allowed = std::min(Len, S.KillBudget);
  S.KillBudget -= Allowed;
  return Allowed;
}

void FaultyNetEnv::onOpen(int Fd) {
  std::lock_guard<std::mutex> Lock(Mu);
  FdState S;
  S.Rng.seed(mix(Cfg.Seed ^ mix(NextConnOrdinal++)));
  if (Cfg.KillProb > 0 && unitDraw(S.Rng) < Cfg.KillProb) {
    S.HasKillBudget = true;
    S.KillBudget = 1 + S.Rng() % std::max<size_t>(1, Cfg.KillAfterMax);
  }
  Fds[Fd] = std::move(S); // fd numbers recycle: always reset
}

void FaultyNetEnv::onClose(int Fd) {
  std::lock_guard<std::mutex> Lock(Mu);
  Fds.erase(Fd); // in-flight delayed bytes die with the connection
}

ssize_t FaultyNetEnv::sendBytes(int Fd, const char *Data, size_t Len) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Fds.find(Fd);
  if (It == Fds.end() || Len == 0)
    return rawSend(Fd, Data, Len);
  FdState &S = It->second;
  if (S.Killed) {
    errno = ECONNRESET;
    return -1;
  }

  // In-flight mutation: one bit of this send flips before the bytes hit
  // the socket. Applied on a copy -- the caller's buffer is const and the
  // caller believes the original bytes were sent, exactly like a checksum
  // escape on the wire.
  std::string Mutated;
  if (Cfg.CorruptProb > 0 && unitDraw(S.Rng) < Cfg.CorruptProb) {
    Mutated.assign(Data, Len);
    size_t Byte = S.Rng() % Len;
    Mutated[Byte] = static_cast<char>(Mutated[Byte] ^ (1u << (S.Rng() % 8)));
    Data = Mutated.data();
    ++Counters.CorruptedSends;
  }

  bool Held = AllPartitioned || S.Partitioned;
  bool Delayed = !Held && Cfg.DelayProb > 0 && unitDraw(S.Rng) < Cfg.DelayProb;
  // Anything already queued must drain first or bytes would reorder.
  if (Held || Delayed || !S.Queue.empty()) {
    Pending P;
    P.Bytes.assign(Data, Len);
    P.Due = Clock::now();
    if (Delayed)
      P.Due += std::chrono::milliseconds(
          1 + S.Rng() % std::max<unsigned>(1, Cfg.MaxDelayMs));
    S.Queue.push_back(std::move(P));
    if (Held)
      ++Counters.HeldSends;
    if (Delayed)
      ++Counters.DelayedSends;
    return static_cast<ssize_t>(Len); // accepted; the env owns them now
  }

  size_t Want = Len;
  if (Cfg.ShortWriteProb > 0 && Len > 1 &&
      unitDraw(S.Rng) < Cfg.ShortWriteProb) {
    Want = 1 + S.Rng() % (Len - 1);
    ++Counters.ShortWrites;
  }
  Want = passBudget(S, Want);
  if (Want == 0) {
    ++Counters.Kills;
    errno = ECONNRESET;
    return -1;
  }
  ssize_t N = rawSend(Fd, Data, Want);
  if (N < 0 && S.HasKillBudget)
    S.KillBudget += Want; // nothing left the process; refund the budget
  else if (N >= 0 && S.HasKillBudget)
    S.KillBudget += Want - static_cast<size_t>(N);
  return N;
}

ssize_t FaultyNetEnv::recvBytes(int Fd, char *Buf, size_t Len) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Fds.find(Fd);
    if (It != Fds.end() && It->second.Killed) {
      errno = ECONNRESET;
      return -1;
    }
  }
  return ::recv(Fd, Buf, Len, 0);
}

void FaultyNetEnv::tick(std::vector<int> &Kill) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (AllPartitioned)
    return;
  Clock::time_point Now = Clock::now();
  for (auto &[Fd, S] : Fds) {
    if (S.Killed || S.Partitioned)
      continue;
    while (!S.Queue.empty()) {
      Pending &P = S.Queue.front();
      if (P.Due > Now)
        break;
      size_t Left = P.Bytes.size() - P.Pos;
      size_t Want = passBudget(S, Left);
      if (Want == 0) {
        // Budget exhausted on held bytes: the connection dies with its
        // queue, exactly like a crash dropping an un-flushed buffer.
        ++Counters.Kills;
        S.Queue.clear();
        Kill.push_back(Fd);
        break;
      }
      ssize_t N = rawSend(Fd, P.Bytes.data() + P.Pos, Want);
      if (N < 0) {
        if (S.HasKillBudget)
          S.KillBudget += Want;
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          break; // socket full; retry next tick
        // Fatal socket error on a deferred flush: the conn may never
        // write again on its own, so surface the death via the kill
        // list.
        S.Killed = true;
        S.Queue.clear();
        Kill.push_back(Fd);
        break;
      }
      if (S.HasKillBudget)
        S.KillBudget += Want - static_cast<size_t>(N);
      P.Pos += static_cast<size_t>(N);
      if (P.Pos < P.Bytes.size())
        break; // partial: keep the remainder in order
      S.Queue.pop_front();
    }
  }
}

void FaultyNetEnv::setPartitioned(bool On) {
  std::lock_guard<std::mutex> Lock(Mu);
  AllPartitioned = On;
}

void FaultyNetEnv::setPartitioned(int Fd, bool On) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Fds.find(Fd);
  if (It != Fds.end())
    It->second.Partitioned = On;
}

void FaultyNetEnv::killAfter(int Fd, size_t Bytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Fds.find(Fd);
  if (It == Fds.end())
    return;
  It->second.HasKillBudget = true;
  It->second.KillBudget = Bytes;
}

FaultyNetEnv::Stats FaultyNetEnv::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

//===- net/Role.h - Replica role seam for the front end ---------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread-safe role gate the request front end consults before
/// admitting a write: a node is the leader (writes apply), a follower
/// (writes answer not_leader with a redirect hint), or a demoted
/// ex-leader (fenced; same answer). Failover flips the role -- promote()
/// on the winning follower, demote() on the fenced leader -- and the
/// front end picks the change up on the next request; there is no
/// request-path locking beyond one mutex-protected snapshot.
///
/// The role state deliberately knows nothing about replication: it is a
/// label plus routing hints. The machinery that makes a promotion true
/// (state export, log seeding, epoch fencing) lives in replica/Failover.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_NET_ROLE_H
#define TRUEDIFF_NET_ROLE_H

#include <cstdint>
#include <mutex>
#include <string>

namespace truediff {
namespace net {

class RoleState {
public:
  enum class Role : uint8_t {
    Leader,   ///< writes apply here
    Follower, ///< read replica; writes redirect to the leader
    Demoted,  ///< fenced ex-leader; writes redirect to the new leader
  };

  /// One consistent snapshot of the role.
  struct View {
    Role R = Role::Follower;
    uint64_t Epoch = 0;
    /// Where writes go when R != Leader ("host:port"; empty = unknown).
    std::string LeaderAddr;
    /// Backoff hint attached to not_leader answers, so a redirected
    /// client paces its retry instead of hammering a cluster mid-failover.
    uint64_t RetryAfterMs = 50;
  };

  RoleState() = default;
  RoleState(Role R, uint64_t Epoch) {
    V.R = R;
    V.Epoch = Epoch;
  }

  bool writable() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return V.R == Role::Leader;
  }

  View view() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return V;
  }

  /// This node won a failover: serve writes under \p NewEpoch.
  void promote(uint64_t NewEpoch) {
    std::lock_guard<std::mutex> Lock(Mu);
    V.R = Role::Leader;
    if (NewEpoch > V.Epoch)
      V.Epoch = NewEpoch;
    V.LeaderAddr.clear();
  }

  /// This node lost leadership (or learned of a higher epoch): stop
  /// serving writes and point clients at \p LeaderAddr (empty = unknown).
  void demote(std::string LeaderAddr) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (V.R == Role::Leader)
      V.R = Role::Demoted;
    V.LeaderAddr = std::move(LeaderAddr);
  }

  void setLeaderAddr(std::string Addr) {
    std::lock_guard<std::mutex> Lock(Mu);
    V.LeaderAddr = std::move(Addr);
  }

  void setRetryAfterMs(uint64_t Ms) {
    std::lock_guard<std::mutex> Lock(Mu);
    V.RetryAfterMs = Ms;
  }

  void noteEpoch(uint64_t Epoch) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Epoch > V.Epoch)
      V.Epoch = Epoch;
  }

private:
  mutable std::mutex Mu;
  View V;
};

inline const char *roleName(RoleState::Role R) {
  switch (R) {
  case RoleState::Role::Leader:
    return "leader";
  case RoleState::Role::Follower:
    return "follower";
  case RoleState::Role::Demoted:
    return "demoted";
  }
  return "unknown";
}

} // namespace net
} // namespace truediff

#endif // TRUEDIFF_NET_ROLE_H

//===- truediff/SubtreeShare.h - Shares of equivalent subtrees --*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Subtree shares manage subtrees as resources during diffing (paper
/// Section 4.2): all structurally equivalent subtrees of the source and
/// target tree are assigned the same share. Source subtrees are registered
/// as *available* resources; target subtrees demand resources from their
/// share in Step 3.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUEDIFF_SUBTREESHARE_H
#define TRUEDIFF_TRUEDIFF_SUBTREESHARE_H

#include "support/Digest.h"
#include "tree/Tree.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace truediff {

/// The share of one structural-equivalence class of subtrees.
///
/// Availability is tracked with a registration-order list plus a per-node
/// flag (Tree::shareAvailable); deregistered entries are skipped lazily,
/// which keeps registration, deregistration, and selection amortized
/// constant time (required for the linear-time bound of Theorem 4.1) and
/// makes "take any" deterministic (earliest registered wins). The flag
/// lives in the node rather than a per-share URI hash set so the Step-3
/// scan is a linear walk over Order with one flag load per entry.
class SubtreeShare {
public:
  /// Makes \p T available for reuse. Called for source subtrees in Step 2.
  void registerAvailableTree(Tree *T) {
    Order.push_back(T);
    T->setShareAvailable(true);
  }

  /// Removes \p T from the available set (the tree was consumed as part
  /// of an acquired subtree). No-op if not available.
  void deregisterAvailableTree(Tree *T) { T->setShareAvailable(false); }

  bool isAvailable(const Tree *T) const { return T->shareAvailable(); }

  /// Returns the earliest-registered available tree, or nullptr.
  Tree *takeAny();

  /// Returns the earliest-registered available tree whose literal hash
  /// equals \p LitHash (an exact copy, the *preferred* candidates of
  /// Section 4.1), or nullptr. The literal index is built lazily on the
  /// first preferred query, i.e. at the start of Step 3 when the available
  /// set is complete.
  Tree *takePreferred(const Digest &LitHash);

private:
  /// Candidates with one literal hash, in registration order; Head skips
  /// entries consumed since the index was built.
  struct PrefList {
    std::vector<Tree *> Trees;
    size_t Head = 0;
  };

  void buildPreferredIndex();

  std::vector<Tree *> Order;
  size_t Head = 0;
  std::unordered_map<Digest, PrefList, DigestHash> Preferred;
  bool PreferredBuilt = false;
};

/// Interns subtree shares by structure hash: two subtrees receive the same
/// share iff they are structurally equivalent (Section 4.2). Shares live
/// in a deque arena owned by the registry, so creating one is a bump
/// allocation instead of a heap round trip per equivalence class.
class SubtreeRegistry {
public:
  /// Pre-sizes the intern table for about \p NumTrees registered nodes,
  /// so Step 2 never rehashes the table mid-flight. An upper bound is
  /// fine; compareTo passes the combined source+target node count.
  void reserve(size_t NumTrees) { Shares.reserve(NumTrees); }

  /// Returns the share for \p T's structure hash, creating it on first
  /// use, and stores it in the node. Idempotent.
  SubtreeShare *assignShare(Tree *T);

  /// assignShare + registerAvailableTree; used for source subtrees that
  /// may be moved anywhere.
  SubtreeShare *assignShareAndRegisterTree(Tree *T);

  size_t numShares() const { return Shares.size(); }

private:
  std::unordered_map<Digest, SubtreeShare *, DigestHash> Shares;
  std::deque<SubtreeShare> Arena;
};

} // namespace truediff

#endif // TRUEDIFF_TRUEDIFF_SUBTREESHARE_H

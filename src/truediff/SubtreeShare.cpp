//===- truediff/SubtreeShare.cpp - Shares of equivalent subtrees -----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truediff/SubtreeShare.h"

using namespace truediff;

Tree *SubtreeShare::takeAny() {
  while (Head < Order.size()) {
    Tree *T = Order[Head];
    if (T->shareAvailable())
      return T;
    ++Head; // consumed elsewhere; skip for good
  }
  return nullptr;
}

void SubtreeShare::buildPreferredIndex() {
  for (size_t I = Head, E = Order.size(); I != E; ++I) {
    Tree *T = Order[I];
    if (T->shareAvailable())
      Preferred[T->literalHash()].Trees.push_back(T);
  }
  PreferredBuilt = true;
}

Tree *SubtreeShare::takePreferred(const Digest &LitHash) {
  if (!PreferredBuilt)
    buildPreferredIndex();
  auto It = Preferred.find(LitHash);
  if (It == Preferred.end())
    return nullptr;
  PrefList &List = It->second;
  while (List.Head < List.Trees.size()) {
    Tree *T = List.Trees[List.Head];
    if (T->shareAvailable())
      return T;
    ++List.Head;
  }
  return nullptr;
}

SubtreeShare *SubtreeRegistry::assignShare(Tree *T) {
  if (T->share() != nullptr)
    return T->share();
  SubtreeShare *&Slot = Shares[T->structureHash()];
  if (Slot == nullptr) {
    Arena.emplace_back();
    Slot = &Arena.back();
  }
  T->setShare(Slot);
  return Slot;
}

SubtreeShare *SubtreeRegistry::assignShareAndRegisterTree(Tree *T) {
  SubtreeShare *Share = assignShare(T);
  Share->registerAvailableTree(T);
  return Share;
}

//===- truediff/TrueDiff.h - The truediff structural diffing algorithm -----===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The truediff algorithm (paper Section 4): computes a concise, type-safe
/// truechange edit script that transforms a source tree into a target
/// tree, in time linear in the sizes of both trees (Theorem 4.1).
///
/// The four steps:
///  1. Subtree equivalences are prepared during tree construction (the
///     structure and literal hashes cached in every Tree node).
///  2. assignShares: all structurally equivalent subtrees get the same
///     SubtreeShare; source subtrees are registered as available, and
///     identical source/target pairs are assigned preemptively.
///  3. assignSubtrees: target subtrees acquire available source subtrees,
///     highest-first to avoid fragmentation, preferring exact (literally
///     equivalent) copies.
///  4. computeEdits: a simultaneous traversal emits edits for changed
///     nodes only; negative edits precede positive edits in the script.
///
/// compareTo *consumes* the source tree: reused nodes move into the
/// returned patched tree, which is structurally and literally equal to the
/// target but reuses source URIs, ready for the next diffing round
/// (incremental computing, Section 6).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUEDIFF_TRUEDIFF_H
#define TRUEDIFF_TRUEDIFF_TRUEDIFF_H

#include "support/WorkerPool.h"
#include "tree/Tree.h"
#include "truechange/Edit.h"
#include "truediff/EditBuffer.h"
#include "truediff/SubtreeShare.h"

#include <queue>

namespace truediff {

/// Tuning knobs; the defaults reproduce the paper's algorithm, the other
/// settings exist for the ablation benches (DESIGN.md E9/E10).
struct TrueDiffOptions {
  /// Prefer literally equivalent (exact-copy) reuse candidates before
  /// falling back to structurally equivalent ones (Section 4.1/4.3).
  bool PreferLiteralMatches = true;

  /// Traverse target subtrees highest-first (Section 4.3). When false, a
  /// FIFO breadth-first order is used instead.
  bool HeightPriority = true;

  /// After Step 4, recompute the patched tree's derived data (Step-1
  /// digests, heights, sizes) only along the root-to-edit paths the diff
  /// touched, instead of rehashing the whole tree. Semantically invisible
  /// -- the resulting digests are identical -- but it turns the per-diff
  /// hashing cost from O(tree) into O(changed paths), which is what makes
  /// a persisted, pre-hashed source tree "warm" (DocumentStore's digest
  /// cache). When false, the paper-faithful full refresh runs instead.
  bool IncrementalRehash = true;

  /// Optional worker pool for Step-1 hashing. Only consulted on the
  /// full-refresh path (IncrementalRehash = false): the whole-tree rehash
  /// after Step 4 is fanned out via Tree::refreshDerivedParallel. The
  /// incremental path rehashes only the touched root-to-edit paths, which
  /// are too small to be worth distributing. The pool must outlive the
  /// TrueDiff session; nullptr keeps everything on the calling thread.
  WorkerPool *Step1Pool = nullptr;
};

/// Result of one diff: the edit script and the patched tree.
struct DiffResult {
  EditScript Script;
  /// The source tree transformed into the target: uses newly loaded nodes
  /// and reused source nodes only, with fresh derived data and cleared
  /// diffing state.
  Tree *Patched = nullptr;
  /// Number of patched-tree nodes whose derived data was recomputed after
  /// Step 4: the whole tree under full refresh, only the dirty paths under
  /// IncrementalRehash. The difference to Patched->size() is what the
  /// digest cache saved.
  uint64_t NodesRehashed = 0;
};

/// One diffing session. The source and target tree must live in the same
/// TreeContext, so their URIs are unique across both.
class TrueDiff {
public:
  explicit TrueDiff(TreeContext &Ctx, TrueDiffOptions Opts = TrueDiffOptions())
      : Ctx(Ctx), Sig(Ctx.signatures()), Opts(Opts) {}

  /// Computes the difference between \p Source and \p Target.
  /// \p Source is consumed (its nodes move into the result); \p Target is
  /// left intact. Both trees' diffing state is cleared afterwards.
  ///
  /// \p Source must carry valid derived data (it does after construction,
  /// refreshDerived, or a previous compareTo round -- trees are
  /// "pre-hashed" by default in this representation).
  DiffResult compareTo(Tree *Source, Tree *Target);

  /// Recomputes derived data along the dirty paths Step 4 marked in
  /// \p Patched, clearing the marks; returns the number of nodes rehashed.
  /// Exposed so callers that apply edits to typed trees outside compareTo
  /// (and mark the touched nodes via Tree::markDerivedDirty) can restore
  /// the digest-cache invariant without a full rehash. \p Policy must
  /// match the digest policy of the context owning \p Patched.
  static uint64_t rehashDirtyPaths(const SignatureTable &Sig, Tree *Patched,
                                   DigestPolicy Policy = DigestPolicy::Sha256) {
    return Patched->rehashDirtyPaths(Sig, Policy);
  }

private:
  /// \name Step 2
  /// @{
  void assignShares(Tree *This, Tree *That);
  void assignSharesRec(Tree *This, Tree *That);
  /// @}

  /// \name Step 3
  /// @{
  void assignSubtrees(Tree *That);

  /// Tries to acquire a reuse candidate for \p That; returns true on
  /// success.
  bool selectTree(Tree *That, bool Preferred);

  /// Acquires \p Source for \p That: deregisters Source and its subtrees,
  /// undoes preemptive assignments inside Source (re-enqueueing the
  /// affected target subtrees), and assigns the pair.
  void takeTree(Tree *Source, Tree *That);
  /// @}

  /// \name Step 4
  /// @{
  Tree *computeEdits(Tree *This, Tree *That, NodeRef Parent, LinkId Link,
                     EditBuffer &Edits);
  Tree *computeEditsRec(Tree *This, Tree *That, EditBuffer &Edits);
  Tree *updateLits(Tree *This, Tree *That, EditBuffer &Edits);
  Tree *loadUnassigned(Tree *That, EditBuffer &Edits);
  void unloadUnassigned(Tree *This, EditBuffer &Edits);
  /// @}

  std::vector<KidRef> kidRefs(const Tree *T) const;
  std::vector<LitRef> litRefs(TagId Tag, const std::vector<Literal> &Lits)
      const;

  TreeContext &Ctx;
  const SignatureTable &Sig;
  TrueDiffOptions Opts;
  SubtreeRegistry Registry;

  /// Step 3 worklist. Ordered by (height desc, URI asc) for determinism;
  /// takeTree re-enqueues targets whose preemptive assignment was undone.
  struct QueueOrder {
    bool operator()(const Tree *A, const Tree *B) const {
      if (A->height() != B->height())
        return A->height() < B->height();
      return A->uri() > B->uri();
    }
  };
  std::priority_queue<Tree *, std::vector<Tree *>, QueueOrder> Queue;

  /// Session-unique stamp source for takeTree's containment marks.
  uint32_t MarkCounter = 0;
};

} // namespace truediff

#endif // TRUEDIFF_TRUEDIFF_TRUEDIFF_H

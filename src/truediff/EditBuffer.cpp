//===- truediff/EditBuffer.cpp - Ordered edit accumulation -----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truediff/EditBuffer.h"

using namespace truediff;

EditScript EditBuffer::toEditScript() && {
  std::vector<Edit> All;
  All.reserve(Negatives.size() + Positives.size());
  for (Edit &E : Negatives)
    All.push_back(std::move(E));
  for (Edit &E : Positives)
    All.push_back(std::move(E));
  return EditScript(std::move(All));
}

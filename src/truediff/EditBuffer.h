//===- truediff/EditBuffer.h - Ordered edit accumulation --------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects edits during Step 4 of truediff. The buffer distinguishes
/// negative edits (detach, unload) from positive edits (attach, load,
/// update); the final edit script contains all negative edits before all
/// positive edits, which ensures every subtree is detached before it is
/// reattached (paper Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TRUEDIFF_EDITBUFFER_H
#define TRUEDIFF_TRUEDIFF_EDITBUFFER_H

#include "truechange/Edit.h"

#include <vector>

namespace truediff {

/// Accumulates edits in two phases and assembles the final script.
class EditBuffer {
public:
  /// Appends \p E to the negative or positive phase based on its kind.
  void emit(Edit E) {
    if (E.isNegative())
      Negatives.push_back(std::move(E));
    else
      Positives.push_back(std::move(E));
  }

  size_t size() const { return Negatives.size() + Positives.size(); }

  /// Assembles negatives-then-positives into one script, consuming the
  /// buffer.
  EditScript toEditScript() &&;

private:
  std::vector<Edit> Negatives;
  std::vector<Edit> Positives;
};

} // namespace truediff

#endif // TRUEDIFF_TRUEDIFF_EDITBUFFER_H

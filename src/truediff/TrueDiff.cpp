//===- truediff/TrueDiff.cpp - The truediff structural diffing algorithm ---===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "truediff/TrueDiff.h"

#include <cassert>
#include <deque>
#include <unordered_set>

using namespace truediff;

//===----------------------------------------------------------------------===//
// Step 2: find reuse candidates
//===----------------------------------------------------------------------===//

void TrueDiff::assignShares(Tree *This, Tree *That) {
  Registry.assignShare(This);
  Registry.assignShare(That);
  if (This->share() == That->share()) {
    // this and that are structurally equivalent: preemptively assign the
    // pair and stop recursing; the whole subtree is reused in place.
    This->assignTree(That);
    return;
  }
  assignSharesRec(This, That);
}

void TrueDiff::assignSharesRec(Tree *This, Tree *That) {
  if (This->tag() == That->tag()) {
    // Same constructor: this may be reusable in place, and we recurse
    // simultaneously into the kids.
    This->share()->registerAvailableTree(This);
    for (size_t I = 0, E = This->arity(); I != E; ++I)
      assignShares(This->kid(I), That->kid(I));
    return;
  }
  // Different constructors: every source subtree becomes available for
  // moves; every target subtree receives its share for Step 3.
  This->foreachTree(
      [this](Tree *T) { Registry.assignShareAndRegisterTree(T); });
  That->foreachSubtree([this](Tree *T) { Registry.assignShare(T); });
}

//===----------------------------------------------------------------------===//
// Step 3: select reuse candidates
//===----------------------------------------------------------------------===//

bool TrueDiff::selectTree(Tree *That, bool Preferred) {
  // Preemptively assigned target kids can re-enter the queue (see
  // takeTree), and their own kids may never have received a share in
  // Step 2; assignShare is idempotent and fills the gap.
  SubtreeShare *Share = Registry.assignShare(That);
  Tree *Candidate = Preferred ? Share->takePreferred(That->literalHash())
                              : Share->takeAny();
  if (Candidate == nullptr)
    return false;
  takeTree(Candidate, That);
  return true;
}

void TrueDiff::takeTree(Tree *Source, Tree *That) {
  assert(Source->share() != nullptr && "available trees carry a share");

  // Assigning Source to That as a whole invalidates every assignment that
  // involves a node inside either tree. Mark both node sets first (cheap
  // session-unique stamps); the traversal cost matches the paper's
  // accounting for Step 3 (acquired trees are traversed once to
  // deregister their nodes).
  uint32_t SourceMark = ++MarkCounter;
  uint32_t ThatMark = ++MarkCounter;
  Source->foreachTree([&](Tree *T) { T->setMark(SourceMark); });
  That->foreachTree([&](Tree *T) { T->setMark(ThatMark); });
  auto InSourceCount = [&](const Tree *T) { return T->mark() == SourceMark; };
  auto InThatCount = [&](const Tree *T) { return T->mark() == ThatMark; };

  // The acquired tree is consumed as a whole: none of its subtrees may be
  // reused elsewhere, and preemptive assignments of smaller subtrees are
  // undone -- we prioritize reusing the larger tree (Section 4.3).
  Source->share()->deregisterAvailableTree(Source);
  Source->foreachSubtree([&](Tree *Subtree) {
    if (Subtree->share() != nullptr)
      Subtree->share()->deregisterAvailableTree(Subtree);
    if (Subtree->assigned() != nullptr) {
      Tree *ThatNode = Subtree->assigned();
      Subtree->unassignTree();
      // The affected target subtree must look for another candidate --
      // unless it lives inside That, where the acquired tree already
      // covers it.
      if (!InThatCount(ThatNode))
        Queue.push(ThatNode);
    }
  });

  // Dually, target subtrees of That that were assigned to source trees
  // *outside* Source release their partners: those source trees become
  // available resources again. (Partners inside Source were just handled
  // above.) Every target descendant is also marked covered: a target node
  // re-enqueued by an earlier undo must not acquire a source tree of its
  // own once an ancestor reuses a tree wholesale -- Step 4 would never
  // visit it and its partner would leak.
  That->foreachSubtree([&](Tree *ThatSub) {
    ThatSub->setCovered(true);
    if (ThatSub->assigned() == nullptr)
      return;
    Tree *Partner = ThatSub->assigned();
    ThatSub->unassignTree();
    if (!InSourceCount(Partner)) {
      assert(Partner->share() != nullptr &&
             "assigned source nodes carry a share");
      Partner->share()->registerAvailableTree(Partner);
    }
  });

  Source->assignTree(That);
}

void TrueDiff::assignSubtrees(Tree *That) {
  if (!Opts.HeightPriority) {
    // Ablation mode: plain FIFO breadth-first processing.
    std::deque<Tree *> Fifo{That};
    auto Drain = [&]() {
      while (!Fifo.empty()) {
        Tree *Next = Fifo.front();
        Fifo.pop_front();
        if (Next->assigned() != nullptr || Next->covered())
          continue;
        if (Opts.PreferLiteralMatches && selectTree(Next, /*Preferred=*/true))
          continue;
        if (selectTree(Next, /*Preferred=*/false))
          continue;
        for (size_t I = 0, E = Next->arity(); I != E; ++I)
          Fifo.push_back(Next->kid(I));
      }
    };
    Drain();
    // takeTree pushes undone targets into Queue; drain them FIFO too.
    while (!Queue.empty()) {
      Fifo.push_back(Queue.top());
      Queue.pop();
      Drain();
    }
    return;
  }

  Queue.push(That);
  while (!Queue.empty()) {
    // Dequeue all subtrees of the current (largest) height. Deduplicate:
    // a target node can be enqueued by its parent and again by an
    // assignment undo.
    uint32_t Level = Queue.top()->height();
    std::vector<Tree *> Nexts;
    std::unordered_set<Tree *> SeenThisLevel;
    while (!Queue.empty() && Queue.top()->height() == Level) {
      Tree *Next = Queue.top();
      Queue.pop();
      if (Next->assigned() != nullptr || Next->covered())
        continue; // reused as a whole (itself or via an ancestor)
      if (SeenThisLevel.insert(Next).second)
        Nexts.push_back(Next);
    }

    // First try preferred (literally equivalent) candidates, then any
    // structurally equivalent candidate.
    std::vector<Tree *> Remaining;
    if (Opts.PreferLiteralMatches) {
      for (Tree *Next : Nexts)
        if (!selectTree(Next, /*Preferred=*/true))
          Remaining.push_back(Next);
    } else {
      Remaining = std::move(Nexts);
    }
    for (Tree *Next : Remaining) {
      if (selectTree(Next, /*Preferred=*/false))
        continue;
      // No reuse candidate: search for smaller reusable subtrees.
      for (size_t I = 0, E = Next->arity(); I != E; ++I)
        Queue.push(Next->kid(I));
    }
  }
}

//===----------------------------------------------------------------------===//
// Step 4: compute edit script
//===----------------------------------------------------------------------===//

std::vector<KidRef> TrueDiff::kidRefs(const Tree *T) const {
  const TagSignature &TagSig = Sig.signature(T->tag());
  std::vector<KidRef> Refs;
  Refs.reserve(T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    Refs.push_back(KidRef{TagSig.Kids[I].Link, T->kid(I)->uri()});
  return Refs;
}

std::vector<LitRef> TrueDiff::litRefs(TagId Tag,
                                      const std::vector<Literal> &Lits) const {
  const TagSignature &TagSig = Sig.signature(Tag);
  assert(Lits.size() == TagSig.Lits.size());
  std::vector<LitRef> Refs;
  Refs.reserve(Lits.size());
  for (size_t I = 0, E = Lits.size(); I != E; ++I)
    Refs.push_back(LitRef{TagSig.Lits[I].Link, Lits[I]});
  return Refs;
}

Tree *TrueDiff::updateLits(Tree *This, Tree *That, EditBuffer &Edits) {
  if (This->literalHash() != That->literalHash()) {
    // Literals change somewhere in this subtree: the cached literal hashes
    // along the descent become stale.
    This->markDerivedDirty();
    if (This->lits() != That->lits()) {
      Edits.emit(Edit::update(NodeRef{This->tag(), This->uri()},
                              litRefs(This->tag(), This->lits()),
                              litRefs(This->tag(), That->lits())));
      This->setLits(That->lits());
    }
    // Structurally equivalent trees have identical shapes; descend to fix
    // literal mismatches further down.
    for (size_t I = 0, E = This->arity(); I != E; ++I)
      updateLits(This->kid(I), That->kid(I), Edits);
  }
  return This;
}

Tree *TrueDiff::computeEditsRec(Tree *This, Tree *That, EditBuffer &Edits) {
  if (This->tag() != That->tag())
    return nullptr;
  // Reuse this node in place and continue the simultaneous traversal. The
  // node sits on a root-to-edit path (it may receive new kids or
  // literals), so its cached derived data is invalidated.
  This->markDerivedDirty();
  NodeRef Parent{This->tag(), This->uri()};
  const TagSignature &TagSig = Sig.signature(This->tag());
  for (size_t I = 0, E = This->arity(); I != E; ++I)
    This->setKid(I, computeEdits(This->kid(I), That->kid(I), Parent,
                                 TagSig.Kids[I].Link, Edits));
  if (This->lits() != That->lits()) {
    Edits.emit(Edit::update(NodeRef{This->tag(), This->uri()},
                            litRefs(This->tag(), This->lits()),
                            litRefs(This->tag(), That->lits())));
    This->setLits(That->lits());
  }
  return This;
}

void TrueDiff::unloadUnassigned(Tree *This, EditBuffer &Edits) {
  if (This->assigned() != nullptr) {
    // Assigned subtrees are kept: they stay unattached roots until they
    // are reattached at their new position.
    return;
  }
  Edits.emit(Edit::unload(NodeRef{This->tag(), This->uri()}, kidRefs(This),
                          litRefs(This->tag(), This->lits())));
  for (size_t I = 0, E = This->arity(); I != E; ++I)
    unloadUnassigned(This->kid(I), Edits);
}

Tree *TrueDiff::loadUnassigned(Tree *That, EditBuffer &Edits) {
  if (That->assigned() != nullptr) {
    // Reuse the assigned source tree, adapting its literals if it was
    // only structurally equivalent.
    return updateLits(That->assigned(), That, Edits);
  }
  const TagSignature &TagSig = Sig.signature(That->tag());
  std::vector<Tree *> NewKids;
  std::vector<KidRef> Refs;
  NewKids.reserve(That->arity());
  Refs.reserve(That->arity());
  for (size_t I = 0, E = That->arity(); I != E; ++I) {
    Tree *Kid = loadUnassigned(That->kid(I), Edits);
    Refs.push_back(KidRef{TagSig.Kids[I].Link, Kid->uri()});
    NewKids.push_back(Kid);
  }
  Tree *NewNode = Ctx.make(That->tag(), std::move(NewKids), That->lits());
  // make() hashed the fresh node from its kids' cached digests; if a kid
  // is a reused tree with pending literal updates, those inputs were
  // stale, so the node must be rehashed with them.
  for (size_t I = 0, E = NewNode->arity(); I != E; ++I)
    if (NewNode->kid(I)->derivedDirty()) {
      NewNode->markDerivedDirty();
      break;
    }
  Edits.emit(Edit::load(NodeRef{NewNode->tag(), NewNode->uri()},
                        std::move(Refs),
                        litRefs(That->tag(), That->lits())));
  return NewNode;
}

Tree *TrueDiff::computeEdits(Tree *This, Tree *That, NodeRef Parent,
                             LinkId Link, EditBuffer &Edits) {
  if (This->assigned() == That)
    return updateLits(This, That, Edits);

  if (This->assigned() == nullptr && That->assigned() == nullptr)
    if (Tree *Reused = computeEditsRec(This, That, Edits))
      return Reused;

  // Replace this subtree by that subtree.
  Edits.emit(Edit::detach(NodeRef{This->tag(), This->uri()}, Link, Parent));
  unloadUnassigned(This, Edits);
  Tree *NewTree = loadUnassigned(That, Edits);
  Edits.emit(
      Edit::attach(NodeRef{NewTree->tag(), NewTree->uri()}, Link, Parent));
  return NewTree;
}

//===----------------------------------------------------------------------===//
// Main algorithm
//===----------------------------------------------------------------------===//

DiffResult TrueDiff::compareTo(Tree *Source, Tree *Target) {
  assert(Source != nullptr && Target != nullptr);
  assert(Source != Target && "cannot diff a tree against itself");

  // Fresh session state (Step 1 hashes are cached in the nodes already).
  Registry = SubtreeRegistry();
  // Size the intern table up-front: at most one share per registered node,
  // so the combined node count bounds the bucket demand and Step 2 never
  // rehashes the table mid-flight.
  Registry.reserve(static_cast<size_t>(Source->size() + Target->size()));
  assert(Queue.empty());

  assignShares(Source, Target);  // Step 2
  assignSubtrees(Target);        // Step 3

#ifdef TRUEDIFF_DEBUG_INVARIANTS
  // Nested assignments on either side leak resources in Step 4.
  std::function<void(Tree *, Tree *, const char *)> CheckNesting =
      [&](Tree *T, Tree *AssignedAncestor, const char *Side) {
        if (T->assigned() != nullptr && AssignedAncestor != nullptr)
          fprintf(stderr,
                  "NESTED ASSIGNMENT side=%s uri=%llu partner=%llu "
                  "ancestor=%llu ancestorPartner=%llu\n",
                  Side, (unsigned long long)T->uri(),
                  (unsigned long long)T->assigned()->uri(),
                  (unsigned long long)AssignedAncestor->uri(),
                  (unsigned long long)AssignedAncestor->assigned()->uri());
        Tree *Now = AssignedAncestor != nullptr
                        ? AssignedAncestor
                        : (T->assigned() != nullptr ? T : nullptr);
        for (size_t I = 0; I != T->arity(); ++I)
          CheckNesting(T->kid(I), Now, Side);
      };
  CheckNesting(Target, nullptr, "target");
  CheckNesting(Source, nullptr, "source");
#endif

  EditBuffer Edits;              // Step 4
  Tree *Patched =
      computeEdits(Source, Target, NodeRef{Sig.rootTag(), NullURI},
                   Sig.rootLink(), Edits);

  DiffResult Result;
  Result.Script = std::move(Edits).toEditScript();
  Result.Patched = Patched;

  // Reused nodes received new kids and literals; refresh the caches so
  // the patched tree is ready for the next diffing round. Incrementally,
  // only the root-to-edit paths Step 4 marked dirty need rehashing; the
  // resulting digests are identical to a full refresh either way.
  if (Opts.IncrementalRehash)
    Result.NodesRehashed = Patched->rehashDirtyPaths(Sig, Ctx.digestPolicy());
  else {
    if (Opts.Step1Pool != nullptr)
      Patched->refreshDerivedParallel(Sig, Ctx.digestPolicy(),
                                      *Opts.Step1Pool);
    else
      Patched->refreshDerived(Sig, Ctx.digestPolicy());
    Result.NodesRehashed = Patched->size();
  }
  Patched->clearDiffState();
  Target->clearDiffState();
  return Result;
}

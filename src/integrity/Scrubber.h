//===- integrity/Scrubber.h - Background integrity scrubber -----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end integrity service: a background scrubber that
/// continuously re-derives every integrity invariant the system relies
/// on, instead of trusting that state written correctly once stays
/// correct forever. One scrub cycle runs three passes:
///
///   1. Memory. Every live document's Step-1 digest cache is re-verified
///      against a from-scratch recomputation (DocumentStore::checkDigests,
///      the PR 2 debug facility promoted into a service). A mismatch
///      means the in-memory tree or its cached digests rotted; the
///      document is quarantined -- writes rejected with
///      ErrCode::Quarantined, reads answered with an explicit warning --
///      and a repair from durable state (newest snapshot + WAL replay)
///      is attempted. The blast radius is exactly one document.
///
///   2. Anti-entropy. For every healthy document the cycle computes the
///      cross-process convergence digest (SHA-256 of the URI-subscripted
///      s-expression, the same probe Follower::read exposes) and fans
///      per-shard summaries out to the follower replicas through the
///      replication channel. A follower whose applied state disagrees
///      requests a per-document resync -- repair from the healthy copy
///      -- so silent replica divergence that no version or gap check can
///      see is bounded by one scrub interval.
///
///   3. Disk. Closed WAL segments are re-read and CRC-walked; snapshot
///      files are re-read and CRC-checked. The active WAL segment is
///      never touched (its tail is legitimately in flux -- scrubbing it
///      would manufacture false positives). Corrupt files are repaired
///      from the healthy in-memory state: fresh snapshots of every live
///      document make the damaged records dead, compaction removes the
///      dead segment, and a corrupt snapshot file is deleted once a
///      valid snapshot with Seq >= its own covers the document. Known
///      corruption is remembered by path, so one bad file is counted
///      once, not once per cycle.
///
/// Pacing: a token bucket (Config::RatePerSec) bounds how many
/// documents/files a cycle touches per second, so the scrubber's full
/// rehash never competes with serving traffic for more than its budget.
///
/// Race with live writers, by design: a document committed between the
/// cycle's AsOfSeq capture and its digest computation can yield a
/// summary entry ahead of the follower's applied state. The follower's
/// seq gates (skip summaries ahead of LastSeq, skip entries behind its
/// own DocSeq) close most of the window; what remains triggers a
/// spurious resync, which is wasteful but always safe -- anti-entropy
/// repair is idempotent. Detection is therefore conservative: a real
/// divergence is found within one cycle, a clean system is never
/// quarantined.
///
/// Threading: scrubCycle() is serialized by an internal mutex, so the
/// background thread and the admin `scrub` verb never interleave
/// passes. All store/persistence access goes through their own
/// thread-safe APIs.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_INTEGRITY_SCRUBBER_H
#define TRUEDIFF_INTEGRITY_SCRUBBER_H

#include "persist/Persistence.h"
#include "replica/Protocol.h"
#include "service/DocumentStore.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>

namespace truediff {
namespace integrity {

class Scrubber {
public:
  struct Config {
    /// Background cycle period. 0 disables the background thread;
    /// scrubCycle() (the `scrub` verb) still works.
    unsigned IntervalMs = 0;
    /// Token-bucket rate cap on scrub work items (documents digested,
    /// files re-read) per second, with one second of burst. 0 =
    /// unlimited -- the cycle runs as fast as the store allows.
    double RatePerSec = 0;
    /// Re-verify closed WAL segments and snapshot files on disk
    /// (requires a Persistence instance).
    bool CheckDisk = true;
    /// Read seam for disk verification; null = real I/O. Tests inject a
    /// FaultyIoEnv with ReadFlipPermille to exercise silent read-path
    /// corruption.
    persist::IoEnv *Env = nullptr;
    /// Shard count for anti-entropy summary fan-out; summaries group
    /// documents by Doc % NumShards (match the store's shard count so
    /// the grouping is stable and bounded).
    size_t NumShards = 16;
    /// Fans one shard summary out to the replicas (wire to
    /// Leader::broadcastSummary). Null = anti-entropy disabled.
    std::function<void(const replica::ShardSummaryMsg &)> Broadcast;
    /// Replication-log sequence source for the summaries' AsOfSeq
    /// (wire to ReplicationLog::currentSeq). Required when Broadcast is
    /// set.
    std::function<uint64_t()> CurrentSeq;
    /// Source of the leader's served-resync counter, so the stats can
    /// report how many resyncs anti-entropy (and gap detection)
    /// triggered since the scrubber started. Null = reported as 0.
    std::function<uint64_t()> ResyncsServed;
  };

  /// Cumulative counters across all cycles.
  struct Stats {
    uint64_t Cycles = 0;
    /// Documents whose digest cache was re-verified.
    uint64_t ScrubbedDocs = 0;
    /// In-memory digest mismatches found (each quarantined the doc).
    uint64_t DigestMismatches = 0;
    /// Closed WAL segments newly found corrupt (header or CRC walk).
    uint64_t WalCrcErrors = 0;
    /// Snapshot files newly found corrupt.
    uint64_t SnapshotErrors = 0;
    /// Quarantines imposed by this scrubber.
    uint64_t Quarantined = 0;
    /// Successful repairs: in-memory restores plus disk files healed
    /// (deleted dead or rewritten valid).
    uint64_t Repaired = 0;
    /// Repair attempts that failed (the document stays quarantined or
    /// the file stays corrupt; retried next cycle).
    uint64_t RepairsFailed = 0;
    /// Anti-entropy shard summaries handed to Broadcast.
    uint64_t SummariesSent = 0;
    /// Resyncs the leader served since this scrubber started (sampled
    /// from Config::ResyncsServed).
    uint64_t ResyncsTriggered = 0;
  };

  /// What one cycle found and did (deltas, not totals).
  struct CycleReport {
    uint64_t DocsScrubbed = 0;
    uint64_t DigestMismatches = 0;
    uint64_t WalCrcErrors = 0;
    uint64_t SnapshotErrors = 0;
    uint64_t NewlyQuarantined = 0;
    uint64_t Repaired = 0;
    uint64_t SummariesSent = 0;
  };

  /// \p Persist may be null (no disk pass, no disk repair source --
  /// quarantined documents then stay quarantined until a replica copy
  /// or manual intervention repairs them).
  Scrubber(service::DocumentStore &Store, Config C,
           persist::Persistence *Persist = nullptr);
  ~Scrubber();

  Scrubber(const Scrubber &) = delete;
  Scrubber &operator=(const Scrubber &) = delete;

  /// Starts the background thread (no-op when Config::IntervalMs == 0).
  void start();
  /// Stops the background thread; joins. Idempotent.
  void stop();

  /// Runs one full scrub cycle synchronously (the `scrub` verb).
  /// Serialized against the background thread.
  CycleReport scrubCycle();

  Stats stats() const;

  /// The "integrity" stats fragment: `"integrity":{...}` (no braces
  /// around the pair), for splicing into the service stats JSON.
  std::string statsJsonFragment() const;

private:
  using Clock = std::chrono::steady_clock;

  /// Memory + anti-entropy pass. Appends summary entries per shard and
  /// broadcasts them.
  void scrubDocuments(CycleReport &R);
  /// Disk pass: closed WAL segments + snapshot files.
  void scrubDisk(CycleReport &R);
  /// Re-snapshots every live document, compacts, deletes superseded
  /// corrupt snapshot files, then re-checks the known-bad set.
  void repairDisk(CycleReport &R);
  /// Repairs one quarantined document from durable state. Returns true
  /// on success (quarantine lifted).
  bool tryRepairFromDisk(service::DocId Doc);
  /// Takes one token from the rate bucket, sleeping (interruptibly) if
  /// the bucket is dry.
  void pace();

  service::DocumentStore &Store;
  persist::Persistence *Persist;
  const Config Cfg;
  /// ResyncsServed() at construction; stats report the delta.
  uint64_t ResyncBaseline = 0;

  /// Serializes cycles (background thread vs. the admin verb). The
  /// token bucket and known-bad sets are only touched under it.
  std::mutex CycleMu;
  double Tokens = 0;
  Clock::time_point LastRefill;
  /// Paths already counted corrupt; dropped when the file heals or
  /// disappears (counted as repaired) so persistent damage is counted
  /// once, not every cycle.
  std::set<std::string> KnownBadWal;
  std::set<std::string> KnownBadSnaps;

  mutable std::mutex StatsMu;
  Stats Counters;

  std::thread Background;
  std::mutex BgMu;
  std::condition_variable BgCv;
  bool StopBg = false;
  bool Started = false;
};

} // namespace integrity
} // namespace truediff

#endif // TRUEDIFF_INTEGRITY_SCRUBBER_H

//===- integrity/Scrubber.cpp - Background integrity scrubber --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "integrity/Scrubber.h"

#include "persist/BinaryCodec.h"
#include "persist/Snapshot.h"
#include "persist/Wal.h"
#include "support/Sha256.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

using namespace truediff;
using namespace truediff::integrity;
using truediff::service::DocId;

Scrubber::Scrubber(service::DocumentStore &Store, Config C,
                   persist::Persistence *Persist)
    : Store(Store), Persist(Persist), Cfg(std::move(C)),
      LastRefill(Clock::now()) {
  if (Cfg.ResyncsServed)
    ResyncBaseline = Cfg.ResyncsServed();
}

Scrubber::~Scrubber() { stop(); }

void Scrubber::start() {
  if (Cfg.IntervalMs == 0 || Started)
    return;
  Started = true;
  Background = std::thread([this] {
    std::unique_lock<std::mutex> Lock(BgMu);
    while (!StopBg) {
      BgCv.wait_for(Lock, std::chrono::milliseconds(Cfg.IntervalMs),
                    [this] { return StopBg; });
      if (StopBg)
        break;
      Lock.unlock();
      scrubCycle();
      Lock.lock();
    }
  });
}

void Scrubber::stop() {
  {
    std::lock_guard<std::mutex> Lock(BgMu);
    StopBg = true;
  }
  BgCv.notify_all();
  if (Background.joinable())
    Background.join();
}

void Scrubber::pace() {
  if (Cfg.RatePerSec <= 0)
    return;
  // One second of burst, at least one token, so RatePerSec < 1 still
  // makes progress.
  const double Burst = std::max(1.0, Cfg.RatePerSec);
  for (;;) {
    Clock::time_point Now = Clock::now();
    double Elapsed =
        std::chrono::duration<double>(Now - LastRefill).count();
    LastRefill = Now;
    Tokens = std::min(Tokens + Elapsed * Cfg.RatePerSec, Burst);
    if (Tokens >= 1.0) {
      Tokens -= 1.0;
      return;
    }
    double WaitS = (1.0 - Tokens) / Cfg.RatePerSec;
    std::unique_lock<std::mutex> Lock(BgMu);
    if (StopBg)
      return; // shutting down: stop throttling, let the cycle drain
    BgCv.wait_for(Lock, std::chrono::duration<double>(WaitS));
    if (StopBg)
      return;
  }
}

Scrubber::CycleReport Scrubber::scrubCycle() {
  std::lock_guard<std::mutex> Cycle(CycleMu);
  CycleReport R;
  scrubDocuments(R);
  if (Cfg.CheckDisk && Persist != nullptr)
    scrubDisk(R);

  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Counters.Cycles;
  Counters.ScrubbedDocs += R.DocsScrubbed;
  Counters.DigestMismatches += R.DigestMismatches;
  Counters.WalCrcErrors += R.WalCrcErrors;
  Counters.SnapshotErrors += R.SnapshotErrors;
  Counters.Quarantined += R.NewlyQuarantined;
  Counters.Repaired += R.Repaired;
  Counters.SummariesSent += R.SummariesSent;
  return R;
}

void Scrubber::scrubDocuments(CycleReport &R) {
  // AsOfSeq first: every record committed before this point is either
  // reflected in the digests below or skipped by the follower's
  // per-entry DocSeq gate (see the file comment on the residual race).
  uint64_t AsOfSeq = Cfg.CurrentSeq ? Cfg.CurrentSeq() : 0;
  size_t NumShards = std::max<size_t>(1, Cfg.NumShards);
  std::unordered_map<uint64_t, replica::ShardSummaryMsg> Summaries;

  for (DocId Doc : Store.listDocuments()) {
    pace();

    if (Store.quarantineInfo(Doc)) {
      // Already known corrupt: no point re-deriving the mismatch, go
      // straight to repair. On success the doc rejoins the healthy set
      // (and the summary fan-out) next cycle.
      if (tryRepairFromDisk(Doc)) {
        ++R.Repaired;
      } else {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.RepairsFailed;
      }
      continue;
    }

    std::optional<std::string> Stale = Store.checkDigests(Doc);
    ++R.DocsScrubbed;
    if (Stale) {
      // In-memory corruption: the tree or its digest cache no longer
      // matches a from-scratch recomputation. Fence the document first
      // (writes would diff against rotten state), then try to restore
      // it from durable truth.
      ++R.DigestMismatches;
      if (Store.quarantine(Doc, "digest scrub failed: " + *Stale))
        ++R.NewlyQuarantined;
      if (tryRepairFromDisk(Doc)) {
        ++R.Repaired;
      } else {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.RepairsFailed;
      }
      continue;
    }

    if (Cfg.Broadcast) {
      service::DocumentSnapshot Snap = Store.snapshot(Doc);
      if (Snap.Ok && !Snap.Quarantined) {
        replica::ShardSummaryMsg &M = Summaries[Doc % NumShards];
        replica::ShardSummaryMsg::Entry E;
        E.Doc = Doc;
        E.Version = Snap.Version;
        E.DigestHex = Sha256::hash(Snap.UriText).toHex();
        M.Entries.push_back(std::move(E));
      }
    }
  }

  if (Cfg.Broadcast) {
    for (auto &[Shard, M] : Summaries) {
      M.Shard = Shard;
      M.ShardCount = NumShards;
      M.AsOfSeq = AsOfSeq;
      Cfg.Broadcast(M);
      ++R.SummariesSent;
    }
  }
}

void Scrubber::scrubDisk(CycleReport &R) {
  const std::string &Dir = Persist->config().Dir;
  bool NewDamage = false;

  // Only closed segments: the active one's tail is legitimately mid-
  // write, and flagging it would be a false positive by construction.
  uint64_t Active = Persist->stats().CurrentSegment;
  for (const auto &[Index, Path] : persist::listWalSegments(Dir)) {
    if (Index >= Active) {
      KnownBadWal.erase(Path);
      continue;
    }
    pace();
    persist::WalSegment Seg = persist::readWalSegment(Index, Path, Cfg.Env);
    bool Bad = !Seg.HeaderOk || Seg.TornBytes > 0;
    if (Bad) {
      if (KnownBadWal.insert(Path).second) {
        ++R.WalCrcErrors;
        NewDamage = true;
      }
    } else if (KnownBadWal.erase(Path) != 0) {
      // A previously corrupt read now verifies clean (transient
      // read-path fault, or the file was rewritten): healed.
      ++R.Repaired;
    }
  }

  for (const persist::SnapshotFileName &F : persist::listSnapshotFiles(Dir)) {
    pace();
    persist::ReadSnapshotResult Res = persist::readSnapshotFile(F.Path, Cfg.Env);
    if (!Res.Ok) {
      if (KnownBadSnaps.insert(F.Path).second) {
        ++R.SnapshotErrors;
        NewDamage = true;
      }
    } else if (KnownBadSnaps.erase(F.Path) != 0) {
      ++R.Repaired;
    }
  }

  if (NewDamage)
    repairDisk(R);
}

void Scrubber::repairDisk(CycleReport &R) {
  // The healthy in-memory state is the repair source: a fresh snapshot
  // of every live document supersedes every record a damaged segment
  // could contribute, after which compaction deletes the dead segment.
  for (DocId Doc : Store.listDocuments())
    Persist->snapshotDocument(Doc);
  Persist->compact();

  // Compaction deliberately never deletes a *corrupt* snapshot file
  // (recovery keeps it as a diagnostic). Here we know better: once a
  // valid snapshot with Seq >= the corrupt file's own covers the same
  // document, the corrupt file contributes nothing to recovery and is
  // deleted. (A fresh snapshot at the same Seq renames over the corrupt
  // file instead, which the re-check below counts as healed.)
  const std::string &Dir = Persist->config().Dir;
  std::unordered_map<uint64_t, uint64_t> BestValidSeq;
  std::vector<persist::SnapshotFileName> Files =
      persist::listSnapshotFiles(Dir);
  for (const persist::SnapshotFileName &F : Files) {
    if (KnownBadSnaps.count(F.Path))
      continue;
    persist::ReadSnapshotResult Res = persist::readSnapshotFile(F.Path, Cfg.Env);
    if (!Res.Ok)
      continue;
    uint64_t &Best = BestValidSeq[Res.Snap.Doc];
    Best = std::max(Best, Res.Snap.Seq);
  }
  persist::IoEnv Real;
  persist::IoEnv &Io = Cfg.Env != nullptr ? *Cfg.Env : Real;
  for (const persist::SnapshotFileName &F : Files) {
    if (!KnownBadSnaps.count(F.Path))
      continue;
    auto It = BestValidSeq.find(F.Doc);
    if (It != BestValidSeq.end() && It->second >= F.Seq)
      Io.unlinkFile(F.Path.c_str());
  }

  // Re-check the damage ledger: anything that disappeared or reads
  // clean now is repaired; anything still bad stays in the ledger
  // (counted once) and is retried next cycle.
  auto Recheck = [&](std::set<std::string> &Known, auto Verify) {
    for (auto It = Known.begin(); It != Known.end();) {
      if (Verify(*It)) {
        It = Known.erase(It);
        ++R.Repaired;
      } else {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.RepairsFailed;
        ++It;
      }
    }
  };
  Recheck(KnownBadWal, [&](const std::string &Path) {
    std::string Probe;
    if (Io.readFile(Path.c_str(), Probe) != 0)
      return true; // gone: compaction deleted the dead segment
    persist::WalSegment Seg = persist::readWalSegment(0, Path, Cfg.Env);
    return Seg.HeaderOk && Seg.TornBytes == 0;
  });
  Recheck(KnownBadSnaps, [&](const std::string &Path) {
    std::string Probe;
    if (Io.readFile(Path.c_str(), Probe) != 0)
      return true; // gone: superseded and deleted above
    return persist::readSnapshotFile(Path, Cfg.Env).Ok;
  });
}

bool Scrubber::tryRepairFromDisk(DocId Doc) {
  if (Persist == nullptr)
    return false;
  const SignatureTable &Sig = Store.signatures();

  // Rebuild durable truth off to the side: newest valid snapshot plus
  // type-checked WAL replay, exactly the crash-recovery path, into a
  // scratch store the live one never sees.
  service::DocumentStore Scratch(Sig);
  persist::Persistence::recover(Sig, Persist->config().Dir, Scratch);
  if (!Scratch.contains(Doc))
    return false;

  uint64_t Version = 0;
  std::string Blob;
  std::vector<service::DocumentStore::RestoreEntry> History;
  bool Got = Scratch.withDocument(
      Doc, [&](const Tree *T, uint64_t V,
               const std::vector<service::DocumentStore::HistoryEntry> &H) {
        Version = V;
        Blob = persist::encodeTree(Sig, T);
        for (const service::DocumentStore::HistoryEntry &E : H) {
          service::DocumentStore::RestoreEntry RE;
          RE.Version = E.Version;
          RE.Script = *E.Script;
          if (E.Author != nullptr)
            RE.Author = *E.Author;
          History.push_back(std::move(RE));
        }
      });
  if (!Got)
    return false;

  // The quarantine blocks writes, so the live version is frozen; if the
  // durable state is behind it (unlogged degraded-mode commits), an
  // install would silently roll the document back. Refuse -- staying
  // quarantined with a warning beats losing acknowledged writes.
  service::DocumentSnapshot Live = Store.snapshot(Doc);
  if (!Live.Ok || Live.Version != Version)
    return false;

  service::StoreResult SR = Store.repair(
      Doc, Version,
      [&](TreeContext &Ctx) {
        service::BuildResult B;
        persist::DecodeTreeResult D = persist::decodeTree(Sig, Ctx, Blob);
        if (!D.ok()) {
          B.Error = D.Error;
          return B;
        }
        B.Root = D.Root;
        return B;
      },
      std::move(History), Scratch.openAuthor(Doc));
  return SR.Ok;
}

Scrubber::Stats Scrubber::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  Stats S = Counters;
  if (Cfg.ResyncsServed) {
    uint64_t Now = Cfg.ResyncsServed();
    S.ResyncsTriggered = Now > ResyncBaseline ? Now - ResyncBaseline : 0;
  }
  return S;
}

std::string Scrubber::statsJsonFragment() const {
  Stats S = stats();
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "\"integrity\":{\"cycles\":%llu,\"scrubbed_docs\":%llu,"
      "\"digest_mismatches\":%llu,\"wal_crc_errors\":%llu,"
      "\"snapshot_errors\":%llu,\"resyncs_triggered\":%llu,"
      "\"quarantined\":%llu,\"repaired\":%llu,\"repairs_failed\":%llu,"
      "\"summaries_sent\":%llu}",
      static_cast<unsigned long long>(S.Cycles),
      static_cast<unsigned long long>(S.ScrubbedDocs),
      static_cast<unsigned long long>(S.DigestMismatches),
      static_cast<unsigned long long>(S.WalCrcErrors),
      static_cast<unsigned long long>(S.SnapshotErrors),
      static_cast<unsigned long long>(S.ResyncsTriggered),
      static_cast<unsigned long long>(S.Quarantined),
      static_cast<unsigned long long>(S.Repaired),
      static_cast<unsigned long long>(S.RepairsFailed),
      static_cast<unsigned long long>(S.SummariesSent));
  return Buf;
}

//===- gumtree/RoseTree.h - Untyped rose trees for Gumtree ------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The untyped tree representation required by Chawathe-style diffing
/// (paper Sections 1 and 7): a node has a type label, a string label, and
/// any number of children. Gumtree edit scripts generate intermediate
/// trees that violate signatures, so they can only be executed against
/// this representation -- which is exactly the paper's argument for
/// truechange.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_GUMTREE_ROSETREE_H
#define TRUEDIFF_GUMTREE_ROSETREE_H

#include "support/Digest.h"
#include "support/Interner.h"
#include "tree/Tree.h"

#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace truediff {
namespace gumtree {

/// An untyped, mutable tree node.
struct RNode {
  /// The node type (Gumtree's "type"); interned tag symbol.
  Symbol Type = InvalidSymbol;
  /// The node label (Gumtree's "label"); rendering of the literals.
  std::string Label;
  std::vector<RNode *> Kids;
  RNode *Parent = nullptr;

  /// Post-order index, assigned by RoseForest::index.
  int Id = -1;
  uint32_t Height = 1;
  uint64_t Size = 1;
  /// Isomorphism hash over type, label, and children.
  Digest Hash;

  bool isLeaf() const { return Kids.empty(); }

  /// Number of proper descendants.
  uint64_t numDescendants() const { return Size - 1; }

  /// Applies \p Fn to this node and all descendants, pre-order.
  void foreachNode(const std::function<void(RNode *)> &Fn);

  /// Applies \p Fn to all nodes, post-order.
  void foreachPostOrder(const std::function<void(RNode *)> &Fn);

  /// Index of \p Kid in Kids; asserts presence.
  size_t kidIndex(const RNode *Kid) const;

  /// True iff the two trees are isomorphic (equal types, labels, shapes);
  /// decided by hash equality.
  bool isomorphicTo(const RNode *Other) const { return Hash == Other->Hash; }
};

/// Arena owning rose trees.
class RoseForest {
public:
  /// Creates a node; derived data (hash, height, size) is computed from
  /// the kids, which must be complete.
  RNode *make(Symbol Type, std::string Label, std::vector<RNode *> Kids);

  /// Converts a typed tree: the type is the tag, the label concatenates
  /// the literals. This plays the role of the paper's Gumtree binding
  /// (Section 5): both tools diff the same files.
  ///
  /// With \p FlattenLists (the default), typed cons-list spines
  /// (tags ending in "Cons"/"Nil") are flattened into n-ary children --
  /// the natural rose-tree shape Gumtree sees for statement lists; the
  /// cons encoding only exists because typed trees need fixed arities.
  RNode *fromTree(const SignatureTable &Sig, const Tree *T,
                  bool FlattenLists = true);

  /// Deep copy (used by the action generator's working tree).
  RNode *deepCopy(const RNode *T);

  /// Assigns post-order ids and parent pointers below \p Root.
  static void index(RNode *Root);

  /// Recomputes hash/height/size bottom-up (after mutation in tests).
  static void refresh(RNode *Root);

  /// Structural equality of two rose trees (type, label, kids), without
  /// relying on cached hashes.
  static bool equals(const RNode *A, const RNode *B);

  /// Renders e.g. "Add(Num{1},Num{2})" for debugging.
  static std::string toString(const SignatureTable &Sig, const RNode *T);

  size_t numNodes() const { return Arena.size(); }

private:
  std::deque<RNode> Arena;
};

} // namespace gumtree
} // namespace truediff

#endif // TRUEDIFF_GUMTREE_ROSETREE_H

//===- gumtree/Matcher.cpp - Gumtree top-down and bottom-up matching -------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gumtree/GumTree.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

using namespace truediff;
using namespace truediff::gumtree;

void MappingStore::addRecursively(RNode *Src, RNode *Dst) {
  assert(Src->isomorphicTo(Dst) && "recursive mapping needs isomorphism");
  add(Src, Dst);
  for (size_t I = 0, E = Src->Kids.size(); I != E; ++I)
    addRecursively(Src->Kids[I], Dst->Kids[I]);
}

double truediff::gumtree::diceCoefficient(const RNode *Src, const RNode *Dst,
                                          const MappingStore &M) {
  if (Src->numDescendants() + Dst->numDescendants() == 0)
    return 0.0;
  // Count descendants of Src mapped to descendants of Dst.
  size_t Common = 0;
  const_cast<RNode *>(Src)->foreachNode([&](RNode *N) {
    if (N == Src)
      return;
    RNode *Partner = M.dstOf(N);
    if (Partner == nullptr)
      return;
    for (const RNode *Up = Partner->Parent; Up != nullptr; Up = Up->Parent)
      if (Up == Dst) {
        ++Common;
        return;
      }
  });
  return 2.0 * static_cast<double>(Common) /
         static_cast<double>(Src->numDescendants() + Dst->numDescendants());
}

namespace {

/// Gumtree's height-indexed priority list: pops all trees of the current
/// maximum height at once.
class HeightQueue {
public:
  void push(RNode *T) { Buckets[T->Height].push_back(T); }

  void open(RNode *T) {
    for (RNode *Kid : T->Kids)
      push(Kid);
  }

  /// Height of the tallest queued tree, or 0 if empty.
  unsigned peekMax() const {
    return Buckets.empty() ? 0 : Buckets.rbegin()->first;
  }

  /// Removes and returns all trees of maximum height.
  std::vector<RNode *> popMax() {
    auto It = std::prev(Buckets.end());
    std::vector<RNode *> Trees = std::move(It->second);
    Buckets.erase(It);
    return Trees;
  }

  bool empty() const { return Buckets.empty(); }

private:
  std::map<unsigned, std::vector<RNode *>> Buckets;
};

/// Phase 1: greedy top-down matching of isomorphic subtrees.
class TopDownMatcher {
public:
  TopDownMatcher(RNode *Src, RNode *Dst, const GumTreeOptions &Opts,
                 MappingStore &M)
      : Src(Src), Dst(Dst), Opts(Opts), M(M) {}

  void run() {
    HeightQueue SrcQueue, DstQueue;
    SrcQueue.push(Src);
    DstQueue.push(Dst);

    while (std::min(SrcQueue.peekMax(), DstQueue.peekMax()) >=
           Opts.MinHeight) {
      if (SrcQueue.peekMax() > DstQueue.peekMax()) {
        for (RNode *T : SrcQueue.popMax())
          SrcQueue.open(T);
        continue;
      }
      if (DstQueue.peekMax() > SrcQueue.peekMax()) {
        for (RNode *T : DstQueue.popMax())
          DstQueue.open(T);
        continue;
      }
      matchLevel(SrcQueue, DstQueue);
    }
    resolveAmbiguous();
  }

private:
  void matchLevel(HeightQueue &SrcQueue, HeightQueue &DstQueue) {
    std::vector<RNode *> SrcTrees = SrcQueue.popMax();
    std::vector<RNode *> DstTrees = DstQueue.popMax();

    // Group both sides by isomorphism hash, preserving encounter order.
    struct Group {
      std::vector<RNode *> Srcs, Dsts;
    };
    std::unordered_map<Digest, Group, DigestHash> Groups;
    std::vector<Digest> Order;
    for (RNode *T : SrcTrees) {
      if (!Groups.count(T->Hash))
        Order.push_back(T->Hash);
      Groups[T->Hash].Srcs.push_back(T);
    }
    for (RNode *T : DstTrees) {
      if (!Groups.count(T->Hash))
        Order.push_back(T->Hash);
      Groups[T->Hash].Dsts.push_back(T);
    }

    std::unordered_set<RNode *> Matched;
    for (const Digest &Hash : Order) {
      Group &G = Groups[Hash];
      if (G.Srcs.empty() || G.Dsts.empty())
        continue;
      if (G.Srcs.size() == 1 && G.Dsts.size() == 1) {
        // Unique isomorphic pair: map immediately and recursively.
        M.addRecursively(G.Srcs[0], G.Dsts[0]);
        Matched.insert(G.Srcs[0]);
        Matched.insert(G.Dsts[0]);
        continue;
      }
      // Ambiguous: defer; resolved by parent similarity after the loop.
      for (RNode *S : G.Srcs)
        for (RNode *D : G.Dsts)
          Ambiguous.push_back({S, D});
      for (RNode *S : G.Srcs)
        Matched.insert(S);
      for (RNode *D : G.Dsts)
        Matched.insert(D);
    }

    // Open unmatched trees so their children can still be mapped.
    for (RNode *T : SrcTrees)
      if (!Matched.count(T))
        SrcQueue.open(T);
    for (RNode *T : DstTrees)
      if (!Matched.count(T))
        DstQueue.open(T);
  }

  void resolveAmbiguous() {
    // Sort candidate pairs by the dice similarity of their parents,
    // descending, then greedily map still-unmapped pairs.
    std::stable_sort(Ambiguous.begin(), Ambiguous.end(),
                     [&](const auto &A, const auto &B) {
                       return parentDice(A) > parentDice(B);
                     });
    for (const auto &[S, D] : Ambiguous) {
      if (M.hasSrc(S) || M.hasDst(D))
        continue;
      M.addRecursively(S, D);
    }
  }

  double parentDice(const std::pair<RNode *, RNode *> &Pair) const {
    const RNode *SP = Pair.first->Parent;
    const RNode *DP = Pair.second->Parent;
    if (SP == nullptr || DP == nullptr)
      return 0.0;
    return diceCoefficient(SP, DP, M);
  }

  RNode *Src;
  RNode *Dst;
  const GumTreeOptions &Opts;
  MappingStore &M;
  std::vector<std::pair<RNode *, RNode *>> Ambiguous;
};

/// Phase 2: bottom-up container matching with histogram recovery.
class BottomUpMatcher {
public:
  BottomUpMatcher(RNode *Src, RNode *Dst, const GumTreeOptions &Opts,
                  MappingStore &M)
      : Src(Src), Dst(Dst), Opts(Opts), M(M) {}

  void run() {
    Src->foreachPostOrder([&](RNode *N) {
      if (N == Src) {
        // Roots are mapped when compatible (Falleri et al., Section
        // III.B). Different root types cannot be mapped: Chawathe updates
        // change labels, never types.
        if (!M.hasSrc(N) && !M.hasDst(Dst) && N->Type == Dst->Type) {
          M.add(N, Dst);
          recover(N, Dst);
        }
        return;
      }
      if (M.hasSrc(N) || N->isLeaf())
        return;
      RNode *Best = bestCandidate(N);
      if (Best != nullptr && diceCoefficient(N, Best, M) >= Opts.MinDice) {
        M.add(N, Best);
        recover(N, Best);
      }
    });
  }

private:
  /// Candidate destination containers: unmapped ancestors (of the right
  /// type) of the partners of N's mapped descendants.
  RNode *bestCandidate(RNode *N) {
    std::vector<RNode *> Candidates;
    std::unordered_set<RNode *> Seen;
    N->foreachNode([&](RNode *D) {
      if (D == N)
        return;
      RNode *Partner = M.dstOf(D);
      if (Partner == nullptr)
        return;
      for (RNode *Up = Partner->Parent; Up != nullptr; Up = Up->Parent) {
        if (!Seen.insert(Up).second)
          break; // ancestors above were already considered
        if (Up->Type == N->Type && !M.hasDst(Up) && Up != Dst)
          Candidates.push_back(Up);
      }
    });
    RNode *Best = nullptr;
    double BestDice = -1.0;
    for (RNode *C : Candidates) {
      double Dice = diceCoefficient(N, C, M);
      if (Dice > BestDice) {
        BestDice = Dice;
        Best = C;
      }
    }
    return Best;
  }

  /// Recovery pass below a freshly mapped container pair: match remaining
  /// descendants that are unambiguous by hash, then by (type, label), then
  /// by type. This approximates Gumtree's bounded edit-distance recovery.
  void recover(RNode *SrcC, RNode *DstC) {
    if (SrcC->Size > Opts.MaxRecoverySize || DstC->Size > Opts.MaxRecoverySize)
      return;
    std::vector<RNode *> SrcOpen, DstOpen;
    SrcC->foreachNode([&](RNode *N) {
      if (N != SrcC && !M.hasSrc(N))
        SrcOpen.push_back(N);
    });
    DstC->foreachNode([&](RNode *N) {
      if (N != DstC && !M.hasDst(N))
        DstOpen.push_back(N);
    });

    matchUnique(SrcOpen, DstOpen, [](const RNode *N) {
      return N->Hash.toHex();
    }, /*Recursive=*/true);
    matchUnique(SrcOpen, DstOpen, [](const RNode *N) {
      return std::to_string(N->Type) + "\x1f" + N->Label;
    }, /*Recursive=*/false);
    matchUnique(SrcOpen, DstOpen, [](const RNode *N) {
      return std::to_string(N->Type);
    }, /*Recursive=*/false);
    positionalMatch(SrcC, DstC);
  }

  /// Final recovery stage: walks the container pair in parallel and maps
  /// same-type nodes positionally where the shapes agree. This is the
  /// cheap stand-in for Gumtree's bounded edit-distance recovery and
  /// catches the ubiquitous rename case (same tree, changed labels).
  void positionalMatch(RNode *Src, RNode *Dst) {
    if (Src->Type != Dst->Type)
      return;
    if (!M.hasSrc(Src) && !M.hasDst(Dst))
      M.add(Src, Dst);
    if (!M.areMapped(Src, Dst))
      return;
    if (Src->Kids.size() != Dst->Kids.size())
      return;
    for (size_t I = 0, E = Src->Kids.size(); I != E; ++I)
      positionalMatch(Src->Kids[I], Dst->Kids[I]);
  }

  template <typename KeyFn>
  void matchUnique(std::vector<RNode *> &SrcOpen, std::vector<RNode *> &DstOpen,
                   KeyFn Key, bool Recursive) {
    std::unordered_map<std::string, std::vector<RNode *>> SrcByKey, DstByKey;
    for (RNode *N : SrcOpen)
      if (!M.hasSrc(N))
        SrcByKey[Key(N)].push_back(N);
    for (RNode *N : DstOpen)
      if (!M.hasDst(N))
        DstByKey[Key(N)].push_back(N);
    for (auto &[K, Srcs] : SrcByKey) {
      auto It = DstByKey.find(K);
      if (It == DstByKey.end())
        continue;
      if (Srcs.size() != 1 || It->second.size() != 1)
        continue;
      if (M.hasSrc(Srcs[0]) || M.hasDst(It->second[0]))
        continue;
      if (Recursive) {
        // A recursive add must not overwrite mappings of descendants that
        // the top-down phase established elsewhere.
        bool Clean = true;
        Srcs[0]->foreachNode([&](RNode *D) { Clean &= !M.hasSrc(D); });
        It->second[0]->foreachNode([&](RNode *D) { Clean &= !M.hasDst(D); });
        if (Clean)
          M.addRecursively(Srcs[0], It->second[0]);
        else
          M.add(Srcs[0], It->second[0]);
      } else {
        M.add(Srcs[0], It->second[0]);
      }
    }
  }

  RNode *Src;
  RNode *Dst;
  const GumTreeOptions &Opts;
  MappingStore &M;
};

} // namespace

MappingStore truediff::gumtree::computeMappings(RNode *Src, RNode *Dst,
                                                const GumTreeOptions &Opts) {
  RoseForest::index(Src);
  RoseForest::index(Dst);
  MappingStore M;
  TopDownMatcher(Src, Dst, Opts, M).run();
  BottomUpMatcher(Src, Dst, Opts, M).run();
  return M;
}

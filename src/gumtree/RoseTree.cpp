//===- gumtree/RoseTree.cpp - Untyped rose trees for Gumtree ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gumtree/RoseTree.h"

#include "support/Sha256.h"

#include <cassert>

using namespace truediff;
using namespace truediff::gumtree;

void RNode::foreachNode(const std::function<void(RNode *)> &Fn) {
  Fn(this);
  for (RNode *Kid : Kids)
    Kid->foreachNode(Fn);
}

void RNode::foreachPostOrder(const std::function<void(RNode *)> &Fn) {
  for (RNode *Kid : Kids)
    Kid->foreachPostOrder(Fn);
  Fn(this);
}

size_t RNode::kidIndex(const RNode *Kid) const {
  for (size_t I = 0, E = Kids.size(); I != E; ++I)
    if (Kids[I] == Kid)
      return I;
  assert(false && "kid not found");
  return 0;
}

static void computeDerived(RNode *N) {
  Sha256 Hasher;
  Hasher.updateU32(N->Type);
  Hasher.updateU64(N->Label.size());
  Hasher.update(N->Label);
  Hasher.updateU32(static_cast<uint32_t>(N->Kids.size()));
  N->Height = 1;
  N->Size = 1;
  for (RNode *Kid : N->Kids) {
    Hasher.update(Kid->Hash);
    N->Height = std::max(N->Height, Kid->Height + 1);
    N->Size += Kid->Size;
  }
  N->Hash = Hasher.finish();
}

RNode *RoseForest::make(Symbol Type, std::string Label,
                        std::vector<RNode *> Kids) {
  Arena.emplace_back();
  RNode *N = &Arena.back();
  N->Type = Type;
  N->Label = std::move(Label);
  N->Kids = std::move(Kids);
  for (RNode *Kid : N->Kids)
    Kid->Parent = N;
  computeDerived(N);
  return N;
}

namespace {

/// True for the XCons spine cells of the typed list encoding.
bool isConsCell(const SignatureTable &Sig, const Tree *T) {
  return T->arity() == 2 && Sig.name(T->tag()).ends_with("Cons");
}

/// True for the XNil terminators.
bool isNilCell(const SignatureTable &Sig, const Tree *T) {
  return T->arity() == 0 && T->numLits() == 0 &&
         Sig.name(T->tag()).ends_with("Nil");
}

} // namespace

RNode *RoseForest::fromTree(const SignatureTable &Sig, const Tree *T,
                            bool FlattenLists) {
  std::vector<RNode *> Kids;
  Kids.reserve(T->arity());
  for (size_t I = 0, E = T->arity(); I != E; ++I) {
    const Tree *Kid = T->kid(I);
    if (FlattenLists && (isConsCell(Sig, Kid) || isNilCell(Sig, Kid))) {
      // Replace the cons spine by one n-ary list node (like the block
      // nodes of real ASTs), typed by the terminator tag.
      std::vector<RNode *> Elements;
      const Tree *Cell = Kid;
      for (; isConsCell(Sig, Cell); Cell = Cell->kid(1))
        Elements.push_back(fromTree(Sig, Cell->kid(0), FlattenLists));
      Kids.push_back(make(Cell->tag(), "", std::move(Elements)));
      continue;
    }
    Kids.push_back(fromTree(Sig, Kid, FlattenLists));
  }
  std::string Label;
  for (size_t I = 0, E = T->numLits(); I != E; ++I) {
    if (I != 0)
      Label += ",";
    Label += T->lit(I).toString();
  }
  return make(T->tag(), std::move(Label), std::move(Kids));
}

RNode *RoseForest::deepCopy(const RNode *T) {
  std::vector<RNode *> Kids;
  Kids.reserve(T->Kids.size());
  for (const RNode *Kid : T->Kids)
    Kids.push_back(deepCopy(Kid));
  return make(T->Type, T->Label, std::move(Kids));
}

void RoseForest::index(RNode *Root) {
  int Next = 0;
  Root->foreachPostOrder([&](RNode *N) {
    N->Id = Next++;
    for (RNode *Kid : N->Kids)
      Kid->Parent = N;
  });
  Root->Parent = nullptr;
}

void RoseForest::refresh(RNode *Root) {
  Root->foreachPostOrder([](RNode *N) { computeDerived(N); });
}

bool RoseForest::equals(const RNode *A, const RNode *B) {
  if (A->Type != B->Type || A->Label != B->Label ||
      A->Kids.size() != B->Kids.size())
    return false;
  for (size_t I = 0, E = A->Kids.size(); I != E; ++I)
    if (!equals(A->Kids[I], B->Kids[I]))
      return false;
  return true;
}

std::string RoseForest::toString(const SignatureTable &Sig, const RNode *T) {
  std::string Out = Sig.name(T->Type);
  if (!T->Label.empty())
    Out += "{" + T->Label + "}";
  if (!T->Kids.empty()) {
    Out += "(";
    for (size_t I = 0, E = T->Kids.size(); I != E; ++I) {
      if (I != 0)
        Out += ",";
      Out += toString(Sig, T->Kids[I]);
    }
    Out += ")";
  }
  return Out;
}

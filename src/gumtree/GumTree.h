//===- gumtree/GumTree.h - Gumtree-style untyped diffing --------*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch implementation of the Gumtree structural diffing
/// algorithm (Falleri et al., ASE 2014), the untyped Chawathe-style
/// baseline of the paper's evaluation (Section 6):
///
///  1. *Top-down* phase: greedily maps isomorphic subtrees, largest first.
///  2. *Bottom-up* phase: maps container nodes whose descendants are
///     mostly mapped (dice coefficient >= MinDice), plus a histogram-based
///     recovery pass for their unmapped descendants.
///  3. *Action generation*: the Chawathe et al. (1996) algorithm derives
///     an edit script of insert/delete/move/update actions from the
///     mapping, including the child-alignment moves.
///
/// The edit script operates on untyped rose trees; its intermediate trees
/// are not well-typed (the motivation for truechange).
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_GUMTREE_GUMTREE_H
#define TRUEDIFF_GUMTREE_GUMTREE_H

#include "gumtree/RoseTree.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace truediff {
namespace gumtree {

/// A source-to-destination node mapping (bidirectional, injective).
class MappingStore {
public:
  void add(RNode *Src, RNode *Dst) {
    SrcToDst.emplace(Src, Dst);
    DstToSrc.emplace(Dst, Src);
  }

  /// Maps \p Src to \p Dst and, pairwise, all their descendants; the trees
  /// must be isomorphic.
  void addRecursively(RNode *Src, RNode *Dst);

  RNode *dstOf(const RNode *Src) const {
    auto It = SrcToDst.find(Src);
    return It == SrcToDst.end() ? nullptr : It->second;
  }
  RNode *srcOf(const RNode *Dst) const {
    auto It = DstToSrc.find(Dst);
    return It == DstToSrc.end() ? nullptr : It->second;
  }
  bool hasSrc(const RNode *Src) const { return SrcToDst.count(Src) != 0; }
  bool hasDst(const RNode *Dst) const { return DstToSrc.count(Dst) != 0; }
  bool areMapped(const RNode *Src, const RNode *Dst) const {
    return dstOf(Src) == Dst;
  }
  size_t size() const { return SrcToDst.size(); }

private:
  std::unordered_map<const RNode *, RNode *> SrcToDst;
  std::unordered_map<const RNode *, RNode *> DstToSrc;
};

/// Dice coefficient of two containers under \p M: twice the number of
/// mapped descendant pairs over the total descendant count.
double diceCoefficient(const RNode *Src, const RNode *Dst,
                       const MappingStore &M);

/// Gumtree tuning parameters (defaults follow Falleri et al.).
struct GumTreeOptions {
  /// Minimum height of subtrees considered by the top-down phase.
  unsigned MinHeight = 2;
  /// Minimum dice similarity for bottom-up container matching.
  double MinDice = 0.5;
  /// Maximum subtree size for the bottom-up recovery pass (Gumtree's
  /// SIZE_THRESHOLD for its bounded edit-distance recovery).
  uint64_t MaxRecoverySize = 1000;
};

/// One edit action of the Chawathe et al. script.
enum class ActionKind : uint8_t { Insert, Delete, Move, Update };

struct Action {
  ActionKind Kind;
  /// Insert: the dst node inserted. Delete/Move/Update: the src node.
  const RNode *Node = nullptr;
  /// Insert/Move: the parent (src working tree) receiving the node.
  const RNode *Parent = nullptr;
  /// Insert/Move: child position.
  size_t Pos = 0;
  /// Update: the new label.
  std::string NewLabel;
};

/// Result of a Gumtree diff.
struct GumTreeResult {
  std::vector<Action> Actions;
  size_t NumMappings = 0;
  /// The working copy of the source tree after simulating the script;
  /// equals the destination tree if the script is correct (tested).
  RNode *PatchedSource = nullptr;

  /// The paper's conciseness metric for Gumtree: the number of actions.
  size_t patchSize() const { return Actions.size(); }
};

/// Computes mappings only (both phases); exposed for tests.
MappingStore computeMappings(RNode *Src, RNode *Dst,
                             const GumTreeOptions &Opts);

/// Runs the full pipeline: matching plus action generation. Allocates the
/// working tree in \p Forest.
GumTreeResult gumtreeDiff(RoseForest &Forest, RNode *Src, RNode *Dst,
                          const GumTreeOptions &Opts = GumTreeOptions());

/// Renders an action for debugging, e.g. "move Sub to Mul at 1".
std::string actionToString(const SignatureTable &Sig, const Action &A);

} // namespace gumtree
} // namespace truediff

#endif // TRUEDIFF_GUMTREE_GUMTREE_H

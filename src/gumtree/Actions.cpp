//===- gumtree/Actions.cpp - Chawathe et al. action generation -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives an insert/delete/move/update edit script from a Gumtree
/// mapping, following Chawathe et al. (SIGMOD 1996) as implemented in
/// Gumtree's ActionGenerator: a breadth-first pass over the destination
/// tree emits inserts, updates, and moves (including the child-alignment
/// moves), and a post-order pass over the working tree emits deletes. The
/// script is simulated on a working copy of the source so tests can check
/// it reproduces the destination tree.
///
//===----------------------------------------------------------------------===//

#include "gumtree/GumTree.h"

#include <cassert>
#include <deque>
#include <unordered_set>

using namespace truediff;
using namespace truediff::gumtree;

namespace {

/// Runs the Chawathe algorithm on a working copy of the source tree.
class ActionGenerator {
public:
  ActionGenerator(RoseForest &Forest, RNode *Src, RNode *Dst,
                  const MappingStore &Orig)
      : Forest(Forest) {
    // Work on a copy of src; wire up the work<->dst mapping from the
    // original mapping. Fake roots allow replacing the real root.
    WorkRoot = copyRec(Src);
    FakeSrc = Forest.make(InvalidSymbol, "", {WorkRoot});
    FakeDst = Forest.make(InvalidSymbol, "", {Dst});
    for (auto [S, D] : collectPairs(Src, Orig))
      M.add(CopyOf.at(S), D);
    M.add(FakeSrc, FakeDst);
  }

  std::vector<Action> run() {
    bfsPhase();
    deletePhase();
    return std::move(Actions);
  }

  RNode *patchedSource() const {
    return FakeSrc->Kids.empty() ? nullptr : FakeSrc->Kids[0];
  }

private:
  static std::vector<std::pair<RNode *, RNode *>>
  collectPairs(RNode *Src, const MappingStore &Orig) {
    std::vector<std::pair<RNode *, RNode *>> Pairs;
    Src->foreachNode([&](RNode *N) {
      if (RNode *D = Orig.dstOf(N))
        Pairs.push_back({N, D});
    });
    return Pairs;
  }

  RNode *copyRec(RNode *N) {
    std::vector<RNode *> Kids;
    Kids.reserve(N->Kids.size());
    for (RNode *Kid : N->Kids)
      Kids.push_back(copyRec(Kid));
    RNode *Copy = Forest.make(N->Type, N->Label, std::move(Kids));
    CopyOf[N] = Copy;
    Origin[Copy] = N;
    return Copy;
  }

  /// Breadth-first pass over the destination tree: inserts, updates,
  /// moves, and child alignment.
  void bfsPhase() {
    std::deque<RNode *> Work{FakeDst};
    while (!Work.empty()) {
      RNode *X = Work.front();
      Work.pop_front();
      for (RNode *Kid : X->Kids)
        Work.push_back(Kid);

      RNode *W = M.srcOf(X);
      if (W == nullptr) {
        // Insert X (as a leaf; its children follow in BFS order).
        RNode *Y = X->Parent;
        RNode *Z = M.srcOf(Y);
        assert(Z != nullptr && "parent processed before child in BFS");
        size_t K = findPos(X);
        W = Forest.make(X->Type, X->Label, {});
        M.add(W, X);
        insertChild(Z, W, K);
        Actions.push_back(
            Action{ActionKind::Insert, X, originOf(Z), K, std::string()});
      } else if (X != FakeDst) {
        RNode *Y = X->Parent;
        RNode *V = W->Parent;
        if (W->Label != X->Label) {
          Actions.push_back(Action{ActionKind::Update, originOf(W), nullptr,
                                   0, X->Label});
          W->Label = X->Label;
        }
        RNode *Z = M.srcOf(Y);
        assert(Z != nullptr);
        if (Z != V) {
          size_t K = findPos(X);
          removeChild(V, W);
          insertChild(Z, W, K);
          Actions.push_back(
              Action{ActionKind::Move, originOf(W), originOf(Z), K,
                     std::string()});
        }
      }
      SrcInOrder.insert(W);
      DstInOrder.insert(X);
      alignChildren(W, X);
    }
  }

  /// Post-order pass deleting unmapped nodes of the working tree.
  void deletePhase() {
    std::vector<RNode *> ToDelete;
    FakeSrc->foreachPostOrder([&](RNode *N) {
      if (N != FakeSrc && !M.hasSrc(N))
        ToDelete.push_back(N);
    });
    for (RNode *N : ToDelete) {
      Actions.push_back(
          Action{ActionKind::Delete, originOf(N), nullptr, 0, std::string()});
      removeChild(N->Parent, N);
    }
  }

  void alignChildren(RNode *W, RNode *X) {
    for (RNode *C : W->Kids)
      SrcInOrder.erase(C);
    for (RNode *C : X->Kids)
      DstInOrder.erase(C);

    // S1: children of W mapped into X's children; S2 dually.
    std::vector<RNode *> S1, S2;
    for (RNode *C : W->Kids) {
      RNode *P = M.dstOf(C);
      if (P != nullptr && P->Parent == X)
        S1.push_back(C);
    }
    for (RNode *C : X->Kids) {
      RNode *P = M.srcOf(C);
      if (P != nullptr && P->Parent == W)
        S2.push_back(C);
    }

    // Longest common subsequence of S1 and S2 under the mapping.
    std::vector<std::pair<RNode *, RNode *>> Lcs = lcs(S1, S2);
    std::unordered_set<RNode *> InLcsSrc;
    for (auto &[A, B] : Lcs) {
      SrcInOrder.insert(A);
      DstInOrder.insert(B);
      InLcsSrc.insert(A);
    }

    for (RNode *A : S1) {
      if (InLcsSrc.count(A))
        continue;
      RNode *B = M.dstOf(A);
      // A is mapped into X's children but out of sequence: move it.
      size_t K = findPos(B);
      removeChild(W, A);
      insertChild(W, A, K);
      Actions.push_back(
          Action{ActionKind::Move, originOf(A), originOf(W), K,
                 std::string()});
      SrcInOrder.insert(A);
      DstInOrder.insert(B);
    }
  }

  std::vector<std::pair<RNode *, RNode *>> lcs(const std::vector<RNode *> &S1,
                                               const std::vector<RNode *> &S2) {
    size_t N = S1.size(), K = S2.size();
    std::vector<std::vector<unsigned>> Dp(N + 1,
                                          std::vector<unsigned>(K + 1, 0));
    for (size_t I = N; I-- > 0;)
      for (size_t J = K; J-- > 0;) {
        if (M.areMapped(S1[I], S2[J]))
          Dp[I][J] = Dp[I + 1][J + 1] + 1;
        else
          Dp[I][J] = std::max(Dp[I + 1][J], Dp[I][J + 1]);
      }
    std::vector<std::pair<RNode *, RNode *>> Out;
    size_t I = 0, J = 0;
    while (I < N && J < K) {
      if (M.areMapped(S1[I], S2[J])) {
        Out.push_back({S1[I], S2[J]});
        ++I;
        ++J;
      } else if (Dp[I + 1][J] >= Dp[I][J + 1]) {
        ++I;
      } else {
        ++J;
      }
    }
    return Out;
  }

  /// Chawathe's FindPos: the insertion position of dst node \p X within
  /// its parent, derived from in-order siblings.
  size_t findPos(RNode *X) {
    RNode *Y = X->Parent;
    // If X is the leftmost in-order child of Y, insert at 0.
    for (RNode *C : Y->Kids) {
      if (!DstInOrder.count(C))
        continue;
      if (C == X)
        return 0;
      break;
    }
    // V: rightmost in-order sibling left of X.
    RNode *V = nullptr;
    for (RNode *C : Y->Kids) {
      if (C == X)
        break;
      if (DstInOrder.count(C))
        V = C;
    }
    if (V == nullptr)
      return 0;
    RNode *U = M.srcOf(V);
    assert(U != nullptr && U->Parent != nullptr);
    return U->Parent->kidIndex(U) + 1;
  }

  void insertChild(RNode *Parent, RNode *Kid, size_t &Pos) {
    if (Pos > Parent->Kids.size())
      Pos = Parent->Kids.size();
    Parent->Kids.insert(Parent->Kids.begin() + Pos, Kid);
    Kid->Parent = Parent;
  }

  void removeChild(RNode *Parent, RNode *Kid) {
    Parent->Kids.erase(
        std::find(Parent->Kids.begin(), Parent->Kids.end(), Kid));
    Kid->Parent = nullptr;
  }

  /// Maps working-tree nodes back to original source nodes for reporting;
  /// inserted nodes report their destination origin.
  const RNode *originOf(RNode *WorkNode) {
    auto It = Origin.find(WorkNode);
    if (It != Origin.end())
      return It->second;
    RNode *D = M.dstOf(WorkNode);
    return D != nullptr ? D : WorkNode;
  }

  RoseForest &Forest;
  RNode *WorkRoot;
  RNode *FakeSrc;
  RNode *FakeDst;
  MappingStore M;
  std::unordered_map<const RNode *, RNode *> CopyOf;
  std::unordered_map<const RNode *, RNode *> Origin;
  std::unordered_set<RNode *> SrcInOrder, DstInOrder;
  std::vector<Action> Actions;
};

} // namespace

GumTreeResult truediff::gumtree::gumtreeDiff(RoseForest &Forest, RNode *Src,
                                             RNode *Dst,
                                             const GumTreeOptions &Opts) {
  MappingStore M = computeMappings(Src, Dst, Opts);
  ActionGenerator Gen(Forest, Src, Dst, M);
  GumTreeResult Result;
  Result.NumMappings = M.size();
  Result.Actions = Gen.run();
  Result.PatchedSource = Gen.patchedSource();
  return Result;
}

std::string truediff::gumtree::actionToString(const SignatureTable &Sig,
                                              const Action &A) {
  auto Name = [&](const RNode *N) {
    if (N == nullptr)
      return std::string("<null>");
    if (N->Type == InvalidSymbol)
      return std::string("<root>");
    std::string S = Sig.name(N->Type);
    if (!N->Label.empty())
      S += "{" + N->Label + "}";
    return S;
  };
  switch (A.Kind) {
  case ActionKind::Insert:
    return "insert " + Name(A.Node) + " into " + Name(A.Parent) + " at " +
           std::to_string(A.Pos);
  case ActionKind::Delete:
    return "delete " + Name(A.Node);
  case ActionKind::Move:
    return "move " + Name(A.Node) + " into " + Name(A.Parent) + " at " +
           std::to_string(A.Pos);
  case ActionKind::Update:
    return "update " + Name(A.Node) + " to {" + A.NewLabel + "}";
  }
  return "<unknown>";
}

//===- examples/version_history.cpp - Diffing a commit history -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates a commit history over a generated Python file (the repo's
/// stand-in for the paper's keras corpus) and compares, per commit, the
/// patch sizes of all four diffing approaches:
///
///   truediff  - concise AND type-safe (this paper)
///   gumtree   - concise but untyped (Chawathe-style actions)
///   hdiff     - type-safe but patches grow with the trees
///   lcsdiff   - type-safe but no moves; scripts span the traversal
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "lcsdiff/LcsDiff.h"
#include "python/Python.h"
#include "truediff/TrueDiff.h"

#include <cstdio>

using namespace truediff;

int main() {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Gen(Sig);
  Rng R(7);

  Tree *Current = corpus::generateModule(Gen, R);
  std::string CurrentSrc = python::unparsePython(Sig, Current);
  std::printf("simulating 10 commits on a file with %llu AST nodes\n\n",
              static_cast<unsigned long long>(Current->size()));
  std::printf("%-8s %-34s %9s %9s %9s %9s\n", "commit", "mutations",
              "truediff", "gumtree", "hdiff", "lcsdiff");

  for (int Commit = 1; Commit <= 10; ++Commit) {
    corpus::MutationReport Report;
    Tree *Next = corpus::mutateModule(Gen, R, Current, corpus::MutatorOptions(),
                                      &Report);
    std::string NextSrc = python::unparsePython(Sig, Next);

    // Run the full pipeline like the benches: parse fresh trees.
    TreeContext Ctx(Sig);
    Tree *Before = python::parsePython(Ctx, CurrentSrc).Module;
    Tree *After = python::parsePython(Ctx, NextSrc).Module;

    gumtree::RoseForest Forest;
    size_t Gumtree =
        gumtree::gumtreeDiff(Forest, Forest.fromTree(Sig, Before),
                             Forest.fromTree(Sig, After))
            .patchSize();
    hdiff::HDiff HDiffer(Ctx);
    size_t Hdiff = HDiffer.diff(Before, After).numConstructors();
    size_t Lcs = lcsdiff::lcsDiff(Before, After).size();
    TrueDiff Differ(Ctx);
    size_t Truediff =
        Differ.compareTo(Before, After).Script.coalescedSize();

    std::string Mutations;
    for (size_t I = 0; I != Report.Applied.size() && I != 2; ++I) {
      if (I != 0)
        Mutations += ",";
      Mutations += corpus::mutationKindName(Report.Applied[I]);
    }
    if (Report.Applied.size() > 2)
      Mutations += ",...";

    std::printf("%-8d %-34s %9zu %9zu %9zu %9zu\n", Commit,
                Mutations.c_str(), Truediff, Gumtree, Hdiff, Lcs);

    Current = Next;
    CurrentSrc = std::move(NextSrc);
  }

  std::printf("\ntruediff patches stay proportional to the change; hdiff "
              "and lcsdiff grow with the file.\n");
  return 0;
}

//===- examples/version_history.cpp - Diffing a commit history -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates a commit history over a generated Python file (the repo's
/// stand-in for the paper's keras corpus) and compares, per commit, the
/// patch sizes of all four diffing approaches:
///
///   truediff  - concise AND type-safe (this paper)
///   gumtree   - concise but untyped (Chawathe-style actions)
///   hdiff     - type-safe but patches grow with the trees
///   lcsdiff   - type-safe but no moves; scripts span the traversal
///
/// A second section demonstrates the blame subsystem: authored commits
/// through a DocumentStore, the per-node provenance the index maintains
/// from the script stream, and the rollback attribution rule -- rolling
/// back re-attributes the touched nodes to the *target* version's
/// author, because rollback restores earlier work rather than authoring
/// new work.
///
//===----------------------------------------------------------------------===//

#include "blame/Provenance.h"
#include "blame/Render.h"
#include "corpus/Corpus.h"
#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "lcsdiff/LcsDiff.h"
#include "python/Python.h"
#include "service/DocumentStore.h"
#include "truediff/TrueDiff.h"

#include <cstdio>

using namespace truediff;

namespace {

/// Authored edit history over one JSON-ish expression document, showing
/// blame output before and after a rollback.
void blameDemo() {
  SignatureTable Sig = python::makePythonSignature();
  service::DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);

  auto Build = [&Sig](const std::string &Src) {
    return [&Sig, Src](TreeContext &Ctx) {
      service::BuildResult B;
      B.Root = python::parsePython(Ctx, Src).Module;
      if (B.Root == nullptr)
        B.Error = "parse failed";
      return B;
    };
  };

  std::printf("\nblame demo: three authored commits, then a rollback\n\n");
  Store.open(1, Build("x = 1\n"), "ada");
  service::SubmitOptions Opts;
  Opts.Author = "grace";
  Store.submit(1, Build("x = 2\n"), Opts);
  Opts.Author = "barbara";
  Store.submit(1, Build("x = 3\n"), Opts);

  service::Response R = blame::blameResponse(Store, Prov, 1, false, NullURI);
  std::printf("after v2 (barbara):\n%s\n", R.Payload.c_str());

  // Rollback to v1: the touched nodes are re-attributed to grace (v1's
  // author), not to whoever requested the rollback.
  Store.rollback(1);
  R = blame::blameResponse(Store, Prov, 1, false, NullURI);
  std::printf("after rollback to v1 (restores grace's work):\n%s\n",
              R.Payload.c_str());
}

} // namespace

int main() {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Gen(Sig);
  Rng R(7);

  Tree *Current = corpus::generateModule(Gen, R);
  std::string CurrentSrc = python::unparsePython(Sig, Current);
  std::printf("simulating 10 commits on a file with %llu AST nodes\n\n",
              static_cast<unsigned long long>(Current->size()));
  std::printf("%-8s %-34s %9s %9s %9s %9s\n", "commit", "mutations",
              "truediff", "gumtree", "hdiff", "lcsdiff");

  for (int Commit = 1; Commit <= 10; ++Commit) {
    corpus::MutationReport Report;
    Tree *Next = corpus::mutateModule(Gen, R, Current, corpus::MutatorOptions(),
                                      &Report);
    std::string NextSrc = python::unparsePython(Sig, Next);

    // Run the full pipeline like the benches: parse fresh trees.
    TreeContext Ctx(Sig);
    Tree *Before = python::parsePython(Ctx, CurrentSrc).Module;
    Tree *After = python::parsePython(Ctx, NextSrc).Module;

    gumtree::RoseForest Forest;
    size_t Gumtree =
        gumtree::gumtreeDiff(Forest, Forest.fromTree(Sig, Before),
                             Forest.fromTree(Sig, After))
            .patchSize();
    hdiff::HDiff HDiffer(Ctx);
    size_t Hdiff = HDiffer.diff(Before, After).numConstructors();
    size_t Lcs = lcsdiff::lcsDiff(Before, After).size();
    TrueDiff Differ(Ctx);
    size_t Truediff =
        Differ.compareTo(Before, After).Script.coalescedSize();

    std::string Mutations;
    for (size_t I = 0; I != Report.Applied.size() && I != 2; ++I) {
      if (I != 0)
        Mutations += ",";
      Mutations += corpus::mutationKindName(Report.Applied[I]);
    }
    if (Report.Applied.size() > 2)
      Mutations += ",...";

    std::printf("%-8d %-34s %9zu %9zu %9zu %9zu\n", Commit,
                Mutations.c_str(), Truediff, Gumtree, Hdiff, Lcs);

    Current = Next;
    CurrentSrc = std::move(NextSrc);
  }

  std::printf("\ntruediff patches stay proportional to the change; hdiff "
              "and lcsdiff grow with the file.\n");

  blameDemo();
  return 0;
}

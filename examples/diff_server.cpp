//===- examples/diff_server.cpp - REPL diff server over the wire protocol --===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A REPL-style front end to the concurrent diff service, speaking the
/// textual wire protocol (service/Wire.h) on stdin/stdout:
///
///   $ diff_server json
///   > open 1 (JArray (ElemCons (JNumber 1.0) (ElemNil)))
///   ok version=0 edits=5 coalesced=4 size=4
///   .
///   > submit 1 (JArray (ElemCons (JNumber 1.0) (ElemCons (JNumber 2.0) (ElemNil))))
///   ok version=1 edits=5 coalesced=4 size=6
///   load(ElemCons_9, [...], [])
///   ...
///   .
///
/// Trees travel as s-expressions against the chosen signature (json or
/// py); responses carry serialized truechange edit scripts, so a client
/// holding the previous version can replay the patch locally -- the
/// version-control/database deployment the paper motivates in Section 1.
///
/// With --data-dir=<dir> the server is durable: committed operations are
/// written to a write-ahead log in <dir>, documents are snapshotted in
/// the background, and on startup the store is recovered from the
/// directory's snapshots + WAL. The `save <doc>` verb forces a snapshot,
/// `recover` reports what startup recovery found, and `stats` gains a
/// "persist" section.
///
//===----------------------------------------------------------------------===//

#include "json/Json.h"
#include "persist/Persistence.h"
#include "python/Python.h"
#include "service/Wire.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

using namespace truediff;
using namespace truediff::service;

namespace {

std::string recoveryJson(const persist::RecoveryResult &R) {
  auto N = [](uint64_t V) { return std::to_string(V); };
  return "{\"docs_recovered\":" + N(R.DocsRecovered) +
         ",\"docs_dropped\":" + N(R.DocsDropped) +
         ",\"snapshots_loaded\":" + N(R.SnapshotsLoaded) +
         ",\"snapshots_corrupt\":" + N(R.SnapshotsCorrupt) +
         ",\"records_replayed\":" + N(R.RecordsReplayed) +
         ",\"records_skipped\":" + N(R.RecordsSkipped) +
         ",\"orphan_records\":" + N(R.OrphanRecords) +
         ",\"invalid_records\":" + N(R.InvalidRecords) +
         ",\"torn_bytes\":" + N(R.TornBytes) +
         ",\"nodes_restored\":" + N(R.NodesRestored) +
         ",\"edits_replayed\":" + N(R.EditsReplayed) +
         ",\"max_seq\":" + N(R.MaxSeq) + "}";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Lang;
  unsigned Workers = 0;
  std::string DataDir;
  size_t FsyncEvery = 8;
  bool BadArgs = false;
  for (int I = 1; I != Argc; ++I) {
    std::string_view Arg(Argv[I]);
    if (Arg.rfind("--data-dir=", 0) == 0)
      DataDir = std::string(Arg.substr(strlen("--data-dir=")));
    else if (Arg.rfind("--fsync-every=", 0) == 0)
      FsyncEvery = static_cast<size_t>(
          std::atoll(std::string(Arg.substr(strlen("--fsync-every="))).c_str()));
    else if (Lang.empty() && !Arg.empty() && Arg[0] != '-')
      Lang = std::string(Arg);
    else if (!Arg.empty() && Arg[0] != '-')
      Workers = static_cast<unsigned>(std::atoi(std::string(Arg).c_str()));
    else
      BadArgs = true;
  }
  if (Lang.empty())
    Lang = "json";

  SignatureTable Sig;
  if (!BadArgs && Lang == "json") {
    Sig = json::makeJsonSignature();
  } else if (!BadArgs && Lang == "py") {
    Sig = python::makePythonSignature();
  } else {
    std::fprintf(stderr,
                 "usage: %s [json|py] [workers] [--data-dir=<dir>] "
                 "[--fsync-every=<n>]\n",
                 Argv[0]);
    return 2;
  }

  DocumentStore Store(Sig);

  std::unique_ptr<persist::Persistence> Persist;
  if (!DataDir.empty()) {
    persist::Persistence::Config PC;
    PC.Dir = DataDir;
    PC.FsyncEvery = FsyncEvery == 0 ? 1 : FsyncEvery;
    try {
      Persist = std::make_unique<persist::Persistence>(Sig, PC);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "diff_server: cannot open data dir: %s\n", E.what());
      return 1;
    }
    persist::RecoveryResult R = Persist->recoverAndAttach(Store);
    std::fprintf(stderr,
                 "diff_server: recovered %llu document(s) from %s "
                 "(%llu snapshot(s), %llu record(s) replayed, %llu torn "
                 "byte(s) discarded)\n",
                 static_cast<unsigned long long>(R.DocsRecovered),
                 DataDir.c_str(),
                 static_cast<unsigned long long>(R.SnapshotsLoaded),
                 static_cast<unsigned long long>(R.RecordsReplayed),
                 static_cast<unsigned long long>(R.TornBytes));
  }

  ServiceConfig Cfg;
  Cfg.Workers = Workers;
  DiffService Service(Store, Cfg);
  if (Persist) {
    persist::Persistence *P = Persist.get();
    Service.setDrainHook([P] { P->flush(); });
    Service.setStatsAugmenter(
        [P] { return "\"persist\":" + P->statsJson(); });
  }

  std::fprintf(stderr,
               "diff_server: %s signature, %u workers%s; commands: open, "
               "submit, rollback, get, save, recover, stats, quit\n",
               Lang.c_str(), Service.workers(),
               Persist ? ", durable" : "");

  std::string Line;
  while (std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    WireCommand Cmd = parseWireCommand(Line);
    Response R;
    switch (Cmd.K) {
    case WireCommand::Kind::Open:
      R = Service.open(Cmd.Doc, makeSExprBuilder(std::move(Cmd.Arg)));
      break;
    case WireCommand::Kind::Submit:
      R = Service.submit(Cmd.Doc, makeSExprBuilder(std::move(Cmd.Arg)));
      break;
    case WireCommand::Kind::Rollback:
      R = Service.rollback(Cmd.Doc);
      break;
    case WireCommand::Kind::Get:
      R = Service.getVersion(Cmd.Doc);
      break;
    case WireCommand::Kind::Save:
      if (!Persist) {
        R.Error = "persistence is disabled (run with --data-dir=<dir>)";
      } else if (Persist->snapshotDocument(Cmd.Doc)) {
        // Snapshots capture acknowledged state; flush so everything the
        // client saw committed is also durable in the log.
        Persist->flush();
        R.Ok = true;
        R.Payload = "snapshot written";
      } else {
        R.Error = "no such document";
      }
      break;
    case WireCommand::Kind::Recover:
      if (!Persist) {
        R.Error = "persistence is disabled (run with --data-dir=<dir>)";
      } else {
        R.Ok = true;
        R.Payload = recoveryJson(Persist->lastRecovery());
      }
      break;
    case WireCommand::Kind::Stats:
      R = Service.stats();
      break;
    case WireCommand::Kind::Quit:
      Service.shutdown();
      return 0;
    case WireCommand::Kind::Invalid:
      R.Ok = false;
      R.Error = Cmd.Error;
      break;
    }
    std::fputs(formatWireResponse(R).c_str(), stdout);
    std::fflush(stdout);
  }
  Service.shutdown();
  return 0;
}

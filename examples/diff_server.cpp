//===- examples/diff_server.cpp - REPL diff server over the wire protocol --===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A REPL-style front end to the concurrent diff service, speaking the
/// textual wire protocol (service/Wire.h) on stdin/stdout:
///
///   $ diff_server json
///   > open 1 (JArray (ElemCons (JNumber 1.0) (ElemNil)))
///   ok version=0 edits=5 coalesced=4 size=4
///   .
///   > submit 1 (JArray (ElemCons (JNumber 1.0) (ElemCons (JNumber 2.0) (ElemNil))))
///   ok version=1 edits=5 coalesced=4 size=6
///   load(ElemCons_9, [...], [])
///   ...
///   .
///
/// Trees travel as s-expressions against the chosen signature (json or
/// py); responses carry serialized truechange edit scripts, so a client
/// holding the previous version can replay the patch locally -- the
/// version-control/database deployment the paper motivates in Section 1.
///
/// open/submit accept an optional `author=<name>` token after the doc
/// id; the blame subsystem attributes every touched node to it. `blame
/// <doc>` renders the live tree with per-node intro/last attribution,
/// `blame <doc> <uri>` answers for one node from the provenance index
/// (one hash probe, no history replay), and `history <doc> <uri>` lists
/// the retained revisions that touched the node, newest first.
///
/// With --data-dir=<dir> the server is durable: committed operations are
/// written to a write-ahead log in <dir>, documents are snapshotted in
/// the background, and on startup the store is recovered from the
/// directory's snapshots + WAL. The `save <doc>` verb forces a snapshot,
/// `recover` reports what startup recovery found, `stats` gains a
/// "persist" section, and `health` reports the persistence circuit
/// breaker's state (degraded = WAL unavailable, serving in-memory only).
///
/// --deadline-ms=<n> bounds every submit: requests still queued at their
/// deadline are shed with a retry-after hint, and a diff that would
/// overrun the deadline is answered with the type-checked replace-root
/// fallback script (marked `fallback=1` on the ok line).
///
/// Overload protection flags:
///   --max-nodes=<n>      reject trees over n nodes while parsing
///   --max-depth=<n>      reject trees nested deeper than n
///   --mem-budget-mb=<n>  process-wide tree-memory budget; open/submit
///                        is rejected once the budget is exhausted
///   --shed-target-ms=<n> shed a document's newest queued requests once
///                        its queue sojourn stays above n milliseconds
/// All default to 0 (unlimited/disabled). Rejections carry typed errors
/// and, where a retry can help, a per-document retry_after_ms hint.
///
/// Digest policy flags:
///   --digest=sha256|fast  Step-1 subtree hashing policy. The default
///                         sha256 is collision resistant; fast (Fast128,
///                         seeded per process via TRUEDIFF_DIGEST_SEED)
///                         trades that for ~an order of magnitude less
///                         hashing cost. Edit scripts are identical
///                         either way.
///   --step1-workers=<n>   hash cold trees on a pool of n threads
///                         (0/1 = serial, the default)
///
/// Network modes (the stdin REPL is the default front end):
///   --listen=<port>       serve the protocol over TCP instead of stdin:
///                         a non-blocking epoll loop multiplexes textual
///                         lines and binary frames (net/Frame.h) on one
///                         port, with per-connection idle timeouts
///                         (--idle-timeout-ms, default 60000)
///   --repl-listen=<port>  additionally act as replication leader:
///                         committed edit scripts stream to follower
///                         replicas connecting here (--epoch fences a
///                         replaced leader)
///   --follow=<host:port>  run as a follower replica of that leader and
///                         serve read-only traffic on --listen (writes
///                         answer code=not_leader with a leader address
///                         hint and retry_after_ms)
///
/// Failover: `promote <epoch>` on a follower runs the fence/export/
/// install state machine -- the follower stops accepting the old
/// leader's stream, installs its applied committed prefix into a fresh
/// writable store, and starts serving the full leader protocol on the
/// same port (replication endpoint per --repl-listen). A leader that
/// sees a follower hello carrying a higher epoch self-fences: it demotes
/// to read-only and answers writes with code=not_leader. `demote
/// [<host:port>]` does the same by hand and records where clients should
/// be redirected. Demoted ex-leaders rejoin by restarting as followers.
///
/// Integrity flags (src/integrity): a background scrubber continuously
/// re-verifies the digest cache of every live document, re-reads closed
/// WAL segments and snapshot files (CRC), and -- when this node leads
/// replicas -- fans anti-entropy digest summaries out so diverged
/// followers resync. Corrupt documents are quarantined (writes answer
/// code=quarantined, gets carry quarantined=1) and repaired from
/// durable state; corrupt disk files are repaired from the healthy
/// in-memory state. The `scrub` verb runs one cycle synchronously and
/// answers with its findings; `stats` gains an "integrity" section.
///   --scrub-interval-ms=<n>  background scrub cycle period
///                            (0 = manual only via the scrub verb)
///   --scrub-rate=<n>         scrub at most n documents/files per
///                            second (token bucket; 0 = unlimited)
///
/// SIGTERM/SIGINT trigger a graceful shutdown: the server stops reading,
/// drains accepted requests, flushes the WAL, and exits. Exit codes:
///   0  clean shutdown, everything acknowledged as durable is on disk
///   1  startup failure (unusable data dir, bind or connect failure)
///   2  usage error
///   3  shutdown while persistence was degraded (WAL down; in-memory
///      state may exceed what disk holds) -- suppressed by --degraded-ok
///
//===----------------------------------------------------------------------===//

#include "blame/Provenance.h"
#include "blame/Render.h"
#include "integrity/Scrubber.h"
#include "json/Json.h"
#include "net/Role.h"
#include "net/ServiceHandler.h"
#include "persist/Persistence.h"
#include "python/Python.h"
#include "replica/Failover.h"
#include "replica/Follower.h"
#include "replica/Leader.h"
#include "replica/ReplicationLog.h"
#include "service/Wire.h"
#include "support/TreeHash.h"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

using namespace truediff;
using namespace truediff::service;

namespace {

std::string recoveryJson(const persist::RecoveryResult &R) {
  auto N = [](uint64_t V) { return std::to_string(V); };
  return "{\"docs_recovered\":" + N(R.DocsRecovered) +
         ",\"docs_dropped\":" + N(R.DocsDropped) +
         ",\"snapshots_loaded\":" + N(R.SnapshotsLoaded) +
         ",\"snapshots_corrupt\":" + N(R.SnapshotsCorrupt) +
         ",\"records_replayed\":" + N(R.RecordsReplayed) +
         ",\"records_skipped\":" + N(R.RecordsSkipped) +
         ",\"orphan_records\":" + N(R.OrphanRecords) +
         ",\"invalid_records\":" + N(R.InvalidRecords) +
         ",\"torn_bytes\":" + N(R.TornBytes) +
         ",\"nodes_restored\":" + N(R.NodesRestored) +
         ",\"edits_replayed\":" + N(R.EditsReplayed) +
         ",\"max_seq\":" + N(R.MaxSeq) + "}";
}

std::string scrubCycleJson(const integrity::Scrubber::CycleReport &C) {
  auto N = [](uint64_t V) { return std::to_string(V); };
  return "{\"docs_scrubbed\":" + N(C.DocsScrubbed) +
         ",\"digest_mismatches\":" + N(C.DigestMismatches) +
         ",\"wal_crc_errors\":" + N(C.WalCrcErrors) +
         ",\"snapshot_errors\":" + N(C.SnapshotErrors) +
         ",\"newly_quarantined\":" + N(C.NewlyQuarantined) +
         ",\"repaired\":" + N(C.Repaired) +
         ",\"summaries_sent\":" + N(C.SummariesSent) + "}";
}

volatile std::sig_atomic_t GotSignal = 0;

extern "C" void onShutdownSignal(int Sig) { GotSignal = Sig; }

/// Installs \p Handler for SIGTERM and SIGINT *without* SA_RESTART, so a
/// blocking read on stdin returns with EINTR and the REPL loop observes
/// the flag instead of sitting in read() until the next line arrives.
void installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: interrupt the blocking getline
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Lang;
  unsigned Workers = 0;
  std::string DataDir;
  size_t FsyncEvery = 8;
  uint64_t DeadlineMs = 0;
  uint64_t MaxNodes = 0;
  uint64_t MaxDepth = 0;
  uint64_t MemBudgetMb = 0;
  uint64_t ShedTargetMs = 0;
  bool DegradedOk = false;
  bool BadArgs = false;
  bool Listen = false;
  uint64_t ListenPort = 0;
  bool ReplListen = false;
  uint64_t ReplPort = 0;
  std::string FollowHost;
  uint64_t FollowPort = 0;
  uint64_t Epoch = 1;
  uint64_t IdleTimeoutMs = 60000;
  DigestPolicy Digest = DigestPolicy::Sha256;
  uint64_t Step1Workers = 0;
  uint64_t ScrubIntervalMs = 0;
  uint64_t ScrubRate = 0;
  // Parses the numeric tail of --flag=<n>. Garbage, trailing junk, and
  // out-of-range values set BadArgs (-> usage + exit 2) instead of
  // silently becoming 0 the way atoll would.
  auto NumArg = [&BadArgs](std::string_view Arg, const char *Flag) {
    std::string Tail(Arg.substr(strlen(Flag)));
    errno = 0;
    char *End = nullptr;
    unsigned long long V = std::strtoull(Tail.c_str(), &End, 10);
    if (Tail.empty() || *End != '\0' || errno == ERANGE)
      BadArgs = true;
    return static_cast<uint64_t>(V);
  };
  for (int I = 1; I != Argc; ++I) {
    std::string_view Arg(Argv[I]);
    if (Arg.rfind("--data-dir=", 0) == 0)
      DataDir = std::string(Arg.substr(strlen("--data-dir=")));
    else if (Arg.rfind("--fsync-every=", 0) == 0)
      FsyncEvery = static_cast<size_t>(NumArg(Arg, "--fsync-every="));
    else if (Arg.rfind("--deadline-ms=", 0) == 0)
      DeadlineMs = NumArg(Arg, "--deadline-ms=");
    else if (Arg.rfind("--max-nodes=", 0) == 0)
      MaxNodes = NumArg(Arg, "--max-nodes=");
    else if (Arg.rfind("--max-depth=", 0) == 0)
      MaxDepth = NumArg(Arg, "--max-depth=");
    else if (Arg.rfind("--mem-budget-mb=", 0) == 0)
      MemBudgetMb = NumArg(Arg, "--mem-budget-mb=");
    else if (Arg.rfind("--shed-target-ms=", 0) == 0)
      ShedTargetMs = NumArg(Arg, "--shed-target-ms=");
    else if (Arg == "--degraded-ok")
      DegradedOk = true;
    else if (Arg.rfind("--listen=", 0) == 0) {
      Listen = true;
      ListenPort = NumArg(Arg, "--listen=");
    } else if (Arg.rfind("--repl-listen=", 0) == 0) {
      ReplListen = true;
      ReplPort = NumArg(Arg, "--repl-listen=");
    } else if (Arg.rfind("--follow=", 0) == 0) {
      std::string HostPort(Arg.substr(strlen("--follow=")));
      size_t Colon = HostPort.rfind(':');
      if (Colon == std::string::npos) {
        BadArgs = true;
      } else {
        FollowHost = HostPort.substr(0, Colon);
        FollowPort = static_cast<uint64_t>(
            std::atoll(HostPort.substr(Colon + 1).c_str()));
      }
    } else if (Arg.rfind("--epoch=", 0) == 0)
      Epoch = NumArg(Arg, "--epoch=");
    else if (Arg.rfind("--idle-timeout-ms=", 0) == 0)
      IdleTimeoutMs = NumArg(Arg, "--idle-timeout-ms=");
    else if (Arg.rfind("--digest=", 0) == 0) {
      std::optional<DigestPolicy> P =
          parseDigestPolicy(Arg.substr(strlen("--digest=")));
      if (P)
        Digest = *P;
      else
        BadArgs = true;
    } else if (Arg.rfind("--step1-workers=", 0) == 0)
      Step1Workers = NumArg(Arg, "--step1-workers=");
    else if (Arg.rfind("--scrub-interval-ms=", 0) == 0)
      ScrubIntervalMs = NumArg(Arg, "--scrub-interval-ms=");
    else if (Arg.rfind("--scrub-rate=", 0) == 0)
      ScrubRate = NumArg(Arg, "--scrub-rate=");
    else if (Lang.empty() && !Arg.empty() && Arg[0] != '-')
      Lang = std::string(Arg);
    else if (!Arg.empty() && Arg[0] != '-')
      Workers = static_cast<unsigned>(NumArg(Arg, ""));
    else
      BadArgs = true;
  }
  if (Lang.empty())
    Lang = "json";

  SignatureTable Sig;
  if (!BadArgs && Lang == "json") {
    Sig = json::makeJsonSignature();
  } else if (!BadArgs && Lang == "py") {
    Sig = python::makePythonSignature();
  } else {
    std::fprintf(stderr,
                 "usage: %s [json|py] [workers] [--data-dir=<dir>] "
                 "[--fsync-every=<n>] [--deadline-ms=<n>] [--max-nodes=<n>] "
                 "[--max-depth=<n>] [--mem-budget-mb=<n>] "
                 "[--shed-target-ms=<n>] [--degraded-ok] [--listen=<port>] "
                 "[--repl-listen=<port>] [--follow=<host:port>] "
                 "[--epoch=<n>] [--idle-timeout-ms=<n>] "
                 "[--digest=sha256|fast] [--step1-workers=<n>] "
                 "[--scrub-interval-ms=<n>] [--scrub-rate=<n>]\n",
                 Argv[0]);
    return 2;
  }

  installSignalHandlers();

  // Follower mode: replicate from the leader, serve read-only traffic,
  // and stand by for promotion. The `promote <epoch>` admin verb runs
  // the failover state machine (replica/Failover.h): fence the old
  // leader's stream, install the applied committed prefix into a fresh
  // writable store, start serving the leader wire protocol on the same
  // client port, and open a replication endpoint for the other replicas
  // (--repl-listen picks its port; default ephemeral).
  if (!FollowHost.empty()) {
    net::EventLoop Loop;
    Loop.start();
    replica::Follower F(Loop, Sig);
    std::string Err;
    if (!F.connectTo(FollowHost, static_cast<uint16_t>(FollowPort), &Err)) {
      std::fprintf(stderr, "diff_server: cannot follow %s:%llu: %s\n",
                   FollowHost.c_str(),
                   static_cast<unsigned long long>(FollowPort), Err.c_str());
      Loop.stop();
      return 1;
    }

    net::RoleState Role; // follower: writes answer code=not_leader
    blame::ProvenanceIndex Prov;
    std::unique_ptr<DocumentStore> PStore;
    std::unique_ptr<replica::ReplicationLog> PLog;
    std::unique_ptr<replica::Leader> PLead;
    std::unique_ptr<DiffService> PSvc;
    std::unique_ptr<net::ServiceHandler> PWriter;
    std::unique_ptr<replica::FailoverHandler> Router;

    // Runs on the loop thread from the admin verb. Order matters: the
    // role flips to Leader only after the whole write stack is built, so
    // a request routed to the writer always finds one.
    auto Promote = [&](uint64_t NewEpoch) -> Response {
      Response R;
      if (Role.writable()) {
        R.Error = "already the leader";
        return R;
      }
      if (PLead) {
        R.Error = "demoted ex-leader: restart as a fresh follower to rejoin";
        return R;
      }
      auto NewStore = std::make_unique<DocumentStore>(Sig);
      auto NewLog = std::make_unique<replica::ReplicationLog>(*NewStore);
      NewLog->setProvenanceSource(
          [&Prov](DocId Doc) { return Prov.snapshotDoc(Doc); });
      replica::PromotionResult PR =
          replica::promoteFollower(F, *NewStore, &Prov, *NewLog, NewEpoch);
      if (!PR.Ok) {
        R.Error = PR.Error;
        return R;
      }
      PStore = std::move(NewStore);
      PLog = std::move(NewLog);
      replica::Leader::Config LC;
      LC.Port = static_cast<uint16_t>(ReplPort);
      LC.Epoch = NewEpoch;
      LC.OnFenced = [&Role](uint64_t) { Role.demote(std::string()); };
      PLead = std::make_unique<replica::Leader>(Loop, *PLog, LC);
      std::string LeadErr;
      if (!PLead->start(&LeadErr)) {
        R.Error = "promotion failed to open the replication endpoint: " +
                  LeadErr;
        return R;
      }
      ServiceConfig SvcCfg;
      SvcCfg.Workers = Workers;
      SvcCfg.DefaultDeadlineMs = static_cast<unsigned>(DeadlineMs);
      PSvc = std::make_unique<DiffService>(*PStore, SvcCfg);
      Prov.attach(*PStore); // promotion restores emit nothing; live
                            // submits fold from here on
      blame::wireBlameHandlers(*PSvc, *PStore, Prov);
      replica::Leader *LeadPtr = PLead.get();
      PSvc->setStatsAugmenter(
          [LeadPtr] { return "\"replica\":" + LeadPtr->replicaJson(); });
      net::ServiceHandler::Config WC;
      WC.Limits.MaxNodes = static_cast<uint32_t>(MaxNodes);
      WC.Limits.MaxDepth = static_cast<uint32_t>(MaxDepth);
      WC.SubmitDeadlineMs = DeadlineMs;
      WC.Role = &Role;
      WC.OnDemote = [&Role](std::string Addr) {
        Role.demote(std::move(Addr));
        Response D;
        D.Ok = true;
        D.Payload = "demoted";
        return D;
      };
      PWriter = std::make_unique<net::ServiceHandler>(*PSvc, WC);
      Router->setWriter(PWriter.get());
      Role.promote(NewEpoch);
      std::fprintf(stderr,
                   "diff_server: promoted to leader (epoch %llu): %llu "
                   "document(s) at seq %llu, replication on port %u\n",
                   static_cast<unsigned long long>(NewEpoch),
                   static_cast<unsigned long long>(PR.Docs),
                   static_cast<unsigned long long>(PR.LastSeq), PLead->port());
      R.Ok = true;
      R.Version = PR.Docs;
      R.Payload = "promoted to epoch " + std::to_string(NewEpoch) + " (" +
                  std::to_string(PR.Docs) + " docs, seq " +
                  std::to_string(PR.LastSeq) + ")";
      return R;
    };

    replica::ReplicaReadHandler::Config RC;
    RC.Role = &Role;
    RC.OnPromote = Promote;
    RC.OnDemote = [&Role](std::string Addr) {
      Role.demote(std::move(Addr));
      Response R;
      R.Ok = true;
      R.Payload = "demoted";
      return R;
    };
    replica::ReplicaReadHandler Reader(F, RC);
    Router = std::make_unique<replica::FailoverHandler>(Role, Reader);
    net::NetServer::Config SC;
    SC.Port = static_cast<uint16_t>(ListenPort);
    SC.IdleTimeoutMs = static_cast<unsigned>(IdleTimeoutMs);
    net::NetServer Srv(Loop, Sig, *Router, SC);
    if (!Srv.start(&Err)) {
      std::fprintf(stderr, "diff_server: cannot listen: %s\n", Err.c_str());
      Loop.stop();
      return 1;
    }
    std::fprintf(stderr,
                 "diff_server: follower of %s:%llu, read-only %s protocol "
                 "on port %u (promote <epoch> to take over)\n",
                 FollowHost.c_str(),
                 static_cast<unsigned long long>(FollowPort), Lang.c_str(),
                 Srv.port());
    while (GotSignal == 0)
      pause();
    std::fprintf(stderr, "diff_server: caught signal %d, shutting down\n",
                 static_cast<int>(GotSignal));
    F.disconnect();
    Loop.stop();
    if (PSvc)
      PSvc->shutdown();
    return 0;
  }

  // Admission caps: hostile or runaway inputs are rejected while
  // parsing (depth/node caps) or up front (memory budget), with typed
  // errors, instead of taking the process down.
  ParseLimits Limits;
  Limits.MaxNodes = static_cast<uint32_t>(MaxNodes);
  Limits.MaxDepth = static_cast<uint32_t>(MaxDepth);
  MemoryBudget Budget(static_cast<size_t>(MemBudgetMb) << 20);

  DocumentStore::Config StoreCfg;
  if (MemBudgetMb != 0)
    StoreCfg.MemBudget = &Budget;
  StoreCfg.Digest = Digest;
  StoreCfg.Step1Workers = static_cast<unsigned>(Step1Workers);
  DocumentStore Store(Sig, StoreCfg);

  // Per-node attribution, folded incrementally from the script stream.
  // Recovery rebuilds it from snapshots + WAL before traffic starts.
  blame::ProvenanceIndex::Config ProvCfg;
  if (MemBudgetMb != 0)
    ProvCfg.MemBudget = &Budget;
  blame::ProvenanceIndex Prov(ProvCfg);

  std::unique_ptr<persist::Persistence> Persist;
  if (!DataDir.empty()) {
    persist::Persistence::Config PC;
    PC.Dir = DataDir;
    PC.FsyncEvery = FsyncEvery == 0 ? 1 : FsyncEvery;
    try {
      Persist = std::make_unique<persist::Persistence>(Sig, PC);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "diff_server: cannot open data dir: %s\n", E.what());
      return 1;
    }
    Persist->setProvenanceSource(
        [&Prov](DocId Doc) { return Prov.snapshotDoc(Doc); });
    persist::RecoveryResult R = Persist->recoverAndAttach(Store, &Prov);
    std::fprintf(stderr,
                 "diff_server: recovered %llu document(s) from %s "
                 "(%llu snapshot(s), %llu record(s) replayed, %llu torn "
                 "byte(s) discarded)\n",
                 static_cast<unsigned long long>(R.DocsRecovered),
                 DataDir.c_str(),
                 static_cast<unsigned long long>(R.SnapshotsLoaded),
                 static_cast<unsigned long long>(R.RecordsReplayed),
                 static_cast<unsigned long long>(R.TornBytes));
  }

  ServiceConfig Cfg;
  Cfg.Workers = Workers;
  Cfg.DefaultDeadlineMs = static_cast<unsigned>(DeadlineMs);
  Cfg.ShedTargetMs = static_cast<unsigned>(ShedTargetMs);
  if (MemBudgetMb != 0)
    Cfg.MemBudget = &Budget;
  DiffService Service(Store, Cfg);

  // Network front end and/or replication leader share one event loop.
  // The role state gates writes once this leader is fenced or demoted;
  // the stats augmenter reads Lead through the pointer, so it must be
  // declared before the augmenters are installed.
  net::RoleState Role(net::RoleState::Role::Leader, Epoch);
  std::unique_ptr<net::EventLoop> Loop;
  std::unique_ptr<replica::ReplicationLog> Log;
  std::unique_ptr<replica::Leader> Lead;
  std::unique_ptr<net::ServiceHandler> Handler;
  std::unique_ptr<net::NetServer> Srv;
  // Declared after everything it scrubs (store, persistence, leader), so
  // it is destroyed -- and its background thread joined -- first.
  std::unique_ptr<integrity::Scrubber> Scrub;

  // Subscribe the index to the live script stream (recovery above used
  // the WAL instead; restore() emits nothing, so nothing double-folds),
  // and serve blame/history through the service queue.
  Prov.attach(Store);
  blame::wireBlameHandlers(Service, Store, Prov);
  auto ReplicaFragment = [&Lead]() -> std::string {
    // Lead is fixed before the loop starts serving; no race with stats.
    return Lead ? ",\"replica\":" + Lead->replicaJson() : std::string();
  };
  auto IntegrityFragment = [&Scrub]() -> std::string {
    // Scrub, like Lead, is fixed before traffic starts.
    return Scrub ? "," + Scrub->statsJsonFragment() : std::string();
  };
  if (Persist) {
    persist::Persistence *P = Persist.get();
    Service.setDrainHook([P] { P->flush(); });
    Service.setStatsAugmenter([P, &Prov, ReplicaFragment, IntegrityFragment] {
      return "\"persist\":" + P->statsJson() + "," +
             Prov.statsJsonFragment() + ReplicaFragment() +
             IntegrityFragment();
    });
    Service.setHealthSource([P] {
      persist::Persistence::HealthInfo H = P->healthInfo();
      HealthStatus S;
      S.Degraded = H.Degraded;
      S.BreakerTrips = H.BreakerTrips;
      S.DegradedUs = H.DegradedUs;
      return S;
    });
  } else {
    Service.setStatsAugmenter([&Prov, ReplicaFragment, IntegrityFragment] {
      return Prov.statsJsonFragment() + ReplicaFragment() +
             IntegrityFragment();
    });
  }

  if (Listen || ReplListen)
    Loop = std::make_unique<net::EventLoop>();
  if (ReplListen) {
    Log = std::make_unique<replica::ReplicationLog>(Store);
    Log->setProvenanceSource(
        [&Prov](uint64_t Doc) { return Prov.snapshotDoc(Doc); });
    Log->attach();
    replica::Leader::Config LC;
    LC.Port = static_cast<uint16_t>(ReplPort);
    LC.Epoch = Epoch;
    // Self-fence: a follower hello reporting a higher epoch means a
    // promotion happened elsewhere -- stop accepting writes immediately.
    LC.OnFenced = [&Role](uint64_t Reported) {
      Role.demote(std::string());
      std::fprintf(stderr,
                   "diff_server: fenced by epoch %llu, demoted to read-only\n",
                   static_cast<unsigned long long>(Reported));
    };
    Lead = std::make_unique<replica::Leader>(*Loop, *Log, LC);
    std::string Err;
    if (!Lead->start(&Err)) {
      std::fprintf(stderr, "diff_server: cannot listen for replicas: %s\n",
                   Err.c_str());
      return 1;
    }
  }

  // The integrity scrubber: always constructed (the scrub verb works
  // even without a background interval), wired to whatever subsystems
  // exist -- persistence for disk verification and repair, the
  // replication leader for anti-entropy fan-out.
  {
    integrity::Scrubber::Config IC;
    IC.IntervalMs = static_cast<unsigned>(ScrubIntervalMs);
    IC.RatePerSec = static_cast<double>(ScrubRate);
    IC.NumShards = Store.config().NumShards;
    if (Lead) {
      replica::Leader *LeadPtr = Lead.get();
      replica::ReplicationLog *LogPtr = Log.get();
      IC.Broadcast = [LeadPtr](const replica::ShardSummaryMsg &M) {
        LeadPtr->broadcastSummary(M);
      };
      IC.CurrentSeq = [LogPtr] { return LogPtr->currentSeq(); };
      IC.ResyncsServed = [LeadPtr] { return LeadPtr->stats().ResyncsServed; };
    }
    Scrub = std::make_unique<integrity::Scrubber>(Store, std::move(IC),
                                                  Persist.get());
    Scrub->start();
  }

  if (Listen) {
    net::ServiceHandler::Config HC;
    HC.Limits = Limits;
    HC.SubmitDeadlineMs = DeadlineMs;
    HC.Role = &Role;
    HC.OnPromote = [&Role](uint64_t) {
      Response R;
      R.Error = Role.writable()
                    ? "already the leader"
                    : "demoted ex-leader: restart as a follower to rejoin";
      return R;
    };
    HC.OnDemote = [&Role](std::string Addr) {
      Role.demote(std::move(Addr));
      Response R;
      R.Ok = true;
      R.Payload = "demoted";
      return R;
    };
    if (Persist) {
      persist::Persistence *P = Persist.get();
      HC.OnSave = [P](DocId Doc) {
        Response R;
        if (!P->snapshotDocument(Doc))
          R.Error = "no such document";
        else if (!P->flush())
          R.Error = "snapshot written but WAL flush failed; "
                    "persistence is degraded";
        else {
          R.Ok = true;
          R.Payload = "snapshot written";
        }
        return R;
      };
      HC.OnRecover = [P] {
        Response R;
        R.Ok = true;
        R.Payload = recoveryJson(P->lastRecovery());
        return R;
      };
    }
    integrity::Scrubber *SPtr = Scrub.get();
    HC.OnScrub = [SPtr] {
      Response R;
      R.Ok = true;
      R.Payload = scrubCycleJson(SPtr->scrubCycle());
      return R;
    };
    Handler = std::make_unique<net::ServiceHandler>(Service, HC);
    net::NetServer::Config SC;
    SC.Port = static_cast<uint16_t>(ListenPort);
    SC.IdleTimeoutMs = static_cast<unsigned>(IdleTimeoutMs);
    Srv = std::make_unique<net::NetServer>(*Loop, Sig, *Handler, SC);
    std::string Err;
    if (!Srv->start(&Err)) {
      std::fprintf(stderr, "diff_server: cannot listen: %s\n", Err.c_str());
      return 1;
    }
  }
  if (Loop)
    Loop->start();

  std::string DeadlineNote =
      DeadlineMs != 0 ? ", deadline " + std::to_string(DeadlineMs) + "ms" : "";
  std::string DigestNote = std::string(", ") + digestPolicyName(Digest) +
                           " digests";
  if (Step1Workers > 1)
    DigestNote += ", " + std::to_string(Step1Workers) + " step-1 workers";
  std::fprintf(stderr,
               "diff_server: %s signature, %u workers%s%s%s; commands: open, "
               "submit, rollback, get, blame, history, save, scrub, recover, "
               "stats, health, promote, demote, quit\n",
               Lang.c_str(), Service.workers(), Persist ? ", durable" : "",
               DigestNote.c_str(), DeadlineNote.c_str());
  if (Srv)
    std::fprintf(stderr, "diff_server: serving TCP on port %u\n", Srv->port());
  if (Lead)
    std::fprintf(stderr,
                 "diff_server: replication leader (epoch %llu) on port %u\n",
                 static_cast<unsigned long long>(Epoch), Lead->port());

  if (Listen) {
    // TCP mode: the event loop serves; this thread just waits for a
    // shutdown signal.
    while (GotSignal == 0)
      pause();
    std::fprintf(stderr,
                 "diff_server: caught signal %d, draining and flushing\n",
                 static_cast<int>(GotSignal));
    Scrub->stop(); // before the loop: broadcastSummary posts to it
    Loop->stop();
    Service.shutdown();
    if (Persist && Persist->degraded()) {
      std::fprintf(stderr,
                   "diff_server: exiting while persistence is degraded; "
                   "operations acknowledged as non-durable are NOT on "
                   "disk%s\n",
                   DegradedOk ? " (--degraded-ok)" : "");
      if (!DegradedOk)
        return 3;
    }
    return 0;
  }

  bool Quit = false;
  std::string Line;
  while (!Quit && GotSignal == 0 && std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    WireCommand Cmd = parseWireCommand(Line);
    Response R;
    switch (Cmd.K) {
    case WireCommand::Kind::Open:
      R = Service.open(Cmd.Doc, makeSExprBuilder(std::move(Cmd.Arg), Limits),
                       std::move(Cmd.Author));
      break;
    case WireCommand::Kind::Submit:
      R = Service.submit(Cmd.Doc, makeSExprBuilder(std::move(Cmd.Arg), Limits),
                         DeadlineMs, std::move(Cmd.Author));
      break;
    case WireCommand::Kind::Rollback:
      R = Service.rollback(Cmd.Doc);
      break;
    case WireCommand::Kind::Get:
      R = Service.getVersion(Cmd.Doc);
      break;
    case WireCommand::Kind::Blame:
      R = Service.blame(Cmd.Doc, Cmd.HasUri, Cmd.Uri);
      break;
    case WireCommand::Kind::History:
      R = Service.history(Cmd.Doc, Cmd.Uri);
      break;
    case WireCommand::Kind::Save:
      if (!Persist) {
        R.Error = "persistence is disabled (run with --data-dir=<dir>)";
      } else if (Persist->snapshotDocument(Cmd.Doc)) {
        // Snapshots capture acknowledged state; flush so everything the
        // client saw committed is also durable in the log. A failed
        // flush means the breaker is (now) open -- say so rather than
        // acknowledging durability we do not have.
        if (Persist->flush()) {
          R.Ok = true;
          R.Payload = "snapshot written";
        } else {
          R.Error = "snapshot written but WAL flush failed; "
                    "persistence is degraded";
        }
      } else {
        R.Error = "no such document";
      }
      break;
    case WireCommand::Kind::Scrub:
      R.Ok = true;
      R.Payload = scrubCycleJson(Scrub->scrubCycle());
      break;
    case WireCommand::Kind::Recover:
      if (!Persist) {
        R.Error = "persistence is disabled (run with --data-dir=<dir>)";
      } else {
        R.Ok = true;
        R.Payload = recoveryJson(Persist->lastRecovery());
      }
      break;
    case WireCommand::Kind::Stats:
      R = Service.stats();
      break;
    case WireCommand::Kind::Health:
      // Served synchronously, bypassing the request queue: a saturated
      // or wedged queue is exactly when a health probe must still
      // answer.
      R.Ok = true;
      R.Payload = Service.healthJson();
      break;
    case WireCommand::Kind::Promote:
      R.Error = Role.writable()
                    ? "already the leader"
                    : "demoted ex-leader: restart as a follower to rejoin";
      break;
    case WireCommand::Kind::Demote:
      // Flips the role (fencing the TCP write path if one is listening)
      // and records where clients should be pointed.
      Role.demote(std::move(Cmd.Arg));
      R.Ok = true;
      R.Payload = "demoted";
      break;
    case WireCommand::Kind::Quit:
      Quit = true;
      continue;
    case WireCommand::Kind::Invalid:
      R.Ok = false;
      R.Error = Cmd.Error;
      R.Code = Cmd.Code;
      break;
    }
    std::fputs(formatWireResponse(R, Cmd.K).c_str(), stdout);
    std::fflush(stdout);
  }

  if (GotSignal != 0)
    std::fprintf(stderr,
                 "diff_server: caught signal %d, draining and flushing\n",
                 static_cast<int>(GotSignal));

  // Graceful shutdown on every exit path (quit verb, EOF, SIGTERM/
  // SIGINT): stop accepting, drain accepted requests, then the drain
  // hook flushes the WAL so acknowledged-durable operations are on disk.
  Scrub->stop(); // before the loop: broadcastSummary posts to it
  if (Loop)
    Loop->stop(); // REPL mode can still carry a replication leader
  Service.shutdown();

  if (Persist && Persist->degraded()) {
    std::fprintf(stderr,
                 "diff_server: exiting while persistence is degraded; "
                 "operations acknowledged as non-durable are NOT on disk%s\n",
                 DegradedOk ? " (--degraded-ok)" : "");
    if (!DegradedOk)
      return 3;
  }
  return 0;
}

//===- examples/diff_server.cpp - REPL diff server over the wire protocol --===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A REPL-style front end to the concurrent diff service, speaking the
/// textual wire protocol (service/Wire.h) on stdin/stdout:
///
///   $ diff_server json
///   > open 1 (Obj (Member (Arr (Num) (Num)) "xs"))
///   ok version=0 edits=7 coalesced=7 size=6
///   .
///   > submit 1 (Obj (Member (Arr (Num) (Num) (Num)) "xs"))
///   ok version=1 edits=4 coalesced=3 size=7
///   load(Num_9, [], [])
///   ...
///   .
///
/// Trees travel as s-expressions against the chosen signature (json or
/// py); responses carry serialized truechange edit scripts, so a client
/// holding the previous version can replay the patch locally -- the
/// version-control/database deployment the paper motivates in Section 1.
///
//===----------------------------------------------------------------------===//

#include "json/Json.h"
#include "python/Python.h"
#include "service/Wire.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

using namespace truediff;
using namespace truediff::service;

int main(int Argc, char **Argv) {
  std::string Lang = Argc > 1 ? Argv[1] : "json";
  unsigned Workers = Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 0;

  SignatureTable Sig;
  if (Lang == "json") {
    Sig = json::makeJsonSignature();
  } else if (Lang == "py") {
    Sig = python::makePythonSignature();
  } else {
    std::fprintf(stderr, "usage: %s [json|py] [workers]\n", Argv[0]);
    return 2;
  }

  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = Workers;
  DiffService Service(Store, Cfg);

  std::fprintf(stderr,
               "diff_server: %s signature, %u workers; commands: open, "
               "submit, rollback, get, stats, quit\n",
               Lang.c_str(), Service.workers());

  std::string Line;
  while (std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    WireCommand Cmd = parseWireCommand(Line);
    Response R;
    switch (Cmd.K) {
    case WireCommand::Kind::Open:
      R = Service.open(Cmd.Doc, makeSExprBuilder(std::move(Cmd.Arg)));
      break;
    case WireCommand::Kind::Submit:
      R = Service.submit(Cmd.Doc, makeSExprBuilder(std::move(Cmd.Arg)));
      break;
    case WireCommand::Kind::Rollback:
      R = Service.rollback(Cmd.Doc);
      break;
    case WireCommand::Kind::Get:
      R = Service.getVersion(Cmd.Doc);
      break;
    case WireCommand::Kind::Stats:
      R = Service.stats();
      break;
    case WireCommand::Kind::Quit:
      Service.shutdown();
      return 0;
    case WireCommand::Kind::Invalid:
      R.Ok = false;
      R.Error = Cmd.Error;
      break;
    }
    std::fputs(formatWireResponse(R).c_str(), stdout);
    std::fflush(stdout);
  }
  Service.shutdown();
  return 0;
}

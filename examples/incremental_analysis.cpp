//===- examples/incremental_analysis.cpp - IncA-style driver demo ----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the paper's incremental-computing pipeline (Section 6):
/// a call-graph analysis maintained across code edits by reparsing,
/// diffing with truediff, and processing the edit script -- instead of
/// reanalyzing the whole file. Prints, for each edit, the edit script
/// size, how few functions were reanalyzed, and the updated call graph.
///
//===----------------------------------------------------------------------===//

#include "incremental/Pipeline.h"

#include <cstdio>

using namespace truediff;
using namespace truediff::incremental;

namespace {

const char *Version1 = R"py(
def normalize(data):
    total = sum(data)
    return scale(data, total)

def scale(data, factor):
    result = []
    for x in data:
        result.append(x / factor)
    return result

def pipeline(data):
    clean = normalize(data)
    return clean
)py";

// Commit 1: pipeline() additionally validates.
const char *Version2 = R"py(
def normalize(data):
    total = sum(data)
    return scale(data, total)

def scale(data, factor):
    result = []
    for x in data:
        result.append(x / factor)
    return result

def pipeline(data):
    validate(data)
    clean = normalize(data)
    return clean
)py";

// Commit 2: scale() clamps via min(); normalize/pipeline untouched.
const char *Version3 = R"py(
def normalize(data):
    total = sum(data)
    return scale(data, total)

def scale(data, factor):
    result = []
    for x in data:
        result.append(min(x / factor, 1.0))
    return result

def pipeline(data):
    validate(data)
    clean = normalize(data)
    return clean
)py";

void printCallGraph(const IncrementalPipeline &Pipeline) {
  const Tree *Module = Pipeline.currentTree();
  const SignatureTable &Sig = Pipeline.database().signatures();
  // Walk the module body and print FuncDef callee sets.
  const Tree *List = Module->kid(0);
  while (Sig.name(List->tag()) == "StmtCons") {
    const Tree *Stmt = List->kid(0);
    if (Sig.name(Stmt->tag()) == "FuncDef") {
      std::printf("  %s ->", Stmt->lit(0).asString().c_str());
      if (const auto *Callees = Pipeline.callGraph().calleesOf(Stmt->uri())) {
        for (const std::string &Callee : *Callees)
          std::printf(" %s", Callee.c_str());
      }
      std::printf("\n");
    }
    List = List->kid(1);
  }
}

} // namespace

int main() {
  IncrementalPipeline Pipeline(IndexMode::OneToOne);
  if (!Pipeline.init(Version1)) {
    std::printf("parse error in version 1\n");
    return 1;
  }
  std::printf("initial call graph:\n");
  printCallGraph(Pipeline);

  int Commit = 1;
  for (const char *Version : {Version2, Version3}) {
    auto Stats = Pipeline.step(Version);
    if (!Stats) {
      std::printf("parse error in commit %d\n", Commit);
      return 1;
    }
    std::printf("\ncommit %d: %zu edits (%zu coalesced); reanalyzed "
                "%zu of %zu functions in %.3f ms "
                "(parse %.3f ms, diff %.3f ms)\n",
                Commit, Stats->EditCount, Stats->PatchSize,
                Stats->DirtyFunctions, Stats->TotalFunctions,
                Stats->DbMs + Stats->AnalysisMs, Stats->ParseMs,
                Stats->DiffMs);
    printCallGraph(Pipeline);
    ++Commit;
  }

  std::printf("\nnode census: %llu Call nodes, %llu Name nodes\n",
              static_cast<unsigned long long>(Pipeline.census().countOf(
                  Pipeline.database().signatures().lookup("Call"))),
              static_cast<unsigned long long>(Pipeline.census().countOf(
                  Pipeline.database().signatures().lookup("Name"))));
  return 0;
}

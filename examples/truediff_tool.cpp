//===- examples/truediff_tool.cpp - Command-line structural differ ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line front end to the library, in the spirit of Unix diff
/// but structural, concise, and type-safe:
///
///   truediff_tool <py|json> <before> <after> [options]
///
///   --stats        print patch statistics only
///   --patched      print the patched document (reconstructed source)
///   --undo         also print the inverse (undo) script
///   --out FILE     write the serialized edit script to FILE
///
/// Exit code 0: diff computed, script well-typed, patch verified.
///
//===----------------------------------------------------------------------===//

#include "json/Json.h"
#include "python/Python.h"
#include "truechange/Inverse.h"
#include "truechange/MTree.h"
#include "truechange/Serialize.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace truediff;

namespace {

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

int usage(const char *Argv0) {
  std::printf("usage: %s <py|json> <before> <after> "
              "[--stats] [--patched] [--undo] [--out FILE]\n",
              Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 4)
    return usage(Argv[0]);
  std::string Lang = Argv[1];
  if (Lang != "py" && Lang != "json")
    return usage(Argv[0]);

  bool StatsOnly = false, PrintPatched = false, PrintUndo = false;
  const char *OutPath = nullptr;
  for (int I = 4; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats") == 0)
      StatsOnly = true;
    else if (std::strcmp(Argv[I], "--patched") == 0)
      PrintPatched = true;
    else if (std::strcmp(Argv[I], "--undo") == 0)
      PrintUndo = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      OutPath = Argv[++I];
    else
      return usage(Argv[0]);
  }

  std::string Before, After;
  if (!readFile(Argv[2], Before) || !readFile(Argv[3], After)) {
    std::fprintf(stderr, "error: cannot read input files\n");
    return 1;
  }

  SignatureTable Sig = Lang == "py" ? python::makePythonSignature()
                                    : json::makeJsonSignature();
  TreeContext Ctx(Sig);

  Tree *Old = nullptr, *New = nullptr;
  std::string ParseError;
  if (Lang == "py") {
    auto A = python::parsePython(Ctx, Before);
    auto B = python::parsePython(Ctx, After);
    Old = A.Module;
    New = B.Module;
    ParseError = A.Error + B.Error;
  } else {
    auto A = json::parseJson(Ctx, Before);
    auto B = json::parseJson(Ctx, After);
    Old = A.Value;
    New = B.Value;
    ParseError = A.Error + B.Error;
  }
  if (Old == nullptr || New == nullptr) {
    std::fprintf(stderr, "parse error: %s\n", ParseError.c_str());
    return 1;
  }

  MTree Standard = MTree::fromTree(Sig, Old);
  uint64_t OldSize = Old->size(), NewSize = New->size();

  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(Old, New);

  LinearTypeChecker Checker(Sig);
  TypeCheckResult TC = Checker.checkWellTyped(Result.Script);
  MTree::PatchResult PR = Standard.patchChecked(Result.Script);
  bool Verified = TC.Ok && PR.Ok && Standard.equalsTree(New);

  std::printf("nodes: %llu -> %llu | edits: %zu (%zu coalesced) | "
              "type-safe: %s | verified: %s\n",
              static_cast<unsigned long long>(OldSize),
              static_cast<unsigned long long>(NewSize),
              Result.Script.size(), Result.Script.coalescedSize(),
              TC.Ok ? "yes" : "NO", Verified ? "yes" : "NO");
  if (!TC.Ok)
    std::fprintf(stderr, "type error: %s\n", TC.Error.c_str());
  if (!PR.Ok)
    std::fprintf(stderr, "patch error: %s\n", PR.Error.c_str());

  if (!StatsOnly) {
    std::printf("\n%s", Result.Script.toString(Sig).c_str());
    if (PrintUndo)
      std::printf("\nundo script:\n%s",
                  invertScript(Result.Script).toString(Sig).c_str());
  }

  if (PrintPatched) {
    std::string Patched = Lang == "py"
                              ? python::unparsePython(Sig, Result.Patched)
                              : json::unparseJsonPretty(Sig, Result.Patched);
    std::printf("\npatched document:\n%s\n", Patched.c_str());
  }

  if (OutPath != nullptr) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutPath);
      return 1;
    }
    Out << serializeEditScript(Sig, Result.Script);
    std::printf("\nwrote edit script to %s\n", OutPath);
  }

  return Verified ? 0 : 1;
}

//===- examples/quickstart.cpp - truediff-cpp in five minutes --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the paper's Section 2 example end to end:
///  1. define a signature (the types of your trees),
///  2. build two trees,
///  3. diff them with truediff,
///  4. type check the edit script with truechange's linear type system,
///  5. apply the script to the standard semantics (MTree).
///
//===----------------------------------------------------------------------===//

#include "tree/SExpr.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include <cstdio>

using namespace truediff;

int main() {
  // 1. The signature: Exp with Add/Sub/Mul and the leaf tags of the
  // paper's running example. Links are named e1/e2 as in the paper.
  SignatureTable Sig;
  Sig.defineTag("Add", "Exp", {{"e1", "Exp"}, {"e2", "Exp"}}, {});
  Sig.defineTag("Sub", "Exp", {{"e1", "Exp"}, {"e2", "Exp"}}, {});
  Sig.defineTag("Mul", "Exp", {{"e1", "Exp"}, {"e2", "Exp"}}, {});
  for (const char *Leaf : {"a", "b", "c", "d"})
    Sig.defineTag(Leaf, "Exp", {}, {});

  // 2. The two trees of Section 2:
  //    diff(Add(Sub(a,b), Mul(c,d)), Add(d, Mul(c, Sub(a,b))))
  TreeContext Ctx(Sig);
  ParseResult Source =
      parseSExpr(Ctx, "(Add (Sub (a) (b)) (Mul (c) (d)))");
  ParseResult Target =
      parseSExpr(Ctx, "(Add (d) (Mul (c) (Sub (a) (b))))");
  if (!Source.ok() || !Target.ok()) {
    std::printf("parse error: %s%s\n", Source.Error.c_str(),
                Target.Error.c_str());
    return 1;
  }
  std::printf("source: %s\n", printSExprWithUris(Sig, Source.Root).c_str());
  std::printf("target: %s\n\n", printSExpr(Sig, Target.Root).c_str());

  // Keep the source in MTree form: diffing consumes the source tree.
  MTree Standard = MTree::fromTree(Sig, Source.Root);

  // 3. Diff. The script mentions changed nodes only -- the minimal
  // 4-edit move script from the paper.
  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(Source.Root, Target.Root);
  std::printf("edit script (%zu edits, %zu after coalescing):\n%s\n",
              Result.Script.size(), Result.Script.coalescedSize(),
              Result.Script.toString(Sig).c_str());

  // 4. Type check: detached subtrees and empty slots are linear
  // resources; the checker proves no leaks and no overloaded links.
  LinearTypeChecker Checker(Sig);
  TypeCheckResult TC = Checker.checkWellTyped(Result.Script);
  std::printf("linear type check: %s\n", TC.Ok ? "well-typed" : "ERROR");
  if (!TC.Ok) {
    std::printf("  %s\n", TC.Error.c_str());
    return 1;
  }

  // 5. Apply to the standard semantics: every edit runs in constant
  // time against the node index.
  MTree::PatchResult PR = Standard.patchChecked(Result.Script);
  std::printf("patch application: %s\n", PR.Ok ? "ok" : PR.Error.c_str());
  std::printf("patched tree: %s\n", Standard.toString().c_str());
  std::printf("equals target: %s\n",
              Standard.equalsTree(Target.Root) ? "yes" : "NO");

  // The returned patched tree reuses source nodes (same URIs) and is
  // ready for the next diffing round.
  std::printf("patched (typed): %s\n",
              printSExprWithUris(Sig, Result.Patched).c_str());
  return 0;
}

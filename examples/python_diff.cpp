//===- examples/python_diff.cpp - Diff two Python files --------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's driving use case on real input: parse two versions of a
/// Python file, diff them with truediff, and print the concise, type-safe
/// edit script.
///
/// Usage: python_diff [before.py after.py]
/// Without arguments, a built-in example (a small keras-style model
/// refactoring) is used.
///
//===----------------------------------------------------------------------===//

#include "python/Python.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace truediff;

namespace {

const char *DefaultBefore = R"py(
import keras

def build_model(units):
    model = keras.Sequential()
    model.add(keras.layers.Dense(units))
    model.add(keras.layers.Dense(10))
    return model

def train(model, data):
    for epoch in range(10):
        loss = model.fit(data)
    return loss
)py";

const char *DefaultAfter = R"py(
import keras

def build_model(units, activation):
    model = keras.Sequential()
    model.add(keras.layers.Dense(units, activation))
    model.add(keras.layers.Dense(10))
    return model

def train(model, data):
    for epoch in range(20):
        loss = model.fit(data)
        model.save('checkpoint')
    return loss
)py";

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Before = DefaultBefore;
  std::string After = DefaultAfter;
  if (Argc == 3) {
    if (!readFile(Argv[1], Before) || !readFile(Argv[2], After)) {
      std::printf("error: cannot read input files\n");
      return 1;
    }
  } else if (Argc != 1) {
    std::printf("usage: %s [before.py after.py]\n", Argv[0]);
    return 1;
  }

  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);

  python::PyParseResult Old = python::parsePython(Ctx, Before);
  if (!Old.ok()) {
    std::printf("parse error in old version: %s\n", Old.Error.c_str());
    return 1;
  }
  python::PyParseResult New = python::parsePython(Ctx, After);
  if (!New.ok()) {
    std::printf("parse error in new version: %s\n", New.Error.c_str());
    return 1;
  }

  std::printf("old AST: %llu nodes, new AST: %llu nodes\n",
              static_cast<unsigned long long>(Old.Module->size()),
              static_cast<unsigned long long>(New.Module->size()));

  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(Old.Module, New.Module);

  std::printf("\nedit script (%zu edits, %zu after coalescing; the patch "
              "mentions changed nodes only):\n",
              Result.Script.size(), Result.Script.coalescedSize());
  std::printf("%s\n", Result.Script.toString(Sig).c_str());

  LinearTypeChecker Checker(Sig);
  TypeCheckResult TC = Checker.checkWellTyped(Result.Script);
  std::printf("linear type check: %s\n", TC.Ok ? "well-typed" : "ERROR");
  if (!TC.Ok)
    std::printf("  %s\n", TC.Error.c_str());

  std::printf("patched AST equals new AST: %s\n",
              treeEqualsModuloUris(Result.Patched, New.Module) ? "yes"
                                                               : "NO");
  return TC.Ok ? 0 : 1;
}

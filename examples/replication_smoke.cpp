//===- examples/replication_smoke.cpp - Leader/follower smoke test ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CI replication smoke: brings up a leader and two follower
/// replicas over loopback TCP in one process, drives a seeded workload
/// of authored opens, submits, rollbacks, and erases through the
/// leader, reads every document back over the followers' TCP read
/// endpoints, and asserts byte-for-byte convergence (URI-preserving
/// rendering and SHA-256 digest). The same check covers attribution:
/// each live document's `blame` and `history` responses must be
/// byte-identical between the leader's provenance index and each
/// follower's, which is maintained independently from the record
/// stream. Exits 0 on convergence, 1 on any divergence.
///
///   replication_smoke [steps] [seed]
///
//===----------------------------------------------------------------------===//

#include "blame/Provenance.h"
#include "blame/Render.h"
#include "client/Client.h"
#include "corpus/JsonGen.h"
#include "json/Json.h"
#include "net/NetServer.h"
#include "persist/BinaryCodec.h"
#include "replica/Follower.h"
#include "replica/Leader.h"
#include "replica/ReplicationLog.h"
#include "service/DocumentStore.h"
#include "support/Rng.h"
#include "support/Sha256.h"

#include <arpa/inet.h>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace truediff;

namespace {

constexpr uint64_t NumDocs = 8;

service::TreeBuilder blobBuilder(const SignatureTable &Sig, std::string Blob) {
  return [&Sig, Blob = std::move(Blob)](
             TreeContext &Ctx) -> service::BuildResult {
    persist::DecodeTreeResult D =
        persist::decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/false);
    if (!D.ok())
      return {nullptr, D.Error, service::ErrCode::MalformedFrame};
    return {D.Root, "", service::ErrCode::None};
  };
}

bool waitUntil(const std::function<bool()> &Pred, int TimeoutMs = 30000) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

bool checkFollower(const char *Name, service::DocumentStore &Store,
                   const blame::ProvenanceIndex &Prov, replica::Follower &F) {
  bool Ok = true;
  uint64_t Live = 0;
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    service::DocumentSnapshot S = Store.snapshot(Doc);
    if (!S.Ok) {
      if (F.contains(Doc)) {
        std::fprintf(stderr, "FAIL %s: doc %llu erased on leader, present\n",
                     Name, static_cast<unsigned long long>(Doc));
        Ok = false;
      }
      continue;
    }
    ++Live;
    replica::Follower::ReadResult R = F.read(Doc);
    if (!R.Ok) {
      std::fprintf(stderr,
                   "FAIL %s: doc %llu unreadable: %s (caught_up=%d "
                   "last_applied_seq=%llu)\n",
                   Name, static_cast<unsigned long long>(Doc), R.Error.c_str(),
                   F.caughtUp() ? 1 : 0,
                   static_cast<unsigned long long>(F.lastSeq()));
      Ok = false;
      continue;
    }
    if (R.Version != S.Version || R.UriText != S.UriText ||
        R.DigestHex != Sha256::hash(S.UriText).toHex()) {
      // Dump everything a divergence post-mortem needs: both digests,
      // both versions, and how far into the record stream the follower
      // got, so "stale" and "corrupt" are distinguishable from the log.
      std::fprintf(stderr,
                   "FAIL %s: doc %llu diverged\n"
                   "  leader:   v%llu digest %s\n"
                   "  follower: v%llu digest %s (caught_up=%d "
                   "last_applied_seq=%llu)\n",
                   Name, static_cast<unsigned long long>(Doc),
                   static_cast<unsigned long long>(S.Version),
                   Sha256::hash(S.UriText).toHex().c_str(),
                   static_cast<unsigned long long>(R.Version),
                   R.DigestHex.c_str(), F.caughtUp() ? 1 : 0,
                   static_cast<unsigned long long>(F.lastSeq()));
      Ok = false;
    }

    // Attribution convergence: the follower's provenance index is built
    // independently from the record stream, yet its blame and history
    // responses must match the leader's byte for byte.
    service::Response LB = blame::blameResponse(Store, Prov, Doc, false, NullURI);
    service::Response FB = F.blameRead(Doc, false, NullURI);
    if (LB.Code != FB.Code || LB.Payload != FB.Payload ||
        LB.Error != FB.Error) {
      std::fprintf(stderr,
                   "FAIL %s: doc %llu blame diverged\n  leader: %s%s\n  "
                   "follower: %s%s\n",
                   Name, static_cast<unsigned long long>(Doc),
                   LB.Payload.c_str(), LB.Error.c_str(), FB.Payload.c_str(),
                   FB.Error.c_str());
      Ok = false;
    }
    // The root's URI leads the leader's blame tree as `<tag>#<uri> ...`.
    URI HistUri = NullURI;
    size_t Hash = LB.Payload.find('#');
    if (LB.Code == service::ErrCode::None && Hash != std::string::npos)
      HistUri = std::strtoull(LB.Payload.c_str() + Hash + 1, nullptr, 10);
    if (HistUri != NullURI) {
      service::Response LH = blame::historyResponse(Store, Prov, Doc, HistUri);
      service::Response FH = F.historyRead(Doc, HistUri);
      if (LH.Code != FH.Code || LH.Payload != FH.Payload ||
          LH.Error != FH.Error) {
        std::fprintf(stderr,
                     "FAIL %s: doc %llu history(#%llu) diverged\n  leader: "
                     "%s%s\n  follower: %s%s\n",
                     Name, static_cast<unsigned long long>(Doc),
                     static_cast<unsigned long long>(HistUri),
                     LH.Payload.c_str(), LH.Error.c_str(), FH.Payload.c_str(),
                     FH.Error.c_str());
        Ok = false;
      }
    }
  }
  if (Ok)
    std::fprintf(stderr,
                 "%s: %llu live documents byte-identical (trees, blame, "
                 "history)\n",
                 Name, static_cast<unsigned long long>(Live));
  return Ok;
}

/// Reads over the follower's TCP endpoint through the resilient client,
/// proving the read path (connect, framed get, stats with the replica
/// section) works end to end with the library real deployments use.
bool tcpReadWorks(uint16_t Port, uint64_t Doc) {
  client::ResilientClient::Config CC;
  CC.Endpoints = {"127.0.0.1:" + std::to_string(Port)};
  CC.RequestTimeoutMs = 5000;
  client::ResilientClient C(CC);
  client::ResilientClient::Result G = C.get(Doc);
  if (!G.Ok) {
    std::fprintf(stderr, "follower get over TCP failed: %s\n",
                 G.Error.c_str());
    return false;
  }
  client::ResilientClient::Result S = C.stats();
  if (!S.Ok || S.Payload.find("\"role\":\"follower\"") == std::string::npos) {
    std::fprintf(stderr, "follower stats over TCP missing replica role: %s\n",
                 S.Ok ? S.Payload.c_str() : S.Error.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Steps = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 300;
  uint64_t Seed = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 0xc0ffee;

  SignatureTable Sig = json::makeJsonSignature();

  // Leader: store + provenance index + replication log + TCP endpoint.
  service::DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);
  replica::ReplicationLog Log(Store);
  Log.setProvenanceSource(
      [&Prov](service::DocId Doc) { return Prov.snapshotDoc(Doc); });
  net::EventLoop LeaderLoop;
  replica::Leader::Config LC;
  LC.Epoch = 1;
  replica::Leader Lead(LeaderLoop, Log, LC);
  Log.attach();
  std::string Err;
  if (!Lead.start(&Err)) {
    std::fprintf(stderr, "leader start failed: %s\n", Err.c_str());
    return 1;
  }
  LeaderLoop.start();

  // Two followers, each with its own loop and a TCP read endpoint.
  net::EventLoop Loop1, Loop2;
  Loop1.start();
  Loop2.start();
  replica::Follower F1(Loop1, Sig), F2(Loop2, Sig);
  replica::ReplicaReadHandler H1(F1), H2(F2);
  net::NetServer::Config RC; // ephemeral port, default limits
  net::NetServer Read1(Loop1, Sig, H1, RC), Read2(Loop2, Sig, H2, RC);
  if (!Read1.start(&Err) || !Read2.start(&Err)) {
    std::fprintf(stderr, "read endpoint start failed: %s\n", Err.c_str());
    return 1;
  }
  if (!F1.connectTo("127.0.0.1", Lead.port(), &Err) ||
      !F2.connectTo("127.0.0.1", Lead.port(), &Err)) {
    std::fprintf(stderr, "follower connect failed: %s\n", Err.c_str());
    return 1;
  }

  // Seeded workload through the leader: authored open/submit plus
  // rollback/erase, so blame responses carry real attribution.
  static const char *const Authors[] = {"ada", "grace", "barbara", "edsger"};
  Rng R(Seed);
  TreeContext Ctx(Sig);
  std::unordered_map<uint64_t, Tree *> Model;
  corpus::JsonGenOptions Opts;
  Opts.MaxDepth = 3;
  Opts.MaxFanout = 4;
  for (uint64_t I = 0; I != Steps; ++I) {
    uint64_t Doc = 1 + R.below(NumDocs);
    const char *Author = Authors[R.below(4)];
    auto It = Model.find(Doc);
    if (It == Model.end()) {
      Tree *T = corpus::generateJson(Ctx, R, Opts);
      service::StoreResult SR = Store.open(
          Doc, blobBuilder(Sig, persist::encodeTree(Sig, T)), Author);
      if (!SR.Ok) {
        std::fprintf(stderr, "open failed: %s\n", SR.Error.c_str());
        return 1;
      }
      Model[Doc] = T;
      continue;
    }
    unsigned Dice = static_cast<unsigned>(R.below(100));
    if (Dice < 70) {
      Tree *Next = corpus::mutateJson(Ctx, R, It->second);
      service::SubmitOptions SubOpts;
      SubOpts.Author = Author;
      service::StoreResult SR = Store.submit(
          Doc, blobBuilder(Sig, persist::encodeTree(Sig, Next)), SubOpts);
      if (!SR.Ok) {
        std::fprintf(stderr, "submit failed: %s\n", SR.Error.c_str());
        return 1;
      }
      It->second = Next;
    } else if (Dice < 85) {
      Store.rollback(Doc); // may fail cleanly at version 0
    } else {
      Store.erase(Doc);
      Model.erase(Doc);
    }
  }

  uint64_t Target = Log.currentSeq();
  bool Caught =
      waitUntil([&] { return F1.caughtUp() && F1.lastSeq() == Target; }) &&
      waitUntil([&] { return F2.caughtUp() && F2.lastSeq() == Target; });
  if (!Caught) {
    std::fprintf(stderr, "FAIL: followers did not catch up to seq %llu "
                         "(f1=%llu f2=%llu)\n",
                 static_cast<unsigned long long>(Target),
                 static_cast<unsigned long long>(F1.lastSeq()),
                 static_cast<unsigned long long>(F2.lastSeq()));
    return 1;
  }

  bool Ok = checkFollower("follower-1", Store, Prov, F1) &&
            checkFollower("follower-2", Store, Prov, F2);

  // Prove the TCP read endpoints answer (any live doc; doc ids start
  // at 1 and something is live after a seeded run of this length).
  uint64_t AnyLive = 0;
  for (uint64_t Doc = 1; Doc <= NumDocs && AnyLive == 0; ++Doc)
    if (Store.contains(Doc))
      AnyLive = Doc;
  if (AnyLive != 0) {
    if (!tcpReadWorks(Read1.port(), AnyLive) ||
        !tcpReadWorks(Read2.port(), AnyLive)) {
      std::fprintf(stderr, "FAIL: follower TCP read endpoint unresponsive\n");
      Ok = false;
    } else {
      std::fprintf(stderr, "follower TCP read endpoints answered\n");
    }
  }

  std::fprintf(stderr, "replication smoke: %llu steps, seq %llu, %s\n",
               static_cast<unsigned long long>(Steps),
               static_cast<unsigned long long>(Target),
               Ok ? "CONVERGED" : "DIVERGED");

  F1.disconnect();
  F2.disconnect();
  Loop1.stop();
  Loop2.stop();
  LeaderLoop.stop();
  return Ok ? 0 : 1;
}

//===- tests/list_edits_test.cpp - Conciseness on cons-encoded lists -------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed trees encode statement lists as cons spines (DESIGN.md). These
/// tests pin down that truediff still produces *constant-size* patches
/// for the canonical list edits -- insert, delete, move, swap -- instead
/// of rebuilding the spine: the unchanged suffix is structurally
/// equivalent to an available source list and is reused wholesale.
///
//===----------------------------------------------------------------------===//

#include "python/Python.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include <gtest/gtest.h>

using namespace truediff;

namespace {

class ListEditsTest : public ::testing::Test {
protected:
  ListEditsTest() : Sig(python::makePythonSignature()), Ctx(Sig) {}

  /// Builds a module with N statements of *varying shape* (like real
  /// code): truediff identifies reuse candidates by structural
  /// equivalence, so shape diversity is what makes list suffixes
  /// unambiguous.
  std::string numberedStatements(int N, int Skip = -1,
                                 const char *ExtraAt = nullptr,
                                 int ExtraPos = -1) {
    std::string Src;
    for (int I = 0; I != N; ++I) {
      if (I == ExtraPos && ExtraAt != nullptr)
        Src.append(ExtraAt).append("\n");
      if (I == Skip)
        continue;
      std::string V = "v";
      V += std::to_string(I);
      std::string K = std::to_string(I);
      switch (I % 5) {
      case 0:
        Src += V + " = " + K + "\n";
        break;
      case 1:
        Src += V + " = f(" + K + ")\n";
        break;
      case 2:
        Src += V + " += " + K + "\n";
        break;
      case 3:
        Src += "assert " + V + " == " + K + "\n";
        break;
      default:
        Src += V + " = [" + K + ", " + K + "]\n";
        break;
      }
    }
    if (ExtraPos == N && ExtraAt != nullptr)
      Src += std::string(ExtraAt) + "\n";
    return Src;
  }

  size_t diffSize(const std::string &Before, const std::string &After) {
    auto A = python::parsePython(Ctx, Before);
    auto B = python::parsePython(Ctx, After);
    EXPECT_TRUE(A.ok()) << A.Error;
    EXPECT_TRUE(B.ok()) << B.Error;

    MTree M = MTree::fromTree(Sig, A.Module);
    TrueDiff Differ(Ctx);
    DiffResult R = Differ.compareTo(A.Module, B.Module);

    LinearTypeChecker Checker(Sig);
    EXPECT_TRUE(Checker.checkWellTyped(R.Script).Ok);
    EXPECT_TRUE(M.patchChecked(R.Script).Ok);
    EXPECT_TRUE(M.equalsTree(B.Module));
    return R.Script.coalescedSize();
  }

  SignatureTable Sig;
  TreeContext Ctx;
};

TEST_F(ListEditsTest, InsertAtFrontIsConstant) {
  // Inserting one statement at the front of a 50-statement body must not
  // rebuild the spine: one new cons cell + statement nodes + relink.
  size_t Size = diffSize(numberedStatements(50),
                         numberedStatements(50, -1, "fresh = 99", 0));
  EXPECT_LE(Size, 8u);
}

TEST_F(ListEditsTest, InsertInMiddleIsConstant) {
  size_t Size = diffSize(numberedStatements(50),
                         numberedStatements(50, -1, "fresh = 99", 25));
  EXPECT_LE(Size, 8u);
}

TEST_F(ListEditsTest, InsertAtEndIsConstant) {
  size_t Size = diffSize(numberedStatements(50),
                         numberedStatements(50, -1, "fresh = 99", 50));
  EXPECT_LE(Size, 8u);
}

TEST_F(ListEditsTest, DeleteInMiddleIsConstant) {
  size_t Size = diffSize(numberedStatements(50),
                         numberedStatements(50, /*Skip=*/25));
  EXPECT_LE(Size, 8u);
}

TEST_F(ListEditsTest, PatchSizeIndependentOfListLength) {
  // The same middle insertion on a 4x longer list must not grow the
  // patch.
  size_t Small = diffSize(numberedStatements(25),
                          numberedStatements(25, -1, "fresh = 99", 12));
  size_t Large = diffSize(numberedStatements(100),
                          numberedStatements(100, -1, "fresh = 99", 50));
  EXPECT_EQ(Small, Large);
}

TEST_F(ListEditsTest, MoveStatementToOtherFunctionIsSmall) {
  const char *Before = "def a():\n"
                       "    x = build(1, 2, 3)\n"
                       "    y = 2\n"
                       "    z = 3\n"
                       "def b():\n"
                       "    w = 4\n";
  const char *After = "def a():\n"
                      "    y = 2\n"
                      "    z = 3\n"
                      "def b():\n"
                      "    x = build(1, 2, 3)\n"
                      "    w = 4\n";
  // The x-assignment subtree moves: detach+attach plus spine relinks,
  // never a rebuild of the statement.
  EXPECT_LE(diffSize(Before, After), 7u);
}

TEST_F(ListEditsTest, SwapAdjacentStatementsIsSmall) {
  const char *Before = "a = compute(1)\nb = compute(2)\nc = compute(3)\n";
  const char *After = "b = compute(2)\na = compute(1)\nc = compute(3)\n";
  EXPECT_LE(diffSize(Before, After), 10u);
}

TEST_F(ListEditsTest, HomogeneousListsDegradeGracefully) {
  // Documented behavior of the paper's greedy Step 3: when every
  // statement has the *same shape* (here "v<i> = <i>"), equal-length
  // spine suffixes are structurally equivalent, the any-candidate pass
  // can pick a shifted spine, and the patch pays literal updates up to
  // the insertion point instead of a single move. Real code is shape
  // diverse, so this pathology does not show in the corpus (Figure 4).
  auto Homogeneous = [](int N, int ExtraPos) {
    std::string Src;
    for (int I = 0; I != N; ++I) {
      if (I == ExtraPos)
        Src += "fresh = 99\n";
      Src.append("v").append(std::to_string(I)).append(" = ").append(std::to_string(I)).append("\n");
    }
    return Src;
  };
  size_t Size = diffSize(Homogeneous(20, -1), Homogeneous(20, 10));
  // Bounded by ~2 updates per shifted statement plus the insertion, and
  // still far below a full rebuild (which would cost ~80 edits).
  EXPECT_LE(Size, 2u * 10u + 6u);
  EXPECT_GE(Size, 5u);
}

TEST_F(ListEditsTest, ReverseIsProportionalToLength) {
  // Sanity in the other direction: reversing the whole list is a real
  // O(n) change and the patch is allowed to grow with it.
  std::string Before = numberedStatements(20);
  std::string After;
  for (int I = 19; I >= 0; --I)
    After.append("v").append(std::to_string(I)).append(" = ")
        .append(std::to_string(I)).append("\n");
  size_t Size = diffSize(Before, After);
  EXPECT_GE(Size, 10u);
}

} // namespace

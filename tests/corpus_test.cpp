//===- tests/corpus_test.cpp - Unit tests for the corpus generators --------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "corpus/JsonGen.h"
#include "corpus/Sketch.h"
#include "json/Json.h"
#include "python/Python.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::corpus;

namespace {

class CorpusTest : public ::testing::Test {
protected:
  CorpusTest() : Sig(python::makePythonSignature()), Ctx(Sig) {}
  SignatureTable Sig;
  TreeContext Ctx;
};

//===----------------------------------------------------------------------===//
// Sketches
//===----------------------------------------------------------------------===//

TEST_F(CorpusTest, SketchRoundTrip) {
  Rng R(1);
  Tree *T = generateModule(Ctx, R);
  TreeSketch S = TreeSketch::of(T);
  EXPECT_EQ(S.size(), T->size());
  Tree *Back = S.build(Ctx);
  EXPECT_TRUE(treeEqualsModuloUris(T, Back));
}

TEST_F(CorpusTest, ListVectorRoundTrip) {
  Rng R(2);
  Tree *T = generateModule(Ctx, R);
  TreeSketch S = TreeSketch::of(T);
  std::vector<TreeSketch> Stmts = listToVector(Sig, S.Kids[0]);
  EXPECT_FALSE(Stmts.empty());
  TreeSketch Rebuilt =
      vectorToList(Sig, "StmtCons", "StmtNil", Stmts);
  S.Kids[0] = Rebuilt;
  EXPECT_TRUE(treeEqualsModuloUris(T, S.build(Ctx)));
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST_F(CorpusTest, GeneratedModulesAreWellTyped) {
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    Rng R(Seed);
    Tree *T = generateModule(Ctx, R);
    EXPECT_FALSE(Ctx.validate(T).has_value()) << "seed " << Seed;
  }
}

TEST_F(CorpusTest, GeneratedModulesUnparseAndReparse) {
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    Rng R(Seed * 31 + 5);
    Tree *T = generateModule(Ctx, R);
    std::string Src = python::unparsePython(Sig, T);
    python::PyParseResult P = python::parsePython(Ctx, Src);
    ASSERT_TRUE(P.ok()) << P.Error << "\n" << Src;
    EXPECT_TRUE(treeEqualsModuloUris(T, P.Module)) << Src;
  }
}

TEST_F(CorpusTest, GeneratorIsDeterministic) {
  Rng R1(99), R2(99);
  Tree *A = generateModule(Ctx, R1);
  Tree *B = generateModule(Ctx, R2);
  EXPECT_TRUE(treeEqualsModuloUris(A, B));
}

TEST_F(CorpusTest, SizeTargetedGeneration) {
  Rng R(7);
  Tree *T = generateModuleOfSize(Ctx, R, 5000);
  EXPECT_GE(T->size(), 5000u);
  EXPECT_FALSE(Ctx.validate(T).has_value());
}

//===----------------------------------------------------------------------===//
// Mutator
//===----------------------------------------------------------------------===//

TEST_F(CorpusTest, MutationsPreserveWellTypedness) {
  Rng R(11);
  Tree *T = generateModule(Ctx, R);
  for (int I = 0; I != 30; ++I) {
    MutationReport Report;
    Tree *Mutated = mutateModule(Ctx, R, T, MutatorOptions(), &Report);
    ASSERT_FALSE(Ctx.validate(Mutated).has_value());
    // Mutated modules still unparse to parseable source.
    std::string Src = python::unparsePython(Sig, Mutated);
    python::PyParseResult P = python::parsePython(Ctx, Src);
    ASSERT_TRUE(P.ok()) << P.Error << "\n" << Src;
    EXPECT_TRUE(treeEqualsModuloUris(Mutated, P.Module));
    T = Mutated;
  }
}

TEST_F(CorpusTest, MutationsUsuallyChangeTheTree) {
  Rng R(13);
  Tree *T = generateModule(Ctx, R);
  unsigned Changed = 0;
  for (int I = 0; I != 20; ++I) {
    Tree *Mutated = mutateModule(Ctx, R, T, MutatorOptions());
    Changed += !treeEqualsModuloUris(T, Mutated);
  }
  EXPECT_GE(Changed, 15u);
}

TEST_F(CorpusTest, EveryMutationKindApplies) {
  Rng R(17);
  Tree *T = generateModule(Ctx, R);
  std::set<MutationKind> Seen;
  for (int I = 0; I != 300 && Seen.size() < 11; ++I) {
    MutationReport Report;
    T = mutateModule(Ctx, R, T, MutatorOptions(), &Report);
    Seen.insert(Report.Applied.begin(), Report.Applied.end());
  }
  EXPECT_EQ(Seen.size(), 11u) << "some mutation kinds never applied";
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

TEST_F(CorpusTest, CorpusPairsParseAndDiffer) {
  CorpusOptions Opts;
  Opts.NumPairs = 12;
  Opts.CommitsPerFile = 4;
  std::vector<CommitPair> Pairs = buildCommitCorpus(Opts);
  ASSERT_EQ(Pairs.size(), 12u);
  for (const CommitPair &Pair : Pairs) {
    EXPECT_NE(Pair.Before, Pair.After);
    EXPECT_FALSE(Pair.Mutations.empty());
    TreeContext Local(Sig);
    auto B = python::parsePython(Local, Pair.Before);
    auto A = python::parsePython(Local, Pair.After);
    ASSERT_TRUE(B.ok()) << B.Error;
    ASSERT_TRUE(A.ok()) << A.Error;
    EXPECT_FALSE(treeEqualsModuloUris(B.Module, A.Module));
  }
}

TEST_F(CorpusTest, CorpusIsDeterministic) {
  CorpusOptions Opts;
  Opts.NumPairs = 5;
  std::vector<CommitPair> A = buildCommitCorpus(Opts);
  std::vector<CommitPair> B = buildCommitCorpus(Opts);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Before, B[I].Before);
    EXPECT_EQ(A[I].After, B[I].After);
  }
}

//===----------------------------------------------------------------------===//
// JSON workload generator
//===----------------------------------------------------------------------===//

TEST_F(CorpusTest, JsonGeneratorProducesValidDocuments) {
  SignatureTable Sig2 = truediff::json::makeJsonSignature();
  TreeContext Ctx2(Sig2);
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    Rng R(Seed * 97 + 1);
    Tree *Doc = generateJson(Ctx2, R);
    EXPECT_FALSE(Ctx2.validate(Doc).has_value());
    // Round trips through the JSON printer/parser.
    auto P = truediff::json::parseJson(
        Ctx2, truediff::json::unparseJson(Sig2, Doc));
    ASSERT_TRUE(P.ok()) << P.Error;
    EXPECT_TRUE(treeEqualsModuloUris(Doc, P.Value));
  }
}

TEST_F(CorpusTest, JsonMutationsChangeAndStayValid) {
  SignatureTable Sig2 = truediff::json::makeJsonSignature();
  TreeContext Ctx2(Sig2);
  Rng R(31);
  Tree *Doc = generateJson(Ctx2, R);
  unsigned Changed = 0;
  for (int I = 0; I != 20; ++I) {
    Tree *Next = mutateJson(Ctx2, R, Doc);
    EXPECT_FALSE(Ctx2.validate(Next).has_value());
    Changed += !treeEqualsModuloUris(Doc, Next);
    Doc = Next;
  }
  EXPECT_GE(Changed, 15u);
}

TEST_F(CorpusTest, CommitsChainWithinFile) {
  CorpusOptions Opts;
  Opts.NumPairs = 6;
  Opts.CommitsPerFile = 6;
  std::vector<CommitPair> Pairs = buildCommitCorpus(Opts);
  // Consecutive pairs of one file chain: After[i] == Before[i+1] (holds
  // until a no-op commit is skipped; require at least one chained link).
  unsigned Chained = 0;
  for (size_t I = 0; I + 1 < Pairs.size(); ++I)
    Chained += Pairs[I].After == Pairs[I + 1].Before;
  EXPECT_GE(Chained, 1u);
}

} // namespace
